GO ?= go

.PHONY: tier1 race bench-smoke build vet test chaos fuzz-smoke transport-race obs-smoke pipeline-race replica-race scrub-race chunk-race serve-race

tier1: ## vet + build + full test suite (the repo's gate)
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: ## race-detector pass over the data-path packages and the root suite
	$(GO) test -race ./internal/storage/ ./internal/vdev/ ./internal/dumpfmt/ \
		./internal/physical/ ./internal/raid/ ./internal/logical/ ./internal/bufpool/ \
		./internal/tape/ ./internal/chaos/ .

transport-race: ## race-detector pass over the remote session layer
	$(GO) test -race -count 1 -run Transport -timeout 120s \
		./internal/transport/ ./internal/ndmp/ ./cmd/backupctl/

chaos: ## seeded fault-injection property tests, wide seed sweep
	CHAOS_SEEDS=8 $(GO) test -count 1 -v -run 'TestChaos' ./internal/chaos/

fuzz-smoke: ## brief real fuzzing of the untrusted-input parsers
	$(GO) test -fuzz FuzzDecodeDirEnts -fuzztime 10s ./internal/logical/
	$(GO) test -fuzz FuzzUnmarshalHeader -fuzztime 10s ./internal/dumpfmt/
	$(GO) test -fuzz FuzzStreamHeader -fuzztime 10s ./internal/physical/
	$(GO) test -fuzz FuzzDecodeJournal -fuzztime 10s ./internal/catalog/
	$(GO) test -fuzz FuzzDecodeChunkIndex -fuzztime 10s ./internal/catalog/
	$(GO) test -fuzz FuzzDecodeManifest -fuzztime 10s ./internal/catalog/
	$(GO) test -fuzz FuzzDecodeWire -fuzztime 10s ./internal/replica/

replica-race: ## race-detector pass over catalog replication and the failover chaos scenarios
	$(GO) test -race -count 1 -timeout 300s ./internal/replica/
	$(GO) test -race -count 1 -run 'TestChaosReplicatedJournal|TestChaosTapeHostFailover' \
		-timeout 300s ./internal/chaos/
	$(GO) test -race -count 1 -run 'TestScheduleSurvivesCatalogFailover' ./internal/sched/

scrub-race: ## race-detector pass over the integrity layer and the bit-rot chaos gauntlet
	$(GO) test -race -count 1 -timeout 300s ./internal/scrub/
	$(GO) test -race -count 1 -run 'TestChaosScrub' -timeout 300s ./internal/chaos/
	$(GO) test -race -count 1 -run 'TestPlanRoutesAround|TestSetHealth|TestRecovery' \
		-timeout 300s ./internal/catalog/

obs-smoke: ## instrumented dump with tracing + metrics, validated end to end
	$(GO) run ./cmd/backupctl stats -mb 4 -trace obs_trace.json -check > /dev/null
	rm -f obs_trace.json

pipeline-race: ## race-detector pass over the parallel pipeline, both engines' concurrency tests, and the parallel-shard chaos scenario
	$(GO) test -race -count 1 ./internal/pipeline/ ./internal/sim/
	$(GO) test -race -count 1 -run 'Parallel' -timeout 300s \
		./internal/logical/ ./internal/physical/
	$(GO) test -race -count 1 -run 'TestChaosParallel' -timeout 300s ./internal/chaos/

chunk-race: ## race-detector pass over the dedup chunk layer, its catalog/engine integration, and the mid-dump crash chaos scenarios
	$(GO) test -race -count 1 ./internal/chunk/
	$(GO) test -race -count 1 -run 'Chunk|Dedup' -timeout 300s \
		./internal/catalog/ ./internal/logical/ ./internal/physical/ \
		./internal/media/ ./internal/bench/ ./cmd/backupctl/
	$(GO) test -race -count 1 -run 'TestChunkCrashMidDump' -timeout 300s ./internal/chaos/

serve-race: ## race-detector pass over the multi-tenant serve stack: registry, scheduler, bench fleet, and the tenant-cut chaos scenario
	$(GO) test -race -count 1 ./internal/sched/
	$(GO) test -race -count 1 -run 'TestTransportHost|TestTransportServe|TestTransportReplicate|TestTransportReconnect|TestTransportData|TestTransportGate' \
		-timeout 300s ./internal/ndmp/ ./cmd/backupctl/
	$(GO) test -race -count 1 -run 'TestServeBench' -timeout 300s ./internal/bench/
	$(GO) test -race -count 1 -run 'TestChaosServe' -timeout 300s ./internal/chaos/

bench-smoke: ## quick fast-path micro-benchmarks, gated against the committed baseline
	$(GO) test -run xxx -bench 'RunRead|RunWrite|RecordWrite' -benchtime 100x \
		./internal/storage/ ./internal/vdev/ ./internal/raid/ \
		./internal/dumpfmt/ ./internal/physical/
	$(GO) run ./cmd/backupctl bench -json '' -compare BENCH_fastpath.json
	$(GO) run ./cmd/backupctl bench -chunk -json '' -compare BENCH_chunk.json
	$(GO) run ./cmd/backupctl bench -clients 100 -json '' -compare BENCH_serve.json
