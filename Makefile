GO ?= go

.PHONY: tier1 race bench-smoke build vet test

tier1: ## vet + build + full test suite (the repo's gate)
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race: ## race-detector pass over the data-path packages and the root suite
	$(GO) test -race ./internal/storage/ ./internal/vdev/ ./internal/dumpfmt/ \
		./internal/physical/ ./internal/raid/ ./internal/logical/ ./internal/bufpool/ .

bench-smoke: ## quick fast-path micro-benchmarks (no JSON report)
	$(GO) test -run xxx -bench 'RunRead|RunWrite|RecordWrite' -benchtime 100x \
		./internal/storage/ ./internal/vdev/ ./internal/raid/ \
		./internal/dumpfmt/ ./internal/physical/
