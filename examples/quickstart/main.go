// Quickstart: build a filer, write some files, take a snapshot, run a
// logical (BSD-style) dump to tape and restore it onto a second filer,
// then verify the trees match byte for byte.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	// A simulated filer: RAID volume, NVRAM, WAFL filesystem, one tape
	// drive. Simulate=true attaches the virtual clock, so the dump
	// reports how long it would have taken on the modelled hardware.
	cfg := core.DefaultConfig()
	cfg.Name = "demo"
	cfg.Simulate = true
	source, err := core.NewFiler(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Put some data on it.
	if _, err := source.FS.WriteFile(ctx, "/projects/notes.txt", []byte("backup me!\n"), 0644); err != nil {
		log.Fatal(err)
	}
	paths, err := workload.Generate(ctx, source.FS, workload.Spec{
		Seed: 42, Files: 100, DirFanout: 8, MeanFileSize: 16 << 10, Symlinks: 3, Hardlinks: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d files (%d blocks in use)\n", len(paths)+1, source.FS.UsedBlocks())

	// Dump to tape as a simulated process so the virtual clock runs.
	var elapsed sim.Time
	source.Env.Spawn("dump", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		if err := source.LoadTape(c, 0); err != nil {
			log.Fatal(err)
		}
		start := p.Now()
		stats, err := source.LogicalDump(c, 0, 0, "", "quickstart", nil)
		if err != nil {
			log.Fatal(err)
		}
		elapsed = p.Now() - start
		fmt.Printf("logical dump: %d files, %d dirs, %.1f MB on tape\n",
			stats.FilesDumped, stats.DirsDumped, float64(stats.BytesWritten)/(1<<20))
	})
	source.Env.Run()
	fmt.Printf("virtual dump time on the modelled hardware: %v\n", elapsed)

	// "Cross-restore": a brand-new filer reads the same cartridge.
	destCfg := cfg
	destCfg.Name = "replica"
	destCfg.Env = source.Env // share the clock
	destCfg.CPU = source.CPU
	dest, err := core.NewFiler(ctx, destCfg)
	if err != nil {
		log.Fatal(err)
	}
	// Physically move the cartridge: eject from the source drive's
	// mechanism by handing the drive to the destination filer.
	dest.Tapes[0] = source.Tapes[0]

	dest.Env.Spawn("restore", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		stats, err := dest.LogicalRestore(c, 0, "/", false, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("restore: %d files recreated\n", stats.FilesRestored)
	})
	dest.Env.Run()

	// Verify.
	want, err := workload.TreeDigest(ctx, source.FS.ActiveView(), "/")
	if err != nil {
		log.Fatal(err)
	}
	got, err := workload.TreeDigest(ctx, dest.FS.ActiveView(), "/")
	if err != nil {
		log.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		log.Fatalf("restored tree differs: %v", diffs)
	}
	fmt.Println("verified: restored tree is identical to the source")
}
