// Makeshift HSM — the paper's §1 observation that "some companies are
// using dump/restore to implement a kind of makeshift Hierarchical
// Storage Management system where high performance RAID systems
// nightly replicate data on lower cost backup file servers, which
// eventually backup data to tape."
//
// A week of operation: a level-0 logical dump Sunday night, then
// incremental dumps at increasing levels each weeknight, each applied
// to a cheap secondary filer; Friday night the secondary spools
// everything to tape. The secondary tracks the primary exactly —
// including deletions and renames — while the primary only ever pays
// for the nightly incremental.
//
// Run with: go run ./examples/hsm
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()

	mk := func(name string) *core.Filer {
		cfg := core.DefaultConfig()
		cfg.Name = name
		cfg.Simulate = true
		cfg.TapeDrives = 2
		f, err := core.NewFiler(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return f
	}
	primary := mk("fast-raid")
	secondary := mk("cheap-server")
	// The "network" between them is a tape cartridge in this setup;
	// share the drive object so streams written by the primary are
	// readable by the secondary.
	secondary.Tapes = primary.Tapes

	paths, err := workload.Generate(ctx, primary.FS, workload.Spec{
		Seed: 2026, Files: 120, DirFanout: 10, MeanFileSize: 12 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	night := func(day string, level int) {
		var dumpBytes int64
		primary.Env.Spawn("dump-"+day, func(p *sim.Proc) {
			c := core.Proc(ctx, p)
			// A fresh cartridge every night: the stacker cycles, and
			// the secondary reads tonight's stream from its start.
			if err := primary.LoadTape(c, 0); err != nil {
				log.Fatal(err)
			}
			stats, err := primary.LogicalDump(c, 0, level, "", day, nil)
			if err != nil {
				log.Fatal(err)
			}
			dumpBytes = stats.BytesWritten
		})
		primary.Env.Run()

		secondary.Env.Spawn("apply-"+day, func(p *sim.Proc) {
			c := core.Proc(ctx, p)
			if _, err := secondary.LogicalRestore(c, 0, "/", level > 0, nil); err != nil {
				log.Fatal(err)
			}
		})
		secondary.Env.Run()
		fmt.Printf("%-10s level %d: %6.1f KB shipped to the secondary\n", day, level, float64(dumpBytes)/1024)
	}

	night("sunday", 0)

	// Weeknights: churn on the primary, then an incremental.
	r := rand.New(rand.NewSource(5))
	days := []string{"monday", "tuesday", "wednesday", "thursday"}
	for i, day := range days {
		// Users work: edit some files, delete one, add one.
		victim := paths[r.Intn(len(paths))]
		if err := primary.FS.RemovePath(ctx, victim); err == nil {
			paths = remove(paths, victim)
		}
		edited := paths[r.Intn(len(paths))]
		data := make([]byte, r.Intn(20<<10)+512)
		r.Read(data)
		primary.FS.WriteFile(ctx, edited, data, 0644)
		newFile := fmt.Sprintf("/inbox/%s-report.txt", day)
		primary.FS.WriteFile(ctx, newFile, []byte(day+" report\n"), 0644)
		paths = append(paths, newFile)

		night(day, i+1)
	}

	// Verify the secondary tracks the primary exactly.
	want, _ := workload.TreeDigest(ctx, primary.FS.ActiveView(), "/")
	got, _ := workload.TreeDigest(ctx, secondary.FS.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		log.Fatalf("secondary diverged: %v", diffs)
	}
	fmt.Println("secondary matches the primary after the incremental week ✓")

	// Friday: the secondary spools to tape — the primary never sees it.
	secondary.Env.Spawn("to-tape", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		if err := secondary.LoadTape(c, 1); err != nil {
			log.Fatal(err)
		}
		stats, err := secondary.LogicalDump(c, 1, 0, "", "weekly-archive", nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("friday: secondary archived %.1f MB to tape without touching the primary\n",
			float64(stats.BytesWritten)/(1<<20))
	})
	secondary.Env.Run()
}

func remove(paths []string, p string) []string {
	out := paths[:0]
	for _, q := range paths {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}
