// Disaster recovery with physical (image) backup: the paper's §4
// scenario. A volume is image-dumped to tape — snapshots and all —
// the hardware "burns down", and a blank replacement volume is
// rebuilt with image restore, coming back byte-identical including
// its snapshot history.
//
// Run with: go run ./examples/disasterrecovery
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.Name = "prod"
	cfg.Simulate = true
	filer, err := core.NewFiler(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A filesystem with history: write, snapshot, change, snapshot.
	filer.FS.WriteFile(ctx, "/db/records.v1", []byte("generation one"), 0600)
	if err := filer.FS.CreateSnapshot(ctx, "monday"); err != nil {
		log.Fatal(err)
	}
	filer.FS.WriteFile(ctx, "/db/records.v1", []byte("generation two, revised"), 0600)
	if _, err := workload.Generate(ctx, filer.FS, workload.Spec{Seed: 7, Files: 60, DirFanout: 6, MeanFileSize: 12 << 10}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("production volume: %d blocks used, snapshots: %d\n",
		filer.FS.UsedBlocks(), len(filer.FS.Snapshots()))

	// Image-dump the whole volume. The dump reads raw blocks through
	// the RAID layer in ascending order — the filesystem is only asked
	// for the snapshot's frozen block map.
	filer.Env.Spawn("image-dump", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		if err := filer.LoadTape(c, 0); err != nil {
			log.Fatal(err)
		}
		start := p.Now()
		stats, err := filer.ImageDump(c, 0, "dr-backup", "")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("image dump: %d blocks, %.1f MB in %v (virtual)\n",
			stats.BlocksDumped, float64(stats.BytesWritten)/(1<<20), p.Now()-start)
	})
	filer.Env.Run()

	want, _ := workload.TreeDigest(ctx, filer.FS.ActiveView(), "/")

	// DISASTER: the volume is gone. Build a blank replacement of the
	// same geometry and restore raw blocks onto it — no filesystem in
	// the path, no NVRAM.
	replacement, err := raid.Build(filer.Env, "replacement", raid.Config{
		Groups:            cfg.RaidGroups,
		DataDisksPerGroup: cfg.DataDisksPerGroup,
		BlocksPerDisk:     cfg.BlocksPerDisk,
		DiskParams:        cfg.DiskParams,
	})
	if err != nil {
		log.Fatal(err)
	}
	filer.Env.Spawn("image-restore", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		start := p.Now()
		stats, err := filer.ImageRestore(c, 0, replacement, false)
		if err != nil {
			log.Fatal(err)
		}
		replacement.Flush(c)
		fmt.Printf("image restore: %d blocks in %v (virtual)\n", stats.BlocksRestored, p.Now()-start)
	})
	filer.Env.Run()

	// Mount the replacement: "the system you restore looks just like
	// the system you dumped, snapshots and all."
	recovered, err := wafl.Mount(ctx, replacement, nil, wafl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	got, _ := workload.TreeDigest(ctx, recovered.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		log.Fatalf("live tree differs after recovery: %v", diffs)
	}
	sv, err := recovered.SnapshotView("monday")
	if err != nil {
		log.Fatal(err)
	}
	old, err := sv.ReadFile(ctx, "/db/records.v1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("live tree verified; snapshot %q survived too: %q\n", "monday", old)
	if err := recovered.MustCheck(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fsck clean — disaster recovery complete")
}
