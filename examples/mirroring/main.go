// Volume mirroring over a network link — the paper's §6 future
// direction for image dump ("remote mirroring and replication of
// volumes"). A production filer continuously replicates to a standby
// volume: the first sync ships the full image, every later sync ships
// only the block delta between two snapshots (the Table 1 set
// difference), and the standby is always a crash-consistent
// point-in-time image that mounts instantly.
//
// Run with: go run ./examples/mirroring
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/mirror"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.Name = "prod"
	cfg.Simulate = true
	prod, err := core.NewFiler(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.Generate(ctx, prod.FS, workload.Spec{
		Seed: 99, Files: 100, DirFanout: 8, MeanFileSize: 16 << 10,
	}); err != nil {
		log.Fatal(err)
	}

	// The standby: a raw device on the other end of a 4 MB/s WAN link.
	standby := storage.NewMemDevice(prod.Vol.NumBlocks())
	link := mirror.NewLink(prod.Env, "wan", 4<<20, time.Millisecond)
	m := mirror.New(prod.FS, prod.Vol, standby, link, prod.Config.PhysCosts)

	sync := func(label string) {
		prod.Env.Spawn("sync-"+label, func(p *sim.Proc) {
			c := core.Proc(ctx, p)
			start := p.Now()
			blocks, err := m.Sync(c)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s shipped %6d blocks (%6.1f MB over the link so far) in %v\n",
				label+":", blocks, float64(link.Sent())/(1<<20), p.Now()-start)
		})
		prod.Env.Run()
	}

	sync("initial")

	// Ongoing work on the production side, mirrored every "hour".
	for i := 0; i < 3; i++ {
		data := make([]byte, 128<<10)
		for j := range data {
			data[j] = byte(i + j)
		}
		prod.FS.WriteFile(ctx, fmt.Sprintf("/hot/update-%d.dat", i), data, 0644)
		sync(fmt.Sprintf("hour %d", i+1))
	}

	// Fail over: mount the standby and verify it matches the last
	// synced snapshot exactly.
	replica, err := wafl.Mount(ctx, standby.Clone(), nil, wafl.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sv, err := prod.FS.SnapshotView(m.LastSnapshot())
	if err != nil {
		log.Fatal(err)
	}
	want, _ := workload.TreeDigest(ctx, sv, "/")
	got, _ := workload.TreeDigest(ctx, replica.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		log.Fatalf("standby diverged: %v", diffs)
	}
	syncs, blocks := m.Stats()
	fmt.Printf("failover check ✓ — standby matches %q (%d syncs, %d blocks total)\n",
		m.LastSnapshot(), syncs, blocks)
}
