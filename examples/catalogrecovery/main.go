// Catalog recovery: the operational story the backup catalog exists
// for, end to end on the simulated clock.
//
//  1. A week of nightly dumps runs on the BSD ladder; every completed
//     set is journaled in the catalog and its media committed to the
//     pool.
//  2. Retention expires old chains; reclamation erases a cartridge
//     only once no unexpired set references it.
//  3. The filer crashes mid-append to the catalog journal. Reopening
//     recovers it: the torn record is discarded, every acknowledged
//     set survives.
//  4. The recovered catalog — not an operator's tape list — plans the
//     restore chain for a point in time and for a single lost file,
//     and the recover executor mounts the right cartridges and
//     replays it byte-identically.
//
// Run with: go run ./examples/catalogrecovery
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.Name = "home0"
	cfg.Simulate = true
	cfg.BlocksPerDisk = 512
	cfg.CartridgesPerDrive = 16
	// Small cartridges, so dumps spread across media and retention can
	// actually hand cartridges back to the scratch pool.
	cfg.TapeParams.Capacity = 128 << 10
	filer, err := core.NewFiler(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := workload.Generate(ctx, filer.FS, workload.Spec{
		Seed: 7, Files: 30, DirFanout: 5, MeanFileSize: 6 << 10,
	}); err != nil {
		log.Fatal(err)
	}

	// The catalog journal and the media pool it governs.
	store := &catalog.MemStore{}
	cat, err := catalog.Open(store)
	if err != nil {
		log.Fatal(err)
	}
	pool := media.NewPool("nightly", cat)
	if err := pool.Adopt(filer.Tapes[0], 0); err != nil {
		log.Fatal(err)
	}
	filer.AttachCatalog(cat)

	// A week of nightly dumps: level 0 then the ladder, with users
	// editing a report between runs and retention keeping the newest
	// three sets (plus whatever their chains need).
	scheduler, err := sched.New(sched.Config{
		Filer: filer, Catalog: cat, Pool: pool,
		Engine:    catalog.Logical,
		Policy:    sched.BSDLadder{Ladder: []int{3, 2, 5, 4, 7, 6}},
		Retention: media.KeepLast{N: 3},
		Churn: func(ctx context.Context, run int) error {
			if _, err := filer.FS.WriteFile(ctx, "/data/report.txt",
				[]byte(fmt.Sprintf("report, nightly revision %d\n", run)), 0644); err != nil {
				return err
			}
			// A day of bulk churn, so incrementals are big enough to
			// occupy cartridges of their own and retention visibly
			// hands media back.
			day := make([]byte, 80<<10)
			rand.New(rand.NewSource(int64(run))).Read(day)
			_, err := filer.FS.WriteFile(ctx, "/data/day.bin", day, 0644)
			return err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	results, err := scheduler.RunN(ctx, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== a week of scheduled dumps ==")
	for _, r := range results {
		fmt.Printf("night %d: level %d -> set %d on %v (%d bytes)",
			r.Run, r.Level, r.SetID, r.Media, r.Bytes)
		if len(r.Expired) > 0 {
			fmt.Printf(", retention expired sets %v", r.Expired)
		}
		fmt.Println()
	}

	fmt.Println("\n== media pool after retention and reclamation ==")
	for _, v := range pool.Volumes() {
		fmt.Printf("%-8s %-8s sets %v\n", v.Label, v.State, v.Sets)
	}

	// Crash mid-append: the journal ends in a torn record. Reopening
	// truncates it away; nothing acknowledged is lost.
	intact := cat.Sets()
	torn := tornJournal(store.Buf)
	fmt.Printf("\n== crash mid-append: journal %d bytes, %d of them torn ==\n",
		len(torn), len(torn)-len(store.Buf))
	recovered, err := catalog.Open(&catalog.MemStore{Buf: torn})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d sets (had %d), %d torn bytes discarded\n",
		len(recovered.Sets()), len(intact), recovered.TornBytes)

	// Point-in-time recovery from the recovered catalog: the planner
	// assembles the full + incremental chain; no manual media list.
	target := results[5]
	plan, err := recovered.Plan(catalog.PlanOptions{
		Engine: catalog.Logical, FSID: "home0", At: target.Date,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== recovering night %d (date %d) ==\n", target.Run, target.Date)
	fmt.Print(plan.String())
	if _, err := sched.Recover(ctx, filer, pool, plan, sched.RecoverOptions{Wipe: true}); err != nil {
		log.Fatal(err)
	}
	data, err := filer.FS.ActiveView().ReadFile(ctx, "/data/report.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report.txt after recovery: %q\n", data)

	// Stupidity recovery: the report vanishes; one file, one plan —
	// pruned to the single newest set whose index holds it.
	if err := filer.FS.RemovePath(ctx, "/data/report.txt"); err != nil {
		log.Fatal(err)
	}
	filePlan, err := recovered.Plan(catalog.PlanOptions{
		Engine: catalog.Logical, FSID: "home0", File: "/data/report.txt",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== single-file recovery ==\n")
	fmt.Print(filePlan.String())
	if _, err := sched.Recover(ctx, filer, pool, filePlan, sched.RecoverOptions{}); err != nil {
		log.Fatal(err)
	}
	data, err = filer.FS.ActiveView().ReadFile(ctx, "/data/report.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report.txt is back: %q\n", data)

	// Epilogue: a fresh full dump releases the old chain. Once every
	// set on a cartridge has expired — and only then — reclamation
	// erases it back to scratch; cartridges sharing even one live set
	// stay protected.
	fmt.Println("\n== fresh full dump, then retention reclaims the old chain ==")
	fresh, err := sched.New(sched.Config{
		Filer: filer, Catalog: cat, Pool: pool, Engine: catalog.Logical,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fresh.RunN(ctx, 1); err != nil { // a new scheduler's run 0 is a level 0
		log.Fatal(err)
	}
	if _, err := pool.ApplyRetention(media.KeepLast{N: 1}, "home0", catalog.Logical, 999); err != nil {
		log.Fatal(err)
	}
	reclaimed, err := pool.Reclaim(999)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reclaimed cartridges: %v\n", reclaimed)
	for _, v := range pool.Volumes() {
		fmt.Printf("%-12s %-8s sets %v\n", v.Label, v.State, v.Sets)
	}
}

// tornJournal returns the journal as a crash mid-append would leave
// it: every acknowledged record intact plus a prefix of one more.
func tornJournal(buf []byte) []byte {
	base := append([]byte(nil), buf...)
	scratch := &catalog.MemStore{Buf: append([]byte(nil), base...)}
	cat, err := catalog.Open(scratch)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "home0", Level: 9, Date: 1 << 40,
		Media: []catalog.MediaRef{{Volume: "never-finished"}},
	}); err != nil {
		log.Fatal(err)
	}
	frame := scratch.Buf[len(base):]
	cut := 1 + rand.New(rand.NewSource(42)).Intn(len(frame)-1)
	return append(base, frame[:cut]...)
}
