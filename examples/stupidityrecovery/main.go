// "Stupidity recovery" (the paper's term, §1): a user accidentally
// deletes one file. The example contrasts the two strategies' answers:
//
//  1. Logical restore pulls the single file off a dump tape directly —
//     the format is file-oriented, so restore skips everything else.
//  2. Physical backup cannot do this on the production volume ("the
//     entire file system must be recreated before the individual disk
//     blocks ... can be identified"); the §6 workaround replays the
//     image offline in memory and copies the file out.
//  3. Snapshots make both moot when the deletion is recent: the file
//     is still in yesterday's snapshot.
//
// Run with: go run ./examples/stupidityrecovery
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	cfg := core.DefaultConfig()
	cfg.Name = "homedir"
	cfg.Simulate = true
	cfg.TapeDrives = 2
	filer, err := core.NewFiler(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}

	precious := []byte("three years of thesis notes\n")
	if _, err := filer.FS.WriteFile(ctx, "/users/pat/thesis.tex", precious, 0600); err != nil {
		log.Fatal(err)
	}
	workload.Generate(ctx, filer.FS, workload.Spec{Seed: 13, Files: 80, DirFanout: 8, MeanFileSize: 8 << 10})

	// Nightly protection: a snapshot, a logical dump and an image dump.
	if err := filer.FS.CreateSnapshot(ctx, "nightly"); err != nil {
		log.Fatal(err)
	}
	var imageTape *physical.DumpStats
	filer.Env.Spawn("nightly-backups", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		filer.LoadTape(c, 0)
		filer.LoadTape(c, 1)
		if _, err := filer.LogicalDump(c, 0, 0, "", "nightly-dump", nil); err != nil {
			log.Fatal(err)
		}
		stats, err := filer.ImageDump(c, 1, "nightly-image", "")
		if err != nil {
			log.Fatal(err)
		}
		imageTape = stats
	})
	filer.Env.Run()
	fmt.Printf("nightly backups done (image: %d blocks)\n", imageTape.BlocksDumped)

	// Monday morning: rm thesis.tex.
	if err := filer.FS.RemovePath(ctx, "/users/pat/thesis.tex"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("oops: /users/pat/thesis.tex deleted")

	// Option 1 — single-file logical restore from tape: restore runs
	// its own namei over the desiccated directory image and lays only
	// the requested file on disk.
	filer.Env.Spawn("single-file", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		filer.Tapes[0].Rewind(p)
		start := p.Now()
		stats, err := logical.Restore(c, logical.RestoreOptions{
			FS:               filer.FS,
			Source:           filer.Source(c, 0),
			Files:            []string{"users/pat/thesis.tex"},
			KernelIntegrated: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("logical single-file restore: %d restored, %d skipped on tape, took %v (virtual)\n",
			stats.FilesRestored, stats.FilesSkipped, p.Now()-start)
	})
	filer.Env.Run()
	got, err := filer.FS.ActiveView().ReadFile(ctx, "/users/pat/thesis.tex")
	if err != nil || !bytes.Equal(got, precious) {
		log.Fatalf("logical recovery failed: %v", err)
	}
	fmt.Println("option 1 (logical tape): recovered ✓")

	// Option 2 — offline extraction from the image tape (§6).
	filer.FS.RemovePath(ctx, "/users/pat/thesis.tex") // delete it again
	var extracted map[string][]byte
	filer.Env.Spawn("extract", func(p *sim.Proc) {
		c := core.Proc(ctx, p)
		filer.Tapes[1].Rewind(p)
		var err error
		extracted, err = physical.Extract(c, filer.Source(c, 1), nil, "/users/pat/thesis.tex")
		if err != nil {
			log.Fatal(err)
		}
	})
	filer.Env.Run()
	if !bytes.Equal(extracted["/users/pat/thesis.tex"], precious) {
		log.Fatal("image extraction returned wrong bytes")
	}
	fmt.Println("option 2 (offline image replay): recovered ✓")

	// Option 3 — the snapshot still has it: "snapshots provide much
	// more protection from accidental deletion than is provided by
	// daily incremental backups."
	sv, err := filer.FS.SnapshotView("nightly")
	if err != nil {
		log.Fatal(err)
	}
	fromSnap, err := sv.ReadFile(ctx, "/users/pat/thesis.tex")
	if err != nil || !bytes.Equal(fromSnap, precious) {
		log.Fatalf("snapshot recovery failed: %v", err)
	}
	fmt.Println("option 3 (snapshot): recovered ✓ — no tape needed at all")
}
