// Command benchtables regenerates every table of the paper's
// evaluation (§5) plus the extension and ablation experiments indexed
// in DESIGN.md, printing them in the paper's layout. All time is
// virtual (discrete-event simulated); data sizes are laptop-scale, so
// rates, ratios and utilizations — not absolute hours — are the
// numbers to compare with the paper.
//
// Usage:
//
//	benchtables [-table N] [-mb M] [-age R] [-seed S] [-noverify]
//
// Tables: 1 block states, 2 basic throughput, 3 stage breakdown,
// 4 two drives, 5 four drives, 6 concurrent volumes, 7 scaling
// summary, 8 NVRAM ablation, 9 read-ahead ablation, 10 zero-copy
// ablation, 11 incremental dumps, 12 mirroring lag. Default: all.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "table to regenerate (0 = all)")
	mb := flag.Int("mb", 48, "dataset size in MiB")
	age := flag.Int("age", 6, "aging rounds (fragmentation)")
	seed := flag.Int64("seed", 1999, "workload seed")
	noverify := flag.Bool("noverify", false, "skip restored-tree verification")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.DataMB = *mb
	cfg.AgeRounds = *age
	cfg.Seed = *seed
	cfg.Verify = !*noverify

	ctx := context.Background()
	want := func(n int) bool { return *table == 0 || *table == n }

	if want(1) {
		fmt.Println(bench.Table1())
	}
	if want(2) || want(3) {
		res, err := bench.RunBasic(ctx, cfg)
		die(err)
		if want(2) {
			fmt.Println(bench.FormatOpsTable(
				fmt.Sprintf("Table 2: Basic Backup and Restore Performance (%d MB mature dataset)", res.DataBytes>>20),
				res.Ops()))
		}
		if want(3) {
			groups := map[string][]*bench.Stage{
				"Logical Dump":     res.LogicalBackup.Stages,
				"Logical Restore":  res.LogicalRestore.Stages,
				"Physical Dump":    res.PhysicalBackup.Stages,
				"Physical Restore": res.PhysicalRestore.Stages,
			}
			fmt.Println(bench.FormatStagesTable("Table 3: Dump and Restore Details", groups,
				[]string{"Logical Dump", "Logical Restore", "Physical Dump", "Physical Restore"}))
		}
	}
	for _, tc := range []struct{ n, drives int }{{4, 2}, {5, 4}} {
		if !want(tc.n) {
			continue
		}
		res, err := bench.RunParallel(ctx, cfg, tc.drives)
		die(err)
		groups := map[string][]*bench.Stage{
			"Logical Backup":   res.LogicalBackupStages,
			"Logical Restore":  res.LogicalRestoreStages,
			"Physical Backup":  res.PhysicalBackupStages,
			"Physical Restore": res.PhysicalRestoreStages,
		}
		fmt.Println(bench.FormatParallelTable(
			fmt.Sprintf("Table %d: Parallel Backup and Restore Performance on %d tape drives (%d MB)",
				tc.n, tc.drives, res.DataBytes>>20),
			groups,
			[]string{"Logical Backup", "Logical Restore", "Physical Backup", "Physical Restore"}))
		fmt.Println(bench.FormatOpsTable("  Aggregate:", []bench.OpResult{
			res.LogicalBackup, res.LogicalRestore, res.PhysicalBackup, res.PhysicalRestore,
		}))
	}
	if want(6) {
		res, err := bench.RunConcurrentVolumes(ctx, cfg)
		die(err)
		fmt.Println(bench.FormatOpsTable("Table 6: Concurrent dumps of two volumes (cf. §5.1)",
			[]bench.OpResult{res.HomeIsolated, res.RlseIsolated, res.HomeConcurrent, res.RlseConcurrent}))
	}
	if want(7) {
		points, err := bench.RunScaling(ctx, cfg, []int{1, 2, 4})
		die(err)
		fmt.Println("Table 7: Backup scaling with tape drives (cf. §5.2–5.3)")
		fmt.Printf("%-8s %-28s %-28s\n", "Drives", "Logical GB/h (per tape, CPU)", "Physical GB/h (per tape, CPU)")
		for _, p := range points {
			fmt.Printf("%-8d %6.1f (%5.1f, %3.0f%%)          %6.1f (%5.1f, %3.0f%%)\n",
				p.Drives, p.LogicalGBph, p.LogicalPer, 100*p.LogicalCPU,
				p.PhysGBph, p.PhysPer, 100*p.PhysCPU)
		}
		fmt.Println()
	}
	for _, tc := range []struct {
		n   int
		run func(context.Context, bench.Config) (*bench.AblationResult, error)
	}{{8, bench.RunNVRAMAblation}, {9, bench.RunReadAheadAblation}, {10, bench.RunCopyAblation}} {
		if !want(tc.n) {
			continue
		}
		res, err := tc.run(ctx, cfg)
		die(err)
		fmt.Printf("Table %d: %s (speedup %.2fx)\n", tc.n, res.Name, res.Speedup())
		fmt.Println(bench.FormatOpsTable("", []bench.OpResult{res.Baseline, res.Variant}))
	}
	if want(12) {
		pts, err := bench.RunMirrorLag(ctx, cfg, []float64{1, 4, 16})
		die(err)
		fmt.Println("Table 12: Incremental-image mirroring over a network link (§6 extension)")
		fmt.Printf("%-12s %-28s %-28s\n", "Link MB/s", "Initial sync (blocks)", "Steady sync after ~3% churn")
		for _, p := range pts {
			fmt.Printf("%-12.1f %-10v (%6d)          %-10v (%6d)\n",
				p.LinkMBps, p.InitialSync.Round(time.Millisecond), p.InitialBlk,
				p.SteadySync.Round(time.Millisecond), p.SteadyBlk)
		}
		fmt.Println()
	}
	if want(11) {
		res, err := bench.RunIncremental(ctx, cfg)
		die(err)
		fmt.Println("Table 11: Incremental dumps after ~5% churn (§6 extension)")
		fmt.Printf("  Logical:  full %8d KB in %-12v  level-1 %8d KB in %v\n",
			res.FullLogicalBytes>>10, res.FullLogical.Elapsed, res.IncrLogicalBytes>>10, res.IncrLogical.Elapsed)
		fmt.Printf("  Physical: full %8d blocks in %-9v incr    %8d blocks in %v\n",
			res.FullPhysicalBlocks, res.FullPhysical.Elapsed, res.IncrPhysicalBlocks, res.IncrPhysical.Elapsed)
		fmt.Println()
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
