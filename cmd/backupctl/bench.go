package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/obs"
)

// benchCommand runs the fast-path micro-benchmark suite (the bulk
// block I/O and record paths) and emits the results as a JSON report,
// optionally with CPU and heap profiles for pprof:
//
//	backupctl bench -json BENCH_fastpath.json
//	backupctl bench -cpuprofile cpu.out -memprofile mem.out
//	backupctl bench -obs BENCH_obs.json
func benchCommand(args []string) error {
	set := newFlagSet("bench")
	jsonPath := set.String("json", "BENCH_fastpath.json", "write the report here ('' = skip)")
	cpuProf := set.String("cpuprofile", "", "write a CPU profile here")
	memProf := set.String("memprofile", "", "write a heap profile here")
	obsPath := set.String("obs", "", "also run the instrumented workload and write its metrics report here")
	if err := set.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep := bench.RunFastPath()
	fmt.Print(rep.Format())
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if *obsPath != "" {
		obsRep, err := bench.RunObs(context.Background(),
			bench.Config{DataMB: 8, Seed: 1999, AgeRounds: 2}, obs.NewTracer())
		if err != nil {
			return err
		}
		f, err := os.Create(*obsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obsRep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("observability report written to %s\n", *obsPath)
	}
	return nil
}
