package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// benchCommand runs the fast-path micro-benchmark suite (the bulk
// block I/O and record paths) and emits the results as a JSON report,
// optionally with CPU and heap profiles for pprof; -compare gates the
// current numbers against a committed baseline, and -parallel runs the
// drives × readers scaling matrix of Tables 4–5 instead:
//
//	backupctl bench -json BENCH_fastpath.json
//	backupctl bench -json '' -compare BENCH_fastpath.json
//	backupctl bench -cpuprofile cpu.out -memprofile mem.out
//	backupctl bench -obs BENCH_obs.json
//	backupctl bench -parallel -drives 1,2,4 -readers 3 -depth 3
//	backupctl bench -clients 100 -tenants 4 -pool-drives 4
func benchCommand(args []string) error {
	set := newFlagSet("bench")
	jsonPath := set.String("json", "BENCH_fastpath.json", "write the report here ('' = skip); -parallel defaults to BENCH_parallel.json")
	cpuProf := set.String("cpuprofile", "", "write a CPU profile here")
	memProf := set.String("memprofile", "", "write a heap profile here")
	obsPath := set.String("obs", "", "also run the instrumented workload and write its metrics report here")
	comparePath := set.String("compare", "", "diff against this baseline report and fail on regression")
	tolerance := set.Float64("tolerance", 0.15, "relative regression tolerance for -compare")
	parallel := set.Bool("parallel", false, "run the parallel dump/restore scaling matrix instead of the fast-path suite")
	drivesList := set.String("drives", "1,2,4", "comma-separated drive counts for -parallel")
	readers := set.Int("readers", 0, "parallel readers per shard for -parallel (0 = default)")
	depth := set.Int("depth", 0, "per-reader read-ahead depth for -parallel (0 = default)")
	mb := set.Int("mb", 24, "dataset size in MiB for -parallel / -chunkweek")
	chunkSuite := set.Bool("chunk", false, "run the chunk splitter/dedup micro-suite instead; -json defaults to BENCH_chunk.json")
	clients := set.Int("clients", 0, "run the multi-tenant serve bench with this many concurrent clients instead; -json defaults to BENCH_serve.json")
	tenants := set.Int("tenants", 4, "tenants the serve-bench clients round-robin across")
	poolDrives := set.Int("pool-drives", 4, "drive-pool slots for the serve bench")
	chunkWeek := set.Bool("chunkweek", false, "run the dedup-week experiment (forward and reverse) and print its table")
	if err := set.Parse(args); err != nil {
		return err
	}
	jsonOf := func(def string) string {
		explicit := false
		set.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "json" })
		if explicit {
			return *jsonPath
		}
		return def
	}
	if *parallel {
		return benchParallel(jsonOf("BENCH_parallel.json"), *drivesList, *readers, *depth, *mb)
	}
	if *clients > 0 {
		return benchServe(jsonOf("BENCH_serve.json"), *comparePath, *tolerance, bench.ServeConfig{
			Clients: *clients, Tenants: *tenants, Drives: *poolDrives,
		})
	}
	if *chunkWeek {
		return benchChunkWeek(*mb)
	}
	if *chunkSuite {
		path := jsonOf("BENCH_chunk.json")
		rep := bench.RunChunkBench()
		fmt.Print(rep.Format())
		if path != "" {
			if err := rep.WriteJSON(path); err != nil {
				return err
			}
			fmt.Printf("report written to %s\n", path)
		}
		if *comparePath != "" {
			base, err := bench.ReadFastPathJSON(*comparePath)
			if err != nil {
				return err
			}
			if regs := bench.Compare(base, rep, *tolerance); len(regs) > 0 {
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "regression: %s\n", r)
				}
				return fmt.Errorf("bench: %d regression(s) against %s", len(regs), *comparePath)
			}
			fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", *comparePath, 100**tolerance)
		}
		return nil
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep := bench.RunFastPath()
	fmt.Print(rep.Format())
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if *comparePath != "" {
		base, err := bench.ReadFastPathJSON(*comparePath)
		if err != nil {
			return err
		}
		if regs := bench.Compare(base, rep, *tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "regression: %s\n", r)
			}
			return fmt.Errorf("bench: %d regression(s) against %s", len(regs), *comparePath)
		}
		fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", *comparePath, 100**tolerance)
	}
	if *obsPath != "" {
		obsRep, err := bench.RunObs(context.Background(),
			bench.Config{DataMB: 8, Seed: 1999, AgeRounds: 2}, obs.NewTracer())
		if err != nil {
			return err
		}
		f, err := os.Create(*obsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obsRep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("observability report written to %s\n", *obsPath)
	}
	return nil
}

// benchChunkWeek runs the dedup-week experiment in both modes and
// prints the EXPERIMENTS.md table: a week of daily level-0 fulls
// through the chunk layer, then the restore-latest / restore-oldest
// tradeoff against a conventional streaming restore.
func benchChunkWeek(mb int) error {
	for _, reverse := range []bool{false, true} {
		mode := "forward"
		if reverse {
			mode = "reverse"
		}
		rep, err := bench.RunChunkWeek(context.Background(),
			bench.Config{DataMB: mb, Seed: 7}, reverse)
		if err != nil {
			return err
		}
		fmt.Printf("dedup week (%s, %d MiB dataset)\n", mode, mb)
		fmt.Println("day  logical MB   added MB      hits    misses  rewrites   dump sim s")
		for _, d := range rep.Days {
			fmt.Printf("%3d  %10.2f  %9.2f  %8d  %8d  %8d  %11.2f\n",
				d.Day, d.LogicalMB, d.AddedMB, d.Hits, d.Misses, d.Rewrites, d.DumpSimSec)
		}
		fmt.Printf("dedup ratio: %.2fx (%d logical bytes in %d unique stored bytes)\n",
			rep.DedupRatio, rep.LogicalBytes, rep.UniqueBytes)
		fmt.Printf("restore latest %.2fs, oldest %.2fs, streaming baseline %.2fs (latest/baseline %.2fx)\n\n",
			rep.RestoreLatestSec, rep.RestoreOldestSec, rep.BaselineRestoreSec, rep.LatestVsBaseline)
	}
	return nil
}

// benchServe runs the multi-tenant concurrent-push bench: N
// simulated-clock clients onto one registry host over a drive pool,
// gated on per-tenant fairness and aggregate throughput.
func benchServe(jsonPath, comparePath string, tol float64, cfg bench.ServeConfig) error {
	rep, err := bench.RunServeBench(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	if comparePath != "" {
		base, err := bench.ReadServeJSON(comparePath)
		if err != nil {
			return err
		}
		if regs := bench.CompareServe(base, rep, tol); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "regression: %s\n", r)
			}
			return fmt.Errorf("bench: %d regression(s) against %s", len(regs), comparePath)
		}
		fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", comparePath, 100*tol)
	}
	return nil
}

// benchParallel runs the Tables 4–5 scaling matrix: each operation is
// one parallel Dump/Restore call fanned across N drives with the
// configured reader count and read-ahead depth.
func benchParallel(jsonPath, drivesList string, readers, depth, mb int) error {
	var counts []int
	for _, f := range strings.Split(drivesList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bench: bad -drives entry %q", f)
		}
		counts = append(counts, n)
	}
	cfg := bench.DefaultConfig()
	cfg.DataMB = mb
	cfg.AgeRounds = 4
	cfg.Readers = readers
	cfg.PipeDepth = depth
	rep, err := bench.RunParallelReport(context.Background(), cfg, counts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	return nil
}
