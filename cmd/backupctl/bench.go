package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/obs"
)

// benchCommand runs the fast-path micro-benchmark suite (the bulk
// block I/O and record paths) and emits the results as a JSON report,
// optionally with CPU and heap profiles for pprof; -compare gates the
// current numbers against a committed baseline, and -parallel runs the
// drives × readers scaling matrix of Tables 4–5 instead:
//
//	backupctl bench -json BENCH_fastpath.json
//	backupctl bench -json '' -compare BENCH_fastpath.json
//	backupctl bench -cpuprofile cpu.out -memprofile mem.out
//	backupctl bench -obs BENCH_obs.json
//	backupctl bench -parallel -drives 1,2,4 -readers 3 -depth 3
func benchCommand(args []string) error {
	set := newFlagSet("bench")
	jsonPath := set.String("json", "BENCH_fastpath.json", "write the report here ('' = skip); -parallel defaults to BENCH_parallel.json")
	cpuProf := set.String("cpuprofile", "", "write a CPU profile here")
	memProf := set.String("memprofile", "", "write a heap profile here")
	obsPath := set.String("obs", "", "also run the instrumented workload and write its metrics report here")
	comparePath := set.String("compare", "", "diff against this baseline report and fail on regression")
	tolerance := set.Float64("tolerance", 0.15, "relative regression tolerance for -compare")
	parallel := set.Bool("parallel", false, "run the parallel dump/restore scaling matrix instead of the fast-path suite")
	drivesList := set.String("drives", "1,2,4", "comma-separated drive counts for -parallel")
	readers := set.Int("readers", 0, "parallel readers per shard for -parallel (0 = default)")
	depth := set.Int("depth", 0, "per-reader read-ahead depth for -parallel (0 = default)")
	mb := set.Int("mb", 24, "dataset size in MiB for -parallel")
	if err := set.Parse(args); err != nil {
		return err
	}
	if *parallel {
		path := *jsonPath
		explicit := false
		set.Visit(func(f *flag.Flag) { explicit = explicit || f.Name == "json" })
		if !explicit {
			path = "BENCH_parallel.json"
		}
		return benchParallel(path, *drivesList, *readers, *depth, *mb)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep := bench.RunFastPath()
	fmt.Print(rep.Format())
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		if err := rep.WriteJSON(*jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *jsonPath)
	}
	if *comparePath != "" {
		base, err := bench.ReadFastPathJSON(*comparePath)
		if err != nil {
			return err
		}
		if regs := bench.Compare(base, rep, *tolerance); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "regression: %s\n", r)
			}
			return fmt.Errorf("bench: %d regression(s) against %s", len(regs), *comparePath)
		}
		fmt.Printf("no regressions against %s (tolerance %.0f%%)\n", *comparePath, 100**tolerance)
	}
	if *obsPath != "" {
		obsRep, err := bench.RunObs(context.Background(),
			bench.Config{DataMB: 8, Seed: 1999, AgeRounds: 2}, obs.NewTracer())
		if err != nil {
			return err
		}
		f, err := os.Create(*obsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obsRep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("observability report written to %s\n", *obsPath)
	}
	return nil
}

// benchParallel runs the Tables 4–5 scaling matrix: each operation is
// one parallel Dump/Restore call fanned across N drives with the
// configured reader count and read-ahead depth.
func benchParallel(jsonPath, drivesList string, readers, depth, mb int) error {
	var counts []int
	for _, f := range strings.Split(drivesList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bench: bad -drives entry %q", f)
		}
		counts = append(counts, n)
	}
	cfg := bench.DefaultConfig()
	cfg.DataMB = mb
	cfg.AgeRounds = 4
	cfg.Readers = readers
	cfg.PipeDepth = depth
	rep, err := bench.RunParallelReport(context.Background(), cfg, counts)
	if err != nil {
		return err
	}
	fmt.Print(rep.Format())
	if jsonPath != "" {
		if err := rep.WriteJSON(jsonPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", jsonPath)
	}
	return nil
}
