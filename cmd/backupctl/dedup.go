// Dedup-encoded dumps for backupctl: with -dedup a dump stream is cut
// into content-defined chunks, deduplicated against the volume's chunk
// index (which lives in <vol>.catalog), compressed, and appended to
// the shared <vol>.chunkstore file instead of a per-dump stream file.
// The set's manifest is journaled beside it, and `restore -set N` /
// `imagerestore -set N` rebuild the stream by resolving the manifest
// through the index. `catalog -sweep` erases zero-reference chunks.
package main

import (
	"fmt"
	"os"

	"repro/internal/catalog"
	"repro/internal/chunk"
)

// chunkStorePath names the shared chunk store beside a volume image.
func chunkStorePath(vol string) string { return vol + ".chunkstore" }

// openChunkStore opens (creating if absent) the chunk store beside
// vol. The store path doubles as the media volume label, matching the
// MediaRef convention for stream files.
func openChunkStore(vol string) (*chunk.FileMedia, error) {
	p := chunkStorePath(vol)
	return chunk.OpenFileMedia(p, p)
}

// printDedupStats reports one dedup-encoded dump's outcome.
func printDedupStats(ws chunk.WriterStats, m chunk.Manifest) {
	saved := ws.HitBytes
	ratio := 1.0
	if m.StoredBytes > 0 {
		ratio = float64(m.RawBytes) / float64(m.StoredBytes)
	}
	fmt.Printf("dedup: %d chunks (%d hits, %d misses, %d rewrites), %d bytes saved, %.2fx vs store\n",
		ws.Chunks, ws.Hits, ws.Misses, ws.Rewrites, saved, ratio)
}

// manifestSource opens set id's manifest from cat and returns a
// record source that rebuilds its stream through the chunk index.
func manifestSource(cat *catalog.Catalog, vol string, id uint64) (*chunk.Reader, *chunk.FileMedia, error) {
	m, ok := cat.Manifest(id)
	if !ok {
		return nil, nil, fmt.Errorf("set %d has no chunk manifest (not a dedup-encoded dump)", id)
	}
	media, err := openChunkStore(vol)
	if err != nil {
		return nil, nil, err
	}
	return chunk.NewReader(cat, media, m), media, nil
}

// sweepChunks erases zero-reference chunks from the store beside vol.
// The erase record is journaled before the bytes are zeroed, so a
// crash between the two only leaves dead (unreferenced) bytes behind.
func sweepChunks(cat *catalog.Catalog, vol string) error {
	var erase func(chunk.Entry) error
	var media *chunk.FileMedia
	if _, err := os.Stat(chunkStorePath(vol)); err == nil {
		m, err := openChunkStore(vol)
		if err != nil {
			return err
		}
		media = m
		defer media.Close()
		erase = func(e chunk.Entry) error { return media.Erase(e.Loc) }
	}
	swept, err := cat.SweepChunks(erase)
	if err != nil {
		return err
	}
	var bytes int64
	for _, e := range swept {
		bytes += int64(e.StoredLen)
	}
	fmt.Printf("swept %d zero-ref chunks (%d stored bytes erased)\n", len(swept), bytes)
	return nil
}
