package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/catalog"
)

// TestMirrorStore: the serve-side standby journal tracks the primary
// through appends, extends a clean lagging prefix at open, and
// rewrites a diverged copy from the primary.
func TestMirrorStore(t *testing.T) {
	dir := t.TempDir()
	pPath := filepath.Join(dir, "primary.catalog")
	sPath := filepath.Join(dir, "standby.catalog")

	equal := func() {
		t.Helper()
		pb, _ := os.ReadFile(pPath)
		sb, _ := os.ReadFile(sPath)
		if !bytes.Equal(pb, sb) {
			t.Fatalf("standby (%d bytes) != primary (%d bytes)", len(sb), len(pb))
		}
	}

	m, err := openMirrorStore(pPath, sPath)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(m)
	if err != nil {
		t.Fatal(err)
	}
	for i, snap := range []string{"mon", "tue"} {
		if _, err := cat.AppendDumpSet(catalog.DumpSet{
			Engine: catalog.Logical, FSID: "vol0", Snap: snap, Date: int64(100 + i),
			Media: []catalog.MediaRef{{Volume: "t0"}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	equal()
	m.Close()

	// Lag the standby by truncating it to a frame boundary mid-way;
	// reopening must extend the clean prefix without rewriting.
	pb, err := os.ReadFile(pPath)
	if err != nil {
		t.Fatal(err)
	}
	var firstFrame int64
	if _, err := catalog.ScanFrames(pb, func(off int64, payload []byte) error {
		if firstFrame == 0 {
			firstFrame = off + int64(len(payload)) + 12
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(sPath, firstFrame); err != nil {
		t.Fatal(err)
	}
	if m, err = openMirrorStore(pPath, sPath); err != nil {
		t.Fatal(err)
	}
	equal()
	m.Close()

	// Diverge the standby (flip a byte); reopening rewrites it.
	sb, err := os.ReadFile(sPath)
	if err != nil {
		t.Fatal(err)
	}
	sb[len(sb)/2] ^= 0xFF
	if err := os.WriteFile(sPath, sb, 0644); err != nil {
		t.Fatal(err)
	}
	if m, err = openMirrorStore(pPath, sPath); err != nil {
		t.Fatal(err)
	}
	equal()

	// The replicated catalog still replays every set through the mirror.
	replay, err := catalog.Open(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(replay.Sets()); got != 2 {
		t.Fatalf("mirror replays %d sets, want 2", got)
	}
	m.Close()
}
