// Remote backup: backupctl serve turns a host into a stream
// receiver, backupctl push drives a dump across TCP into it. Both
// ends speak the ndmp session protocol, so a push survives the same
// link faults the chaos suite injects: lost or corrupted frames are
// replayed from the send window after a redial, and a dead receiver
// surfaces as a typed error that restarts the dump from its last
// acknowledged checkpoint on a fresh stream.
//
//	backupctl serve -listen :9000 -o /backups/home.dump -once
//	backupctl -vol home.img push -to filer:9000
//	backupctl -vol home.img push -to filer:9000 -kind image
//
// Each stream of a session lands in its own file: the first at the
// -o path, resumed streams (after a mid-push failure) beside it with
// an .s<N> suffix. Restore them in order — all but the last with
// salvage semantics — exactly like replacement tapes.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/logical"
	"repro/internal/ndmp"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/transport"
	"repro/internal/wafl"
)

// streamPath names the file for one stream of a session: the base
// path for stream 0, base.s<N> for checkpoint-resumed streams.
func streamPath(base string, stream int) string {
	if stream == 0 {
		return base
	}
	return fmt.Sprintf("%s.s%d", base, stream)
}

func serveCommand(rest []string) error {
	set := newFlagSet("serve")
	listen := set.String("listen", ":9000", "TCP address to listen on")
	out := set.String("o", "", "output stream file (resumed streams get .s<N> suffixes)")
	once := set.Bool("once", false, "exit after one session closes cleanly")
	standby := set.String("standby", "", "mirror the serve-side catalog to this standby journal file")
	idle := set.Duration("idle", 30*time.Second, "drop a connection silent for this long")
	trace := set.String("trace", "", "write a Chrome trace of served connections to this file")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("serve: -o required")
	}
	var tr *obs.Tracer
	if *trace != "" {
		tracer, flush, err := traceToFile(*trace)
		if err != nil {
			return err
		}
		defer flush()
		tr = tracer
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	fmt.Printf("serving on %s, streams to %s\n", l.Addr(), *out)
	return serveOn(l, *out, *standby, *once, *idle, tr)
}

// serveOn accepts connections on l and feeds their frames to a single
// tape host whose sinks are stream files under base. Connections are
// handled one at a time: a session owns the host until it closes, and
// a client redialing after a cut first causes the stale connection's
// read to fail, which drops it back to Accept. Returns after a clean
// session close when once is set, otherwise serves until l is closed.
func serveOn(l net.Listener, base, standby string, once bool, idle time.Duration, tr *obs.Tracer) error {
	traceCtx := obs.WithTracer(context.Background(), tr)
	var open []*fileSink
	var received []recvStream
	closeAll := func() {
		for _, s := range open {
			s.Close()
		}
		open = open[:0]
	}
	defer closeAll()
	host := ndmp.NewHost(func(h ndmp.Hello) (ndmp.Sink, error) {
		path := streamPath(base, h.Stream)
		sink, err := createStream(path, 0)
		if err != nil {
			return nil, err
		}
		open = append(open, sink)
		received = append(received, recvStream{hello: h, path: path})
		fmt.Printf("receiving session %d stream %d (fsid %q level %d) -> %s\n",
			h.Session, h.Stream, h.FSID, h.Level, path)
		return sink, nil
	})
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		nc := transport.NewNetConn(conn)
		_, span := obs.Start(traceCtx, "serve.conn")
		span.SetAttr("peer", conn.RemoteAddr().String())
		err = ndmp.Serve(nc, host, idle)
		hs := host.Stats()
		span.SetAttr("records", hs.Records)
		span.SetAttr("streams", hs.Streams)
		span.End()
		nc.Close()
		if err != nil {
			// The client redials recoverable faults; keep listening.
			fmt.Fprintf(os.Stderr, "backupctl: serve: connection dropped: %v\n", err)
			continue
		}
		st := host.Stats()
		fmt.Printf("session closed: %d stream(s), %d records, %d replayed duplicates\n",
			st.Streams, st.Records, st.Duplicates)
		closeAll()
		// The session closed cleanly, so every landed stream is a
		// completed dump: record them in the server's own catalog.
		if err := recordReceived(base, standby, received); err != nil {
			return fmt.Errorf("serve: recording session in catalog: %w", err)
		}
		received = received[:0]
		if once {
			return nil
		}
	}
}

func pushCommand(ctx context.Context, fs *wafl.FS, vol string, rest []string) error {
	set := newFlagSet("push")
	to := set.String("to", "", "receiver address (host:port)")
	kind := set.String("kind", "logical", "stream kind: logical or image")
	level := set.Int("level", 0, "incremental level 0-9 (logical)")
	snap := set.String("snap", "", "snapshot to dump (image; created if missing)")
	ckpt := set.Int("ckpt", 0, "checkpoint interval in files (logical) or blocks (image); 0 = default")
	window := set.Int("window", 0, "session send window in records (0 = protocol default)")
	session := set.Uint64("session", 0, "session id (0 = pick at random)")
	maxResumes := set.Int("max-resumes", 4, "give up after this many checkpoint resumes")
	dead := set.Duration("dead", 0, "declare the receiver dead after this much silence (0 = protocol default)")
	trace := set.String("trace", "", "write a Chrome trace of the push to this file")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("push: -to required")
	}
	if *session == 0 {
		// Clock-derived ids collide when two pushes start in the same
		// nanosecond tick (coarse clocks make that real) and, worse, a
		// collision silently rebinds the receiver's stream state.
		// Random ids make collisions 2^-64-unlikely; redraw the
		// reserved id 0, which the protocol uses for "no session".
		id, err := randomSessionID()
		if err != nil {
			return fmt.Errorf("push: deriving session id: %w", err)
		}
		*session = id
	}
	if *trace != "" {
		tracer, flush, err := traceToFile(*trace)
		if err != nil {
			return err
		}
		defer flush()
		ctx = obs.WithTracer(ctx, tracer)
	}

	streamKind := byte(ndmp.KindLogical)
	var lgOpts logical.DumpOptions
	var phOpts physical.DumpOptions
	var dates *logical.DumpDates
	switch *kind {
	case "logical":
		if *ckpt <= 0 {
			*ckpt = 64 // files between resumable checkpoints
		}
		dates, _ = loadDates(vol)
		if err := fs.CreateSnapshot(ctx, "backupctl.push"); err != nil {
			return err
		}
		defer fs.DeleteSnapshot(ctx, "backupctl.push")
		view, err := fs.SnapshotView("backupctl.push")
		if err != nil {
			return err
		}
		lgOpts = logical.DumpOptions{
			View: view, Level: *level, Dates: dates, FSID: vol,
			Label: "backupctl", ReadAhead: 16, CheckpointEvery: *ckpt,
		}
	case "image":
		streamKind = ndmp.KindImage
		if *ckpt <= 0 {
			*ckpt = 256 // blocks between resumable checkpoints
		}
		name := *snap
		if name == "" {
			name = "backupctl.push"
		}
		if _, err := fs.Snapshot(name); err != nil {
			if err := fs.CreateSnapshot(ctx, name); err != nil {
				return err
			}
		}
		phOpts = physical.DumpOptions{
			FS: fs, Vol: fs.Device(), SnapName: name, CheckpointEvery: *ckpt,
		}
	default:
		return fmt.Errorf("push: unknown -kind %q", *kind)
	}

	dial := func() (transport.Conn, error) {
		c, err := net.Dial("tcp", *to)
		if err != nil {
			return nil, err
		}
		return transport.NewNetConn(c), nil
	}

	// The engine-resume loop: the session absorbs recoverable link
	// faults internally; only a dead peer or an exhausted redial
	// budget escapes, and then the dump restarts on a fresh stream
	// from its last acknowledged checkpoint.
	reconnects, replayed := 0, 0
	for attempt := 0; ; attempt++ {
		if attempt > *maxResumes {
			return fmt.Errorf("push: gave up after %d checkpoint resumes", *maxResumes)
		}
		pushLevel := int32(*level)
		if streamKind == ndmp.KindImage {
			pushLevel = -1
		}
		sess, err := ndmp.Dial(dial, ndmp.Config{
			Kind: streamKind, Session: *session, Stream: attempt,
			Window: *window, DeadAfter: *dead, Ctx: ctx,
			FSID: vol, Level: pushLevel,
		})
		if err != nil {
			return fmt.Errorf("push: dial stream %d: %w", attempt, err)
		}

		var lgStats *logical.DumpStats
		var phStats *physical.DumpStats
		if streamKind == ndmp.KindLogical {
			lgOpts.Sink = sess
			lgStats, err = logical.Dump(ctx, lgOpts)
		} else {
			phOpts.Sink = sess
			phStats, err = physical.Dump(ctx, phOpts)
		}
		if err == nil {
			err = sess.Close()
		}
		st := sess.Stats()
		reconnects += st.Reconnects
		replayed += st.Replayed
		if err == nil {
			if streamKind == ndmp.KindLogical {
				if err := saveDates(vol, dates); err != nil {
					return err
				}
				fmt.Printf("pushed %d files, %d dirs, %d bytes (level %d)\n",
					lgStats.FilesDumped, lgStats.DirsDumped, lgStats.BytesWritten, *level)
			} else {
				fmt.Printf("pushed %d blocks (generation %d)\n", phStats.BlocksDumped, phStats.Gen)
			}
			fmt.Printf("session %d: %d stream(s), %d acked records, %d reconnects, %d replayed\n",
				*session, attempt+1, sess.Acked(), reconnects, replayed)
			return nil
		}
		if !errors.Is(err, ndmp.ErrPeerDead) && !errors.Is(err, ndmp.ErrSessionLost) {
			return fmt.Errorf("push: stream %d: %w", attempt, err)
		}
		fmt.Fprintf(os.Stderr, "backupctl: push: stream %d lost (%v)\n", attempt, err)
		lgOpts.Resume, phOpts.Resume = nil, nil
		switch {
		case lgStats != nil && lgStats.Checkpoint != nil:
			lgOpts.Resume = lgStats.Checkpoint
			fmt.Fprintf(os.Stderr, "backupctl: push: resuming from acknowledged checkpoint on stream %d\n", attempt+1)
		case phStats != nil && phStats.Checkpoint != nil:
			phOpts.Resume = phStats.Checkpoint
			fmt.Fprintf(os.Stderr, "backupctl: push: resuming from acknowledged checkpoint on stream %d\n", attempt+1)
		default:
			fmt.Fprintf(os.Stderr, "backupctl: push: no acknowledged checkpoint; restarting stream\n")
		}
	}
}
