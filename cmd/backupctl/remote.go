// Remote backup: backupctl serve turns a host into a stream
// receiver, backupctl push drives a dump across TCP into it. Both
// ends speak the ndmp session protocol, so a push survives the same
// link faults the chaos suite injects: lost or corrupted frames are
// replayed from the send window after a redial, and a dead receiver
// surfaces as a typed error that restarts the dump from its last
// acknowledged checkpoint on a fresh stream.
//
//	backupctl serve -listen :9000 -o /backups/home.dump -once
//	backupctl -vol home.img push -to filer:9000
//	backupctl -vol home.img push -to filer:9000 -kind image
//
// Each stream of a session lands in its own file: the first at the
// -o path, resumed streams (after a mid-push failure) beside it with
// an .s<N> suffix. Restore them in order — all but the last with
// salvage semantics — exactly like replacement tapes.
package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/logical"
	"repro/internal/ndmp"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/sched"
	"repro/internal/transport"
	"repro/internal/wafl"
)

// streamPath names the file for one stream of a session: the base
// path for stream 0, base.s<N> for checkpoint-resumed streams.
func streamPath(base string, stream int) string {
	if stream == 0 {
		return base
	}
	return fmt.Sprintf("%s.s%d", base, stream)
}

// tenantPath namespaces a server-side path by tenant: the default
// tenant keeps the plain path (and its catalog), every other tenant
// gets its own <path>.<tenant> family — stream files and catalog
// journals never cross tenant boundaries.
func tenantPath(path, tenant string) string {
	if tenant == "" || path == "" {
		return path
	}
	return path + "." + tenant
}

func serveCommand(rest []string) error {
	set := newFlagSet("serve")
	listen := set.String("listen", ":9000", "TCP address to listen on")
	out := set.String("o", "", "output stream file (resumed streams get .s<N> suffixes)")
	once := set.Bool("once", false, "exit after one session closes cleanly")
	standby := set.String("standby", "", "mirror the serve-side catalog to this standby journal file")
	idle := set.Duration("idle", 30*time.Second, "drop a connection silent for this long")
	trace := set.String("trace", "", "write a Chrome trace of served connections to this file")
	drives := set.Int("drives", 4, "tape drives in the pool: concurrent streams admitted")
	queue := set.Int("queue", 64, "bounded admission wait queue (-1 = reject instead of queueing)")
	rate := set.Int64("rate", 0, "per-tenant byte-rate limit, bytes/sec (0 = unlimited)")
	driveRate := set.Int64("drive-rate", 0, "per-drive byte-rate cap, bytes/sec (0 = unlimited)")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("serve: -o required")
	}
	var tr *obs.Tracer
	if *trace != "" {
		tracer, flush, err := traceToFile(*trace)
		if err != nil {
			return err
		}
		defer flush()
		tr = tracer
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer l.Close()
	pool := sched.NewDrivePool(sched.DrivePoolConfig{
		Drives: *drives, MaxQueue: *queue,
		DefaultRate: *rate, DriveRate: *driveRate,
	})
	fmt.Printf("serving on %s, streams to %s (%d drives)\n", l.Addr(), *out, *drives)
	return serveOn(l, *out, *standby, *once, *idle, tr, pool)
}

// serveOn accepts connections concurrently — one goroutine per
// connection, all feeding one shared session registry — so N clients
// push at once, multiplexed onto the drive pool by gate. Stream files
// land under the tenant-namespaced base: each tenant's first live
// session owns the plain paths, concurrent extra sessions of the same
// tenant get an .x<session> disambiguator. A session's streams are
// cataloged if and only if that session closes cleanly (the
// OnSessionClose hook), so a connection that drops mid-session can
// never smuggle its aborted streams into the catalog on the back of
// another client's clean close. Returns after the first clean session
// close when once is set, otherwise serves until l is closed.
func serveOn(l net.Listener, base, standby string, once bool, idle time.Duration, tr *obs.Tracer, gate ndmp.Gate) error {
	traceCtx := obs.WithTracer(context.Background(), tr)
	var (
		mu       sync.Mutex
		received = make(map[uint64][]recvStream) // session -> landed streams
		owner    = make(map[string]uint64)       // tenant -> session owning the plain base
		catMu    sync.Mutex                      // serializes per-tenant catalog appends
	)
	host := ndmp.NewHost(func(h ndmp.Hello) (ndmp.Sink, error) {
		mu.Lock()
		defer mu.Unlock()
		own, ok := owner[h.Tenant]
		if !ok {
			owner[h.Tenant] = h.Session
			own = h.Session
		}
		path := streamPath(tenantPath(base, h.Tenant), h.Stream)
		if own != h.Session {
			// A concurrent session of the same tenant: disambiguate its
			// stream files so two live pushes never share a path.
			path = fmt.Sprintf("%s.x%x", path, h.Session)
		}
		sink, err := createStream(path, 0)
		if err != nil {
			return nil, err
		}
		received[h.Session] = append(received[h.Session], recvStream{hello: h, path: path})
		fmt.Printf("receiving session %d stream %d (tenant %q fsid %q level %d) -> %s\n",
			h.Session, h.Stream, h.Tenant, h.FSID, h.Level, path)
		return sink, nil
	})
	host.Gate = gate
	defer host.Close()
	// Every cleanly closed session reports its catalog result here;
	// the accept loop consumes it (and returns in -once mode).
	closed := make(chan error, 64)
	host.OnSessionClose = func(session uint64, ends []ndmp.StreamEnd) {
		var tenant string
		if len(ends) > 0 {
			tenant = ends[0].Hello.Tenant
		}
		mu.Lock()
		rs := received[session]
		delete(received, session)
		if owner[tenant] == session {
			delete(owner, tenant)
		}
		mu.Unlock()
		var bytes int64
		for _, e := range ends {
			bytes += e.Bytes
		}
		fmt.Printf("session %d closed: %d stream(s), %d bytes (tenant %q)\n",
			session, len(ends), bytes, tenant)
		// The session closed cleanly, so every landed stream is a
		// completed dump: record them in the tenant's own catalog.
		catMu.Lock()
		err := recordReceived(tenantPath(base, tenant), tenantPath(standby, tenant), rs)
		catMu.Unlock()
		if err != nil {
			err = fmt.Errorf("serve: recording session %d in catalog: %w", session, err)
		}
		select {
		case closed <- err:
		default:
		}
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	done := make(chan struct{})
	defer close(done)
	conns := make(chan net.Conn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-done:
				}
				return
			}
			select {
			case conns <- c:
			case <-done:
				c.Close()
				return
			}
		}
	}()
	for {
		select {
		case err := <-closed:
			if err != nil {
				return err
			}
			if once {
				return nil
			}
		case err := <-acceptErr:
			return err
		case conn := <-conns:
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				nc := transport.NewNetConn(conn)
				go func() { // unblock the read when serveOn returns
					<-done
					nc.Close()
				}()
				_, span := obs.Start(traceCtx, "serve.conn")
				span.SetAttr("peer", conn.RemoteAddr().String())
				hc := host.NewConn()
				err := ndmp.ServeConn(nc, hc, idle)
				if h, ok := hc.Bound(); ok {
					span.SetAttr("tenant", h.Tenant)
					span.SetAttr("session", h.Session)
				}
				span.End()
				nc.Close()
				if err != nil {
					// The client redials recoverable faults; keep listening.
					fmt.Fprintf(os.Stderr, "backupctl: serve: connection dropped: %v\n", err)
				}
			}(conn)
		}
	}
}

func pushCommand(ctx context.Context, fs *wafl.FS, vol string, rest []string) error {
	set := newFlagSet("push")
	to := set.String("to", "", "receiver address (host:port)")
	kind := set.String("kind", "logical", "stream kind: logical or image")
	level := set.Int("level", 0, "incremental level 0-9 (logical)")
	snap := set.String("snap", "", "snapshot to dump (image; created if missing)")
	ckpt := set.Int("ckpt", 0, "checkpoint interval in files (logical) or blocks (image); 0 = default")
	window := set.Int("window", 0, "session send window in records (0 = protocol default)")
	session := set.Uint64("session", 0, "session id (0 = pick at random)")
	tenant := set.String("tenant", "", "tenant namespace on the receiver (\"\" = default tenant)")
	maxResumes := set.Int("max-resumes", 4, "give up after this many checkpoint resumes")
	dead := set.Duration("dead", 0, "declare the receiver dead after this much silence (0 = protocol default)")
	trace := set.String("trace", "", "write a Chrome trace of the push to this file")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if *to == "" {
		return fmt.Errorf("push: -to required")
	}
	if *session == 0 {
		// Clock-derived ids collide when two pushes start in the same
		// nanosecond tick (coarse clocks make that real) and, worse, a
		// collision silently rebinds the receiver's stream state.
		// Random ids make collisions 2^-64-unlikely; redraw the
		// reserved id 0, which the protocol uses for "no session".
		id, err := randomSessionID()
		if err != nil {
			return fmt.Errorf("push: deriving session id: %w", err)
		}
		*session = id
	}
	if *trace != "" {
		tracer, flush, err := traceToFile(*trace)
		if err != nil {
			return err
		}
		defer flush()
		ctx = obs.WithTracer(ctx, tracer)
	}

	streamKind := byte(ndmp.KindLogical)
	var lgOpts logical.DumpOptions
	var phOpts physical.DumpOptions
	var dates *logical.DumpDates
	switch *kind {
	case "logical":
		if *ckpt <= 0 {
			*ckpt = 64 // files between resumable checkpoints
		}
		dates, _ = loadDates(vol)
		if err := fs.CreateSnapshot(ctx, "backupctl.push"); err != nil {
			return err
		}
		defer fs.DeleteSnapshot(ctx, "backupctl.push")
		view, err := fs.SnapshotView("backupctl.push")
		if err != nil {
			return err
		}
		lgOpts = logical.DumpOptions{
			View: view, Level: *level, Dates: dates, FSID: vol,
			Label: "backupctl", ReadAhead: 16, CheckpointEvery: *ckpt,
		}
	case "image":
		streamKind = ndmp.KindImage
		if *ckpt <= 0 {
			*ckpt = 256 // blocks between resumable checkpoints
		}
		name := *snap
		if name == "" {
			name = "backupctl.push"
		}
		if _, err := fs.Snapshot(name); err != nil {
			if err := fs.CreateSnapshot(ctx, name); err != nil {
				return err
			}
		}
		phOpts = physical.DumpOptions{
			FS: fs, Vol: fs.Device(), SnapName: name, CheckpointEvery: *ckpt,
		}
	default:
		return fmt.Errorf("push: unknown -kind %q", *kind)
	}

	dial := func() (transport.Conn, error) {
		c, err := net.Dial("tcp", *to)
		if err != nil {
			return nil, err
		}
		return transport.NewNetConn(c), nil
	}

	// The engine-resume loop: the session absorbs recoverable link
	// faults internally; only a dead peer or an exhausted redial
	// budget escapes, and then the dump restarts on a fresh stream
	// from its last acknowledged checkpoint.
	reconnects, replayed := 0, 0
	for attempt := 0; ; attempt++ {
		if attempt > *maxResumes {
			return fmt.Errorf("push: gave up after %d checkpoint resumes", *maxResumes)
		}
		pushLevel := int32(*level)
		if streamKind == ndmp.KindImage {
			pushLevel = -1
		}
		sess, err := ndmp.Dial(dial, ndmp.Config{
			Kind: streamKind, Session: *session, Stream: attempt,
			Window: *window, DeadAfter: *dead, Ctx: ctx,
			FSID: vol, Level: pushLevel, Tenant: *tenant,
		})
		if err != nil {
			return fmt.Errorf("push: dial stream %d: %w", attempt, err)
		}

		var lgStats *logical.DumpStats
		var phStats *physical.DumpStats
		if streamKind == ndmp.KindLogical {
			lgOpts.Sink = sess
			lgStats, err = logical.Dump(ctx, lgOpts)
		} else {
			phOpts.Sink = sess
			phStats, err = physical.Dump(ctx, phOpts)
		}
		if err == nil {
			err = sess.Close()
		}
		st := sess.Stats()
		reconnects += st.Reconnects
		replayed += st.Replayed
		if err == nil {
			if streamKind == ndmp.KindLogical {
				if err := saveDates(vol, dates); err != nil {
					return err
				}
				fmt.Printf("pushed %d files, %d dirs, %d bytes (level %d)\n",
					lgStats.FilesDumped, lgStats.DirsDumped, lgStats.BytesWritten, *level)
			} else {
				fmt.Printf("pushed %d blocks (generation %d)\n", phStats.BlocksDumped, phStats.Gen)
			}
			fmt.Printf("session %d: %d stream(s), %d acked records, %d reconnects, %d replayed\n",
				*session, attempt+1, sess.Acked(), reconnects, replayed)
			return nil
		}
		if !errors.Is(err, ndmp.ErrPeerDead) && !errors.Is(err, ndmp.ErrSessionLost) {
			return fmt.Errorf("push: stream %d: %w", attempt, err)
		}
		fmt.Fprintf(os.Stderr, "backupctl: push: stream %d lost (%v)\n", attempt, err)
		lgOpts.Resume, phOpts.Resume = nil, nil
		switch {
		case lgStats != nil && lgStats.Checkpoint != nil:
			lgOpts.Resume = lgStats.Checkpoint
			fmt.Fprintf(os.Stderr, "backupctl: push: resuming from acknowledged checkpoint on stream %d\n", attempt+1)
		case phStats != nil && phStats.Checkpoint != nil:
			phOpts.Resume = phStats.Checkpoint
			fmt.Fprintf(os.Stderr, "backupctl: push: resuming from acknowledged checkpoint on stream %d\n", attempt+1)
		default:
			fmt.Fprintf(os.Stderr, "backupctl: push: no acknowledged checkpoint; restarting stream\n")
		}
	}
}
