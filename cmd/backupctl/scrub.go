// Integrity commands for backupctl: scrub re-reads every live
// catalogued stream file end to end and verifies it the way a restore
// would (dump-format checksums for logical sets, the whole-stream CRC
// for image sets, byte counts against the catalog), and fsck gains a
// structural catalog↔media cross-check. Neither repairs host files —
// there is no mirror to rebuild from — so scrub's job is to find rot
// while the operator still has options:
//
//	backupctl -vol home.img scrub                 # verify every live set
//	backupctl -vol home.img scrub -mark           # and record the damage
//	backupctl -vol home.img catalog               # per-set health column
//	backupctl -vol home.img fsck                  # filesystem + catalog check
//
// Both scrub and fsck exit nonzero while findings remain unrepaired.
package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/catalog"
	"repro/internal/scrub"
)

// statExtent resolves a stream-file volume for the catalog fsck: its
// size on the host filesystem, or absent.
func statExtent(label string) (int64, bool) {
	fi, err := os.Stat(label)
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// chainSource replays a set's media files in order, io.EOF after the
// last — the shape a resumed multi-stream set restores in.
type chainSource struct {
	paths []string
	cur   *fileSource
}

func (c *chainSource) ReadRecord() ([]byte, error) {
	for {
		if c.cur == nil {
			if len(c.paths) == 0 {
				return nil, io.EOF
			}
			src, _, err := openStream(c.paths[0])
			if err != nil {
				return nil, err
			}
			c.cur, c.paths = src, c.paths[1:]
		}
		rec, err := c.cur.ReadRecord()
		if err == io.EOF {
			c.cur = nil
			continue
		}
		return rec, err
	}
}

// scrubCommand verifies every live set recorded in <vol>.catalog by
// re-reading its stream files. Sets already marked damaged are listed
// but not re-read. With -mark, sets with findings are recorded damaged
// in the catalog so plan/recover route around them.
func scrubCommand(ctx context.Context, vol string, rest []string) error {
	set := newFlagSet("scrub")
	mark := set.Bool("mark", false, "record sets with findings as damaged in the catalog")
	now := set.Int64("now", 0, "timestamp recorded with -mark")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if vol == "" {
		return fmt.Errorf("scrub: -vol required")
	}
	cat, store, err := openVolCatalog(vol)
	if err != nil {
		return err
	}
	defer store.Close()

	var total int
	scanned := 0
	for _, ds := range cat.Live() {
		if reason, bad := cat.Damaged(ds.ID); bad {
			fmt.Printf("set %-3d damaged (skipped): %s\n", ds.ID, reason)
			continue
		}
		if ds.Resumed {
			// A resumed set's non-final streams are deliberately partial;
			// only a full restore pass can judge them.
			fmt.Printf("set %-3d resumed (skipped): verify by restoring\n", ds.ID)
			continue
		}
		findings := scrubSet(ctx, cat, ds)
		scanned++
		if len(findings) == 0 {
			fmt.Printf("set %-3d ok: %d bytes verified\n", ds.ID, ds.Bytes)
			continue
		}
		total += len(findings)
		for _, f := range findings {
			fmt.Println("scrub:", f)
		}
		if *mark {
			detail := findings[0].Detail
			if len(findings) > 1 {
				detail = fmt.Sprintf("%s (+%d more)", detail, len(findings)-1)
			}
			if err := cat.MarkDamaged(ds.ID, *now, "scrub: "+detail); err != nil {
				return err
			}
			fmt.Printf("set %-3d marked damaged\n", ds.ID)
		}
	}

	// The structural cross-check rides along: orphans, broken base
	// links, index entries past the recorded extents.
	structural := scrub.Fsck(cat, scrub.FsckOptions{HaveVolume: statExtent})
	for _, f := range structural {
		fmt.Println("fsck:", f)
	}
	total += len(structural)

	if total > 0 {
		return fmt.Errorf("%d integrity findings across %d sets scanned", total, scanned)
	}
	fmt.Printf("scrub clean: %d sets verified\n", scanned)
	return nil
}

// scrubSet re-reads one set's stream files. A missing file is an
// orphan; a readable stream goes through the same verification the
// scrubber applies to tape media.
func scrubSet(ctx context.Context, cat *catalog.Catalog, ds catalog.DumpSet) []scrub.Finding {
	var paths []string
	var findings []scrub.Finding
	for _, ref := range ds.Media {
		if _, ok := statExtent(ref.Volume); !ok {
			findings = append(findings, scrub.Finding{
				Kind: scrub.OrphanSet, SetID: ds.ID, Volume: ref.Volume,
				Record: -1, Detail: "stream file is missing",
			})
			continue
		}
		paths = append(paths, ref.Volume)
	}
	if len(findings) > 0 || len(paths) == 0 {
		return findings
	}
	return scrub.VerifySetStream(ctx, ds, &chainSource{paths: paths})
}
