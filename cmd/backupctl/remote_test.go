package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
)

// TestTransportServePush runs the remote backup path end to end over
// real TCP on the loopback interface: a serve process receives both a
// logical and an image push, and the stream files it writes verify
// and restore exactly like locally-dumped ones.
func TestTransportServePush(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "home.img")
	clone := filepath.Join(dir, "clone.img")
	hostFile := filepath.Join(dir, "payload.txt")
	payload := []byte("remote backup payload\n")
	if err := os.WriteFile(hostFile, payload, 0644); err != nil {
		t.Fatal(err)
	}

	do := func(args ...string) {
		t.Helper()
		if err := run(args); err != nil {
			t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
		}
	}

	do("-vol", vol, "mkfs", "-blocks", "4096")
	do("-vol", vol, "fill", "-mb", "2")
	do("-vol", vol, "put", hostFile, "/docs/payload.txt")

	// serve runs in-process on an ephemeral port; -once semantics via
	// serveOn so the goroutine exits after each clean session.
	serveOnce := func(out string) (addr string, done chan error) {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done = make(chan error, 1)
		go func() {
			defer l.Close()
			done <- serveOn(l, out, "", true, 5*time.Second, nil, nil)
		}()
		return l.Addr().String(), done
	}
	wait := func(done chan error) {
		t.Helper()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("serve did not finish")
		}
	}

	// Logical push: the received stream verifies against the live tree
	// and restores a deleted file.
	remoteDump := filepath.Join(dir, "remote.dump")
	addr, done := serveOnce(remoteDump)
	do("-vol", vol, "push", "-to", addr)
	wait(done)
	do("-vol", vol, "verify", "-i", remoteDump)
	do("-vol", vol, "rm", "/docs/payload.txt")
	do("-vol", vol, "restore", "-i", remoteDump, "-file", "docs/payload.txt")
	do("-vol", vol, "cat", "/docs/payload.txt")

	// Push records dump dates like a local dump would.
	if _, err := os.Stat(vol + ".dumpdates"); err != nil {
		t.Fatalf("push did not persist dump dates: %v", err)
	}

	// The server catalogs the received stream from the wire Hello and
	// the stream's own header: engine, fsid, level and dump date.
	logSets := volSets(t, remoteDump)
	if len(logSets) != 1 {
		t.Fatalf("server catalog has %d sets, want 1", len(logSets))
	}
	if logSets[0].Engine != catalog.Logical || logSets[0].FSID != vol ||
		logSets[0].Level != 0 || logSets[0].Date == 0 {
		t.Fatalf("server-side set %+v", logSets[0])
	}
	if len(logSets[0].Media) != 1 || logSets[0].Media[0].Volume != remoteDump {
		t.Fatalf("server-side media %+v", logSets[0].Media)
	}

	// Image push: the received stream verifies offline and restores to
	// a byte-equivalent clone volume.
	remoteImg := filepath.Join(dir, "remote.stream")
	addr, done = serveOnce(remoteImg)
	do("-vol", vol, "push", "-to", addr, "-kind", "image")
	wait(done)
	do("imageverify", "-i", remoteImg)
	do("-vol", clone, "imagerestore", "-i", remoteImg)
	do("-vol", clone, "fsck")
	do("-vol", clone, "cat", "/docs/payload.txt")

	imgSets := volSets(t, remoteImg)
	if len(imgSets) != 1 || imgSets[0].Engine != catalog.Image ||
		imgSets[0].Gen == 0 || imgSets[0].NBlocks == 0 {
		t.Fatalf("server-side image sets %+v", imgSets)
	}

	// Error paths.
	if err := run([]string{"-vol", vol, "push"}); err == nil {
		t.Fatal("push without -to succeeded")
	}
	if err := run([]string{"-vol", vol, "push", "-to", addr, "-kind", "nope"}); err == nil {
		t.Fatal("push with bad -kind succeeded")
	}
	if err := run([]string{"serve"}); err == nil {
		t.Fatal("serve without -o succeeded")
	}
}

// TestTransportPushDeadReceiver points a push at a listener that
// accepts and then black-holes every byte: the session must declare
// the peer dead within its configured deadline and surface a typed
// error instead of hanging.
func TestTransportPushDeadReceiver(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "home.img")
	if err := run([]string{"-vol", vol, "mkfs", "-blocks", "2048"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-vol", vol, "fill", "-mb", "1"}); err != nil {
		t.Fatal(err)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			// Read and discard so the client's sends succeed, but never
			// answer — the hello itself goes unacknowledged.
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	start := time.Now()
	err = run([]string{"-vol", vol, "push", "-to", l.Addr().String(),
		"-dead", "500ms", "-max-resumes", "0"})
	if err == nil {
		t.Fatal("push to a mute receiver succeeded")
	}
	if elapsed := time.Since(start); elapsed > 25*time.Second {
		t.Fatalf("dead receiver took %v to surface", elapsed)
	}
	t.Logf("push failed as expected after %v: %v", time.Since(start), err)
}
