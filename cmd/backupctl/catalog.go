// Backup catalog for backupctl: every completed dump/imagedump/push
// is recorded in an append-only journal beside the volume image
// (<vol>.catalog), and the catalog — not the operator — answers "which
// streams, in which order" at restore time:
//
//	backupctl -vol home.img catalog                  # list recorded sets
//	backupctl -vol home.img plan -at 1234            # show the restore chain
//	backupctl -vol home.img recover -at 1234         # execute it
//	backupctl -vol home.img recover -file docs/readme
//	backupctl -vol home.img catalog -expire 3        # retention by hand
//
// The serve side keeps its own catalog (<out>.catalog) of pushed
// streams, built from the session Hello and the stream headers.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/dumpfmt"
	"repro/internal/logical"
	"repro/internal/ndmp"
	"repro/internal/physical"
	"repro/internal/wafl"
)

// catalogPath names the journal beside a volume image.
func catalogPath(vol string) string { return vol + ".catalog" }

// openVolCatalog opens (creating if absent) the catalog beside vol.
// Callers must Close the returned store.
func openVolCatalog(vol string) (*catalog.Catalog, *catalog.FileStore, error) {
	store, err := catalog.OpenFileStore(catalogPath(vol))
	if err != nil {
		return nil, nil, err
	}
	cat, err := catalog.Open(store)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	if cat.TornBytes > 0 {
		fmt.Fprintf(os.Stderr, "backupctl: catalog: dropped %d torn trailing bytes (crash mid-append)\n", cat.TornBytes)
	}
	return cat, store, nil
}

// catalogDates returns the dump-date history for vol: derived from the
// catalog when it has logical sets (the journal is authoritative),
// otherwise from the legacy <vol>.dumpdates file.
func catalogDates(cat *catalog.Catalog, vol string) *logical.DumpDates {
	d := cat.DumpDates()
	if len(d.Entries()) > 0 {
		return d
	}
	legacy, _ := loadDates(vol)
	return legacy
}

// recordLogicalSet journals one completed logical dump, returning the
// new set's id (a dedup-encoded dump appends its manifest under it).
func recordLogicalSet(cat *catalog.Catalog, vol, snap, out string, level int, stats *logical.DumpStats, index []catalog.FileIndexEntry) (uint64, error) {
	id, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: vol, Snap: snap,
		Level: int32(level), Date: stats.Date, BaseDate: stats.BaseDate,
		Bytes: stats.BytesWritten, Units: int64(stats.FilesDumped),
		Media: []catalog.MediaRef{{Volume: out}},
	})
	if err != nil {
		return 0, err
	}
	if len(index) > 0 {
		return id, cat.AppendFileIndex(id, index)
	}
	return id, nil
}

// recordImageSet journals one completed image dump, returning the new
// set's id. Image sets have no filesystem dump date; the snapshot
// generation is the monotonic clock that orders them, so it doubles as
// the set's Date for -at planning.
func recordImageSet(cat *catalog.Catalog, vol, snap, out string, stats *physical.DumpStats) (uint64, error) {
	return cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Image, FSID: vol, Snap: snap, Level: -1,
		Date: int64(stats.Gen), Gen: stats.Gen, BaseGen: stats.BaseGen,
		NBlocks: stats.NBlocks, Bytes: stats.BytesWritten,
		Units: int64(stats.BlocksDumped),
		Media: []catalog.MediaRef{{Volume: out}},
	})
}

// catalogCommand lists and edits the catalog beside -vol.
func catalogCommand(vol string, rest []string) error {
	set := newFlagSet("catalog")
	media := set.Bool("media", false, "also list media-lifecycle events")
	files := set.Uint64("files", 0, "print the file index of this set id")
	expire := set.Uint64("expire", 0, "mark this set id expired (manual retention)")
	now := set.Int64("now", 0, "timestamp recorded with -expire")
	sweep := set.Bool("sweep", false, "erase zero-ref chunks from <vol>.chunkstore")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if vol == "" {
		return fmt.Errorf("catalog: -vol required")
	}
	cat, store, err := openVolCatalog(vol)
	if err != nil {
		return err
	}
	defer store.Close()

	if *sweep {
		return sweepChunks(cat, vol)
	}
	if *expire != 0 {
		if err := cat.Expire(*expire, *now); err != nil {
			return err
		}
		fmt.Printf("set %d expired\n", *expire)
		return nil
	}
	if *files != 0 {
		idx := cat.FileIndex(*files)
		if len(idx) == 0 {
			return fmt.Errorf("catalog: set %d has no file index", *files)
		}
		for _, e := range idx {
			fmt.Printf("ino=%-6d unit=%-8d %s\n", e.Ino, e.Unit, e.Path)
		}
		return nil
	}

	sets := cat.Sets()
	if len(sets) == 0 {
		fmt.Println("catalog is empty")
		return nil
	}
	for _, ds := range sets {
		state := "live"
		if when, dead := cat.Expired(ds.ID); dead {
			state = fmt.Sprintf("expired@%d", when)
		}
		health := cat.HealthLabel(ds.ID)
		// Dedup column: raw-to-stored ratio of the set's chunk manifest,
		// "-" for conventional stream sets.
		dd := "-"
		if m, ok := cat.Manifest(ds.ID); ok {
			if m.StoredBytes > 0 {
				dd = fmt.Sprintf("%.1fx", float64(m.RawBytes)/float64(m.StoredBytes))
			} else {
				dd = "inf" // every chunk was a hit; the set stored nothing
			}
		}
		var vols []string
		for _, m := range ds.Media {
			vols = append(vols, m.Volume)
		}
		if ds.Engine == catalog.Image {
			fmt.Printf("%-3d image   gen=%-6d base=%-6d %8d blocks %10d bytes %-12s %-17s dedup=%-5s %s\n",
				ds.ID, ds.Gen, ds.BaseGen, ds.Units, ds.Bytes, state, health, dd, strings.Join(vols, ","))
		} else {
			fmt.Printf("%-3d logical lvl=%-2d date=%-8d base=%-8d %6d files %10d bytes %-12s %-17s dedup=%-5s %s\n",
				ds.ID, ds.Level, ds.Date, ds.BaseDate, ds.Units, ds.Bytes, state, health, dd, strings.Join(vols, ","))
		}
	}
	if entries, stored, dead := cat.ChunkStats(); entries > 0 {
		zero := 0
		for _, n := range cat.ChunkRefcounts() {
			if n == 0 {
				zero++
			}
		}
		fmt.Printf("chunks: %d indexed, %d stored bytes, %d dead bytes, %d zero-ref (catalog -sweep erases them)\n",
			entries, stored, dead, zero)
	}
	if *media {
		for _, ev := range cat.MediaEvents() {
			fmt.Printf("media %-10s %s (pool %s) at %d\n", ev.Kind, ev.Volume, ev.Pool, ev.Time)
		}
	}
	return nil
}

// planFlags is the flag subset plan and recover share.
func planFlags(set *flag.FlagSet) (engine *string, at *int64, file *string, expired, damaged *bool) {
	engine = set.String("engine", "logical", "dump family to plan from: logical or image")
	at = set.Int64("at", 0, "target time: newest state dumped at or before this (0 = latest)")
	file = set.String("file", "", "plan a single-file recovery of this dump-relative path")
	expired = set.Bool("expired", false, "allow expired sets (media not yet reclaimed)")
	damaged = set.Bool("damaged", false, "allow damaged sets (salvage: restore may be partial)")
	return
}

func parseEngine(s string) (catalog.Engine, error) {
	switch s {
	case "logical":
		return catalog.Logical, nil
	case "image":
		return catalog.Image, nil
	}
	return 0, fmt.Errorf("unknown -engine %q (want logical or image)", s)
}

// planCommand prints the restore chain the catalog selects.
func planCommand(vol string, rest []string) error {
	set := newFlagSet("plan")
	engine, at, file, expired, damaged := planFlags(set)
	if err := set.Parse(rest); err != nil {
		return err
	}
	if vol == "" {
		return fmt.Errorf("plan: -vol required")
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		return fmt.Errorf("plan: %w", err)
	}
	cat, store, err := openVolCatalog(vol)
	if err != nil {
		return err
	}
	defer store.Close()
	plan, err := cat.Plan(catalog.PlanOptions{
		Engine: eng, FSID: vol, At: *at, File: *file,
		IncludeExpired: *expired, IncludeDamaged: *damaged,
	})
	if err != nil {
		return err
	}
	fmt.Print(plan.String())
	fmt.Printf("media: %s\n", strings.Join(plan.Media(), " "))
	return nil
}

// recoverCommand executes a catalog-selected restore chain: the
// operator names a time (or file), the catalog names the streams.
func recoverCommand(ctx context.Context, vol string, rest []string) error {
	set := newFlagSet("recover")
	engine, at, file, expired, damaged := planFlags(set)
	target := set.String("target", "/", "directory to graft a logical recovery onto")
	wipe := set.Bool("wipe", false, "reformat the volume before a full logical recovery (frees snapshot-pinned space)")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if vol == "" {
		return fmt.Errorf("recover: -vol required")
	}
	eng, err := parseEngine(*engine)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	cat, store, err := openVolCatalog(vol)
	if err != nil {
		return err
	}
	defer store.Close()
	plan, err := cat.Plan(catalog.PlanOptions{
		Engine: eng, FSID: vol, At: *at, File: *file,
		IncludeExpired: *expired, IncludeDamaged: *damaged,
	})
	if err != nil {
		return err
	}
	fmt.Print(plan.String())
	if eng == catalog.Image {
		return recoverImage(ctx, vol, plan)
	}
	return recoverLogical(ctx, vol, plan, *target, *wipe)
}

// recoverLogical mounts vol and applies the chain's streams in order:
// the full dump first, then each incremental with deletion sync, so
// the volume converges on the dumped state — files removed between
// dumps do not survive the recovery.
func recoverLogical(ctx context.Context, vol string, plan *catalog.Plan, target string, wipe bool) error {
	dev, err := openOrCreate(vol, 0)
	if err != nil {
		return err
	}
	defer dev.Close()
	var fs *wafl.FS
	if wipe && plan.File == "" {
		// Disaster-recovery semantics: reformat so snapshot-pinned
		// blocks don't starve the restore's copy-on-write allocation.
		fs, err = wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	} else {
		fs, err = wafl.Mount(ctx, dev, nil, wafl.Options{})
	}
	if err != nil {
		return err
	}
	var files []string
	if plan.File != "" {
		files = []string{plan.File}
	}
	for i, step := range plan.Steps {
		for j, ref := range step.Media {
			src, _, err := openStream(ref.Volume)
			if err != nil {
				return fmt.Errorf("recover: set %d media %s: %w", step.ID, ref.Volume, err)
			}
			// A resumed set spans several streams; all but the last are
			// partial and restore with salvage semantics.
			stats, err := logical.Restore(ctx, logical.RestoreOptions{
				FS: fs, Source: src, TargetDir: target, Files: files,
				SyncDeletes: i > 0, KernelIntegrated: true,
				Salvage: step.Resumed && j < len(step.Media)-1,
			})
			if err != nil {
				return fmt.Errorf("recover: set %d: %w", step.ID, err)
			}
			fmt.Printf("step %d/%d: set %d from %s: %d files restored, %d deleted\n",
				i+1, len(plan.Steps), step.ID, ref.Volume, stats.FilesRestored, stats.Deleted)
		}
	}
	return nil
}

// recoverImage rebuilds vol from the chain's image streams, or — for a
// single-file plan — extracts the file offline without writing the
// volume at all.
func recoverImage(ctx context.Context, vol string, plan *catalog.Plan) error {
	sources := func() ([]physical.Source, error) {
		var out []physical.Source
		for _, step := range plan.Steps {
			for _, ref := range step.Media {
				src, _, err := openStream(ref.Volume)
				if err != nil {
					return nil, fmt.Errorf("recover: set %d media %s: %w", step.ID, ref.Volume, err)
				}
				out = append(out, src)
			}
		}
		return out, nil
	}
	if plan.File != "" {
		srcs, err := sources()
		if err != nil {
			return err
		}
		files, err := physical.Extract(ctx, srcs[0], srcs[1:], plan.File)
		if err != nil {
			return err
		}
		for p, data := range files {
			out := strings.ReplaceAll(strings.TrimPrefix(p, "/"), "/", "_")
			if err := os.WriteFile(out, data, 0644); err != nil {
				return err
			}
			fmt.Printf("extracted %s -> %s (%d bytes)\n", p, out, len(data))
		}
		return nil
	}

	dev, err := openOrCreate(vol, int(plan.Steps[0].NBlocks))
	if err != nil {
		return err
	}
	defer dev.Close()
	srcs, err := sources()
	if err != nil {
		return err
	}
	for i, src := range srcs {
		stats, err := physical.Restore(ctx, physical.RestoreOptions{
			Vol: dev, Source: src, ExpectIncremental: i > 0,
		})
		if err != nil {
			return fmt.Errorf("recover: step %d: %w", i+1, err)
		}
		fmt.Printf("step %d/%d: %d blocks restored (generation %d)\n",
			i+1, len(srcs), stats.BlocksRestored, stats.Gen)
	}
	return nil
}

// recvStream is one pushed stream the serve side has landed: the wire
// Hello that announced it plus the file it was written to.
type recvStream struct {
	hello ndmp.Hello
	path  string
}

// recordReceived journals a cleanly closed push session in the
// server's own catalog (<base>.catalog). All streams of a session are
// one dump — checkpoint resumes add streams, not dumps — so they land
// as a single DumpSet whose Media lists the stream files in replay
// order. Engine and level come off the wire Hello; dump dates and
// generations come from the stream headers, so the server's catalog
// can plan restore chains exactly like the client's. With a standby
// path the append lands in both journals before it is acknowledged.
func recordReceived(base, standby string, streams []recvStream) error {
	if len(streams) == 0 {
		return nil
	}
	var cat *catalog.Catalog
	if standby != "" {
		store, err := openMirrorStore(catalogPath(base), standby)
		if err != nil {
			return err
		}
		defer store.Close()
		if cat, err = catalog.Open(store); err != nil {
			return err
		}
	} else {
		c, store, err := openVolCatalog(base)
		if err != nil {
			return err
		}
		defer store.Close()
		cat = c
	}
	hello := streams[0].hello
	ds := catalog.DumpSet{
		FSID: hello.FSID, Level: hello.Level,
		Resumed: len(streams) > 1,
	}
	for _, rs := range streams {
		fi, err := os.Stat(rs.path)
		if err != nil {
			return err
		}
		ds.Bytes += fi.Size()
		ds.Media = append(ds.Media, catalog.MediaRef{Volume: rs.path})
	}
	if hello.Kind == ndmp.KindImage {
		src, _, err := openStream(streams[0].path)
		if err != nil {
			return err
		}
		nblocks, gen, baseGen, _, err := physical.StreamInfo(src)
		if err != nil {
			return fmt.Errorf("serve: catalog %s: %w", streams[0].path, err)
		}
		ds.Engine = catalog.Image
		ds.Gen, ds.BaseGen, ds.NBlocks = gen, baseGen, nblocks
		ds.Date = int64(gen)
	} else {
		h, err := peekDumpHeader(streams[0].path)
		if err != nil {
			return fmt.Errorf("serve: catalog %s: %w", streams[0].path, err)
		}
		ds.Engine = catalog.Logical
		ds.Date, ds.BaseDate = h.Date, h.DDate
		ds.Snap = h.Label
	}
	_, err := cat.AppendDumpSet(ds)
	return err
}

// peekDumpHeader reads the leading TS_TAPE header of a logical stream
// file — the dump date and base date the catalog needs.
func peekDumpHeader(path string) (*dumpfmt.Header, error) {
	src, _, err := openStream(path)
	if err != nil {
		return nil, err
	}
	rec, err := src.ReadRecord()
	if err != nil {
		return nil, err
	}
	if len(rec) < dumpfmt.TPBSize {
		return nil, fmt.Errorf("backupctl: %d-byte leading record", len(rec))
	}
	return dumpfmt.UnmarshalHeader(rec[:dumpfmt.TPBSize])
}

// --- per-command usage (the help subcommand).

type commandDoc struct {
	name     string
	synopsis string
	detail   string
}

// commandDocs drives both `backupctl help` and each flag set's Usage.
var commandDocs = []commandDoc{
	{"mkfs", "mkfs -blocks N", "format -vol as a fresh filesystem"},
	{"put", "put <hostfile> </fs/path>", "copy a host file into the volume"},
	{"cat", "cat </fs/path>", "print a file from the volume"},
	{"ls", "ls [/fs/path]", "list a directory"},
	{"rm", "rm </fs/path>", "remove a file"},
	{"snap", "snap create|delete|ls|revert [name]", "manage snapshots"},
	{"df", "df", "show block and inode usage"},
	{"fsck", "fsck", "check filesystem consistency and cross-check <vol>.catalog"},
	{"fill", "fill -mb N [-seed N]", "generate a synthetic dataset"},
	{"age", "age -rounds N [-seed N]", "churn the dataset to fragment it"},
	{"dump", "dump -o FILE|-dedup [-revdedup] [-level N] [-subtree DIR]", "logical dump; -dedup chunks it into <vol>.chunkstore"},
	{"restore", "restore -i FILE|-set ID [-file PATH] [-target DIR] [-sync-deletes]", "apply one logical stream (or a dedup-encoded set)"},
	{"verify", "verify -i FILE [-subtree DIR]", "compare a logical stream against the volume"},
	{"imagedump", "imagedump -o FILE|-dedup [-revdedup] [-snap NAME] [-base NAME]", "physical image dump; -dedup chunks it into <vol>.chunkstore"},
	{"imagerestore", "imagerestore -i FILE|-set ID [-from VOL] [-incremental]", "apply one image stream (or a dedup-encoded set) to -vol"},
	{"imageverify", "imageverify -i FILE", "check an image stream's integrity"},
	{"extract", "extract -i FULL [-incr A,B] PATH...", "pull files out of image streams offline"},
	{"catalog", "catalog [-media] [-files ID] [-expire ID -now T] [-sweep]", "list or edit the backup catalog (health + dedup columns; -sweep erases zero-ref chunks)"},
	{"scrub", "scrub [-mark] [-now T]", "re-read and verify every live set's stream files"},
	{"plan", "plan [-engine E] [-at T] [-file PATH] [-expired] [-damaged]", "show the restore chain the catalog selects (routes around damaged sets)"},
	{"recover", "recover [-engine E] [-at T] [-file PATH] [-target DIR] [-wipe] [-damaged]", "execute a catalog-selected restore chain"},
	{"push", "push -to HOST:PORT [-kind logical|image] [-level N]", "dump across the network to a serve host"},
	{"serve", "serve -listen ADDR -o FILE [-standby FILE] [-once]", "receive pushed streams; recorded in <out>.catalog (mirrored to -standby)"},
	{"replica", "replica status -primary FILE -standby FILE", "report catalog journal replication state"},
	{"bench", "bench [-json FILE] [-compare BASE] [-parallel -drives 1,2,4 -readers N] [-chunk] [-chunkweek]", "run the fast-path or chunk micro-benchmarks, the parallel scaling matrix, or the dedup-week experiment"},
	{"help", "help [command]", "show usage"},
}

func findDoc(name string) *commandDoc {
	for i := range commandDocs {
		if commandDocs[i].name == name {
			return &commandDocs[i]
		}
	}
	return nil
}

// newFlagSet builds a command's flag set whose -h/usage output names
// the command's synopsis instead of the bare flag dump.
func newFlagSet(name string) *flag.FlagSet {
	set := flag.NewFlagSet(name, flag.ContinueOnError)
	set.Usage = func() {
		if doc := findDoc(name); doc != nil {
			fmt.Fprintf(set.Output(), "usage: backupctl [-vol FILE] %s\n  %s\n", doc.synopsis, doc.detail)
		} else {
			fmt.Fprintf(set.Output(), "usage: backupctl %s [flags]\n", name)
		}
		set.PrintDefaults()
	}
	return set
}

// helpCommand prints the command table, or one command's usage.
func helpCommand(rest []string) error {
	if len(rest) > 0 {
		doc := findDoc(rest[0])
		if doc == nil {
			return fmt.Errorf("help: unknown command %q", rest[0])
		}
		fmt.Printf("usage: backupctl [-vol FILE] %s\n  %s\n", doc.synopsis, doc.detail)
		return nil
	}
	fmt.Println("usage: backupctl [-vol FILE] <command> [flags]")
	fmt.Println()
	names := make([]string, 0, len(commandDocs))
	width := 0
	for _, d := range commandDocs {
		names = append(names, d.name)
		if len(d.name) > width {
			width = len(d.name)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		d := findDoc(n)
		fmt.Printf("  %-*s  %s\n", width, d.name, d.detail)
	}
	fmt.Println()
	fmt.Println("run 'backupctl help <command>' for that command's flags.")
	return nil
}
