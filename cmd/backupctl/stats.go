// backupctl stats: run an instrumented backup workload and report
// what the observability layer saw — the zero-setup way to look at the
// stack's metrics and traces, and the smoke test CI runs (-check).
//
//	backupctl stats -mb 8
//	backupctl stats -mb 8 -trace obs.json -slow 100ms
//	backupctl stats -check
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/obs"
)

// randomSessionID draws a nonzero 64-bit session id. Session id 0 is
// reserved (the ndmp layer rejects it), so redraw until nonzero.
func randomSessionID() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, err
		}
		if id := binary.LittleEndian.Uint64(b[:]); id != 0 {
			return id, nil
		}
	}
}

// traceToFile creates path eagerly (to fail before the work, not
// after) and returns a tracer plus the flush that writes the Chrome
// trace on the way out.
func traceToFile(path string) (*obs.Tracer, func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	tr := obs.NewTracer()
	flush := func() {
		if err := tr.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "backupctl: writing trace %s: %v\n", path, err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "backupctl: wrote %d spans to %s\n", tr.SpanCount(), path)
	}
	return tr, flush, nil
}

func statsCommand(ctx context.Context, rest []string) error {
	set := newFlagSet("stats")
	mb := set.Int("mb", 8, "dataset size in MiB")
	seed := set.Int64("seed", 1999, "workload seed")
	trace := set.String("trace", "", "write Chrome trace JSON to this file")
	prom := set.String("prom", "", "write Prometheus text metrics to this file instead of stdout")
	slow := set.Duration("slow", 0, "log spans slower than this (virtual time; 0 = off)")
	check := set.Bool("check", false, "validate the trace and mandatory metrics (CI smoke)")
	if err := set.Parse(rest); err != nil {
		return err
	}

	tracer := obs.NewTracer()
	if *slow > 0 {
		tracer.SlowThreshold = *slow
		tracer.SlowLog = func(msg string) { fmt.Fprintln(os.Stderr, "backupctl:", msg) }
	}
	rep, err := bench.RunObs(ctx, bench.Config{DataMB: *mb, Seed: *seed, AgeRounds: 2}, tracer)
	if err != nil {
		return err
	}

	fmt.Printf("logical dump: %d files, %d dirs, %d bytes\n",
		rep.Logical.FilesDumped, rep.Logical.DirsDumped, rep.Logical.BytesWritten)
	fmt.Printf("image dump:   %d blocks, %d bytes (generation %d)\n",
		rep.Image.BlocksDumped, rep.Image.BytesWritten, rep.Image.Gen)
	storedRaw := rep.DedupPrime.RawBytes + rep.DedupRepeat.RawBytes -
		rep.DedupPrime.HitBytes - rep.DedupRepeat.HitBytes
	compress := 1.0
	if stored := rep.DedupPrime.StoredBytes + rep.DedupRepeat.StoredBytes; stored > 0 {
		compress = float64(storedRaw) / float64(stored)
	}
	fmt.Printf("dedup:        %d hits, %d misses, %d bytes saved, compress %.2fx\n",
		rep.DedupPrime.Hits+rep.DedupRepeat.Hits,
		rep.DedupPrime.Misses+rep.DedupRepeat.Misses,
		rep.DedupPrime.HitBytes+rep.DedupRepeat.HitBytes, compress)

	var promOut bytes.Buffer
	if err := rep.Registry.WritePrometheus(&promOut); err != nil {
		return err
	}
	if *prom != "" {
		if err := os.WriteFile(*prom, promOut.Bytes(), 0644); err != nil {
			return err
		}
		fmt.Printf("metrics -> %s\n", *prom)
	} else {
		os.Stdout.Write(promOut.Bytes())
	}

	var traceJSON bytes.Buffer
	if err := tracer.WriteChromeTrace(&traceJSON); err != nil {
		return err
	}
	if *trace != "" {
		if err := os.WriteFile(*trace, traceJSON.Bytes(), 0644); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans -> %s\n", tracer.SpanCount(), *trace)
	}

	if *check {
		if err := checkTrace(traceJSON.Bytes()); err != nil {
			return fmt.Errorf("stats -check: trace: %w", err)
		}
		if err := checkMetrics(rep); err != nil {
			return fmt.Errorf("stats -check: metrics: %w", err)
		}
		fmt.Println("stats check OK: trace parses with nested phases, mandatory metrics present and consistent")
	}
	return nil
}

// chromeEvent mirrors the trace_event fields checkTrace cares about.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// checkTrace validates that the export is loadable Chrome trace JSON
// with per-phase spans nested (in time and thread) inside each
// engine's root span.
func checkTrace(raw []byte) error {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("not valid trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("trace has no events")
	}
	find := func(name string) *chromeEvent {
		for i := range doc.TraceEvents {
			e := &doc.TraceEvents[i]
			if e.Ph == "X" && e.Name == name {
				return e
			}
		}
		return nil
	}
	nested := func(parent, child string) error {
		p, c := find(parent), find(child)
		if p == nil {
			return fmt.Errorf("no %q span", parent)
		}
		if c == nil {
			return fmt.Errorf("no %q span", child)
		}
		if c.Tid != p.Tid || c.Ts < p.Ts || c.Ts+c.Dur > p.Ts+p.Dur {
			return fmt.Errorf("%q [%v,%v) not nested in %q [%v,%v)",
				child, c.Ts, c.Ts+c.Dur, parent, p.Ts, p.Ts+p.Dur)
		}
		return nil
	}
	for _, phase := range []string{"logical.phase12_map", "logical.phase3_dirs", "logical.phase4_files"} {
		if err := nested("logical.dump", phase); err != nil {
			return err
		}
	}
	if find("physical.dump") == nil {
		return fmt.Errorf("no %q span", "physical.dump")
	}
	return nil
}

// checkMetrics validates that the registry saw every layer move and
// that its engine counters agree with the engines' own statistics.
func checkMetrics(rep *bench.ObsReport) error {
	reg := rep.Registry
	nonzero := []string{
		"vdev_read_blocks_total",
		"vdev_write_blocks_total",
		"raid_read_bytes_total",
		"raid_written_bytes_total",
		"tape_written_bytes_total",
		"tape_records_total",
		"sim_cpu_busy_seconds",
		"logical_dump_files_total",
		"logical_dump_bytes_total",
		"physical_dump_blocks_total",
		"physical_dump_bytes_total",
		"chunk_hits_total",
		"chunk_misses_total",
		"chunk_bytes_saved_total",
		"chunk_raw_bytes_total",
		"chunk_stored_bytes_total",
		"chunk_index_entries",
	}
	for _, name := range nonzero {
		if !reg.Has(name) {
			return fmt.Errorf("metric %s missing", name)
		}
		if reg.Sum(name) == 0 {
			return fmt.Errorf("metric %s is zero", name)
		}
	}
	agree := []struct {
		name string
		want float64
	}{
		{"logical_dump_files_total", float64(rep.Logical.FilesDumped)},
		{"logical_dump_dirs_total", float64(rep.Logical.DirsDumped)},
		{"logical_dump_bytes_total", float64(rep.Logical.BytesWritten)},
		{"physical_dump_blocks_total", float64(rep.Image.BlocksDumped)},
		{"physical_dump_bytes_total", float64(rep.Image.BytesWritten)},
		{"chunk_hits_total", float64(rep.DedupPrime.Hits + rep.DedupRepeat.Hits)},
		{"chunk_misses_total", float64(rep.DedupPrime.Misses + rep.DedupRepeat.Misses)},
		{"chunk_bytes_saved_total", float64(rep.DedupPrime.HitBytes + rep.DedupRepeat.HitBytes)},
		{"chunk_raw_bytes_total", float64(rep.DedupPrime.RawBytes + rep.DedupRepeat.RawBytes)},
		{"chunk_stored_bytes_total", float64(rep.DedupPrime.StoredBytes + rep.DedupRepeat.StoredBytes)},
	}
	for _, a := range agree {
		if got := reg.Sum(a.name); got != a.want {
			return fmt.Errorf("%s = %v, engine stats say %v", a.name, got, a.want)
		}
	}
	return nil
}
