package main

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// readVol mounts a volume image and reads one file from its active view.
func readVol(t *testing.T, vol, path string) ([]byte, error) {
	t.Helper()
	ctx := context.Background()
	dev, err := storage.OpenFileDevice(vol)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	fs, err := wafl.Mount(ctx, dev, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs.ActiveView().ReadFile(ctx, path)
}

// volSets replays the volume's catalog journal.
func volSets(t *testing.T, vol string) []catalog.DumpSet {
	t.Helper()
	store, err := catalog.OpenFileStore(catalogPath(vol))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cat, err := catalog.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	return cat.Sets()
}

// TestCatalogRecoverCLI is the acceptance flow: a level-0 dump and two
// incrementals are recorded in <vol>.catalog as a side effect of
// dumping, and recover selects and executes the right chain for a
// target time and for a single file — no manual media list.
func TestCatalogRecoverCLI(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "home.img")
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil { // image -file extraction writes into cwd
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	do := func(args ...string) {
		t.Helper()
		if err := run(args); err != nil {
			t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
		}
	}
	mustFail := func(args ...string) {
		t.Helper()
		if err := run(args); err == nil {
			t.Fatalf("backupctl %s succeeded, want error", strings.Join(args, " "))
		}
	}
	put := func(fsPath, content string) {
		t.Helper()
		host := filepath.Join(dir, "stage.txt")
		if err := os.WriteFile(host, []byte(content), 0644); err != nil {
			t.Fatal(err)
		}
		do("-vol", vol, "put", host, fsPath)
	}
	wantFile := func(fsPath, content string) {
		t.Helper()
		data, err := readVol(t, vol, fsPath)
		if err != nil {
			t.Fatalf("read %s: %v", fsPath, err)
		}
		if string(data) != content {
			t.Fatalf("%s = %q, want %q", fsPath, data, content)
		}
	}

	do("-vol", vol, "mkfs", "-blocks", "4096")
	put("/docs/a.txt", "alpha v1")
	do("-vol", vol, "dump", "-o", filepath.Join(dir, "d0"))
	put("/docs/a.txt", "alpha v2")
	put("/docs/b.txt", "beta v1")
	do("-vol", vol, "dump", "-o", filepath.Join(dir, "d1"), "-level", "1")
	do("-vol", vol, "rm", "/docs/b.txt")
	put("/docs/a.txt", "alpha v3")
	do("-vol", vol, "dump", "-o", filepath.Join(dir, "d2"), "-level", "2")

	sets := volSets(t, vol)
	if len(sets) != 3 {
		t.Fatalf("catalog has %d sets, want 3", len(sets))
	}
	for i, wantLevel := range []int32{0, 1, 2} {
		if sets[i].Engine != catalog.Logical || sets[i].Level != wantLevel {
			t.Fatalf("set %d: engine %v level %d, want logical level %d",
				i, sets[i].Engine, sets[i].Level, wantLevel)
		}
	}
	if !(sets[0].Date < sets[1].Date && sets[1].Date < sets[2].Date) {
		t.Fatalf("dates not increasing: %d %d %d", sets[0].Date, sets[1].Date, sets[2].Date)
	}

	// Recover the mid-chain state by time: full + level 1, no level 2.
	midAt := strconv.FormatInt(sets[1].Date, 10)
	do("-vol", vol, "plan", "-at", midAt)
	do("-vol", vol, "recover", "-at", midAt)
	wantFile("/docs/a.txt", "alpha v2")
	wantFile("/docs/b.txt", "beta v1")

	// Recover the latest state: the level-2 incremental's deletions apply.
	do("-vol", vol, "recover")
	wantFile("/docs/a.txt", "alpha v3")
	if _, err := readVol(t, vol, "/docs/b.txt"); err == nil {
		t.Fatal("/docs/b.txt survived recovery past its deletion")
	}

	// -wipe reformats first (disaster recovery), then replays the chain.
	do("-vol", vol, "recover", "-wipe")
	wantFile("/docs/a.txt", "alpha v3")

	// Single-file recovery from an earlier time prunes the chain to the
	// one set holding the file, leaving everything else alone.
	do("-vol", vol, "recover", "-at", midAt, "-file", "docs/a.txt")
	wantFile("/docs/a.txt", "alpha v2")

	// Image engine: full + incremental, recovered by generation.
	do("-vol", vol, "imagedump", "-o", filepath.Join(dir, "i0"), "-snap", "s0")
	put("/docs/a.txt", "alpha v4")
	do("-vol", vol, "imagedump", "-o", filepath.Join(dir, "i1"), "-snap", "s1", "-base", "s0")
	sets = volSets(t, vol)
	img := sets[len(sets)-2:]
	if img[0].Engine != catalog.Image || img[1].Engine != catalog.Image {
		t.Fatalf("tail sets not image: %+v", img)
	}
	if img[1].BaseGen != img[0].Gen {
		t.Fatalf("incremental base gen %d, want %d", img[1].BaseGen, img[0].Gen)
	}

	put("/docs/a.txt", "alpha v5") // never dumped; image recovery discards it
	do("-vol", vol, "recover", "-engine", "image")
	wantFile("/docs/a.txt", "alpha v4")

	// Image single-file recovery extracts offline, touching no volume.
	do("-vol", vol, "recover", "-engine", "image", "-file", "/docs/a.txt")
	data, err := os.ReadFile(filepath.Join(dir, "docs_a.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "alpha v4" {
		t.Fatalf("extracted %q, want %q", data, "alpha v4")
	}

	// Retention: expiring the full breaks the logical chain until the
	// operator explicitly reaches for expired media.
	do("-vol", vol, "catalog", "-expire", "1", "-now", "99")
	mustFail("-vol", vol, "plan", "-at", midAt)
	do("-vol", vol, "plan", "-at", midAt, "-expired")
	do("-vol", vol, "recover", "-at", midAt, "-expired")
	wantFile("/docs/a.txt", "alpha v2")

	// The catalog listing and help surfaces work.
	do("-vol", vol, "catalog")
	do("-vol", vol, "catalog", "-media")
	do("-vol", vol, "catalog", "-files", "2")
	do("help")
	do("help", "recover")
	mustFail("help", "nosuchcommand")
	mustFail("-vol", vol, "plan", "-engine", "bogus")
	mustFail("plan") // no -vol
}
