package main

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ndmp"
	"repro/internal/sched"
	"repro/internal/transport"
)

// mkVol creates a small volume with one known file under dir.
func mkVol(t *testing.T, dir, name, payload string) string {
	t.Helper()
	vol := filepath.Join(dir, name+".img")
	hostFile := filepath.Join(dir, name+".txt")
	if err := os.WriteFile(hostFile, []byte(payload), 0644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-vol", vol, "mkfs", "-blocks", "2048"},
		{"-vol", vol, "fill", "-mb", "1"},
		{"-vol", vol, "put", hostFile, "/docs/" + name + ".txt"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
		}
	}
	return vol
}

// TestTransportServeConcurrentPushes runs two tenants' pushes at the
// same time against a single serve on a two-drive pool: both must
// complete, land in tenant-separated stream files and catalogs, and
// verify against their own volumes. Run under -race this doubles as
// the registry's data-race proof: two connection goroutines mutate
// shared host state throughout.
func TestTransportServeConcurrentPushes(t *testing.T) {
	dir := t.TempDir()
	volA := mkVol(t, dir, "alpha", "tenant alpha payload\n")
	volB := mkVol(t, dir, "beta", "tenant beta payload\n")
	base := filepath.Join(dir, "landing.dump")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := sched.NewDrivePool(sched.DrivePoolConfig{Drives: 2})
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serveOn(l, base, "", false, 5*time.Second, nil, pool)
	}()

	var wg sync.WaitGroup
	pushErr := make([]error, 2)
	for i, tenant := range []string{"alpha", "beta"} {
		wg.Add(1)
		go func(i int, tenant, vol string) {
			defer wg.Done()
			pushErr[i] = run([]string{"-vol", vol, "push",
				"-to", l.Addr().String(), "-tenant", tenant})
		}(i, tenant, map[int]string{0: volA, 1: volB}[i])
	}
	wg.Wait()
	for i, err := range pushErr {
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	l.Close()
	select {
	case <-serveDone: // accept error from the closed listener
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after listener close")
	}

	// Each tenant's stream landed in its own namespace and restores
	// that tenant's data — cross-tenant bleed would fail verify.
	for _, c := range []struct{ tenant, vol, file string }{
		{"alpha", volA, "docs/alpha.txt"},
		{"beta", volB, "docs/beta.txt"},
	} {
		landed := base + "." + c.tenant
		if _, err := os.Stat(landed); err != nil {
			t.Fatalf("tenant %s stream file: %v", c.tenant, err)
		}
		for _, args := range [][]string{
			{"-vol", c.vol, "verify", "-i", landed},
			{"-vol", c.vol, "rm", "/" + c.file},
			{"-vol", c.vol, "restore", "-i", landed, "-file", c.file},
			{"-vol", c.vol, "cat", "/" + c.file},
		} {
			if err := run(args); err != nil {
				t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
			}
		}
		sets := volSets(t, landed)
		if len(sets) != 1 || sets[0].FSID != c.vol {
			t.Fatalf("tenant %s catalog: %d sets, %+v", c.tenant, len(sets), sets)
		}
	}
	if st := pool.Stats(); st.Granted != 2 || st.Released != 2 {
		t.Fatalf("drive pool stats %+v, want 2 granted / 2 released", st)
	}
}

// TestTransportServeAbortedSessionNotCataloged drops one client's
// connection mid-session (no MsgClose) and then completes a second
// client's push cleanly. Only the clean session's streams may be
// cataloged: the aborted session's partial stream file must never
// ride another client's close into the catalog as a completed dump.
func TestTransportServeAbortedSessionNotCataloged(t *testing.T) {
	dir := t.TempDir()
	vol := mkVol(t, dir, "clean", "surviving payload\n")
	base := filepath.Join(dir, "landing.dump")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- serveOn(l, base, "", true, 5*time.Second, nil, nil)
	}()

	// Client 1: hello + a few durable records, then the TCP connection
	// dies with the session still open. As the tenant's first session
	// it owns the plain base path.
	var raw net.Conn
	dial := func() (transport.Conn, error) {
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return nil, err
		}
		raw = c
		return transport.NewNetConn(c), nil
	}
	sess, err := ndmp.Dial(dial, ndmp.Config{
		Kind: ndmp.KindLogical, Session: 0xAB0F7, Window: 4,
		DeadAfter: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sess.WriteRecord([]byte(fmt.Sprintf("aborted record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Sync(); err != nil {
		t.Fatal(err)
	}
	raw.Close() // mid-session drop: no Close, no CloseAck

	// Client 2: a full push that closes cleanly and, in -once mode,
	// lets the serve return after cataloging.
	if err := run([]string{"-vol", vol, "push", "-to", l.Addr().String()}); err != nil {
		t.Fatalf("clean push: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not finish after the clean close")
	}

	// The aborted session's partial file exists (owning the plain base
	// path) but the catalog records exactly the clean session's stream,
	// which landed beside it under an .x<session> disambiguator.
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("aborted partial stream file: %v", err)
	}
	sets := volSets(t, base)
	if len(sets) != 1 {
		t.Fatalf("catalog has %d sets, want only the clean session's", len(sets))
	}
	if len(sets[0].Media) != 1 || sets[0].Media[0].Volume == base ||
		!strings.HasPrefix(sets[0].Media[0].Volume, base+".x") {
		t.Fatalf("cataloged media %+v points at the aborted stream", sets[0].Media)
	}
	if sets[0].FSID != vol {
		t.Fatalf("cataloged set %+v", sets[0])
	}
}
