package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIWalkthrough drives every backupctl command against real
// volume files in a temp directory — the README's workflow end to end.
func TestCLIWalkthrough(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "home.img")
	clone := filepath.Join(dir, "clone.img")
	dump0 := filepath.Join(dir, "l0.dump")
	dump1 := filepath.Join(dir, "l1.dump")
	img := filepath.Join(dir, "vol.stream")
	hostFile := filepath.Join(dir, "payload.txt")
	payload := []byte("the quick brown fox, archived\n")
	if err := os.WriteFile(hostFile, payload, 0644); err != nil {
		t.Fatal(err)
	}
	cwd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil { // extract writes into cwd
		t.Fatal(err)
	}
	defer os.Chdir(cwd)

	do := func(args ...string) {
		t.Helper()
		if err := run(args); err != nil {
			t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
		}
	}
	mustFail := func(args ...string) {
		t.Helper()
		if err := run(args); err == nil {
			t.Fatalf("backupctl %s succeeded, want error", strings.Join(args, " "))
		}
	}

	do("-vol", vol, "mkfs", "-blocks", "4096")
	do("-vol", vol, "put", hostFile, "/docs/payload.txt")
	do("-vol", vol, "ls", "/docs")
	do("-vol", vol, "snap", "create", "nightly")
	do("-vol", vol, "snap", "ls")
	do("-vol", vol, "df")
	do("-vol", vol, "fsck")

	// Logical cycle with verification.
	do("-vol", vol, "dump", "-o", dump0)
	do("-vol", vol, "verify", "-i", dump0)
	do("-vol", vol, "rm", "/docs/payload.txt")
	mustFail("-vol", vol, "verify", "-i", dump0) // tape no longer matches
	do("-vol", vol, "restore", "-i", dump0, "-file", "docs/payload.txt")
	do("-vol", vol, "cat", "/docs/payload.txt")

	// Incremental level 1 picks up a new file.
	second := filepath.Join(dir, "second.txt")
	os.WriteFile(second, []byte("second file"), 0644)
	do("-vol", vol, "put", second, "/docs/second.txt")
	do("-vol", vol, "dump", "-o", dump1, "-level", "1")
	if _, err := os.Stat(vol + ".dumpdates"); err != nil {
		t.Fatalf("dumpdates not persisted: %v", err)
	}

	// Physical cycle: image dump, verify, restore to a new volume,
	// offline extraction.
	do("-vol", vol, "imagedump", "-o", img)
	do("imageverify", "-i", img)
	do("-vol", clone, "imagerestore", "-i", img)
	do("-vol", clone, "fsck")
	do("-vol", clone, "cat", "/docs/payload.txt")
	do("extract", "-i", img, "/docs/payload.txt")
	extracted, err := os.ReadFile(filepath.Join(dir, "docs_payload.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if string(extracted) != string(payload) {
		t.Fatalf("extracted %q", extracted)
	}

	// Fill and age a scratch volume, then back it up both ways.
	scratch := filepath.Join(dir, "scratch.img")
	do("-vol", scratch, "mkfs", "-blocks", "8192")
	do("-vol", scratch, "fill", "-mb", "4")
	do("-vol", scratch, "age", "-rounds", "2")
	do("-vol", scratch, "fsck")
	do("-vol", scratch, "dump", "-o", filepath.Join(dir, "scratch.dump"))
	do("-vol", scratch, "verify", "-i", filepath.Join(dir, "scratch.dump"))
	mustFail("-vol", vol+"x", "age") // missing volume

	// Snapshot revert: wreck a file, rewind to the snapshot.
	do("-vol", vol, "rm", "/docs/payload.txt")
	do("-vol", vol, "snap", "revert", "nightly")
	do("-vol", vol, "cat", "/docs/payload.txt")
	do("-vol", vol, "fsck")

	// Error paths.
	mustFail("-vol", vol, "nosuchcommand")
	mustFail("-vol", filepath.Join(dir, "missing.img"), "ls")
	mustFail("mkfs") // no -vol
	mustFail("-vol", vol, "restore")
	mustFail("-vol", vol, "dump")
}
