package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/wafl"
)

// readBack mounts vol and reads path, so tests can check restored
// content without scraping the CLI's stdout.
func readBack(t *testing.T, vol, path string) []byte {
	t.Helper()
	ctx := context.Background()
	dev, err := storage.OpenFileDevice(vol)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	fs, err := wafl.Mount(ctx, dev, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := fs.ActiveView().ReadFile(ctx, path)
	if err != nil {
		t.Fatalf("reading %s from %s: %v", path, vol, err)
	}
	return data
}

// TestCLIDedupCycle drives the dedup-encoded workflow end to end:
// chunked dumps into <vol>.chunkstore for both engines, restores by
// set id through the catalog's chunk index, the catalog's dedup
// column, and retention (-expire then -sweep) with the invariant that
// sweeping never breaks a live set.
func TestCLIDedupCycle(t *testing.T) {
	dir := t.TempDir()
	vol := filepath.Join(dir, "home.img")
	clone := filepath.Join(dir, "clone.img")
	host := filepath.Join(dir, "payload.txt")
	payload := []byte(strings.Repeat("the quick brown fox, deduplicated\n", 400))
	if err := os.WriteFile(host, payload, 0644); err != nil {
		t.Fatal(err)
	}
	do := func(args ...string) {
		t.Helper()
		if err := run(args); err != nil {
			t.Fatalf("backupctl %s: %v", strings.Join(args, " "), err)
		}
	}
	mustFail := func(args ...string) {
		t.Helper()
		if err := run(args); err == nil {
			t.Fatalf("backupctl %s succeeded, want error", strings.Join(args, " "))
		}
	}

	do("-vol", vol, "mkfs", "-blocks", "4096")
	do("-vol", vol, "fill", "-mb", "2")
	do("-vol", vol, "put", host, "/docs/payload.txt")

	// Two dedup-encoded fulls: the repeat must ride the chunk index
	// instead of growing the store by another full.
	do("-vol", vol, "dump", "-dedup") // set 1
	st1, err := os.Stat(chunkStorePath(vol))
	if err != nil {
		t.Fatalf("chunk store not created: %v", err)
	}
	do("-vol", vol, "dump", "-dedup") // set 2
	st2, _ := os.Stat(chunkStorePath(vol))
	if grown := st2.Size() - st1.Size(); grown*3 > st1.Size() {
		t.Fatalf("repeat dedup dump grew the store by %d of %d bytes", grown, st1.Size())
	}
	mustFail("-vol", vol, "dump") // no -o and no -dedup

	// Restore a single file from the dedup-encoded set.
	do("-vol", vol, "rm", "/docs/payload.txt")
	do("-vol", vol, "restore", "-set", "2", "-file", "docs/payload.txt")
	if got := readBack(t, vol, "/docs/payload.txt"); string(got) != string(payload) {
		t.Fatalf("restored payload differs: %d bytes vs %d", len(got), len(payload))
	}

	// Image engine through the same chunk store; restore to a clone by
	// set id and check content end to end.
	do("-vol", vol, "imagedump", "-dedup", "-snap", "img1") // set 3
	do("-vol", clone, "imagerestore", "-set", "3", "-from", vol)
	do("-vol", clone, "fsck")
	if got := readBack(t, clone, "/docs/payload.txt"); string(got) != string(payload) {
		t.Fatalf("image-restored payload differs: %d bytes vs %d", len(got), len(payload))
	}

	// The listing carries a dedup column and the chunk summary line.
	do("-vol", vol, "catalog")

	// Retention: expire the logical sets, sweep their now-orphaned
	// chunks, and prove the expired set is gone while the live image
	// set still restores.
	do("-vol", vol, "catalog", "-expire", "1", "-now", "5")
	do("-vol", vol, "catalog", "-expire", "2", "-now", "5")
	do("-vol", vol, "catalog", "-sweep")
	mustFail("-vol", vol, "restore", "-set", "2", "-file", "docs/payload.txt")
	do("-vol", clone, "imagerestore", "-set", "3", "-from", vol)
	if got := readBack(t, clone, "/docs/payload.txt"); string(got) != string(payload) {
		t.Fatalf("post-sweep image restore differs: %d bytes vs %d", len(got), len(payload))
	}
}
