package main

import (
	"context"
	"fmt"

	"repro/internal/chaos"
	"repro/internal/storage"
	"repro/internal/tape"
)

// faultsCommand runs seeded fault-injection scenarios against
// in-memory volumes and tape libraries — the operator-facing face of
// the chaos property: every cycle must either restore byte-identically
// or name exactly the damaged inodes.
//
//	backupctl --faults                          # both engines, scenario suite
//	backupctl --faults -seed 7 -runs 5          # sweep seeds 7..11
//	backupctl --faults -engine physical -scenario offline
func faultsCommand(ctx context.Context, args []string) error {
	set := newFlagSet("faults")
	seed := set.Int64("seed", 1, "first scenario seed")
	runs := set.Int("runs", 3, "seeds per scenario")
	engine := set.String("engine", "both", "logical, physical, or both")
	scenario := set.String("scenario", "all", "damage, raid, offline, or all")
	if err := set.Parse(args); err != nil {
		return err
	}
	var engines []chaos.Engine
	switch *engine {
	case "logical":
		engines = []chaos.Engine{chaos.Logical}
	case "physical":
		engines = []chaos.Engine{chaos.Physical}
	case "both":
		engines = []chaos.Engine{chaos.Logical, chaos.Physical}
	default:
		return fmt.Errorf("faults: unknown engine %q", *engine)
	}

	type namedScenario struct {
		name string
		make func(eng chaos.Engine, s int64) chaos.Scenario
		only chaos.Engine // pointer-free "both" marker via ok flag
		all  bool
	}
	scenarios := []namedScenario{
		{name: "damage", all: false, only: chaos.Logical,
			make: func(eng chaos.Engine, s int64) chaos.Scenario {
				return chaos.Scenario{Seed: s, Engine: eng, DataBlockFaults: 3,
					Tape: tape.FaultConfig{WriteFault: 0.02, Transient: 1.0}}
			}},
		{name: "raid", all: true,
			make: func(eng chaos.Engine, s int64) chaos.Scenario {
				return chaos.Scenario{Seed: s, Engine: eng, Raid: true,
					Profile: storage.FaultProfile{ReadFault: 0.15, RunFault: 0.5, Transient: 0.5, HealAfter: 2},
					Tape:    tape.FaultConfig{WriteFault: 0.01, Transient: 1.0}}
			}},
		{name: "offline", all: true,
			make: func(eng chaos.Engine, s int64) chaos.Scenario {
				off := 12
				if eng == chaos.Physical {
					off = 4
				}
				return chaos.Scenario{Seed: s, Engine: eng, Files: 30,
					Tape: tape.FaultConfig{OfflineAfterRecords: off}}
			}},
	}

	failures := 0
	for _, sc := range scenarios {
		if *scenario != "all" && *scenario != sc.name {
			continue
		}
		for _, eng := range engines {
			if !sc.all && eng != sc.only {
				continue
			}
			for s := *seed; s < *seed+int64(*runs); s++ {
				rep, err := chaos.Run(ctx, sc.make(eng, s))
				if err != nil {
					fmt.Printf("FAIL %-8s %-8s seed=%-3d %v\n", sc.name, eng, s, err)
					failures++
					continue
				}
				verdict := "identical"
				ok := rep.Identical
				if !rep.Identical {
					if len(rep.Damaged) > 0 && rep.Explained {
						verdict = fmt.Sprintf("damage exactly reported (%d blocks)", len(rep.Damaged))
						ok = true
					} else {
						verdict = fmt.Sprintf("UNEXPLAINED diffs %v", rep.DiffPaths)
					}
				}
				status := "ok  "
				if !ok {
					status = "FAIL"
					failures++
				}
				fmt.Printf("%s %-8s %-8s seed=%-3d resumes=%d tape(retry=%d swap=%d) raid(retry=%d recon=%d): %s\n",
					status, sc.name, eng, s, rep.Resumes, rep.TapeRetries, rep.TapeSwaps,
					rep.RaidRetries, rep.Reconstructs, verdict)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("faults: %d scenario(s) failed", failures)
	}
	return nil
}
