// Command backupctl drives the backup system against persistent,
// file-backed volumes — a miniature filer administration shell. It
// exposes both of the paper's strategies end to end:
//
//	backupctl -vol home.img mkfs -blocks 16384
//	backupctl -vol home.img fill -mb 16                     # synthetic dataset
//	backupctl -vol home.img age -rounds 4                   # fragment it
//	backupctl -vol home.img put README.md /docs/readme
//	backupctl -vol home.img ls /docs
//	backupctl -vol home.img cat /docs/readme
//	backupctl -vol home.img snap create nightly
//	backupctl -vol home.img snap ls
//	backupctl -vol home.img dump -o full.dump               # logical, level 0
//	backupctl -vol home.img dump -o incr.dump -level 1
//	backupctl -vol home.img restore -i full.dump            # logical restore
//	backupctl -vol home.img restore -i full.dump -file docs/readme
//	backupctl -vol home.img imagedump -snap nightly -o vol.img.stream
//	backupctl -vol new.img  imagerestore -i vol.img.stream
//	backupctl extract -i vol.img.stream /docs/readme        # offline single file
//	backupctl -vol home.img fsck
//	backupctl -vol home.img df
//	backupctl -vol home.img rm /docs/readme
//
// Dump streams are host files of length-prefixed tape records. The
// dump-date history for incremental levels lives beside the volume in
// <vol>.dumpdates.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/dumpfmt"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/scrub"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "backupctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// --faults is handled before normal flag parsing so its scenario
	// options (-seed, -runs, ...) reach the faults flag set untouched.
	for i, a := range args {
		if a == "--faults" || a == "-faults" {
			return faultsCommand(context.Background(), append(append([]string{}, args[:i]...), args[i+1:]...))
		}
	}

	global := newFlagSet("backupctl")
	vol := global.String("vol", "", "volume image file")
	if err := global.Parse(args); err != nil {
		return err
	}
	rest := global.Args()
	if len(rest) == 0 {
		return fmt.Errorf("no command; run 'backupctl help'")
	}
	cmd, rest := rest[0], rest[1:]
	ctx := context.Background()

	// Commands that do not need a mounted volume.
	switch cmd {
	case "mkfs":
		fs := newFlagSet("mkfs")
		blocks := fs.Int("blocks", 16384, "volume size in 4 KB blocks")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *vol == "" {
			return fmt.Errorf("mkfs: -vol required")
		}
		dev, err := storage.CreateFileDevice(*vol, *blocks)
		if err != nil {
			return err
		}
		defer dev.Close()
		if _, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{}); err != nil {
			return err
		}
		fmt.Printf("formatted %s: %d blocks (%d MB)\n", *vol, *blocks, *blocks*wafl.BlockSize>>20)
		return nil
	case "imagerestore":
		fs := newFlagSet("imagerestore")
		in := fs.String("i", "", "image stream file")
		setID := fs.Uint64("set", 0, "restore this dedup-encoded set from a chunk store")
		from := fs.String("from", "", "volume whose catalog/chunkstore holds -set (default -vol)")
		incr := fs.Bool("incremental", false, "apply as incremental on the current volume state")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *vol == "" || (*in == "") == (*setID == 0) {
			return fmt.Errorf("imagerestore: -vol and exactly one of -i and -set required")
		}
		var replay physical.Source
		var nblocks uint64
		if *setID != 0 {
			catVol := *from
			if catVol == "" {
				catVol = *vol
			}
			cat, store, err := openVolCatalog(catVol)
			if err != nil {
				return err
			}
			defer store.Close()
			found := false
			for _, ds := range cat.Sets() {
				if ds.ID == *setID {
					if ds.Engine != catalog.Image {
						return fmt.Errorf("imagerestore: set %d is a %s dump, not an image (use restore -set)", *setID, ds.Engine)
					}
					nblocks = ds.NBlocks
					found = true
				}
			}
			if !found {
				return fmt.Errorf("imagerestore: set %d not in %s catalog", *setID, catVol)
			}
			rd, media, err := manifestSource(cat, catVol, *setID)
			if err != nil {
				return fmt.Errorf("imagerestore: %w", err)
			}
			defer media.Close()
			replay = rd
		} else {
			src, _, err := openStream(*in)
			if err != nil {
				return err
			}
			nblocks, _, _, replay, err = physical.StreamInfo(src)
			if err != nil {
				return err
			}
		}
		dev, err := openOrCreate(*vol, int(nblocks))
		if err != nil {
			return err
		}
		defer dev.Close()
		stats, err := physical.Restore(ctx, physical.RestoreOptions{
			Vol: dev, Source: replay, ExpectIncremental: *incr,
		})
		if err != nil {
			return err
		}
		fmt.Printf("restored %d blocks (generation %d)\n", stats.BlocksRestored, stats.Gen)
		return nil
	case "imageverify":
		fs := newFlagSet("imageverify")
		in := fs.String("i", "", "image stream file")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *in == "" {
			return fmt.Errorf("imageverify: -i required")
		}
		src, _, err := openStream(*in)
		if err != nil {
			return err
		}
		check, err := physical.VerifyStream(src)
		if err != nil {
			return err
		}
		kind := "full"
		if check.BaseGen != 0 {
			kind = fmt.Sprintf("incremental on generation %d", check.BaseGen)
		}
		fmt.Printf("stream OK: %s, generation %d, %d blocks in %d extents, %d volume blocks\n",
			kind, check.Gen, check.BlockCount, check.Extents, check.NBlocks)
		return nil
	case "extract":
		fs := newFlagSet("extract")
		in := fs.String("i", "", "full image stream")
		incr := fs.String("incr", "", "comma-separated incremental streams, oldest first")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *in == "" || fs.NArg() == 0 {
			return fmt.Errorf("extract: -i and at least one path required")
		}
		full, _, err := openStream(*in)
		if err != nil {
			return err
		}
		var incs []physical.Source
		if *incr != "" {
			for _, p := range strings.Split(*incr, ",") {
				s, _, err := openStream(p)
				if err != nil {
					return err
				}
				incs = append(incs, s)
			}
		}
		files, err := physical.Extract(ctx, full, incs, fs.Args()...)
		if err != nil {
			return err
		}
		for p, data := range files {
			out := strings.ReplaceAll(strings.TrimPrefix(p, "/"), "/", "_")
			if err := os.WriteFile(out, data, 0644); err != nil {
				return err
			}
			fmt.Printf("extracted %s -> %s (%d bytes)\n", p, out, len(data))
		}
		return nil
	case "bench":
		return benchCommand(rest)
	case "stats":
		return statsCommand(ctx, rest)
	case "serve":
		return serveCommand(rest)
	case "replica":
		return replicaCommand(rest)
	case "help":
		return helpCommand(rest)
	case "catalog":
		return catalogCommand(*vol, rest)
	case "scrub":
		return scrubCommand(ctx, *vol, rest)
	case "plan":
		return planCommand(*vol, rest)
	case "recover":
		// recover mounts (logical) or rewrites (image) the volume
		// itself, after the catalog has been consulted.
		return recoverCommand(ctx, *vol, rest)
	}

	// Everything else mounts the volume.
	if *vol == "" {
		return fmt.Errorf("%s: -vol required", cmd)
	}
	dev, err := storage.OpenFileDevice(*vol)
	if err != nil {
		return err
	}
	defer dev.Close()
	waflfs, err := wafl.Mount(ctx, dev, nil, wafl.Options{})
	if err != nil {
		return err
	}
	return volumeCommand(ctx, waflfs, *vol, cmd, rest)
}

func volumeCommand(ctx context.Context, fs *wafl.FS, vol, cmd string, rest []string) error {
	v := fs.ActiveView()
	switch cmd {
	case "put":
		if len(rest) != 2 {
			return fmt.Errorf("put: usage: put <hostfile> </fs/path>")
		}
		data, err := os.ReadFile(rest[0])
		if err != nil {
			return err
		}
		if _, err := fs.WriteFile(ctx, rest[1], data, 0644); err != nil {
			return err
		}
		if err := fs.CP(ctx); err != nil {
			return err
		}
		fmt.Printf("wrote %d bytes to %s\n", len(data), rest[1])
		return nil
	case "cat":
		if len(rest) != 1 {
			return fmt.Errorf("cat: usage: cat </fs/path>")
		}
		data, err := v.ReadFile(ctx, rest[0])
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(data)
		return err
	case "ls":
		path := "/"
		if len(rest) > 0 {
			path = rest[0]
		}
		ino, err := v.Namei(ctx, path)
		if err != nil {
			return err
		}
		ents, err := v.Readdir(ctx, ino)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if e.Name == "." || e.Name == ".." {
				continue
			}
			st, err := v.GetInode(ctx, e.Ino)
			if err != nil {
				return err
			}
			kind := "-"
			if wafl.IsDir(st.Mode) {
				kind = "d"
			} else if wafl.IsSymlink(st.Mode) {
				kind = "l"
			}
			fmt.Printf("%s%04o %8d ino=%-6d %s\n", kind, st.Mode&07777, st.Size, e.Ino, e.Name)
		}
		return nil
	case "rm":
		if len(rest) != 1 {
			return fmt.Errorf("rm: usage: rm </fs/path>")
		}
		if err := fs.RemovePath(ctx, rest[0]); err != nil {
			return err
		}
		return fs.CP(ctx)
	case "snap":
		if len(rest) == 0 {
			return fmt.Errorf("snap: usage: snap create|delete|ls [name]")
		}
		switch rest[0] {
		case "create":
			if len(rest) != 2 {
				return fmt.Errorf("snap create <name>")
			}
			return fs.CreateSnapshot(ctx, rest[1])
		case "delete":
			if len(rest) != 2 {
				return fmt.Errorf("snap delete <name>")
			}
			return fs.DeleteSnapshot(ctx, rest[1])
		case "ls":
			for _, s := range fs.Snapshots() {
				blocks, _ := fs.SnapshotBlocks(s.Name)
				fmt.Printf("%-20s id=%-3d gen=%-6d blocks=%d\n", s.Name, s.ID, s.Gen, blocks)
			}
			return nil
		case "revert":
			if len(rest) != 2 {
				return fmt.Errorf("snap revert <name>")
			}
			if err := fs.RevertToSnapshot(ctx, rest[1]); err != nil {
				return err
			}
			fmt.Printf("reverted to snapshot %q (newer snapshots deleted)\n", rest[1])
			return nil
		}
		return fmt.Errorf("snap: unknown subcommand %q", rest[0])
	case "df":
		used, free := fs.UsedBlocks(), fs.FreeBlocks()
		fmt.Printf("volume:   %d blocks (%d MB)\n", fs.NumBlocks(), fs.NumBlocks()*wafl.BlockSize>>20)
		fmt.Printf("used:     %d blocks (%d MB)\n", used, used*wafl.BlockSize>>20)
		fmt.Printf("free:     %d blocks (%d MB)\n", free, free*wafl.BlockSize>>20)
		fmt.Printf("inodes:   %d\n", fs.NumInodes())
		fmt.Printf("snapshots: %d\n", len(fs.Snapshots()))
		return nil
	case "fsck":
		problems, err := fs.Check(ctx)
		if err != nil {
			return err
		}
		for _, p := range problems {
			fmt.Println("fsck:", p)
		}
		// Cross-check the backup catalog against its stream files when
		// one exists beside the volume.
		var findings []scrub.Finding
		if _, err := os.Stat(catalogPath(vol)); err == nil {
			cat, store, err := openVolCatalog(vol)
			if err != nil {
				return err
			}
			defer store.Close()
			findings = scrub.Fsck(cat, scrub.FsckOptions{HaveVolume: statExtent})
			for _, f := range findings {
				fmt.Println("fsck:", f)
			}
		}
		if len(problems)+len(findings) == 0 {
			fmt.Println("filesystem and catalog are consistent")
			return nil
		}
		return fmt.Errorf("%d problems found", len(problems)+len(findings))
	case "fill":
		set := newFlagSet("fill")
		mb := set.Int("mb", 8, "approximate dataset size in MiB")
		seed := set.Int64("seed", 1, "generator seed")
		if err := set.Parse(rest); err != nil {
			return err
		}
		files := *mb << 20 / (24 << 10)
		paths, err := workload.Generate(ctx, fs, workload.Spec{
			Seed: *seed, Files: files, DirFanout: 10,
			MeanFileSize: 24 << 10, Symlinks: files / 40, Hardlinks: files / 60,
		})
		if err != nil {
			return err
		}
		if err := fs.CP(ctx); err != nil {
			return err
		}
		fmt.Printf("generated %d files (~%d MB); volume now %d blocks used\n",
			len(paths), *mb, fs.UsedBlocks())
		return nil
	case "age":
		set := newFlagSet("age")
		rounds := set.Int("rounds", 4, "churn rounds")
		seed := set.Int64("seed", 2, "churn seed")
		if err := set.Parse(rest); err != nil {
			return err
		}
		// Churn every regular file currently on the volume.
		d, err := workload.TreeDigest(ctx, v, "/")
		if err != nil {
			return err
		}
		var paths []string
		for p, e := range d {
			if e.Type == wafl.ModeReg {
				paths = append(paths, p)
			}
		}
		if len(paths) == 0 {
			return fmt.Errorf("age: volume has no files; run fill first")
		}
		alive, err := workload.Age(ctx, fs, paths, workload.AgeSpec{
			Seed: *seed, Rounds: *rounds, ChurnPerRound: len(paths) / 3,
			MeanFileSize: 24 << 10,
		})
		if err != nil {
			return err
		}
		fmt.Printf("aged %d rounds; %d files survive, %d blocks used\n",
			*rounds, len(alive), fs.UsedBlocks())
		return nil
	case "verify":
		set := newFlagSet("verify")
		in := set.String("i", "", "dump stream file")
		subtree := set.String("subtree", "", "dump root used at dump time")
		if err := set.Parse(rest); err != nil {
			return err
		}
		if *in == "" {
			return fmt.Errorf("verify: -i required")
		}
		src, _, err := openStream(*in)
		if err != nil {
			return err
		}
		res, err := logical.Verify(ctx, logical.VerifyOptions{
			View: v, Source: src, Subtree: *subtree,
		})
		if err != nil {
			return err
		}
		if len(res.Problems) == 0 {
			fmt.Printf("dump verifies: %d files, %d dirs checked, %.1f MB read\n",
				res.FilesChecked, res.DirsChecked, float64(res.BytesRead)/(1<<20))
			return nil
		}
		for _, p := range res.Problems {
			fmt.Println("verify:", p)
		}
		return fmt.Errorf("%d mismatches", len(res.Problems))
	case "dump":
		set := newFlagSet("dump")
		out := set.String("o", "", "output stream file")
		level := set.Int("level", 0, "incremental level 0-9")
		subtree := set.String("subtree", "", "dump only this directory")
		dedup := set.Bool("dedup", false, "dedup-encode into <vol>.chunkstore instead of a stream file")
		revdedup := set.Bool("revdedup", false, "reverse dedup: rewrite old-set hits so this dump restores at streaming rate (implies -dedup)")
		trace := set.String("trace", "", "write a Chrome trace of the dump to this file")
		if err := set.Parse(rest); err != nil {
			return err
		}
		if *revdedup {
			*dedup = true
		}
		if *out == "" && !*dedup {
			return fmt.Errorf("dump: -o required (or -dedup)")
		}
		if *trace != "" {
			tracer, flush, err := traceToFile(*trace)
			if err != nil {
				return err
			}
			defer flush()
			ctx = obs.WithTracer(ctx, tracer)
		}
		cat, store, err := openVolCatalog(vol)
		if err != nil {
			return err
		}
		defer store.Close()
		dates := catalogDates(cat, vol)
		if err := fs.CreateSnapshot(ctx, "backupctl.dump"); err != nil {
			return err
		}
		defer fs.DeleteSnapshot(ctx, "backupctl.dump")
		view, err := fs.SnapshotView("backupctl.dump")
		if err != nil {
			return err
		}
		var sink dumpfmt.Sink
		var closeSink func() error
		var dw *chunk.Writer
		media := *out
		if *dedup {
			store, err := openChunkStore(vol)
			if err != nil {
				return err
			}
			defer store.Close()
			dw, err = chunk.NewWriter(chunk.WriterOptions{
				Index: cat, Media: store, Reverse: *revdedup,
				Ctx: ctx, Engine: "logical",
			})
			if err != nil {
				return err
			}
			sink, closeSink = dw, nil
			media = chunkStorePath(vol)
		} else {
			fsink, err := createStream(*out, uint64(fs.NumBlocks()))
			if err != nil {
				return err
			}
			sink, closeSink = fsink, fsink.Close
		}
		var index []catalog.FileIndexEntry
		stats, err := logical.Dump(ctx, logical.DumpOptions{
			View: view, Level: *level, Dates: dates, FSID: vol,
			Subtree: *subtree, Sink: sink, Label: "backupctl", ReadAhead: 16,
			FileIndex: func(path string, ino wafl.Inum, unit int64) {
				index = append(index, catalog.FileIndexEntry{Path: path, Ino: uint32(ino), Unit: unit})
			},
		})
		if err != nil {
			return err
		}
		var manifest chunk.Manifest
		if dw != nil {
			if manifest, err = dw.Close(); err != nil {
				return err
			}
		} else if err := closeSink(); err != nil {
			return err
		}
		// The catalog journal is the authoritative record; the legacy
		// <vol>.dumpdates file is kept in sync for older tooling.
		id, err := recordLogicalSet(cat, vol, "backupctl.dump", media, *level, stats, index)
		if err != nil {
			return err
		}
		if dw != nil {
			if err := cat.AppendManifest(id, manifest); err != nil {
				return err
			}
		}
		if err := saveDates(vol, dates); err != nil {
			return err
		}
		fmt.Printf("dumped %d files, %d dirs, %d bytes (level %d, base date %d)\n",
			stats.FilesDumped, stats.DirsDumped, stats.BytesWritten, *level, stats.BaseDate)
		if dw != nil {
			printDedupStats(dw.Stats(), manifest)
		}
		return nil
	case "restore":
		set := newFlagSet("restore")
		in := set.String("i", "", "input stream file")
		setID := set.Uint64("set", 0, "restore this dedup-encoded set from <vol>.chunkstore")
		from := set.String("from", "", "volume whose catalog/chunkstore holds -set (default -vol)")
		target := set.String("target", "/", "directory to graft the dump onto")
		syncDel := set.Bool("sync-deletes", false, "apply deletions (incremental chains)")
		file := set.String("file", "", "restore only this dump-relative path")
		trace := set.String("trace", "", "write a Chrome trace of the restore to this file")
		if err := set.Parse(rest); err != nil {
			return err
		}
		if (*in == "") == (*setID == 0) {
			return fmt.Errorf("restore: exactly one of -i and -set required")
		}
		if *trace != "" {
			tracer, flush, err := traceToFile(*trace)
			if err != nil {
				return err
			}
			defer flush()
			ctx = obs.WithTracer(ctx, tracer)
		}
		var src dumpfmt.Source
		if *setID != 0 {
			catVol := *from
			if catVol == "" {
				catVol = vol
			}
			cat, store, err := openVolCatalog(catVol)
			if err != nil {
				return err
			}
			defer store.Close()
			rd, media, err := manifestSource(cat, catVol, *setID)
			if err != nil {
				return fmt.Errorf("restore: %w", err)
			}
			defer media.Close()
			src = rd
		} else {
			s, _, err := openStream(*in)
			if err != nil {
				return err
			}
			src = s
		}
		var files []string
		if *file != "" {
			files = []string{*file}
		}
		stats, err := logical.Restore(ctx, logical.RestoreOptions{
			FS: fs, Source: src, TargetDir: *target, Files: files,
			SyncDeletes: *syncDel, KernelIntegrated: true,
		})
		if err != nil {
			return err
		}
		fmt.Printf("restored %d files (%d skipped, %d deleted, %d links)\n",
			stats.FilesRestored, stats.FilesSkipped, stats.Deleted, stats.LinksMade)
		return nil
	case "push":
		return pushCommand(ctx, fs, vol, rest)
	case "imagedump":
		set := newFlagSet("imagedump")
		out := set.String("o", "", "output stream file")
		snap := set.String("snap", "", "snapshot to dump (created if missing)")
		base := set.String("base", "", "base snapshot for an incremental")
		dedup := set.Bool("dedup", false, "dedup-encode into <vol>.chunkstore instead of a stream file")
		revdedup := set.Bool("revdedup", false, "reverse dedup: rewrite old-set hits so this image restores at streaming rate (implies -dedup)")
		trace := set.String("trace", "", "write a Chrome trace of the image dump to this file")
		if err := set.Parse(rest); err != nil {
			return err
		}
		if *revdedup {
			*dedup = true
		}
		if *out == "" && !*dedup {
			return fmt.Errorf("imagedump: -o required (or -dedup)")
		}
		if *trace != "" {
			tracer, flush, err := traceToFile(*trace)
			if err != nil {
				return err
			}
			defer flush()
			ctx = obs.WithTracer(ctx, tracer)
		}
		name := *snap
		if name == "" {
			name = "backupctl.image"
		}
		if _, err := fs.Snapshot(name); err != nil {
			if err := fs.CreateSnapshot(ctx, name); err != nil {
				return err
			}
		}
		cat, store, err := openVolCatalog(vol)
		if err != nil {
			return err
		}
		defer store.Close()
		var sink dumpfmt.Sink
		var closeSink func() error
		var dw *chunk.Writer
		media := *out
		if *dedup {
			cstore, err := openChunkStore(vol)
			if err != nil {
				return err
			}
			defer cstore.Close()
			dw, err = chunk.NewWriter(chunk.WriterOptions{
				Index: cat, Media: cstore, Reverse: *revdedup,
				Ctx: ctx, Engine: "image",
			})
			if err != nil {
				return err
			}
			sink = dw
			media = chunkStorePath(vol)
		} else {
			fsink, err := createStream(*out, uint64(fs.NumBlocks()))
			if err != nil {
				return err
			}
			sink, closeSink = fsink, fsink.Close
		}
		stats, err := physical.Dump(ctx, physical.DumpOptions{
			FS: fs, Vol: fs.Device(), SnapName: name, BaseSnapName: *base, Sink: sink,
		})
		if err != nil {
			return err
		}
		var manifest chunk.Manifest
		if dw != nil {
			if manifest, err = dw.Close(); err != nil {
				return err
			}
		} else if err := closeSink(); err != nil {
			return err
		}
		id, err := recordImageSet(cat, vol, name, media, stats)
		if err != nil {
			return err
		}
		if dw != nil {
			if err := cat.AppendManifest(id, manifest); err != nil {
				return err
			}
		}
		fmt.Printf("image-dumped %d blocks (generation %d, base %d)\n",
			stats.BlocksDumped, stats.Gen, stats.BaseGen)
		if dw != nil {
			printDedupStats(dw.Stats(), manifest)
		}
		return nil
	}
	return fmt.Errorf("unknown command %q; run 'backupctl help'", cmd)
}

// --- stream files: length-prefixed tape records on the host FS.

type fileSink struct {
	f *os.File
}

func createStream(path string, _ uint64) (*fileSink, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0644)
	if err != nil {
		return nil, err
	}
	return &fileSink{f: f}, nil
}

func (s *fileSink) WriteRecord(data []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := s.f.Write(hdr[:]); err != nil {
		return err
	}
	_, err := s.f.Write(data)
	return err
}

func (s *fileSink) NextVolume() error {
	return fmt.Errorf("backupctl: stream files never hit end of media")
}

func (s *fileSink) Close() error { return s.f.Close() }

type fileSource struct {
	f *os.File
}

func openStream(path string) (*fileSource, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	return &fileSource{f: f}, 0, nil
}

func (s *fileSource) ReadRecord() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(s.f, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > 64<<20 {
		return nil, fmt.Errorf("backupctl: bad record length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(s.f, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// openOrCreate opens vol, creating it with n blocks when absent.
func openOrCreate(path string, n int) (*storage.FileDevice, error) {
	if _, err := os.Stat(path); err == nil {
		return storage.OpenFileDevice(path)
	}
	if n <= 0 {
		n = 16384
	}
	return storage.CreateFileDevice(path, n)
}

// --- dump-date persistence: "<level> <date>" lines per fsid.

func datesPath(vol string) string { return vol + ".dumpdates" }

func loadDates(vol string) (*logical.DumpDates, error) {
	d := logical.NewDumpDates()
	data, err := os.ReadFile(datesPath(vol))
	if err != nil {
		return d, nil // absent = empty history
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		level, err1 := strconv.Atoi(fields[0])
		date, err2 := strconv.ParseInt(fields[1], 10, 64)
		if err1 == nil && err2 == nil {
			d.Record(vol, level, date)
		}
	}
	return d, nil
}

func saveDates(vol string, d *logical.DumpDates) error {
	var lines []string
	// DumpDates does not expose iteration; persist via its String form
	// ("<fsid> level <L> at <date>" lines).
	for _, line := range strings.Split(d.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 5 && fields[0] == vol {
			lines = append(lines, fields[2]+" "+fields[4])
		}
	}
	sort.Strings(lines)
	return os.WriteFile(datesPath(vol), []byte(strings.Join(lines, "\n")+"\n"), 0644)
}

// ensure dumpfmt is linked for its Sink contract documentation.
var _ dumpfmt.Sink = (*fileSink)(nil)
