// Catalog replication for the serve side: `serve -standby FILE`
// mirrors every catalog append to a second journal file — ideally on
// different media — so losing the serve host's primary disk does not
// lose the record of which dumps it received. `replica status`
// inspects a primary/standby pair and reports whether the standby is
// in sync, lagging (clean shorter prefix, caught up on the next
// append), or diverged (mismatched bytes, rewritten on the next
// append). The full quorum protocol lives in internal/replica; the
// mirror here is its two-copy file-backed cousin, sharing the same
// journal framing and the same catch-up rules.
package main

import (
	"bytes"
	"fmt"

	"repro/internal/catalog"
)

// mirrorStore is a catalog.Store that keeps a standby journal file in
// lockstep with the primary. Reads serve from the primary (it is the
// point of truth); appends and truncates apply to the primary first,
// then the standby. A standby that cannot keep up fails the append —
// the caller asked for two copies, so one copy is an error, exactly
// like the quorum rule in internal/replica.
type mirrorStore struct {
	primary *catalog.FileStore
	standby *catalog.FileStore
}

// openMirrorStore opens both journals and reconciles the standby to
// the primary: a clean shorter prefix is extended, anything else is
// rewritten from the primary (the standby holds no acknowledged state
// of its own, so rewriting never loses a durable record).
func openMirrorStore(primaryPath, standbyPath string) (*mirrorStore, error) {
	p, err := catalog.OpenFileStore(primaryPath)
	if err != nil {
		return nil, err
	}
	s, err := catalog.OpenFileStore(standbyPath)
	if err != nil {
		p.Close()
		return nil, err
	}
	m := &mirrorStore{primary: p, standby: s}
	if err := m.reconcile(); err != nil {
		m.Close()
		return nil, err
	}
	return m, nil
}

func (m *mirrorStore) reconcile() error {
	pb, err := m.primary.ReadAll()
	if err != nil {
		return err
	}
	sb, err := m.standby.ReadAll()
	if err != nil {
		return err
	}
	switch {
	case bytes.Equal(sb, pb):
		return nil
	case len(sb) < len(pb) && bytes.Equal(sb, pb[:len(sb)]):
		return m.standby.Append(pb[len(sb):])
	default:
		if err := m.standby.Truncate(0); err != nil {
			return err
		}
		return m.standby.Append(pb)
	}
}

// ReadAll implements catalog.Store.
func (m *mirrorStore) ReadAll() ([]byte, error) { return m.primary.ReadAll() }

// Append implements catalog.Store.
func (m *mirrorStore) Append(p []byte) error {
	if err := m.primary.Append(p); err != nil {
		return err
	}
	if err := m.standby.Append(p); err != nil {
		return fmt.Errorf("standby journal: %w", err)
	}
	return nil
}

// Truncate implements catalog.Store.
func (m *mirrorStore) Truncate(n int64) error {
	if err := m.primary.Truncate(n); err != nil {
		return err
	}
	if err := m.standby.Truncate(n); err != nil {
		return fmt.Errorf("standby journal: %w", err)
	}
	return nil
}

// Close closes both journal files.
func (m *mirrorStore) Close() {
	m.primary.Close()
	m.standby.Close()
}

// replicaCommand dispatches `backupctl replica <sub>`.
func replicaCommand(rest []string) error {
	if len(rest) == 0 {
		return fmt.Errorf("replica: subcommand required (status)")
	}
	sub, rest := rest[0], rest[1:]
	switch sub {
	case "status":
		return replicaStatusCommand(rest)
	default:
		return fmt.Errorf("replica: unknown subcommand %q", sub)
	}
}

// replicaStatusCommand compares a primary catalog journal with its
// standby mirror and reports the replication state.
func replicaStatusCommand(rest []string) error {
	set := newFlagSet("replica status")
	primary := set.String("primary", "", "primary catalog journal (default <vol>.catalog of -o base)")
	standby := set.String("standby", "", "standby catalog journal")
	if err := set.Parse(rest); err != nil {
		return err
	}
	if *primary == "" || *standby == "" {
		return fmt.Errorf("replica status: -primary and -standby required")
	}
	p, err := catalog.OpenFileStore(*primary)
	if err != nil {
		return err
	}
	defer p.Close()
	s, err := catalog.OpenFileStore(*standby)
	if err != nil {
		return err
	}
	defer s.Close()
	pb, err := p.ReadAll()
	if err != nil {
		return err
	}
	sb, err := s.ReadAll()
	if err != nil {
		return err
	}

	pValid, _ := catalog.ScanFrames(pb, nil)
	sValid, _ := catalog.ScanFrames(sb, nil)
	cat, err := catalog.Open(p)
	if err != nil {
		return fmt.Errorf("replica status: primary does not replay: %w", err)
	}
	fmt.Printf("primary %s: %d bytes (%d valid), %d sets\n",
		*primary, len(pb), pValid, len(cat.Sets()))
	fmt.Printf("standby %s: %d bytes (%d valid)\n", *standby, len(sb), sValid)
	switch {
	case bytes.Equal(sb, pb):
		fmt.Println("state: in sync")
	case len(sb) < len(pb) && bytes.Equal(sb, pb[:len(sb)]):
		fmt.Printf("state: lagging %d bytes (clean prefix; caught up on next append)\n", len(pb)-len(sb))
	default:
		fmt.Println("state: diverged (standby is rewritten from the primary on next append)")
	}
	return nil
}
