package catalog

import (
	"fmt"
	"sort"

	"repro/internal/chunk"
	"repro/internal/obs"
)

// Chunk-layer journal records: the SHA-256 chunk index and per-set
// manifests of internal/chunk live in the same crash-safe journal as
// everything else, with the same CRC framing and torn-tail recovery.
//
//   - chunk-index (kind 7): a batch of newly stored chunks. Replay is
//     latest-wins per hash, which is the mechanism behind reverse
//     dedup: a superseding entry redirects every manifest that names
//     the hash to the new copy, without rewriting those manifests.
//   - set-manifest (kind 8): the ordered chunk refs reconstituting one
//     dump set's stream, journaled with the set itself at completion.
//   - chunk-erase (kind 9): hashes the sweep removed. Journaled BEFORE
//     media is touched, so a crash between the two leaves dead media
//     bytes, never a live reference to erased bytes.
//
// Refcounts are derived, not stored: a chunk is referenced iff a live
// (unexpired, journaled) manifest names it. That makes refcount state
// trivially consistent after any crash — it is a pure function of the
// recovered journal.

// Payload kinds (continuing catalog.go's 1-6).
const (
	kindChunkIndex = 7
	kindManifest   = 8
	kindChunkErase = 9
)

type chunkIndexRecord struct {
	Entries []chunk.Entry
}

type chunkManifestRecord struct {
	SetID uint64
	M     chunk.Manifest
}

type chunkEraseRecord struct {
	Hashes []chunk.Hash
}

func (chunkIndexRecord) isRecord()    {}
func (chunkManifestRecord) isRecord() {}
func (chunkEraseRecord) isRecord()    {}

// applyChunk folds chunk-layer records into the replayed state (called
// from apply).
func (c *Catalog) applyChunk(rec Record) {
	switch r := rec.(type) {
	case chunkIndexRecord:
		for _, e := range r.Entries {
			if old, ok := c.chunks[e.Hash]; ok {
				// Superseded (reverse dedup): the old copy is dead bytes.
				c.chunkStored -= int64(old.StoredLen)
				c.chunkDead += int64(old.StoredLen)
			}
			c.chunks[e.Hash] = e
			c.chunkStored += int64(e.StoredLen)
		}
	case chunkManifestRecord:
		c.manifests[r.SetID] = r.M
	case chunkEraseRecord:
		for _, h := range r.Hashes {
			if e, ok := c.chunks[h]; ok {
				c.chunkStored -= int64(e.StoredLen)
				c.chunkDead += int64(e.StoredLen)
				delete(c.chunks, h)
			}
		}
	}
}

// LookupChunk implements chunk.Lookup: the current stored location of
// a chunk.
func (c *Catalog) LookupChunk(h chunk.Hash) (chunk.Entry, bool) {
	e, ok := c.chunks[h]
	return e, ok
}

// CommitChunks implements chunk.Index: durably journal newly stored
// chunks (latest entry wins per hash). Batches are split to respect
// the journal's record bound.
func (c *Catalog) CommitChunks(entries []chunk.Entry) error {
	// ~64 bytes per entry plus volume strings; 64k entries stays far
	// under MaxRecord at any plausible volume-label length.
	const batch = 64 << 10
	for len(entries) > 0 {
		n := len(entries)
		if n > batch {
			n = batch
		}
		r := chunkIndexRecord{Entries: entries[:n]}
		if err := c.append(r, encodeChunkIndex(&r)); err != nil {
			return err
		}
		entries = entries[n:]
	}
	return nil
}

// AppendManifest journals a dump set's chunk manifest. Call it right
// after AppendDumpSet for a dedup-encoded set.
func (c *Catalog) AppendManifest(setID uint64, m chunk.Manifest) error {
	if _, ok := c.byID[setID]; !ok {
		return fmt.Errorf("catalog: manifest for unknown set %d", setID)
	}
	r := chunkManifestRecord{SetID: setID, M: m}
	return c.append(r, encodeChunkManifest(&r))
}

// Manifest returns the chunk manifest recorded for a set, if any: the
// marker that the set is dedup-encoded and must be restored through
// the chunk index.
func (c *Catalog) Manifest(setID uint64) (chunk.Manifest, bool) {
	m, ok := c.manifests[setID]
	return m, ok
}

// ChunkRefcounts derives every indexed chunk's reference count from
// the live (unexpired) manifests. Indexed chunks no manifest names —
// orphans of torn dumps, or survivors of expired sets — appear with
// count zero; those are what SweepChunks erases.
func (c *Catalog) ChunkRefcounts() map[chunk.Hash]int {
	refs := make(map[chunk.Hash]int, len(c.chunks))
	for h := range c.chunks {
		refs[h] = 0
	}
	for setID, m := range c.manifests {
		if _, dead := c.expired[setID]; dead {
			continue
		}
		for _, r := range m.Refs {
			if _, ok := refs[r.Hash]; ok {
				refs[r.Hash]++
			}
		}
	}
	return refs
}

// ChunkStats reports the chunk index's size: live entries, live
// stored bytes, and dead bytes (superseded or erased copies whose
// media space awaits volume reclaim).
func (c *Catalog) ChunkStats() (entries int, storedBytes, deadBytes int64) {
	return len(c.chunks), c.chunkStored, c.chunkDead
}

// ChunkVolumes returns the media volumes holding live indexed chunks.
// The media pool must not erase these, whatever the dump sets on them
// say: reverse dedup can leave an old volume hosting the only copy of
// a chunk that newer, unexpired sets reference.
func (c *Catalog) ChunkVolumes() map[string]bool {
	vols := make(map[string]bool)
	for _, e := range c.chunks {
		vols[e.Loc.Volume] = true
	}
	return vols
}

// SweepChunks erases zero-ref chunks: index entries no live manifest
// references. The erase record is journaled FIRST — once it is
// durable the chunks are logically gone — and only then is media
// asked to erase the bytes (via erase, typically a chunk.Eraser;
// may be nil to leave media reclaim to volume retirement). It returns
// the swept entries.
func (c *Catalog) SweepChunks(erase func(chunk.Entry) error) ([]chunk.Entry, error) {
	refs := c.ChunkRefcounts()
	var victims []chunk.Entry
	for h, n := range refs {
		if n == 0 {
			victims = append(victims, c.chunks[h])
		}
	}
	if len(victims) == 0 {
		return nil, nil
	}
	sort.Slice(victims, func(i, j int) bool {
		a, b := victims[i].Hash, victims[j].Hash
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	r := chunkEraseRecord{Hashes: make([]chunk.Hash, len(victims))}
	for i, v := range victims {
		r.Hashes[i] = v.Hash
	}
	if err := c.append(r, encodeChunkErase(&r)); err != nil {
		return nil, err
	}
	if erase != nil {
		for _, v := range victims {
			if err := erase(v); err != nil {
				return victims, fmt.Errorf("catalog: erasing swept chunk %s: %w", v.Hash, err)
			}
		}
	}
	return victims, nil
}

// RegisterChunkMetrics installs pull collectors for the chunk index.
func (c *Catalog) RegisterChunkMetrics(r *obs.Registry) {
	r.RegisterFunc("chunk_index_entries", obs.KindGauge, nil, func() float64 {
		return float64(len(c.chunks))
	})
	r.RegisterFunc("chunk_index_stored_bytes", obs.KindGauge, nil, func() float64 {
		return float64(c.chunkStored)
	})
	r.RegisterFunc("chunk_index_dead_bytes", obs.KindGauge, nil, func() float64 {
		return float64(c.chunkDead)
	})
}

// --- encoding -----------------------------------------------------------

func (e *enc) hash(h chunk.Hash) { e.b = append(e.b, h[:]...) }

func (d *dec) hash() (h chunk.Hash) {
	if d.err != nil || d.off+len(h) > len(d.b) {
		d.fail()
		return
	}
	copy(h[:], d.b[d.off:])
	d.off += len(h)
	return
}

func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// boolean decodes a strict 0/1 byte; anything else is corruption (and
// would break canonical re-encoding).
func (d *dec) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("catalog: bad boolean at %d", d.off-1)
		}
		return false
	}
}

func encodeChunkIndex(r *chunkIndexRecord) []byte {
	e := &enc{}
	e.u8(kindChunkIndex)
	e.u8(1)
	e.u32(uint32(len(r.Entries)))
	for _, ce := range r.Entries {
		e.hash(ce.Hash)
		e.u32(ce.RawLen)
		e.u32(ce.StoredLen)
		e.boolean(ce.Compressed)
		e.str(ce.Loc.Volume)
		e.i64(ce.Loc.Index)
	}
	return e.b
}

func encodeChunkManifest(r *chunkManifestRecord) []byte {
	e := &enc{}
	e.u8(kindManifest)
	e.u8(1)
	e.u64(r.SetID)
	e.i64(r.M.RawBytes)
	e.i64(r.M.StoredBytes)
	e.u32(uint32(len(r.M.Refs)))
	for _, ref := range r.M.Refs {
		e.hash(ref.Hash)
		e.u32(ref.RawLen)
	}
	return e.b
}

func encodeChunkErase(r *chunkEraseRecord) []byte {
	e := &enc{}
	e.u8(kindChunkErase)
	e.u8(1)
	e.u32(uint32(len(r.Hashes)))
	for _, h := range r.Hashes {
		e.hash(h)
	}
	return e.b
}

// decodeChunkRecord parses kinds 7-9 (called from DecodeRecord with
// the kind/version prefix already consumed).
func decodeChunkRecord(kind uint8, d *dec, p []byte) (Record, error) {
	switch kind {
	case kindChunkIndex:
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || n > len(p) {
			return nil, fmt.Errorf("catalog: chunk-index count %d", n)
		}
		var r chunkIndexRecord
		for i := 0; i < n; i++ {
			var ce chunk.Entry
			ce.Hash = d.hash()
			ce.RawLen = d.u32()
			ce.StoredLen = d.u32()
			ce.Compressed = d.boolean()
			ce.Loc.Volume = d.str()
			ce.Loc.Index = d.i64()
			if d.err != nil {
				return nil, d.err
			}
			if ce.RawLen == 0 || ce.StoredLen == 0 {
				return nil, fmt.Errorf("catalog: chunk entry with zero length")
			}
			r.Entries = append(r.Entries, ce)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	case kindManifest:
		var r chunkManifestRecord
		r.SetID = d.u64()
		r.M.RawBytes = d.i64()
		r.M.StoredBytes = d.i64()
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || n > len(p) {
			return nil, fmt.Errorf("catalog: manifest ref count %d", n)
		}
		for i := 0; i < n; i++ {
			var ref chunk.Ref
			ref.Hash = d.hash()
			ref.RawLen = d.u32()
			if d.err != nil {
				return nil, d.err
			}
			r.M.Refs = append(r.M.Refs, ref)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		if r.SetID == 0 {
			return nil, fmt.Errorf("catalog: manifest for set id 0")
		}
		return r, nil
	case kindChunkErase:
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || n > len(p) {
			return nil, fmt.Errorf("catalog: chunk-erase count %d", n)
		}
		var r chunkEraseRecord
		for i := 0; i < n; i++ {
			h := d.hash()
			if d.err != nil {
				return nil, d.err
			}
			r.Hashes = append(r.Hashes, h)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	}
	return nil, fmt.Errorf("catalog: unknown record kind %d", kind)
}
