package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// PlanOptions asks the planner for a restore chain.
type PlanOptions struct {
	// Engine selects which dump family to plan from.
	Engine Engine
	// FSID names the filesystem to recover.
	FSID string
	// At is the target time: recover the newest state dumped at or
	// before it. 0 means the latest recorded state.
	At int64
	// File, when set, plans a single-file ("stupidity") recovery of
	// this dump-relative path instead of the whole volume.
	File string
	// IncludeExpired lets the planner use expired sets — a last-resort
	// recovery from media that retention released but reclamation has
	// not yet erased.
	IncludeExpired bool
	// IncludeDamaged lets the planner use sets the scrubber marked
	// damaged — a last-resort recovery that accepts salvage semantics
	// instead of routing around the damage.
	IncludeDamaged bool
}

// BlockedChain explains why one candidate restore chain is unusable:
// the newest set it would reproduce, and the damage that blocks it.
type BlockedChain struct {
	Target uint64
	Reason string
}

// UnplannableError is the planner's typed refusal: every candidate
// full+incremental chain is blocked by damaged sets, and Blocked names
// each candidate target with the exact set that blocks it — the
// precise explanation that replaces a mid-restore surprise.
type UnplannableError struct {
	Engine  Engine
	FSID    string
	Blocked []BlockedChain
}

func (e *UnplannableError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "catalog: no undamaged %s chain for %q", e.Engine, e.FSID)
	for _, bc := range e.Blocked {
		fmt.Fprintf(&b, "; chain to set %d: %s", bc.Target, bc.Reason)
	}
	b.WriteString(" (rerun with IncludeDamaged for salvage semantics)")
	return b.String()
}

// Plan is a restore chain: Steps applied in order reproduce the
// filesystem state of Steps[len-1] — a full dump followed by its
// incrementals. For a single-file logical plan the chain is pruned to
// the one set whose index holds the newest copy of the file.
type Plan struct {
	Engine Engine
	FSID   string
	File   string
	Steps  []DumpSet
}

// Media returns the distinct volumes the plan needs, in mount order —
// the "media list" the operator no longer assembles by hand.
func (p *Plan) Media() []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range p.Steps {
		for _, m := range s.Media {
			if !seen[m.Volume] {
				seen[m.Volume] = true
				out = append(out, m.Volume)
			}
		}
	}
	return out
}

// String renders the plan for operators.
func (p *Plan) String() string {
	var b strings.Builder
	what := "volume"
	if p.File != "" {
		what = "file " + p.File
	}
	fmt.Fprintf(&b, "%s recovery of %s on %s: %d step(s)\n", p.Engine, what, p.FSID, len(p.Steps))
	for i, s := range p.Steps {
		var vols []string
		for _, m := range s.Media {
			vols = append(vols, m.Volume)
		}
		if s.Engine == Image {
			fmt.Fprintf(&b, "  %d. set %d image gen %d (base %d), %d blocks, media %s\n",
				i+1, s.ID, s.Gen, s.BaseGen, s.Units, strings.Join(vols, ","))
		} else {
			fmt.Fprintf(&b, "  %d. set %d level %d date %d (base %d), %d files, media %s\n",
				i+1, s.ID, s.Level, s.Date, s.BaseDate, s.Units, strings.Join(vols, ","))
		}
	}
	return b.String()
}

// Plan computes the minimal full+incremental chain recovering opts.FSID
// at opts.At. The chain is found by walking base links backwards from
// the newest eligible set: a logical incremental's base is the set
// whose dump date equals its BaseDate; an image incremental's base is
// the set whose generation equals its BaseGen. A broken link — the
// base was never recorded, or was expired and IncludeExpired is off —
// is an error naming the missing base, not a silently shorter chain.
//
// Sets the scrubber marked Damaged are routed around: the planner
// walks candidates newest-first and returns the first chain with no
// damaged member, reproducing a slightly older state rather than
// failing mid-restore. When every candidate chain is damage-blocked
// the refusal is a typed *UnplannableError naming each block.
func (c *Catalog) Plan(opts PlanOptions) (*Plan, error) {
	if opts.Engine != Logical && opts.Engine != Image {
		return nil, fmt.Errorf("catalog: plan needs an engine")
	}
	pool := c.sets
	damaged := func(id uint64) (string, bool) {
		if opts.IncludeDamaged {
			return "", false
		}
		return c.Damaged(id)
	}

	// Candidate targets, newest first. Ties on Date break to the later
	// ID (completion order). The first candidate is the state the
	// operator asked for; the rest exist only for damage route-around.
	var cands []*DumpSet
	for i := range pool {
		ds := &pool[i]
		if ds.Engine != opts.Engine || ds.FSID != opts.FSID {
			continue
		}
		if _, dead := c.expired[ds.ID]; dead && !opts.IncludeExpired {
			continue
		}
		if opts.At != 0 && ds.Date > opts.At {
			continue
		}
		cands = append(cands, ds)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Date != cands[j].Date {
			return cands[i].Date > cands[j].Date
		}
		return cands[i].ID > cands[j].ID
	})
	if len(cands) == 0 {
		return nil, fmt.Errorf("catalog: no %s dump of %q at or before %d", opts.Engine, opts.FSID, opts.At)
	}

	var blocked []BlockedChain
	for _, target := range cands {
		if why, bad := damaged(target.ID); bad {
			blocked = append(blocked, BlockedChain{Target: target.ID,
				Reason: fmt.Sprintf("set %d is damaged: %s", target.ID, why)})
			continue
		}
		chain, block, err := c.chainFor(opts, target)
		if err != nil {
			// Non-damage failures (missing or expired base, cycle) are
			// catalog corruption or retention mistakes, not something a
			// different candidate fixes — keep them hard errors.
			return nil, err
		}
		if block != "" {
			blocked = append(blocked, BlockedChain{Target: target.ID, Reason: block})
			continue
		}
		p := &Plan{Engine: opts.Engine, FSID: opts.FSID, File: opts.File, Steps: chain}
		if opts.File != "" && opts.Engine == Logical {
			if err := c.pruneForFile(p); err != nil {
				return nil, err
			}
		}
		// An image plan keeps the whole chain even for one file: blocks
		// of the file may live in any member, and Extract walks them all.
		return p, nil
	}
	return nil, &UnplannableError{Engine: opts.Engine, FSID: opts.FSID, Blocked: blocked}
}

// chainFor walks base links from target back to its full dump. It
// returns the chain full-first; a non-empty block reason when a member
// is damaged (the caller routes to an older candidate); or a hard
// error when the catalog itself cannot produce any chain through this
// target (missing base, expired base, base-link cycle).
func (c *Catalog) chainFor(opts PlanOptions, target *DumpSet) ([]DumpSet, string, error) {
	pool := c.sets
	chain := []DumpSet{*target}
	cur := target
	for !cur.Full() {
		var base *DumpSet
		for i := range pool {
			ds := &pool[i]
			if ds.Engine != opts.Engine || ds.FSID != opts.FSID || ds.ID >= cur.ID {
				continue
			}
			if opts.Engine == Image {
				if ds.Gen != cur.BaseGen {
					continue
				}
			} else if ds.Date != cur.BaseDate {
				continue
			}
			if base == nil || ds.ID > base.ID {
				base = ds
			}
		}
		if base == nil {
			if opts.Engine == Image {
				return nil, "", fmt.Errorf("catalog: set %d needs base generation %d, which is not in the catalog", cur.ID, cur.BaseGen)
			}
			return nil, "", fmt.Errorf("catalog: set %d needs base date %d, which is not in the catalog", cur.ID, cur.BaseDate)
		}
		if _, dead := c.expired[base.ID]; dead && !opts.IncludeExpired {
			return nil, "", fmt.Errorf("catalog: set %d needs set %d, which is expired", cur.ID, base.ID)
		}
		if !opts.IncludeDamaged {
			if why, bad := c.Damaged(base.ID); bad {
				return nil, fmt.Sprintf("set %d needs set %d, which is damaged: %s", cur.ID, base.ID, why), nil
			}
		}
		chain = append(chain, *base)
		cur = base
		if len(chain) > len(pool) {
			return nil, "", fmt.Errorf("catalog: base-link cycle involving set %d", cur.ID)
		}
	}
	// Reverse: full first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain, "", nil
}

// pruneForFile reduces a logical chain to the single newest member
// whose file index contains the path: a logical dump carries the whole
// file whenever it carries it at all, so one set suffices.
func (c *Catalog) pruneForFile(p *Plan) error {
	path := normalizePath(p.File)
	for i := len(p.Steps) - 1; i >= 0; i-- {
		idx := c.index[p.Steps[i].ID]
		if idx == nil {
			// No index recorded for this set: without it we cannot
			// prune safely, so keep the chain from here down.
			p.Steps = p.Steps[:i+1]
			return nil
		}
		for _, f := range idx {
			if normalizePath(f.Path) == path {
				p.Steps = []DumpSet{p.Steps[i]}
				return nil
			}
		}
	}
	return fmt.Errorf("catalog: %q is not in any indexed set of the chain", p.File)
}

func normalizePath(p string) string {
	return strings.Trim(p, "/")
}
