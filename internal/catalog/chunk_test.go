package catalog

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/chunk"
)

// sampleChunkEntries builds a deterministic batch of chunk-index
// entries on volume vol.
func sampleChunkEntries(vol string, seed int64) []chunk.Entry {
	mk := func(i int) chunk.Entry {
		var h chunk.Hash
		h[0] = byte(seed)
		h[1] = byte(i)
		h[31] = 0xab
		return chunk.Entry{
			Hash:       h,
			RawLen:     uint32(1000 + i),
			StoredLen:  uint32(500 + i),
			Compressed: i%2 == 0,
			Loc:        chunk.Loc{Volume: vol, Index: int64(i)},
		}
	}
	return []chunk.Entry{mk(1), mk(2), mk(3)}
}

// sampleManifest references the first two sampleChunkEntries hashes
// (leaving the third a zero-ref sweep victim).
func sampleManifest(vol string, seed int64) chunk.Manifest {
	es := sampleChunkEntries(vol, seed)
	m := chunk.Manifest{}
	for _, e := range es[:2] {
		m.Refs = append(m.Refs, chunk.Ref{Hash: e.Hash, RawLen: e.RawLen})
		m.RawBytes += int64(e.RawLen)
		m.StoredBytes += int64(e.StoredLen)
	}
	return m
}

func TestChunkJournalRoundTrip(t *testing.T) {
	store := &MemStore{}
	c, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	entries := sampleChunkEntries("t0", 1)
	if err := c.CommitChunks(entries); err != nil {
		t.Fatal(err)
	}
	id, err := c.AppendDumpSet(sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "t0"}))
	if err != nil {
		t.Fatal(err)
	}
	man := sampleManifest("t0", 1)
	if err := c.AppendManifest(id, man); err != nil {
		t.Fatal(err)
	}

	// Replay from the journal bytes and compare state.
	c2, err := Open(&MemStore{Buf: store.Buf})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		got, ok := c2.LookupChunk(e.Hash)
		if !ok || got != e {
			t.Fatalf("entry %s lost or changed in replay: %+v vs %+v", e.Hash, got, e)
		}
	}
	m2, ok := c2.Manifest(id)
	if !ok || len(m2.Refs) != len(man.Refs) || m2.RawBytes != man.RawBytes || m2.StoredBytes != man.StoredBytes {
		t.Fatalf("manifest lost in replay: %+v", m2)
	}
	n, stored, dead := c2.ChunkStats()
	if n != 3 || stored != 501+502+503 || dead != 0 {
		t.Fatalf("chunk stats %d/%d/%d after replay", n, stored, dead)
	}

	// Superseding an entry (reverse dedup) moves the old copy to dead
	// bytes and redirects lookups, including after another replay.
	sup := entries[0]
	sup.Loc = chunk.Loc{Volume: "t9", Index: 42}
	sup.StoredLen = 400
	if err := c2.CommitChunks([]chunk.Entry{sup}); err != nil {
		t.Fatal(err)
	}
	if got, _ := c2.LookupChunk(sup.Hash); got.Loc.Volume != "t9" {
		t.Fatalf("superseding entry did not win: %+v", got)
	}
	if _, stored, dead := c2.ChunkStats(); stored != 400+502+503 || dead != 501 {
		t.Fatalf("supersede accounting wrong: stored %d dead %d", stored, dead)
	}
	if !c2.ChunkVolumes()["t9"] || !c2.ChunkVolumes()["t0"] {
		t.Fatalf("chunk volumes wrong: %v", c2.ChunkVolumes())
	}
}

func TestChunkRefcountsAndSweep(t *testing.T) {
	store := &MemStore{}
	c, _ := Open(store)
	if err := c.CommitChunks(sampleChunkEntries("t0", 2)); err != nil {
		t.Fatal(err)
	}
	id, _ := c.AppendDumpSet(sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "t0"}))
	if err := c.AppendManifest(id, sampleManifest("t0", 2)); err != nil {
		t.Fatal(err)
	}

	refs := c.ChunkRefcounts()
	es := sampleChunkEntries("t0", 2)
	if refs[es[0].Hash] != 1 || refs[es[1].Hash] != 1 || refs[es[2].Hash] != 0 {
		t.Fatalf("refcounts wrong: %v", refs)
	}

	// Sweep erases only the zero-ref chunk, and survives replay.
	var erased []chunk.Entry
	swept, err := c.SweepChunks(func(e chunk.Entry) error { erased = append(erased, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 1 || swept[0].Hash != es[2].Hash || len(erased) != 1 {
		t.Fatalf("sweep took %d chunks, want exactly the orphan", len(swept))
	}
	if _, ok := c.LookupChunk(es[2].Hash); ok {
		t.Fatal("swept chunk still in index")
	}
	if _, ok := c.LookupChunk(es[0].Hash); !ok {
		t.Fatal("referenced chunk swept")
	}

	// Expire the set: its refs die, the sweep may now take the rest.
	if err := c.Expire(id, 999); err != nil {
		t.Fatal(err)
	}
	swept, err = c.SweepChunks(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(swept) != 2 {
		t.Fatalf("post-expiry sweep took %d chunks, want 2", len(swept))
	}
	c2, err := Open(&MemStore{Buf: store.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if n, stored, _ := c2.ChunkStats(); n != 0 || stored != 0 {
		t.Fatalf("replayed index not empty after sweep: %d entries, %d bytes", n, stored)
	}
}

// TestChunkRecoveryTornTail is the satellite property test for the new
// record kinds: a journal whose FINAL record is a chunk-index,
// manifest or chunk-erase record, torn or corrupted at every byte
// offset, must recover to exactly the pre-record state.
func TestChunkRecoveryTornTail(t *testing.T) {
	builders := []struct {
		name string
		last func(c *Catalog, id uint64) error
	}{
		{"chunk-index", func(c *Catalog, id uint64) error {
			return c.CommitChunks(sampleChunkEntries("t7", 7))
		}},
		{"manifest", func(c *Catalog, id uint64) error {
			return c.AppendManifest(id, sampleManifest("t0", 3))
		}},
		{"chunk-erase", func(c *Catalog, id uint64) error {
			_, err := c.SweepChunks(nil)
			return err
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			store := &MemStore{}
			c, _ := Open(store)
			if err := c.CommitChunks(sampleChunkEntries("t0", 3)); err != nil {
				t.Fatal(err)
			}
			id, _ := c.AppendDumpSet(sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "t0"}))
			if b.name == "chunk-erase" {
				// Give the sweep victims: expire the set so every chunk
				// is zero-ref.
				if err := c.AppendManifest(id, sampleManifest("t0", 3)); err != nil {
					t.Fatal(err)
				}
				if err := c.Expire(id, 500); err != nil {
					t.Fatal(err)
				}
			}
			lastFrame := len(store.Buf)
			if err := b.last(c, id); err != nil {
				t.Fatal(err)
			}
			buf := append([]byte(nil), store.Buf...)
			wantEntries, wantStored, _ := openAt(t, buf[:lastFrame]).ChunkStats()

			for cut := lastFrame; cut < len(buf); cut++ {
				torn := append([]byte(nil), buf[:cut]...)
				st := &MemStore{Buf: torn}
				rc, err := Open(st)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				if n, stored, _ := rc.ChunkStats(); n != wantEntries || stored != wantStored {
					t.Fatalf("cut %d: chunk state leaked from torn record (%d/%d vs %d/%d)",
						cut, n, stored, wantEntries, wantStored)
				}
				if len(st.Buf) != lastFrame {
					t.Fatalf("cut %d: not truncated to valid prefix", cut)
				}
			}
			for off := lastFrame; off < len(buf); off++ {
				bad := append([]byte(nil), buf...)
				bad[off] ^= 0xff
				st := &MemStore{Buf: bad}
				rc, err := Open(st)
				if err != nil {
					t.Fatalf("corrupt %d: %v", off, err)
				}
				if rc.TornBytes == 0 {
					t.Fatalf("corrupt %d: accepted", off)
				}
			}
		})
	}
}

func openAt(t *testing.T, buf []byte) *Catalog {
	t.Helper()
	c, err := Open(&MemStore{Buf: append([]byte(nil), buf...)})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// FuzzDecodeChunkIndex fuzzes the chunk-index record decoder: never
// panic, and any accepted payload re-encodes canonically.
func FuzzDecodeChunkIndex(f *testing.F) {
	for i := int64(0); i < 3; i++ {
		r := chunkIndexRecord{Entries: sampleChunkEntries(fmt.Sprintf("t%d", i), i)}
		f.Add(encodeChunkIndex(&r))
	}
	r := chunkIndexRecord{}
	f.Add(encodeChunkIndex(&r))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		ci, ok := rec.(chunkIndexRecord)
		if !ok {
			return
		}
		if enc := encodeChunkIndex(&ci); !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
		}
	})
}

// FuzzDecodeManifest fuzzes the set-manifest record decoder.
func FuzzDecodeManifest(f *testing.F) {
	for i := int64(0); i < 3; i++ {
		r := chunkManifestRecord{SetID: uint64(i + 1), M: sampleManifest("t0", i)}
		f.Add(encodeChunkManifest(&r))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		switch r := rec.(type) {
		case chunkManifestRecord:
			if enc := encodeChunkManifest(&r); !bytes.Equal(enc, data) {
				t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
			}
		case chunkEraseRecord:
			if enc := encodeChunkErase(&r); !bytes.Equal(enc, data) {
				t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
			}
		}
	})
}
