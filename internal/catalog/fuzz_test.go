package catalog

import (
	"bytes"
	"testing"
)

// FuzzDecodeJournal throws arbitrary bytes at the journal scanner and
// record decoder — the untrusted-input boundary of the catalog. The
// invariants: never panic, never allocate unboundedly, and for any
// input Open either succeeds (with the tail truncated to a valid
// prefix) or reports corruption of acknowledged history; a successful
// Open's surviving records re-encode into a journal that replays to
// the same state.
func FuzzDecodeJournal(f *testing.F) {
	// Seed with a real journal, its truncations, and point corruptions.
	store := &MemStore{}
	c, _ := Open(store)
	id, _ := c.AppendDumpSet(DumpSet{
		Engine: Logical, FSID: "vol0", Snap: "s", Level: 3,
		Date: 200, BaseDate: 100, Bytes: 2048, Units: 3,
		Media: []MediaRef{{Volume: "t0", Start: 7}},
	})
	_ = c.AppendFileIndex(id, []FileIndexEntry{{Path: "a/b", Ino: 9, Unit: 4}})
	_ = c.Expire(id, 300)
	_ = c.AppendMediaEvent(MediaEvent{Kind: MediaActivate, Volume: "t0", Pool: "main", Time: 250})
	_ = c.MarkDamaged(id, 260, "scrub: unreadable record")
	_ = c.MarkRepaired(id, 270, "scrub: rewrote from mirror")
	_ = c.AppendMediaEvent(MediaEvent{Kind: MediaQuarantine, Volume: "t0", Pool: "main", Time: 280})
	_ = c.CommitChunks(sampleChunkEntries("t0", 0))
	id2, _ := c.AppendDumpSet(DumpSet{Engine: Logical, FSID: "vol0", Snap: "s2",
		Date: 400, Bytes: 4096, Units: 1, Media: []MediaRef{{Volume: "t0"}}})
	_ = c.AppendManifest(id2, sampleManifest("t0", 0))
	_, _ = c.SweepChunks(nil)
	whole := append([]byte(nil), store.Buf...)
	f.Add(whole)
	f.Add(whole[:len(whole)/2])
	f.Add(whole[:len(whole)-3])
	mangled := append([]byte(nil), whole...)
	mangled[len(mangled)/3] ^= 0x40
	f.Add(mangled)
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x54, 0x41, 0x43, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// DecodeRecord on the raw bytes: error or record, never panic.
		if rec, err := DecodeRecord(data); err == nil {
			// A decodable payload must re-encode to the same bytes
			// (canonical encoding is what makes the journal replayable).
			var enc []byte
			switch r := rec.(type) {
			case DumpSet:
				enc = encodeDumpSet(&r)
			case fileIndexRecord:
				enc = encodeFileIndex(&r)
			case Expiry:
				enc = encodeExpiry(&r)
			case MediaEvent:
				enc = encodeMediaEvent(&r)
			case SessionCheckpoint:
				enc = encodeSessionCkpt(&r)
			case SetHealth:
				enc = encodeSetHealth(&r)
			case chunkIndexRecord:
				enc = encodeChunkIndex(&r)
			case chunkManifestRecord:
				enc = encodeChunkManifest(&r)
			case chunkEraseRecord:
				enc = encodeChunkErase(&r)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("decode/encode not canonical: %x -> %x", data, enc)
			}
		}

		// Open on the bytes as a journal.
		buf := append([]byte(nil), data...)
		store := &MemStore{Buf: buf}
		c, err := Open(store)
		if err != nil {
			return // corruption of an intact frame: a legal outcome
		}
		if int64(len(store.Buf))+c.TornBytes != int64(len(data)) {
			t.Fatalf("prefix %d + torn %d != input %d", len(store.Buf), c.TornBytes, len(data))
		}
		// The surviving prefix must replay cleanly and identically.
		c2, err := Open(&MemStore{Buf: store.Buf})
		if err != nil {
			t.Fatalf("valid prefix failed to replay: %v", err)
		}
		if c2.TornBytes != 0 {
			t.Fatalf("valid prefix reported torn bytes")
		}
		if len(c2.Sets()) != len(c.Sets()) {
			t.Fatalf("replay drift: %d vs %d sets", len(c2.Sets()), len(c.Sets()))
		}
	})
}
