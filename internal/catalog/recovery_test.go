package catalog

import (
	"fmt"
	"testing"
)

// buildJournal records n dump sets (with indexes and an expiry mixed
// in) and returns the journal bytes plus the byte offset where the
// final record's frame begins.
func buildJournal(t *testing.T, n int) (buf []byte, lastFrame int) {
	t.Helper()
	store := &MemStore{}
	c, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n-1; i++ {
		id, err := c.AppendDumpSet(sampleSet(Logical, "vol0", int32(i%10), int64(100*(i+1)), 0, 0, 0,
			MediaRef{Volume: fmt.Sprintf("t%d", i)}))
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := c.AppendFileIndex(id, []FileIndexEntry{{Path: fmt.Sprintf("f%d", i), Ino: uint32(i + 4), Unit: int64(i)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Expire(1, 999); err != nil {
		t.Fatal(err)
	}
	// Integrity records are acknowledged history too: damage, repair
	// and quarantine must replay like everything else.
	if err := c.MarkDamaged(2, 1000, "scrub: unreadable record"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkRepaired(2, 1001, "scrub: rewrote from mirror"); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkDamaged(3, 1002, "scrub: stream corrupt"); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendMediaEvent(MediaEvent{Kind: MediaQuarantine, Volume: "t2", Pool: "main", Time: 1003}); err != nil {
		t.Fatal(err)
	}
	// Chunk-layer records are acknowledged history too: index batches,
	// a manifest, and a sweep's erase record all sit mid-journal so the
	// every-byte corruption sweep covers kinds 7-9.
	if err := c.CommitChunks(sampleChunkEntries("t0", 11)); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendManifest(2, sampleManifest("t0", 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SweepChunks(nil); err != nil {
		t.Fatal(err)
	}
	lastFrame = len(store.Buf)
	if _, err := c.AppendDumpSet(sampleSet(Image, "vol0", -1, 5000, 0, 42, 0, MediaRef{Volume: "last"})); err != nil {
		t.Fatal(err)
	}
	return store.Buf, lastFrame
}

// TestRecoveryTruncatedTail is the satellite property test: a crash
// that tears the final record at ANY byte offset must lose only that
// record — every dump set whose append was acknowledged survives
// recovery intact.
func TestRecoveryTruncatedTail(t *testing.T) {
	const sets = 6
	buf, lastFrame := buildJournal(t, sets)

	for cut := lastFrame; cut < len(buf); cut++ {
		torn := make([]byte, cut)
		copy(torn, buf)
		store := &MemStore{Buf: torn}
		c, err := Open(store)
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		if got := len(c.Sets()); got != sets-1 {
			t.Fatalf("cut at %d: recovered %d sets, want %d", cut, got, sets-1)
		}
		if cut > lastFrame && c.TornBytes == 0 {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if int64(len(store.Buf)) != int64(lastFrame) {
			t.Fatalf("cut at %d: store not truncated to valid prefix (%d != %d)", cut, len(store.Buf), lastFrame)
		}
		// The catalog must accept new appends after recovery, and the
		// new set must get the torn set's never-acknowledged ID.
		id, err := c.AppendDumpSet(sampleSet(Logical, "vol0", 9, 6000, 0, 0, 0))
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if id != sets {
			t.Fatalf("cut at %d: post-recovery id = %d, want %d", cut, id, sets)
		}
		// And a second replay of the repaired journal is clean.
		c2, err := Open(&MemStore{Buf: store.Buf})
		if err != nil || c2.TornBytes != 0 {
			t.Fatalf("cut at %d: re-open after repair: %v (torn %d)", cut, err, c2.TornBytes)
		}
	}
}

// TestRecoveryCorruptTail flips each byte of the final record in turn
// (a misdirected write rather than a short one); the frame CRC or
// magic must reject the record, and everything before it survives.
func TestRecoveryCorruptTail(t *testing.T) {
	const sets = 6
	buf, lastFrame := buildJournal(t, sets)

	for off := lastFrame; off < len(buf); off++ {
		bad := make([]byte, len(buf))
		copy(bad, buf)
		bad[off] ^= 0xff
		store := &MemStore{Buf: bad}
		c, err := Open(store)
		if err != nil {
			t.Fatalf("corrupt at %d: recovery failed: %v", off, err)
		}
		if got := len(c.Sets()); got != sets-1 {
			t.Fatalf("corrupt at %d: recovered %d sets, want %d", off, got, sets-1)
		}
		if c.TornBytes == 0 {
			t.Fatalf("corrupt at %d: corruption not reported", off)
		}
		if int64(len(store.Buf)) != int64(lastFrame) {
			t.Fatalf("corrupt at %d: store not truncated to valid prefix", off)
		}
	}
}

// TestRecoveryMidJournalCorruption: an intact frame with a payload the
// decoder rejects is damage to acknowledged history, and Open must
// refuse rather than silently drop it.
func TestRecoveryMidJournalCorruption(t *testing.T) {
	store := &MemStore{}
	c, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDumpSet(sampleSet(Logical, "vol0", 0, 100, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	// Hand-frame an undecodable payload (unknown kind) with a valid CRC.
	store.Buf = append(store.Buf, frame([]byte{0xee, 1, 2, 3})...)
	if _, err := Open(&MemStore{Buf: store.Buf}); err == nil {
		t.Fatal("Open accepted an intact frame with a garbage payload")
	}

	// A frame that fails its CRC with intact frames beyond it is not a
	// torn tail either: truncating there would discard acknowledged
	// history, so Open must refuse. Flip one byte in every frame but
	// the last and demand ErrCorrupt each time.
	buf, lastFrame := buildJournal(t, 6)
	for off := 0; off < lastFrame; off++ {
		bad := make([]byte, len(buf))
		copy(bad, buf)
		bad[off] ^= 0xff
		if _, err := Open(&MemStore{Buf: bad}); err == nil {
			t.Fatalf("corrupt at %d: Open truncated away acknowledged history", off)
		}
	}
}

// TestRecoveryEmptyAndHeaderOnly covers the degenerate tails.
func TestRecoveryEmptyAndHeaderOnly(t *testing.T) {
	c, err := Open(&MemStore{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Sets()) != 0 || c.TornBytes != 0 {
		t.Fatal("empty journal misread")
	}
	// A journal holding just a few garbage bytes is all tail.
	store := &MemStore{Buf: []byte{1, 2, 3}}
	c, err = Open(store)
	if err != nil {
		t.Fatal(err)
	}
	if c.TornBytes != 3 || len(store.Buf) != 0 {
		t.Fatalf("garbage-only journal: torn %d, len %d", c.TornBytes, len(store.Buf))
	}
}
