// Package catalog is the durable memory of the backup system: a
// crash-safe, append-only journal recording every completed dump set —
// engine, snapshot, incremental level or base generation, the media
// volumes the stream landed on, byte counts, and a per-file seek index
// for logical dumps — plus media-lifecycle and expiry events. On top
// of the journal it answers the operational questions a tape library
// poses: what dump sets exist, which media hold them, what the
// dump-date history is, and (the restore planner) which minimal
// full+incremental chain recovers a volume or a single file at a
// target time.
//
// The journal is a sequence of CRC-framed records. Appends are
// acknowledged only after a durable sync, and recovery replays the
// journal tolerating a torn final record: a crash mid-append loses at
// most the record that was never acknowledged, never anything before
// it — the same contract the dump engines' checkpoint records make for
// tape streams.
package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
)

// Frame geometry: [magic u32][length u32][crc32 u32][payload].
const (
	frameMagic = 0x43415431 // "CAT1"
	frameHdr   = 12
	// MaxRecord bounds a single journal record; larger frames are
	// treated as corruption (a wild length field must not make
	// recovery allocate gigabytes).
	MaxRecord = 16 << 20
)

// ErrCorrupt reports a malformed frame before the journal's tail —
// recovery stops there and the catalog refuses records past it.
var ErrCorrupt = errors.New("catalog: corrupt journal record")

// CorruptError is the structured form of ErrCorrupt: it names the byte
// offset of the failing frame and the record kind byte of its payload,
// which is what a replica catch-up needs to diagnose where two
// journals diverge. errors.Is matches ErrCorrupt.
type CorruptError struct {
	// Offset is the byte offset in the journal where the bad frame (or
	// bad region) begins.
	Offset int64
	// Kind is the record kind byte of the failing payload, 0 when the
	// payload was empty or the region is not a decodable frame at all.
	Kind uint8
	// Err is the underlying decode failure, nil for framing-level
	// corruption (bad CRC / magic with intact history beyond it).
	Err error
}

func (e *CorruptError) Error() string {
	kind := "unframed bytes"
	if e.Kind != 0 {
		kind = fmt.Sprintf("record kind %d", e.Kind)
	}
	if e.Err != nil {
		return fmt.Sprintf("%v: %s at offset %d: %v", ErrCorrupt, kind, e.Offset, e.Err)
	}
	return fmt.Sprintf("%v: %s at offset %d", ErrCorrupt, kind, e.Offset)
}

// Is reports ErrCorrupt so existing errors.Is checks keep working.
func (e *CorruptError) Is(target error) bool { return target == ErrCorrupt }

// Unwrap exposes the underlying decode failure.
func (e *CorruptError) Unwrap() error { return e.Err }

// Store is the byte-level durability the journal needs. Appends must
// be durable when they return; Truncate discards a torn tail so new
// appends never interleave with garbage.
type Store interface {
	// ReadAll returns the journal's current contents.
	ReadAll() ([]byte, error)
	// Append durably appends p.
	Append(p []byte) error
	// Truncate durably shortens the journal to n bytes.
	Truncate(n int64) error
}

// MemStore is an in-memory Store for tests, simulation and
// crash-injection (its buffer can be truncated or corrupted at any
// byte to model a torn append).
type MemStore struct {
	Buf []byte
}

// ReadAll implements Store.
func (m *MemStore) ReadAll() ([]byte, error) { return m.Buf, nil }

// Append implements Store.
func (m *MemStore) Append(p []byte) error {
	m.Buf = append(m.Buf, p...)
	return nil
}

// Truncate implements Store.
func (m *MemStore) Truncate(n int64) error {
	if n < 0 || n > int64(len(m.Buf)) {
		return fmt.Errorf("catalog: truncate %d of %d", n, len(m.Buf))
	}
	m.Buf = m.Buf[:n]
	return nil
}

// FileStore is a file-backed Store; every Append is fsynced before it
// returns, which is what lets Open promise that acknowledged records
// survive a crash.
type FileStore struct {
	path string
	f    *os.File
}

// OpenFileStore opens (creating if absent) the journal file at path.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0644)
	if err != nil {
		return nil, err
	}
	return &FileStore{path: path, f: f}, nil
}

// ReadAll implements Store.
func (s *FileStore) ReadAll() ([]byte, error) { return os.ReadFile(s.path) }

// Append implements Store.
func (s *FileStore) Append(p []byte) error {
	if _, err := s.f.Seek(0, os.SEEK_END); err != nil {
		return err
	}
	if _, err := s.f.Write(p); err != nil {
		return err
	}
	return s.f.Sync()
}

// Truncate implements Store.
func (s *FileStore) Truncate(n int64) error {
	if err := s.f.Truncate(n); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close closes the underlying file.
func (s *FileStore) Close() error { return s.f.Close() }

// frame wraps payload in the journal framing.
func frame(payload []byte) []byte {
	buf := make([]byte, frameHdr+len(payload))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], frameMagic)
	le.PutUint32(buf[4:], uint32(len(payload)))
	le.PutUint32(buf[8:], crc32.ChecksumIEEE(payload))
	copy(buf[frameHdr:], payload)
	return buf
}

// ScanFrames walks buf frame by frame, calling visit (when non-nil)
// with each intact frame's byte offset and payload. It returns the
// byte length of the valid prefix: everything past it is a torn or
// corrupt tail (at most one acknowledged-record boundary is ever lost,
// because appends are atomic-at-sync). A frame that fails its magic,
// length bound, or CRC ends the scan — the journal is append-only, so
// nothing meaningful can follow a bad frame. This is the framing-level
// check only (no payload decoding); the replication layer uses it to
// validate journal bytes in flight during catch-up.
func ScanFrames(buf []byte, visit func(off int64, payload []byte) error) (int64, error) {
	le := binary.LittleEndian
	off := 0
	for off+frameHdr <= len(buf) {
		if le.Uint32(buf[off:]) != frameMagic {
			break
		}
		n := int(le.Uint32(buf[off+4:]))
		if n > MaxRecord || off+frameHdr+n > len(buf) {
			break
		}
		payload := buf[off+frameHdr : off+frameHdr+n]
		if crc32.ChecksumIEEE(payload) != le.Uint32(buf[off+8:]) {
			break
		}
		if visit != nil {
			if err := visit(int64(off), payload); err != nil {
				return int64(off), err
			}
		}
		off += frameHdr + n
	}
	return int64(off), nil
}

// intactFrameAfter reports whether an intact frame starts anywhere in
// buf at or past from. A torn append leaves only the torn frame after
// the valid prefix, so a later intact frame means the bad region is
// mid-journal corruption of acknowledged history, not a crash tail.
func intactFrameAfter(buf []byte, from int64) bool {
	le := binary.LittleEndian
	for off := int(from); off+frameHdr <= len(buf); off++ {
		if le.Uint32(buf[off:]) != frameMagic {
			continue
		}
		n := int(le.Uint32(buf[off+4:]))
		if n > MaxRecord || off+frameHdr+n > len(buf) {
			continue
		}
		if crc32.ChecksumIEEE(buf[off+frameHdr:off+frameHdr+n]) == le.Uint32(buf[off+8:]) {
			return true
		}
	}
	return false
}
