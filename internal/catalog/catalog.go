package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/chunk"
	"repro/internal/logical"
	"repro/internal/obs"
)

// Engine identifies which dump engine produced a set.
type Engine uint8

const (
	// Logical is the file-based BSD-style dump (internal/logical).
	Logical Engine = 1
	// Image is the physical block-image dump (internal/physical).
	Image Engine = 2
)

func (e Engine) String() string {
	switch e {
	case Logical:
		return "logical"
	case Image:
		return "image"
	}
	return fmt.Sprintf("engine(%d)", uint8(e))
}

// MediaRef names one media volume a dump set's stream occupies, with
// the raw record index (tape) or byte offset (stream file) where the
// set's data begins on that volume — everything the planner needs to
// mount and position the media without operator input.
type MediaRef struct {
	Volume string
	Start  int64
}

// DumpSet is the catalog's unit of bookkeeping: one completed dump.
type DumpSet struct {
	// ID is the journal-assigned sequence number, 1-based. IDs order
	// sets in completion order, which for one fsid is also date order.
	ID     uint64
	Engine Engine
	// FSID names the filesystem (the dump-date key for logical sets).
	FSID string
	// Snap is the snapshot the dump was taken from.
	Snap string
	// Level is the incremental level for logical sets (0-9); -1 for
	// image sets, whose incrementality is the Gen/BaseGen pair.
	Level int32
	// Date is the dump date (filesystem clock); BaseDate is the base
	// the incremental was taken against (0 = full).
	Date, BaseDate int64
	// Gen/BaseGen are the snapshot generations of an image set
	// (BaseGen 0 = full); NBlocks is the source volume geometry, so a
	// restore can size its target without mounting media.
	Gen, BaseGen, NBlocks uint64
	// Bytes is the stream length; Units counts files (logical) or
	// blocks (image) dumped.
	Bytes, Units int64
	// Resumed marks a set completed across a checkpoint resume; its
	// stream spans the volumes of more than one attempt.
	Resumed bool
	// Media lists the volumes holding the stream, in stream order.
	Media []MediaRef
}

// Full reports whether the set needs no base.
func (ds *DumpSet) Full() bool {
	if ds.Engine == Image {
		return ds.BaseGen == 0
	}
	return ds.BaseDate == 0
}

// FileIndexEntry locates one file inside a logical dump stream: the
// stream position (in 1 KB dump units) where the file's header begins.
// The planner uses presence — which chain members contain a path — and
// a seek-capable source can use Unit to space directly to the file.
type FileIndexEntry struct {
	Path string
	Ino  uint32
	Unit int64
}

// MediaEventKind enumerates media-lifecycle transitions.
type MediaEventKind uint8

const (
	// MediaRegister introduces a volume into the pool (scratch).
	MediaRegister MediaEventKind = 1
	// MediaActivate marks a volume holding live dump data.
	MediaActivate MediaEventKind = 2
	// MediaReclaim returns an expired volume to scratch (erased).
	MediaReclaim MediaEventKind = 3
	// MediaQuarantine freezes a volume the scrubber found damaged
	// beyond repair: never erased, never rewritten, held only so its
	// still-readable sets stay available as a last resort.
	MediaQuarantine MediaEventKind = 4
)

func (k MediaEventKind) String() string {
	switch k {
	case MediaRegister:
		return "register"
	case MediaActivate:
		return "activate"
	case MediaReclaim:
		return "reclaim"
	case MediaQuarantine:
		return "quarantine"
	}
	return fmt.Sprintf("media-event(%d)", uint8(k))
}

// MediaEvent is one lifecycle transition of a media volume.
type MediaEvent struct {
	Kind   MediaEventKind
	Volume string
	Pool   string
	Time   int64
}

// Expiry marks a dump set expired by retention.
type Expiry struct {
	SetID uint64
	Time  int64
}

// SetHealthState is a dump set's integrity verdict.
type SetHealthState uint8

const (
	// HealthDamaged marks a set whose media the scrubber found corrupt
	// and could not repair: the restore planner routes around it.
	HealthDamaged SetHealthState = 1
	// HealthRepaired marks a set whose damaged records were rewritten
	// in place from a replica copy and re-verified clean.
	HealthRepaired SetHealthState = 2
)

func (s SetHealthState) String() string {
	switch s {
	case HealthDamaged:
		return "damaged"
	case HealthRepaired:
		return "repaired"
	}
	return fmt.Sprintf("health(%d)", uint8(s))
}

// SetHealth is one integrity verdict on a dump set, journaled by the
// scrubber. The latest record for a set wins, so a repair after a
// damage mark returns the set to service.
type SetHealth struct {
	SetID  uint64
	State  SetHealthState
	Time   int64
	Reason string
}

// SessionCheckpoint records the replicated durable progress of one
// remote push stream: records 1..Seq of (Session, Stream) are on the
// live tape host's media AND this fact has reached a journal quorum.
// It is what lets a standby host, after failover, recognise a stream
// it never served and direct the client to resume on a fresh stream
// from its last replicated-acknowledged checkpoint instead of
// restarting the dump.
type SessionCheckpoint struct {
	Session uint64
	Stream  int32
	Seq     uint64
	Time    int64
}

// Record is any journal payload; exposed so the fuzzer and tools can
// decode frames generically.
type Record interface{ isRecord() }

type fileIndexRecord struct {
	SetID   uint64
	Entries []FileIndexEntry
}

func (DumpSet) isRecord()           {}
func (fileIndexRecord) isRecord()   {}
func (Expiry) isRecord()            {}
func (MediaEvent) isRecord()        {}
func (SessionCheckpoint) isRecord() {}
func (SetHealth) isRecord()         {}

// Payload kinds.
const (
	kindDumpSet     = 1
	kindFileIndex   = 2
	kindExpiry      = 3
	kindMedia       = 4
	kindSessionCkpt = 5
	kindSetHealth   = 6
)

// Catalog is the replayed journal state plus the append side.
type Catalog struct {
	store Store
	next  uint64 // next DumpSet ID

	sets        []DumpSet
	byID        map[uint64]int
	index       map[uint64][]FileIndexEntry
	expired     map[uint64]int64
	events      []MediaEvent
	progress    map[streamKey]uint64
	health      map[uint64]SetHealth
	quarantined map[string]bool

	// Chunk-layer state (see chunk.go): the SHA-256 chunk index and
	// per-set manifests, plus stored/dead byte accounting.
	chunks      map[chunk.Hash]chunk.Entry
	manifests   map[uint64]chunk.Manifest
	chunkStored int64
	chunkDead   int64

	// TornBytes is how many trailing journal bytes recovery discarded
	// as a torn or corrupt final record (0 = clean open).
	TornBytes int64

	appends int64 // journal records appended by this Catalog
}

// Open replays the journal in store and returns the catalog positioned
// to append. A torn or corrupt tail is truncated away: every record
// whose Append call returned survives; the one a crash interrupted
// does not, and was never acknowledged.
func Open(store Store) (*Catalog, error) {
	buf, err := store.ReadAll()
	if err != nil {
		return nil, err
	}
	c := &Catalog{
		store:       store,
		next:        1,
		byID:        make(map[uint64]int),
		index:       make(map[uint64][]FileIndexEntry),
		expired:     make(map[uint64]int64),
		progress:    make(map[streamKey]uint64),
		health:      make(map[uint64]SetHealth),
		quarantined: make(map[string]bool),
		chunks:      make(map[chunk.Hash]chunk.Entry),
		manifests:   make(map[uint64]chunk.Manifest),
	}
	valid, err := ScanFrames(buf, func(off int64, p []byte) error {
		rec, err := DecodeRecord(p)
		if err != nil {
			// An intact frame holding an undecodable payload is
			// corruption, not a torn tail; surface it with the frame's
			// offset and kind byte — replica catch-up diagnostics need
			// the position — rather than silently dropping acknowledged
			// history.
			var kind uint8
			if len(p) > 0 {
				kind = p[0]
			}
			return &CorruptError{Offset: off, Kind: kind, Err: err}
		}
		c.apply(rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if valid < int64(len(buf)) {
		c.TornBytes = int64(len(buf)) - valid
		// A crash tears at most the single frame whose Append never
		// returned, and that frame is the journal's last: nothing
		// intact can follow it. A bad region bigger than one record,
		// or one with intact frames beyond it, is mid-journal
		// corruption of acknowledged history — refuse rather than
		// silently truncate it away.
		if c.TornBytes > frameHdr+MaxRecord || intactFrameAfter(buf, valid) {
			return nil, &CorruptError{Offset: valid,
				Err: fmt.Errorf("%d bad bytes before intact records", c.TornBytes)}
		}
		if err := store.Truncate(valid); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// apply folds one decoded record into the state.
func (c *Catalog) apply(rec Record) {
	switch r := rec.(type) {
	case DumpSet:
		c.byID[r.ID] = len(c.sets)
		c.sets = append(c.sets, r)
		if r.ID >= c.next {
			c.next = r.ID + 1
		}
	case fileIndexRecord:
		c.index[r.SetID] = r.Entries
	case Expiry:
		c.expired[r.SetID] = r.Time
	case MediaEvent:
		c.events = append(c.events, r)
		if r.Kind == MediaQuarantine {
			c.quarantined[r.Volume] = true
		}
	case SetHealth:
		c.health[r.SetID] = r
	case SessionCheckpoint:
		k := streamKey{session: r.Session, stream: int(r.Stream)}
		if r.Seq > c.progress[k] {
			c.progress[k] = r.Seq
		}
	default:
		c.applyChunk(rec)
	}
}

// streamKey identifies one remote push stream.
type streamKey struct {
	session uint64
	stream  int
}

// append frames, persists and applies one record.
func (c *Catalog) append(rec Record, payload []byte) error {
	if err := c.store.Append(frame(payload)); err != nil {
		return err
	}
	c.appends++
	c.apply(rec)
	return nil
}

// RegisterMetrics installs pull collectors for the catalog: journal
// appends, torn-tail recoveries, and the live/total dump-set gauges.
func (c *Catalog) RegisterMetrics(r *obs.Registry) {
	r.RegisterFunc("catalog_appends_total", obs.KindCounter, nil, func() float64 {
		return float64(c.appends)
	})
	r.RegisterFunc("catalog_torn_bytes", obs.KindGauge, nil, func() float64 {
		return float64(c.TornBytes)
	})
	r.RegisterFunc("catalog_recoveries_total", obs.KindCounter, nil, func() float64 {
		if c.TornBytes > 0 {
			return 1
		}
		return 0
	})
	r.RegisterFunc("catalog_sets", obs.KindGauge, nil, func() float64 {
		return float64(len(c.sets))
	})
	r.RegisterFunc("catalog_live_sets", obs.KindGauge, nil, func() float64 {
		return float64(len(c.Live()))
	})
	r.RegisterFunc("catalog_damaged_sets", obs.KindGauge, nil, func() float64 {
		return float64(len(c.DamagedSets()))
	})
}

// AppendDumpSet records a completed dump set, assigning and returning
// its ID. The record is durable when AppendDumpSet returns.
func (c *Catalog) AppendDumpSet(ds DumpSet) (uint64, error) {
	ds.ID = c.next
	if err := c.append(ds, encodeDumpSet(&ds)); err != nil {
		return 0, err
	}
	return ds.ID, nil
}

// AppendFileIndex attaches a per-file seek index to a recorded set.
func (c *Catalog) AppendFileIndex(setID uint64, entries []FileIndexEntry) error {
	if _, ok := c.byID[setID]; !ok {
		return fmt.Errorf("catalog: file index for unknown set %d", setID)
	}
	r := fileIndexRecord{SetID: setID, Entries: entries}
	return c.append(r, encodeFileIndex(&r))
}

// Expire marks a dump set expired at now. Idempotent.
func (c *Catalog) Expire(setID uint64, now int64) error {
	if _, ok := c.byID[setID]; !ok {
		return fmt.Errorf("catalog: expire unknown set %d", setID)
	}
	if _, done := c.expired[setID]; done {
		return nil
	}
	r := Expiry{SetID: setID, Time: now}
	return c.append(r, encodeExpiry(&r))
}

// AppendMediaEvent records a media-lifecycle transition.
func (c *Catalog) AppendMediaEvent(ev MediaEvent) error {
	return c.append(ev, encodeMediaEvent(&ev))
}

// AppendSessionCheckpoint records replicated durable progress of a
// remote push stream. When the catalog's store is a replication group,
// the record — and therefore the checkpoint it certifies — is durable
// on a quorum before this returns; that is the contract that upgrades
// dumpfmt.Syncer's "host-acked" to "replicated".
func (c *Catalog) AppendSessionCheckpoint(sc SessionCheckpoint) error {
	return c.append(sc, encodeSessionCkpt(&sc))
}

// MarkDamaged journals a damaged verdict on a dump set — the scrubber
// found corruption it could not repair. Idempotent while the set stays
// damaged; a later MarkRepaired supersedes it.
func (c *Catalog) MarkDamaged(setID uint64, now int64, reason string) error {
	if _, ok := c.byID[setID]; !ok {
		return fmt.Errorf("catalog: mark unknown set %d damaged", setID)
	}
	if h, ok := c.health[setID]; ok && h.State == HealthDamaged {
		return nil
	}
	r := SetHealth{SetID: setID, State: HealthDamaged, Time: now, Reason: reason}
	return c.append(r, encodeSetHealth(&r))
}

// MarkRepaired journals a repaired verdict: the set's media was
// rewritten from a replica copy and re-verified, returning it to the
// planner's eligible pool.
func (c *Catalog) MarkRepaired(setID uint64, now int64, reason string) error {
	if _, ok := c.byID[setID]; !ok {
		return fmt.Errorf("catalog: mark unknown set %d repaired", setID)
	}
	r := SetHealth{SetID: setID, State: HealthRepaired, Time: now, Reason: reason}
	return c.append(r, encodeSetHealth(&r))
}

// Damaged reports whether a set's latest health verdict is damaged,
// and why.
func (c *Catalog) Damaged(setID uint64) (string, bool) {
	h, ok := c.health[setID]
	if !ok || h.State != HealthDamaged {
		return "", false
	}
	return h.Reason, true
}

// Health returns a set's latest health verdict, if any was journaled.
func (c *Catalog) Health(setID uint64) (SetHealth, bool) {
	h, ok := c.health[setID]
	return h, ok
}

// DamagedSets returns the IDs currently marked damaged, in completion
// order.
func (c *Catalog) DamagedSets() []uint64 {
	var out []uint64
	for _, ds := range c.sets {
		if _, bad := c.Damaged(ds.ID); bad {
			out = append(out, ds.ID)
		}
	}
	return out
}

// VolumeQuarantined reports whether a MediaQuarantine event has been
// journaled for the volume. Quarantine is terminal: the pool never
// erases or reuses the volume.
func (c *Catalog) VolumeQuarantined(label string) bool {
	return c.quarantined[label]
}

// HealthLabel renders a set's operator-facing health: "damaged" when
// marked so, "quarantined-media" when any of its volumes is
// quarantined, otherwise "ok".
func (c *Catalog) HealthLabel(setID uint64) string {
	if _, bad := c.Damaged(setID); bad {
		return "damaged"
	}
	if ds, ok := c.Set(setID); ok {
		for _, m := range ds.Media {
			if c.quarantined[m.Volume] {
				return "quarantined-media"
			}
		}
	}
	return "ok"
}

// SessionProgress returns the highest replicated-acknowledged record
// sequence recorded for one push stream, and whether any was.
func (c *Catalog) SessionProgress(session uint64, stream int) (uint64, bool) {
	seq, ok := c.progress[streamKey{session: session, stream: stream}]
	return seq, ok
}

// Sets returns every recorded dump set, in completion order.
func (c *Catalog) Sets() []DumpSet {
	out := make([]DumpSet, len(c.sets))
	copy(out, c.sets)
	return out
}

// Set returns the dump set with the given ID.
func (c *Catalog) Set(id uint64) (DumpSet, bool) {
	i, ok := c.byID[id]
	if !ok {
		return DumpSet{}, false
	}
	return c.sets[i], true
}

// Expired reports whether a set has been expired, and when.
func (c *Catalog) Expired(id uint64) (int64, bool) {
	t, ok := c.expired[id]
	return t, ok
}

// Live returns the unexpired dump sets, in completion order.
func (c *Catalog) Live() []DumpSet {
	var out []DumpSet
	for _, ds := range c.sets {
		if _, dead := c.expired[ds.ID]; !dead {
			out = append(out, ds)
		}
	}
	return out
}

// FileIndex returns the per-file index recorded for a set (nil if
// none was recorded).
func (c *Catalog) FileIndex(setID uint64) []FileIndexEntry {
	return c.index[setID]
}

// MediaEvents returns the recorded media-lifecycle history.
func (c *Catalog) MediaEvents() []MediaEvent {
	out := make([]MediaEvent, len(c.events))
	copy(out, c.events)
	return out
}

// DumpDates reconstructs the logical dump-date history from the
// journal — the durable /etc/dumpdates the in-memory logical.DumpDates
// used to lose on process exit. Expired sets still count: expiry frees
// media, it does not rewrite incremental history.
func (c *Catalog) DumpDates() *logical.DumpDates {
	d := logical.NewDumpDates()
	for _, ds := range c.sets {
		if ds.Engine == Logical {
			d.Record(ds.FSID, int(ds.Level), ds.Date)
		}
	}
	return d
}

// FSIDs returns the filesystems with recorded sets, sorted.
func (c *Catalog) FSIDs() []string {
	seen := map[string]bool{}
	for _, ds := range c.sets {
		seen[ds.FSID] = true
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- payload encoding: [kind u8][version u8] then fixed LE fields and
// length-prefixed strings. Decoding is defensive throughout — journal
// bytes are untrusted input (see the fuzz test).

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("catalog: truncated record at %d", d.off)
	}
}
func (d *dec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > MaxRecord || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *dec) done() error {
	if d.err == nil && d.off != len(d.b) {
		return fmt.Errorf("catalog: %d trailing bytes in record", len(d.b)-d.off)
	}
	return d.err
}

func encodeDumpSet(ds *DumpSet) []byte {
	e := &enc{}
	e.u8(kindDumpSet)
	e.u8(1)
	e.u64(ds.ID)
	e.u8(uint8(ds.Engine))
	e.str(ds.FSID)
	e.str(ds.Snap)
	e.u32(uint32(ds.Level))
	e.i64(ds.Date)
	e.i64(ds.BaseDate)
	e.u64(ds.Gen)
	e.u64(ds.BaseGen)
	e.u64(ds.NBlocks)
	e.i64(ds.Bytes)
	e.i64(ds.Units)
	if ds.Resumed {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u32(uint32(len(ds.Media)))
	for _, m := range ds.Media {
		e.str(m.Volume)
		e.i64(m.Start)
	}
	return e.b
}

func encodeFileIndex(r *fileIndexRecord) []byte {
	e := &enc{}
	e.u8(kindFileIndex)
	e.u8(1)
	e.u64(r.SetID)
	e.u32(uint32(len(r.Entries)))
	for _, f := range r.Entries {
		e.str(f.Path)
		e.u32(f.Ino)
		e.i64(f.Unit)
	}
	return e.b
}

func encodeExpiry(r *Expiry) []byte {
	e := &enc{}
	e.u8(kindExpiry)
	e.u8(1)
	e.u64(r.SetID)
	e.i64(r.Time)
	return e.b
}

func encodeSessionCkpt(sc *SessionCheckpoint) []byte {
	e := &enc{}
	e.u8(kindSessionCkpt)
	e.u8(1)
	e.u64(sc.Session)
	e.u32(uint32(sc.Stream))
	e.u64(sc.Seq)
	e.i64(sc.Time)
	return e.b
}

func encodeSetHealth(r *SetHealth) []byte {
	e := &enc{}
	e.u8(kindSetHealth)
	e.u8(1)
	e.u64(r.SetID)
	e.u8(uint8(r.State))
	e.i64(r.Time)
	e.str(r.Reason)
	return e.b
}

func encodeMediaEvent(ev *MediaEvent) []byte {
	e := &enc{}
	e.u8(kindMedia)
	e.u8(1)
	e.u8(uint8(ev.Kind))
	e.str(ev.Volume)
	e.str(ev.Pool)
	e.i64(ev.Time)
	return e.b
}

// DecodeRecord parses one journal payload. It is the untrusted-input
// boundary of the catalog: arbitrary bytes must produce a record or an
// error, never a panic or an oversized allocation.
func DecodeRecord(p []byte) (Record, error) {
	d := &dec{b: p}
	kind := d.u8()
	ver := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if ver != 1 {
		return nil, fmt.Errorf("catalog: record version %d", ver)
	}
	switch kind {
	case kindDumpSet:
		var ds DumpSet
		ds.ID = d.u64()
		ds.Engine = Engine(d.u8())
		ds.FSID = d.str()
		ds.Snap = d.str()
		ds.Level = int32(d.u32())
		ds.Date = d.i64()
		ds.BaseDate = d.i64()
		ds.Gen = d.u64()
		ds.BaseGen = d.u64()
		ds.NBlocks = d.u64()
		ds.Bytes = d.i64()
		ds.Units = d.i64()
		ds.Resumed = d.u8() != 0
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || n > len(p) {
			return nil, fmt.Errorf("catalog: media count %d", n)
		}
		for i := 0; i < n; i++ {
			var m MediaRef
			m.Volume = d.str()
			m.Start = d.i64()
			if d.err != nil {
				return nil, d.err
			}
			ds.Media = append(ds.Media, m)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		if ds.ID == 0 {
			return nil, fmt.Errorf("catalog: dump set with id 0")
		}
		if ds.Engine != Logical && ds.Engine != Image {
			return nil, fmt.Errorf("catalog: unknown engine %d", ds.Engine)
		}
		return ds, nil
	case kindFileIndex:
		var r fileIndexRecord
		r.SetID = d.u64()
		n := int(d.u32())
		if d.err != nil {
			return nil, d.err
		}
		if n < 0 || n > len(p) {
			return nil, fmt.Errorf("catalog: index count %d", n)
		}
		for i := 0; i < n; i++ {
			var f FileIndexEntry
			f.Path = d.str()
			f.Ino = d.u32()
			f.Unit = d.i64()
			if d.err != nil {
				return nil, d.err
			}
			r.Entries = append(r.Entries, f)
		}
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	case kindExpiry:
		var r Expiry
		r.SetID = d.u64()
		r.Time = d.i64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return r, nil
	case kindSessionCkpt:
		var sc SessionCheckpoint
		sc.Session = d.u64()
		sc.Stream = int32(d.u32())
		sc.Seq = d.u64()
		sc.Time = d.i64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return sc, nil
	case kindMedia:
		var ev MediaEvent
		ev.Kind = MediaEventKind(d.u8())
		ev.Volume = d.str()
		ev.Pool = d.str()
		ev.Time = d.i64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return ev, nil
	case kindSetHealth:
		var r SetHealth
		r.SetID = d.u64()
		r.State = SetHealthState(d.u8())
		r.Time = d.i64()
		r.Reason = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		if r.SetID == 0 {
			return nil, fmt.Errorf("catalog: set-health record for id 0")
		}
		if r.State != HealthDamaged && r.State != HealthRepaired {
			return nil, fmt.Errorf("catalog: unknown health state %d", r.State)
		}
		return r, nil
	}
	return decodeChunkRecord(kind, d, p)
}
