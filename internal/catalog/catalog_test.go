package catalog

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/logical"
)

func sampleSet(engine Engine, fsid string, level int32, date, baseDate int64, gen, baseGen uint64, media ...MediaRef) DumpSet {
	return DumpSet{
		Engine:   engine,
		FSID:     fsid,
		Snap:     "snap",
		Level:    level,
		Date:     date,
		BaseDate: baseDate,
		Gen:      gen,
		BaseGen:  baseGen,
		NBlocks:  1000,
		Bytes:    4096,
		Units:    7,
		Media:    media,
	}
}

func TestJournalRoundTrip(t *testing.T) {
	store := &MemStore{}
	c, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	ds := sampleSet(Logical, "vol0", 0, 100, 0, 0, 0,
		MediaRef{Volume: "t0", Start: 0}, MediaRef{Volume: "t1", Start: 0})
	id, err := c.AppendDumpSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("first set id = %d, want 1", id)
	}
	idx := []FileIndexEntry{{Path: "a/b", Ino: 5, Unit: 12}, {Path: "c", Ino: 6, Unit: 40}}
	if err := c.AppendFileIndex(id, idx); err != nil {
		t.Fatal(err)
	}
	if err := c.AppendMediaEvent(MediaEvent{Kind: MediaRegister, Volume: "t0", Pool: "main", Time: 50}); err != nil {
		t.Fatal(err)
	}
	if err := c.Expire(id, 200); err != nil {
		t.Fatal(err)
	}
	// Idempotent expiry must not grow the journal.
	before := len(store.Buf)
	if err := c.Expire(id, 300); err != nil {
		t.Fatal(err)
	}
	if len(store.Buf) != before {
		t.Fatal("second Expire of same set grew the journal")
	}

	// Replay from the bytes.
	c2, err := Open(&MemStore{Buf: store.Buf})
	if err != nil {
		t.Fatal(err)
	}
	if c2.TornBytes != 0 {
		t.Fatalf("clean journal reported %d torn bytes", c2.TornBytes)
	}
	sets := c2.Sets()
	if len(sets) != 1 {
		t.Fatalf("replayed %d sets, want 1", len(sets))
	}
	got := sets[0]
	ds.ID = 1
	if !reflect.DeepEqual(got, ds) {
		t.Fatalf("replayed set = %+v, want %+v", got, ds)
	}
	if !reflect.DeepEqual(c2.FileIndex(1), idx) {
		t.Fatalf("replayed index = %+v", c2.FileIndex(1))
	}
	if tm, ok := c2.Expired(1); !ok || tm != 200 {
		t.Fatalf("replayed expiry = %d,%v", tm, ok)
	}
	ev := c2.MediaEvents()
	if len(ev) != 1 || ev[0].Volume != "t0" || ev[0].Kind != MediaRegister {
		t.Fatalf("replayed events = %+v", ev)
	}
	if got := c2.Live(); len(got) != 0 {
		t.Fatalf("expired set still live: %+v", got)
	}
	// New appends continue the ID sequence.
	id2, err := c2.AppendDumpSet(sampleSet(Image, "vol0", -1, 150, 0, 9, 0))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 2 {
		t.Fatalf("next id = %d, want 2", id2)
	}
}

func TestFileStorePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendDumpSet(sampleSet(Logical, "fs", 0, 10, 0, 0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	c2, err := Open(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Sets()) != 1 {
		t.Fatalf("file journal replayed %d sets", len(c2.Sets()))
	}
}

// TestDumpDatesRoundTrip is the satellite check: the dump-date history
// reconstructed from the journal matches the in-memory one the dumps
// maintained, entry for entry, across a save/load cycle.
func TestDumpDatesRoundTrip(t *testing.T) {
	store := &MemStore{}
	c, err := Open(store)
	if err != nil {
		t.Fatal(err)
	}
	type run struct {
		fsid  string
		level int32
		date  int64
	}
	runs := []run{
		{"vol0", 0, 100},
		{"vol0", 3, 200},
		{"vol0", 2, 300}, // clears level 3
		{"vol1", 0, 150},
		{"vol0", 5, 400},
	}
	live := logical.NewDumpDates()
	for _, r := range runs {
		if _, err := c.AppendDumpSet(sampleSet(Logical, r.fsid, r.level, r.date, 0, 0, 0)); err != nil {
			t.Fatal(err)
		}
		live.Record(r.fsid, int(r.level), r.date)
	}
	// An image set must not disturb logical history.
	if _, err := c.AppendDumpSet(sampleSet(Image, "vol0", -1, 999, 0, 4, 0)); err != nil {
		t.Fatal(err)
	}
	// Expiry frees media, not history.
	if err := c.Expire(1, 500); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(&MemStore{Buf: store.Buf})
	if err != nil {
		t.Fatal(err)
	}
	got := c2.DumpDates().Entries()
	want := live.Entries()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reconstructed dump dates = %+v, want %+v", got, want)
	}
	if base := c2.DumpDates().Base("vol0", 5); base != 300 {
		t.Fatalf("level-5 base = %d, want 300 (the level-2 date)", base)
	}
}

func TestPlanLogicalChain(t *testing.T) {
	c, _ := Open(&MemStore{})
	// Full at 100, level 3 at 200 (base 100), level 5 at 300 (base 200),
	// then level 2 at 400 (base 100) starting a new branch.
	mustAppend(t, c, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "a"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 3, 200, 100, 0, 0, MediaRef{Volume: "b"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 5, 300, 200, 0, 0, MediaRef{Volume: "c"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 2, 400, 100, 0, 0, MediaRef{Volume: "d"}))

	// Latest state: full + level 2.
	p, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 4}) {
		t.Fatalf("latest chain = %v, want [1 4]", ids)
	}
	if media := p.Media(); !reflect.DeepEqual(media, []string{"a", "d"}) {
		t.Fatalf("media = %v", media)
	}

	// At 300: full + 3 + 5.
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", At: 300})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2, 3}) {
		t.Fatalf("chain at 300 = %v, want [1 2 3]", ids)
	}

	// At 250: full + 3.
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", At: 250})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2}) {
		t.Fatalf("chain at 250 = %v, want [1 2]", ids)
	}

	// Before the full: no plan.
	if _, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", At: 50}); err == nil {
		t.Fatal("plan before any dump succeeded")
	}
	// Unknown filesystem: no plan.
	if _, err := c.Plan(PlanOptions{Engine: Logical, FSID: "nope"}); err == nil {
		t.Fatal("plan of unknown fsid succeeded")
	}
}

func TestPlanImageChain(t *testing.T) {
	c, _ := Open(&MemStore{})
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 100, 0, 4, 0))
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 200, 0, 9, 4))
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 300, 0, 15, 9))

	p, err := c.Plan(PlanOptions{Engine: Image, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2, 3}) {
		t.Fatalf("image chain = %v, want [1 2 3]", ids)
	}
	p, err = c.Plan(PlanOptions{Engine: Image, FSID: "vol0", At: 200})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2}) {
		t.Fatalf("image chain at 200 = %v, want [1 2]", ids)
	}
}

func TestPlanBrokenAndExpiredBase(t *testing.T) {
	c, _ := Open(&MemStore{})
	mustAppend(t, c, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0))
	mustAppend(t, c, sampleSet(Logical, "vol0", 5, 300, 200, 0, 0)) // base never recorded
	if _, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"}); err == nil {
		t.Fatal("plan with missing base succeeded")
	}

	c2, _ := Open(&MemStore{})
	mustAppend(t, c2, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0))
	mustAppend(t, c2, sampleSet(Logical, "vol0", 3, 200, 100, 0, 0))
	if err := c2.Expire(1, 500); err != nil {
		t.Fatal(err)
	}
	// The expired full is still needed by the live incremental.
	if _, err := c2.Plan(PlanOptions{Engine: Logical, FSID: "vol0"}); err == nil {
		t.Fatal("plan through expired base succeeded without IncludeExpired")
	}
	p, err := c2.Plan(PlanOptions{Engine: Logical, FSID: "vol0", IncludeExpired: true})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2}) {
		t.Fatalf("IncludeExpired chain = %v", ids)
	}
}

func TestPlanSingleFile(t *testing.T) {
	c, _ := Open(&MemStore{})
	id1 := mustAppend(t, c, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0))
	if err := c.AppendFileIndex(id1, []FileIndexEntry{{Path: "a", Ino: 4, Unit: 1}, {Path: "b", Ino: 5, Unit: 9}}); err != nil {
		t.Fatal(err)
	}
	id2 := mustAppend(t, c, sampleSet(Logical, "vol0", 3, 200, 100, 0, 0))
	if err := c.AppendFileIndex(id2, []FileIndexEntry{{Path: "b", Ino: 5, Unit: 1}}); err != nil {
		t.Fatal(err)
	}

	// b changed in the incremental: one step, the incremental.
	p, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", File: "/b"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{2}) {
		t.Fatalf("file plan for b = %v, want [2]", ids)
	}
	// a only exists in the full: one step, the full.
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", File: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1}) {
		t.Fatalf("file plan for a = %v, want [1]", ids)
	}
	// Unknown file: error.
	if _, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", File: "zzz"}); err == nil {
		t.Fatal("plan for unknown file succeeded")
	}
}

// TestPlanRoutesAroundDamage: when the newest chain passes through a
// damaged set, Plan must fall back to the newest chain that does not,
// and only refuse (with a typed error naming every blocked chain) when
// no undamaged chain exists.
func TestPlanRoutesAroundDamage(t *testing.T) {
	c, _ := Open(&MemStore{})
	// Two full+incremental generations of the same filesystem.
	mustAppend(t, c, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "a"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 3, 200, 100, 0, 0, MediaRef{Volume: "b"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 0, 300, 0, 0, 0, MediaRef{Volume: "c"}))
	mustAppend(t, c, sampleSet(Logical, "vol0", 3, 400, 300, 0, 0, MediaRef{Volume: "d"}))

	p, err := c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{3, 4}) {
		t.Fatalf("baseline plan = %v, want [3 4]", ids)
	}

	// Scrub condemns the newer full: the plan must route to the older
	// generation rather than fail.
	if err := c.MarkDamaged(3, 900, "scrub: unreadable record"); err != nil {
		t.Fatal(err)
	}
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{1, 2}) {
		t.Fatalf("routed plan = %v, want [1 2]", ids)
	}

	// Damage to a chain MEMBER (not the target) must also divert: kill
	// the older full too and demand the typed refusal.
	if err := c.MarkDamaged(1, 901, "scrub: stream corrupt"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"})
	var up *UnplannableError
	if !errors.As(err, &up) {
		t.Fatalf("want *UnplannableError, got %v", err)
	}
	if len(up.Blocked) == 0 {
		t.Fatal("UnplannableError names no blocked chains")
	}
	if !strings.Contains(err.Error(), "damaged") {
		t.Fatalf("error does not explain the damage: %v", err)
	}

	// The salvage escape hatch restores the newest chain as-is.
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0", IncludeDamaged: true})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{3, 4}) {
		t.Fatalf("IncludeDamaged plan = %v, want [3 4]", ids)
	}

	// Repair clears the block.
	if err := c.MarkRepaired(3, 950, "scrub: rewrote from mirror"); err != nil {
		t.Fatal(err)
	}
	p, err = c.Plan(PlanOptions{Engine: Logical, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{3, 4}) {
		t.Fatalf("post-repair plan = %v, want [3 4]", ids)
	}
}

// TestPlanDamagedBaseBlocksChain: damage mid-chain (the base, not the
// candidate target) diverts to an intact generation.
func TestPlanDamagedBaseBlocksChain(t *testing.T) {
	c, _ := Open(&MemStore{})
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 100, 0, 4, 0))
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 200, 0, 9, 4))
	mustAppend(t, c, sampleSet(Image, "vol0", -1, 300, 0, 15, 0)) // fresh full
	if err := c.MarkDamaged(1, 900, "scrub: unreadable record"); err != nil {
		t.Fatal(err)
	}
	// Newest candidate is 3 (a full): unaffected.
	p, err := c.Plan(PlanOptions{Engine: Image, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planIDs(p); !reflect.DeepEqual(ids, []uint64{3}) {
		t.Fatalf("plan = %v, want [3]", ids)
	}
	// Point-in-time 200 forces the 1→2 chain, whose base is damaged and
	// has no alternative: typed refusal.
	_, err = c.Plan(PlanOptions{Engine: Image, FSID: "vol0", At: 200})
	var up *UnplannableError
	if !errors.As(err, &up) {
		t.Fatalf("want *UnplannableError, got %v", err)
	}
}

// TestSetHealthJournal: damage/repair records replay across journal
// reopen, idempotently, and surface through the health accessors.
func TestSetHealthJournal(t *testing.T) {
	store := &MemStore{}
	c, _ := Open(store)
	id := mustAppend(t, c, sampleSet(Logical, "vol0", 0, 100, 0, 0, 0, MediaRef{Volume: "a"}))
	if err := c.MarkDamaged(99, 500, "nope"); err == nil {
		t.Fatal("MarkDamaged of unknown set succeeded")
	}
	if err := c.MarkDamaged(id, 500, "scrub: unreadable record"); err != nil {
		t.Fatal(err)
	}
	before := len(store.Buf)
	// Re-damaging a damaged set must not grow the journal.
	if err := c.MarkDamaged(id, 501, "again"); err != nil {
		t.Fatal(err)
	}
	if len(store.Buf) != before {
		t.Fatal("idempotent MarkDamaged appended a record")
	}
	if reason, bad := c.Damaged(id); !bad || !strings.Contains(reason, "unreadable") {
		t.Fatalf("Damaged = %q, %v", reason, bad)
	}
	if got := c.HealthLabel(id); got != "damaged" {
		t.Fatalf("HealthLabel = %q", got)
	}
	if err := c.AppendMediaEvent(MediaEvent{Kind: MediaQuarantine, Volume: "a", Pool: "p", Time: 502}); err != nil {
		t.Fatal(err)
	}
	if !c.VolumeQuarantined("a") {
		t.Fatal("quarantine not recorded")
	}

	// Replay: state must survive verbatim.
	c2, err := Open(&MemStore{Buf: append([]byte(nil), store.Buf...)})
	if err != nil {
		t.Fatal(err)
	}
	if _, bad := c2.Damaged(id); !bad {
		t.Fatal("damage lost on replay")
	}
	if !c2.VolumeQuarantined("a") {
		t.Fatal("quarantine lost on replay")
	}
	if got := c2.HealthLabel(id); got != "quarantined-media" && got != "damaged" {
		t.Fatalf("replayed HealthLabel = %q", got)
	}

	// Repair flips it back and survives another replay.
	if err := c2.MarkRepaired(id, 600, "scrub: rewrote from mirror"); err != nil {
		t.Fatal(err)
	}
	if _, bad := c2.Damaged(id); bad {
		t.Fatal("still damaged after repair")
	}
}

func mustAppend(t *testing.T, c *Catalog, ds DumpSet) uint64 {
	t.Helper()
	id, err := c.AppendDumpSet(ds)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func planIDs(p *Plan) []uint64 {
	out := make([]uint64, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.ID
	}
	return out
}
