package raid

import (
	"context"

	"repro/internal/bufpool"
	"repro/internal/sim"
	"repro/internal/storage"
)

// readRunInto issues every member disk's sub-run for group data blocks
// [bno, bno+n) and de-stripes into buf, returning the latest member
// completion time without waiting for it. The data in buf is usable on
// return; the time is when it would be on a simulated clock. The
// caller decides whether to block (ReadRun) or pipeline (ReadRunAsync).
// A non-nil error means a member fault interrupted the fast path and
// the caller should recover through readRunDegraded.
func (g *Group) readRunInto(ctx context.Context, bno, n int, buf []byte) (sim.Time, error) {
	g.stripeReads.Add(1)
	nd := len(g.data)
	if nd == 1 {
		// Single data disk: the group run is the disk run; read
		// straight into the caller's buffer, no de-striping copy.
		return g.data[0].ReadRunAsync(ctx, bno, n, buf)
	}
	// Issue every member disk's sub-run concurrently: a striped read
	// costs max over disks, not sum.
	var latest sim.Time
	scratch := g.getScratch((n/nd + 1) * storage.BlockSize)
	defer g.putScratch(scratch)
	for k := 0; k < nd; k++ {
		// Blocks b in [bno, bno+n) with b % nd == k.
		first := bno + ((k-bno%nd)+nd)%nd
		if first >= bno+n {
			continue
		}
		count := (bno + n - first + nd - 1) / nd
		tmp := scratch[:count*storage.BlockSize]
		done, err := g.data[k].ReadRunAsync(ctx, first/nd, count, tmp)
		if err != nil {
			// A fault inside a member's sub-run: abandon the fast
			// path so the caller can recover block by block.
			return 0, err
		}
		if done > latest {
			latest = done
		}
		for i := 0; i < count; i++ {
			vb := first + i*nd
			copy(buf[(vb-bno)*storage.BlockSize:(vb-bno+1)*storage.BlockSize],
				tmp[i*storage.BlockSize:(i+1)*storage.BlockSize])
		}
	}
	return latest, nil
}

// Bulk-run I/O. A contiguous run of group data blocks maps to one
// contiguous sub-run per member disk, so a large run costs each disk
// at most one seek — which is how a streaming image dump keeps every
// spindle sequential even with several concurrent streams sharing the
// volume (paper §5.3: "physical dump/restore allows the disks to
// achieve their optimal throughput").
//
// De-striping scratch recycles through bufpool, so steady-state run
// traffic allocates nothing.

// ReadRun reads n consecutive group data blocks starting at bno into
// buf (n*BlockSize long). Degraded groups fall back to per-block
// reconstruction.
func (g *Group) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	if g.failed >= 0 {
		return g.readRunDegraded(ctx, bno, n, buf)
	}
	latest, err := g.readRunInto(ctx, bno, n, buf)
	if err != nil {
		// Recover block by block, so a single latent sector costs one
		// reconstruction, not the whole dump.
		return g.readRunDegraded(ctx, bno, n, buf)
	}
	if p := sim.ProcFrom(ctx); p != nil && latest > 0 {
		p.WaitUntil(latest)
	}
	return nil
}

// ReadRunAsync reads n consecutive group data blocks at bno into buf,
// returning the virtual completion time instead of waiting for it
// (storage.AsyncRunDevice semantics: data ready now, time charged
// later). Faults fall back to the synchronous degraded path, which
// completes before returning (time 0).
func (g *Group) ReadRunAsync(ctx context.Context, bno, n int, buf []byte) (sim.Time, error) {
	if g.failed >= 0 {
		return 0, g.readRunDegraded(ctx, bno, n, buf)
	}
	latest, err := g.readRunInto(ctx, bno, n, buf)
	if err != nil {
		return 0, g.readRunDegraded(ctx, bno, n, buf)
	}
	return latest, nil
}

// readRunDegraded is the per-block slow path behind ReadRun: each
// block goes through ReadBlock, which retries transient faults and
// reconstructs persistently unreadable blocks from parity.
func (g *Group) readRunDegraded(ctx context.Context, bno, n int, buf []byte) error {
	g.degradedRuns.Add(1)
	for i := 0; i < n; i++ {
		if err := g.ReadBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes n consecutive group data blocks starting at bno from
// buf. Full stripes compute parity from the new data alone (no
// read-modify-write); partial head/tail stripes fall back to
// WriteBlock.
func (g *Group) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	nd := len(g.data)
	if g.failed >= 0 || n < 2*nd {
		for i := 0; i < n; i++ {
			if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
				return err
			}
		}
		return nil
	}
	// Head: up to the first stripe boundary.
	head := 0
	if bno%nd != 0 {
		head = nd - bno%nd
	}
	fullStripes := (n - head) / nd
	tail := n - head - fullStripes*nd
	for i := 0; i < head; i++ {
		if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	if fullStripes > 0 {
		base := bno + head // stripe-aligned
		stripe0 := base / nd
		if nd == 1 {
			// One data disk: parity mirrors the data, no gather needed.
			data := buf[head*storage.BlockSize : (head+fullStripes)*storage.BlockSize]
			if err := g.data[0].WriteRun(ctx, stripe0, fullStripes, data); err != nil {
				return err
			}
			if err := g.parity.WriteRun(ctx, stripe0, fullStripes, data); err != nil {
				return err
			}
			g.chargeParity(stripe0 + fullStripes - 1)
		} else {
			// Per-disk contiguous writes plus a parity run.
			pbuf := bufpool.Get(fullStripes * storage.BlockSize)
			tbuf := bufpool.Get(fullStripes * storage.BlockSize)
			parity := *pbuf
			clear(parity)
			tmp := *tbuf
			for k := 0; k < nd; k++ {
				for s := 0; s < fullStripes; s++ {
					vb := base + s*nd + k
					blk := buf[(vb-bno)*storage.BlockSize : (vb-bno+1)*storage.BlockSize]
					copy(tmp[s*storage.BlockSize:], blk)
					xorInto(parity[s*storage.BlockSize:(s+1)*storage.BlockSize], blk)
				}
				if err := g.data[k].WriteRun(ctx, stripe0, fullStripes, tmp); err != nil {
					bufpool.Put(pbuf)
					bufpool.Put(tbuf)
					return err
				}
			}
			err := g.parity.WriteRun(ctx, stripe0, fullStripes, parity)
			bufpool.Put(pbuf)
			bufpool.Put(tbuf)
			if err != nil {
				return err
			}
			g.chargeParity(stripe0 + fullStripes - 1)
		}
	}
	for i := n - tail; i < n; i++ {
		if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRun reads n consecutive volume blocks starting at bno into buf,
// splitting at group boundaries.
func (v *Volume) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	for n > 0 {
		g, gb, err := v.locate(bno)
		if err != nil {
			return err
		}
		c := n
		if gb+c > g.NumBlocks() {
			c = g.NumBlocks() - gb
		}
		if err := g.ReadRun(ctx, gb, c, buf[:c*storage.BlockSize]); err != nil {
			return err
		}
		v.bytesRead.Add(int64(c) * storage.BlockSize)
		bno += c
		n -= c
		buf = buf[c*storage.BlockSize:]
	}
	return nil
}

// ReadRunAsync reads n consecutive volume blocks at bno into buf with
// storage.AsyncRunDevice semantics: buf is filled on return, and the
// returned time is when the last member disk's transfer completes on
// the virtual clock. Runs spanning group boundaries return the latest
// completion across groups.
func (v *Volume) ReadRunAsync(ctx context.Context, bno, n int, buf []byte) (sim.Time, error) {
	var latest sim.Time
	for n > 0 {
		g, gb, err := v.locate(bno)
		if err != nil {
			return 0, err
		}
		c := n
		if gb+c > g.NumBlocks() {
			c = g.NumBlocks() - gb
		}
		done, err := g.ReadRunAsync(ctx, gb, c, buf[:c*storage.BlockSize])
		if err != nil {
			return 0, err
		}
		if done > latest {
			latest = done
		}
		v.bytesRead.Add(int64(c) * storage.BlockSize)
		bno += c
		n -= c
		buf = buf[c*storage.BlockSize:]
	}
	return latest, nil
}

// WriteRun writes n consecutive volume blocks starting at bno from
// buf, splitting at group boundaries.
func (v *Volume) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	for n > 0 {
		g, gb, err := v.locate(bno)
		if err != nil {
			return err
		}
		c := n
		if gb+c > g.NumBlocks() {
			c = g.NumBlocks() - gb
		}
		if err := g.WriteRun(ctx, gb, c, buf[:c*storage.BlockSize]); err != nil {
			return err
		}
		v.bytesWritten.Add(int64(c) * storage.BlockSize)
		bno += c
		n -= c
		buf = buf[c*storage.BlockSize:]
	}
	return nil
}
