package raid

import (
	"context"

	"repro/internal/bufpool"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Bulk-run I/O. A contiguous run of group data blocks maps to one
// contiguous sub-run per member disk, so a large run costs each disk
// at most one seek — which is how a streaming image dump keeps every
// spindle sequential even with several concurrent streams sharing the
// volume (paper §5.3: "physical dump/restore allows the disks to
// achieve their optimal throughput").
//
// De-striping scratch recycles through bufpool, so steady-state run
// traffic allocates nothing.

// ReadRun reads n consecutive group data blocks starting at bno into
// buf (n*BlockSize long). Degraded groups fall back to per-block
// reconstruction.
func (g *Group) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	if g.failed >= 0 {
		return g.readRunDegraded(ctx, bno, n, buf)
	}
	g.stripeReads++
	nd := len(g.data)
	if nd == 1 {
		// Single data disk: the group run is the disk run; read
		// straight into the caller's buffer, no de-striping copy.
		done, err := g.data[0].ReadRunAsync(ctx, bno, n, buf)
		if err != nil {
			return g.readRunDegraded(ctx, bno, n, buf)
		}
		if p := sim.ProcFrom(ctx); p != nil && done > 0 {
			p.WaitUntil(done)
		}
		return nil
	}
	// Issue every member disk's sub-run concurrently and wait for the
	// last to finish: a striped read costs max over disks, not sum.
	var latest sim.Time
	scratch := bufpool.Get((n/nd + 1) * storage.BlockSize)
	defer bufpool.Put(scratch)
	for k := 0; k < nd; k++ {
		// Blocks b in [bno, bno+n) with b % nd == k.
		first := bno + ((k-bno%nd)+nd)%nd
		if first >= bno+n {
			continue
		}
		count := (bno + n - first + nd - 1) / nd
		tmp := (*scratch)[:count*storage.BlockSize]
		done, err := g.data[k].ReadRunAsync(ctx, first/nd, count, tmp)
		if err != nil {
			// A fault inside a member's sub-run: abandon the fast
			// path and recover block by block, so a single latent
			// sector costs one reconstruction, not the whole dump.
			return g.readRunDegraded(ctx, bno, n, buf)
		}
		if done > latest {
			latest = done
		}
		for i := 0; i < count; i++ {
			vb := first + i*nd
			copy(buf[(vb-bno)*storage.BlockSize:(vb-bno+1)*storage.BlockSize],
				tmp[i*storage.BlockSize:(i+1)*storage.BlockSize])
		}
	}
	if p := sim.ProcFrom(ctx); p != nil && latest > 0 {
		p.WaitUntil(latest)
	}
	return nil
}

// readRunDegraded is the per-block slow path behind ReadRun: each
// block goes through ReadBlock, which retries transient faults and
// reconstructs persistently unreadable blocks from parity.
func (g *Group) readRunDegraded(ctx context.Context, bno, n int, buf []byte) error {
	g.degradedRuns++
	for i := 0; i < n; i++ {
		if err := g.ReadBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes n consecutive group data blocks starting at bno from
// buf. Full stripes compute parity from the new data alone (no
// read-modify-write); partial head/tail stripes fall back to
// WriteBlock.
func (g *Group) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	nd := len(g.data)
	if g.failed >= 0 || n < 2*nd {
		for i := 0; i < n; i++ {
			if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
				return err
			}
		}
		return nil
	}
	// Head: up to the first stripe boundary.
	head := 0
	if bno%nd != 0 {
		head = nd - bno%nd
	}
	fullStripes := (n - head) / nd
	tail := n - head - fullStripes*nd
	for i := 0; i < head; i++ {
		if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	if fullStripes > 0 {
		base := bno + head // stripe-aligned
		stripe0 := base / nd
		if nd == 1 {
			// One data disk: parity mirrors the data, no gather needed.
			data := buf[head*storage.BlockSize : (head+fullStripes)*storage.BlockSize]
			if err := g.data[0].WriteRun(ctx, stripe0, fullStripes, data); err != nil {
				return err
			}
			if err := g.parity.WriteRun(ctx, stripe0, fullStripes, data); err != nil {
				return err
			}
			g.chargeParity(stripe0 + fullStripes - 1)
		} else {
			// Per-disk contiguous writes plus a parity run.
			pbuf := bufpool.Get(fullStripes * storage.BlockSize)
			tbuf := bufpool.Get(fullStripes * storage.BlockSize)
			parity := *pbuf
			clear(parity)
			tmp := *tbuf
			for k := 0; k < nd; k++ {
				for s := 0; s < fullStripes; s++ {
					vb := base + s*nd + k
					blk := buf[(vb-bno)*storage.BlockSize : (vb-bno+1)*storage.BlockSize]
					copy(tmp[s*storage.BlockSize:], blk)
					xorInto(parity[s*storage.BlockSize:(s+1)*storage.BlockSize], blk)
				}
				if err := g.data[k].WriteRun(ctx, stripe0, fullStripes, tmp); err != nil {
					bufpool.Put(pbuf)
					bufpool.Put(tbuf)
					return err
				}
			}
			err := g.parity.WriteRun(ctx, stripe0, fullStripes, parity)
			bufpool.Put(pbuf)
			bufpool.Put(tbuf)
			if err != nil {
				return err
			}
			g.chargeParity(stripe0 + fullStripes - 1)
		}
	}
	for i := n - tail; i < n; i++ {
		if err := g.WriteBlock(ctx, bno+i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRun reads n consecutive volume blocks starting at bno into buf,
// splitting at group boundaries.
func (v *Volume) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	for n > 0 {
		g, gb, err := v.locate(bno)
		if err != nil {
			return err
		}
		c := n
		if gb+c > g.NumBlocks() {
			c = g.NumBlocks() - gb
		}
		if err := g.ReadRun(ctx, gb, c, buf[:c*storage.BlockSize]); err != nil {
			return err
		}
		v.bytesRead += int64(c) * storage.BlockSize
		bno += c
		n -= c
		buf = buf[c*storage.BlockSize:]
	}
	return nil
}

// WriteRun writes n consecutive volume blocks starting at bno from
// buf, splitting at group boundaries.
func (v *Volume) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	for n > 0 {
		g, gb, err := v.locate(bno)
		if err != nil {
			return err
		}
		c := n
		if gb+c > g.NumBlocks() {
			c = g.NumBlocks() - gb
		}
		if err := g.WriteRun(ctx, gb, c, buf[:c*storage.BlockSize]); err != nil {
			return err
		}
		v.bytesWritten += int64(c) * storage.BlockSize
		bno += c
		n -= c
		buf = buf[c*storage.BlockSize:]
	}
	return nil
}
