package raid

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vdev"
)

func newTestGroup(t *testing.T, nData, blocksPerDisk int) *Group {
	t.Helper()
	var data []Disk
	for i := 0; i < nData; i++ {
		data = append(data, vdev.New(nil, "d", blocksPerDisk, vdev.DefaultParams()))
	}
	g, err := NewGroup(data, vdev.New(nil, "p", blocksPerDisk, vdev.DefaultParams()))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func block(seed int) []byte {
	b := make([]byte, storage.BlockSize)
	r := rand.New(rand.NewSource(int64(seed)))
	r.Read(b)
	return b
}

func TestGroupRoundTrip(t *testing.T) {
	ctx := context.Background()
	g := newTestGroup(t, 4, 16)
	if g.NumBlocks() != 64 {
		t.Fatalf("NumBlocks = %d, want 64", g.NumBlocks())
	}
	for bno := 0; bno < 64; bno++ {
		if err := g.WriteBlock(ctx, bno, block(bno)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, storage.BlockSize)
	for bno := 0; bno < 64; bno++ {
		if err := g.ReadBlock(ctx, bno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, block(bno)) {
			t.Fatalf("block %d mismatch", bno)
		}
	}
}

func TestParityIsExact(t *testing.T) {
	ctx := context.Background()
	g := newTestGroup(t, 3, 8)
	// Random writes, including overwrites.
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		bno := r.Intn(g.NumBlocks())
		if err := g.WriteBlock(ctx, bno, block(i)); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := g.VerifyParity(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("parity wrong for stripes at blocks %v", bad)
	}
}

func TestDegradedRead(t *testing.T) {
	ctx := context.Background()
	g := newTestGroup(t, 4, 8)
	for bno := 0; bno < g.NumBlocks(); bno++ {
		if err := g.WriteBlock(ctx, bno, block(bno)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.FailDisk(2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.BlockSize)
	for bno := 0; bno < g.NumBlocks(); bno++ {
		if err := g.ReadBlock(ctx, bno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, block(bno)) {
			t.Fatalf("degraded read of block %d mismatch", bno)
		}
	}
}

func TestDegradedWriteThenRead(t *testing.T) {
	ctx := context.Background()
	g := newTestGroup(t, 3, 8)
	for bno := 0; bno < g.NumBlocks(); bno++ {
		if err := g.WriteBlock(ctx, bno, block(bno)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.FailDisk(1); err != nil {
		t.Fatal(err)
	}
	// Overwrite blocks that live on the failed disk: parity must absorb them.
	for bno := 1; bno < g.NumBlocks(); bno += 3 { // disk = bno % 3 == 1
		if err := g.WriteBlock(ctx, bno, block(1000+bno)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, storage.BlockSize)
	for bno := 1; bno < g.NumBlocks(); bno += 3 {
		if err := g.ReadBlock(ctx, bno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, block(1000+bno)) {
			t.Fatalf("degraded write of block %d lost", bno)
		}
	}
}

func TestDoubleFailureRejected(t *testing.T) {
	g := newTestGroup(t, 4, 8)
	if err := g.FailDisk(0); err != nil {
		t.Fatal(err)
	}
	if err := g.FailDisk(1); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("second failure err = %v, want ErrDoubleFailure", err)
	}
}

func TestRebuild(t *testing.T) {
	ctx := context.Background()
	g := newTestGroup(t, 4, 8)
	for bno := 0; bno < g.NumBlocks(); bno++ {
		if err := g.WriteBlock(ctx, bno, block(bno)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	repl := vdev.New(nil, "repl", 8, vdev.DefaultParams())
	if err := g.Rebuild(ctx, repl); err != nil {
		t.Fatal(err)
	}
	// Healthy again: reads come from the replacement directly.
	buf := make([]byte, storage.BlockSize)
	for bno := 0; bno < g.NumBlocks(); bno++ {
		if err := g.ReadBlock(ctx, bno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, block(bno)) {
			t.Fatalf("post-rebuild read of block %d mismatch", bno)
		}
	}
	if bad, err := g.VerifyParity(ctx); err != nil || len(bad) != 0 {
		t.Fatalf("post-rebuild parity bad=%v err=%v", bad, err)
	}
	if err := g.Rebuild(ctx, repl); !errors.Is(err, ErrNoFailure) {
		t.Fatalf("rebuild without failure err = %v, want ErrNoFailure", err)
	}
}

func TestVolumeConcatenation(t *testing.T) {
	ctx := context.Background()
	g1 := newTestGroup(t, 2, 8) // 16 blocks
	g2 := newTestGroup(t, 3, 8) // 24 blocks
	v, err := NewVolume("vol", g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumBlocks() != 40 {
		t.Fatalf("NumBlocks = %d, want 40", v.NumBlocks())
	}
	for bno := 0; bno < 40; bno++ {
		if err := v.WriteBlock(ctx, bno, block(bno)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, storage.BlockSize)
	for bno := 0; bno < 40; bno++ {
		if err := v.ReadBlock(ctx, bno, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, block(bno)) {
			t.Fatalf("volume block %d mismatch", bno)
		}
	}
	// Blocks past the first group must land in the second group.
	gbuf := make([]byte, storage.BlockSize)
	if err := g2.ReadBlock(ctx, 0, gbuf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gbuf, block(16)) {
		t.Fatal("volume block 16 not at group 2 block 0")
	}
}

func TestVolumeBounds(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 1, DataDisksPerGroup: 2, BlocksPerDisk: 4, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.BlockSize)
	if err := v.ReadBlock(ctx, v.NumBlocks(), buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := v.WriteBlock(ctx, -1, buf); !errors.Is(err, storage.ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestBuildGeometry(t *testing.T) {
	v, err := Build(nil, "home", Config{Groups: 3, DataDisksPerGroup: 10, BlocksPerDisk: 64, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumBlocks() != 3*10*64 {
		t.Fatalf("NumBlocks = %d, want %d", v.NumBlocks(), 3*10*64)
	}
	if v.NumDisks() != 33 {
		t.Fatalf("NumDisks = %d, want 33 (incl. parity)", v.NumDisks())
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Groups: 0, DataDisksPerGroup: 1, BlocksPerDisk: 1},
		{Groups: 1, DataDisksPerGroup: 0, BlocksPerDisk: 1},
		{Groups: 1, DataDisksPerGroup: 1, BlocksPerDisk: 0},
	} {
		if _, err := Build(nil, "v", cfg); err == nil {
			t.Errorf("Build(%+v) succeeded, want error", cfg)
		}
	}
}

func TestAscendingScanIsSequentialPerDisk(t *testing.T) {
	// Reading the whole volume in ascending block order must keep each
	// member disk sequential: at most one seek per disk.
	env := sim.NewEnv()
	v, err := Build(env, "v", Config{Groups: 1, DataDisksPerGroup: 4, BlocksPerDisk: 32, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	env.Spawn("scan", func(p *sim.Proc) {
		ctx := sim.WithProc(context.Background(), p)
		buf := make([]byte, storage.BlockSize)
		for bno := 0; bno < v.NumBlocks(); bno++ {
			if err := v.ReadBlock(ctx, bno, buf); err != nil {
				t.Error(err)
				return
			}
		}
	})
	env.Run()
	for _, g := range v.Groups() {
		for i, d := range g.data {
			vd := d.(*vdev.Disk)
			_, _, seeks := vd.Stats()
			if seeks > 1 {
				t.Errorf("disk %d saw %d seeks during ascending scan, want <= 1", i, seeks)
			}
		}
	}
}

func TestVolumeTraffic(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 1, DataDisksPerGroup: 2, BlocksPerDisk: 8, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.BlockSize)
	for i := 0; i < 5; i++ {
		if err := v.WriteBlock(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := v.ReadBlock(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	r, w := v.Traffic()
	if r != 3*storage.BlockSize || w != 5*storage.BlockSize {
		t.Fatalf("traffic = (%d, %d), want (%d, %d)", r, w, 3*storage.BlockSize, 5*storage.BlockSize)
	}
}
