package raid

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/vdev"
)

func fillVolume(t *testing.T, v *Volume, seed int64) []byte {
	t.Helper()
	ctx := context.Background()
	all := make([]byte, v.NumBlocks()*storage.BlockSize)
	rand.New(rand.NewSource(seed)).Read(all)
	for b := 0; b < v.NumBlocks(); b++ {
		if err := v.WriteBlock(ctx, b, all[b*storage.BlockSize:(b+1)*storage.BlockSize]); err != nil {
			t.Fatal(err)
		}
	}
	return all
}

func TestReadRunMatchesPerBlock(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 2, DataDisksPerGroup: 3, BlocksPerDisk: 16, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	all := fillVolume(t, v, 71)
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		start := r.Intn(v.NumBlocks())
		n := r.Intn(v.NumBlocks()-start) + 1
		buf := make([]byte, n*storage.BlockSize)
		if err := v.ReadRun(ctx, start, n, buf); err != nil {
			t.Fatalf("ReadRun(%d, %d): %v", start, n, err)
		}
		if !bytes.Equal(buf, all[start*storage.BlockSize:(start+n)*storage.BlockSize]) {
			t.Fatalf("ReadRun(%d, %d) differs from per-block contents", start, n)
		}
	}
}

func TestWriteRunMatchesPerBlockAndParity(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 2, DataDisksPerGroup: 4, BlocksPerDisk: 32, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	fillVolume(t, v, 73)
	r := rand.New(rand.NewSource(74))
	for trial := 0; trial < 60; trial++ {
		start := r.Intn(v.NumBlocks())
		n := r.Intn(v.NumBlocks()-start) + 1
		if n > 80 {
			n = 80
		}
		data := make([]byte, n*storage.BlockSize)
		r.Read(data)
		if err := v.WriteRun(ctx, start, n, data); err != nil {
			t.Fatalf("WriteRun(%d, %d): %v", start, n, err)
		}
		buf := make([]byte, storage.BlockSize)
		for i := 0; i < n; i++ {
			if err := v.ReadBlock(ctx, start+i, buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf, data[i*storage.BlockSize:(i+1)*storage.BlockSize]) {
				t.Fatalf("block %d of run (%d, %d) wrong after WriteRun", i, start, n)
			}
		}
	}
	// Parity must be exact after the mixture of full-stripe and
	// per-block paths.
	for gi, g := range v.Groups() {
		bad, err := g.VerifyParity(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(bad) != 0 {
			t.Fatalf("group %d parity broken at %v after WriteRun mix", gi, bad)
		}
	}
}

func TestReadRunDegradedReconstructs(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 1, DataDisksPerGroup: 4, BlocksPerDisk: 16, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	all := fillVolume(t, v, 75)
	if err := v.Groups()[0].FailDisk(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, v.NumBlocks()*storage.BlockSize)
	if err := v.ReadRun(ctx, 0, v.NumBlocks(), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, all) {
		t.Fatal("degraded ReadRun returned wrong data")
	}
}

func TestRunsSpanGroupBoundaries(t *testing.T) {
	ctx := context.Background()
	v, err := Build(nil, "v", Config{Groups: 3, DataDisksPerGroup: 2, BlocksPerDisk: 8, DiskParams: vdev.DefaultParams()})
	if err != nil {
		t.Fatal(err)
	}
	// One run covering all three groups.
	data := make([]byte, v.NumBlocks()*storage.BlockSize)
	rand.New(rand.NewSource(76)).Read(data)
	if err := v.WriteRun(ctx, 0, v.NumBlocks(), data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := v.ReadRun(ctx, 0, v.NumBlocks(), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-group run corrupted")
	}
}
