package raid

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/vdev"
)

// Volume is a linear block address space made by concatenating RAID
// groups — the paper's "home" volume is 31 disks in 3 RAID groups, the
// "rlse" volume 22 disks in 2. It implements storage.Device, so the
// filesystem mounts directly on it, and adds the streaming and
// prefetch entry points that image dump and the buffer cache use.
type Volume struct {
	name   string
	groups []*Group
	starts []int // starting volume block of each group
	total  int

	// Traffic counters for the benchmark harness; atomic because
	// parallel dump shards stream through the volume concurrently.
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// NewVolume concatenates groups into one volume.
func NewVolume(name string, groups ...*Group) (*Volume, error) {
	if len(groups) == 0 {
		return nil, errors.New("raid: volume needs at least one group")
	}
	v := &Volume{name: name, groups: groups}
	for _, g := range groups {
		v.starts = append(v.starts, v.total)
		v.total += g.NumBlocks()
	}
	return v, nil
}

// Config describes a volume to build from scratch.
type Config struct {
	// Groups is the number of RAID groups.
	Groups int
	// DataDisksPerGroup is the number of data disks in each group
	// (parity disks are added on top).
	DataDisksPerGroup int
	// BlocksPerDisk is each disk's capacity.
	BlocksPerDisk int
	// DiskParams is the per-disk performance model.
	DiskParams vdev.Params
}

// Build creates the disks and groups for cfg on env (nil for untimed)
// and assembles them into a volume named name.
func Build(env *sim.Env, name string, cfg Config) (*Volume, error) {
	if cfg.Groups <= 0 || cfg.DataDisksPerGroup <= 0 || cfg.BlocksPerDisk <= 0 {
		return nil, fmt.Errorf("raid: bad volume config %+v", cfg)
	}
	var groups []*Group
	for gi := 0; gi < cfg.Groups; gi++ {
		var data []Disk
		for di := 0; di < cfg.DataDisksPerGroup; di++ {
			data = append(data, vdev.New(env, fmt.Sprintf("%s/g%d/d%d", name, gi, di), cfg.BlocksPerDisk, cfg.DiskParams))
		}
		parity := vdev.New(env, fmt.Sprintf("%s/g%d/parity", name, gi), cfg.BlocksPerDisk, cfg.DiskParams)
		g, err := NewGroup(data, parity)
		if err != nil {
			return nil, err
		}
		groups = append(groups, g)
	}
	return NewVolume(name, groups...)
}

// Name returns the volume name.
func (v *Volume) Name() string { return v.name }

// NumBlocks implements storage.Device.
func (v *Volume) NumBlocks() int { return v.total }

// Groups returns the volume's RAID groups, for failure-injection tests.
func (v *Volume) Groups() []*Group { return v.groups }

// Traffic returns cumulative bytes read from and written to the volume.
func (v *Volume) Traffic() (read, written int64) { return v.bytesRead.Load(), v.bytesWritten.Load() }

// SetRetryPolicy replaces the transient-fault retry policy on every
// group in the volume.
func (v *Volume) SetRetryPolicy(p storage.RetryPolicy) {
	for _, g := range v.groups {
		g.SetRetryPolicy(p)
	}
}

// RecoveryStats sums transient-fault retries and degraded-mode block
// reconstructions across the volume's groups.
func (v *Volume) RecoveryStats() (retries, reconstructs int) {
	for _, g := range v.groups {
		r, c := g.RecoveryStats()
		retries += r
		reconstructs += c
	}
	return retries, reconstructs
}

// RegisterMetrics installs pull collectors for the volume's traffic
// and recovery counters and registers every member disk that exposes
// metrics of its own. Idempotent per (registry, volume).
func (v *Volume) RegisterMetrics(r *obs.Registry) {
	l := obs.Labels{"vol": v.name}
	r.RegisterFunc("raid_read_bytes_total", obs.KindCounter, l, func() float64 {
		return float64(v.bytesRead.Load())
	})
	r.RegisterFunc("raid_written_bytes_total", obs.KindCounter, l, func() float64 {
		return float64(v.bytesWritten.Load())
	})
	r.RegisterFunc("raid_retries_total", obs.KindCounter, l, func() float64 {
		retries, _ := v.RecoveryStats()
		return float64(retries)
	})
	r.RegisterFunc("raid_reconstructs_total", obs.KindCounter, l, func() float64 {
		_, reconstructs := v.RecoveryStats()
		return float64(reconstructs)
	})
	r.RegisterFunc("raid_stripe_reads_total", obs.KindCounter, l, func() float64 {
		var n int64
		for _, g := range v.groups {
			n += g.stripeReads.Load()
		}
		return float64(n)
	})
	r.RegisterFunc("raid_degraded_runs_total", obs.KindCounter, l, func() float64 {
		var n int64
		for _, g := range v.groups {
			n += g.degradedRuns.Load()
		}
		return float64(n)
	})
	r.RegisterFunc("raid_disk_busy_seconds", obs.KindGauge, l, func() float64 {
		return v.DiskBusy().Seconds()
	})
	type registrar interface{ RegisterMetrics(*obs.Registry) }
	for _, g := range v.groups {
		for _, d := range g.data {
			if m, ok := d.(registrar); ok {
				m.RegisterMetrics(r)
			}
		}
		if m, ok := g.parity.(registrar); ok {
			m.RegisterMetrics(r)
		}
	}
}

// locate maps a volume block to (group, group-local block).
func (v *Volume) locate(bno int) (*Group, int, error) {
	if bno < 0 || bno >= v.total {
		return nil, 0, fmt.Errorf("%w: %d of %d", storage.ErrOutOfRange, bno, v.total)
	}
	// Linear scan: volumes have a handful of groups.
	for i := len(v.groups) - 1; i >= 0; i-- {
		if bno >= v.starts[i] {
			return v.groups[i], bno - v.starts[i], nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %d", storage.ErrOutOfRange, bno)
}

// ReadBlock implements storage.Device.
func (v *Volume) ReadBlock(ctx context.Context, bno int, buf []byte) error {
	g, gb, err := v.locate(bno)
	if err != nil {
		return err
	}
	if err := g.ReadBlock(ctx, gb, buf); err != nil {
		return err
	}
	v.bytesRead.Add(storage.BlockSize)
	return nil
}

// WriteBlock implements storage.Device.
func (v *Volume) WriteBlock(ctx context.Context, bno int, data []byte) error {
	g, gb, err := v.locate(bno)
	if err != nil {
		return err
	}
	if err := g.WriteBlock(ctx, gb, data); err != nil {
		return err
	}
	v.bytesWritten.Add(storage.BlockSize)
	return nil
}

// Prefetch charges read time for volume block bno without blocking the
// caller, warming the path for an upcoming demand read.
func (v *Volume) Prefetch(ctx context.Context, bno int) {
	g, gb, err := v.locate(bno)
	if err != nil || g.failed >= 0 {
		return
	}
	disk, dblock := g.locate(gb)
	g.data[disk].Prefetch(ctx, dblock)
	// Traffic is counted by the cache-warming read that follows a
	// prefetch, not here, so prefetched bytes are not double-counted.
}

// Flush blocks until every member disk's write-behind cache drains.
func (v *Volume) Flush(ctx context.Context) {
	for _, g := range v.groups {
		for _, d := range g.data {
			d.Flush(ctx)
		}
		g.parity.Flush(ctx)
	}
}

// DiskBusy sums the accumulated busy time across all member disks
// (data and parity), for utilization reporting.
func (v *Volume) DiskBusy() time.Duration {
	var total time.Duration
	for _, g := range v.groups {
		for _, d := range g.data {
			if s := d.Station(); s != nil {
				total += s.Busy()
			}
		}
		if s := g.parity.Station(); s != nil {
			total += s.Busy()
		}
	}
	return total
}

// NumDisks returns the total number of member disks including parity.
func (v *Volume) NumDisks() int {
	n := 0
	for _, g := range v.groups {
		n += len(g.data) + 1
	}
	return n
}
