// Package raid implements the software RAID-4 subsystem that WAFL sits
// on in the paper. A Volume is a concatenation of RAID groups, each of
// which stripes data blocks across N data disks and keeps real XOR
// parity on a dedicated parity disk.
//
// Image dump/restore reads and writes "directly through the internal
// software RAID subsystem" (paper §4.1), bypassing the filesystem, so
// this layer is a first-class code path of the reproduction: parity is
// computed for real, a failed disk can be read in degraded mode by
// XOR reconstruction, and a replacement disk can be rebuilt.
package raid

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Errors returned by the RAID layer.
var (
	ErrDoubleFailure = errors.New("raid: more than one failed disk in group")
	ErrNoFailure     = errors.New("raid: no failed disk to rebuild")
)

// Disk is the device interface a RAID group needs from its members:
// block and bulk-run I/O plus the prefetch hook used for streaming
// reads.
type Disk interface {
	storage.Device
	ReadRun(ctx context.Context, bno, n int, buf []byte) error
	ReadRunAsync(ctx context.Context, bno, n int, buf []byte) (sim.Time, error)
	WriteRun(ctx context.Context, bno, n int, buf []byte) error
	Prefetch(ctx context.Context, bno int)
	Flush(ctx context.Context)
	Station() *sim.Station
}

// Group is a RAID-4 group: len(data) data disks plus one parity disk,
// all of equal size. Data block b of the group lives on disk b % n at
// disk-block b / n, so an ascending scan of group blocks keeps every
// member disk sequential — the property that lets physical dump run at
// streaming rates.
type Group struct {
	data   []Disk
	parity Disk
	failed int // index into data of the failed disk, or -1

	// parityRecent ring-buffers the stripes whose parity write was
	// recently charged. Consecutive writes within a stripe coalesce
	// into one charged parity write; tracking several stripes keeps
	// the coalescing working when multiple streams interleave on the
	// group (otherwise the parity disk would be charged per block and
	// become a phantom bottleneck no real full-stripe writer sees).
	// parityMu guards it: parallel restore shards write through the
	// same group from separate goroutines.
	parityMu     sync.Mutex
	parityRecent [8]int
	parityNext   int

	// retry bounds recovery of transient member faults before the
	// group falls back to parity reconstruction. The counters are
	// atomic because parallel dump shards read through the same group
	// concurrently.
	retry        storage.RetryPolicy
	retries      atomic.Int64 // transient-fault retries performed
	reconstructs atomic.Int64 // single-block degraded reads served from parity

	stripeReads  atomic.Int64 // bulk ReadRun calls served on the striped fast path
	degradedRuns atomic.Int64 // runs that fell back to per-block degraded reads

	// scratch is a free list of de-striping buffers owned by the
	// group. Unlike a sync.Pool it survives GC, so steady-state run
	// reads allocate nothing, and it naturally scales to one buffer
	// per concurrent reader.
	scratchMu sync.Mutex
	scratch   [][]byte
}

// getScratch returns a buffer of at least size bytes from the group's
// free list, allocating only when every buffer is in use.
func (g *Group) getScratch(size int) []byte {
	g.scratchMu.Lock()
	for i := len(g.scratch) - 1; i >= 0; i-- {
		if cap(g.scratch[i]) >= size {
			s := g.scratch[i]
			g.scratch[i] = g.scratch[len(g.scratch)-1]
			g.scratch[len(g.scratch)-1] = nil
			g.scratch = g.scratch[:len(g.scratch)-1]
			g.scratchMu.Unlock()
			return s[:size]
		}
	}
	g.scratchMu.Unlock()
	return make([]byte, size)
}

// putScratch returns a buffer to the free list. The list is bounded
// by the number of concurrent readers, which is small.
func (g *Group) putScratch(s []byte) {
	g.scratchMu.Lock()
	if len(g.scratch) < 16 {
		g.scratch = append(g.scratch, s)
	}
	g.scratchMu.Unlock()
}

// NewGroup builds a RAID-4 group. All disks must have equal size.
func NewGroup(data []Disk, parity Disk) (*Group, error) {
	if len(data) == 0 {
		return nil, errors.New("raid: group needs at least one data disk")
	}
	n := data[0].NumBlocks()
	for i, d := range data {
		if d.NumBlocks() != n {
			return nil, fmt.Errorf("raid: data disk %d size %d != %d", i, d.NumBlocks(), n)
		}
	}
	if parity.NumBlocks() != n {
		return nil, fmt.Errorf("raid: parity disk size %d != %d", parity.NumBlocks(), n)
	}
	g := &Group{data: data, parity: parity, failed: -1, retry: storage.DefaultRetryPolicy()}
	for i := range g.parityRecent {
		g.parityRecent[i] = -1
	}
	return g, nil
}

// NumBlocks returns the group's data capacity in blocks.
func (g *Group) NumBlocks() int { return len(g.data) * g.data[0].NumBlocks() }

// Data returns the member data disks, for instrumentation.
func (g *Group) Data() []Disk { return g.data }

// Parity returns the parity disk, for instrumentation.
func (g *Group) Parity() Disk { return g.parity }

// locate maps a group data block to (disk index, disk block).
func (g *Group) locate(bno int) (disk, dblock int) {
	return bno % len(g.data), bno / len(g.data)
}

// FailDisk marks data disk i failed; subsequent reads reconstruct.
func (g *Group) FailDisk(i int) error {
	if i < 0 || i >= len(g.data) {
		return fmt.Errorf("raid: no data disk %d", i)
	}
	if g.failed != -1 {
		return ErrDoubleFailure
	}
	g.failed = i
	return nil
}

// ReadBlock reads group data block bno, reconstructing from parity if
// the owning disk has failed.
func (g *Group) ReadBlock(ctx context.Context, bno int, buf []byte) error {
	if bno < 0 || bno >= g.NumBlocks() {
		return fmt.Errorf("%w: %d of %d", storage.ErrOutOfRange, bno, g.NumBlocks())
	}
	disk, dblock := g.locate(bno)
	if disk != g.failed {
		return g.readMember(ctx, disk, dblock, buf)
	}
	return g.reconstruct(ctx, dblock, buf)
}

// SetRetryPolicy replaces the group's transient-fault retry policy.
func (g *Group) SetRetryPolicy(p storage.RetryPolicy) { g.retry = p }

// RecoveryStats returns how many transient-fault retries the group has
// performed and how many single-block reads it has served degraded
// (reconstructed from parity because the owning block was unreadable).
func (g *Group) RecoveryStats() (retries, reconstructs int) {
	return int(g.retries.Load()), int(g.reconstructs.Load())
}

// readRetry reads dblock of member disk d, retrying transient faults
// under the group's policy with backoff charged to the simulated
// clock. Persistent errors come back to the caller.
func (g *Group) readRetry(ctx context.Context, d Disk, dblock int, buf []byte) error {
	err := d.ReadBlock(ctx, dblock, buf)
	for attempt := 1; storage.IsTransient(err) && attempt <= g.retry.MaxRetries; attempt++ {
		g.retries.Add(1)
		g.retry.Charge(ctx, attempt)
		err = d.ReadBlock(ctx, dblock, buf)
	}
	return err
}

// readMember reads dblock of data disk i. A transient fault is
// retried; a persistent one (latent sector error) is served in
// degraded mode by reconstructing the block from the stripe's peers
// plus parity, without declaring the whole disk failed.
func (g *Group) readMember(ctx context.Context, i, dblock int, buf []byte) error {
	err := g.readRetry(ctx, g.data[i], dblock, buf)
	if err == nil {
		return nil
	}
	if rerr := g.reconstructSkip(ctx, i, dblock, buf); rerr != nil {
		return fmt.Errorf("raid: disk %d block %d unreadable (%w); reconstruction failed: %v", i, dblock, err, rerr)
	}
	g.reconstructs.Add(1)
	return nil
}

// reconstruct rebuilds the failed disk's block dblock into buf by
// XOR-ing the same stripe position on every surviving disk plus parity.
func (g *Group) reconstruct(ctx context.Context, dblock int, buf []byte) error {
	return g.reconstructSkip(ctx, g.failed, dblock, buf)
}

// reconstructSkip rebuilds disk skip's block dblock from the other
// members plus parity. It refuses when a different disk is already
// wholly failed (double failure). Peer reads retry transient faults
// but do not recurse into reconstruction: two bad blocks in one
// stripe are genuinely unrecoverable in RAID-4.
func (g *Group) reconstructSkip(ctx context.Context, skip, dblock int, buf []byte) error {
	if g.failed >= 0 && g.failed != skip {
		return ErrDoubleFailure
	}
	clear(buf)
	scratch := bufpool.Get(storage.BlockSize)
	defer bufpool.Put(scratch)
	tmp := *scratch
	for i, d := range g.data {
		if i == skip {
			continue
		}
		if err := g.readRetry(ctx, d, dblock, tmp); err != nil {
			return err
		}
		xorInto(buf, tmp)
	}
	if err := g.readRetry(ctx, g.parity, dblock, tmp); err != nil {
		return err
	}
	xorInto(buf, tmp)
	return nil
}

// WriteBlock writes group data block bno and updates parity so that
// parity ^= old ^ new.
//
// Parity bytes are always kept exact, but the *timing* model reflects
// WAFL's write-anywhere behaviour rather than naive RAID-4
// read-modify-write: WAFL gathers dirty blocks into full-stripe writes
// at consistency points, so parity costs roughly one extra disk write
// per stripe, not two extra reads and a write per block. We therefore
// fetch the old data and parity untimed (they are needed only to keep
// the XOR exact) and charge the parity disk once per stripe touched.
//
// Writing to a failed disk's block updates parity only, so the data
// remains reconstructible.
func (g *Group) WriteBlock(ctx context.Context, bno int, data []byte) error {
	if bno < 0 || bno >= g.NumBlocks() {
		return fmt.Errorf("%w: %d of %d", storage.ErrOutOfRange, bno, g.NumBlocks())
	}
	if len(data) != storage.BlockSize {
		return fmt.Errorf("%w: %d", storage.ErrBadLength, len(data))
	}
	disk, dblock := g.locate(bno)
	untimed := context.Background()
	oldBuf := bufpool.Get(storage.BlockSize)
	defer bufpool.Put(oldBuf)
	old := *oldBuf
	if disk == g.failed {
		if err := g.reconstruct(ctx, dblock, old); err != nil {
			return err
		}
	} else if err := g.readMember(untimed, disk, dblock, old); err != nil {
		return err
	}
	parBuf := bufpool.Get(storage.BlockSize)
	defer bufpool.Put(parBuf)
	par := *parBuf
	if err := g.readRetry(untimed, g.parity, dblock, par); err != nil {
		return err
	}
	xorInto(par, old)
	xorInto(par, data)
	if disk != g.failed {
		if err := g.data[disk].WriteBlock(ctx, dblock, data); err != nil {
			return err
		}
	}
	parityCtx := untimed
	if g.chargeParity(dblock) {
		parityCtx = ctx
	}
	return g.parity.WriteBlock(parityCtx, dblock, par)
}

// Rebuild reconstructs the failed disk's entire contents onto
// replacement and re-adds it to the group.
func (g *Group) Rebuild(ctx context.Context, replacement Disk) error {
	if g.failed < 0 {
		return ErrNoFailure
	}
	if replacement.NumBlocks() != g.data[0].NumBlocks() {
		return fmt.Errorf("raid: replacement size %d != %d", replacement.NumBlocks(), g.data[0].NumBlocks())
	}
	buf := make([]byte, storage.BlockSize)
	for dblock := 0; dblock < replacement.NumBlocks(); dblock++ {
		if err := g.reconstruct(ctx, dblock, buf); err != nil {
			return err
		}
		if err := replacement.WriteBlock(ctx, dblock, buf); err != nil {
			return err
		}
	}
	g.data[g.failed] = replacement
	g.failed = -1
	return nil
}

// VerifyParity recomputes parity for every stripe and reports the
// group data blocks belonging to any stripe whose parity is wrong.
func (g *Group) VerifyParity(ctx context.Context) ([]int, error) {
	var bad []int
	acc := make([]byte, storage.BlockSize)
	tmp := make([]byte, storage.BlockSize)
	for dblock := 0; dblock < g.data[0].NumBlocks(); dblock++ {
		for i := range acc {
			acc[i] = 0
		}
		for _, d := range g.data {
			if err := d.ReadBlock(ctx, dblock, tmp); err != nil {
				return nil, err
			}
			xorInto(acc, tmp)
		}
		if err := g.parity.ReadBlock(ctx, dblock, tmp); err != nil {
			return nil, err
		}
		for i := range acc {
			if acc[i] != tmp[i] {
				bad = append(bad, dblock*len(g.data))
				break
			}
		}
	}
	return bad, nil
}

// chargeParity reports whether a parity write for stripe dblock should
// be charged (first touch of the stripe recently) and records it.
func (g *Group) chargeParity(dblock int) bool {
	g.parityMu.Lock()
	defer g.parityMu.Unlock()
	for _, s := range g.parityRecent {
		if s == dblock {
			return false
		}
	}
	g.parityRecent[g.parityNext] = dblock
	g.parityNext = (g.parityNext + 1) % len(g.parityRecent)
	return true
}

// xorInto XORs src into dst, eight bytes per step on the aligned body.
func xorInto(dst, src []byte) {
	n := len(dst)
	if n == 0 {
		return
	}
	_ = src[n-1]
	i := 0
	for ; i+8 <= n; i += 8 {
		d := binary.LittleEndian.Uint64(dst[i:])
		s := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], d^s)
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}
