package raid

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/vdev"
)

// buildFaultGroup makes a 4+1 group on untimed vdevs and fills it with
// a recognizable pattern, returning the group and the written image.
func buildFaultGroup(t *testing.T, blocksPerDisk int) (*Group, []byte) {
	t.Helper()
	var data []Disk
	for i := 0; i < 4; i++ {
		data = append(data, vdev.New(nil, "d", blocksPerDisk, vdev.DefaultParams()))
	}
	parity := vdev.New(nil, "p", blocksPerDisk, vdev.DefaultParams())
	g, err := NewGroup(data, parity)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, g.NumBlocks()*storage.BlockSize)
	for i := range img {
		img[i] = byte(i * 7)
	}
	ctx := context.Background()
	if err := g.WriteRun(ctx, 0, g.NumBlocks(), img); err != nil {
		t.Fatal(err)
	}
	return g, img
}

// TestDegradedReadFromLatentSector plants a persistent latent sector
// error on one member and checks both the per-block and the bulk-run
// read paths reconstruct the block from parity instead of failing.
func TestDegradedReadFromLatentSector(t *testing.T) {
	g, img := buildFaultGroup(t, 64)
	ctx := context.Background()

	// Group block 9 lives on disk 9%4=1, disk block 9/4=2.
	fd := g.data[1].(*vdev.Disk).InjectFaults(storage.FaultProfile{Seed: 1})
	fd.FailRead(2, storage.ErrLatentSector)

	buf := make([]byte, storage.BlockSize)
	if err := g.ReadBlock(ctx, 9, buf); err != nil {
		t.Fatalf("degraded ReadBlock: %v", err)
	}
	if !bytes.Equal(buf, img[9*storage.BlockSize:10*storage.BlockSize]) {
		t.Fatal("reconstructed block differs from written data")
	}
	if _, rec := g.RecoveryStats(); rec != 1 {
		t.Fatalf("reconstructs = %d, want 1", rec)
	}

	run := make([]byte, 32*storage.BlockSize)
	if err := g.ReadRun(ctx, 0, 32, run); err != nil {
		t.Fatalf("degraded ReadRun: %v", err)
	}
	if !bytes.Equal(run, img[:32*storage.BlockSize]) {
		t.Fatal("degraded run read differs from written data")
	}
}

// TestTransientMemberFaultRetried checks that a healing fault is
// absorbed by retries without resorting to reconstruction.
func TestTransientMemberFaultRetried(t *testing.T) {
	g, img := buildFaultGroup(t, 64)
	ctx := context.Background()

	d := g.data[2].(*vdev.Disk)
	// Neutralize the drive's own retry so the group-level loop is the
	// one exercised.
	d.SetRetryPolicy(storage.RetryPolicy{MaxRetries: 0})
	d.InjectFaults(storage.FaultProfile{Seed: 4, ReadFault: 1, Transient: 1, HealAfter: 2, MaxFaults: 1})

	buf := make([]byte, storage.BlockSize)
	if err := g.ReadBlock(ctx, 2, buf); err != nil { // disk 2, dblock 0
		t.Fatalf("ReadBlock over transient fault: %v", err)
	}
	if !bytes.Equal(buf, img[2*storage.BlockSize:3*storage.BlockSize]) {
		t.Fatal("data corrupted by retry path")
	}
	retries, rec := g.RecoveryStats()
	if retries != 2 || rec != 0 {
		t.Fatalf("retries=%d reconstructs=%d, want 2 and 0", retries, rec)
	}
}

// TestDoubleFaultInStripeFails plants latent sector errors on the same
// stripe of two members: RAID-4 cannot recover that, and the error
// must say so rather than return bad data.
func TestDoubleFaultInStripeFails(t *testing.T) {
	g, _ := buildFaultGroup(t, 64)
	ctx := context.Background()

	g.data[0].(*vdev.Disk).InjectFaults(storage.FaultProfile{Seed: 1}).FailRead(3, storage.ErrLatentSector)
	g.data[1].(*vdev.Disk).InjectFaults(storage.FaultProfile{Seed: 2}).FailRead(3, storage.ErrLatentSector)

	buf := make([]byte, storage.BlockSize)
	err := g.ReadBlock(ctx, 12, buf) // disk 0, dblock 3
	if err == nil {
		t.Fatal("double fault in one stripe read succeeded")
	}
	if !errors.Is(err, storage.ErrLatentSector) {
		t.Fatalf("error lost its classification: %v", err)
	}
	// Other stripes are unaffected.
	if err := g.ReadBlock(ctx, 0, buf); err != nil {
		t.Fatalf("clean stripe: %v", err)
	}
}

// TestWholeDiskFailStillWorks guards the pre-existing FailDisk path
// against regressions from the block-level recovery machinery.
func TestWholeDiskFailStillWorks(t *testing.T) {
	g, img := buildFaultGroup(t, 64)
	ctx := context.Background()
	if err := g.FailDisk(3); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, g.NumBlocks()*storage.BlockSize)
	if err := g.ReadRun(ctx, 0, g.NumBlocks(), got); err != nil {
		t.Fatalf("degraded full scan: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("degraded scan differs from written image")
	}
}
