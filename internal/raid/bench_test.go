package raid

import (
	"context"
	"testing"

	"repro/internal/storage"
	"repro/internal/vdev"
)

// benchVolume builds an untimed volume shaped like a small RAID-4
// array and seeds it with data so run reads hit written blocks.
func benchVolume(b *testing.B) *Volume {
	b.Helper()
	v, err := Build(nil, "bench", Config{
		Groups:            2,
		DataDisksPerGroup: 4,
		BlocksPerDisk:     4096,
		DiskParams:        vdev.DefaultParams(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const run = 512
	buf := make([]byte, run*storage.BlockSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for bno := 0; bno+run <= v.NumBlocks(); bno += run {
		if err := v.WriteRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

// BenchmarkRunRead measures the bulk sequential read path image dump
// streams through: volume → group striping → member disks.
func BenchmarkRunRead(b *testing.B) {
	v := benchVolume(b)
	ctx := context.Background()
	const run = 512
	buf := make([]byte, run*storage.BlockSize)
	// Warm each group's de-striping scratch so the timed loop measures
	// the steady state: run reads allocate nothing once warm.
	for _, g := range v.Groups() {
		if err := g.ReadRun(ctx, 0, run, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(run * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+run > v.NumBlocks() {
			bno = 0
		}
		if err := v.ReadRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
		bno += run
	}
}

// BenchmarkRunWrite measures the bulk sequential write path image
// restore streams through, including full-stripe parity computation.
func BenchmarkRunWrite(b *testing.B) {
	v := benchVolume(b)
	ctx := context.Background()
	const run = 512
	buf := make([]byte, run*storage.BlockSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	b.SetBytes(run * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+run > v.NumBlocks() {
			bno = 0
		}
		if err := v.WriteRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
		bno += run
	}
}
