package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// TestSimProducerConsumer runs a bounded producer/consumer pair on the
// simulator and checks ordering, backpressure and determinism: the
// consumer is slower, so total virtual time is set by the consumer and
// identical across runs.
func TestSimProducerConsumer(t *testing.T) {
	run := func() (sum int, elapsed sim.Time) {
		env := sim.NewEnv()
		env.Spawn("parent", func(p *sim.Proc) {
			ctx := sim.WithProc(context.Background(), p)
			pl := New(ctx)
			q := NewQueue[int](pl, "test", 2)
			pl.Go("producer", func(ctx context.Context) error {
				sp := sim.ProcFrom(ctx)
				for i := 1; i <= 10; i++ {
					sp.Sleep(time.Millisecond)
					if err := q.Put(ctx, i); err != nil {
						return err
					}
				}
				q.CloseSend()
				return nil
			})
			pl.Go("consumer", func(ctx context.Context) error {
				sp := sim.ProcFrom(ctx)
				last := 0
				for {
					v, ok, err := q.Get(ctx)
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					if v != last+1 {
						return fmt.Errorf("got %d after %d", v, last)
					}
					last = v
					sp.Sleep(3 * time.Millisecond)
					sum += v
				}
			})
			if err := pl.Wait(); err != nil {
				t.Errorf("pipeline: %v", err)
			}
			elapsed = p.Now()
		})
		env.Run()
		return sum, elapsed
	}
	sum1, t1 := run()
	sum2, t2 := run()
	if sum1 != 55 || sum2 != 55 {
		t.Fatalf("sums = %d, %d, want 55", sum1, sum2)
	}
	if t1 != t2 {
		t.Fatalf("non-deterministic: %v vs %v", t1, t2)
	}
	// Consumer-bound: 1ms for the first item to arrive + 10 * 3ms.
	if want := 31 * time.Millisecond; t1 != want {
		t.Fatalf("elapsed %v, want %v", t1, want)
	}
}

// TestSimFirstErrorAborts checks that a failing stage unwinds stages
// blocked on queues and Wait reports the original error, with the
// simulation draining cleanly (no stuck-process panic).
func TestSimFirstErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	env := sim.NewEnv()
	var got error
	env.Spawn("parent", func(p *sim.Proc) {
		ctx := sim.WithProc(context.Background(), p)
		pl := New(ctx)
		q := NewQueue[int](pl, "err", 1)
		pl.Go("blocked-producer", func(ctx context.Context) error {
			for i := 0; ; i++ {
				if err := q.Put(ctx, i); err != nil {
					return err
				}
			}
		})
		pl.Go("failer", func(ctx context.Context) error {
			sim.ProcFrom(ctx).Sleep(time.Millisecond)
			return boom
		})
		got = pl.Wait()
	})
	env.Run()
	if !errors.Is(got, boom) {
		t.Fatalf("Wait = %v, want %v", got, boom)
	}
}

// TestGoModeProducerConsumer runs the same shape untimed with real
// goroutines.
func TestGoModeProducerConsumer(t *testing.T) {
	pl := New(context.Background())
	q := NewQueue[int](pl, "gomode", 4)
	var sum atomic.Int64
	pl.Go("producer", func(ctx context.Context) error {
		for i := 1; i <= 100; i++ {
			if err := q.Put(ctx, i); err != nil {
				return err
			}
		}
		q.CloseSend()
		return nil
	})
	for c := 0; c < 3; c++ {
		pl.Go(fmt.Sprintf("consumer%d", c), func(ctx context.Context) error {
			for {
				v, ok, err := q.Get(ctx)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				sum.Add(int64(v))
			}
		})
	}
	if err := pl.Wait(); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if sum.Load() != 5050 {
		t.Fatalf("sum = %d, want 5050", sum.Load())
	}
}

// TestCancelNoGoroutineLeak aborts a mid-flight untimed pipeline by
// cancelling its parent context and asserts every stage goroutine
// exits — the satellite requirement that a pipeline abort leaks
// nothing.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	pl := New(ctx)
	q := NewQueue[int](pl, "leak", 1)
	// Producer fills the queue then blocks; consumers block on an
	// upstream queue that never closes.
	starve := NewQueue[int](pl, "starve", 1)
	pl.Go("producer", func(ctx context.Context) error {
		for i := 0; ; i++ {
			if err := q.Put(ctx, i); err != nil {
				return err
			}
		}
	})
	pl.Go("consumer", func(ctx context.Context) error {
		_, _, err := starve.Get(ctx)
		return err
	})
	time.Sleep(10 * time.Millisecond) // let both stages block
	cancel()
	if err := pl.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", before, after, buf[:runtime.Stack(buf, true)])
	}
}

// TestStageFailureUnblocksPeers fails one untimed stage and checks a
// peer blocked on a full queue unwinds with the first error.
func TestStageFailureUnblocksPeers(t *testing.T) {
	boom := errors.New("stage down")
	pl := New(context.Background())
	q := NewQueue[int](pl, "peers", 1)
	pl.Go("blocked", func(ctx context.Context) error {
		for i := 0; ; i++ {
			if err := q.Put(ctx, i); err != nil {
				return err
			}
		}
	})
	pl.Go("failer", func(ctx context.Context) error {
		time.Sleep(5 * time.Millisecond)
		return boom
	})
	if err := pl.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
}

// TestGroupIsolatesShards runs two pipelines under one Group — the
// shard topology the dump engines use — and checks one shard's failure
// leaves the other's output complete.
func TestGroupIsolatesShards(t *testing.T) {
	boom := errors.New("shard 1 drive offline")
	env := sim.NewEnv()
	var goodSum int
	var joined error
	env.Spawn("parent", func(p *sim.Proc) {
		ctx := sim.WithProc(context.Background(), p)
		g := NewGroup(ctx)
		g.Go("shard0", func(ctx context.Context) error {
			pl := New(ctx)
			q := NewQueue[int](pl, "s0", 2)
			pl.Go("reader", func(ctx context.Context) error {
				for i := 1; i <= 5; i++ {
					sim.ProcFrom(ctx).Sleep(time.Millisecond)
					if err := q.Put(ctx, i); err != nil {
						return err
					}
				}
				q.CloseSend()
				return nil
			})
			pl.Go("writer", func(ctx context.Context) error {
				for {
					v, ok, err := q.Get(ctx)
					if err != nil {
						return err
					}
					if !ok {
						return nil
					}
					goodSum += v
				}
			})
			return pl.Wait()
		})
		g.Go("shard1", func(ctx context.Context) error {
			pl := New(ctx)
			pl.Go("writer", func(ctx context.Context) error {
				sim.ProcFrom(ctx).Sleep(2 * time.Millisecond)
				return boom
			})
			return pl.Wait()
		})
		joined = g.Wait()
	})
	env.Run()
	if !errors.Is(joined, boom) {
		t.Fatalf("group error = %v, want to contain %v", joined, boom)
	}
	if goodSum != 15 {
		t.Fatalf("healthy shard sum = %d, want 15 (must complete despite sibling failure)", goodSum)
	}
}

// TestQueueDepthGauge checks the queue exports its depth on the
// context's metrics registry.
func TestQueueDepthGauge(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithMetrics(context.Background(), reg)
	pl := New(ctx)
	q := NewQueue[int](pl, "gauged", 4)
	for i := 0; i < 3; i++ {
		if err := q.Put(ctx, i); err != nil {
			t.Fatal(err)
		}
	}
	if v, ok := reg.Value("pipeline_queue_depth", obs.Labels{"queue": "gauged"}); !ok || v != 3 {
		t.Fatalf("gauge = %v (ok=%v), want 3", v, ok)
	}
	if _, _, err := q.Get(ctx); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("pipeline_queue_depth", obs.Labels{"queue": "gauged"}); v != 2 {
		t.Fatalf("gauge = %v, want 2", v)
	}
	pl.cancel()
}
