package pipeline

import (
	"context"

	"repro/internal/sim"
)

// ProcBinder is implemented by drive adapters (logical.DriveSink and
// friends) that charge device time against a bound simulated process.
// A pipeline stage runs on its own process, so the stage rebinds the
// adapter to itself for its lifetime and restores the previous binding
// on exit — two processes sharing one binding would corrupt the
// simulator's handoff channels.
type ProcBinder interface{ BindProc(p *sim.Proc) *sim.Proc }

// BindStageProc rebinds v (if it is a ProcBinder) to the stage process
// carried by ctx and returns the restore function, a no-op when v is
// not a binder or the stage is untimed. Use as:
//
//	defer pipeline.BindStageProc(ctx, sink)()
func BindStageProc(ctx context.Context, v any) func() {
	pb, ok := v.(ProcBinder)
	if !ok {
		return func() {}
	}
	p := sim.ProcFrom(ctx)
	if p == nil {
		return func() {}
	}
	old := pb.BindProc(p)
	return func() { pb.BindProc(old) }
}
