// Package pipeline provides the stage-structured concurrency layer the
// dump engines are built on: a Group that fans work out to stages, a
// Pipeline that adds first-error propagation and teardown, and a
// bounded Queue connecting stages with backpressure.
//
// Everything here is dual-mode. When the context carries a sim.Proc,
// stages are spawned as simulated processes on that proc's Env and
// queue blocking parks on sim.Cond — so a parallel dump stays on the
// deterministic virtual clock and a run with N readers produces the
// same bytes and the same timings every time. Without a proc, stages
// are ordinary goroutines and queues block on channels with
// ctx-cancellation, which is what the NDMP server and the functional
// tests use.
//
// Error propagation rules (documented in DESIGN.md):
//
//   - The first stage error wins. It cancels the pipeline context and
//     aborts every registered queue, so blocked stages unwind promptly
//     with that same error.
//   - Later errors (almost always cascades of the abort) are recorded
//     but Wait returns the first.
//   - A stage returning the pipeline's own abort error is not treated
//     as a new failure.
//
// Shard isolation is built ON TOP of this package, not inside it: each
// dump shard runs its own Pipeline, and shards are joined by a plain
// Group, so one drive's failure tears down its shard's stages but
// leaves sibling shards streaming.
package pipeline

import (
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Group runs a set of stages and joins them. It does not cancel
// anything: every stage runs to its own completion, and Wait returns
// the joined errors. Use it to run independent work (dump shards)
// side by side; use Pipeline for stages that should die together.
type Group struct {
	ctx  context.Context
	env  *sim.Env  // non-nil when running on the simulator
	join *sim.Cond // sim-mode join: parent parks here until n hits 0
	n    int       // sim-mode live stage count
	wg   sync.WaitGroup

	mu   sync.Mutex
	errs []error
}

// NewGroup creates a group running under ctx. When ctx carries a
// sim.Proc the group spawns simulated processes on that proc's Env;
// otherwise it spawns goroutines.
func NewGroup(ctx context.Context) *Group {
	g := &Group{ctx: ctx}
	if p := sim.ProcFrom(ctx); p != nil {
		g.env = p.Env()
		g.join = sim.NewCond(g.env)
	}
	return g
}

// Simulated reports whether the group runs its stages on the
// simulator's virtual clock.
func (g *Group) Simulated() bool { return g.env != nil }

// record appends a stage error.
func (g *Group) record(err error) {
	if err == nil {
		return
	}
	g.mu.Lock()
	g.errs = append(g.errs, err)
	g.mu.Unlock()
}

// Go starts fn as a new stage named name. In sim mode fn runs as a
// fresh simulated process and its context carries that process; the
// name shows up in traces and deadlock panics, so make it specific
// ("physical.shard2.reader0").
func (g *Group) Go(name string, fn func(ctx context.Context) error) {
	if g.env != nil {
		g.n++
		g.env.Spawn(name, func(p *sim.Proc) {
			g.record(fn(sim.WithProc(g.ctx, p)))
			g.n--
			if g.n == 0 {
				g.join.Broadcast()
			}
		})
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.record(fn(g.ctx))
	}()
}

// Wait blocks until every stage has returned and joins their errors.
// In sim mode it must be called by the process that created the group
// (the one carried by the constructor's ctx).
func (g *Group) Wait() error {
	if g.env != nil {
		p := sim.ProcFrom(g.ctx)
		for g.n > 0 {
			g.join.Wait(p)
		}
	} else {
		g.wg.Wait()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return errors.Join(g.errs...)
}

// aborter is what a Pipeline needs from its queues at teardown.
type aborter interface{ abort(error) }

// Pipeline is a Group whose stages live and die together: the first
// stage error cancels the pipeline context, aborts every queue created
// on the pipeline, and becomes Wait's return value. Each stage runs
// under an obs span named "pipeline.<name>".
type Pipeline struct {
	g      *Group
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	first  error
	queues []aborter
}

// New creates a pipeline under ctx (see NewGroup for mode selection).
func New(ctx context.Context) *Pipeline {
	cctx, cancel := context.WithCancel(ctx)
	return &Pipeline{g: NewGroup(cctx), ctx: cctx, cancel: cancel}
}

// Context returns the pipeline's cancellable context.
func (pl *Pipeline) Context() context.Context { return pl.ctx }

// Simulated reports whether stages run on the simulator.
func (pl *Pipeline) Simulated() bool { return pl.g.Simulated() }

// register adds a queue to the teardown list. If the pipeline already
// failed the queue is aborted immediately.
func (pl *Pipeline) register(q aborter) {
	pl.mu.Lock()
	first := pl.first
	if first == nil {
		pl.queues = append(pl.queues, q)
	}
	pl.mu.Unlock()
	if first != nil {
		q.abort(first)
	}
}

// fail records the pipeline's first error and tears everything down:
// the context is cancelled and every queue is aborted with that error.
// Subsequent calls are no-ops.
func (pl *Pipeline) fail(err error) {
	pl.mu.Lock()
	if pl.first != nil || err == nil {
		pl.mu.Unlock()
		return
	}
	pl.first = err
	queues := pl.queues
	pl.queues = nil
	pl.mu.Unlock()
	pl.cancel()
	for _, q := range queues {
		q.abort(err)
	}
}

// Err returns the pipeline's first error, or nil.
func (pl *Pipeline) Err() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.first
}

// Go starts fn as a pipeline stage. A non-nil return fails the whole
// pipeline; since fail is first-wins, a stage unwound by the abort of
// an earlier failure does not overwrite that failure.
func (pl *Pipeline) Go(name string, fn func(ctx context.Context) error) {
	pl.g.Go(name, func(ctx context.Context) error {
		ctx, span := obs.Start(ctx, "pipeline."+obs.Slug(name))
		err := fn(ctx)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End()
		if err != nil {
			pl.fail(err)
		}
		return err
	})
}

// Wait joins every stage and returns the first error, or nil when all
// stages succeeded. The pipeline context is cancelled on return, so
// queues created on the pipeline are unusable afterwards. In sim mode
// Wait must be called by the process that created the pipeline.
func (pl *Pipeline) Wait() error {
	pl.g.Wait()
	pl.cancel()
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.first
}
