package pipeline

import (
	"errors"
	"sync"

	"context"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ErrClosed is returned by Put after CloseSend.
var ErrClosed = errors.New("pipeline: queue closed")

// Queue is a bounded FIFO connecting pipeline stages. Put blocks while
// the queue is full, Get while it is empty — on the simulator by
// parking the calling process on a sim.Cond, otherwise on a channel
// with ctx cancellation. Depth is exported as the gauge
// pipeline_queue_depth{queue="<name>"} on the registry carried by the
// pipeline's context.
//
// Mode is chosen per call from the caller's context: a stage spawned
// on the simulator carries its own sim.Proc and parks; an untimed
// caller blocks the goroutine. A single queue must not be used from
// both modes at once.
type Queue[T any] struct {
	name string
	cap  int

	mu      sync.Mutex // go mode; sim mode is cooperatively serialized
	buf     []T
	head, n int
	closed  bool
	err     error

	notFull  *sim.Cond // sim mode, lazily created
	notEmpty *sim.Cond

	bcast chan struct{} // go mode: closed and replaced on state change

	depth *obs.Gauge
}

// NewQueue creates a bounded queue of the given capacity (minimum 1)
// registered on pl: when the pipeline fails, the queue is aborted and
// all blocked callers unwind with the pipeline's first error.
func NewQueue[T any](pl *Pipeline, name string, capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue[T]{
		name:  name,
		cap:   capacity,
		buf:   make([]T, capacity),
		depth: obs.MetricsFrom(pl.Context()).Gauge("pipeline_queue_depth", obs.Labels{"queue": name}),
	}
	pl.register(q)
	return q
}

// conds lazily creates the sim-mode condition variables on p's Env.
// Safe without locking: sim mode runs one process at a time.
func (q *Queue[T]) conds(p *sim.Proc) {
	if q.notFull == nil {
		q.notFull = sim.NewCond(p.Env())
		q.notEmpty = sim.NewCond(p.Env())
	}
}

// wakeLocked wakes every go-mode waiter. Callers hold q.mu.
func (q *Queue[T]) wakeLocked() {
	if q.bcast != nil {
		close(q.bcast)
		q.bcast = nil
	}
}

// waitChLocked returns the channel a go-mode caller should block on.
func (q *Queue[T]) waitChLocked() chan struct{} {
	if q.bcast == nil {
		q.bcast = make(chan struct{})
	}
	return q.bcast
}

// put appends v. Callers have checked there is room.
func (q *Queue[T]) put(v T) {
	q.buf[(q.head+q.n)%q.cap] = v
	q.n++
	q.depth.Set(float64(q.n))
}

// take removes and returns the head. Callers have checked q.n > 0.
func (q *Queue[T]) take() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero // drop the reference for pooled buffers
	q.head = (q.head + 1) % q.cap
	q.n--
	q.depth.Set(float64(q.n))
	return v
}

// Put enqueues v, blocking while the queue is full. It returns the
// abort error if the pipeline failed, ErrClosed after CloseSend, or
// ctx's error if cancelled while blocked (untimed mode only).
func (q *Queue[T]) Put(ctx context.Context, v T) error {
	if p := sim.ProcFrom(ctx); p != nil {
		q.conds(p)
		for {
			switch {
			case q.err != nil:
				return q.err
			case q.closed:
				return ErrClosed
			case q.n < q.cap:
				q.put(v)
				q.notEmpty.Broadcast()
				return nil
			}
			q.notFull.Wait(p)
		}
	}
	for {
		q.mu.Lock()
		switch {
		case q.err != nil:
			err := q.err
			q.mu.Unlock()
			return err
		case q.closed:
			q.mu.Unlock()
			return ErrClosed
		case q.n < q.cap:
			q.put(v)
			q.wakeLocked()
			q.mu.Unlock()
			return nil
		}
		w := q.waitChLocked()
		q.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Get dequeues the next value. ok is false with a nil error when the
// queue is closed and drained (clean end of stream); a non-nil error
// is the pipeline abort error or ctx's error.
func (q *Queue[T]) Get(ctx context.Context) (v T, ok bool, err error) {
	var zero T
	if p := sim.ProcFrom(ctx); p != nil {
		q.conds(p)
		for {
			switch {
			case q.err != nil:
				return zero, false, q.err
			case q.n > 0:
				v = q.take()
				q.notFull.Broadcast()
				return v, true, nil
			case q.closed:
				return zero, false, nil
			}
			q.notEmpty.Wait(p)
		}
	}
	for {
		q.mu.Lock()
		switch {
		case q.err != nil:
			err = q.err
			q.mu.Unlock()
			return zero, false, err
		case q.n > 0:
			v = q.take()
			q.wakeLocked()
			q.mu.Unlock()
			return v, true, nil
		case q.closed:
			q.mu.Unlock()
			return zero, false, nil
		}
		w := q.waitChLocked()
		q.mu.Unlock()
		select {
		case <-w:
		case <-ctx.Done():
			return zero, false, ctx.Err()
		}
	}
}

// CloseSend marks the end of the stream: blocked and future Puts fail
// with ErrClosed, and Gets drain the buffer then return ok=false.
func (q *Queue[T]) CloseSend() {
	q.mu.Lock()
	q.closed = true
	q.wakeLocked()
	q.mu.Unlock()
	if q.notFull != nil {
		q.notFull.Broadcast()
		q.notEmpty.Broadcast()
	}
}

// abort poisons the queue with err: every blocked and future Put/Get
// returns it. First error wins; buffered values are discarded.
func (q *Queue[T]) abort(err error) {
	q.mu.Lock()
	if q.err == nil && err != nil {
		q.err = err
	}
	// Drop buffered values so pooled buffers are not pinned by a dead
	// queue (the GC still owns them; this just clears our references).
	q.head, q.n = 0, 0
	for i := range q.buf {
		var zero T
		q.buf[i] = zero
	}
	q.depth.Set(0)
	q.wakeLocked()
	q.mu.Unlock()
	if q.notFull != nil {
		q.notFull.Broadcast()
		q.notEmpty.Broadcast()
	}
}

// Len returns the number of buffered values.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
