package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
)

// ObsReport is what an instrumented smoke run produced: each engine's
// own statistics next to the registry that observed it, so callers can
// cross-check the two (backupctl stats -check does exactly that).
type ObsReport struct {
	DataBytes int64               `json:"data_bytes"`
	Logical   *logical.DumpStats  `json:"logical"`
	Image     *physical.DumpStats `json:"image"`
	// DedupPrime and DedupRepeat are the two passes of the dedup
	// smoke: the same snapshot chunked twice over one index, so the
	// repeat is (nearly) all hits and every chunk counter moves.
	DedupPrime  chunk.WriterStats `json:"dedup_prime"`
	DedupRepeat chunk.WriterStats `json:"dedup_repeat"`
	Metrics     []obs.Point       `json:"metrics"`
	Stages      []*Stage          `json:"-"`
	Registry    *obs.Registry     `json:"-"`
	Filer       *core.Filer       `json:"-"`
}

// WriteJSON dumps the report (with a fresh metrics snapshot) for
// BENCH_obs.json.
func (r *ObsReport) WriteJSON(w io.Writer) error {
	r.Metrics = r.Registry.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunObs populates a filer, then runs a level-0 logical dump to drive
// 0 and a full image dump to drive 1 with metrics and (optionally)
// tracing threaded through the whole stack — the workload behind
// backupctl stats and make obs-smoke. The returned report keeps the
// live registry, so its pull collectors still read the filer.
func RunObs(ctx context.Context, cfg Config, tr *obs.Tracer) (*ObsReport, error) {
	tweak := cfg.Tweak
	cfg.Tweak = func(fc *core.FilerConfig) {
		// A small cache forces the dumps to the disks, so the vdev and
		// raid counters observe real traffic instead of cache hits.
		fc.CacheBlocks = 64
		if tweak != nil {
			tweak(fc)
		}
	}
	f, err := buildFiler(ctx, cfg, "obs", 2, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := populate(ctx, f, cfg, "", 0); err != nil {
		return nil, err
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}

	meters := &Meters{Env: f.Env, CPU: f.CPU, Vols: []*raid.Volume{f.Vol}, Tapes: f.Tapes}
	reg := meters.Registry()
	plain := ctx // no registry: the dedup smoke's dumps must not recount engine metrics
	ctx = obs.WithMetrics(ctx, reg)
	if tr != nil {
		ctx = obs.WithTracer(ctx, tr)
	}
	rep := &ObsReport{
		DataBytes: int64(f.FS.UsedBlocks()) * wafl.BlockSize,
		Registry:  reg,
		Filer:     f,
	}
	rec := NewRecorder(meters)

	var dumpErr error
	f.Env.Spawn("logical-dump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if dumpErr = f.LoadTape(c, 0); dumpErr != nil {
			return
		}
		rep.Logical, dumpErr = f.LogicalDump(c, 0, 0, "/", "obs-l0", rec)
	})
	f.Env.Run()
	if dumpErr != nil {
		return nil, fmt.Errorf("bench: obs logical dump: %w", dumpErr)
	}

	var imgErr error
	f.Env.Spawn("image-dump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if imgErr = f.LoadTape(c, 1); imgErr != nil {
			return
		}
		rec.Begin("Dumping blocks")
		rep.Image, imgErr = f.ImageDump(c, 1, "obs-img", "")
		rec.End()
	})
	f.Env.Run()
	if imgErr != nil {
		return nil, fmt.Errorf("bench: obs image dump: %w", imgErr)
	}

	// Dedup smoke: chunk the same snapshot twice through one index.
	// The prime pass stores (misses), the repeat pass dedups (hits),
	// so the registry's chunk counters are all guaranteed nonzero.
	dcat, err := catalog.Open(&catalog.MemStore{})
	if err != nil {
		return nil, err
	}
	dcat.RegisterChunkMetrics(reg)
	dmedia := chunk.NewMemMedia("obs-chunks")
	if err := f.FS.CreateSnapshot(ctx, "obs-dedup"); err != nil {
		return nil, err
	}
	for _, pass := range []string{"dedup-prime", "dedup-repeat"} {
		var passErr error
		var ws chunk.WriterStats
		f.Env.Spawn(pass, func(p *sim.Proc) {
			// The dump itself runs metrics-free (its files/bytes would
			// double-count the engine counters the -check cross-checks);
			// only the chunk writer reports to the registry.
			c := sim.WithProc(plain, p)
			view, err := f.FS.SnapshotView("obs-dedup")
			if err != nil {
				passErr = err
				return
			}
			w, err := chunk.NewWriter(chunk.WriterOptions{
				Index: dcat, Media: dmedia, Ctx: ctx, Engine: "logical",
			})
			if err != nil {
				passErr = err
				return
			}
			if _, err := logical.Dump(c, logical.DumpOptions{
				View: view, Label: "obs-dedup", FSID: "obs",
				ReadAhead: 8, Sink: w,
			}); err != nil {
				passErr = err
				return
			}
			if _, passErr = w.Close(); passErr != nil {
				return
			}
			ws = w.Stats()
		})
		f.Env.Run()
		if passErr != nil {
			return nil, fmt.Errorf("bench: obs %s: %w", pass, passErr)
		}
		if pass == "dedup-prime" {
			rep.DedupPrime = ws
		} else {
			rep.DedupRepeat = ws
		}
	}
	rep.Stages = rec.Stages
	return rep, nil
}
