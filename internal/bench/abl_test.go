package bench

import (
	"context"
	"testing"
)

func TestSmokeAblations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 16
	cfg.AgeRounds = 3
	for name, run := range map[string]func(context.Context, Config) (*AblationResult, error){
		"nvram": RunNVRAMAblation, "readahead": RunReadAheadAblation, "copy": RunCopyAblation,
	} {
		res, err := run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: base %.2f MB/s (cpu %.0f%%) vs variant %.2f MB/s (cpu %.0f%%), speedup %.2fx",
			res.Name, res.Baseline.MBps(), 100*res.Baseline.CPUUtil,
			res.Variant.MBps(), 100*res.Variant.CPUUtil, res.Speedup())
	}
}

func TestSmokeIncremental(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 16
	cfg.AgeRounds = 3
	res, err := RunIncremental(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("logical: full %d bytes in %v, incr %d bytes in %v", res.FullLogicalBytes, res.FullLogical.Elapsed, res.IncrLogicalBytes, res.IncrLogical.Elapsed)
	t.Logf("physical: full %d blocks in %v, incr %d blocks in %v", res.FullPhysicalBlocks, res.FullPhysical.Elapsed, res.IncrPhysicalBlocks, res.IncrPhysical.Elapsed)
	if res.IncrLogicalBytes >= res.FullLogicalBytes/2 {
		t.Error("logical incremental not small")
	}
	if res.IncrPhysicalBlocks >= res.FullPhysicalBlocks/2 {
		t.Error("physical incremental not small")
	}
}

func TestSmokeConcurrentVolumes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 16
	cfg.AgeRounds = 2
	res, err := RunConcurrentVolumes(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("home: iso %v vs con %v; rlse: iso %v vs con %v",
		res.HomeIsolated.Elapsed, res.HomeConcurrent.Elapsed,
		res.RlseIsolated.Elapsed, res.RlseConcurrent.Elapsed)
	slow := float64(res.HomeConcurrent.Elapsed) / float64(res.HomeIsolated.Elapsed)
	if slow > 1.25 {
		t.Errorf("concurrent home dump %.2fx slower than isolated", slow)
	}
}
