// Package bench is the measurement harness that regenerates the
// paper's evaluation (§5): basic backup/restore to one tape (Tables 2
// and 3), parallel backup/restore to two and four tapes (Tables 4 and
// 5), the concurrent-volume experiment and the scaling summary of
// §5.1–5.3, plus the ablations called out in DESIGN.md. Results carry
// elapsed virtual time, throughput, and per-stage CPU/disk/tape
// utilization in the same shape the paper reports.
package bench

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/tape"
)

// Meters knows how to sample every resource of an experiment. Samples
// are read through an obs.Registry: each resource registers its pull
// collectors once, and Take aggregates the registry's families, so the
// same numbers the benchmark reports are exported by backupctl stats.
type Meters struct {
	Env   *sim.Env
	CPU   *sim.Station
	Vols  []*raid.Volume
	Tapes []*tape.Drive

	reg  *obs.Registry
	seen map[any]bool
}

// Registry returns the registry the meters sample through, creating it
// and registering every known resource on first use. Resources
// appended to Vols/Tapes after a sample (parallel experiments grow
// mid-run) are picked up on the next call.
func (m *Meters) Registry() *obs.Registry {
	if m.reg == nil {
		m.reg = obs.NewRegistry()
	}
	m.syncRegistry()
	return m.reg
}

func (m *Meters) syncRegistry() {
	if m.seen == nil {
		m.seen = make(map[any]bool)
	}
	if m.CPU != nil && !m.seen[m.CPU] {
		m.seen[m.CPU] = true
		cpu := m.CPU
		m.reg.RegisterFunc("sim_cpu_busy_seconds", obs.KindGauge, nil,
			func() float64 { return cpu.Busy().Seconds() })
	}
	for _, v := range m.Vols {
		if !m.seen[v] {
			m.seen[v] = true
			v.RegisterMetrics(m.reg)
		}
	}
	for _, t := range m.Tapes {
		if !m.seen[t] {
			m.seen[t] = true
			t.RegisterMetrics(m.reg)
		}
	}
}

// busyDuration converts a busy-seconds gauge back to a duration.
// Round, not truncate: the float trip through the registry can land a
// hair under the exact nanosecond count.
func busyDuration(sec float64) time.Duration {
	return time.Duration(math.Round(sec * 1e9))
}

// Sample is a point-in-time reading of all resources.
type Sample struct {
	T                   sim.Time
	CPUBusy             time.Duration
	DiskRead, DiskWrite int64
	DiskBusy            time.Duration
	TapeIO              int64
	TapeBusy            time.Duration
}

// Take reads all meters now, through the registry.
func (m *Meters) Take() Sample {
	reg := m.Registry()
	return Sample{
		T:         m.Env.Now(),
		CPUBusy:   busyDuration(reg.Sum("sim_cpu_busy_seconds")),
		DiskRead:  int64(reg.Sum("raid_read_bytes_total")),
		DiskWrite: int64(reg.Sum("raid_written_bytes_total")),
		DiskBusy:  busyDuration(reg.Sum("raid_disk_busy_seconds")),
		TapeIO:    int64(reg.Sum("tape_written_bytes_total") + reg.Sum("tape_read_bytes_total")),
		TapeBusy:  busyDuration(reg.Sum("tape_busy_seconds")),
	}
}

// Stage is one measured phase of an operation.
type Stage struct {
	Name  string
	Begin Sample
	End   Sample
}

// Elapsed returns the stage's wall (virtual) time.
func (s *Stage) Elapsed() time.Duration { return s.End.T - s.Begin.T }

// CPUUtil returns the fraction of the stage the CPU was busy.
func (s *Stage) CPUUtil() float64 {
	if s.Elapsed() <= 0 {
		return 0
	}
	return float64(s.End.CPUBusy-s.Begin.CPUBusy) / float64(s.Elapsed())
}

// DiskMBps returns aggregate disk traffic over the stage in MB/s.
func (s *Stage) DiskMBps() float64 {
	if s.Elapsed() <= 0 {
		return 0
	}
	bytes := (s.End.DiskRead - s.Begin.DiskRead) + (s.End.DiskWrite - s.Begin.DiskWrite)
	return float64(bytes) / s.Elapsed().Seconds() / (1 << 20)
}

// TapeMBps returns aggregate tape traffic over the stage in MB/s.
func (s *Stage) TapeMBps() float64 {
	if s.Elapsed() <= 0 {
		return 0
	}
	return float64(s.End.TapeIO-s.Begin.TapeIO) / s.Elapsed().Seconds() / (1 << 20)
}

// Recorder implements logical.StageRecorder over Meters and also
// serves the hand-placed stages (snapshot create/delete, image dump
// phases).
type Recorder struct {
	M      *Meters
	Stages []*Stage
	open   *Stage
}

// NewRecorder creates a recorder over m.
func NewRecorder(m *Meters) *Recorder { return &Recorder{M: m} }

// Begin opens a stage (closing any still-open one first).
func (r *Recorder) Begin(name string) {
	if r.open != nil {
		r.End()
	}
	r.open = &Stage{Name: name, Begin: r.M.Take()}
}

// End closes the open stage.
func (r *Recorder) End() {
	if r.open == nil {
		return
	}
	r.open.End = r.M.Take()
	r.Stages = append(r.Stages, r.open)
	r.open = nil
}

// Total returns a synthetic stage spanning the first begin to the last
// end.
func (r *Recorder) Total(name string) Stage {
	if len(r.Stages) == 0 {
		return Stage{Name: name}
	}
	return Stage{Name: name, Begin: r.Stages[0].Begin, End: r.Stages[len(r.Stages)-1].End}
}

// OpResult summarizes one measured operation.
type OpResult struct {
	Name    string
	Elapsed time.Duration
	Bytes   int64 // payload moved (tape stream size)
	Stages  []*Stage
	CPUUtil float64
}

// MBps returns payload throughput in MB/s.
func (o *OpResult) MBps() float64 {
	if o.Elapsed <= 0 {
		return 0
	}
	return float64(o.Bytes) / o.Elapsed.Seconds() / (1 << 20)
}

// GBph returns payload throughput in GB/hour.
func (o *OpResult) GBph() float64 {
	if o.Elapsed <= 0 {
		return 0
	}
	return float64(o.Bytes) / (1 << 30) / o.Elapsed.Hours()
}

// summarize builds an OpResult from a recorder.
func summarize(name string, rec *Recorder, bytes int64) OpResult {
	total := rec.Total(name)
	return OpResult{
		Name:    name,
		Elapsed: total.Elapsed(),
		Bytes:   bytes,
		Stages:  rec.Stages,
		CPUUtil: total.CPUUtil(),
	}
}

// mergeStages aggregates same-named stages from several concurrent
// recorders into window stages (min begin to max end), the way the
// paper reports one row per stage for four parallel dumps.
func mergeStages(recs []*Recorder) []*Stage {
	var order []string
	byName := make(map[string]*Stage)
	for _, r := range recs {
		for _, s := range r.Stages {
			m, ok := byName[s.Name]
			if !ok {
				cp := *s
				byName[s.Name] = &cp
				order = append(order, s.Name)
				continue
			}
			if s.Begin.T < m.Begin.T {
				m.Begin = s.Begin
			}
			if s.End.T > m.End.T {
				m.End = s.End
			}
		}
	}
	out := make([]*Stage, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	return out
}

// FormatDuration renders a duration the way the paper does: hours with
// a decimal for long phases, minutes or seconds for short ones.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2f hours", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1f minutes", d.Minutes())
	default:
		return fmt.Sprintf("%.1f seconds", d.Seconds())
	}
}

// FormatOpsTable renders Table 2-style rows.
func FormatOpsTable(title string, ops []OpResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Operation\tElapsed time\tMBytes/second\tGBytes/hour\tCPU")
	for _, o := range ops {
		fmt.Fprintf(w, "%s\t%s\t%.2f\t%.1f\t%.0f%%\n", o.Name, FormatDuration(o.Elapsed), o.MBps(), o.GBph(), 100*o.CPUUtil)
	}
	w.Flush()
	return b.String()
}

// FormatStagesTable renders Table 3-style rows (per stage, with CPU
// utilization).
func FormatStagesTable(title string, groups map[string][]*Stage, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Stage\tTime spent\tCPU Utilization")
	for _, g := range order {
		fmt.Fprintf(w, "%s\t\t\n", g)
		for _, s := range groups[g] {
			fmt.Fprintf(w, "  %s\t%s\t%.0f%%\n", s.Name, FormatDuration(s.Elapsed()), 100*s.CPUUtil())
		}
	}
	w.Flush()
	return b.String()
}

// FormatParallelTable renders Table 4/5-style rows (per stage with CPU
// and disk/tape rates).
func FormatParallelTable(title string, groups map[string][]*Stage, order []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Operation\tElapsed time\tCPU Utilization\tDisk MB/s\tTape MB/s")
	for _, g := range order {
		fmt.Fprintf(w, "%s\t\t\t\t\n", g)
		for _, s := range groups[g] {
			fmt.Fprintf(w, "  %s\t%s\t%.0f%%\t%.2f\t%.2f\n",
				s.Name, FormatDuration(s.Elapsed()), 100*s.CPUUtil(), s.DiskMBps(), s.TapeMBps())
		}
	}
	w.Flush()
	return b.String()
}
