package bench

import (
	"context"
	"testing"
)

// Shape tests: the paper's qualitative conclusions, asserted with
// generous margins so they hold across seeds. These are the
// reproduction's contract — if a model change breaks one of these, the
// repo no longer reproduces the paper.

func shapeCfg() Config {
	cfg := DefaultConfig()
	cfg.DataMB = 24
	cfg.AgeRounds = 4
	return cfg
}

func TestShapeBasic(t *testing.T) {
	res, err := RunBasic(context.Background(), shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	lb, lr := res.LogicalBackup, res.LogicalRestore
	pb, pr := res.PhysicalBackup, res.PhysicalRestore

	// §5.3: "physical backup and restore ... can achieve much higher
	// throughput than logical backup and restore".
	if pb.MBps() <= lb.MBps() {
		t.Errorf("physical backup (%.2f) not faster than logical (%.2f)", pb.MBps(), lb.MBps())
	}
	if pr.MBps() <= lr.MBps() {
		t.Errorf("physical restore (%.2f) not faster than logical (%.2f)", pr.MBps(), lr.MBps())
	}
	// Table 2 note: "the significant difference in the restore
	// performance" — the restore gap exceeds the backup gap.
	backupGap := pb.MBps() / lb.MBps()
	restoreGap := pr.MBps() / lr.MBps()
	if restoreGap <= backupGap*0.9 {
		t.Errorf("restore gap (%.2fx) not larger than backup gap (%.2fx)", restoreGap, backupGap)
	}
	// Table 3: "logical dump consumes 5 times the CPU resources of its
	// physical counterpart" (we accept >= 3x), and "logical restore
	// consumes more than 3 times the CPU that physical restore does"
	// (we accept >= 2x). Compare per-byte CPU, not raw utilization.
	perByte := func(o OpResult) float64 {
		return o.CPUUtil / o.MBps()
	}
	if r := perByte(lb) / perByte(pb); r < 3 {
		t.Errorf("logical dump CPU/byte only %.1fx physical (want >= 3x)", r)
	}
	if r := perByte(lr) / perByte(pr); r < 2 {
		t.Errorf("logical restore CPU/byte only %.1fx physical (want >= 2x)", r)
	}
	// Both physical directions run near the tape streaming rate.
	if pb.MBps() < 6.5 || pr.MBps() < 6.5 {
		t.Errorf("physical path far from tape speed: dump %.2f, restore %.2f", pb.MBps(), pr.MBps())
	}
}

func TestShapeScaling(t *testing.T) {
	ctx := context.Background()
	pts, err := RunScaling(ctx, shapeCfg(), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	one, four := pts[0], pts[1]

	// §5.3: "The performance of physical dump/restore scales very
	// well" — at least 2.5x from 1 to 4 drives.
	if r := four.PhysGBph / one.PhysGBph; r < 2.5 {
		t.Errorf("physical backup scaled only %.2fx over 4 drives", r)
	}
	// "Logical dump/restore scales much more poorly": sub-linear, and
	// worse than physical.
	lr := four.LogicalGBph / one.LogicalGBph
	pr := four.PhysGBph / one.PhysGBph
	if lr >= pr {
		t.Errorf("logical scaled %.2fx >= physical %.2fx", lr, pr)
	}
	if lr > 3.6 {
		t.Errorf("logical scaling %.2fx suspiciously linear", lr)
	}
	// Per-tape efficiency: physical holds up, logical degrades
	// (paper: 27.6 vs 30.1 for physical, 17.4 vs 21 for logical).
	if four.PhysPer < one.PhysPer*0.75 {
		t.Errorf("physical per-tape rate collapsed: %.1f -> %.1f", one.PhysPer, four.PhysPer)
	}
	if four.LogicalPer >= one.LogicalPer {
		t.Errorf("logical per-tape rate did not degrade: %.1f -> %.1f", one.LogicalPer, four.LogicalPer)
	}
	// At 4 drives physical still beats logical by a wide margin
	// (paper: 110 vs 69.6 GB/h).
	if four.PhysGBph < four.LogicalGBph*1.2 {
		t.Errorf("4-drive physical (%.1f) not clearly ahead of logical (%.1f)",
			four.PhysGBph, four.LogicalGBph)
	}
	// CPU climbs with drives for logical (paper: 25% -> 90%).
	if four.LogicalCPU <= one.LogicalCPU {
		t.Errorf("logical CPU did not climb with drives: %.2f -> %.2f", one.LogicalCPU, four.LogicalCPU)
	}
}

func TestShapeAblationsDirections(t *testing.T) {
	ctx := context.Background()
	cfg := shapeCfg()
	cfg.DataMB = 16
	cfg.AgeRounds = 3

	nv, err := RunNVRAMAblation(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nv.Speedup() < 1.1 {
		t.Errorf("NVRAM bypass speedup %.2fx, want noticeable (>= 1.1x)", nv.Speedup())
	}
	ra, err := RunReadAheadAblation(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Speedup() < 1.3 {
		t.Errorf("read-ahead speedup %.2fx, want >= 1.3x", ra.Speedup())
	}
	cp, err := RunCopyAblation(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Copies cost CPU even when tape-limited throughput hides them.
	if cp.Baseline.CPUUtil <= cp.Variant.CPUUtil {
		t.Errorf("user-level copies did not raise CPU: %.2f vs %.2f",
			cp.Baseline.CPUUtil, cp.Variant.CPUUtil)
	}
}

func TestShapeIncrementalSizes(t *testing.T) {
	cfg := shapeCfg()
	cfg.DataMB = 16
	cfg.AgeRounds = 3
	res, err := RunIncremental(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~5% churn: both incrementals land well under a third of full.
	if res.IncrLogicalBytes*3 >= res.FullLogicalBytes {
		t.Errorf("logical incremental %d vs full %d", res.IncrLogicalBytes, res.FullLogicalBytes)
	}
	if res.IncrPhysicalBlocks*3 >= res.FullPhysicalBlocks {
		t.Errorf("physical incremental %d vs full %d blocks", res.IncrPhysicalBlocks, res.FullPhysicalBlocks)
	}
	// The physical incremental is the faster of the two per byte
	// moved: no Phase I mapping sweep.
	logicalRate := float64(res.IncrLogicalBytes) / res.IncrLogical.Elapsed.Seconds()
	physRate := float64(res.IncrPhysicalBlocks*4096) / res.IncrPhysical.Elapsed.Seconds()
	if physRate <= logicalRate {
		t.Errorf("incremental image (%.0f B/s) not faster than incremental dump (%.0f B/s)", physRate, logicalRate)
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	// The whole stack — workload, filesystem, simulator, devices — is
	// seeded and deterministic: two runs of the same experiment must
	// agree to the nanosecond of virtual time.
	cfg := shapeCfg()
	cfg.DataMB = 16
	cfg.AgeRounds = 2
	cfg.Verify = false
	a, err := RunBasic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBasic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, pair := range [][2]OpResult{
		{a.LogicalBackup, b.LogicalBackup},
		{a.LogicalRestore, b.LogicalRestore},
		{a.PhysicalBackup, b.PhysicalBackup},
		{a.PhysicalRestore, b.PhysicalRestore},
	} {
		if pair[0].Elapsed != pair[1].Elapsed || pair[0].Bytes != pair[1].Bytes {
			t.Errorf("op %d: run A (%v, %d bytes) != run B (%v, %d bytes)",
				i, pair[0].Elapsed, pair[0].Bytes, pair[1].Elapsed, pair[1].Bytes)
		}
	}
}
