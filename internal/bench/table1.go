package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// Table1 reproduces the paper's Table 1 ("Block states for incremental
// image dump") not as prose but by construction: it builds a
// filesystem exhibiting all four block states across two snapshots A
// and B, computes the incremental dump set with the production code
// path, and renders the observed outcome for each state.
func Table1() string {
	ctx := context.Background()
	fs, err := wafl.Mkfs(ctx, storage.NewMemDevice(2048), nil, wafl.Options{})
	if err != nil {
		return "Table 1: " + err.Error()
	}
	stable, _ := fs.WriteFile(ctx, "/stable", bytes.Repeat([]byte{1}, wafl.BlockSize), 0644)
	doomed, _ := fs.WriteFile(ctx, "/doomed", bytes.Repeat([]byte{2}, wafl.BlockSize), 0644)
	fs.CP(ctx)
	stablePbn, _ := fs.ActiveView().BlockAt(ctx, stable, 0)
	doomedPbn, _ := fs.ActiveView().BlockAt(ctx, doomed, 0)
	fs.CreateSnapshot(ctx, "A")
	fs.RemovePath(ctx, "/doomed")
	fresh, _ := fs.WriteFile(ctx, "/fresh", bytes.Repeat([]byte{3}, wafl.BlockSize), 0644)
	fs.CP(ctx)
	freshPbn, _ := fs.ActiveView().BlockAt(ctx, fresh, 0)
	fs.CreateSnapshot(ctx, "B")

	wordsA, _ := fs.SnapshotBlockMapWords(ctx, "A")
	wordsB, _ := fs.SnapshotBlockMapWords(ctx, "B")
	inc := physical.IncrementalBlocks(wordsB, wordsA)
	in := make(map[uint32]bool, len(inc))
	for _, b := range inc {
		in[b] = true
	}
	var freeBlock wafl.BlockNo
	for b := wafl.FsinfoReserved; b < len(wordsB); b++ {
		if wordsA[b] == 0 && wordsB[b] == 0 {
			freeBlock = wafl.BlockNo(b)
			break
		}
	}
	verdict := func(pbn wafl.BlockNo, want bool, label string) string {
		got := in[uint32(pbn)]
		mark := "OK"
		if got != want {
			mark = "MISMATCH"
		}
		action := "not dumped"
		if got {
			action = "included in incremental"
		}
		return fmt.Sprintf("%-4s %-36s %-26s [%s]", "", label, action, mark)
	}
	var b strings.Builder
	b.WriteString("Table 1: Block states for incremental image dump (verified by construction)\n")
	b.WriteString("A B\n")
	b.WriteString("0 0 " + verdict(freeBlock, false, "not in either snapshot")[4:] + "\n")
	b.WriteString("0 1 " + verdict(freshPbn, true, "newly written")[4:] + "\n")
	b.WriteString("1 0 " + verdict(doomedPbn, false, "deleted, no need to include")[4:] + "\n")
	b.WriteString("1 1 " + verdict(stablePbn, false, "needed, but not changed since full")[4:] + "\n")
	return b.String()
}
