package bench

import (
	"context"
	"testing"
)

func TestSmokeParallel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 32
	cfg.AgeRounds = 3
	for _, n := range []int{1, 2, 4} {
		res, err := RunParallel(context.Background(), cfg, n)
		if err != nil {
			t.Fatalf("drives=%d: %v", n, err)
		}
		t.Logf("drives=%d: LB=%.2f MB/s cpu=%.0f%% | LR=%.2f cpu=%.0f%% | PB=%.2f cpu=%.0f%% | PR=%.2f cpu=%.0f%%",
			n,
			res.LogicalBackup.MBps(), 100*res.LogicalBackup.CPUUtil,
			res.LogicalRestore.MBps(), 100*res.LogicalRestore.CPUUtil,
			res.PhysicalBackup.MBps(), 100*res.PhysicalBackup.CPUUtil,
			res.PhysicalRestore.MBps(), 100*res.PhysicalRestore.CPUUtil)
	}
}
