package bench

import "testing"

// TestServeBenchSmoke runs a scaled-down multi-tenant serve bench:
// every client must complete, tenants with equal shares must land a
// Jain fairness index at 1.0 (identical byte totals), and the
// scheduler must have actually queued someone (clients > drives).
func TestServeBenchSmoke(t *testing.T) {
	rep, err := RunServeBench(ServeConfig{
		Clients: 24, Tenants: 4, Drives: 3, Records: 16, RecordSize: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Fatalf("%d clients failed", rep.Failed)
	}
	if rep.JainIndex < 0.999 {
		t.Fatalf("Jain index %.4f under equal shares, want 1.0", rep.JainIndex)
	}
	if rep.PoolWaited == 0 {
		t.Fatal("no client ever waited with clients > drives")
	}
	if rep.HostSessions != 24 || len(rep.PerTenant) != 4 {
		t.Fatalf("sessions=%d tenants=%d", rep.HostSessions, len(rep.PerTenant))
	}
	want := int64(24 / 4 * 16 * (4 << 10))
	for _, row := range rep.PerTenant {
		if row.Bytes != want {
			t.Fatalf("tenant %s bytes %d, want %d", row.Tenant, row.Bytes, want)
		}
	}
	if rep.AggregateGBh <= 0 || rep.MakespanSec <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
}

// TestServeBenchTenantRateSkew rate-limits one tenant hard and checks
// the fairness index reflects the skew instead of papering over it.
func TestServeBenchTenantRateSkew(t *testing.T) {
	rep, err := RunServeBench(ServeConfig{
		Clients: 8, Tenants: 2, Drives: 8, Records: 32, RecordSize: 8 << 10,
		TenantRate: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both tenants finish the same byte total here (equal work), but
	// the rate limiter must have withheld acks along the way.
	if rep.Throttled == 0 {
		t.Fatal("tenant rate limit never throttled an ack")
	}
}
