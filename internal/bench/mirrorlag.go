package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mirror"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// MirrorPoint is one row of the replication experiment (§6 extension):
// how long the initial transfer and a steady-state incremental sync
// take over a link of the given bandwidth.
type MirrorPoint struct {
	LinkMBps    float64
	InitialSync time.Duration
	InitialBlk  int
	SteadySync  time.Duration
	SteadyBlk   int
}

// RunMirrorLag measures volume replication built on incremental image
// dumps across a sweep of link bandwidths: the initial sync moves the
// whole volume, the steady-state sync only the snapshot delta after a
// fixed slice of churn — the asymmetry that makes image-based
// mirroring practical over thin links.
func RunMirrorLag(ctx context.Context, cfg Config, linkMBps []float64) ([]MirrorPoint, error) {
	var out []MirrorPoint
	for _, rate := range linkMBps {
		f, err := buildFiler(ctx, cfg, "prod", 1, nil, nil)
		if err != nil {
			return nil, err
		}
		paths, err := workload.Generate(ctx, f.FS, workload.Spec{
			Seed: cfg.Seed, Files: cfg.DataMB << 20 / (64 << 10), DirFanout: 10,
			MeanFileSize: 64 << 10,
		})
		if err != nil {
			return nil, err
		}
		standby := storage.NewMemDevice(f.Vol.NumBlocks())
		link := mirror.NewLink(f.Env, "wan", rate*(1<<20), time.Millisecond)
		m := mirror.New(f.FS, f.Vol, standby, link, f.Config.PhysCosts)

		pt := MirrorPoint{LinkMBps: rate}
		var syncErr error
		run := func(into *time.Duration, blocks *int) {
			f.Env.Spawn("sync", func(p *sim.Proc) {
				c := sim.WithProc(ctx, p)
				start := p.Now()
				n, err := m.Sync(c)
				if err != nil {
					syncErr = err
					return
				}
				*into = time.Duration(p.Now() - start)
				*blocks = n
			})
			f.Env.Run()
		}
		run(&pt.InitialSync, &pt.InitialBlk)
		if syncErr != nil {
			return nil, fmt.Errorf("bench: initial mirror sync at %.1f MB/s: %w", rate, syncErr)
		}
		// Steady state: ~3% churn, then sync the delta.
		if _, err := workload.Age(ctx, f.FS, paths, workload.AgeSpec{
			Seed: cfg.Seed + 5, Rounds: 1, ChurnPerRound: len(paths) / 30,
			MeanFileSize: 64 << 10,
		}); err != nil {
			return nil, err
		}
		run(&pt.SteadySync, &pt.SteadyBlk)
		if syncErr != nil {
			return nil, fmt.Errorf("bench: steady mirror sync at %.1f MB/s: %w", rate, syncErr)
		}
		out = append(out, pt)
	}
	return out, nil
}
