package bench

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// AblationResult compares one operation run two ways.
type AblationResult struct {
	Name     string
	Baseline OpResult
	Variant  OpResult
}

// Speedup returns baseline-elapsed / variant-elapsed.
func (a *AblationResult) Speedup() float64 {
	if a.Variant.Elapsed <= 0 {
		return 0
	}
	return float64(a.Baseline.Elapsed) / float64(a.Variant.Elapsed)
}

// RunNVRAMAblation is ablation A1: the paper's footnote 2 observes that
// logical restore "goes through the file system and NVRAM" and that
// avoiding NVRAM "is in the works". Baseline: restore with NVRAM
// logging; variant: the same restore with logging off (a restart-safe
// restore can simply be re-run from tape).
func RunNVRAMAblation(ctx context.Context, cfg Config) (*AblationResult, error) {
	measure := func(bypass bool) (OpResult, error) {
		f, err := buildFiler(ctx, cfg, "eliot", 1, nil, nil)
		if err != nil {
			return OpResult{}, err
		}
		if err := populate(ctx, f, cfg, "", 0); err != nil {
			return OpResult{}, err
		}
		if err := dumpForRestore(ctx, f); err != nil {
			return OpResult{}, err
		}
		if err := f.Wipe(ctx); err != nil {
			return OpResult{}, err
		}
		if bypass {
			f.FS.SetNVRAMLogging(false)
		}
		meters := metersFor(f)
		rec := NewRecorder(meters)
		var rerr error
		var bytes int64
		f.Env.Spawn("restore", func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			stats, err := f.LogicalRestore(c, 0, "/", false, rec)
			if err != nil {
				rerr = err
				return
			}
			bytes = stats.BytesRead
		})
		f.Env.Run()
		if rerr != nil {
			return OpResult{}, rerr
		}
		name := "Logical restore through NVRAM"
		if bypass {
			name = "Logical restore bypassing NVRAM"
		}
		return summarize(name, rec, bytes), nil
	}
	base, err := measure(false)
	if err != nil {
		return nil, err
	}
	variant, err := measure(true)
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "A1: NVRAM bypass on logical restore", Baseline: base, Variant: variant}, nil
}

// RunReadAheadAblation is ablation A2: the paper notes "Network
// Appliance's dump generates its own read-ahead policy" (§3).
// Baseline: dump with read-ahead disabled (a stock filesystem policy
// fighting inode-order reads); variant: the dump engine's cross-file
// read-ahead.
func RunReadAheadAblation(ctx context.Context, cfg Config) (*AblationResult, error) {
	measure := func(readAhead int, name string) (OpResult, error) {
		f, err := buildFiler(ctx, cfg, "eliot", 1, nil, nil)
		if err != nil {
			return OpResult{}, err
		}
		if err := populate(ctx, f, cfg, "", 0); err != nil {
			return OpResult{}, err
		}
		if err := f.FS.CP(ctx); err != nil {
			return OpResult{}, err
		}
		meters := metersFor(f)
		rec := NewRecorder(meters)
		var derr error
		var bytes int64
		f.Env.Spawn("dump", func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, 0); err != nil {
				derr = err
				return
			}
			if err := f.FS.CreateSnapshot(c, "s"); err != nil {
				derr = err
				return
			}
			view, _ := f.FS.SnapshotView("s")
			rec.Begin("Dump")
			stats, err := dumpLevel(c, f, view, 0, 0, readAhead)
			if err != nil {
				derr = err
				return
			}
			rec.End()
			bytes = stats.BytesWritten
		})
		f.Env.Run()
		if derr != nil {
			return OpResult{}, derr
		}
		return summarize(name, rec, bytes), nil
	}
	base, err := measure(0, "Logical dump, no read-ahead")
	if err != nil {
		return nil, err
	}
	variant, err := measure(16, "Logical dump, dump-driven read-ahead")
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "A2: dump-driven read-ahead", Baseline: base, Variant: variant}, nil
}

// RunCopyAblation is ablation A3: the paper's dump is in-kernel with a
// "no-copy solution, in which data read from the file system is passed
// directly to the tape driver" (§3). Baseline: a user-level dump
// paying a per-block copy across the user/kernel boundary; variant:
// the zero-copy kernel path.
func RunCopyAblation(ctx context.Context, cfg Config) (*AblationResult, error) {
	measure := func(copyCost time.Duration, name string) (OpResult, error) {
		c2 := cfg
		prev := cfg.Tweak
		c2.Tweak = func(fc *core.FilerConfig) {
			fc.FSCosts.CopyBlock = copyCost
			if prev != nil {
				prev(fc)
			}
		}
		f, err := buildFiler(ctx, c2, "eliot", 1, nil, nil)
		if err != nil {
			return OpResult{}, err
		}
		if err := populate(ctx, f, c2, "", 0); err != nil {
			return OpResult{}, err
		}
		meters := metersFor(f)
		rec := NewRecorder(meters)
		var derr error
		var bytes int64
		f.Env.Spawn("dump", func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, 0); err != nil {
				derr = err
				return
			}
			stats, err := f.LogicalDump(c, 0, 0, "", "s", rec)
			if err != nil {
				derr = err
				return
			}
			bytes = stats.BytesWritten
		})
		f.Env.Run()
		if derr != nil {
			return OpResult{}, derr
		}
		return summarize(name, rec, bytes), nil
	}
	// A user/kernel boundary crossing plus copy cost ~100 µs per 4 KB
	// on a 500 MHz machine.
	base, err := measure(100*time.Microsecond, "Logical dump, user-level (copies)")
	if err != nil {
		return nil, err
	}
	variant, err := measure(0, "Logical dump, in-kernel (zero-copy)")
	if err != nil {
		return nil, err
	}
	return &AblationResult{Name: "A3: kernel integration (zero-copy)", Baseline: base, Variant: variant}, nil
}

// IncrementalResult measures the §6 extension: incremental image dumps
// versus incremental logical dumps after light churn, and versus their
// full counterparts.
type IncrementalResult struct {
	FullLogicalBytes, IncrLogicalBytes     int64
	FullPhysicalBlocks, IncrPhysicalBlocks int
	FullLogical, IncrLogical               OpResult
	FullPhysical, IncrPhysical             OpResult
}

// RunIncremental backs up a dataset fully with both strategies,
// applies ~5% churn, then takes a level-1 logical dump and an
// incremental image dump, reporting sizes and times.
func RunIncremental(ctx context.Context, cfg Config) (*IncrementalResult, error) {
	f, err := buildFiler(ctx, cfg, "eliot", 4, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := populate(ctx, f, cfg, "", 0); err != nil {
		return nil, err
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}
	res := &IncrementalResult{}
	meters := metersFor(f)

	runOp := func(name string, drive int, fn func(c context.Context, rec *Recorder) error) (OpResult, error) {
		rec := NewRecorder(meters)
		var opErr error
		f.Env.Spawn(name, func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, drive); err != nil {
				opErr = err
				return
			}
			rec.Begin(name)
			opErr = fn(c, rec)
			f.Tapes[drive].Flush(p)
			rec.End()
		})
		f.Env.Run()
		if opErr != nil {
			return OpResult{}, opErr
		}
		return summarize(name, rec, 0), nil
	}

	// Full dumps with both strategies.
	op, err := runOp("Full logical dump", 0, func(c context.Context, rec *Recorder) error {
		if err := f.FS.CreateSnapshot(c, "l0"); err != nil {
			return err
		}
		defer f.FS.DeleteSnapshot(c, "l0")
		view, _ := f.FS.SnapshotView("l0")
		stats, err := dumpLevel(c, f, view, 0, 0, 16)
		if err != nil {
			return err
		}
		res.FullLogicalBytes = stats.BytesWritten
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FullLogical = op

	op, err = runOp("Full image dump", 1, func(c context.Context, rec *Recorder) error {
		stats, err := f.ImageDump(c, 1, "img0", "")
		if err != nil {
			return err
		}
		res.FullPhysicalBlocks = stats.BlocksDumped
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.FullPhysical = op

	// ~5% churn.
	paths := []string{}
	d, err := workload.TreeDigest(ctx, f.FS.ActiveView(), "/")
	if err != nil {
		return nil, err
	}
	for p, e := range d {
		if e.Type == wafl.ModeReg {
			paths = append(paths, p)
		}
	}
	if _, err := workload.Age(ctx, f.FS, paths, workload.AgeSpec{
		Seed: cfg.Seed + 99, Rounds: 1, ChurnPerRound: len(paths) / 20, MeanFileSize: 64 << 10,
	}); err != nil {
		return nil, err
	}

	// Incrementals with both strategies.
	op, err = runOp("Incremental logical dump", 2, func(c context.Context, rec *Recorder) error {
		if err := f.FS.CreateSnapshot(c, "l1"); err != nil {
			return err
		}
		defer f.FS.DeleteSnapshot(c, "l1")
		view, _ := f.FS.SnapshotView("l1")
		stats, err := dumpLevel(c, f, view, 2, 1, 16)
		if err != nil {
			return err
		}
		res.IncrLogicalBytes = stats.BytesWritten
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.IncrLogical = op

	op, err = runOp("Incremental image dump", 3, func(c context.Context, rec *Recorder) error {
		stats, err := f.ImageDump(c, 3, "img1", "img0")
		if err != nil {
			return err
		}
		res.IncrPhysicalBlocks = stats.BlocksDumped
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.IncrPhysical = op
	return res, nil
}

// metersFor builds a Meters over a filer's resources.
func metersFor(f *core.Filer) *Meters {
	return &Meters{Env: f.Env, CPU: f.CPU, Vols: []*raid.Volume{f.Vol}, Tapes: f.Tapes}
}

// dumpLevel runs a logical dump at the given level and read-ahead.
func dumpLevel(ctx context.Context, f *core.Filer, view *wafl.View, drive, level, readAhead int) (*logical.DumpStats, error) {
	stats, err := logical.Dump(ctx, logical.DumpOptions{
		View: view, Level: level, Dates: f.Dates, FSID: f.Config.Name,
		Sink: f.Sink(ctx, drive), Label: "bench", ReadAhead: readAhead,
	})
	if err != nil {
		return nil, err
	}
	f.Tapes[drive].Flush(sim.ProcFrom(ctx))
	return stats, nil
}

// dumpForRestore writes a level-0 dump onto drive 0 so a restore can
// be measured on a wiped filesystem.
func dumpForRestore(ctx context.Context, f *core.Filer) error {
	var derr error
	f.Env.Spawn("prep-dump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if err := f.LoadTape(c, 0); err != nil {
			derr = err
			return
		}
		if _, err := f.LogicalDump(c, 0, 0, "", "prep", nil); err != nil {
			derr = err
		}
	})
	f.Env.Run()
	return derr
}
