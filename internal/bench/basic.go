package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// Config sizes an experiment. The paper ran 188 GB on 31 disks; we run
// the same code paths at laptop scale (tens of MB) — rates, ratios and
// utilizations are the comparison targets, not absolute hours.
type Config struct {
	// DataMB is the approximate dataset size in MiB.
	DataMB int
	// Seed drives the deterministic workload.
	Seed int64
	// AgeRounds is how much churn matures (fragments) the filesystem.
	AgeRounds int
	// Verify re-reads every restored tree and compares digests.
	Verify bool
	// Readers is the per-shard parallel reader count for the pipelined
	// dump engines in the Table 4/5 experiments; 0 means 3.
	Readers int
	// PipeDepth is the per-reader extent read-ahead depth of the
	// physical dump pipeline; 0 means 3. Depth 1 shows the spindle
	// plateau the read-ahead batching exists to break.
	PipeDepth int
	// Tweak, if set, adjusts the filer configuration (ablations).
	Tweak func(*core.FilerConfig)
}

// DefaultConfig returns the standard experiment scale.
func DefaultConfig() Config {
	return Config{DataMB: 48, Seed: 1999, AgeRounds: 6, Verify: true}
}

// readers/pipeDepth apply the Config defaults.
func (c Config) readers() int {
	if c.Readers > 0 {
		return c.Readers
	}
	return 3
}

func (c Config) pipeDepth() int {
	if c.PipeDepth > 0 {
		return c.PipeDepth
	}
	return 3
}

// buildFiler sizes a filer for cfg: the paper's home-volume shape
// (3 RAID groups × 10 data disks) with capacity ~4× the dataset.
func buildFiler(ctx context.Context, cfg Config, name string, drives int, env *sim.Env, cpu *sim.Station) (*core.Filer, error) {
	fc := core.DefaultConfig()
	fc.Name = name
	fc.Simulate = true
	fc.Env = env
	fc.CPU = cpu
	fc.TapeDrives = drives
	totalBlocks := cfg.DataMB << 20 / wafl.BlockSize * 4
	fc.BlocksPerDisk = totalBlocks / (fc.RaidGroups * fc.DataDisksPerGroup)
	if fc.BlocksPerDisk < 64 {
		fc.BlocksPerDisk = 64
	}
	if cfg.Tweak != nil {
		cfg.Tweak(&fc)
	}
	return core.NewFiler(ctx, fc)
}

// populate generates and ages cfg's dataset under prefix (the empty
// prefix fills the root). Population runs untimed: the experiment
// clock starts with the first measured operation.
func populate(ctx context.Context, f *core.Filer, cfg Config, prefix string, seedOff int64) error {
	// Mean file size matches the metadata-to-data ratio of the paper's
	// engineering dataset: directory mapping should cost a few percent
	// of the file pass, not a third of it.
	const mean = 64 << 10
	files := cfg.DataMB << 20 / mean
	spec := workload.Spec{
		Seed: cfg.Seed + seedOff, Files: files, DirFanout: 12,
		MeanFileSize: mean, Symlinks: files / 40, Hardlinks: files / 60,
		Prefix: prefix,
	}
	paths, err := workload.Generate(ctx, f.FS, spec)
	if err != nil {
		return err
	}
	_, err = workload.Age(ctx, f.FS, paths, workload.AgeSpec{
		Seed: cfg.Seed + seedOff + 7, Rounds: cfg.AgeRounds,
		ChurnPerRound: files / 3, MeanFileSize: mean, Prefix: prefix,
	})
	return err
}

// BasicResult is the outcome of the Table 2 + Table 3 experiment.
type BasicResult struct {
	DataBytes       int64 // active data at dump time
	LogicalBackup   OpResult
	LogicalRestore  OpResult
	PhysicalBackup  OpResult
	PhysicalRestore OpResult
}

// Ops returns the four rows in the paper's Table 2 order.
func (r *BasicResult) Ops() []OpResult {
	return []OpResult{r.LogicalBackup, r.LogicalRestore, r.PhysicalBackup, r.PhysicalRestore}
}

// RunBasic reproduces Tables 2 and 3: back up and restore a mature
// dataset with each strategy on a single tape drive, measuring
// elapsed time, throughput and per-stage CPU utilization.
func RunBasic(ctx context.Context, cfg Config) (*BasicResult, error) {
	f, err := buildFiler(ctx, cfg, "eliot", 2, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := populate(ctx, f, cfg, "", 0); err != nil {
		return nil, err
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}
	res := &BasicResult{DataBytes: int64(f.FS.UsedBlocks()) * wafl.BlockSize}

	var wantDigest map[string]workload.Entry
	if cfg.Verify {
		if wantDigest, err = workload.TreeDigest(ctx, f.FS.ActiveView(), "/"); err != nil {
			return nil, err
		}
	}

	meters := &Meters{Env: f.Env, CPU: f.CPU, Vols: []*raid.Volume{f.Vol}, Tapes: f.Tapes}

	// --- Logical backup to tape drive 0.
	recLB := NewRecorder(meters)
	var dumpErr error
	var dumpBytes int64
	f.Env.Spawn("logical-dump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if err := f.LoadTape(c, 0); err != nil {
			dumpErr = err
			return
		}
		recLB.Begin("Creating snapshot")
		if err := f.FS.CreateSnapshot(c, "ldump"); err != nil {
			dumpErr = err
			return
		}
		recLB.End()
		view, _ := f.FS.SnapshotView("ldump")
		stats, err := dumpLogical(c, f, view, 0, recLB)
		if err != nil {
			dumpErr = err
			return
		}
		dumpBytes = stats.BytesWritten
		recLB.Begin("Deleting snapshot")
		dumpErr = f.FS.DeleteSnapshot(c, "ldump")
		recLB.End()
	})
	f.Env.Run()
	if dumpErr != nil {
		return nil, fmt.Errorf("bench: logical dump: %w", dumpErr)
	}
	res.LogicalBackup = summarize("Logical Backup", recLB, dumpBytes)

	// --- Logical restore: wipe the filesystem and read the tape back.
	if err := f.Wipe(ctx); err != nil {
		return nil, err
	}
	recLR := NewRecorder(meters)
	var restErr error
	var restBytes int64
	f.Env.Spawn("logical-restore", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		stats, err := f.LogicalRestore(c, 0, "/", false, recLR)
		if err != nil {
			restErr = err
			return
		}
		restBytes = stats.BytesRead
	})
	f.Env.Run()
	if restErr != nil {
		return nil, fmt.Errorf("bench: logical restore: %w", restErr)
	}
	res.LogicalRestore = summarize("Logical Restore", recLR, restBytes)
	if cfg.Verify {
		got, err := workload.TreeDigest(ctx, f.FS.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: logical restore verification failed: %s", diffs[0])
		}
	}

	// --- Physical backup of the (restored) dataset to drive 1.
	recPB := NewRecorder(meters)
	var pbErr error
	var pbBytes int64
	f.Env.Spawn("image-dump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if err := f.LoadTape(c, 1); err != nil {
			pbErr = err
			return
		}
		recPB.Begin("Creating snapshot")
		if err := f.FS.CreateSnapshot(c, "idump"); err != nil {
			pbErr = err
			return
		}
		recPB.End()
		recPB.Begin("Dumping blocks")
		stats, err := physical.Dump(c, physical.DumpOptions{
			FS: f.FS, Vol: f.Vol, SnapName: "idump",
			Sink: f.Sink(c, 1), Costs: f.Config.PhysCosts,
		})
		if err != nil {
			pbErr = err
			return
		}
		f.Tapes[1].Flush(p)
		recPB.End()
		pbBytes = stats.BytesWritten
		recPB.Begin("Deleting snapshot")
		pbErr = f.FS.DeleteSnapshot(c, "idump")
		recPB.End()
	})
	f.Env.Run()
	if pbErr != nil {
		return nil, fmt.Errorf("bench: image dump: %w", pbErr)
	}
	res.PhysicalBackup = summarize("Physical Backup", recPB, pbBytes)

	// --- Physical restore to a fresh volume of the same geometry.
	target, err := raid.Build(f.Env, "target", raid.Config{
		Groups:            f.Config.RaidGroups,
		DataDisksPerGroup: f.Config.DataDisksPerGroup,
		BlocksPerDisk:     f.Config.BlocksPerDisk,
		DiskParams:        f.Config.DiskParams,
	})
	if err != nil {
		return nil, err
	}
	meters.Vols = append(meters.Vols, target)
	recPR := NewRecorder(meters)
	var prErr error
	var prBytes int64
	f.Env.Spawn("image-restore", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		recPR.Begin("Restoring blocks")
		stats, err := f.ImageRestore(c, 1, target, false)
		if err != nil {
			prErr = err
			return
		}
		target.Flush(c)
		recPR.End()
		prBytes = stats.BytesRead
	})
	f.Env.Run()
	if prErr != nil {
		return nil, fmt.Errorf("bench: image restore: %w", prErr)
	}
	res.PhysicalRestore = summarize("Physical Restore", recPR, prBytes)
	if cfg.Verify {
		restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: mounting image-restored volume: %w", err)
		}
		got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: image restore verification failed: %s", diffs[0])
		}
	}
	return res, nil
}

// dumpLogical runs a logical dump with the harness' standard options.
// A nil rec disables stage recording (a typed nil must not leak into
// the StageRecorder interface).
func dumpLogical(ctx context.Context, f *core.Filer, view *wafl.View, drive int, rec *Recorder) (*logical.DumpStats, error) {
	var stages logical.StageRecorder
	if rec != nil {
		stages = rec
	}
	stats, err := logical.Dump(ctx, logical.DumpOptions{
		View: view, Level: 0, Dates: f.Dates, FSID: f.Config.Name,
		Sink: f.Sink(ctx, drive), Label: "bench", ReadAhead: 16, Stages: stages,
	})
	if err != nil {
		return nil, err
	}
	f.Tapes[drive].Flush(sim.ProcFrom(ctx))
	return stats, nil
}
