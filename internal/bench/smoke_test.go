package bench

import (
	"context"
	"testing"
)

func TestSmokeBasic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 16
	cfg.AgeRounds = 3
	res, err := RunBasic(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range res.Ops() {
		t.Logf("%-18s elapsed=%v MBps=%.2f cpu=%.0f%%", op.Name, op.Elapsed, op.MBps(), 100*op.CPUUtil)
		for _, s := range op.Stages {
			t.Logf("    %-28s %v cpu=%.0f%% disk=%.2f tape=%.2f", s.Name, s.Elapsed(), 100*s.CPUUtil(), s.DiskMBps(), s.TapeMBps())
		}
	}
}
