package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/dumpfmt"
	"repro/internal/raid"
	"repro/internal/storage"
	"repro/internal/vdev"
)

// Fast-path micro-benchmarks: the bulk block I/O and record paths the
// data-path refactor optimizes, runnable outside `go test` so the CLI
// can emit machine-readable numbers (and pprof profiles) on demand.

// FastPathResult is one micro-benchmark's outcome.
type FastPathResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"alloc_bytes_per_op"`
}

// FastPathReport is what RunFastPath returns and WriteFastPathJSON
// serializes: the suite's results keyed by benchmark name.
type FastPathReport struct {
	Results []FastPathResult `json:"results"`
}

func resultOf(name string, r testing.BenchmarkResult) FastPathResult {
	res := FastPathResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		res.MBPerSec = float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	return res
}

const fpRun = 512 // blocks per run, matching the image-dump run size

// RunFastPath executes the fast-path suite with the standard benchmark
// driver and returns the results. It covers each layer of the bulk
// path: raw memory device, simulated disk, RAID volume (read and
// write) and the dump record writer.
func RunFastPath() *FastPathReport {
	rep := &FastPathReport{}
	add := func(name string, fn func(b *testing.B)) {
		rep.Results = append(rep.Results, resultOf(name, testing.Benchmark(fn)))
	}
	add("MemRunRead", benchMemRunRead)
	add("DiskRunRead", benchDiskRunRead)
	add("RaidRunRead", benchRaidRunRead)
	add("RaidRunWrite", benchRaidRunWrite)
	add("RecordWrite", benchRecordWrite)
	return rep
}

// WriteFastPathJSON runs the suite and writes the report to path.
func (rep *FastPathReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0644)
}

// ReadFastPathJSON loads a committed baseline report.
func ReadFastPathJSON(path string) (*FastPathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &FastPathReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return rep, nil
}

// Compare diffs cur against the baseline and returns one line per
// regression: a benchmark slower than base by more than tol (0.15 =
// 15%), an allocation count or footprint that grew past the same
// tolerance, allocations appearing on a previously allocation-free
// path, or a baseline benchmark missing from the current run. An empty
// slice means the fast path held.
func Compare(base, cur *FastPathReport, tol float64) []string {
	byName := make(map[string]FastPathResult, len(cur.Results))
	for _, r := range cur.Results {
		byName[r.Name] = r
	}
	var regressions []string
	for _, b := range base.Results {
		c, ok := byName[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from current run", b.Name))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.0f ns/op vs baseline %.0f (+%.0f%%, tolerance %.0f%%)",
				b.Name, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*tol))
		}
		// Allocation regressions: a zero-alloc baseline is a hard
		// contract (the whole point of the pooled run path); a nonzero
		// one gets the same relative tolerance as time.
		exceeded := func(cv, bv int64) bool {
			if bv == 0 {
				return cv > 0
			}
			return float64(cv) > float64(bv)*(1+tol)
		}
		if exceeded(c.AllocsPerOp, b.AllocsPerOp) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d", b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
		if exceeded(c.BytesPerOp, b.BytesPerOp) {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d alloc bytes/op vs baseline %d", b.Name, c.BytesPerOp, b.BytesPerOp))
		}
	}
	return regressions
}

func benchMemRunRead(b *testing.B) {
	const nblocks = 4096
	d := storage.NewMemDevice(nblocks)
	ctx := context.Background()
	buf := make([]byte, fpRun*storage.BlockSize)
	for bno := 0; bno+fpRun <= nblocks; bno += fpRun {
		if err := d.WriteRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(fpRun * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+fpRun > nblocks {
			bno = 0
		}
		if err := d.ReadRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
		bno += fpRun
	}
}

func benchDiskRunRead(b *testing.B) {
	const nblocks = 8192
	d := vdev.New(nil, "bench", nblocks, vdev.DefaultParams())
	ctx := context.Background()
	buf := make([]byte, fpRun*storage.BlockSize)
	for bno := 0; bno+fpRun <= nblocks; bno += fpRun {
		if err := d.WriteRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(fpRun * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+fpRun > nblocks {
			bno = 0
		}
		if err := d.ReadRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
		bno += fpRun
	}
}

func fastPathVolume(b *testing.B) *raid.Volume {
	v, err := raid.Build(nil, "bench", raid.Config{
		Groups:            2,
		DataDisksPerGroup: 4,
		BlocksPerDisk:     4096,
		DiskParams:        vdev.DefaultParams(),
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	buf := make([]byte, fpRun*storage.BlockSize)
	for bno := 0; bno+fpRun <= v.NumBlocks(); bno += fpRun {
		if err := v.WriteRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
	}
	return v
}

func benchRaidRunRead(b *testing.B) {
	v := fastPathVolume(b)
	ctx := context.Background()
	buf := make([]byte, fpRun*storage.BlockSize)
	// Warm each group's de-striping scratch so the timed loop measures
	// the steady state: run reads allocate nothing once warm.
	for _, g := range v.Groups() {
		if err := g.ReadRun(ctx, 0, fpRun, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(fpRun * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+fpRun > v.NumBlocks() {
			bno = 0
		}
		if err := v.ReadRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
		bno += fpRun
	}
}

func benchRaidRunWrite(b *testing.B) {
	v := fastPathVolume(b)
	ctx := context.Background()
	buf := make([]byte, fpRun*storage.BlockSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	b.SetBytes(fpRun * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+fpRun > v.NumBlocks() {
			bno = 0
		}
		if err := v.WriteRun(ctx, bno, fpRun, buf); err != nil {
			b.Fatal(err)
		}
		bno += fpRun
	}
}

type discardSink struct{}

func (discardSink) WriteRecord(data []byte) error { return nil }
func (discardSink) NextVolume() error             { return nil }

func benchRecordWrite(b *testing.B) {
	w, err := dumpfmt.NewWriter(discardSink{}, "bench", 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	seg := make([]byte, dumpfmt.TPBSize)
	addrs := []byte{1, 1, 1, 1}
	b.SetBytes(5 * dumpfmt.TPBSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := dumpfmt.Header{Type: dumpfmt.TSInode, Inumber: 42, Count: 4, Addrs: addrs,
			Dinode: dumpfmt.DumpInode{Mode: 0100644, Size: 4096}}
		if err := w.WriteHeader(&h); err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if err := w.WriteSegment(seg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Format renders the report the way `go test -bench` would, one line
// per benchmark.
func (rep *FastPathReport) Format() string {
	out := ""
	for _, r := range rep.Results {
		out += fmt.Sprintf("%-14s %10d %12.0f ns/op %10.1f MB/s %6d B/op %4d allocs/op\n",
			r.Name, r.N, r.NsPerOp, r.MBPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	return out
}
