package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/logical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// Chunk-layer benchmarks: the splitter micro-suite behind
// BENCH_chunk.json (a hard regression contract, like the fast-path
// report) and the dedup-week experiment behind the EXPERIMENTS.md
// table.

// RunChunkBench executes the chunk micro-suite. ChunkSplit is the
// zero-copy path (one large Write, chunks emitted as subslices);
// ChunkSplitRecords feeds dump-sized 10 KB records, the shape the
// engines actually produce; ChunkWriterHits is full writer overhead
// (hash + lookup) on an all-hits stream — the dedup path that skips
// media entirely.
func RunChunkBench() *FastPathReport {
	rep := &FastPathReport{}
	add := func(name string, fn func(b *testing.B)) {
		rep.Results = append(rep.Results, resultOf(name, testing.Benchmark(fn)))
	}
	add("ChunkSplit", benchChunkSplit)
	add("ChunkSplitRecords", benchChunkSplitRecords)
	add("ChunkWriterHits", benchChunkWriterHits)
	return rep
}

func chunkBenchData(n int) []byte {
	rng := rand.New(rand.NewSource(42))
	buf := make([]byte, n)
	rng.Read(buf)
	return buf
}

func benchChunkSplit(b *testing.B) {
	data := chunkBenchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chunk.NewSplitter(chunk.DefaultParams())
		if err := s.Write(data, func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
		if err := s.Flush(func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

func benchChunkSplitRecords(b *testing.B) {
	data := chunkBenchData(4 << 20)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := chunk.NewSplitter(chunk.DefaultParams())
		for off := 0; off < len(data); off += chunk.RecordBytes {
			end := off + chunk.RecordBytes
			if end > len(data) {
				end = len(data)
			}
			if err := s.Write(data[off:end], func([]byte) error { return nil }); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Flush(func([]byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// benchIndex is a minimal map index for the writer benchmark.
type benchIndex map[chunk.Hash]chunk.Entry

func (ix benchIndex) LookupChunk(h chunk.Hash) (chunk.Entry, bool) { e, ok := ix[h]; return e, ok }
func (ix benchIndex) CommitChunks(es []chunk.Entry) error {
	for _, e := range es {
		ix[e.Hash] = e
	}
	return nil
}

func benchChunkWriterHits(b *testing.B) {
	data := chunkBenchData(4 << 20)
	ix := benchIndex{}
	media := chunk.NewMemMedia("bench")
	prime, err := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
	if err != nil {
		b.Fatal(err)
	}
	if err := prime.WriteRecord(data); err != nil {
		b.Fatal(err)
	}
	if _, err := prime.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := chunk.NewWriter(chunk.WriterOptions{Index: ix, Media: media})
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(data); off += chunk.RecordBytes {
			end := off + chunk.RecordBytes
			if end > len(data) {
				end = len(data)
			}
			if err := w.WriteRecord(data[off:end]); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- dedup week ---------------------------------------------------------

// ChunkDayRow is one scheduled full in the dedup-week experiment.
type ChunkDayRow struct {
	Day        int     `json:"day"`
	LogicalMB  float64 `json:"logical_mb"`
	AddedMB    float64 `json:"added_mb"` // unique bytes this full stored
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	Rewrites   int64   `json:"rewrites"`
	DumpSimSec float64 `json:"dump_sim_sec"`
}

// ChunkWeekReport is the dedup-week outcome: a scheduled week of
// level-0 fulls over a mostly-unchanged volume, plus the restore
// tradeoff that motivates reverse dedup.
type ChunkWeekReport struct {
	Reverse      bool          `json:"reverse"`
	Days         []ChunkDayRow `json:"days"`
	LogicalBytes int64         `json:"logical_bytes"`
	UniqueBytes  int64         `json:"unique_bytes"` // live chunk-store bytes after the week
	DedupRatio   float64       `json:"dedup_ratio"`

	RestoreLatestSec   float64 `json:"restore_latest_sim_sec"`
	RestoreOldestSec   float64 `json:"restore_oldest_sim_sec"`
	BaselineRestoreSec float64 `json:"baseline_restore_sim_sec"` // non-dedup streaming restore
	LatestVsBaseline   float64 `json:"latest_vs_baseline"`       // >1 = slower than streaming
}

// WriteJSON serializes the report.
func (r *ChunkWeekReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// RunChunkWeek schedules a week of daily level-0 logical fulls through
// the chunk layer onto a simulated tape library, with light churn
// between days. Drive 0 carries the dedup'd chunk stream; drive 1
// takes one conventional (non-dedup) full of the final day as the
// streaming-restore baseline. All times are simulated tape/CPU time.
func RunChunkWeek(ctx context.Context, cfg Config, reverse bool) (*ChunkWeekReport, error) {
	f, err := buildFiler(ctx, cfg, "chunkweek", 2, nil, nil)
	if err != nil {
		return nil, err
	}
	const mean = 64 << 10
	files := cfg.DataMB << 20 / mean
	paths, err := workload.Generate(ctx, f.FS, workload.Spec{
		Seed: cfg.Seed, Files: files, DirFanout: 12, MeanFileSize: mean,
	})
	if err != nil {
		return nil, err
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}

	cat, err := catalog.Open(&catalog.MemStore{})
	if err != nil {
		return nil, err
	}
	media := chunk.NewDriveMedia(f.Tapes[0], nil)
	rep := &ChunkWeekReport{Reverse: reverse}

	manifests := make([]chunk.Manifest, 0, 7)
	for day := 1; day <= 7; day++ {
		if day > 1 {
			// Mostly-unchanged volume: ~2% of files churn per day.
			if paths, err = workload.Age(ctx, f.FS, paths, workload.AgeSpec{
				Seed: cfg.Seed + int64(day), Rounds: 1,
				ChurnPerRound: 1 + files/50, MeanFileSize: mean,
			}); err != nil {
				return nil, err
			}
			if err := f.FS.CP(ctx); err != nil {
				return nil, err
			}
		}
		snap := fmt.Sprintf("day%d", day)
		if err := f.FS.CreateSnapshot(ctx, snap); err != nil {
			return nil, err
		}
		var dumpErr error
		f.Env.Spawn(snap, func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			media.Proc = p
			// Each full gets its own cartridge, as a scheduler would
			// rotate media; restore-of-latest then mounts one volume and
			// streams instead of spacing over older sets.
			if dumpErr = media.NextVolume(); dumpErr != nil {
				return
			}
			start := p.Now()
			view, err := f.FS.SnapshotView(snap)
			if err != nil {
				dumpErr = err
				return
			}
			w, err := chunk.NewWriter(chunk.WriterOptions{
				Index: cat, Media: media, Reverse: reverse,
				Ctx: c, Engine: "logical",
			})
			if err != nil {
				dumpErr = err
				return
			}
			if _, err := logical.Dump(c, logical.DumpOptions{
				View: view, Label: snap, FSID: "chunkweek",
				ReadAhead: 16, Sink: w,
			}); err != nil {
				dumpErr = err
				return
			}
			m, err := w.Close()
			if err != nil {
				dumpErr = err
				return
			}
			id, err := cat.AppendDumpSet(catalog.DumpSet{
				Engine: catalog.Logical, FSID: "chunkweek", Snap: snap,
				Date: int64(day), Bytes: m.RawBytes,
				Media: []catalog.MediaRef{{Volume: f.Tapes[0].Loaded().Label}},
			})
			if err != nil {
				dumpErr = err
				return
			}
			if dumpErr = cat.AppendManifest(id, m); dumpErr != nil {
				return
			}
			ws := w.Stats()
			manifests = append(manifests, m)
			rep.Days = append(rep.Days, ChunkDayRow{
				Day:        day,
				LogicalMB:  float64(m.RawBytes) / (1 << 20),
				AddedMB:    float64(ws.StoredBytes) / (1 << 20),
				Hits:       ws.Hits,
				Misses:     ws.Misses,
				Rewrites:   ws.Rewrites,
				DumpSimSec: (p.Now() - start).Seconds(),
			})
			rep.LogicalBytes += m.RawBytes
		})
		f.Env.Run()
		if dumpErr != nil {
			return nil, fmt.Errorf("bench: dedup week day %d: %w", day, dumpErr)
		}
	}
	_, rep.UniqueBytes, _ = cat.ChunkStats()
	if rep.UniqueBytes > 0 {
		rep.DedupRatio = float64(rep.LogicalBytes) / float64(rep.UniqueBytes)
	}

	// Restore-of-latest vs restore-of-oldest through the chunk layer.
	restoreSimSec := func(name string, m chunk.Manifest) (float64, error) {
		var sec float64
		var rerr error
		f.Env.Spawn(name, func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			media.Proc = p
			dst, err := wafl.Mkfs(c, storage.NewMemDevice(f.Vol.NumBlocks()), nil, wafl.Options{})
			if err != nil {
				rerr = err
				return
			}
			start := p.Now()
			if _, err := logical.Restore(c, logical.RestoreOptions{
				FS: dst, Source: chunk.NewReader(cat, media, m),
				KernelIntegrated: true,
			}); err != nil {
				rerr = err
				return
			}
			sec = (p.Now() - start).Seconds()
		})
		f.Env.Run()
		return sec, rerr
	}
	if rep.RestoreLatestSec, err = restoreSimSec("restore-latest", manifests[len(manifests)-1]); err != nil {
		return nil, err
	}
	if rep.RestoreOldestSec, err = restoreSimSec("restore-oldest", manifests[0]); err != nil {
		return nil, err
	}

	// Non-dedup baseline: one conventional full of the final day to
	// drive 1, restored as a straight stream.
	var baseErr error
	f.Env.Spawn("baseline", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		if baseErr = f.LoadTape(c, 1); baseErr != nil {
			return
		}
		view, err := f.FS.SnapshotView("day7")
		if err != nil {
			baseErr = err
			return
		}
		if _, err := logical.Dump(c, logical.DumpOptions{
			View: view, Label: "day7-raw", FSID: "chunkweek",
			ReadAhead: 16, Sink: f.Sink(c, 1),
		}); err != nil {
			baseErr = err
			return
		}
		f.Tapes[1].Flush(p)
		dst, err := wafl.Mkfs(c, storage.NewMemDevice(f.Vol.NumBlocks()), nil, wafl.Options{})
		if err != nil {
			baseErr = err
			return
		}
		f.Tapes[1].Rewind(p)
		start := p.Now()
		if _, err := logical.Restore(c, logical.RestoreOptions{
			FS: dst, Source: f.Source(c, 1), KernelIntegrated: true,
		}); err != nil {
			baseErr = err
			return
		}
		rep.BaselineRestoreSec = (p.Now() - start).Seconds()
	})
	f.Env.Run()
	if baseErr != nil {
		return nil, fmt.Errorf("bench: dedup week baseline: %w", baseErr)
	}
	if rep.BaselineRestoreSec > 0 {
		rep.LatestVsBaseline = rep.RestoreLatestSec / rep.BaselineRestoreSec
	}
	return rep, nil
}
