package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dumpfmt"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// ParallelResult is the outcome of a Table 4/5-style experiment:
// stage rows for each of the four operations, aggregated across the
// parallel streams.
type ParallelResult struct {
	Drives    int
	DataBytes int64

	LogicalBackup   OpResult
	LogicalRestore  OpResult
	PhysicalBackup  OpResult
	PhysicalRestore OpResult

	// Merged stage windows for the Table 4/5 layout.
	LogicalBackupStages   []*Stage
	LogicalRestoreStages  []*Stage
	PhysicalBackupStages  []*Stage
	PhysicalRestoreStages []*Stage
}

// RunParallel reproduces Tables 4 (drives=2) and 5 (drives=4) from a
// single invocation per operation: logical.Dump shards its Phase IV
// file list and physical.Dump its block set across `drives` sinks,
// each shard riding its own reader/writer pipeline, and the parallel
// physical restore applies all the shard streams in one call. The
// paper could not do this for dump ("we cannot use multiple tape
// devices in parallel for a single dump due to the strictly linear
// format"); the sharded stream set removes that limit.
func RunParallel(ctx context.Context, cfg Config, drives int) (*ParallelResult, error) {
	if drives < 1 {
		return nil, fmt.Errorf("bench: need at least one drive")
	}
	f, err := buildFiler(ctx, cfg, "eliot", 2*drives, nil, nil)
	if err != nil {
		return nil, err
	}
	if err := populate(ctx, f, cfg, "", 0); err != nil {
		return nil, err
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}
	res := &ParallelResult{Drives: drives, DataBytes: int64(f.FS.UsedBlocks()) * wafl.BlockSize}

	var wantDigest map[string]workload.Entry
	if cfg.Verify {
		if wantDigest, err = workload.TreeDigest(ctx, f.FS.ActiveView(), "/"); err != nil {
			return nil, err
		}
	}
	meters := &Meters{Env: f.Env, CPU: f.CPU, Vols: []*raid.Volume{f.Vol}, Tapes: f.Tapes}

	// --- Parallel logical backup: ONE dump call drives all the tapes
	// (drives 0..drives-1), sharding the file list internally.
	if err := f.FS.CreateSnapshot(ctx, "ldump"); err != nil {
		return nil, err
	}
	view, _ := f.FS.SnapshotView("ldump")
	recLB := NewRecorder(meters)
	var lbErr error
	var lbBytes int64
	f.Env.Spawn("ldump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		sinks := make([]dumpfmt.Sink, drives)
		for i := range sinks {
			if lbErr = f.LoadTape(c, i); lbErr != nil {
				return
			}
			sinks[i] = f.Sink(c, i)
		}
		stats, err := logical.Dump(c, logical.DumpOptions{
			View: view, Level: 0, Dates: f.Dates, FSID: "eliot",
			Sinks: sinks, Label: "par", ReadAhead: 16,
			Readers: cfg.readers(), Stages: recLB,
		})
		if err != nil {
			lbErr = err
			return
		}
		for i := 0; i < drives; i++ {
			f.Tapes[i].Flush(p)
		}
		lbBytes = stats.BytesWritten
	})
	f.Env.Run()
	if lbErr != nil {
		return nil, fmt.Errorf("bench: parallel logical dump: %w", lbErr)
	}
	if err := f.FS.DeleteSnapshot(ctx, "ldump"); err != nil {
		return nil, err
	}
	res.LogicalBackupStages = recLB.Stages
	res.LogicalBackup = summarize("Logical Backup", recLB, lbBytes)

	// --- Parallel logical restore: wipe, then one restore per shard
	// stream. Stream 0 goes first alone — every stream carries the full
	// directory set, so its directory pass builds the whole skeleton
	// and the concurrent siblings only map existing directories (their
	// file slices are disjoint, so no name is created twice).
	if err := f.Wipe(ctx); err != nil {
		return nil, err
	}
	recs := make([]*Recorder, drives)
	errs := make([]error, drives)
	var bytesTotal int64
	for i := 0; i < drives; i++ {
		recs[i] = NewRecorder(meters)
	}
	restoreStream := func(i int) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			stats, err := f.LogicalRestore(c, i, "/", false, recs[i])
			if err != nil {
				errs[i] = err
				return
			}
			bytesTotal += stats.BytesRead
		}
	}
	f.Env.Spawn("lrest0", restoreStream(0))
	f.Env.Run()
	if errs[0] != nil {
		return nil, fmt.Errorf("bench: parallel logical restore: %w", errs[0])
	}
	for i := 1; i < drives; i++ {
		f.Env.Spawn(fmt.Sprintf("lrest%d", i), restoreStream(i))
	}
	f.Env.Run()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("bench: parallel logical restore: %w", e)
		}
	}
	res.LogicalRestoreStages = mergeStages(recs)
	res.LogicalRestore = opFromStages("Logical Restore", res.LogicalRestoreStages, bytesTotal)
	if cfg.Verify {
		got, err := workload.TreeDigest(ctx, f.FS.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: parallel logical restore verification: %s", diffs[0])
		}
	}

	// --- Parallel physical backup: ONE dump call shards the block set
	// across drives drives..2*drives-1, with read-ahead batching on the
	// spindles.
	if err := f.FS.CreateSnapshot(ctx, "idump"); err != nil {
		return nil, err
	}
	recPB := NewRecorder(meters)
	var pbErr error
	var pbBytes int64
	f.Env.Spawn("idump", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		sinks := make([]physical.Sink, drives)
		for i := range sinks {
			if pbErr = f.LoadTape(c, drives+i); pbErr != nil {
				return
			}
			sinks[i] = f.Sink(c, drives+i)
		}
		recPB.Begin("Dumping blocks")
		stats, err := physical.Dump(c, physical.DumpOptions{
			FS: f.FS, Vol: f.Vol, SnapName: "idump",
			Sinks: sinks, Costs: f.Config.PhysCosts,
			Readers: cfg.readers(), ReadAhead: cfg.pipeDepth(),
		})
		if err != nil {
			pbErr = err
			return
		}
		for i := 0; i < drives; i++ {
			f.Tapes[drives+i].Flush(p)
		}
		recPB.End()
		pbBytes = stats.BytesWritten
	})
	f.Env.Run()
	if pbErr != nil {
		return nil, fmt.Errorf("bench: parallel image dump: %w", pbErr)
	}
	res.PhysicalBackupStages = recPB.Stages
	res.PhysicalBackup = summarize("Physical Backup", recPB, pbBytes)

	// --- Parallel physical restore: ONE call applies all the shard
	// streams onto a fresh volume.
	target, err := raid.Build(f.Env, "target", raid.Config{
		Groups:            f.Config.RaidGroups,
		DataDisksPerGroup: f.Config.DataDisksPerGroup,
		BlocksPerDisk:     f.Config.BlocksPerDisk,
		DiskParams:        f.Config.DiskParams,
	})
	if err != nil {
		return nil, err
	}
	meters.Vols = append(meters.Vols, target)
	recPR := NewRecorder(meters)
	var prErr error
	var prBytes int64
	f.Env.Spawn("irest", func(p *sim.Proc) {
		c := sim.WithProc(ctx, p)
		srcs := make([]physical.Source, drives)
		for i := range srcs {
			f.Tapes[drives+i].Rewind(p)
			srcs[i] = f.Source(c, drives+i)
		}
		recPR.Begin("Restoring blocks")
		stats, err := physical.Restore(c, physical.RestoreOptions{
			Vol: target, Sources: srcs, Costs: f.Config.PhysCosts,
		})
		if err != nil {
			prErr = err
			return
		}
		target.Flush(c)
		recPR.End()
		prBytes = stats.BytesRead
	})
	f.Env.Run()
	if prErr != nil {
		return nil, fmt.Errorf("bench: parallel image restore: %w", prErr)
	}
	res.PhysicalRestoreStages = recPR.Stages
	res.PhysicalRestore = summarize("Physical Restore", recPR, prBytes)
	if cfg.Verify {
		restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: mounting sharded image restore: %w", err)
		}
		got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: sharded image restore verification: %s", diffs[0])
		}
	}
	return res, nil
}

// opFromStages builds an OpResult over merged stage windows.
func opFromStages(name string, stages []*Stage, bytes int64) OpResult {
	if len(stages) == 0 {
		return OpResult{Name: name, Bytes: bytes}
	}
	total := Stage{Begin: stages[0].Begin, End: stages[0].End}
	for _, s := range stages[1:] {
		if s.Begin.T < total.Begin.T {
			total.Begin = s.Begin
		}
		if s.End.T > total.End.T {
			total.End = s.End
		}
	}
	return OpResult{
		Name:    name,
		Elapsed: total.Elapsed(),
		Bytes:   bytes,
		Stages:  stages,
		CPUUtil: total.CPUUtil(),
	}
}

// ConcurrentVolumesResult reproduces §5.1's observation that dumping
// two volumes concurrently to separate drives does not slow either
// down ("each executed in exactly the same amount of time as they had
// when executing in isolation").
type ConcurrentVolumesResult struct {
	HomeIsolated, RlseIsolated     OpResult
	HomeConcurrent, RlseConcurrent OpResult
}

// RunConcurrentVolumes builds one filer head (one CPU) serving two
// volumes (home and rlse), measures a logical dump of each volume in
// isolation and then both concurrently.
func RunConcurrentVolumes(ctx context.Context, cfg Config) (*ConcurrentVolumesResult, error) {
	env := sim.NewEnv()
	cpu := sim.NewStation(env, "filer/cpu", 0)
	mk := func(name string, groups int, seed int64) (*core.Filer, error) {
		c := cfg
		c.Tweak = func(fc *core.FilerConfig) {
			fc.RaidGroups = groups
			if cfg.Tweak != nil {
				cfg.Tweak(fc)
			}
		}
		f, err := buildFiler(ctx, c, name, 1, env, cpu)
		if err != nil {
			return nil, err
		}
		if err := populate(ctx, f, c, "", seed); err != nil {
			return nil, err
		}
		return f, f.FS.CP(ctx)
	}
	home, err := mk("home", 3, 0)
	if err != nil {
		return nil, err
	}
	rlse, err := mk("rlse", 2, 500)
	if err != nil {
		return nil, err
	}

	dump := func(f *core.Filer, rec *Recorder, snap string, bytes *int64) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, 0); err != nil {
				return
			}
			if err := f.FS.CreateSnapshot(c, snap); err != nil {
				return
			}
			view, _ := f.FS.SnapshotView(snap)
			rec.Begin("Dump")
			stats, err := dumpLogical(c, f, view, 0, nil)
			if err != nil {
				return
			}
			*bytes = stats.BytesWritten
			rec.End()
			f.FS.DeleteSnapshot(c, snap)
		}
	}

	res := &ConcurrentVolumesResult{}
	mHome := &Meters{Env: env, CPU: cpu, Vols: []*raid.Volume{home.Vol}, Tapes: home.Tapes}
	mRlse := &Meters{Env: env, CPU: cpu, Vols: []*raid.Volume{rlse.Vol}, Tapes: rlse.Tapes}

	// Isolated runs.
	var bH, bR int64
	rec := NewRecorder(mHome)
	env.Spawn("home-iso", dump(home, rec, "iso", &bH))
	env.Run()
	res.HomeIsolated = summarize("home (isolated)", rec, bH)

	rec = NewRecorder(mRlse)
	env.Spawn("rlse-iso", dump(rlse, rec, "iso", &bR))
	env.Run()
	res.RlseIsolated = summarize("rlse (isolated)", rec, bR)

	// Concurrent run.
	recH, recR := NewRecorder(mHome), NewRecorder(mRlse)
	env.Spawn("home-con", dump(home, recH, "con", &bH))
	env.Spawn("rlse-con", dump(rlse, recR, "con", &bR))
	env.Run()
	res.HomeConcurrent = summarize("home (concurrent)", recH, bH)
	res.RlseConcurrent = summarize("rlse (concurrent)", recR, bR)
	return res, nil
}

// ScalingPoint is one row of the §5.2/§5.3 scaling summary.
type ScalingPoint struct {
	Drives          int     `json:"drives"`
	LogicalGBph     float64 `json:"logical_gbph"`
	PhysGBph        float64 `json:"physical_gbph"`
	LogicalPer      float64 `json:"logical_gbph_per_tape"`
	PhysPer         float64 `json:"physical_gbph_per_tape"`
	LogicalCPU      float64 `json:"logical_cpu_util"`
	PhysCPU         float64 `json:"physical_cpu_util"`
	LogicalTapeUtil float64 `json:"logical_tape_util"` // vs. drives × streaming rate
}

// ParallelReport is the machine-readable Tables 4–5 summary emitted
// by `backupctl bench -parallel`: one scaling row per drive count,
// every operation driven by a single parallel Dump/Restore invocation.
type ParallelReport struct {
	DataMB    int            `json:"data_mb"`
	Seed      int64          `json:"seed"`
	AgeRounds int            `json:"age_rounds"`
	Readers   int            `json:"readers"`
	PipeDepth int            `json:"pipe_depth"`
	Points    []ScalingPoint `json:"points"`
	// PhysSpeedup is aggregate physical dump throughput at the highest
	// drive count over the 1-drive rate — the scaling headline.
	PhysSpeedup float64 `json:"physical_speedup"`
	// LogicalSpeedup is the same ratio for the logical engine, which
	// the paper (and this reproduction) show going disk-limited.
	LogicalSpeedup float64 `json:"logical_speedup"`
}

// RunParallelReport runs the drive-count matrix and packages it for
// the committed BENCH_parallel.json.
func RunParallelReport(ctx context.Context, cfg Config, driveCounts []int) (*ParallelReport, error) {
	pts, err := RunScaling(ctx, cfg, driveCounts)
	if err != nil {
		return nil, err
	}
	rep := &ParallelReport{
		DataMB: cfg.DataMB, Seed: cfg.Seed, AgeRounds: cfg.AgeRounds,
		Readers: cfg.readers(), PipeDepth: cfg.pipeDepth(), Points: pts,
	}
	if len(pts) > 1 && pts[0].Drives == 1 {
		last := pts[len(pts)-1]
		rep.PhysSpeedup = last.PhysGBph / pts[0].PhysGBph
		rep.LogicalSpeedup = last.LogicalGBph / pts[0].LogicalGBph
	}
	return rep, nil
}

// WriteJSON writes the report to path.
func (rep *ParallelReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0644)
}

// Format renders the report as the Table 7-style scaling summary.
func (rep *ParallelReport) Format() string {
	out := fmt.Sprintf("Parallel scaling (%d MB, readers=%d, depth=%d)\n",
		rep.DataMB, rep.Readers, rep.PipeDepth)
	out += fmt.Sprintf("%-8s %-30s %-30s\n", "Drives", "Logical GB/h (per tape, CPU)", "Physical GB/h (per tape, CPU)")
	for _, p := range rep.Points {
		out += fmt.Sprintf("%-8d %6.1f (%5.1f, %3.0f%%)            %6.1f (%5.1f, %3.0f%%)\n",
			p.Drives, p.LogicalGBph, p.LogicalPer, 100*p.LogicalCPU,
			p.PhysGBph, p.PhysPer, 100*p.PhysCPU)
	}
	if rep.PhysSpeedup > 0 {
		out += fmt.Sprintf("physical speedup %.2fx, logical %.2fx over %d drives\n",
			rep.PhysSpeedup, rep.LogicalSpeedup, rep.Points[len(rep.Points)-1].Drives)
	}
	return out
}

// RunScaling sweeps 1, 2 and 4 drives and reports aggregate and
// per-tape backup throughput for both strategies — the paper's
// headline comparison (69.6 vs 110 GB/h at 4 drives).
func RunScaling(ctx context.Context, cfg Config, driveCounts []int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range driveCounts {
		r, err := RunParallel(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling at %d drives: %w", n, err)
		}
		p := ScalingPoint{
			Drives:      n,
			LogicalGBph: r.LogicalBackup.GBph(),
			PhysGBph:    r.PhysicalBackup.GBph(),
			LogicalCPU:  r.LogicalBackup.CPUUtil,
			PhysCPU:     r.PhysicalBackup.CPUUtil,
		}
		p.LogicalPer = p.LogicalGBph / float64(n)
		p.PhysPer = p.PhysGBph / float64(n)
		p.LogicalTapeUtil = r.LogicalBackup.MBps() / (8.5 * float64(n))
		out = append(out, p)
	}
	return out, nil
}
