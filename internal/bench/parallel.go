package bench

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/sim"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// ParallelResult is the outcome of a Table 4/5-style experiment:
// stage rows for each of the four operations, aggregated across the
// parallel streams.
type ParallelResult struct {
	Drives    int
	DataBytes int64

	LogicalBackup   OpResult
	LogicalRestore  OpResult
	PhysicalBackup  OpResult
	PhysicalRestore OpResult

	// Merged stage windows for the Table 4/5 layout.
	LogicalBackupStages   []*Stage
	LogicalRestoreStages  []*Stage
	PhysicalBackupStages  []*Stage
	PhysicalRestoreStages []*Stage
}

// RunParallel reproduces Tables 4 (drives=2) and 5 (drives=4): the
// volume is split into `drives` equal quota trees for logical dump
// ("we cannot use multiple tape devices in parallel for a single dump
// due to the strictly linear format"), while physical dump shards one
// volume's block set across the drives.
func RunParallel(ctx context.Context, cfg Config, drives int) (*ParallelResult, error) {
	if drives < 1 {
		return nil, fmt.Errorf("bench: need at least one drive")
	}
	f, err := buildFiler(ctx, cfg, "eliot", 2*drives, nil, nil)
	if err != nil {
		return nil, err
	}
	// One quota tree per drive, each with its own slice of the data.
	sub := cfg
	sub.DataMB = cfg.DataMB / drives
	for i := 0; i < drives; i++ {
		if err := populate(ctx, f, sub, fmt.Sprintf("/q%d", i), int64(i*101)); err != nil {
			return nil, err
		}
		ino, err := f.FS.ActiveView().Namei(ctx, fmt.Sprintf("/q%d", i))
		if err != nil {
			return nil, err
		}
		if err := f.FS.SetQtreeRoot(ctx, ino, uint32(i+1)); err != nil {
			return nil, err
		}
	}
	if err := f.FS.CP(ctx); err != nil {
		return nil, err
	}
	res := &ParallelResult{Drives: drives, DataBytes: int64(f.FS.UsedBlocks()) * wafl.BlockSize}

	var wantDigest map[string]workload.Entry
	if cfg.Verify {
		if wantDigest, err = workload.TreeDigest(ctx, f.FS.ActiveView(), "/"); err != nil {
			return nil, err
		}
	}
	meters := &Meters{Env: f.Env, CPU: f.CPU, Vols: []*raid.Volume{f.Vol}, Tapes: f.Tapes}

	// --- Parallel logical backup: one dump per qtree per drive.
	if err := f.FS.CreateSnapshot(ctx, "ldump"); err != nil {
		return nil, err
	}
	view, _ := f.FS.SnapshotView("ldump")
	recs := make([]*Recorder, drives)
	errs := make([]error, drives)
	var bytesTotal int64
	for i := 0; i < drives; i++ {
		i := i
		recs[i] = NewRecorder(meters)
		f.Env.Spawn(fmt.Sprintf("ldump%d", i), func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, i); err != nil {
				errs[i] = err
				return
			}
			stats, err := logical.Dump(c, logical.DumpOptions{
				View: view, Level: 0, Dates: f.Dates, FSID: fmt.Sprintf("q%d", i),
				Subtree: fmt.Sprintf("/q%d", i),
				Sink:    f.Sink(c, i), Label: fmt.Sprintf("q%d", i),
				ReadAhead: 16, Stages: recs[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			bytesTotal += stats.BytesWritten
			f.Tapes[i].Flush(p)
		})
	}
	f.Env.Run()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("bench: parallel logical dump: %w", e)
		}
	}
	if err := f.FS.DeleteSnapshot(ctx, "ldump"); err != nil {
		return nil, err
	}
	res.LogicalBackupStages = mergeStages(recs)
	res.LogicalBackup = opFromStages("Logical Backup", res.LogicalBackupStages, bytesTotal)

	// --- Parallel logical restore: wipe, then one restore per drive.
	if err := f.Wipe(ctx); err != nil {
		return nil, err
	}
	recs = make([]*Recorder, drives)
	errs = make([]error, drives)
	bytesTotal = 0
	for i := 0; i < drives; i++ {
		i := i
		recs[i] = NewRecorder(meters)
		f.Env.Spawn(fmt.Sprintf("lrest%d", i), func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			// Each subtree dump grafts back onto its own quota tree.
			stats, err := f.LogicalRestore(c, i, fmt.Sprintf("/q%d", i), false, recs[i])
			if err != nil {
				errs[i] = err
				return
			}
			bytesTotal += stats.BytesRead
		})
	}
	f.Env.Run()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("bench: parallel logical restore: %w", e)
		}
	}
	res.LogicalRestoreStages = mergeStages(recs)
	res.LogicalRestore = opFromStages("Logical Restore", res.LogicalRestoreStages, bytesTotal)
	if cfg.Verify {
		got, err := workload.TreeDigest(ctx, f.FS.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: parallel logical restore verification: %s", diffs[0])
		}
	}

	// --- Parallel physical backup: shard the block set across drives.
	if err := f.FS.CreateSnapshot(ctx, "idump"); err != nil {
		return nil, err
	}
	recs = make([]*Recorder, drives)
	errs = make([]error, drives)
	bytesTotal = 0
	for i := 0; i < drives; i++ {
		i := i
		recs[i] = NewRecorder(meters)
		f.Env.Spawn(fmt.Sprintf("idump%d", i), func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			drive := drives + i
			if err := f.LoadTape(c, drive); err != nil {
				errs[i] = err
				return
			}
			recs[i].Begin("Dumping blocks")
			stats, err := physical.Dump(c, physical.DumpOptions{
				FS: f.FS, Vol: f.Vol, SnapName: "idump",
				Sink: f.Sink(c, drive), Costs: f.Config.PhysCosts,
				Shard: i, Shards: drives,
			})
			if err != nil {
				errs[i] = err
				return
			}
			f.Tapes[drive].Flush(p)
			recs[i].End()
			bytesTotal += stats.BytesWritten
		})
	}
	f.Env.Run()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("bench: parallel image dump: %w", e)
		}
	}
	res.PhysicalBackupStages = mergeStages(recs)
	res.PhysicalBackup = opFromStages("Physical Backup", res.PhysicalBackupStages, bytesTotal)

	// --- Parallel physical restore: all shards onto one fresh volume.
	target, err := raid.Build(f.Env, "target", raid.Config{
		Groups:            f.Config.RaidGroups,
		DataDisksPerGroup: f.Config.DataDisksPerGroup,
		BlocksPerDisk:     f.Config.BlocksPerDisk,
		DiskParams:        f.Config.DiskParams,
	})
	if err != nil {
		return nil, err
	}
	meters.Vols = append(meters.Vols, target)
	recs = make([]*Recorder, drives)
	errs = make([]error, drives)
	bytesTotal = 0
	for i := 0; i < drives; i++ {
		i := i
		recs[i] = NewRecorder(meters)
		f.Env.Spawn(fmt.Sprintf("irest%d", i), func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			recs[i].Begin("Restoring blocks")
			stats, err := f.ImageRestore(c, drives+i, target, false)
			if err != nil {
				errs[i] = err
				return
			}
			target.Flush(c)
			recs[i].End()
			bytesTotal += stats.BytesRead
		})
	}
	f.Env.Run()
	for _, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("bench: parallel image restore: %w", e)
		}
	}
	res.PhysicalRestoreStages = mergeStages(recs)
	res.PhysicalRestore = opFromStages("Physical Restore", res.PhysicalRestoreStages, bytesTotal)
	if cfg.Verify {
		restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			return nil, fmt.Errorf("bench: mounting sharded image restore: %w", err)
		}
		got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
		if diffs := workload.DiffDigests(wantDigest, got); len(diffs) > 0 {
			return nil, fmt.Errorf("bench: sharded image restore verification: %s", diffs[0])
		}
	}
	return res, nil
}

// opFromStages builds an OpResult over merged stage windows.
func opFromStages(name string, stages []*Stage, bytes int64) OpResult {
	if len(stages) == 0 {
		return OpResult{Name: name, Bytes: bytes}
	}
	total := Stage{Begin: stages[0].Begin, End: stages[0].End}
	for _, s := range stages[1:] {
		if s.Begin.T < total.Begin.T {
			total.Begin = s.Begin
		}
		if s.End.T > total.End.T {
			total.End = s.End
		}
	}
	return OpResult{
		Name:    name,
		Elapsed: total.Elapsed(),
		Bytes:   bytes,
		Stages:  stages,
		CPUUtil: total.CPUUtil(),
	}
}

// ConcurrentVolumesResult reproduces §5.1's observation that dumping
// two volumes concurrently to separate drives does not slow either
// down ("each executed in exactly the same amount of time as they had
// when executing in isolation").
type ConcurrentVolumesResult struct {
	HomeIsolated, RlseIsolated     OpResult
	HomeConcurrent, RlseConcurrent OpResult
}

// RunConcurrentVolumes builds one filer head (one CPU) serving two
// volumes (home and rlse), measures a logical dump of each volume in
// isolation and then both concurrently.
func RunConcurrentVolumes(ctx context.Context, cfg Config) (*ConcurrentVolumesResult, error) {
	env := sim.NewEnv()
	cpu := sim.NewStation(env, "filer/cpu", 0)
	mk := func(name string, groups int, seed int64) (*core.Filer, error) {
		c := cfg
		c.Tweak = func(fc *core.FilerConfig) {
			fc.RaidGroups = groups
			if cfg.Tweak != nil {
				cfg.Tweak(fc)
			}
		}
		f, err := buildFiler(ctx, c, name, 1, env, cpu)
		if err != nil {
			return nil, err
		}
		if err := populate(ctx, f, c, "", seed); err != nil {
			return nil, err
		}
		return f, f.FS.CP(ctx)
	}
	home, err := mk("home", 3, 0)
	if err != nil {
		return nil, err
	}
	rlse, err := mk("rlse", 2, 500)
	if err != nil {
		return nil, err
	}

	dump := func(f *core.Filer, rec *Recorder, snap string, bytes *int64) func(p *sim.Proc) {
		return func(p *sim.Proc) {
			c := sim.WithProc(ctx, p)
			if err := f.LoadTape(c, 0); err != nil {
				return
			}
			if err := f.FS.CreateSnapshot(c, snap); err != nil {
				return
			}
			view, _ := f.FS.SnapshotView(snap)
			rec.Begin("Dump")
			stats, err := dumpLogical(c, f, view, 0, nil)
			if err != nil {
				return
			}
			*bytes = stats.BytesWritten
			rec.End()
			f.FS.DeleteSnapshot(c, snap)
		}
	}

	res := &ConcurrentVolumesResult{}
	mHome := &Meters{Env: env, CPU: cpu, Vols: []*raid.Volume{home.Vol}, Tapes: home.Tapes}
	mRlse := &Meters{Env: env, CPU: cpu, Vols: []*raid.Volume{rlse.Vol}, Tapes: rlse.Tapes}

	// Isolated runs.
	var bH, bR int64
	rec := NewRecorder(mHome)
	env.Spawn("home-iso", dump(home, rec, "iso", &bH))
	env.Run()
	res.HomeIsolated = summarize("home (isolated)", rec, bH)

	rec = NewRecorder(mRlse)
	env.Spawn("rlse-iso", dump(rlse, rec, "iso", &bR))
	env.Run()
	res.RlseIsolated = summarize("rlse (isolated)", rec, bR)

	// Concurrent run.
	recH, recR := NewRecorder(mHome), NewRecorder(mRlse)
	env.Spawn("home-con", dump(home, recH, "con", &bH))
	env.Spawn("rlse-con", dump(rlse, recR, "con", &bR))
	env.Run()
	res.HomeConcurrent = summarize("home (concurrent)", recH, bH)
	res.RlseConcurrent = summarize("rlse (concurrent)", recR, bR)
	return res, nil
}

// ScalingPoint is one row of the §5.2/§5.3 scaling summary.
type ScalingPoint struct {
	Drives                int
	LogicalGBph, PhysGBph float64
	LogicalPer, PhysPer   float64 // GB/h per tape
	LogicalCPU, PhysCPU   float64
	LogicalTapeUtil       float64 // vs. drives × streaming rate
}

// RunScaling sweeps 1, 2 and 4 drives and reports aggregate and
// per-tape backup throughput for both strategies — the paper's
// headline comparison (69.6 vs 110 GB/h at 4 drives).
func RunScaling(ctx context.Context, cfg Config, driveCounts []int) ([]ScalingPoint, error) {
	var out []ScalingPoint
	for _, n := range driveCounts {
		r, err := RunParallel(ctx, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("bench: scaling at %d drives: %w", n, err)
		}
		p := ScalingPoint{
			Drives:      n,
			LogicalGBph: r.LogicalBackup.GBph(),
			PhysGBph:    r.PhysicalBackup.GBph(),
			LogicalCPU:  r.LogicalBackup.CPUUtil,
			PhysCPU:     r.PhysicalBackup.CPUUtil,
		}
		p.LogicalPer = p.LogicalGBph / float64(n)
		p.PhysPer = p.PhysGBph / float64(n)
		p.LogicalTapeUtil = r.LogicalBackup.MBps() / (8.5 * float64(n))
		out = append(out, p)
	}
	return out, nil
}
