// Multi-tenant serve bench: hundreds of simulated-clock ndmp clients
// push concurrently through one session-registry host gated by a
// drive-pool scheduler, measuring aggregate throughput and cross-
// tenant fairness. The whole fleet runs on one sim.Env, so a run that
// models minutes of tape time finishes in milliseconds and is exactly
// reproducible.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/ndmp"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ServeConfig sizes a serve bench run.
type ServeConfig struct {
	Clients    int   // concurrent pushing sessions (default 100)
	Tenants    int   // tenants the clients round-robin across (default 4)
	Drives     int   // drive-pool slots (default 4)
	Records    int   // records per client (default 64)
	RecordSize int   // bytes per record (default 8 KiB)
	DriveRate  int64 // per-drive byte rate; 0 takes the default 4 MiB/s
	TenantRate int64 // per-tenant byte rate (0 = unlimited)
	Window     int   // client send window (0 = protocol default)
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Clients <= 0 {
		c.Clients = 100
	}
	if c.Tenants <= 0 {
		c.Tenants = 4
	}
	if c.Tenants > c.Clients {
		c.Tenants = c.Clients
	}
	if c.Drives <= 0 {
		c.Drives = 4
	}
	if c.Records <= 0 {
		c.Records = 64
	}
	if c.RecordSize <= 0 {
		c.RecordSize = 8 << 10
	}
	if c.DriveRate <= 0 {
		c.DriveRate = 4 << 20
	}
	return c
}

// ServeTenantRow is one tenant's share of a serve bench run.
type ServeTenantRow struct {
	Tenant      string  `json:"tenant"`
	Sessions    int     `json:"sessions"`
	Bytes       int64   `json:"bytes"`
	MeanTurnSec float64 `json:"mean_turnaround_sec"` // dial → close, virtual
	MaxTurnSec  float64 `json:"max_turnaround_sec"`
}

// ServeReport is the BENCH_serve.json schema.
type ServeReport struct {
	Clients      int              `json:"clients"`
	Tenants      int              `json:"tenants"`
	Drives       int              `json:"drives"`
	Records      int              `json:"records_per_client"`
	RecordSize   int              `json:"record_bytes"`
	TotalBytes   int64            `json:"total_bytes"`
	MakespanSec  float64          `json:"makespan_sec"` // virtual
	AggregateGBh float64          `json:"aggregate_gb_per_hour"`
	JainIndex    float64          `json:"jain_fairness_index"`
	Failed       int              `json:"failed_clients"`
	PerTenant    []ServeTenantRow `json:"per_tenant"`
	PoolGranted  int              `json:"pool_granted"`
	PoolWaited   int              `json:"pool_waited"`
	PoolRejected int              `json:"pool_rejected"`
	PoolExpired  int              `json:"pool_expired"`
	Throttled    int              `json:"host_throttled_acks"`
	HostSessions int              `json:"host_sessions_closed"`
	HostRecords  int64            `json:"host_records"`
}

// countSink discards stream bytes, keeping only their count — the
// bench measures the scheduler and session layers, not media I/O.
type countSink struct{ bytes int64 }

func (s *countSink) WriteRecord(rec []byte) error { s.bytes += int64(len(rec)); return nil }
func (s *countSink) NextVolume() error            { return nil }

// RunServeBench pushes cfg.Clients concurrent sessions, spread over
// cfg.Tenants tenants, through one host on a cfg.Drives drive pool.
// Every client must complete; Failed counts the ones that did not.
func RunServeBench(cfg ServeConfig) (*ServeReport, error) {
	cfg = cfg.withDefaults()
	env := sim.NewEnv()
	pool := sched.NewDrivePool(sched.DrivePoolConfig{
		Drives:      cfg.Drives,
		MaxQueue:    cfg.Clients, // every over-capacity client may wait
		Now:         env.Now,
		DriveRate:   cfg.DriveRate,
		DefaultRate: cfg.TenantRate,
		// Waiters poll at the client heartbeat interval; expire only
		// the ones that have genuinely stopped (crashed mid-wait).
		StaleAfter: 5 * time.Second,
	})
	host := ndmp.NewHost(func(ndmp.Hello) (ndmp.Sink, error) { return &countSink{}, nil })
	host.Gate = pool
	defer host.Close()

	type clientResult struct {
		tenant string
		bytes  int64
		turn   time.Duration
		err    error
	}
	results := make([]clientResult, cfg.Clients)
	rec := make([]byte, cfg.RecordSize)
	for i := range rec {
		rec[i] = byte(i)
	}
	var makespan time.Duration
	for i := 0; i < cfg.Clients; i++ {
		i := i
		tenant := fmt.Sprintf("tenant%02d", i%cfg.Tenants)
		l := transport.NewLink(transport.DefaultParams())
		// Each client link gets its own registry binding: data frames
		// carry only sequence numbers, so routing them to the right
		// session state lives in the per-connection binding.
		l.B().Attach(host.NewConn().HandleFrame)
		env.Spawn(fmt.Sprintf("client%03d", i), func(p *sim.Proc) {
			l.A().Bind(p)
			start := p.Now()
			res := clientResult{tenant: tenant}
			defer func() {
				res.turn = p.Now() - start
				if p.Now() > makespan {
					makespan = p.Now()
				}
				results[i] = res
			}()
			s, err := ndmp.Dial(func() (transport.Conn, error) { return l.A(), nil },
				ndmp.Config{
					Kind: ndmp.KindLogical, Session: uint64(i + 1),
					Tenant: tenant, FSID: fmt.Sprintf("fs%03d", i),
					Window: cfg.Window, Proc: p,
					HeartbeatEvery: 50 * time.Millisecond,
					// Covers the worst queue wait: drained at drive rate,
					// the whole backlog ahead of one client is bounded by
					// the run's total virtual length, not by a heartbeat.
					DeadAfter: 10 * time.Minute,
				})
			if err != nil {
				res.err = err
				return
			}
			for r := 0; r < cfg.Records; r++ {
				if err := s.WriteRecord(rec); err != nil {
					res.err = err
					return
				}
			}
			if err := s.Close(); err != nil {
				res.err = err
				return
			}
			res.bytes = int64(cfg.Records) * int64(cfg.RecordSize)
		})
	}
	env.Run()

	rep := &ServeReport{
		Clients: cfg.Clients, Tenants: cfg.Tenants, Drives: cfg.Drives,
		Records: cfg.Records, RecordSize: cfg.RecordSize,
		MakespanSec: makespan.Seconds(),
	}
	type agg struct {
		row  ServeTenantRow
		turn time.Duration
		max  time.Duration
	}
	perTenant := make(map[string]*agg)
	for _, r := range results {
		if r.err != nil {
			rep.Failed++
			continue
		}
		a := perTenant[r.tenant]
		if a == nil {
			a = &agg{row: ServeTenantRow{Tenant: r.tenant}}
			perTenant[r.tenant] = a
		}
		a.row.Sessions++
		a.row.Bytes += r.bytes
		a.turn += r.turn
		if r.turn > a.max {
			a.max = r.turn
		}
		rep.TotalBytes += r.bytes
	}
	var sum, sumSq float64
	for _, a := range perTenant {
		a.row.MeanTurnSec = (a.turn / time.Duration(a.row.Sessions)).Seconds()
		a.row.MaxTurnSec = a.max.Seconds()
		rep.PerTenant = append(rep.PerTenant, a.row)
		x := float64(a.row.Bytes)
		sum += x
		sumSq += x * x
	}
	sort.Slice(rep.PerTenant, func(i, j int) bool {
		return rep.PerTenant[i].Tenant < rep.PerTenant[j].Tenant
	})
	if n := float64(len(perTenant)); n > 0 && sumSq > 0 {
		rep.JainIndex = sum * sum / (n * sumSq)
	}
	if rep.MakespanSec > 0 {
		rep.AggregateGBh = float64(rep.TotalBytes) / 1e9 / (rep.MakespanSec / 3600)
	}
	ps := pool.Stats()
	rep.PoolGranted, rep.PoolWaited = ps.Granted, ps.Waited
	rep.PoolRejected, rep.PoolExpired = ps.Rejected, ps.Expired
	hs := host.Stats()
	rep.Throttled, rep.HostSessions, rep.HostRecords = hs.Throttled, hs.Sessions, hs.Records
	if rep.Failed > 0 {
		for _, r := range results {
			if r.err != nil {
				return rep, fmt.Errorf("bench serve: %d/%d clients failed (first: %v)",
					rep.Failed, cfg.Clients, r.err)
			}
		}
	}
	return rep, nil
}

// Format renders the report as the console table.
func (r *ServeReport) Format() string {
	s := fmt.Sprintf("serve bench: %d clients / %d tenants on %d drives, %d×%dB records each\n",
		r.Clients, r.Tenants, r.Drives, r.Records, r.RecordSize)
	s += fmt.Sprintf("  makespan %.2fs (virtual), aggregate %.2f GB/h, Jain fairness %.3f\n",
		r.MakespanSec, r.AggregateGBh, r.JainIndex)
	s += fmt.Sprintf("  pool: %d granted, %d wait-polls, %d rejected; %d throttled acks\n",
		r.PoolGranted, r.PoolWaited, r.PoolRejected, r.Throttled)
	for _, t := range r.PerTenant {
		s += fmt.Sprintf("  %-10s %3d sessions  %10d bytes  turnaround mean %6.2fs max %6.2fs\n",
			t.Tenant, t.Sessions, t.Bytes, t.MeanTurnSec, t.MaxTurnSec)
	}
	return s
}

// WriteJSON writes the report to path.
func (r *ServeReport) WriteJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadServeJSON loads a serve report written by WriteJSON.
func ReadServeJSON(path string) (*ServeReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r ServeReport
	if err := json.NewDecoder(f).Decode(&r); err != nil && err != io.EOF {
		return nil, err
	}
	return &r, nil
}

// CompareServe gates cur against base: fairness must stay at or above
// 0.9 (and within tol of the baseline), aggregate throughput within
// tol of the baseline, and every client must have completed.
func CompareServe(base, cur *ServeReport, tol float64) []string {
	var regs []string
	if cur.Failed > 0 {
		regs = append(regs, fmt.Sprintf("serve: %d clients failed", cur.Failed))
	}
	if cur.JainIndex < 0.9 {
		regs = append(regs, fmt.Sprintf("serve: Jain fairness %.3f below floor 0.90", cur.JainIndex))
	}
	if base.JainIndex > 0 && cur.JainIndex < base.JainIndex*(1-tol) {
		regs = append(regs, fmt.Sprintf("serve: Jain fairness %.3f, baseline %.3f",
			cur.JainIndex, base.JainIndex))
	}
	if base.AggregateGBh > 0 && cur.AggregateGBh < base.AggregateGBh*(1-tol) {
		regs = append(regs, fmt.Sprintf("serve: %.2f GB/h, baseline %.2f GB/h",
			cur.AggregateGBh, base.AggregateGBh))
	}
	return regs
}
