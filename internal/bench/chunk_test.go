package bench

import (
	"context"
	"testing"
)

// TestChunkWeek runs the dedup-week experiment at reduced scale and
// asserts the two acceptance criteria: a week of fulls over a
// mostly-unchanged volume stores >=3x fewer unique bytes than logical
// bytes, and in reverse mode restore-of-latest stays within 10% of
// the non-dedup streaming restore.
func TestChunkWeek(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataMB = 8
	for _, rev := range []bool{false, true} {
		rep, err := RunChunkWeek(context.Background(), cfg, rev)
		if err != nil {
			t.Fatalf("reverse=%v: %v", rev, err)
		}
		t.Logf("reverse=%v ratio=%.2f latest=%.2fs oldest=%.2fs base=%.2fs",
			rev, rep.DedupRatio, rep.RestoreLatestSec, rep.RestoreOldestSec, rep.BaselineRestoreSec)
		if rep.DedupRatio < 3 {
			t.Errorf("reverse=%v dedup ratio %.2f < 3", rev, rep.DedupRatio)
		}
		if rev && rep.LatestVsBaseline > 1.10 {
			t.Errorf("reverse restore-of-latest %.2fx the streaming baseline (want <=1.10x)", rep.LatestVsBaseline)
		}
		if rev && rep.RestoreOldestSec < rep.RestoreLatestSec {
			t.Errorf("reverse mode should shift the restore cost to the oldest set")
		}
	}
}
