package sched

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/logical"
	"repro/internal/media"
	"repro/internal/physical"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
)

// setSource feeds one dump set's stream to a restore engine: it walks
// the set's MediaRefs in order, mounting each volume and spacing to
// the recorded start index, and reads records until the volume's data
// runs out, then moves to the next ref. The stream formats terminate
// themselves (TS_END / the image trailer), so records belonging to a
// later dump set sharing the last cartridge are never consumed.
type setSource struct {
	drive *tape.Drive
	proc  *sim.Proc
	refs  []catalog.MediaRef
	cur   int
	ready bool
	retry storage.RetryPolicy
}

func newSetSource(drive *tape.Drive, proc *sim.Proc, refs []catalog.MediaRef) *setSource {
	return &setSource{drive: drive, proc: proc, refs: refs, retry: storage.DefaultRetryPolicy()}
}

// mount cycles the drive's stacker until the wanted label is loaded.
func (s *setSource) mount(label string) error {
	if c := s.drive.Loaded(); c != nil && c.Label == label {
		return nil
	}
	tries := len(s.drive.Stacker()) + 1
	for i := 0; i < tries; i++ {
		if err := s.drive.Load(s.proc); err != nil {
			return err
		}
		if c := s.drive.Loaded(); c != nil && c.Label == label {
			return nil
		}
	}
	return fmt.Errorf("sched: volume %q is not in the restore drive", label)
}

// position mounts the current ref's volume and spaces to its start.
func (s *setSource) position() error {
	ref := s.refs[s.cur]
	if err := s.mount(ref.Volume); err != nil {
		return err
	}
	s.drive.Rewind(s.proc)
	if ref.Start > 0 {
		if err := s.drive.SpaceRecords(s.proc, int(ref.Start)); err != nil {
			return err
		}
	}
	s.ready = true
	return nil
}

// ReadRecord implements dumpfmt.Source and physical.Source.
func (s *setSource) ReadRecord() ([]byte, error) {
	attempt := 0
	for {
		if s.cur >= len(s.refs) {
			return nil, io.EOF
		}
		if !s.ready {
			if err := s.position(); err != nil {
				return nil, err
			}
		}
		rec, err := s.drive.ReadRecord(s.proc)
		switch {
		case err == nil:
			return rec, nil
		case errors.Is(err, tape.ErrFileMark):
			continue
		case errors.Is(err, tape.ErrEndOfTape):
			s.cur++
			s.ready = false
		case tape.IsTransientMedia(err):
			attempt++
			if attempt > s.retry.MaxRetries {
				return nil, err
			}
			if s.proc != nil {
				s.proc.Sleep(s.retry.Delay(attempt))
			}
		default:
			return nil, err
		}
	}
}

// RecoverOptions tunes plan execution.
type RecoverOptions struct {
	// Drive, when set, is the restore drive to use; the needed
	// cartridges must be reachable in its stacker. When nil, a
	// dedicated restore drive is assembled from the pool's cartridges
	// — the operator carrying the plan's tapes to a free drive.
	Drive *tape.Drive
	// TargetDir grafts a logical restore somewhere other than the
	// filesystem root.
	TargetDir string
	// Wipe reformats the filer's volume before a full-volume logical
	// recovery (disaster recovery semantics). Image recovery always
	// overwrites the volume wholesale.
	Wipe bool
}

// RecoverResult reports what a plan execution did.
type RecoverResult struct {
	Steps int
	// Files holds extracted content for single-file image recovery
	// (path → bytes); empty otherwise.
	Files map[string][]byte
	// FilesRestored counts files laid down by logical restores.
	FilesRestored int
	// BlocksRestored counts blocks written by image restores.
	BlocksRestored int
}

// Recover executes a restore plan end to end against f, pulling media
// from pool: it assembles the drive, positions each step's stream, and
// drives logical.Restore, physical.Restore or physical.Extract as the
// plan dictates. After an image recovery the filer's filesystem is
// remounted from the restored volume.
func Recover(ctx context.Context, f *core.Filer, pool *media.Pool, plan *catalog.Plan, opts RecoverOptions) (*RecoverResult, error) {
	if len(plan.Steps) == 0 {
		return nil, fmt.Errorf("sched: empty plan")
	}
	proc := sim.ProcFrom(ctx)
	drive := opts.Drive
	if drive == nil {
		d, err := assembleDrive(f, pool, plan)
		if err != nil {
			return nil, err
		}
		drive = d
	}

	res := &RecoverResult{Steps: len(plan.Steps)}
	if plan.Engine == catalog.Image {
		if plan.File != "" {
			full := newSetSource(drive, proc, plan.Steps[0].Media)
			var incs []physical.Source
			for _, step := range plan.Steps[1:] {
				incs = append(incs, newSetSource(drive, proc, step.Media))
			}
			files, err := physical.Extract(ctx, full, incs, plan.File)
			if err != nil {
				return nil, err
			}
			res.Files = files
			return res, nil
		}
		for i, step := range plan.Steps {
			src := newSetSource(drive, proc, step.Media)
			stats, err := physical.Restore(ctx, physical.RestoreOptions{
				Vol:               f.Vol,
				Source:            src,
				Costs:             f.Config.PhysCosts,
				ExpectIncremental: i > 0,
			})
			if err != nil {
				return nil, fmt.Errorf("sched: image step %d (set %d): %w", i+1, step.ID, err)
			}
			res.BlocksRestored += stats.BlocksRestored
		}
		if err := f.Remount(ctx); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Logical: a full-volume chain replays every step with deletion
	// sync; a single-file plan is one pruned step restoring just the
	// path.
	if opts.Wipe && plan.File == "" {
		if err := f.Wipe(ctx); err != nil {
			return nil, err
		}
	}
	var files []string
	if plan.File != "" {
		files = []string{plan.File}
	}
	for i, step := range plan.Steps {
		src := newSetSource(drive, proc, step.Media)
		stats, err := logical.Restore(ctx, logical.RestoreOptions{
			FS:               f.FS,
			Source:           src,
			TargetDir:        opts.TargetDir,
			Files:            files,
			SyncDeletes:      i > 0,
			KernelIntegrated: true,
		})
		if err != nil {
			return nil, fmt.Errorf("sched: logical step %d (set %d): %w", i+1, step.ID, err)
		}
		res.FilesRestored += stats.FilesRestored
	}
	return res, nil
}

// assembleDrive builds a restore drive loaded with the plan's media,
// in mount order, from the pool's cartridge bindings.
func assembleDrive(f *core.Filer, pool *media.Pool, plan *catalog.Plan) (*tape.Drive, error) {
	d := tape.NewDrive(f.Env, f.Config.Name+"/restore", f.Config.TapeParams)
	for _, label := range plan.Media() {
		v, ok := pool.Volume(label)
		if !ok || v.Cart == nil {
			return nil, fmt.Errorf("sched: plan needs volume %q, which the pool cannot mount", label)
		}
		d.AddCartridges(v.Cart)
	}
	return d, nil
}
