package sched

import (
	"sync"
	"time"

	"repro/internal/ndmp"
	"repro/internal/obs"
)

// DrivePool implements ndmp.Gate.
var _ ndmp.Gate = (*DrivePool)(nil)

// DrivePoolConfig tunes a DrivePool.
type DrivePoolConfig struct {
	// Drives is the number of concurrent streams the pool admits — one
	// per tape drive (default 4). Everything past it waits.
	Drives int
	// MaxQueue bounds the wait queue; a Hello arriving with the queue
	// full is rejected outright (default 64, negative = no queue: every
	// over-capacity Hello rejects).
	MaxQueue int
	// Now is the pool's clock, virtual under a simulation (sim.Env.Now
	// wrapped) or wall time for a TCP serve (default: wall time).
	Now func() time.Duration
	// DriveRate caps each drive's byte rate; the pool's aggregate
	// bucket holds Drives×DriveRate tokens per second (0 = unlimited).
	// This is what makes the concurrency knee measurable: past
	// saturation, adding clients redistributes bytes instead of adding
	// throughput.
	DriveRate int64
	// DefaultRate is the per-tenant byte-rate limit applied to tenants
	// absent from Rates (0 = unlimited).
	DefaultRate int64
	// Rates overrides DefaultRate per tenant.
	Rates map[string]int64
	// Priority orders tenants in the wait queue; higher drains first
	// (default 0). Equal priorities fall back to fair share: the tenant
	// with the fewest admitted streams wins, then first-come.
	Priority map[string]int
	// StaleAfter expires a waiter whose client stopped polling —
	// crashed mid-wait, or gave up at its DeadAfter (default 10s).
	StaleAfter time.Duration
}

// DrivePoolStats counts scheduler decisions.
type DrivePoolStats struct {
	Granted   int // streams admitted onto a drive
	Waited    int // Admit polls answered "keep waiting"
	Rejected  int // Hellos refused (queue full)
	Released  int // drive slots returned
	Expired   int // waiters dropped for not polling
	Throttled int // Charge calls denied by a rate bucket
}

// streamID identifies one admission-controlled stream.
type streamID struct {
	tenant  string
	session uint64
	stream  int
}

// waiter is one queued stream. The client polls by re-sending its
// Hello every heartbeat interval; lastPoll going stale means the
// client is gone and the queue slot can be reclaimed.
type waiter struct {
	id       streamID
	arrived  int64 // queue sequence, for FIFO tie-break
	lastPoll time.Duration
}

// bucket is a token bucket permitting debt: a charge always lands
// (the record is already on tape by the time the host asks), but a
// negative balance withholds window credit until refill repays it.
type bucket struct {
	rate   int64 // tokens (bytes) per second
	burst  int64
	tokens int64
	last   time.Duration
}

func (b *bucket) refill(now time.Duration) {
	if b.rate <= 0 {
		return
	}
	if now > b.last {
		b.tokens += int64(float64(b.rate) * (now - b.last).Seconds())
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// ok reports whether the bucket is out of debt.
func (b *bucket) ok() bool { return b.rate <= 0 || b.tokens >= 0 }

// DrivePool is the multi-tenant drive scheduler: it admits up to
// Drives concurrent streams, queues the overflow (bounded, fair-share
// + priority ordered, polled by the clients' own Hello retries), and
// meters bytes through per-tenant and aggregate token buckets. It
// implements the session layer's Gate interface; hang it on
// ndmp.Host.Gate.
type DrivePool struct {
	cfg DrivePoolConfig

	mu      sync.Mutex
	active  map[streamID]bool
	waiting map[streamID]*waiter
	arrival int64
	stats   DrivePoolStats
	tenants map[string]*bucket
	agg     bucket
}

// NewDrivePool builds a pool over cfg.
func NewDrivePool(cfg DrivePoolConfig) *DrivePool {
	if cfg.Drives <= 0 {
		cfg.Drives = 4
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 64
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 10 * time.Second
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	p := &DrivePool{
		cfg:     cfg,
		active:  make(map[streamID]bool),
		waiting: make(map[streamID]*waiter),
		tenants: make(map[string]*bucket),
	}
	now := cfg.Now()
	if cfg.DriveRate > 0 {
		rate := cfg.DriveRate * int64(cfg.Drives)
		p.agg = bucket{rate: rate, burst: rate, tokens: rate, last: now}
	}
	return p
}

// Stats returns a snapshot of the pool's counters.
func (p *DrivePool) Stats() DrivePoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Active returns the number of admitted streams.
func (p *DrivePool) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.active)
}

// Queued returns the number of waiting streams.
func (p *DrivePool) Queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiting)
}

// RegisterMetrics installs pull collectors for the pool.
func (p *DrivePool) RegisterMetrics(r *obs.Registry) {
	snap := func(read func(DrivePoolStats) float64) func() float64 {
		return func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return read(p.stats)
		}
	}
	r.RegisterFunc("sched_pool_granted_total", obs.KindCounter, nil, snap(func(s DrivePoolStats) float64 { return float64(s.Granted) }))
	r.RegisterFunc("sched_pool_rejected_total", obs.KindCounter, nil, snap(func(s DrivePoolStats) float64 { return float64(s.Rejected) }))
	r.RegisterFunc("sched_pool_expired_total", obs.KindCounter, nil, snap(func(s DrivePoolStats) float64 { return float64(s.Expired) }))
	r.RegisterFunc("sched_pool_throttled_total", obs.KindCounter, nil, snap(func(s DrivePoolStats) float64 { return float64(s.Throttled) }))
	r.RegisterFunc("sched_pool_active_streams", obs.KindGauge, nil, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.active))
	})
	r.RegisterFunc("sched_pool_queued_streams", obs.KindGauge, nil, func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.waiting))
	})
}

// Admit decides one stream's admission. Idempotent per id: an already
// admitted stream answers Granted without consuming another drive;
// a queued stream's poll refreshes its liveness and re-checks whether
// it is now the best waiter for a free drive.
func (p *DrivePool) Admit(tenant string, session uint64, stream int) (ndmp.Admission, string) {
	id := streamID{tenant, session, stream}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Now()
	p.expireLocked(now)
	if p.active[id] {
		return ndmp.AdmitGranted, ""
	}
	w := p.waiting[id]
	if w != nil {
		w.lastPoll = now
	}
	if len(p.active) < p.cfg.Drives && p.bestWaiterLocked(id) {
		delete(p.waiting, id)
		p.active[id] = true
		p.stats.Granted++
		return ndmp.AdmitGranted, ""
	}
	if w == nil {
		if len(p.waiting) >= p.cfg.MaxQueue {
			p.stats.Rejected++
			return ndmp.AdmitReject, "drive pool busy: wait queue full"
		}
		p.arrival++
		p.waiting[id] = &waiter{id: id, arrived: p.arrival, lastPoll: now}
	}
	p.stats.Waited++
	return ndmp.AdmitWait, ""
}

// bestWaiterLocked reports whether id should win the next free drive:
// highest tenant priority first, then fair share (fewest admitted
// streams for the tenant), then earliest arrival. An id not yet in
// the queue competes as if it had just joined the tail.
func (p *DrivePool) bestWaiterLocked(id streamID) bool {
	cand, ok := p.waiting[id]
	if !ok {
		cand = &waiter{id: id, arrived: p.arrival + 1}
	}
	perTenant := make(map[string]int, len(p.active))
	for a := range p.active {
		perTenant[a.tenant]++
	}
	rank := func(w *waiter) (int, int, int64) {
		return p.cfg.Priority[w.id.tenant], perTenant[w.id.tenant], w.arrived
	}
	cp, cs, ca := rank(cand)
	for _, w := range p.waiting {
		if w.id == id {
			continue
		}
		wp, ws, wa := rank(w)
		// w beats cand: higher priority, or same priority and a
		// smaller share, or a full tie broken by arrival order.
		if wp > cp || (wp == cp && (ws < cs || (ws == cs && wa < ca))) {
			return false
		}
	}
	return true
}

// expireLocked drops waiters whose clients stopped polling.
func (p *DrivePool) expireLocked(now time.Duration) {
	for id, w := range p.waiting {
		if now-w.lastPoll > p.cfg.StaleAfter {
			delete(p.waiting, id)
			p.stats.Expired++
		}
	}
}

// Release returns a stream's drive (idempotent; releasing a waiter
// just dequeues it).
func (p *DrivePool) Release(tenant string, session uint64, stream int) {
	id := streamID{tenant, session, stream}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.active[id] {
		delete(p.active, id)
		p.stats.Released++
	}
	delete(p.waiting, id)
}

// Charge meters n durable bytes against the tenant's bucket and the
// pool's aggregate bucket, reporting whether the stream has window
// credit. Charges land even when over rate (the bytes are already on
// tape — the host asked after writing); the resulting debt withholds
// credit until refill repays it. n=0 is a pure poll (heartbeats).
func (p *DrivePool) Charge(tenant string, session uint64, stream int, n int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.cfg.Now()
	tb := p.tenants[tenant]
	if tb == nil {
		rate := p.cfg.DefaultRate
		if r, ok := p.cfg.Rates[tenant]; ok {
			rate = r
		}
		burst := rate // one second of burst
		tb = &bucket{rate: rate, burst: burst, tokens: burst, last: now}
		p.tenants[tenant] = tb
	}
	tb.refill(now)
	p.agg.refill(now)
	if n > 0 {
		if tb.rate > 0 {
			tb.tokens -= int64(n)
		}
		if p.agg.rate > 0 {
			p.agg.tokens -= int64(n)
		}
	}
	if tb.ok() && p.agg.ok() {
		return true
	}
	p.stats.Throttled++
	return false
}
