// Package sched runs backup level schedules against a core.Filer on
// the simulated clock, recording every completed run in the backup
// catalog and committing the media it consumed to the media pool — the
// nightly-cron layer of the paper's operational story. Its companion
// half is the recover executor: given a plan computed by the catalog,
// it mounts and positions the right cartridges and drives the existing
// logical and physical restore paths end to end, with no
// operator-assembled media list.
package sched

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/dumpfmt"
	"repro/internal/logical"
	"repro/internal/media"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/scrub"
	"repro/internal/sim"
	"repro/internal/wafl"
)

// Policy maps a run number (0-based) to an incremental level.
type Policy interface {
	Level(run int) int
	String() string
}

// BSDLadder is the classic BSD dump schedule: a level 0, then a
// repeating ladder chosen so each dump's base is recent and restores
// need few tapes (dump(8) suggests 3 2 5 4 7 6 9 8).
type BSDLadder struct {
	Ladder []int
}

// DefaultLadder returns the dump(8) manual's suggested sequence.
func DefaultLadder() BSDLadder { return BSDLadder{Ladder: []int{3, 2, 5, 4, 7, 6, 9, 8}} }

// Level implements Policy.
func (l BSDLadder) Level(run int) int {
	if run <= 0 {
		return 0
	}
	lad := l.Ladder
	if len(lad) == 0 {
		lad = DefaultLadder().Ladder
	}
	return lad[(run-1)%len(lad)]
}

func (l BSDLadder) String() string { return "bsd-ladder" }

// TowerOfHanoi is the Tower-of-Hanoi schedule: run n (1-based) dumps
// at level Levels minus the largest power of two dividing n, so each
// media set is reused at exponentially spaced intervals — deep history
// with few tapes.
type TowerOfHanoi struct {
	// Levels is the deepest level used (default 5).
	Levels int
}

// Level implements Policy.
func (t TowerOfHanoi) Level(run int) int {
	if run <= 0 {
		return 0
	}
	levels := t.Levels
	if levels <= 0 {
		levels = 5
	}
	if levels > logical.MaxLevel {
		levels = logical.MaxLevel
	}
	lvl := levels - bits.TrailingZeros(uint(run))
	if lvl < 1 {
		lvl = 1
	}
	return lvl
}

func (t TowerOfHanoi) String() string { return "tower-of-hanoi" }

// Config wires a schedule to a filer, catalog and media pool.
type Config struct {
	Filer   *core.Filer
	Catalog *catalog.Catalog
	Pool    *media.Pool
	// Engine picks the dump strategy for every run.
	Engine catalog.Engine
	// Policy maps run numbers to levels (default: BSD ladder).
	Policy Policy
	// Drive is the tape drive index the schedule writes to.
	Drive int
	// FSID keys the dump-date history (default: the filer's name).
	FSID string
	// Interval is the virtual time between runs when simulating
	// (default 24h — nightly dumps).
	Interval time.Duration
	// SnapPrefix names the schedule's snapshots (default "sched").
	SnapPrefix string
	// Retention, when set, is applied after every run, followed by a
	// reclamation pass.
	Retention media.RetentionPolicy
	// Churn, when set, mutates the filesystem before each run after
	// the first — the users the schedule is protecting.
	Churn func(ctx context.Context, run int) error
	// Mirror, when set, receives a byte-identical capture of every
	// dump's stream records, keyed by set ID — the stream-level
	// standby replica the scrubber repairs damaged media from.
	Mirror *scrub.Store
	// Scrub, when set, runs a scheduled integrity pass (scan, repair,
	// degrade, fsck) after a run's retention completes.
	Scrub *scrub.Scrubber
	// ScrubEvery is the scrub period in runs (default 1 — nightly
	// scrub after the nightly dump).
	ScrubEvery int
}

// RunResult describes one completed scheduled dump.
type RunResult struct {
	Run     int
	Level   int
	SetID   uint64
	Date    int64
	Bytes   int64
	Media   []string
	Expired []uint64 // sets expired by retention after this run
	// Scrub is the integrity pass run after this run, when scheduled.
	Scrub *scrub.Report
}

// imageBase tracks the snapshot a future incremental can base on, per
// level — the image engine's analogue of /etc/dumpdates.
type imageBase struct {
	snap string
	gen  uint64
	date int64
}

// Scheduler executes runs. Create with New, drive with RunN (which
// handles the simulated clock) or step with RunOne from inside a
// simulation process.
type Scheduler struct {
	cfg   Config
	bases map[int]imageBase // image engine: level → base candidate
	runs  int
}

// New validates cfg and returns a scheduler.
func New(cfg Config) (*Scheduler, error) {
	if cfg.Filer == nil || cfg.Catalog == nil || cfg.Pool == nil {
		return nil, fmt.Errorf("sched: filer, catalog and pool are required")
	}
	if cfg.Engine != catalog.Logical && cfg.Engine != catalog.Image {
		return nil, fmt.Errorf("sched: engine must be logical or image")
	}
	if cfg.Policy == nil {
		cfg.Policy = DefaultLadder()
	}
	if cfg.FSID == "" {
		cfg.FSID = cfg.Filer.Config.Name
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 24 * time.Hour
	}
	if cfg.SnapPrefix == "" {
		cfg.SnapPrefix = "sched"
	}
	if cfg.Drive < 0 || cfg.Drive >= len(cfg.Filer.Tapes) {
		return nil, fmt.Errorf("sched: drive %d of %d", cfg.Drive, len(cfg.Filer.Tapes))
	}
	if cfg.ScrubEvery <= 0 {
		cfg.ScrubEvery = 1
	}
	return &Scheduler{cfg: cfg, bases: make(map[int]imageBase)}, nil
}

// RunN executes n scheduled runs. On a simulating filer it spawns a
// simulation process, sleeps Interval of virtual time between runs,
// and drives the event loop; untimed it just loops. Each run's dump is
// recorded in the catalog before RunN moves on — a crash between runs
// loses nothing.
func (s *Scheduler) RunN(ctx context.Context, n int) ([]RunResult, error) {
	f := s.cfg.Filer
	if f.Env != nil && sim.ProcFrom(ctx) == nil {
		var results []RunResult
		var runErr error
		f.Env.Spawn("sched/"+s.cfg.Policy.String(), func(p *sim.Proc) {
			results, runErr = s.runLoop(core.Proc(ctx, p), n)
		})
		f.Env.Run()
		return results, runErr
	}
	return s.runLoop(ctx, n)
}

func (s *Scheduler) runLoop(ctx context.Context, n int) ([]RunResult, error) {
	var results []RunResult
	for i := 0; i < n; i++ {
		res, err := s.RunOne(ctx)
		if err != nil {
			return results, err
		}
		results = append(results, *res)
	}
	return results, nil
}

// RunOne executes the next scheduled run: churn, advance the clock,
// dump at the policy's level, record the set (and its file index) in
// the catalog, and commit the media to the pool.
func (s *Scheduler) RunOne(ctx context.Context) (*RunResult, error) {
	run := s.runs
	f := s.cfg.Filer
	ctx, span := obs.Start(ctx, fmt.Sprintf("sched.run%d", run))
	defer span.End()
	span.SetAttr("engine", s.cfg.Engine.String())
	if run > 0 && s.cfg.Churn != nil {
		if err := s.cfg.Churn(ctx, run); err != nil {
			return nil, fmt.Errorf("sched: churn before run %d: %w", run, err)
		}
	}
	if p := sim.ProcFrom(ctx); p != nil {
		p.Sleep(s.cfg.Interval)
	}
	if f.Tapes[s.cfg.Drive].Loaded() == nil {
		if err := f.Tapes[s.cfg.Drive].Load(sim.ProcFrom(ctx)); err != nil {
			return nil, fmt.Errorf("sched: mounting media for run %d: %w", run, err)
		}
	}
	level := s.cfg.Policy.Level(run)

	var res *RunResult
	var err error
	if s.cfg.Engine == catalog.Logical {
		res, err = s.logicalRun(ctx, run, level)
	} else {
		res, err = s.imageRun(ctx, run, level)
	}
	if err != nil {
		return nil, err
	}
	s.runs++

	now := f.FS.Clock()
	if s.cfg.Retention != nil {
		expired, err := s.cfg.Pool.ApplyRetention(s.cfg.Retention, s.cfg.FSID, s.cfg.Engine, now)
		if err != nil {
			return nil, err
		}
		res.Expired = expired
		if s.cfg.Mirror != nil {
			for _, id := range expired {
				s.cfg.Mirror.Drop(id)
			}
		}
		if _, err := s.cfg.Pool.Reclaim(now); err != nil {
			return nil, err
		}
	}
	if s.cfg.Scrub != nil && s.runs%s.cfg.ScrubEvery == 0 {
		srep, err := s.cfg.Scrub.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("sched: scrub after run %d: %w", run, err)
		}
		res.Scrub = srep
	}
	return res, nil
}

// logicalRun performs one scheduled logical dump.
func (s *Scheduler) logicalRun(ctx context.Context, run, level int) (*RunResult, error) {
	f := s.cfg.Filer
	snap := fmt.Sprintf("%s.l%d.run%d", s.cfg.SnapPrefix, level, run)
	if err := f.FS.CreateSnapshot(ctx, snap); err != nil {
		return nil, err
	}
	defer f.FS.DeleteSnapshot(ctx, snap)
	view, err := f.FS.SnapshotView(snap)
	if err != nil {
		return nil, err
	}
	track := &media.TrackingSink{Sink: f.Sink(ctx, s.cfg.Drive), Drive: f.Tapes[s.cfg.Drive]}
	var sink dumpfmt.Sink = track
	var capture *scrub.CaptureSink
	if s.cfg.Mirror != nil {
		capture = &scrub.CaptureSink{Sink: track}
		sink = capture
	}
	var index []catalog.FileIndexEntry
	stats, err := logical.Dump(ctx, logical.DumpOptions{
		View:      view,
		Level:     level,
		Dates:     f.Dates,
		FSID:      s.cfg.FSID,
		Sink:      sink,
		Label:     snap,
		ReadAhead: 16,
		FileIndex: func(path string, ino wafl.Inum, unit int64) {
			index = append(index, catalog.FileIndexEntry{Path: path, Ino: uint32(ino), Unit: unit})
		},
	})
	if err != nil {
		return nil, fmt.Errorf("sched: run %d level %d: %w", run, level, err)
	}
	f.Tapes[s.cfg.Drive].Flush(sim.ProcFrom(ctx))

	id, err := s.cfg.Catalog.AppendDumpSet(catalog.DumpSet{
		Engine:   catalog.Logical,
		FSID:     s.cfg.FSID,
		Snap:     snap,
		Level:    int32(level),
		Date:     stats.Date,
		BaseDate: stats.BaseDate,
		Bytes:    stats.BytesWritten,
		Units:    int64(stats.FilesDumped),
		Media:    track.Refs(),
	})
	if err != nil {
		return nil, err
	}
	if err := s.cfg.Catalog.AppendFileIndex(id, index); err != nil {
		return nil, err
	}
	if capture != nil {
		s.cfg.Mirror.Put(id, capture.Records())
	}
	if err := s.cfg.Pool.CommitSet(id, track.Labels(), stats.Date); err != nil {
		return nil, err
	}
	return &RunResult{Run: run, Level: level, SetID: id, Date: stats.Date,
		Bytes: stats.BytesWritten, Media: track.Labels()}, nil
}

// imageRun performs one scheduled image dump. Level semantics mirror
// dumpdates: a level-L dump bases on the newest prior run at a level
// below L, whose snapshot is retained for exactly that purpose; deeper
// levels' snapshots are dropped, as a new base invalidates them.
func (s *Scheduler) imageRun(ctx context.Context, run, level int) (*RunResult, error) {
	f := s.cfg.Filer
	snap := fmt.Sprintf("%s.i%d.run%d", s.cfg.SnapPrefix, level, run)
	if err := f.FS.CreateSnapshot(ctx, snap); err != nil {
		return nil, err
	}

	var base imageBase
	for l, b := range s.bases {
		if l < level && b.date > base.date {
			base = b
		}
	}

	track := &media.TrackingSink{Sink: f.Sink(ctx, s.cfg.Drive), Drive: f.Tapes[s.cfg.Drive]}
	var sink physical.Sink = track
	var capture *scrub.CaptureSink
	if s.cfg.Mirror != nil {
		capture = &scrub.CaptureSink{Sink: track}
		sink = capture
	}
	stats, err := physical.Dump(ctx, physical.DumpOptions{
		FS:           f.FS,
		Vol:          f.Vol,
		SnapName:     snap,
		BaseSnapName: base.snap,
		Sink:         sink,
		Costs:        f.Config.PhysCosts,
	})
	if err != nil {
		f.FS.DeleteSnapshot(ctx, snap)
		return nil, fmt.Errorf("sched: run %d level %d: %w", run, level, err)
	}
	f.Tapes[s.cfg.Drive].Flush(sim.ProcFrom(ctx))

	date := f.FS.Clock()
	id, err := s.cfg.Catalog.AppendDumpSet(catalog.DumpSet{
		Engine:  catalog.Image,
		FSID:    s.cfg.FSID,
		Snap:    snap,
		Level:   -1,
		Date:    date,
		Gen:     stats.Gen,
		BaseGen: stats.BaseGen,
		NBlocks: stats.NBlocks,
		Bytes:   stats.BytesWritten,
		Units:   int64(stats.BlocksDumped),
		Media:   track.Refs(),
	})
	if err != nil {
		return nil, err
	}
	if capture != nil {
		s.cfg.Mirror.Put(id, capture.Records())
	}
	if err := s.cfg.Pool.CommitSet(id, track.Labels(), date); err != nil {
		return nil, err
	}

	// Update the base table like DumpDates.Record: this level's
	// snapshot replaces its slot and invalidates deeper levels.
	for l, b := range s.bases {
		if l >= level {
			f.FS.DeleteSnapshot(ctx, b.snap)
			delete(s.bases, l)
		}
	}
	s.bases[level] = imageBase{snap: snap, gen: stats.Gen, date: date}

	return &RunResult{Run: run, Level: level, SetID: id, Date: date,
		Bytes: stats.BytesWritten, Media: track.Labels()}, nil
}
