package sched

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/replica"
	"repro/internal/workload"
)

var ctx = context.Background()

func TestPolicyLevels(t *testing.T) {
	lad := DefaultLadder()
	want := []int{0, 3, 2, 5, 4, 7, 6, 9, 8, 3, 2}
	for run, lvl := range want {
		if got := lad.Level(run); got != lvl {
			t.Fatalf("ladder run %d: level %d, want %d", run, got, lvl)
		}
	}
	// Tower of Hanoi with 5 levels: run n dumps at 5 - trailing zeros,
	// clamped to ≥1 (run 0 is the level-0 full).
	toh := TowerOfHanoi{Levels: 5}
	wantToh := map[int]int{0: 0, 1: 5, 2: 4, 3: 5, 4: 3, 5: 5, 6: 4, 7: 5, 8: 2, 16: 1, 32: 1}
	for run, lvl := range wantToh {
		if got := toh.Level(run); got != lvl {
			t.Fatalf("hanoi run %d: level %d, want %d", run, got, lvl)
		}
	}
}

// schedRig is one filer + catalog + pool wired for scheduled dumps.
type schedRig struct {
	f    *core.Filer
	cat  *catalog.Catalog
	pool *media.Pool
	s    *Scheduler
}

func newRig(t *testing.T, engine catalog.Engine) *schedRig {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Name = "vol0"
	cfg.Simulate = true
	cfg.BlocksPerDisk = 512
	cfg.CartridgesPerDrive = 8
	f, err := core.NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	workload.Generate(ctx, f.FS, workload.Spec{Seed: 77, Files: 25, DirFanout: 4, MeanFileSize: 6 << 10})
	if _, err := f.FS.WriteFile(ctx, "/data/report.txt", []byte("v0"), 0644); err != nil {
		t.Fatal(err)
	}

	cat, err := catalog.Open(&catalog.MemStore{})
	if err != nil {
		t.Fatal(err)
	}
	pool := media.NewPool("main", cat)
	if err := pool.Adopt(f.Tapes[0], 0); err != nil {
		t.Fatal(err)
	}
	f.AttachCatalog(cat)
	s, err := New(Config{
		Filer:   f,
		Catalog: cat,
		Pool:    pool,
		Engine:  engine,
		Policy:  BSDLadder{Ladder: []int{3, 5}}, // 0, 3, 5: one three-step chain
	})
	if err != nil {
		t.Fatal(err)
	}
	return &schedRig{f: f, cat: cat, pool: pool, s: s}
}

// churn mutates the filesystem between runs, versioning report.txt.
func (r *schedRig) churn(t *testing.T, version int) {
	t.Helper()
	if _, err := r.f.FS.WriteFile(ctx, "/data/report.txt",
		[]byte(fmt.Sprintf("version %d of the report", version)), 0644); err != nil {
		t.Fatal(err)
	}
	if _, err := r.f.FS.WriteFile(ctx, fmt.Sprintf("/churn/new%d", version),
		bytes.Repeat([]byte{byte(version)}, 2048), 0644); err != nil {
		t.Fatal(err)
	}
	if version == 2 {
		if err := r.f.FS.RemovePath(ctx, "/churn/new1"); err != nil {
			t.Fatal(err)
		}
	}
}

func (r *schedRig) digest(t *testing.T) map[string]workload.Entry {
	t.Helper()
	d, err := workload.TreeDigest(ctx, r.f.FS.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// runThree executes the acceptance schedule — a level 0 and two
// incrementals on the simulated clock, with churn between runs — and
// returns the results and the digest of the state each run captured.
func runThree(t *testing.T, r *schedRig) ([]RunResult, []map[string]workload.Entry) {
	t.Helper()
	var results []RunResult
	var states []map[string]workload.Entry
	for run := 0; run < 3; run++ {
		if run > 0 {
			r.churn(t, run)
		}
		states = append(states, r.digest(t))
		res, err := r.s.RunN(ctx, 1)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		results = append(results, res...)
	}
	wantLevels := []int{0, 3, 5}
	for i, res := range results {
		if res.Level != wantLevels[i] {
			t.Fatalf("run %d at level %d, want %d", i, res.Level, wantLevels[i])
		}
		if len(res.Media) == 0 {
			t.Fatalf("run %d recorded no media", i)
		}
	}
	if results[0].Date >= results[1].Date || results[1].Date >= results[2].Date {
		t.Fatalf("dates not advancing: %v", results)
	}
	return results, states
}

// TestScheduledLogicalRecovery is the acceptance flow for the logical
// engine: scheduled level-0 + two incrementals, then catalog-planned
// recovery — full volume at two points in time and a single file —
// with no manual media list, byte-identical to the dumped states.
func TestScheduledLogicalRecovery(t *testing.T) {
	r := newRig(t, catalog.Logical)
	results, states := runThree(t, r)

	// The catalog-derived dump dates must match the live history.
	if !reflect.DeepEqual(r.cat.DumpDates().Entries(), r.f.Dates.Entries()) {
		t.Fatalf("catalog dates %v != live dates %v", r.cat.DumpDates().Entries(), r.f.Dates.Entries())
	}

	// Recover at the middle run's time: chain is [level 0, level 3].
	plan, err := r.cat.Plan(catalog.PlanOptions{Engine: catalog.Logical, FSID: "vol0", At: results[1].Date})
	if err != nil {
		t.Fatal(err)
	}
	if ids := planSetIDs(plan); !reflect.DeepEqual(ids, []uint64{results[0].SetID, results[1].SetID}) {
		t.Fatalf("mid-time chain %v", ids)
	}
	res, err := Recover(ctx, r.f, r.pool, plan, RecoverOptions{Wipe: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesRestored == 0 {
		t.Fatal("recovery restored nothing")
	}
	if diffs := workload.DiffDigests(states[1], r.digest(t)); len(diffs) > 0 {
		t.Fatalf("mid-time recovery differs: %v", diffs)
	}

	// Recover the latest state: chain is all three sets.
	plan, err = r.cat.Plan(catalog.PlanOptions{Engine: catalog.Logical, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("latest chain has %d steps: %s", len(plan.Steps), plan)
	}
	if _, err := Recover(ctx, r.f, r.pool, plan, RecoverOptions{Wipe: true}); err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(states[2], r.digest(t)); len(diffs) > 0 {
		t.Fatalf("latest recovery differs: %v", diffs)
	}

	// Single-file recovery: the newest report.txt lives in the level-5
	// set; the plan prunes to that one set.
	if err := r.f.FS.RemovePath(ctx, "/data/report.txt"); err != nil {
		t.Fatal(err)
	}
	plan, err = r.cat.Plan(catalog.PlanOptions{Engine: catalog.Logical, FSID: "vol0", File: "/data/report.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 1 || plan.Steps[0].ID != results[2].SetID {
		t.Fatalf("file plan %s", plan)
	}
	if _, err := Recover(ctx, r.f, r.pool, plan, RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := r.f.FS.ActiveView().ReadFile(ctx, "/data/report.txt")
	if err != nil || string(got) != "version 2 of the report" {
		t.Fatalf("single-file recovery: %q, %v", got, err)
	}
}

// TestScheduledImageRecovery is the same acceptance flow through the
// physical engine: the chain is selected by generation links and the
// volume is rebuilt block-for-block, then remounted.
func TestScheduledImageRecovery(t *testing.T) {
	r := newRig(t, catalog.Image)
	results, states := runThree(t, r)

	// Gen chain: each incremental bases on the previous run's snapshot.
	sets := r.cat.Sets()
	if sets[1].BaseGen != sets[0].Gen || sets[2].BaseGen != sets[1].Gen {
		t.Fatalf("generation chain broken: %+v", sets)
	}

	plan, err := r.cat.Plan(catalog.PlanOptions{Engine: catalog.Image, FSID: "vol0", At: results[1].Date})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 2 {
		t.Fatalf("mid-time image chain: %s", plan)
	}
	res, err := Recover(ctx, r.f, r.pool, plan, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlocksRestored == 0 {
		t.Fatal("image recovery wrote no blocks")
	}
	if diffs := workload.DiffDigests(states[1], r.digest(t)); len(diffs) > 0 {
		t.Fatalf("mid-time image recovery differs: %v", diffs)
	}

	// Latest state: all three image sets.
	plan, err = r.cat.Plan(catalog.PlanOptions{Engine: catalog.Image, FSID: "vol0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Steps) != 3 {
		t.Fatalf("latest image chain: %s", plan)
	}
	if _, err := Recover(ctx, r.f, r.pool, plan, RecoverOptions{}); err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(states[2], r.digest(t)); len(diffs) > 0 {
		t.Fatalf("latest image recovery differs: %v", diffs)
	}

	// Single-file extraction from the image chain: replayed offline,
	// the production volume untouched.
	plan, err = r.cat.Plan(catalog.PlanOptions{Engine: catalog.Image, FSID: "vol0", File: "/data/report.txt"})
	if err != nil {
		t.Fatal(err)
	}
	res, err = Recover(ctx, r.f, r.pool, plan, RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Files["/data/report.txt"]) != "version 2 of the report" {
		t.Fatalf("extracted %q", res.Files["/data/report.txt"])
	}
}

// TestScheduledRetentionReclaim runs a longer schedule with KeepLast
// retention and checks volumes are reclaimed only once every set on
// them has expired.
func TestScheduledRetentionReclaim(t *testing.T) {
	r := newRig(t, catalog.Logical)
	r.s.cfg.Policy = BSDLadder{Ladder: []int{0, 0, 0}} // all fulls: no chains to pin media
	r.s.cfg.Retention = media.KeepLast{N: 2}
	var run int
	r.s.cfg.Churn = func(ctx context.Context, n int) error {
		run++
		_, err := r.f.FS.WriteFile(ctx, fmt.Sprintf("/churn/f%d", run), []byte("x"), 0644)
		return err
	}
	results, err := r.s.RunN(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	var expired []uint64
	for _, res := range results {
		expired = append(expired, res.Expired...)
	}
	if len(expired) != 3 {
		t.Fatalf("expired %v, want 3 sets", expired)
	}
	if live := r.cat.Live(); len(live) != 2 {
		t.Fatalf("%d live sets, want 2", len(live))
	}
	// Every live set's media must still be active; a reclaimed volume
	// must hold no live set.
	liveVols := map[string]bool{}
	for _, ds := range r.cat.Live() {
		for _, m := range ds.Media {
			liveVols[m.Volume] = true
		}
	}
	for _, v := range r.pool.Volumes() {
		if liveVols[v.Label] && v.State != media.Active {
			t.Fatalf("volume %s holds live data but is %v", v.Label, v.State)
		}
		if v.State == media.Scratch && liveVols[v.Label] {
			t.Fatalf("volume %s reclaimed while referenced", v.Label)
		}
	}
}

func planSetIDs(p *catalog.Plan) []uint64 {
	out := make([]uint64, len(p.Steps))
	for i, s := range p.Steps {
		out[i] = s.ID
	}
	return out
}

// TestScheduleSurvivesCatalogFailover: the nightly schedule recording
// into a catalog whose journal is replicated across three nodes, with
// the primary replica killed between runs. The schedule must not
// notice — the view service promotes a backup, appends re-route, and
// once the dead node restarts and catches up, every node's journal is
// byte-identical and replays all recorded sets.
func TestScheduleSurvivesCatalogFailover(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Name = "vol0"
	cfg.Simulate = true
	cfg.BlocksPerDisk = 512
	cfg.CartridgesPerDrive = 8
	f, err := core.NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	workload.Generate(ctx, f.FS, workload.Spec{Seed: 77, Files: 25, DirFanout: 4, MeanFileSize: 6 << 10})

	members := []string{"c0", "c1", "c2"}
	cluster, err := replica.New(replica.Config{Members: members, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(cluster)
	if err != nil {
		t.Fatal(err)
	}
	pool := media.NewPool("main", cat)
	if err := pool.Adopt(f.Tapes[0], 0); err != nil {
		t.Fatal(err)
	}
	f.AttachCatalog(cat)
	r := &schedRig{f: f, cat: cat, pool: pool}
	if r.s, err = New(Config{
		Filer: f, Catalog: cat, Pool: pool, Engine: catalog.Logical,
		Policy: BSDLadder{Ladder: []int{3, 5}},
	}); err != nil {
		t.Fatal(err)
	}

	if _, err := r.s.RunN(ctx, 1); err != nil {
		t.Fatalf("run 0: %v", err)
	}
	victim := cluster.View().Primary
	cluster.Kill(victim)
	r.churn(t, 1)
	if _, err := r.s.RunN(ctx, 1); err != nil {
		t.Fatalf("run 1 with dead catalog primary: %v", err)
	}
	if cluster.View().Primary == victim {
		t.Fatalf("view never moved off the dead primary %s", victim)
	}
	if err := cluster.Restart(victim); err != nil {
		t.Fatalf("restarting %s: %v", victim, err)
	}
	r.churn(t, 2)
	if _, err := r.s.RunN(ctx, 1); err != nil {
		t.Fatalf("run 2 after rejoin: %v", err)
	}

	ref := cluster.Node(members[0]).Journal()
	for _, m := range members[1:] {
		if !bytes.Equal(cluster.Node(m).Journal(), ref) {
			t.Fatalf("node %s journal diverged after rejoin", m)
		}
	}
	replay, err := catalog.Open(cluster)
	if err != nil {
		t.Fatalf("replaying replicated catalog: %v", err)
	}
	if got := len(replay.Sets()); got != 3 {
		t.Fatalf("replicated catalog replays %d sets, want 3", got)
	}
	for i, ds := range replay.Sets() {
		if len(ds.Media) == 0 {
			t.Fatalf("set %d recorded no media", i)
		}
	}
}
