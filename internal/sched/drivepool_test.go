package sched

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ndmp"
	"repro/internal/obs"
)

// clockPool builds a pool on a hand-cranked clock so admission and
// bucket behavior are deterministic.
func clockPool(cfg DrivePoolConfig) (*DrivePool, *time.Duration) {
	now := new(time.Duration)
	cfg.Now = func() time.Duration { return *now }
	return NewDrivePool(cfg), now
}

func mustAdmit(t *testing.T, p *DrivePool, tenant string, session uint64, want ndmp.Admission) {
	t.Helper()
	got, msg := p.Admit(tenant, session, 0)
	if got != want {
		t.Fatalf("admit %s/%d = %v (%q), want %v", tenant, session, got, msg, want)
	}
}

// TestSchedAdmissionBounds admits exactly Drives streams, parks the
// overflow, and proves Admit is idempotent: polls from granted and
// queued streams neither consume extra slots nor duplicate waiters.
func TestSchedAdmissionBounds(t *testing.T) {
	p, _ := clockPool(DrivePoolConfig{Drives: 2, MaxQueue: 2})
	mustAdmit(t, p, "a", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "a", 2, ndmp.AdmitGranted)
	mustAdmit(t, p, "a", 3, ndmp.AdmitWait)
	mustAdmit(t, p, "a", 4, ndmp.AdmitWait)
	// Queue full: a fifth stream is refused outright.
	got, msg := p.Admit("a", 5, 0)
	if got != ndmp.AdmitReject || msg == "" {
		t.Fatalf("over-queue admit = %v (%q), want reject with reason", got, msg)
	}
	// Idempotency: a granted stream's re-Hello answers Granted without
	// a second slot; a waiter's poll does not enqueue it twice.
	mustAdmit(t, p, "a", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "a", 3, ndmp.AdmitWait)
	if a, q := p.Active(), p.Queued(); a != 2 || q != 2 {
		t.Fatalf("active=%d queued=%d, want 2/2", a, q)
	}
	// Release is idempotent and frees the slot for the head waiter.
	p.Release("a", 1, 0)
	p.Release("a", 1, 0)
	mustAdmit(t, p, "a", 3, ndmp.AdmitGranted)
	st := p.Stats()
	if st.Granted != 3 || st.Rejected != 1 || st.Released != 1 || st.Waited == 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestSchedNoQueue: a negative MaxQueue disables waiting entirely —
// every over-capacity Hello rejects immediately.
func TestSchedNoQueue(t *testing.T) {
	p, _ := clockPool(DrivePoolConfig{Drives: 1, MaxQueue: -1})
	mustAdmit(t, p, "a", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "b", 2, ndmp.AdmitReject)
	if p.Queued() != 0 {
		t.Fatalf("queued = %d with queueing disabled", p.Queued())
	}
}

// TestSchedFairShare frees one drive under a queue holding a tenant
// that already has streams running and a tenant with none: the
// have-not wins even though it arrived later.
func TestSchedFairShare(t *testing.T) {
	p, _ := clockPool(DrivePoolConfig{Drives: 2})
	mustAdmit(t, p, "hog", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "hog", 2, ndmp.AdmitGranted)
	mustAdmit(t, p, "hog", 3, ndmp.AdmitWait) // arrived first
	mustAdmit(t, p, "newbie", 4, ndmp.AdmitWait)
	p.Release("hog", 1, 0)
	// hog polls first but still has one active stream; newbie has none
	// and must win the freed drive.
	mustAdmit(t, p, "hog", 3, ndmp.AdmitWait)
	mustAdmit(t, p, "newbie", 4, ndmp.AdmitGranted)
	// The next free drive then goes to hog (both tenants now at one
	// active stream, hog arrived earlier).
	p.Release("newbie", 4, 0)
	mustAdmit(t, p, "hog", 3, ndmp.AdmitGranted)
}

// TestSchedPriority: a higher-priority tenant jumps the whole queue
// regardless of fair share and arrival order.
func TestSchedPriority(t *testing.T) {
	p, _ := clockPool(DrivePoolConfig{Drives: 1, Priority: map[string]int{"gold": 10}})
	mustAdmit(t, p, "bronze", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "iron", 2, ndmp.AdmitWait)
	mustAdmit(t, p, "gold", 3, ndmp.AdmitWait)
	p.Release("bronze", 1, 0)
	mustAdmit(t, p, "iron", 2, ndmp.AdmitWait)
	mustAdmit(t, p, "gold", 3, ndmp.AdmitGranted)
}

// TestSchedStaleWaiterExpiry: a waiter whose client stops polling is
// reclaimed after StaleAfter, freeing its queue slot; a live poller
// at the same age survives.
func TestSchedStaleWaiterExpiry(t *testing.T) {
	p, now := clockPool(DrivePoolConfig{Drives: 1, MaxQueue: 2, StaleAfter: time.Second})
	mustAdmit(t, p, "a", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "dead", 2, ndmp.AdmitWait)
	mustAdmit(t, p, "live", 3, ndmp.AdmitWait)
	*now = 600 * time.Millisecond
	mustAdmit(t, p, "live", 3, ndmp.AdmitWait) // refreshes liveness
	*now = 1200 * time.Millisecond
	// dead's lastPoll is now 1.2s old (> StaleAfter); live's is 0.6s.
	mustAdmit(t, p, "late", 4, ndmp.AdmitWait) // fits: dead was expired
	if q := p.Queued(); q != 2 {
		t.Fatalf("queued = %d after expiry, want 2", q)
	}
	if st := p.Stats(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	// The freed drive goes to the live waiter, not the expired one.
	p.Release("a", 1, 0)
	mustAdmit(t, p, "live", 3, ndmp.AdmitGranted)
}

// TestSchedTenantRateLimit charges bytes against a per-tenant bucket:
// the charge that overdraws still lands (the bytes are on tape) but
// credit is withheld until refill repays the debt.
func TestSchedTenantRateLimit(t *testing.T) {
	p, now := clockPool(DrivePoolConfig{
		Drives: 2, DefaultRate: 1000, Rates: map[string]int64{"vip": 0},
	})
	// Burst = one second of rate: the first 1000 bytes pass.
	if !p.Charge("a", 1, 0, 1000) {
		t.Fatal("charge within burst denied")
	}
	// Overdraw: the bucket goes into debt and withholds credit.
	if p.Charge("a", 1, 0, 500) {
		t.Fatal("overdraw charge still had credit")
	}
	// A pure poll (heartbeat) while in debt stays throttled.
	if p.Charge("a", 1, 0, 0) {
		t.Fatal("poll while in debt had credit")
	}
	// Half a second refills 500 tokens, exactly repaying the debt.
	*now = 500 * time.Millisecond
	if !p.Charge("a", 1, 0, 0) {
		t.Fatal("poll after refill still throttled")
	}
	// An unlimited tenant (explicit 0 rate) is never throttled.
	if !p.Charge("vip", 2, 0, 1<<30) {
		t.Fatal("unlimited tenant throttled")
	}
	if st := p.Stats(); st.Throttled != 2 {
		t.Fatalf("throttled = %d, want 2", st.Throttled)
	}
}

// TestSchedAggregateRateLimit: the pool-wide bucket (Drives×DriveRate)
// throttles a tenant that is individually unlimited.
func TestSchedAggregateRateLimit(t *testing.T) {
	p, now := clockPool(DrivePoolConfig{Drives: 2, DriveRate: 500})
	// Aggregate burst is 1000; the second 600-byte charge overdraws.
	if !p.Charge("a", 1, 0, 600) {
		t.Fatal("first charge denied")
	}
	if p.Charge("b", 2, 0, 600) {
		t.Fatal("aggregate overdraw had credit")
	}
	*now = 400 * time.Millisecond // refills 400, repaying the 200 debt
	if !p.Charge("b", 2, 0, 0) {
		t.Fatal("poll after aggregate refill still throttled")
	}
}

// TestSchedMetrics registers the pool's collectors and spot-checks a
// few against the stats snapshot.
func TestSchedMetrics(t *testing.T) {
	p, _ := clockPool(DrivePoolConfig{Drives: 1, MaxQueue: 1})
	mustAdmit(t, p, "a", 1, ndmp.AdmitGranted)
	mustAdmit(t, p, "a", 2, ndmp.AdmitWait)
	mustAdmit(t, p, "a", 3, ndmp.AdmitReject)
	r := obs.NewRegistry()
	p.RegisterMetrics(r)
	for name, want := range map[string]float64{
		"sched_pool_granted_total":  1,
		"sched_pool_rejected_total": 1,
		"sched_pool_active_streams": 1,
		"sched_pool_queued_streams": 1,
	} {
		if got := r.Sum(name); got != want {
			t.Fatalf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestSchedManyTenantsConverge drives a release/admit churn across
// many tenants and checks the scheduler never exceeds its drive count
// and eventually serves everyone.
func TestSchedManyTenantsConverge(t *testing.T) {
	const tenants, drives = 8, 3
	p, _ := clockPool(DrivePoolConfig{Drives: drives, MaxQueue: tenants})
	served := make(map[string]bool)
	for round := 0; len(served) < tenants && round < 100; round++ {
		for i := 0; i < tenants; i++ {
			tn := fmt.Sprintf("t%d", i)
			if served[tn] {
				continue
			}
			if got, _ := p.Admit(tn, uint64(i), 0); got == ndmp.AdmitGranted {
				served[tn] = true
				p.Release(tn, uint64(i), 0)
			}
			if p.Active() > drives {
				t.Fatalf("active %d exceeds drives %d", p.Active(), drives)
			}
		}
	}
	if len(served) != tenants {
		t.Fatalf("only %d/%d tenants served", len(served), tenants)
	}
}
