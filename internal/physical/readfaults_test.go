package physical

import (
	"errors"
	"testing"

	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// The restore-side read path shares logical.DriveSource, so image
// verify and salvage restores exercise the same bounded
// retry-with-backoff as the dumps that wrote the tape.

func imageOnTape(t *testing.T) (*wafl.FS, *storage.MemDevice, *tape.Drive) {
	t.Helper()
	fs, dev := newFS(t, 4096)
	workload.Generate(ctx, fs, workload.Spec{Seed: 71, Files: 10, DirFanout: 3, MeanFileSize: 16 << 10})
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	drive := tape.NewDrive(nil, "t0", tape.DefaultParams())
	drive.AddCartridges(tape.NewCartridge("a"))
	if err := drive.Load(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s",
		Sink: &logical.DriveSink{Drive: drive},
	}); err != nil {
		t.Fatal(err)
	}
	drive.Flush(nil)
	drive.Rewind(nil)
	return fs, dev, drive
}

// TestImageVerifyRetriesTransientReads: VerifyStream over a drive whose
// every read fault is transient completes clean, absorbed by the
// source's retry policy.
func TestImageVerifyRetriesTransientReads(t *testing.T) {
	_, _, drive := imageOnTape(t)
	drive.InjectFaults(tape.FaultConfig{Seed: 72, ReadFault: 0.2, ReadTransient: 1})
	src := logical.NewDriveSource(drive, nil, 1)
	chk, err := VerifyStream(src)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if chk.Extents == 0 || chk.BlockCount == 0 {
		t.Fatalf("verify saw an empty stream: %+v", chk)
	}
	if retries, _ := src.ReadStats(); retries == 0 {
		t.Fatal("no transient faults fired during verify")
	}
}

// TestImageSalvageRetriesTransientReads: a Salvage restore runs the
// same retry policy as a normal restore — transient read faults are
// absorbed, the stream completes with its trailer, and the root is
// installed, so the restored volume is byte-identical.
func TestImageSalvageRetriesTransientReads(t *testing.T) {
	fs, dev, drive := imageOnTape(t)
	drive.InjectFaults(tape.FaultConfig{Seed: 73, ReadFault: 0.4, ReadTransient: 1})
	drive.FailNextRead(true) // at least one marginal read, whatever the draws do
	src := logical.NewDriveSource(drive, nil, 1)
	target := storage.NewMemDevice(dev.NumBlocks())
	stats, err := Restore(ctx, RestoreOptions{
		Vol: target, Source: src, Salvage: true,
	})
	if err != nil {
		t.Fatalf("salvage restore: %v", err)
	}
	if stats.TornTail {
		t.Fatal("clean stream reported a torn tail")
	}
	if retries, _ := src.ReadStats(); retries == 0 {
		t.Fatal("no transient faults fired during salvage restore")
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("s")
	want, _ := workload.TreeDigest(ctx, sv, "/")
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("restored volume differs: %v", diffs[0])
	}
}

// TestImageRestoreSurfacesPersistentReadFault: without SkipDamaged, a
// latched bad spot fails the restore with a typed media-read error —
// the caller decides whether to fall back to salvage.
func TestImageRestoreSurfacesPersistentReadFault(t *testing.T) {
	_, dev, drive := imageOnTape(t)
	if err := drive.SpaceRecords(nil, 2); err != nil {
		t.Fatal(err)
	}
	drive.FailNextRead(false)
	if _, err := drive.ReadRecord(nil); err == nil {
		t.Fatal("latching read unexpectedly succeeded")
	}
	drive.Rewind(nil)
	target := storage.NewMemDevice(dev.NumBlocks())
	_, err := Restore(ctx, RestoreOptions{
		Vol: target, Source: logical.NewDriveSource(drive, nil, 1),
	})
	if !errors.Is(err, tape.ErrMediaRead) {
		t.Fatalf("restore returned %v, want a media read error", err)
	}
}
