package physical

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/storage"
)

type nullSink struct{}

func (nullSink) WriteRecord(data []byte) error { return nil }
func (nullSink) NextVolume() error             { return nil }

// BenchmarkImageRecordWrite measures the image-dump record path: an
// 8-byte extent header plus one RecordBlocks-sized payload chunk with
// its CRC per iteration, through the stream writer to a null sink —
// the steady-state inner loop of Dump.
func BenchmarkImageRecordWrite(b *testing.B) {
	w := newStreamWriter(nullSink{})
	chunk := make([]byte, RecordBlocks*storage.BlockSize)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	crc := crc32.NewIEEE()
	var ext [8]byte
	binary.LittleEndian.PutUint32(ext[0:], 7)
	binary.LittleEndian.PutUint32(ext[4:], RecordBlocks)
	b.SetBytes(int64(len(chunk)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.write(ext[:]); err != nil {
			b.Fatal(err)
		}
		crc.Write(chunk)
		if err := w.write(chunk); err != nil {
			b.Fatal(err)
		}
	}
}
