// Package physical implements the paper's physical (block-based)
// backup strategy: WAFL image dump and restore (§4).
//
// Image dump copies the used disk blocks of a snapshot, in ascending
// block order, to the backup medium — "without interpretation (or with
// a minimum of interpretation)". It uses the filesystem only to read
// the snapshot's frozen block map; the data itself moves through the
// raw volume (the RAID layer), bypassing the filesystem, the buffer
// cache and NVRAM. Snapshot bit planes make incremental image dumps a
// set difference of two block maps (the paper's Table 1), and because
// the dumped map covers every older snapshot's world too, "the system
// you restore looks just like the system you dumped, snapshots and
// all".
//
// Image restore writes blocks straight back to a raw volume and
// finishes by installing a composed root structure. The stream is
// non-portable by design: restore demands a volume at least as large
// as the source and, for incrementals, the exact base generation.
package physical

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// Stream geometry and identity.
const (
	// Magic identifies an image stream.
	Magic = "WAFLIMG2"
	// RecordBlocks is how many 4 KB blocks of payload go into one tape
	// record: image dump streams in large records to keep the drive at
	// speed.
	RecordBlocks = 15
	// EndSentinel marks the stream trailer extent; its count field
	// carries the payload checksum.
	EndSentinel = 0xFFFFFFFF
	// CkptSentinel marks a checkpoint extent: everything before it is
	// durably on media and its count field carries the running payload
	// checksum, so an interrupted stream is verifiable up to its last
	// checkpoint.
	CkptSentinel = 0xFFFFFFFE
)

// Errors.
var (
	ErrBadStream   = errors.New("physical: malformed image stream")
	ErrGeometry    = errors.New("physical: target volume too small for image")
	ErrWrongBase   = errors.New("physical: incremental does not match target state")
	ErrNotIncrem   = errors.New("physical: stream is not an incremental")
	ErrBadChecksum = errors.New("physical: stream checksum mismatch")
)

// Sink is where the dump writes tape records; structurally identical
// to dumpfmt.Sink so the same drive adapters serve both engines.
type Sink interface {
	WriteRecord(data []byte) error
	NextVolume() error
}

// Source supplies tape records to restore; io.EOF ends the stream.
type Source interface {
	ReadRecord() ([]byte, error)
}

// RunDevice is optionally implemented by volumes that support bulk
// sequential runs (the RAID layer does); both engines prefer it and
// fall back to per-block I/O via the storage run shim otherwise.
type RunDevice = storage.RunDevice

// Costs is the CPU model for the physical path: a single per-block
// charge, far below the logical path's, because no metadata is
// interpreted (paper Table 3: 5% vs 25% CPU).
type Costs struct {
	CPU       *sim.Station
	DumpBlock time.Duration // per block dumped
	RestBlock time.Duration // per block restored
}

// DefaultCosts returns the calibrated physical-path CPU model, from
// the paper's stage utilizations: image dump at ~5% CPU and 8.6 MB/s
// is ~23 µs per block; image restore at ~11% and 8.8 MB/s is ~50 µs.
func DefaultCosts() Costs {
	return Costs{DumpBlock: 23 * time.Microsecond, RestBlock: 50 * time.Microsecond}
}

func (c *Costs) charge(ctx context.Context, d time.Duration) {
	if c == nil || c.CPU == nil || d <= 0 {
		return
	}
	if p := sim.ProcFrom(ctx); p != nil {
		c.CPU.Sync(p, d)
	}
}

// schedule reserves d of CPU time and returns its completion time
// without blocking. The pipelined readers use it so one extent's
// checksum/copy work overlaps the next extent's disk time; the reader
// folds the returned time into its next wait, which is what paces it
// when the CPU saturates. The sequential engine charges Sync because
// it has nothing to overlap with.
func (c *Costs) schedule(ctx context.Context, d time.Duration) sim.Time {
	if c == nil || c.CPU == nil || d <= 0 {
		return 0
	}
	if p := sim.ProcFrom(ctx); p != nil {
		return c.CPU.Schedule(p, d)
	}
	return 0
}

// DumpOptions configures an image dump.
type DumpOptions struct {
	// FS supplies block-map and snapshot-table access only.
	FS *wafl.FS
	// Vol is the raw volume the blocks are read from, bypassing FS.
	Vol storage.Device
	// SnapName is the snapshot to dump.
	SnapName string
	// BaseSnapName, when set, makes this an incremental image dump:
	// only blocks in SnapName's world but not in BaseSnapName's world
	// are written (Table 1 semantics).
	BaseSnapName string
	// Sink receives the stream of a single-stream dump. Mutually
	// exclusive with Sinks.
	Sink Sink
	// Sinks fans one Dump call out across parallel tape drives: shard
	// k of len(Sinks) writes the k-th contiguous slice of the block
	// set to Sinks[k] as its own self-contained stream (§5.2: "for
	// physical dump, we dumped the home volume to multiple tape
	// devices in parallel"), all shards streaming concurrently on the
	// internal pipeline. Restore applies the shard streams in any
	// order. A shard failure does not abort its siblings: the other
	// shards run to completion and the failed shard's checkpoint comes
	// back in ShardResults for a single-shard resume.
	Sinks []Sink
	// Readers is the number of parallel block readers per shard
	// (default 1). Readers pull extents off a shared work list and the
	// per-drive writer reassembles them in stream order, so the bytes
	// on tape do not depend on Readers.
	Readers int
	// ReadAhead is how many extent reads each reader keeps in flight
	// on the volume's async bulk path (default 1, i.e. none). Higher
	// values keep the spindle queues full across the reader's CPU
	// time.
	ReadAhead int
	// Costs is the CPU model; zero value charges nothing.
	Costs Costs
	// Shard/Shards split the dump across parallel tape drives when the
	// caller drives each shard itself (one Dump call per drive): shard
	// k of n writes the k-th contiguous slice of the block set as its
	// own self-contained stream. Zero Shards means no sharding. With
	// Sinks set, sharding is implied and these must be zero.
	Shard  int
	Shards int
	// CheckpointEvery emits a durable checkpoint extent after every N
	// blocks, making the dump restartable (the paper's §4 restarts
	// image dumps at tape boundaries). 0 disables checkpoints.
	CheckpointEvery int
	// Resume continues an interrupted single-stream dump from the
	// checkpoint a failed Dump returned: the block set is recomputed
	// from the same (frozen) snapshots and the first BlocksDone
	// entries are skipped.
	Resume *Checkpoint
	// ResumeShards, len(Sinks) long, resumes individual shards of a
	// parallel dump: entry k is shard k's checkpoint from a previous
	// run's ShardResults, or nil to dump that shard from its start.
	// Shards that already completed can be resumed with a checkpoint
	// whose BlocksDone covers the whole shard; their stream is then
	// header+trailer only.
	ResumeShards []*Checkpoint
}

// Checkpoint is the durable progress of an interrupted image dump. The
// block set of a snapshot pair is deterministic, so a count of blocks
// already on media — plus which contiguous shard of the set this
// stream carries — is a complete resume point.
type Checkpoint struct {
	Gen        uint64
	BaseGen    uint64
	BlocksDone int // blocks of this shard durably on media
	// Shard/Shards record the shard identity of a sharded dump (both
	// zero for an unsharded stream), so a resume cannot be applied to
	// the wrong slice of the block set.
	Shard  int
	Shards int
}

// ShardResult is one shard's outcome within a (possibly parallel)
// dump.
type ShardResult struct {
	Shard         int
	BlocksDumped  int
	BlocksSkipped int // already on media per the resume checkpoint
	BytesWritten  int64
	// Checkpoint is set (alongside a non-nil Err) when the shard
	// aborted but can resume from its last durable checkpoint.
	Checkpoint *Checkpoint
	// Err is the shard's failure, nil when the shard completed.
	Err error
}

// DumpStats reports what an image dump did. For a parallel dump the
// top-level counters aggregate across shards and ShardResults carries
// the per-shard detail.
type DumpStats struct {
	BlocksDumped  int
	BlocksSkipped int // already on media per the resume checkpoint
	BytesWritten  int64
	Gen           uint64
	BaseGen       uint64
	// NBlocks is the source volume geometry, recorded in the stream
	// header; the backup catalog keeps it so a restore can size its
	// target volume without mounting any media.
	NBlocks uint64
	// Checkpoint is set (alongside a non-nil error) when a
	// single-stream dump aborted but can resume; nil on success or
	// when checkpoints were disabled and no resume state existed.
	Checkpoint *Checkpoint
	// ShardResults is the per-shard outcome, one entry per stream
	// (one for a single-stream dump, len(Sinks) for a parallel one).
	ShardResults []ShardResult
}

// streamHeader is the fixed preamble of an image stream.
type streamHeader struct {
	nblocks    uint64
	gen        uint64
	baseGen    uint64 // 0 for a full dump
	blockCount uint64
	root       []byte // composed fsinfo image
}

const headerFixed = 8 + 4 + 8 + 8 + 8 + 8 + 4 // magic, ver, nblocks, gen, baseGen, count, rootLen

func (h *streamHeader) marshal() []byte {
	buf := make([]byte, headerFixed+len(h.root))
	copy(buf, Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], 1)
	le.PutUint64(buf[12:], h.nblocks)
	le.PutUint64(buf[20:], h.gen)
	le.PutUint64(buf[28:], h.baseGen)
	le.PutUint64(buf[36:], h.blockCount)
	le.PutUint32(buf[44:], uint32(len(h.root)))
	copy(buf[headerFixed:], h.root)
	return buf
}

// maxRun bounds one device visit: 2 MB of consecutive blocks.
const maxRun = 512

// Dump writes the image stream for opts.SnapName — to opts.Sink as a
// single stream, or fanned out across opts.Sinks with one concurrent
// shard per drive. Either way the blocks move through the stage
// pipeline: parallel block readers sharded by block range feed a
// per-drive tape writer through a bounded queue.
func Dump(ctx context.Context, opts DumpOptions) (*DumpStats, error) {
	multi := len(opts.Sinks) > 0
	sinks := opts.Sinks
	if !multi {
		if opts.FS == nil || opts.Vol == nil || opts.Sink == nil {
			return nil, fmt.Errorf("physical: nil fs, volume or sink")
		}
		sinks = []Sink{opts.Sink}
	} else {
		if opts.FS == nil || opts.Vol == nil {
			return nil, fmt.Errorf("physical: nil fs, volume or sink")
		}
		if opts.Sink != nil {
			return nil, fmt.Errorf("physical: Sink and Sinks are mutually exclusive")
		}
		if opts.Shards != 0 || opts.Shard != 0 {
			return nil, fmt.Errorf("physical: Shard/Shards must be zero with Sinks (sharding is implied)")
		}
		if opts.Resume != nil {
			return nil, fmt.Errorf("physical: use ResumeShards with Sinks")
		}
		if opts.ResumeShards != nil && len(opts.ResumeShards) != len(sinks) {
			return nil, fmt.Errorf("physical: %d resume checkpoints for %d sinks", len(opts.ResumeShards), len(sinks))
		}
		for _, s := range sinks {
			if s == nil {
				return nil, fmt.Errorf("physical: nil sink in Sinks")
			}
		}
	}
	nShards := len(sinks)

	ctx, dumpSpan := obs.Start(ctx, "physical.dump")
	defer dumpSpan.End()
	snap, err := opts.FS.Snapshot(opts.SnapName)
	if err != nil {
		return nil, err
	}
	words, err := opts.FS.SnapshotBlockMapWords(ctx, opts.SnapName)
	if err != nil {
		return nil, err
	}

	var baseWords []uint32
	var baseGen uint64
	if opts.BaseSnapName != "" {
		base, err := opts.FS.Snapshot(opts.BaseSnapName)
		if err != nil {
			return nil, err
		}
		if base.Gen >= snap.Gen {
			return nil, fmt.Errorf("physical: base %q is not older than %q", opts.BaseSnapName, opts.SnapName)
		}
		baseWords, err = opts.FS.SnapshotBlockMapWords(ctx, opts.BaseSnapName)
		if err != nil {
			return nil, err
		}
		baseGen = base.Gen
	}

	// Block selection: every block in the snapshot's world; for an
	// incremental, minus every block in the base's world — exactly the
	// bitmap set difference of the paper's §4.1.
	all := IncrementalBlocks(words, baseWords)

	// Shard specs: the contiguous block-set slice, the shard identity
	// recorded in checkpoints, and the resume state. The slice formula
	// is the same for a parallel dump and a caller-driven Shard/Shards
	// dump, so the streams (and resume checkpoints) are interchangeable
	// between the two modes.
	type shardSpec struct {
		blocks            []uint32
		ckShard, ckShards int
		resume            *Checkpoint
	}
	specs := make([]shardSpec, nShards)
	if multi {
		for k := range specs {
			lo := len(all) * k / nShards
			hi := len(all) * (k + 1) / nShards
			specs[k] = shardSpec{blocks: all[lo:hi], ckShard: k, ckShards: nShards}
			if opts.ResumeShards != nil {
				specs[k].resume = opts.ResumeShards[k]
			}
		}
	} else {
		blocks := all
		if opts.Shards > 1 {
			if opts.Shard < 0 || opts.Shard >= opts.Shards {
				return nil, fmt.Errorf("physical: shard %d of %d", opts.Shard, opts.Shards)
			}
			lo := len(blocks) * opts.Shard / opts.Shards
			hi := len(blocks) * (opts.Shard + 1) / opts.Shards
			blocks = blocks[lo:hi]
		}
		specs[0] = shardSpec{blocks: blocks, ckShard: opts.Shard, ckShards: opts.Shards, resume: opts.Resume}
	}

	// A resumed shard recomputes the same deterministic block set (the
	// snapshots are frozen) and skips what its checkpoint vouches for.
	// Validate every resume before any tape moves.
	for k := range specs {
		r := specs[k].resume
		if r == nil {
			continue
		}
		if r.Gen != snap.Gen || r.BaseGen != baseGen {
			return nil, fmt.Errorf("physical: resume checkpoint is for gen %d/base %d, dump is gen %d/base %d",
				r.Gen, r.BaseGen, snap.Gen, baseGen)
		}
		if r.Shard != specs[k].ckShard || r.Shards != specs[k].ckShards {
			return nil, fmt.Errorf("physical: resume checkpoint is for shard %d/%d, dump shard is %d/%d",
				r.Shard, r.Shards, specs[k].ckShard, specs[k].ckShards)
		}
		if r.BlocksDone > len(specs[k].blocks) {
			return nil, fmt.Errorf("physical: resume checkpoint claims %d of %d blocks", r.BlocksDone, len(specs[k].blocks))
		}
	}

	older, err := opts.FS.SnapshotsBefore(opts.SnapName)
	if err != nil {
		return nil, err
	}
	root, err := wafl.ComposeRestoreRoot(uint64(len(words)), snap, older)
	if err != nil {
		return nil, err
	}
	hdr := streamHeader{
		nblocks: uint64(len(words)),
		gen:     snap.Gen,
		baseGen: baseGen,
		root:    root,
	}

	stats := &DumpStats{Gen: snap.Gen, BaseGen: baseGen, NBlocks: uint64(len(words))}
	results := make([]ShardResult, nShards)
	if nShards == 1 {
		results[0] = dumpShard(ctx, &opts, sinks[0], specs[0].blocks, hdr, specs[0].ckShard, specs[0].ckShards, specs[0].resume)
	} else {
		// Shards are isolated: each runs its own pipeline, and a plain
		// group joins them, so one drive's failure leaves the sibling
		// shards streaming to completion.
		g := pipeline.NewGroup(ctx)
		for k := range specs {
			k := k
			g.Go(fmt.Sprintf("physical.shard%d", k), func(ctx context.Context) error {
				results[k] = dumpShard(ctx, &opts, sinks[k], specs[k].blocks, hdr, specs[k].ckShard, specs[k].ckShards, specs[k].resume)
				return nil // shard errors are isolated in results
			})
		}
		if err := g.Wait(); err != nil {
			return stats, err
		}
	}

	stats.ShardResults = results
	var errs []error
	for k := range results {
		r := &results[k]
		stats.BlocksDumped += r.BlocksDumped
		stats.BlocksSkipped += r.BlocksSkipped
		stats.BytesWritten += r.BytesWritten
		if r.Err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", r.Shard, r.Err))
		}
	}
	if len(errs) > 0 {
		if !multi {
			// Single-stream contract: the raw error and the resume
			// checkpoint at the stats top level, exactly as before.
			stats.Checkpoint = results[0].Checkpoint
			return stats, results[0].Err
		}
		return stats, errors.Join(errs...)
	}
	dumpSpan.SetAttr("blocks", stats.BlocksDumped)
	dumpSpan.SetAttr("bytes", stats.BytesWritten)
	dumpSpan.SetAttr("gen", stats.Gen)
	dumpSpan.SetAttr("shards", nShards)
	if opts.Shards > 1 {
		dumpSpan.SetAttr("shard", opts.Shard)
	}
	m := obs.MetricsFrom(ctx)
	l := obs.Labels{"snap": opts.SnapName}
	m.Counter("physical_dump_blocks_total", l).Add(int64(stats.BlocksDumped))
	m.Counter("physical_dump_bytes_total", l).Add(stats.BytesWritten)
	return stats, nil
}

// IncrementalBlocks computes the dump set from two snapshot block
// maps: blocks used in the target's world (word != 0) and not used in
// the base's world — the paper's Table 1. baseWords nil means a full
// dump (everything used in the target). The fixed fsinfo region is
// excluded: restore writes the composed root itself.
func IncrementalBlocks(words, baseWords []uint32) []uint32 {
	var out []uint32
	for b, w := range words {
		if b < wafl.FsinfoReserved {
			continue
		}
		if w == 0 {
			continue
		}
		if baseWords != nil && b < len(baseWords) && baseWords[b] != 0 {
			continue // in the base: unchanged or deleted, not needed
		}
		out = append(out, uint32(b))
	}
	return out
}

// streamWriter chunks a byte stream into fixed-size tape records,
// switching volumes on end-of-media. The record buffer is pooled and
// filled in place: steady-state record emission allocates nothing.
type streamWriter struct {
	sink    Sink
	rec     *[]byte // pooled backing, recSize long
	n       int     // bytes pending in rec
	written int64
}

const recSize = RecordBlocks * storage.BlockSize

func newStreamWriter(sink Sink) *streamWriter {
	return &streamWriter{sink: sink, rec: bufpool.Get(recSize)}
}

func (w *streamWriter) write(p []byte) error {
	for len(p) > 0 {
		c := copy((*w.rec)[w.n:recSize], p)
		w.n += c
		p = p[c:]
		if w.n == recSize {
			if err := w.emit((*w.rec)[:recSize]); err != nil {
				return err
			}
			w.n = 0
		}
	}
	return nil
}

func (w *streamWriter) emit(rec []byte) error {
	for {
		err := w.sink.WriteRecord(rec)
		if err == nil {
			w.written += int64(len(rec))
			return nil
		}
		if !errors.Is(err, dumpfmt.ErrEndOfMedia) {
			return err
		}
		if err := w.sink.NextVolume(); err != nil {
			return fmt.Errorf("physical: volume change: %w", err)
		}
	}
}

// flushPartial emits any pending partial record immediately — the
// durability point behind checkpoint extents — leaving the writer
// usable. The next record starts fresh; readers reassemble the byte
// stream regardless of record boundaries.
func (w *streamWriter) flushPartial() error {
	if w.n == 0 {
		return nil
	}
	if err := w.emit((*w.rec)[:w.n]); err != nil {
		return err
	}
	w.n = 0
	return nil
}

// flush emits any partial record and recycles the buffer; the writer
// must not be used afterwards.
func (w *streamWriter) flush() error {
	err := w.flushPartial()
	bufpool.Put(w.rec)
	w.rec = nil
	return err
}
