// Package physical implements the paper's physical (block-based)
// backup strategy: WAFL image dump and restore (§4).
//
// Image dump copies the used disk blocks of a snapshot, in ascending
// block order, to the backup medium — "without interpretation (or with
// a minimum of interpretation)". It uses the filesystem only to read
// the snapshot's frozen block map; the data itself moves through the
// raw volume (the RAID layer), bypassing the filesystem, the buffer
// cache and NVRAM. Snapshot bit planes make incremental image dumps a
// set difference of two block maps (the paper's Table 1), and because
// the dumped map covers every older snapshot's world too, "the system
// you restore looks just like the system you dumped, snapshots and
// all".
//
// Image restore writes blocks straight back to a raw volume and
// finishes by installing a composed root structure. The stream is
// non-portable by design: restore demands a volume at least as large
// as the source and, for incrementals, the exact base generation.
package physical

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// Stream geometry and identity.
const (
	// Magic identifies an image stream.
	Magic = "WAFLIMG2"
	// RecordBlocks is how many 4 KB blocks of payload go into one tape
	// record: image dump streams in large records to keep the drive at
	// speed.
	RecordBlocks = 15
	// EndSentinel marks the stream trailer extent; its count field
	// carries the payload checksum.
	EndSentinel = 0xFFFFFFFF
	// CkptSentinel marks a checkpoint extent: everything before it is
	// durably on media and its count field carries the running payload
	// checksum, so an interrupted stream is verifiable up to its last
	// checkpoint.
	CkptSentinel = 0xFFFFFFFE
)

// Errors.
var (
	ErrBadStream   = errors.New("physical: malformed image stream")
	ErrGeometry    = errors.New("physical: target volume too small for image")
	ErrWrongBase   = errors.New("physical: incremental does not match target state")
	ErrNotIncrem   = errors.New("physical: stream is not an incremental")
	ErrBadChecksum = errors.New("physical: stream checksum mismatch")
)

// Sink is where the dump writes tape records; structurally identical
// to dumpfmt.Sink so the same drive adapters serve both engines.
type Sink interface {
	WriteRecord(data []byte) error
	NextVolume() error
}

// Source supplies tape records to restore; io.EOF ends the stream.
type Source interface {
	ReadRecord() ([]byte, error)
}

// RunDevice is optionally implemented by volumes that support bulk
// sequential runs (the RAID layer does); both engines prefer it and
// fall back to per-block I/O via the storage run shim otherwise.
type RunDevice = storage.RunDevice

// Costs is the CPU model for the physical path: a single per-block
// charge, far below the logical path's, because no metadata is
// interpreted (paper Table 3: 5% vs 25% CPU).
type Costs struct {
	CPU       *sim.Station
	DumpBlock time.Duration // per block dumped
	RestBlock time.Duration // per block restored
}

// DefaultCosts returns the calibrated physical-path CPU model, from
// the paper's stage utilizations: image dump at ~5% CPU and 8.6 MB/s
// is ~23 µs per block; image restore at ~11% and 8.8 MB/s is ~50 µs.
func DefaultCosts() Costs {
	return Costs{DumpBlock: 23 * time.Microsecond, RestBlock: 50 * time.Microsecond}
}

func (c *Costs) charge(ctx context.Context, d time.Duration) {
	if c == nil || c.CPU == nil || d <= 0 {
		return
	}
	if p := sim.ProcFrom(ctx); p != nil {
		c.CPU.Sync(p, d)
	}
}

// DumpOptions configures an image dump.
type DumpOptions struct {
	// FS supplies block-map and snapshot-table access only.
	FS *wafl.FS
	// Vol is the raw volume the blocks are read from, bypassing FS.
	Vol storage.Device
	// SnapName is the snapshot to dump.
	SnapName string
	// BaseSnapName, when set, makes this an incremental image dump:
	// only blocks in SnapName's world but not in BaseSnapName's world
	// are written (Table 1 semantics).
	BaseSnapName string
	// Sink receives the stream.
	Sink Sink
	// Costs is the CPU model; zero value charges nothing.
	Costs Costs
	// Shard/Shards split the dump across parallel tape drives: shard k
	// of n writes the k-th contiguous slice of the block set as its
	// own self-contained stream (§5.2: "for physical dump, we dumped
	// the home volume to multiple tape devices in parallel"). Restore
	// applies all shards, in any order. Zero Shards means no sharding.
	Shard  int
	Shards int
	// CheckpointEvery emits a durable checkpoint extent after every N
	// blocks, making the dump restartable (the paper's §4 restarts
	// image dumps at tape boundaries). 0 disables checkpoints.
	CheckpointEvery int
	// Resume continues an interrupted dump from the checkpoint a failed
	// Dump returned: the block set is recomputed from the same (frozen)
	// snapshots and the first BlocksDone entries are skipped.
	Resume *Checkpoint
}

// Checkpoint is the durable progress of an interrupted image dump. The
// block set of a snapshot pair is deterministic, so a count of blocks
// already on media is a complete resume point.
type Checkpoint struct {
	Gen        uint64
	BaseGen    uint64
	BlocksDone int // blocks durably on media
}

// DumpStats reports what an image dump did.
type DumpStats struct {
	BlocksDumped  int
	BlocksSkipped int // already on media per the resume checkpoint
	BytesWritten  int64
	Gen           uint64
	BaseGen       uint64
	// NBlocks is the source volume geometry, recorded in the stream
	// header; the backup catalog keeps it so a restore can size its
	// target volume without mounting any media.
	NBlocks uint64
	// Checkpoint is set (alongside a non-nil error) when the dump
	// aborted but can resume; nil on success or when checkpoints were
	// disabled and no resume state existed.
	Checkpoint *Checkpoint
}

// streamHeader is the fixed preamble of an image stream.
type streamHeader struct {
	nblocks    uint64
	gen        uint64
	baseGen    uint64 // 0 for a full dump
	blockCount uint64
	root       []byte // composed fsinfo image
}

const headerFixed = 8 + 4 + 8 + 8 + 8 + 8 + 4 // magic, ver, nblocks, gen, baseGen, count, rootLen

func (h *streamHeader) marshal() []byte {
	buf := make([]byte, headerFixed+len(h.root))
	copy(buf, Magic)
	le := binary.LittleEndian
	le.PutUint32(buf[8:], 1)
	le.PutUint64(buf[12:], h.nblocks)
	le.PutUint64(buf[20:], h.gen)
	le.PutUint64(buf[28:], h.baseGen)
	le.PutUint64(buf[36:], h.blockCount)
	le.PutUint32(buf[44:], uint32(len(h.root)))
	copy(buf[headerFixed:], h.root)
	return buf
}

// Dump writes the image stream for opts.SnapName to opts.Sink.
func Dump(ctx context.Context, opts DumpOptions) (*DumpStats, error) {
	if opts.FS == nil || opts.Vol == nil || opts.Sink == nil {
		return nil, fmt.Errorf("physical: nil fs, volume or sink")
	}
	ctx, dumpSpan := obs.Start(ctx, "physical.dump")
	defer dumpSpan.End()
	snap, err := opts.FS.Snapshot(opts.SnapName)
	if err != nil {
		return nil, err
	}
	words, err := opts.FS.SnapshotBlockMapWords(ctx, opts.SnapName)
	if err != nil {
		return nil, err
	}

	var baseWords []uint32
	var baseGen uint64
	if opts.BaseSnapName != "" {
		base, err := opts.FS.Snapshot(opts.BaseSnapName)
		if err != nil {
			return nil, err
		}
		if base.Gen >= snap.Gen {
			return nil, fmt.Errorf("physical: base %q is not older than %q", opts.BaseSnapName, opts.SnapName)
		}
		baseWords, err = opts.FS.SnapshotBlockMapWords(ctx, opts.BaseSnapName)
		if err != nil {
			return nil, err
		}
		baseGen = base.Gen
	}

	// Block selection: every block in the snapshot's world; for an
	// incremental, minus every block in the base's world — exactly the
	// bitmap set difference of the paper's §4.1.
	blocks := IncrementalBlocks(words, baseWords)
	if opts.Shards > 1 {
		if opts.Shard < 0 || opts.Shard >= opts.Shards {
			return nil, fmt.Errorf("physical: shard %d of %d", opts.Shard, opts.Shards)
		}
		lo := len(blocks) * opts.Shard / opts.Shards
		hi := len(blocks) * (opts.Shard + 1) / opts.Shards
		blocks = blocks[lo:hi]
	}

	// A resumed dump recomputes the same deterministic block set (the
	// snapshots are frozen) and skips what its checkpoint vouches for.
	skipped := 0
	if opts.Resume != nil {
		if opts.Resume.Gen != snap.Gen || opts.Resume.BaseGen != baseGen {
			return nil, fmt.Errorf("physical: resume checkpoint is for gen %d/base %d, dump is gen %d/base %d",
				opts.Resume.Gen, opts.Resume.BaseGen, snap.Gen, baseGen)
		}
		if opts.Resume.BlocksDone > len(blocks) {
			return nil, fmt.Errorf("physical: resume checkpoint claims %d of %d blocks", opts.Resume.BlocksDone, len(blocks))
		}
		skipped = opts.Resume.BlocksDone
		blocks = blocks[skipped:]
	}

	older, err := opts.FS.SnapshotsBefore(opts.SnapName)
	if err != nil {
		return nil, err
	}
	root, err := wafl.ComposeRestoreRoot(uint64(len(words)), snap, older)
	if err != nil {
		return nil, err
	}

	w := newStreamWriter(opts.Sink)
	hdr := streamHeader{
		nblocks:    uint64(len(words)),
		gen:        snap.Gen,
		baseGen:    baseGen,
		blockCount: uint64(len(blocks)),
		root:       root,
	}

	stats := &DumpStats{BlocksSkipped: skipped, Gen: snap.Gen, BaseGen: baseGen, NBlocks: uint64(len(words))}
	// ckptDone is the absolute count of blocks durably on media; fail
	// wraps an unrecoverable error with it so the caller can resume.
	ckptDone := skipped
	fail := func(err error) (*DumpStats, error) {
		if opts.CheckpointEvery > 0 || opts.Resume != nil {
			stats.Checkpoint = &Checkpoint{Gen: snap.Gen, BaseGen: baseGen, BlocksDone: ckptDone}
		}
		return stats, err
	}

	if err := w.write(hdr.marshal()); err != nil {
		return fail(err)
	}

	// Stream extents in ascending block order: sequential on every
	// member disk, which is what lets physical dump run at device
	// speed. Runs move through storage.ReadRun, which takes the
	// volume's native bulk path (RAID, memory, file) when it has one
	// so concurrent streams amortize their seeks.
	const maxRun = 512 // 2 MB per device visit
	runBuf := bufpool.Get(maxRun * storage.BlockSize)
	defer bufpool.Put(runBuf)
	buf := *runBuf
	crc := crc32.NewIEEE()
	var ext [8]byte
	dumped := 0
	sinceCkpt := 0
	i := 0
	for i < len(blocks) {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		// Coalesce a run of consecutive blocks, then emit it as extents
		// no larger than the device visit (and, with checkpoints on, no
		// larger than the remaining checkpoint budget, so markers land
		// between extents).
		j := i + 1
		for j < len(blocks) && blocks[j] == blocks[j-1]+1 {
			j++
		}
		for b := i; b < j; {
			c := j - b
			if c > maxRun {
				c = maxRun
			}
			if opts.CheckpointEvery > 0 && c > opts.CheckpointEvery-sinceCkpt {
				c = opts.CheckpointEvery - sinceCkpt
			}
			binary.LittleEndian.PutUint32(ext[0:], blocks[b])
			binary.LittleEndian.PutUint32(ext[4:], uint32(c))
			if err := w.write(ext[:]); err != nil {
				return fail(err)
			}
			chunk := buf[:c*storage.BlockSize]
			if err := storage.ReadRun(ctx, opts.Vol, int(blocks[b]), c, chunk); err != nil {
				return fail(err)
			}
			opts.Costs.charge(ctx, time.Duration(c)*opts.Costs.DumpBlock)
			crc.Write(chunk)
			if err := w.write(chunk); err != nil {
				return fail(err)
			}
			dumped += c
			sinceCkpt += c
			if opts.CheckpointEvery > 0 && sinceCkpt >= opts.CheckpointEvery {
				binary.LittleEndian.PutUint32(ext[0:], CkptSentinel)
				binary.LittleEndian.PutUint32(ext[4:], crc.Sum32())
				if err := w.write(ext[:]); err != nil {
					return fail(err)
				}
				if err := w.flushPartial(); err != nil {
					return fail(err)
				}
				// A provisional-accept sink (network session) must drain
				// before the checkpoint may vouch for these blocks.
				if sy, ok := opts.Sink.(dumpfmt.Syncer); ok {
					if err := sy.Sync(); err != nil {
						return fail(err)
					}
				}
				ckptDone = skipped + dumped
				sinceCkpt = 0
			}
			b += c
		}
		i = j
	}
	// Trailer: sentinel extent + checksum of all payload bytes.
	binary.LittleEndian.PutUint32(ext[0:], EndSentinel)
	binary.LittleEndian.PutUint32(ext[4:], crc.Sum32())
	if err := w.write(ext[:]); err != nil {
		return fail(err)
	}
	if err := w.flush(); err != nil {
		return fail(err)
	}
	stats.BlocksDumped = len(blocks)
	stats.BytesWritten = w.written
	dumpSpan.SetAttr("blocks", stats.BlocksDumped)
	dumpSpan.SetAttr("bytes", stats.BytesWritten)
	dumpSpan.SetAttr("gen", stats.Gen)
	if opts.Shards > 1 {
		dumpSpan.SetAttr("shard", opts.Shard)
	}
	m := obs.MetricsFrom(ctx)
	l := obs.Labels{"snap": opts.SnapName}
	m.Counter("physical_dump_blocks_total", l).Add(int64(stats.BlocksDumped))
	m.Counter("physical_dump_bytes_total", l).Add(stats.BytesWritten)
	return stats, nil
}

// IncrementalBlocks computes the dump set from two snapshot block
// maps: blocks used in the target's world (word != 0) and not used in
// the base's world — the paper's Table 1. baseWords nil means a full
// dump (everything used in the target). The fixed fsinfo region is
// excluded: restore writes the composed root itself.
func IncrementalBlocks(words, baseWords []uint32) []uint32 {
	var out []uint32
	for b, w := range words {
		if b < wafl.FsinfoReserved {
			continue
		}
		if w == 0 {
			continue
		}
		if baseWords != nil && b < len(baseWords) && baseWords[b] != 0 {
			continue // in the base: unchanged or deleted, not needed
		}
		out = append(out, uint32(b))
	}
	return out
}

// streamWriter chunks a byte stream into fixed-size tape records,
// switching volumes on end-of-media. The record buffer is pooled and
// filled in place: steady-state record emission allocates nothing.
type streamWriter struct {
	sink    Sink
	rec     *[]byte // pooled backing, recSize long
	n       int     // bytes pending in rec
	written int64
}

const recSize = RecordBlocks * storage.BlockSize

func newStreamWriter(sink Sink) *streamWriter {
	return &streamWriter{sink: sink, rec: bufpool.Get(recSize)}
}

func (w *streamWriter) write(p []byte) error {
	for len(p) > 0 {
		c := copy((*w.rec)[w.n:recSize], p)
		w.n += c
		p = p[c:]
		if w.n == recSize {
			if err := w.emit((*w.rec)[:recSize]); err != nil {
				return err
			}
			w.n = 0
		}
	}
	return nil
}

func (w *streamWriter) emit(rec []byte) error {
	for {
		err := w.sink.WriteRecord(rec)
		if err == nil {
			w.written += int64(len(rec))
			return nil
		}
		if !errors.Is(err, dumpfmt.ErrEndOfMedia) {
			return err
		}
		if err := w.sink.NextVolume(); err != nil {
			return fmt.Errorf("physical: volume change: %w", err)
		}
	}
}

// flushPartial emits any pending partial record immediately — the
// durability point behind checkpoint extents — leaving the writer
// usable. The next record starts fresh; readers reassemble the byte
// stream regardless of record boundaries.
func (w *streamWriter) flushPartial() error {
	if w.n == 0 {
		return nil
	}
	if err := w.emit((*w.rec)[:w.n]); err != nil {
		return err
	}
	w.n = 0
	return nil
}

// flush emits any partial record and recycles the buffer; the writer
// must not be used afterwards.
func (w *streamWriter) flush() error {
	err := w.flushPartial()
	bufpool.Put(w.rec)
	w.rec = nil
	return err
}
