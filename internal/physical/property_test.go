package physical

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// TestImageChainPropertyRandomStates drives randomized filesystem
// evolution — generation, churn, snapshot creation and deletion — and
// after each epoch takes an incremental image dump against the
// previous one. Applying the whole chain to a blank volume must yield
// the final snapshot's exact state, every trial.
func TestImageChainPropertyRandomStates(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		seed := int64(3000 + trial*17)
		r := rand.New(rand.NewSource(seed))
		fs, dev := newFS(t, 16384)
		paths, err := workload.Generate(ctx, fs, workload.Spec{
			Seed: seed, Files: r.Intn(40) + 10, DirFanout: r.Intn(8) + 2,
			MeanFileSize: (r.Intn(16) + 2) << 10, Symlinks: r.Intn(3), Hardlinks: r.Intn(3),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var streams []*memSink
		prev := ""
		epochs := r.Intn(3) + 2
		for e := 0; e < epochs; e++ {
			snap := fmt.Sprintf("epoch%d", e)
			if err := fs.CreateSnapshot(ctx, snap); err != nil {
				t.Fatalf("trial %d epoch %d: %v", trial, e, err)
			}
			sink := &memSink{}
			if _, err := Dump(ctx, DumpOptions{
				FS: fs, Vol: dev, SnapName: snap, BaseSnapName: prev, Sink: sink,
			}); err != nil {
				t.Fatalf("trial %d epoch %d dump: %v", trial, e, err)
			}
			streams = append(streams, sink)
			prev = snap

			// Evolve between epochs.
			paths, err = workload.Age(ctx, fs, paths, workload.AgeSpec{
				Seed: seed + int64(e) + 1, Rounds: 1,
				ChurnPerRound: len(paths)/3 + 1, MeanFileSize: 8 << 10,
			})
			if err != nil {
				t.Fatalf("trial %d epoch %d churn: %v", trial, e, err)
			}
		}

		// Replay the chain onto a blank volume.
		target := storage.NewMemDevice(dev.NumBlocks())
		for i, s := range streams {
			if _, err := Restore(ctx, RestoreOptions{
				Vol: target, Source: s.source(), ExpectIncremental: i > 0,
			}); err != nil {
				t.Fatalf("trial %d applying stream %d: %v", trial, i, err)
			}
		}
		restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			t.Fatalf("trial %d mount: %v", trial, err)
		}
		sv, err := fs.SnapshotView(prev)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := workload.TreeDigest(ctx, sv, "/")
		got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
		if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
			t.Fatalf("trial %d (%d epochs): chain restore differs: %v", trial, epochs, diffs[0])
		}
		// The restored system carries all the intermediate snapshots.
		if len(restored.Snapshots()) != epochs-1 {
			t.Fatalf("trial %d: restored %d snapshots, want %d",
				trial, len(restored.Snapshots()), epochs-1)
		}
		if err := restored.MustCheck(ctx); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestShardedDumpCoversExactlyOnce verifies shard partitioning:
// together the shards carry every block exactly once.
func TestShardedDumpCoversExactlyOnce(t *testing.T) {
	fs, dev := newFS(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 77, Files: 30, DirFanout: 6, MeanFileSize: 8 << 10})
	fs.CreateSnapshot(ctx, "s")
	words, _ := fs.SnapshotBlockMapWords(ctx, "s")
	all := IncrementalBlocks(words, nil)

	for _, shards := range []int{1, 2, 3, 5} {
		seen := make(map[uint32]int)
		total := 0
		for k := 0; k < shards; k++ {
			sink := &memSink{}
			st, err := Dump(ctx, DumpOptions{
				FS: fs, Vol: dev, SnapName: "s", Sink: sink, Shard: k, Shards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			total += st.BlocksDumped
			// Re-derive this shard's slice and mark it.
			lo := len(all) * k / shards
			hi := len(all) * (k + 1) / shards
			for _, b := range all[lo:hi] {
				seen[b]++
			}
		}
		if total != len(all) {
			t.Fatalf("%d shards dumped %d blocks, want %d", shards, total, len(all))
		}
		for b, n := range seen {
			if n != 1 {
				t.Fatalf("%d shards: block %d covered %d times", shards, b, n)
			}
		}
	}
	// Out-of-range shard index is rejected.
	if _, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "s", Sink: &memSink{}, Shard: 5, Shards: 4}); err == nil {
		t.Fatal("bad shard accepted")
	}
}
