package physical

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"
	"time"

	"repro/internal/bufpool"
	"repro/internal/dumpfmt"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/storage"
)

// The shard pipeline: a deterministic extent plan is computed up front,
// N readers pull extents off the plan by atomic counter and push filled
// buffers into a bounded queue, and the drive writer reassembles them
// in plan order. Because the plan fixes every extent boundary and every
// checkpoint position before any I/O starts, the bytes on tape are
// identical for any reader count — parallelism changes only the clock.

// extent is one planned device visit: a run of consecutive blocks, cut
// at maxRun and at checkpoint boundaries exactly as the sequential
// engine cut them.
type extent struct {
	bno       uint32
	count     int
	ckptAfter bool // a checkpoint sentinel follows this extent
	doneAfter int  // absolute blocks durable once this extent checkpoints
}

// planExtents coalesces the shard's block list into the extent plan.
// skipped is the resume offset (counted into doneAfter so checkpoints
// stay absolute); every is CheckpointEvery (0 disables).
func planExtents(blocks []uint32, skipped, every int) []extent {
	var plan []extent
	done := 0
	sinceCkpt := 0
	i := 0
	for i < len(blocks) {
		// A maximal run of consecutive blocks...
		j := i + 1
		for j < len(blocks) && blocks[j] == blocks[j-1]+1 {
			j++
		}
		// ...emitted as extents no larger than one device visit and no
		// larger than the remaining checkpoint budget, so markers land
		// between extents.
		for b := i; b < j; {
			c := j - b
			if c > maxRun {
				c = maxRun
			}
			if every > 0 && c > every-sinceCkpt {
				c = every - sinceCkpt
			}
			done += c
			sinceCkpt += c
			e := extent{bno: blocks[b], count: c, doneAfter: skipped + done}
			if every > 0 && sinceCkpt >= every {
				e.ckptAfter = true
				sinceCkpt = 0
			}
			plan = append(plan, e)
			b += c
		}
		i = j
	}
	return plan
}

// chunk is one extent's payload moving from a reader to the writer.
type chunk struct {
	seq int // index into the extent plan
	buf *[]byte
}

// shardState is the writer's progress, read by dumpShard after the
// pipeline joins (single-writer, so no locking).
type shardState struct {
	ckptDone int // absolute blocks durably on media
	bytes    int64
}

// shardReader pulls extents off the shared plan, reads each through the
// volume's async bulk path, and hands filled buffers to the writer
// queue. depth extents are kept in flight per reader (ReadAhead), so
// the spindle queues stay full while the reader burns its per-block CPU
// charge. Extents are claimed one at a time: under the cooperative
// scheduler the shard's readers hand the scan position to each other
// at their wait points, so the union of their accesses stays one
// sequential stream per spindle (batched claims were measured worse —
// they split each shard into readers separate streams and thrash the
// drives' sequentiality tracking).
func shardReader(ctx context.Context, opts *DumpOptions, plan []extent, next *atomic.Int64, out *pipeline.Queue[chunk], depth int) error {
	p := sim.ProcFrom(ctx)
	type inflight struct {
		seq  int
		buf  *[]byte
		done sim.Time
	}
	var q []inflight
	fail := func(err error) error {
		for _, f := range q {
			bufpool.Put(f.buf)
		}
		return err
	}
	// flush completes the oldest in-flight read: wait out its device
	// time and the previous extent's CPU work, reserve this extent's
	// dump CPU, and hand the buffer downstream. Deferring the CPU wait
	// one extent overlaps checksum/copy work with the spindles.
	var cpuDone sim.Time
	flush := func() error {
		f := q[0]
		q = q[1:]
		if p != nil {
			wait := f.done
			if cpuDone > wait {
				wait = cpuDone
			}
			if wait > 0 {
				p.WaitUntil(wait)
			}
		}
		cpuDone = opts.Costs.schedule(ctx, time.Duration(plan[f.seq].count)*opts.Costs.DumpBlock)
		if err := out.Put(ctx, chunk{seq: f.seq, buf: f.buf}); err != nil {
			bufpool.Put(f.buf)
			return err
		}
		return nil
	}
	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		seq := int(next.Add(1)) - 1
		if seq >= len(plan) {
			break
		}
		e := plan[seq]
		bp := bufpool.Get(e.count * storage.BlockSize)
		done, err := storage.ReadRunAsync(ctx, opts.Vol, int(e.bno), e.count, (*bp)[:e.count*storage.BlockSize])
		if err != nil {
			bufpool.Put(bp)
			return fail(err)
		}
		q = append(q, inflight{seq: seq, buf: bp, done: done})
		if len(q) >= depth {
			if err := flush(); err != nil {
				return fail(err)
			}
		}
	}
	for len(q) > 0 {
		if err := flush(); err != nil {
			return fail(err)
		}
	}
	return nil
}

// shardWriter drains the chunk queue, reassembles extents in plan order
// (readers finish out of order; pending buffers are bounded by
// readers×depth plus the queue), and writes the stream: header,
// extents, checkpoint sentinels at the planned positions, trailer. The
// payload checksum is computed here, in stream order.
func shardWriter(ctx context.Context, opts *DumpOptions, sink Sink, hdr *streamHeader, plan []extent, out *pipeline.Queue[chunk], st *shardState) error {
	defer pipeline.BindStageProc(ctx, sink)()
	w := newStreamWriter(sink)
	defer func() {
		if w.rec != nil {
			bufpool.Put(w.rec)
			w.rec = nil
		}
	}()
	pending := make(map[int]*[]byte)
	defer func() {
		for _, bp := range pending {
			bufpool.Put(bp)
		}
	}()
	if err := w.write(hdr.marshal()); err != nil {
		return err
	}
	crc := crc32.NewIEEE()
	var ext [8]byte
	emitted := 0
	for emitted < len(plan) {
		bp, ready := pending[emitted]
		if !ready {
			c, ok, err := out.Get(ctx)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("%w: block stream ended at extent %d of %d", ErrBadStream, emitted, len(plan))
			}
			pending[c.seq] = c.buf
			continue
		}
		delete(pending, emitted)
		e := plan[emitted]
		payload := (*bp)[:e.count*storage.BlockSize]
		binary.LittleEndian.PutUint32(ext[0:], e.bno)
		binary.LittleEndian.PutUint32(ext[4:], uint32(e.count))
		err := w.write(ext[:])
		if err == nil {
			crc.Write(payload)
			err = w.write(payload)
		}
		bufpool.Put(bp)
		if err != nil {
			return err
		}
		if e.ckptAfter {
			binary.LittleEndian.PutUint32(ext[0:], CkptSentinel)
			binary.LittleEndian.PutUint32(ext[4:], crc.Sum32())
			if err := w.write(ext[:]); err != nil {
				return err
			}
			if err := w.flushPartial(); err != nil {
				return err
			}
			// A provisional-accept sink (network session) must drain
			// before the checkpoint may vouch for these blocks.
			if sy, ok := sink.(dumpfmt.Syncer); ok {
				if err := sy.Sync(); err != nil {
					return err
				}
			}
			st.ckptDone = e.doneAfter
		}
		emitted++
	}
	// Trailer: sentinel extent + checksum of all payload bytes.
	binary.LittleEndian.PutUint32(ext[0:], EndSentinel)
	binary.LittleEndian.PutUint32(ext[4:], crc.Sum32())
	if err := w.write(ext[:]); err != nil {
		return err
	}
	if err := w.flush(); err != nil {
		return err
	}
	st.bytes = w.written
	return nil
}

// dumpShard runs one shard's pipeline to completion: plan, readers,
// writer. The error (with resume checkpoint) stays in the ShardResult
// so sibling shards are unaffected.
func dumpShard(ctx context.Context, opts *DumpOptions, sink Sink, blocks []uint32, hdr streamHeader, ckShard, ckShards int, resume *Checkpoint) ShardResult {
	res := ShardResult{Shard: ckShard}
	skipped := 0
	if resume != nil {
		skipped = resume.BlocksDone
		blocks = blocks[skipped:]
	}
	res.BlocksSkipped = skipped
	hdr.blockCount = uint64(len(blocks))

	plan := planExtents(blocks, skipped, opts.CheckpointEvery)
	st := &shardState{ckptDone: skipped}

	readers := opts.Readers
	if readers < 1 {
		readers = 1
	}
	if readers > len(plan) && len(plan) > 0 {
		readers = len(plan)
	}
	depth := opts.ReadAhead
	if depth < 1 {
		depth = 1
	}

	pl := pipeline.New(ctx)
	out := pipeline.NewQueue[chunk](pl, fmt.Sprintf("physical.shard%d", ckShard), 2*readers+2)
	var next atomic.Int64
	var live atomic.Int64
	live.Store(int64(readers))
	for r := 0; r < readers; r++ {
		pl.Go(fmt.Sprintf("physical.shard%d.reader%d", ckShard, r), func(ctx context.Context) error {
			err := shardReader(ctx, opts, plan, &next, out, depth)
			if live.Add(-1) == 0 {
				out.CloseSend() // last reader out ends the stream
			}
			return err
		})
	}
	pl.Go(fmt.Sprintf("physical.shard%d.writer", ckShard), func(ctx context.Context) error {
		return shardWriter(ctx, opts, sink, &hdr, plan, out, st)
	})
	if err := pl.Wait(); err != nil {
		res.Err = err
		if opts.CheckpointEvery > 0 || resume != nil {
			res.Checkpoint = &Checkpoint{
				Gen: hdr.gen, BaseGen: hdr.baseGen,
				BlocksDone: st.ckptDone,
				Shard:      ckShard, Shards: ckShards,
			}
		}
		return res
	}
	res.BlocksDumped = len(blocks)
	res.BytesWritten = st.bytes
	return res
}
