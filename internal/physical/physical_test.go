package physical

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

var ctx = context.Background()

// memSink/memSource buffer an image stream in memory.
type memSink struct {
	recs     [][]byte
	capacity int64
	used     int64
	vols     int
}

func (s *memSink) WriteRecord(data []byte) error {
	if s.capacity > 0 && s.used+int64(len(data)) > s.capacity {
		return errors.New("physical test: end of media (unwrapped)")
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.recs = append(s.recs, cp)
	s.used += int64(len(data))
	return nil
}

func (s *memSink) NextVolume() error { s.used = 0; s.vols++; return nil }

func (s *memSink) source() *memSource { return &memSource{recs: s.recs} }

type memSource struct {
	recs [][]byte
	pos  int
}

func (s *memSource) ReadRecord() ([]byte, error) {
	if s.pos >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

func newFS(t *testing.T, blocks int) (*wafl.FS, *storage.MemDevice) {
	t.Helper()
	dev := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

func imageDump(t *testing.T, fs *wafl.FS, dev storage.Device, snap, base string) *memSink {
	t.Helper()
	sink := &memSink{}
	_, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: snap, BaseSnapName: base, Sink: sink})
	if err != nil {
		t.Fatalf("image dump: %v", err)
	}
	return sink
}

func TestTable1BlockStates(t *testing.T) {
	// The paper's Table 1: with full dump at snapshot A and an
	// incremental at snapshot B,
	//   (0,0) not in either      → not dumped
	//   (0,1) newly written      → included in the incremental
	//   (1,0) deleted before B   → not included
	//   (1,1) unchanged          → not included
	fs, _ := newFS(t, 2048)

	stable, _ := fs.WriteFile(ctx, "/stable", bytes.Repeat([]byte{1}, wafl.BlockSize), 0644)
	doomed, _ := fs.WriteFile(ctx, "/doomed", bytes.Repeat([]byte{2}, wafl.BlockSize), 0644)
	fs.CP(ctx)
	stablePbn, _ := fs.ActiveView().BlockAt(ctx, stable, 0)
	doomedPbn, _ := fs.ActiveView().BlockAt(ctx, doomed, 0)

	if err := fs.CreateSnapshot(ctx, "A"); err != nil {
		t.Fatal(err)
	}
	fs.RemovePath(ctx, "/doomed")
	fresh, _ := fs.WriteFile(ctx, "/fresh", bytes.Repeat([]byte{3}, wafl.BlockSize), 0644)
	fs.CP(ctx)
	freshPbn, _ := fs.ActiveView().BlockAt(ctx, fresh, 0)
	if err := fs.CreateSnapshot(ctx, "B"); err != nil {
		t.Fatal(err)
	}

	wordsA, err := fs.SnapshotBlockMapWords(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	wordsB, err := fs.SnapshotBlockMapWords(ctx, "B")
	if err != nil {
		t.Fatal(err)
	}
	inc := IncrementalBlocks(wordsB, wordsA)
	incSet := make(map[uint32]bool, len(inc))
	for _, b := range inc {
		incSet[b] = true
	}

	if !incSet[uint32(freshPbn)] {
		t.Error("(0,1) newly written block missing from incremental")
	}
	if incSet[uint32(stablePbn)] {
		t.Error("(1,1) unchanged block wrongly included")
	}
	if incSet[uint32(doomedPbn)] {
		t.Error("(1,0) deleted block wrongly included")
	}
	// (0,0): a block free in both maps.
	for b := wafl.FsinfoReserved; b < len(wordsB); b++ {
		if wordsA[b] == 0 && wordsB[b] == 0 {
			if incSet[uint32(b)] {
				t.Errorf("(0,0) free block %d included", b)
			}
			break
		}
	}
}

func TestImageDumpRestoreRoundTrip(t *testing.T) {
	fs, dev := newFS(t, 8192)
	if _, err := workload.Generate(ctx, fs, workload.Spec{Seed: 11, Files: 80, DirFanout: 8, MeanFileSize: 8 << 10, Symlinks: 4, Hardlinks: 3}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "backup"); err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("backup")
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}

	sink := imageDump(t, fs, dev, "backup", "")

	// Disaster: restore onto a brand-new (zeroed) volume.
	target := storage.NewMemDevice(8192)
	rstats, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()})
	if err != nil {
		t.Fatal(err)
	}
	if rstats.BlocksRestored == 0 {
		t.Fatal("nothing restored")
	}

	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatalf("mounting restored volume: %v", err)
	}
	got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("restored tree differs: %v", diffs[:min(5, len(diffs))])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestImageRestorePreservesOlderSnapshots(t *testing.T) {
	// "Unlike the logical dump, which preserves just the live file
	// system, the block based device can backup all snapshots."
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/gen1", []byte("generation one"), 0644)
	fs.CreateSnapshot(ctx, "old")
	fs.WriteFile(ctx, "/gen1", []byte("generation two"), 0644)
	fs.WriteFile(ctx, "/extra", []byte("later"), 0644)
	fs.CreateSnapshot(ctx, "backup")

	sink := imageDump(t, fs, dev, "backup", "")
	target := storage.NewMemDevice(4096)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()}); err != nil {
		t.Fatal(err)
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snaps := restored.Snapshots()
	if len(snaps) != 1 || snaps[0].Name != "old" {
		t.Fatalf("restored snapshots = %v, want [old]", snaps)
	}
	sv, err := restored.SnapshotView("old")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sv.ReadFile(ctx, "/gen1")
	if err != nil || string(got) != "generation one" {
		t.Fatalf("old snapshot content: %q, %v", got, err)
	}
	live, _ := restored.ActiveView().ReadFile(ctx, "/gen1")
	if string(live) != "generation two" {
		t.Fatalf("live content: %q", live)
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalImageChain(t *testing.T) {
	fs, dev := newFS(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 12, Files: 40, DirFanout: 6, MeanFileSize: 8 << 10})
	fs.CreateSnapshot(ctx, "level0")
	full := imageDump(t, fs, dev, "level0", "")

	// Mutate: the incremental should be much smaller than the full.
	fs.WriteFile(ctx, "/new-after-l0", []byte("delta data"), 0644)
	fs.RemovePath(ctx, "/aged") // may not exist; ignore
	fs.CreateSnapshot(ctx, "level1")
	sink1 := &memSink{}
	s1, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "level1", BaseSnapName: "level0", Sink: sink1})
	if err != nil {
		t.Fatal(err)
	}
	fullStats := func() *DumpStats {
		sink := &memSink{}
		st, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "level1", Sink: sink})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}()
	if s1.BlocksDumped >= fullStats.BlocksDumped/2 {
		t.Fatalf("incremental %d blocks vs full %d: not incremental", s1.BlocksDumped, fullStats.BlocksDumped)
	}

	// Apply: full then incremental.
	target := storage.NewMemDevice(8192)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: full.source()}); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink1.source(), ExpectIncremental: true}); err != nil {
		t.Fatal(err)
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.ActiveView().ReadFile(ctx, "/new-after-l0")
	if err != nil || string(got) != "delta data" {
		t.Fatalf("incremental content: %q, %v", got, err)
	}
	sv1, _ := fs.SnapshotView("level1")
	want, _ := workload.TreeDigest(ctx, sv1, "/")
	gotD, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, gotD); len(diffs) > 0 {
		t.Fatalf("chain restore differs: %v", diffs[:min(5, len(diffs))])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalRejectsWrongBase(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/a", []byte("a"), 0644)
	fs.CreateSnapshot(ctx, "s1")
	fs.WriteFile(ctx, "/b", []byte("b"), 0644)
	fs.CreateSnapshot(ctx, "s2")
	inc := imageDump(t, fs, dev, "s2", "s1")

	// A fresh volume is not at s1's state: the incremental must refuse.
	target := storage.NewMemDevice(4096)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: inc.source(), ExpectIncremental: true}); !errors.Is(err, ErrWrongBase) {
		t.Fatalf("err = %v, want ErrWrongBase", err)
	}
	// And without ExpectIncremental it must refuse outright.
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: inc.source()}); !errors.Is(err, ErrWrongBase) {
		t.Fatalf("err = %v, want ErrWrongBase", err)
	}
}

func TestRestoreRejectsSmallVolume(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/f", []byte("x"), 0644)
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")
	// "It may even be necessary to restore the file system to disks
	// that are the same size and configuration as the originals."
	small := storage.NewMemDevice(2048)
	if _, err := Restore(ctx, RestoreOptions{Vol: small, Source: sink.source()}); !errors.Is(err, ErrGeometry) {
		t.Fatalf("err = %v, want ErrGeometry", err)
	}
}

func TestStreamChecksumDetectsCorruption(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/f", bytes.Repeat([]byte{7}, 64<<10), 0644)
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")
	// Flip a byte deep in the stream (past the header record).
	sink.recs[len(sink.recs)/2][100] ^= 0xFF
	target := storage.NewMemDevice(4096)
	_, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()})
	if err == nil {
		t.Fatal("corrupt stream restored without error")
	}
}

func TestBaseMustBeOlder(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.CreateSnapshot(ctx, "s1")
	fs.WriteFile(ctx, "/x", []byte("x"), 0644)
	fs.CreateSnapshot(ctx, "s2")
	sink := &memSink{}
	if _, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "s1", BaseSnapName: "s2", Sink: sink}); err == nil {
		t.Fatal("dump with newer base accepted")
	}
}

func TestExtractSingleFileFromImage(t *testing.T) {
	fs, dev := newFS(t, 8192)
	fs.WriteFile(ctx, "/docs/report.txt", []byte("quarterly numbers"), 0644)
	fs.WriteFile(ctx, "/docs/other.txt", []byte("irrelevant"), 0644)
	fs.CreateSnapshot(ctx, "full")
	full := imageDump(t, fs, dev, "full", "")

	fs.WriteFile(ctx, "/docs/report.txt", []byte("quarterly numbers, revised"), 0644)
	fs.CreateSnapshot(ctx, "incr")
	inc := imageDump(t, fs, dev, "incr", "full")

	// Extract from the full image alone: the original version.
	got, err := Extract(ctx, full.source(), nil, "/docs/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["/docs/report.txt"]) != "quarterly numbers" {
		t.Fatalf("full extract = %q", got["/docs/report.txt"])
	}

	// Extract from the chain: the revised version.
	got, err = Extract(ctx, full.source(), []Source{inc.source()}, "/docs/report.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["/docs/report.txt"]) != "quarterly numbers, revised" {
		t.Fatalf("chain extract = %q", got["/docs/report.txt"])
	}

	if _, err := Extract(ctx, full.source(), nil, "/nope"); err == nil {
		t.Fatal("extracting a missing path succeeded")
	}
}

func TestImageDumpConcurrentWithActivity(t *testing.T) {
	// The snapshot freezes the image: active writes during the dump
	// must not corrupt it (COW guarantees the dumped blocks are
	// immutable while the snapshot exists).
	fs, dev := newFS(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 13, Files: 30, DirFanout: 6, MeanFileSize: 8 << 10})
	fs.CreateSnapshot(ctx, "frozen")
	sv, _ := fs.SnapshotView("frozen")
	want, _ := workload.TreeDigest(ctx, sv, "/")

	// Churn the live filesystem *before* reading the dump set — the
	// equivalent of activity racing the dump.
	for i := 0; i < 10; i++ {
		fs.WriteFile(ctx, "/churn", bytes.Repeat([]byte{byte(i)}, 100<<10), 0644)
		fs.CP(ctx)
	}
	sink := imageDump(t, fs, dev, "frozen", "")
	target := storage.NewMemDevice(8192)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()}); err != nil {
		t.Fatal(err)
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("dump raced by activity differs: %v", diffs[:min(5, len(diffs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
