package physical

import (
	"errors"
	"testing"

	"repro/internal/logical"
	"repro/internal/raid"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vdev"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// TestImageDumpReadsDegradedRaid plants a persistent latent sector
// error under a known filesystem block and checks the image dump's
// bulk reads come back reconstructed from parity — the dump completes
// with zero damage and the restored image is byte-identical.
func TestImageDumpReadsDegradedRaid(t *testing.T) {
	var disks []raid.Disk
	var vdevs []*vdev.Disk
	for i := 0; i < 4; i++ {
		d := vdev.New(nil, "d", 1024, vdev.DefaultParams())
		disks = append(disks, d)
		vdevs = append(vdevs, d)
	}
	parity := vdev.New(nil, "p", 1024, vdev.DefaultParams())
	g, err := raid.NewGroup(disks, parity)
	if err != nil {
		t.Fatal(err)
	}
	vol, err := raid.NewVolume("v0", g)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := wafl.Mkfs(ctx, vol, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	paths, err := workload.Generate(ctx, fs, workload.Spec{Seed: 31, Files: 20, DirFanout: 4, MeanFileSize: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}

	// Fail the member sector under one of the snapshot's file blocks.
	ino, err := fs.ActiveView().Namei(ctx, paths[0])
	if err != nil {
		t.Fatal(err)
	}
	pbn, err := fs.ActiveView().BlockAt(ctx, ino, 0)
	if err != nil {
		t.Fatal(err)
	}
	fd := vdevs[int(pbn)%4].InjectFaults(storage.FaultProfile{})
	fd.FailRead(int(pbn)/4, storage.ErrLatentSector)

	sink := &memSink{}
	stats, err := Dump(ctx, DumpOptions{FS: fs, Vol: vol, SnapName: "s", Sink: sink})
	if err != nil {
		t.Fatalf("dump over degraded raid: %v", err)
	}
	if _, recon := vol.RecoveryStats(); recon < 1 {
		t.Fatalf("reconstructs = %d, want >= 1", recon)
	}

	target := storage.NewMemDevice(vol.NumBlocks())
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()}); err != nil {
		t.Fatal(err)
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("s")
	want, _ := workload.TreeDigest(ctx, sv, "/")
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("degraded-read image differs: %v (dumped %d blocks)", diffs[0], stats.BlocksDumped)
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestImageDumpOfflineCheckpointResume: the tape drive dies mid-image-
// dump; the failed Dump returns a block-count checkpoint, a second
// invocation resumes exactly there, and applying the torn stream (in
// salvage mode) followed by the continuation rebuilds the image.
func TestImageDumpOfflineCheckpointResume(t *testing.T) {
	fs, dev := newFS(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 32, Files: 30, DirFanout: 6, MeanFileSize: 16 << 10})
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}

	drive1 := tape.NewDrive(nil, "t0", tape.DefaultParams())
	drive1.AddCartridges(tape.NewCartridge("a"))
	if err := drive1.Load(nil); err != nil {
		t.Fatal(err)
	}
	// The full image is ~126 blocks / ~10 records; go offline late
	// enough that at least one 32-block checkpoint has been flushed,
	// early enough that the dump cannot finish.
	drive1.InjectFaults(tape.FaultConfig{OfflineAfterRecords: 7})
	stats1, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s",
		Sink: &logical.DriveSink{Drive: drive1}, CheckpointEvery: 32,
	})
	if !errors.Is(err, tape.ErrOffline) {
		t.Fatalf("dump error = %v, want drive offline", err)
	}
	if stats1.Checkpoint == nil || stats1.Checkpoint.BlocksDone == 0 {
		t.Fatalf("no usable checkpoint from interrupted dump: %+v", stats1.Checkpoint)
	}

	// A resume for a different snapshot generation must refuse.
	wrong := *stats1.Checkpoint
	wrong.Gen++
	if _, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sink: &memSink{}, Resume: &wrong,
	}); err == nil {
		t.Fatal("resume with mismatched generation accepted")
	}

	drive1.SetOffline(false)
	drive1.Flush(nil)

	drive2 := tape.NewDrive(nil, "t1", tape.DefaultParams())
	drive2.AddCartridges(tape.NewCartridge("b"))
	if err := drive2.Load(nil); err != nil {
		t.Fatal(err)
	}
	stats2, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s",
		Sink: &logical.DriveSink{Drive: drive2}, CheckpointEvery: 32,
		Resume: stats1.Checkpoint,
	})
	if err != nil {
		t.Fatalf("resumed dump: %v", err)
	}
	drive2.Flush(nil)
	if stats2.BlocksSkipped != stats1.Checkpoint.BlocksDone {
		t.Fatalf("resumed dump skipped %d blocks, checkpoint says %d", stats2.BlocksSkipped, stats1.Checkpoint.BlocksDone)
	}

	// Apply the torn stream, then the continuation.
	target := storage.NewMemDevice(8192)
	drive1.Rewind(nil)
	r1, err := Restore(ctx, RestoreOptions{
		Vol: target, Source: logical.NewDriveSource(drive1, nil, 1), Salvage: true,
	})
	if err != nil {
		t.Fatalf("salvage restore of torn stream: %v", err)
	}
	if !r1.TornTail {
		t.Fatal("torn stream restored without TornTail")
	}
	if r1.Checkpoints == 0 {
		t.Fatal("no checkpoint extents verified in torn stream")
	}
	if r1.BlocksRestored < stats1.Checkpoint.BlocksDone {
		t.Fatalf("torn stream applied %d blocks, checkpoint vouches for %d", r1.BlocksRestored, stats1.Checkpoint.BlocksDone)
	}
	drive2.Rewind(nil)
	if _, err := Restore(ctx, RestoreOptions{
		Vol: target, Source: logical.NewDriveSource(drive2, nil, 1),
	}); err != nil {
		t.Fatalf("restoring continuation stream: %v", err)
	}

	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("s")
	want, _ := workload.TreeDigest(ctx, sv, "/")
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("concatenated image restore differs: %v", diffs[0])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointedStreamVerifies: checkpoint extents do not disturb a
// normal (complete) stream — restore and verify both accept it and
// count the markers.
func TestCheckpointedStreamVerifies(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/blob", make([]byte, 512<<10), 0644)
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	stats, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "s", Sink: sink, CheckpointEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpoint != nil {
		t.Fatalf("successful dump returned a checkpoint: %+v", stats.Checkpoint)
	}
	check, err := VerifyStream(sink.source())
	if err != nil {
		t.Fatal(err)
	}
	if check.Checkpoints == 0 {
		t.Fatal("verify saw no checkpoint extents")
	}
	target := storage.NewMemDevice(4096)
	r, err := Restore(ctx, RestoreOptions{Vol: target, Source: sink.source()})
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != check.Checkpoints {
		t.Fatalf("restore saw %d checkpoints, verify saw %d", r.Checkpoints, check.Checkpoints)
	}
	if _, err := wafl.Mount(ctx, target, nil, wafl.Options{}); err != nil {
		t.Fatal(err)
	}
}
