package physical

import (
	"errors"
	"testing"

	"repro/internal/workload"
)

func TestVerifyStreamClean(t *testing.T) {
	fs, dev := newFS(t, 4096)
	workload.Generate(ctx, fs, workload.Spec{Seed: 41, Files: 20, DirFanout: 5, MeanFileSize: 8 << 10})
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")

	check, err := VerifyStream(sink.source())
	if err != nil {
		t.Fatal(err)
	}
	if check.BlockCount == 0 || check.Extents == 0 {
		t.Fatalf("empty check: %+v", check)
	}
	if check.NBlocks != uint64(dev.NumBlocks()) {
		t.Fatalf("geometry %d, want %d", check.NBlocks, dev.NumBlocks())
	}
	if check.BaseGen != 0 {
		t.Fatalf("full stream reports base gen %d", check.BaseGen)
	}
}

func TestVerifyStreamDetectsBitRot(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/f", make([]byte, 256<<10), 0644)
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")
	sink.recs[len(sink.recs)/2][77] ^= 1
	if _, err := VerifyStream(sink.source()); err == nil {
		t.Fatal("bit rot passed verification")
	}
}

func TestVerifyStreamDetectsTruncation(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/f", make([]byte, 256<<10), 0644)
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")
	sink.recs = sink.recs[:len(sink.recs)-1]
	if _, err := VerifyStream(sink.source()); err == nil {
		t.Fatal("truncated stream passed verification")
	}
}

func TestVerifyStreamIncrementalIdentity(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/a", []byte("a"), 0644)
	fs.CreateSnapshot(ctx, "s1")
	fs.WriteFile(ctx, "/b", []byte("b"), 0644)
	fs.CreateSnapshot(ctx, "s2")
	inc := imageDump(t, fs, dev, "s2", "s1")
	check, err := VerifyStream(inc.source())
	if err != nil {
		t.Fatal(err)
	}
	if check.BaseGen == 0 {
		t.Fatal("incremental stream reports no base")
	}
	s1, _ := fs.Snapshot("s1")
	if check.BaseGen != s1.Gen {
		t.Fatalf("base gen %d, want %d", check.BaseGen, s1.Gen)
	}
}

func TestStreamInfoReplaysWholeStream(t *testing.T) {
	fs, dev := newFS(t, 4096)
	workload.Generate(ctx, fs, workload.Spec{Seed: 42, Files: 15, DirFanout: 4, MeanFileSize: 4 << 10})
	fs.CreateSnapshot(ctx, "s")
	sink := imageDump(t, fs, dev, "s", "")

	nblocks, gen, baseGen, replay, err := StreamInfo(sink.source())
	if err != nil {
		t.Fatal(err)
	}
	if nblocks != uint64(dev.NumBlocks()) || baseGen != 0 || gen == 0 {
		t.Fatalf("StreamInfo = (%d, %d, %d)", nblocks, gen, baseGen)
	}
	// The replay source must yield a stream that still verifies.
	if _, err := VerifyStream(replay); err != nil {
		t.Fatalf("replayed stream broken: %v", err)
	}
}

func TestStreamInfoRejectsGarbage(t *testing.T) {
	src := &memSource{recs: [][]byte{make([]byte, 100)}}
	if _, _, _, _, err := StreamInfo(src); !errors.Is(err, ErrBadStream) {
		t.Fatalf("err = %v, want ErrBadStream", err)
	}
}
