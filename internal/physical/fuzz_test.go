package physical

import (
	"testing"

	"repro/internal/storage"
	"repro/internal/wafl"
)

// FuzzStreamHeader throws arbitrary bytes at the image-stream preamble
// parser. The parser sizes an allocation from the root-length field,
// so the property under test is that nothing the parser accepts can
// make it read or allocate outside its declared bounds — and that it
// never panics on torn or corrupted preambles.
func FuzzStreamHeader(f *testing.F) {
	// Seed with the preamble of a real dump stream, whole and torn.
	dev := storage.NewMemDevice(2048)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	if err != nil {
		f.Fatal(err)
	}
	fs.WriteFile(ctx, "/seed", make([]byte, 64<<10), 0644)
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		f.Fatal(err)
	}
	sink := &memSink{}
	if _, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "s", Sink: sink}); err != nil {
		f.Fatal(err)
	}
	var stream []byte
	for _, rec := range sink.recs {
		stream = append(stream, rec...)
	}
	preamble := headerFixed + wafl.FsinfoSpan*storage.BlockSize
	if preamble > len(stream) {
		preamble = len(stream)
	}
	f.Add(stream[:preamble])
	f.Add(stream[:headerFixed])
	f.Add(stream[:headerFixed/2])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := &streamReader{src: &memSource{recs: [][]byte{data}}}
		h, err := readHeader(r)
		if err != nil {
			return
		}
		if len(h.root) == 0 || len(h.root) > 1<<20 {
			t.Fatalf("accepted header with root of %d bytes", len(h.root))
		}
		if r.read > int64(len(data)) {
			t.Fatalf("parser claims to have read %d of %d bytes", r.read, len(data))
		}
	})
}
