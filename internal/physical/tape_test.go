package physical

import (
	"testing"

	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// Image streams through real tape drives, including cartridge spanning
// when the stream exceeds one cartridge's capacity.

func TestImageDumpSpansCartridges(t *testing.T) {
	fs, dev := newFS(t, 8192)
	workload.Generate(ctx, fs, workload.Spec{Seed: 101, Files: 40, DirFanout: 6, MeanFileSize: 24 << 10})
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}

	p := tape.DefaultParams()
	p.Capacity = 512 << 10 // 512 KB cartridges force spanning
	drive := tape.NewDrive(nil, "t0", p)
	for i := 0; i < 24; i++ {
		drive.AddCartridges(tape.NewCartridge(string(rune('a' + i))))
	}
	if err := drive.Load(nil); err != nil {
		t.Fatal(err)
	}

	stats, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s",
		Sink: &logical.DriveSink{Drive: drive},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, changes := drive.Stats()
	if changes < 4 { // initial load + at least three spans
		t.Fatalf("dump of %d bytes used %d cartridge changes, expected spanning", stats.BytesWritten, changes)
	}

	// Cycle the stacker back to the first cartridge and restore across
	// all of them.
	for drive.Loaded().Label != "a" {
		if err := drive.Load(nil); err != nil {
			t.Fatal(err)
		}
	}
	drive.Rewind(nil)
	target := storage.NewMemDevice(dev.NumBlocks())
	if _, err := Restore(ctx, RestoreOptions{
		Vol: target, Source: logical.NewDriveSource(drive, nil, 24),
	}); err != nil {
		t.Fatal(err)
	}
	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("s")
	want, _ := workload.TreeDigest(ctx, sv, "/")
	got, _ := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("spanned image restore differs: %v", diffs[0])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestImageVerifyAcrossCartridges(t *testing.T) {
	fs, dev := newFS(t, 4096)
	fs.WriteFile(ctx, "/blob", make([]byte, 2<<20), 0644)
	fs.CreateSnapshot(ctx, "s")
	p := tape.DefaultParams()
	p.Capacity = 512 << 10
	drive := tape.NewDrive(nil, "t0", p)
	for i := 0; i < 16; i++ {
		drive.AddCartridges(tape.NewCartridge(string(rune('a' + i))))
	}
	drive.Load(nil)
	if _, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "s", Sink: &logical.DriveSink{Drive: drive}}); err != nil {
		t.Fatal(err)
	}
	for drive.Loaded().Label != "a" {
		drive.Load(nil)
	}
	drive.Rewind(nil)
	if _, err := VerifyStream(logical.NewDriveSource(drive, nil, 16)); err != nil {
		t.Fatalf("spanned stream does not verify: %v", err)
	}
}
