package physical

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/obs"
	"repro/internal/storage"
)

// StreamCheck is the result of verifying an image stream without
// applying it — the physical counterpart of logical.Verify, answering
// the "are last year's tapes even readable?" question for image
// backups before a disaster makes it urgent.
type StreamCheck struct {
	NBlocks     uint64 // source volume geometry
	Gen         uint64
	BaseGen     uint64 // 0 for a full stream
	BlockCount  int    // blocks carried by the stream
	Extents     int
	Checkpoints int // checkpoint extents, each checksum-verified
	BytesRead   int64
}

// VerifyStream reads an image stream end to end, validating structure
// (header, extent bounds, trailer) and the payload checksum, writing
// nothing. It returns the stream's identity on success.
func VerifyStream(src Source) (*StreamCheck, error) {
	return VerifyStreamCtx(context.Background(), src)
}

// VerifyStreamCtx is VerifyStream with observability: the pass runs
// under a "physical.verify" span and feeds the verify_* metrics from
// the registry in ctx — the scrubber's image-set entry point.
func VerifyStreamCtx(ctx context.Context, src Source) (*StreamCheck, error) {
	_, span := obs.Start(ctx, "physical.verify")
	defer span.End()
	m := obs.MetricsFrom(ctx)
	lbl := obs.Labels{"engine": "image"}
	check, err := verifyStream(src)
	if err != nil {
		m.Counter("verify_problems_total", lbl).Inc()
		span.SetAttr("error", err.Error())
		return nil, err
	}
	span.SetAttr("blocks", check.BlockCount)
	span.SetAttr("extents", check.Extents)
	span.SetAttr("bytes", check.BytesRead)
	m.Counter("verify_bytes_total", lbl).Add(check.BytesRead)
	return check, nil
}

func verifyStream(src Source) (*StreamCheck, error) {
	r := &streamReader{src: src}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	check := &StreamCheck{NBlocks: h.nblocks, Gen: h.gen, BaseGen: h.baseGen}
	crc := crc32.NewIEEE()
	var ext [8]byte
	buf := make([]byte, storage.BlockSize)
	for {
		if err := r.readFull(ext[:]); err != nil {
			return nil, fmt.Errorf("%w: missing trailer", ErrBadStream)
		}
		start := binary.LittleEndian.Uint32(ext[0:])
		count := binary.LittleEndian.Uint32(ext[4:])
		if start == EndSentinel {
			if crc.Sum32() != count {
				return nil, ErrBadChecksum
			}
			break
		}
		if start == CkptSentinel {
			if crc.Sum32() != count {
				return nil, ErrBadChecksum
			}
			check.Checkpoints++
			continue
		}
		if uint64(start)+uint64(count) > h.nblocks || count == 0 {
			return nil, fmt.Errorf("%w: extent %d+%d out of range", ErrBadStream, start, count)
		}
		check.Extents++
		for b := uint32(0); b < count; b++ {
			if err := r.readFull(buf); err != nil {
				return nil, err
			}
			crc.Write(buf)
			check.BlockCount++
		}
	}
	if uint64(check.BlockCount) != h.blockCount {
		return nil, fmt.Errorf("%w: header says %d blocks, stream carries %d",
			ErrBadStream, h.blockCount, check.BlockCount)
	}
	check.BytesRead = r.read
	return check, nil
}
