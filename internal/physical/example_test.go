package physical_test

import (
	"context"
	"fmt"
	"io"

	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// bufSink/bufSource buffer an image stream in memory for the example.
type bufStream struct {
	recs [][]byte
	pos  int
}

func (b *bufStream) WriteRecord(data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.recs = append(b.recs, cp)
	return nil
}

func (b *bufStream) NextVolume() error { return fmt.Errorf("single volume") }

func (b *bufStream) ReadRecord() ([]byte, error) {
	if b.pos >= len(b.recs) {
		return nil, io.EOF
	}
	r := b.recs[b.pos]
	b.pos++
	return r, nil
}

// A full image dump of a snapshot, restored onto a blank volume: the
// result mounts with the same contents.
func Example() {
	ctx := context.Background()
	source := storage.NewMemDevice(2048)
	fs, _ := wafl.Mkfs(ctx, source, nil, wafl.Options{})
	fs.WriteFile(ctx, "/payload", []byte("block-level backup"), 0644)
	fs.CreateSnapshot(ctx, "backup")

	stream := &bufStream{}
	if _, err := physical.Dump(ctx, physical.DumpOptions{
		FS: fs, Vol: source, SnapName: "backup", Sink: stream,
	}); err != nil {
		panic(err)
	}

	target := storage.NewMemDevice(2048)
	if _, err := physical.Restore(ctx, physical.RestoreOptions{
		Vol: target, Source: stream,
	}); err != nil {
		panic(err)
	}
	restored, _ := wafl.Mount(ctx, target, nil, wafl.Options{})
	got, _ := restored.ActiveView().ReadFile(ctx, "/payload")
	fmt.Println(string(got))
	// Output:
	// block-level backup
}
