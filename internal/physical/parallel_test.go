package physical

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"

	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// streamBytes flattens a sink's records into one byte stream.
func streamBytes(s *memSink) []byte {
	var out []byte
	for _, r := range s.recs {
		out = append(out, r...)
	}
	return out
}

// parallelFS builds a populated filesystem with a snapshot to dump.
func parallelFS(t *testing.T, seed int64) (*wafl.FS, *storage.MemDevice) {
	t.Helper()
	fs, dev := newFS(t, 8192)
	if _, err := workload.Generate(ctx, fs, workload.Spec{Seed: seed, Files: 60, DirFanout: 8, MeanFileSize: 12 << 10, Symlinks: 3, Hardlinks: 2}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "s"); err != nil {
		t.Fatal(err)
	}
	return fs, dev
}

// TestParallelDumpMatchesShardedStreams: one Dump call with Sinks (and
// parallel readers) produces, shard for shard, exactly the bytes the
// caller-driven Shard/Shards mode produces — parallelism changes only
// the clock, never the tape.
func TestParallelDumpMatchesShardedStreams(t *testing.T) {
	fs, dev := parallelFS(t, 7)
	const drives = 4

	want := make([][]byte, drives)
	for k := 0; k < drives; k++ {
		sink := &memSink{}
		if _, err := Dump(ctx, DumpOptions{
			FS: fs, Vol: dev, SnapName: "s", Sink: sink,
			Shard: k, Shards: drives, CheckpointEvery: 32,
		}); err != nil {
			t.Fatalf("sequential shard %d: %v", k, err)
		}
		want[k] = streamBytes(sink)
	}

	sinks := make([]Sink, drives)
	mem := make([]*memSink, drives)
	for k := range sinks {
		mem[k] = &memSink{}
		sinks[k] = mem[k]
	}
	stats, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sinks: sinks,
		Readers: 3, ReadAhead: 2, CheckpointEvery: 32,
	})
	if err != nil {
		t.Fatalf("parallel dump: %v", err)
	}
	if len(stats.ShardResults) != drives {
		t.Fatalf("ShardResults = %d entries, want %d", len(stats.ShardResults), drives)
	}
	var sum int
	for k := 0; k < drives; k++ {
		got := streamBytes(mem[k])
		if !bytes.Equal(got, want[k]) {
			t.Errorf("shard %d stream differs: %d vs %d bytes", k, len(got), len(want[k]))
		}
		sum += stats.ShardResults[k].BlocksDumped
	}
	if sum != stats.BlocksDumped {
		t.Errorf("shard blocks sum %d != total %d", sum, stats.BlocksDumped)
	}
}

// TestParallelDumpRestoreRoundTrip: 4 concurrent shard streams from one
// Dump call, applied by one parallel Restore call, rebuild the tree.
func TestParallelDumpRestoreRoundTrip(t *testing.T) {
	fs, dev := parallelFS(t, 21)
	sv, _ := fs.SnapshotView("s")
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}

	sinks := make([]Sink, 4)
	mem := make([]*memSink, 4)
	for k := range sinks {
		mem[k] = &memSink{}
		sinks[k] = mem[k]
	}
	if _, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sinks: sinks, Readers: 2, ReadAhead: 2,
	}); err != nil {
		t.Fatalf("parallel dump: %v", err)
	}

	target := storage.NewMemDevice(8192)
	srcs := make([]Source, 4)
	for k := range srcs {
		srcs[k] = mem[k].source()
	}
	rstats, err := Restore(ctx, RestoreOptions{Vol: target, Sources: srcs})
	if err != nil {
		t.Fatalf("parallel restore: %v", err)
	}
	if rstats.BlocksRestored == 0 {
		t.Fatal("nothing restored")
	}

	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatalf("mounting restored volume: %v", err)
	}
	got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("restored tree differs: %v", diffs[:min(3, len(diffs))])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}

// deviceDigest hashes every block of a device.
func deviceDigest(t *testing.T, dev storage.Device) [32]byte {
	t.Helper()
	h := sha256.New()
	buf := make([]byte, storage.BlockSize)
	for b := 0; b < dev.NumBlocks(); b++ {
		if err := dev.ReadBlock(ctx, b, buf); err != nil {
			t.Fatal(err)
		}
		h.Write(buf)
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestParallelRestoreOrderIndependence: the shard streams of one dump
// applied in any permutation (and any interleaving the scheduler picks)
// produce the identical volume image — the property that makes parallel
// restore safe.
func TestParallelRestoreOrderIndependence(t *testing.T) {
	fs, dev := parallelFS(t, 33)
	sinks := make([]Sink, 4)
	mem := make([]*memSink, 4)
	for k := range sinks {
		mem[k] = &memSink{}
		sinks[k] = mem[k]
	}
	if _, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sinks: sinks, Readers: 2,
	}); err != nil {
		t.Fatal(err)
	}

	perms := [][]int{
		{0, 1, 2, 3},
		{3, 2, 1, 0},
		{2, 0, 3, 1},
		{1, 3, 0, 2},
	}
	var first [32]byte
	for pi, perm := range perms {
		target := storage.NewMemDevice(8192)
		srcs := make([]Source, len(perm))
		for i, k := range perm {
			srcs[i] = mem[k].source()
		}
		if _, err := Restore(ctx, RestoreOptions{Vol: target, Sources: srcs}); err != nil {
			t.Fatalf("restore permutation %v: %v", perm, err)
		}
		d := deviceDigest(t, target)
		if pi == 0 {
			first = d
		} else if d != first {
			t.Fatalf("permutation %v produced a different volume image", perm)
		}
	}
}

// TestParallelIncrementalChain: a parallel full plus a parallel
// incremental restore the later state; the incremental's base check is
// performed once up front so sibling streams racing to install the new
// root cannot trip it.
func TestParallelIncrementalChain(t *testing.T) {
	fs, dev := parallelFS(t, 44)
	// Mutate after the full snapshot and take the incremental snapshot.
	if _, err := workload.Generate(ctx, fs, workload.Spec{Seed: 45, Files: 20, DirFanout: 4, MeanFileSize: 8 << 10}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "s2"); err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("s2")
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}

	dumpPar := func(snap, base string) []Source {
		sinks := make([]Sink, 3)
		mem := make([]*memSink, 3)
		for k := range sinks {
			mem[k] = &memSink{}
			sinks[k] = mem[k]
		}
		if _, err := Dump(ctx, DumpOptions{
			FS: fs, Vol: dev, SnapName: snap, BaseSnapName: base, Sinks: sinks, Readers: 2,
		}); err != nil {
			t.Fatalf("parallel dump %s/%s: %v", snap, base, err)
		}
		srcs := make([]Source, len(mem))
		for k := range mem {
			srcs[k] = mem[k].source()
		}
		return srcs
	}
	full := dumpPar("s", "")
	incr := dumpPar("s2", "s")

	target := storage.NewMemDevice(8192)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Sources: full}); err != nil {
		t.Fatalf("parallel full restore: %v", err)
	}
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Sources: incr, ExpectIncremental: true}); err != nil {
		t.Fatalf("parallel incremental restore: %v", err)
	}

	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("incremental chain differs: %v", diffs[0])
	}
}

// TestParallelShardFaultIsolatedAndResumes: one drive of a 4-drive
// parallel dump goes offline mid-stream. The sibling shards complete,
// the failed shard comes back with a resume checkpoint, a second Dump
// resumes only that shard, and salvage-applying the torn stream plus
// the continuation plus the siblings rebuilds the tree byte for byte.
func TestParallelShardFaultIsolatedAndResumes(t *testing.T) {
	fs, dev := parallelFS(t, 55)
	sv, _ := fs.SnapshotView("s")
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}

	const drives = 4
	const faulted = 2
	tapes := make([]*tape.Drive, drives)
	sinks := make([]Sink, drives)
	for k := range tapes {
		tapes[k] = tape.NewDrive(nil, fmt.Sprintf("t%d", k), tape.DefaultParams())
		tapes[k].AddCartridges(tape.NewCartridge(fmt.Sprintf("c%d", k)))
		if err := tapes[k].Load(nil); err != nil {
			t.Fatal(err)
		}
		sinks[k] = &logical.DriveSink{Drive: tapes[k]}
	}
	tapes[faulted].InjectFaults(tape.FaultConfig{OfflineAfterRecords: 2})

	stats, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sinks: sinks, CheckpointEvery: 16,
	})
	if err == nil {
		t.Fatal("dump with an offline drive reported success")
	}
	if !errors.Is(err, tape.ErrOffline) {
		t.Fatalf("dump error = %v, want drive offline", err)
	}
	for k, r := range stats.ShardResults {
		if k == faulted {
			if r.Err == nil {
				t.Fatalf("faulted shard %d has no error", k)
			}
			if r.Checkpoint == nil {
				t.Fatalf("faulted shard %d has no resume checkpoint", k)
			}
			if r.Checkpoint.Shard != k || r.Checkpoint.Shards != drives {
				t.Fatalf("checkpoint identity %d/%d, want %d/%d", r.Checkpoint.Shard, r.Checkpoint.Shards, k, drives)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("sibling shard %d failed too: %v", k, r.Err)
		}
		if r.BlocksDumped == 0 {
			t.Fatalf("sibling shard %d dumped nothing", k)
		}
	}

	// Resume only the torn shard onto a fresh drive.
	tapes[faulted].SetOffline(false)
	tapes[faulted].Flush(nil)
	cont := tape.NewDrive(nil, "cont", tape.DefaultParams())
	cont.AddCartridges(tape.NewCartridge("cc"))
	if err := cont.Load(nil); err != nil {
		t.Fatal(err)
	}
	resume := make([]*Checkpoint, drives)
	resume[faulted] = stats.ShardResults[faulted].Checkpoint
	for k := range resume {
		if k == faulted {
			continue
		}
		// Completed shards resume past their whole block set: their
		// continuation streams carry no data.
		resume[k] = &Checkpoint{
			Gen: stats.Gen, BaseGen: stats.BaseGen,
			BlocksDone: stats.ShardResults[k].BlocksDumped,
			Shard:      k, Shards: drives,
		}
	}
	resinks := make([]Sink, drives)
	empties := make([]*memSink, drives)
	for k := range resinks {
		if k == faulted {
			resinks[k] = &logical.DriveSink{Drive: cont}
			continue
		}
		empties[k] = &memSink{}
		resinks[k] = empties[k]
	}
	stats2, err := Dump(ctx, DumpOptions{
		FS: fs, Vol: dev, SnapName: "s", Sinks: resinks,
		CheckpointEvery: 16, ResumeShards: resume,
	})
	if err != nil {
		t.Fatalf("resumed parallel dump: %v", err)
	}
	if stats2.ShardResults[faulted].BlocksSkipped != resume[faulted].BlocksDone {
		t.Fatalf("resumed shard skipped %d, checkpoint says %d",
			stats2.ShardResults[faulted].BlocksSkipped, resume[faulted].BlocksDone)
	}
	cont.Flush(nil)

	// Restore: the three complete shard streams, the torn stream in
	// salvage mode, then the continuation.
	target := storage.NewMemDevice(8192)
	var firstPass []Source
	for k := range tapes {
		tapes[k].Rewind(nil)
		firstPass = append(firstPass, logical.NewDriveSource(tapes[k], nil, 1))
	}
	r1, err := Restore(ctx, RestoreOptions{Vol: target, Sources: firstPass, Salvage: true})
	if err != nil {
		t.Fatalf("restore of faulted dump set: %v", err)
	}
	if !r1.TornTail {
		t.Fatal("torn shard stream restored without TornTail")
	}
	cont.Rewind(nil)
	if _, err := Restore(ctx, RestoreOptions{Vol: target, Source: logical.NewDriveSource(cont, nil, 1)}); err != nil {
		t.Fatalf("restoring continuation stream: %v", err)
	}

	restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
		t.Fatalf("resumed parallel dump restores differently: %v", diffs[0])
	}
	if err := restored.MustCheck(ctx); err != nil {
		t.Fatal(err)
	}
}
