package physical

import (
	"context"
	"fmt"

	"repro/internal/storage"
	"repro/internal/wafl"
)

// Extract implements the single-file-restore-from-image-backup
// direction the paper's §6 leaves as future work: "the entire file
// system must be recreated before the individual disk blocks that make
// up the file being requested can be identified". That is exactly what
// this does — offline, in memory, without touching the production
// volume: it replays a full image stream (plus any incrementals, in
// order) onto a scratch device, mounts the result read-only, and
// copies the requested paths out.
//
// The returned map is path → file contents. Directories cannot be
// extracted (ask for the files inside them).
func Extract(ctx context.Context, full Source, incrementals []Source, paths ...string) (map[string][]byte, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("physical: no paths to extract")
	}
	// Probe the stream header for geometry, then replay onto scratch.
	// The header is consumed by Restore, so we buffer nothing: Restore
	// reads the same source.
	// First pass: we need the volume size before Restore runs, so peek
	// via a tee-less trick: read the header, then construct the device
	// and continue the same reader.
	r := &streamReader{src: full}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	dev := storage.NewMemDevice(int(h.nblocks))
	if _, err := restoreBody(ctx, dev, r, h, RestoreOptions{Vol: dev}); err != nil {
		return nil, fmt.Errorf("physical: replaying full image: %w", err)
	}
	for i, inc := range incrementals {
		if _, err := Restore(ctx, RestoreOptions{Vol: dev, Source: inc, ExpectIncremental: true}); err != nil {
			return nil, fmt.Errorf("physical: replaying incremental %d: %w", i, err)
		}
	}
	fs, err := wafl.Mount(ctx, dev, nil, wafl.Options{})
	if err != nil {
		return nil, fmt.Errorf("physical: mounting replayed image: %w", err)
	}
	out := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := fs.ActiveView().ReadFile(ctx, p)
		if err != nil {
			return nil, fmt.Errorf("physical: extracting %q: %w", p, err)
		}
		out[p] = data
	}
	return out, nil
}
