package physical

import (
	"testing"

	chunklayer "repro/internal/chunk"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// chunkIndex is a minimal in-memory chunklayer.Index (the catalog
// plays this role in production, but catalog imports the engines, so
// engine tests bring their own).
type chunkIndex map[chunklayer.Hash]chunklayer.Entry

func (ix chunkIndex) LookupChunk(h chunklayer.Hash) (chunklayer.Entry, bool) {
	e, ok := ix[h]
	return e, ok
}

func (ix chunkIndex) CommitChunks(es []chunklayer.Entry) error {
	for _, e := range es {
		ix[e.Hash] = e
	}
	return nil
}

// TestImageDumpRestoreThroughChunkLayer: the physical engine's image
// stream through the dedup layer. Image streams of the same snapshot
// are deterministic, so a repeat full must be nearly all hits, and
// both manifests must restore a mountable, tree-identical volume.
func TestImageDumpRestoreThroughChunkLayer(t *testing.T) {
	fs, dev := newFS(t, 8192)
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: 9, Files: 80, DirFanout: 6, MeanFileSize: 8 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fs.CreateSnapshot(ctx, "backup"); err != nil {
		t.Fatal(err)
	}
	sv, _ := fs.SnapshotView("backup")
	want, err := workload.TreeDigest(ctx, sv, "/")
	if err != nil {
		t.Fatal(err)
	}

	ix := chunkIndex{}
	media := chunklayer.NewMemMedia("t0")

	dumpOnce := func() (chunklayer.Manifest, chunklayer.WriterStats) {
		w, err := chunklayer.NewWriter(chunklayer.WriterOptions{Index: ix, Media: media, Engine: "physical"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Dump(ctx, DumpOptions{FS: fs, Vol: dev, SnapName: "backup", Sink: w}); err != nil {
			t.Fatalf("image dump: %v", err)
		}
		m, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		return m, w.Stats()
	}

	m1, _ := dumpOnce()
	before := media.StoredBytes()
	m2, ws2 := dumpOnce()
	if added := media.StoredBytes() - before; ws2.Hits == 0 || added*3 > m2.RawBytes {
		t.Fatalf("repeat image full added %d of %d raw bytes (%d hits); dedup broken",
			added, m2.RawBytes, ws2.Hits)
	}

	for _, m := range []chunklayer.Manifest{m1, m2} {
		target := storage.NewMemDevice(8192)
		if _, err := Restore(ctx, RestoreOptions{
			Vol: target, Source: chunklayer.NewReader(ix, media, m),
		}); err != nil {
			t.Fatalf("restore through chunk layer: %v", err)
		}
		restored, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			t.Fatalf("mounting restored volume: %v", err)
		}
		got, err := workload.TreeDigest(ctx, restored.ActiveView(), "/")
		if err != nil {
			t.Fatal(err)
		}
		if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
			if len(diffs) > 3 {
				diffs = diffs[:3]
			}
			t.Fatalf("restored tree differs: %v", diffs)
		}
	}
}
