package physical

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"repro/internal/bufpool"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/storage"
	"repro/internal/wafl"
)

// RestoreOptions configures an image restore.
type RestoreOptions struct {
	// Vol is the raw target volume; writes bypass any filesystem and
	// NVRAM (the paper's stated reason image restore is fast).
	Vol storage.Device
	// Source supplies the stream. Mutually exclusive with Sources.
	Source Source
	// Sources applies the shard streams of a parallel dump
	// concurrently, one restore stage per stream. Shard streams are
	// disjoint block sets and each carries the same composed root
	// (installed idempotently), so the result does not depend on shard
	// order or interleaving. Stats are summed across streams.
	Sources []Source
	// Costs is the CPU model.
	Costs Costs
	// ExpectIncremental controls base checking: when applying an
	// incremental, the target's current root generation must equal the
	// stream's base generation. Full streams ignore the target.
	ExpectIncremental bool
	// Salvage tolerates a stream that ends without its trailer — what
	// an interrupted dump leaves on tape. Blocks up to the tear are
	// applied (checksum-verified up to the last checkpoint extent), the
	// root is NOT installed, and TornTail is set in the stats. The
	// resumed dump's stream re-writes everything past the last
	// checkpoint and installs the root.
	Salvage bool
}

// RestoreStats reports what an image restore did.
type RestoreStats struct {
	BlocksRestored int
	BytesRead      int64
	Gen            uint64
	Checkpoints    int  // checkpoint extents seen (each checksum-verified)
	TornTail       bool // stream ended before its trailer; root not installed
}

// streamReader presents record-oriented input as a byte stream.
type streamReader struct {
	src  Source
	buf  []byte
	pos  int
	read int64
}

func (r *streamReader) readFull(p []byte) error {
	n := 0
	for n < len(p) {
		if r.pos >= len(r.buf) {
			rec, err := r.src.ReadRecord()
			if err != nil {
				if err == io.EOF && n == 0 {
					return io.EOF
				}
				if err == io.EOF {
					return io.ErrUnexpectedEOF
				}
				return err
			}
			r.buf = rec
			r.pos = 0
			continue
		}
		c := copy(p[n:], r.buf[r.pos:])
		n += c
		r.pos += c
		r.read += int64(c)
	}
	return nil
}

// ReadHeader decodes the stream preamble without consuming block data,
// so callers can inspect a stream's identity (used by the extractor
// and by chain validation).
func readHeader(r *streamReader) (*streamHeader, error) {
	fixed := make([]byte, headerFixed)
	if err := r.readFull(fixed); err != nil {
		return nil, err
	}
	if string(fixed[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadStream)
	}
	le := binary.LittleEndian
	if v := le.Uint32(fixed[8:]); v != 1 {
		return nil, fmt.Errorf("%w: version %d", ErrBadStream, v)
	}
	h := &streamHeader{
		nblocks:    le.Uint64(fixed[12:]),
		gen:        le.Uint64(fixed[20:]),
		baseGen:    le.Uint64(fixed[28:]),
		blockCount: le.Uint64(fixed[36:]),
	}
	rootLen := le.Uint32(fixed[44:])
	if rootLen == 0 || rootLen > 1<<20 {
		return nil, fmt.Errorf("%w: root length %d", ErrBadStream, rootLen)
	}
	h.root = make([]byte, rootLen)
	if err := r.readFull(h.root); err != nil {
		return nil, err
	}
	return h, nil
}

// Restore applies an image stream to opts.Vol: raw block writes in
// stream (ascending) order, then the composed root structure last, so
// an interrupted restore never presents a half-written root. With
// Sources set, the shard streams of a parallel dump are applied
// concurrently.
func Restore(ctx context.Context, opts RestoreOptions) (*RestoreStats, error) {
	if len(opts.Sources) > 0 {
		return restoreParallel(ctx, opts)
	}
	if opts.Vol == nil || opts.Source == nil {
		return nil, fmt.Errorf("physical: nil volume or source")
	}
	return restoreStream(ctx, opts, opts.Source, func(ctx context.Context) (uint64, error) {
		return readTargetGen(ctx, opts.Vol)
	})
}

// restoreStream reads, validates and applies one stream. targetGen
// supplies the target's current root generation for incremental base
// checking; it is only consulted when the header says incremental.
func restoreStream(ctx context.Context, opts RestoreOptions, src Source, targetGen func(context.Context) (uint64, error)) (*RestoreStats, error) {
	r := &streamReader{src: src}
	h, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	if uint64(opts.Vol.NumBlocks()) < h.nblocks {
		return nil, fmt.Errorf("%w: stream needs %d blocks, volume has %d",
			ErrGeometry, h.nblocks, opts.Vol.NumBlocks())
	}
	if h.baseGen != 0 != opts.ExpectIncremental {
		if h.baseGen != 0 {
			return nil, fmt.Errorf("%w: stream has base generation %d", ErrWrongBase, h.baseGen)
		}
		return nil, ErrNotIncrem
	}
	if h.baseGen != 0 {
		// Verify the target is exactly at the base state.
		cur, err := targetGen(ctx)
		if err != nil {
			return nil, fmt.Errorf("%w: cannot read target root: %v", ErrWrongBase, err)
		}
		if cur != h.baseGen {
			return nil, fmt.Errorf("%w: target at generation %d, incremental expects %d",
				ErrWrongBase, cur, h.baseGen)
		}
	}
	return restoreBody(ctx, opts.Vol, r, h, opts)
}

// restoreParallel applies the shard streams of a parallel dump
// concurrently, one stage per stream on a pipeline group. Streams are
// independent (disjoint extents, identical roots), so a stream failure
// does not cancel its siblings; Restore returns the joined errors.
func restoreParallel(ctx context.Context, opts RestoreOptions) (*RestoreStats, error) {
	if opts.Vol == nil {
		return nil, fmt.Errorf("physical: nil volume or source")
	}
	if opts.Source != nil {
		return nil, fmt.Errorf("physical: Source and Sources are mutually exclusive")
	}
	for _, s := range opts.Sources {
		if s == nil {
			return nil, fmt.Errorf("physical: nil source in Sources")
		}
	}
	// The base-generation check is hoisted before any stream starts: a
	// sibling shard that finishes first installs the new root, which
	// would flip the generation under a per-stream lazy check.
	var gen uint64
	if opts.ExpectIncremental {
		g, err := readTargetGen(ctx, opts.Vol)
		if err != nil {
			return nil, fmt.Errorf("%w: cannot read target root: %v", ErrWrongBase, err)
		}
		gen = g
	}
	hoisted := func(context.Context) (uint64, error) { return gen, nil }

	all := make([]*RestoreStats, len(opts.Sources))
	g := pipeline.NewGroup(ctx)
	for k := range opts.Sources {
		g.Go(fmt.Sprintf("physical.restore%d", k), func(ctx context.Context) error {
			defer pipeline.BindStageProc(ctx, opts.Sources[k])()
			st, err := restoreStream(ctx, opts, opts.Sources[k], hoisted)
			if err != nil {
				return fmt.Errorf("stream %d: %w", k, err)
			}
			all[k] = st
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	merged := &RestoreStats{}
	for _, st := range all {
		merged.BlocksRestored += st.BlocksRestored
		merged.BytesRead += st.BytesRead
		merged.Checkpoints += st.Checkpoints
		merged.Gen = st.Gen
		if st.TornTail {
			merged.TornTail = true
		}
	}
	return merged, nil
}

// restoreBody applies the extents and root of a stream whose header
// has already been read and validated.
func restoreBody(ctx context.Context, vol storage.Device, r *streamReader, h *streamHeader, opts RestoreOptions) (*RestoreStats, error) {
	stats := &RestoreStats{Gen: h.gen}
	ctx, span := obs.Start(ctx, "physical.restore")
	defer func() {
		span.SetAttr("blocks", stats.BlocksRestored)
		span.SetAttr("bytes", stats.BytesRead)
		span.End()
	}()
	const maxRestoreRun = 512
	crc := crc32.NewIEEE()
	var ext [8]byte
	runBuf := bufpool.Get(maxRestoreRun * storage.BlockSize)
	defer bufpool.Put(runBuf)
	buf := *runBuf
	torn := func(err error) (*RestoreStats, error) {
		if !opts.Salvage {
			return nil, err
		}
		stats.TornTail = true
		stats.BytesRead = r.read
		span.SetAttr("torn_tail", true)
		obs.MetricsFrom(ctx).Counter("restore_salvaged_streams_total",
			obs.Labels{"engine": "image"}).Inc()
		return stats, nil
	}
	for {
		if err := r.readFull(ext[:]); err != nil {
			return torn(fmt.Errorf("%w: missing trailer", ErrBadStream))
		}
		start := binary.LittleEndian.Uint32(ext[0:])
		count := binary.LittleEndian.Uint32(ext[4:])
		if start == EndSentinel {
			if crc.Sum32() != count {
				return nil, ErrBadChecksum
			}
			break
		}
		if start == CkptSentinel {
			// Checkpoint: verify the payload so far; carry no data.
			if crc.Sum32() != count {
				return nil, ErrBadChecksum
			}
			stats.Checkpoints++
			continue
		}
		if uint64(start)+uint64(count) > h.nblocks || count == 0 {
			return nil, fmt.Errorf("%w: extent %d+%d out of range", ErrBadStream, start, count)
		}
		for b := uint32(0); b < count; {
			c := int(count - b)
			if c > maxRestoreRun {
				c = maxRestoreRun
			}
			chunk := buf[:c*storage.BlockSize]
			if err := r.readFull(chunk); err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF {
					return torn(fmt.Errorf("%w: stream torn mid-extent", ErrBadStream))
				}
				return nil, err
			}
			crc.Write(chunk)
			if err := storage.WriteRun(ctx, vol, int(start)+int(b), c, chunk); err != nil {
				return nil, err
			}
			opts.Costs.charge(ctx, time.Duration(c)*opts.Costs.RestBlock)
			stats.BlocksRestored += c
			b += uint32(c)
		}
	}

	// Install the composed root last, redundantly across both fixed
	// locations.
	if len(h.root) != wafl.FsinfoSpan*storage.BlockSize {
		return nil, fmt.Errorf("%w: root image of %d bytes", ErrBadStream, len(h.root))
	}
	for copyStart := 0; copyStart < wafl.FsinfoReserved; copyStart += wafl.FsinfoSpan {
		for i := 0; i < wafl.FsinfoSpan; i++ {
			blk := h.root[i*storage.BlockSize : (i+1)*storage.BlockSize]
			if err := vol.WriteBlock(ctx, copyStart+i, blk); err != nil {
				return nil, err
			}
			opts.Costs.charge(ctx, opts.Costs.RestBlock)
		}
	}
	stats.BytesRead = r.read
	m := obs.MetricsFrom(ctx)
	m.Counter("physical_restore_blocks_total", nil).Add(int64(stats.BlocksRestored))
	m.Counter("physical_restore_bytes_total", nil).Add(stats.BytesRead)
	return stats, nil
}

// readTargetGen mounts nothing: it reads the target's current root
// directly to learn its generation for incremental-chain validation.
func readTargetGen(ctx context.Context, vol storage.Device) (uint64, error) {
	buf := make([]byte, wafl.FsinfoSpan*storage.BlockSize)
	for i := 0; i < wafl.FsinfoSpan; i++ {
		if err := vol.ReadBlock(ctx, i, buf[i*storage.BlockSize:(i+1)*storage.BlockSize]); err != nil {
			return 0, err
		}
	}
	return wafl.RootGeneration(buf)
}

// teeSource replays records consumed during a header peek before
// continuing with the live source.
type teeSource struct {
	buffered [][]byte
	pos      int
	src      Source
}

func (t *teeSource) ReadRecord() ([]byte, error) {
	if t.pos < len(t.buffered) {
		r := t.buffered[t.pos]
		t.pos++
		return r, nil
	}
	return t.src.ReadRecord()
}

// StreamInfo reads an image stream's preamble without consuming the
// stream: it returns the source volume geometry and generations plus a
// Source that replays everything, so a caller can size a target volume
// before restoring (cmd/backupctl does this).
func StreamInfo(src Source) (nblocks, gen, baseGen uint64, replay Source, err error) {
	tee := &teeSource{}
	wrapped := &streamReader{src: recorderSource{src: src, into: &tee.buffered}}
	h, err := readHeader(wrapped)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	tee.src = src
	return h.nblocks, h.gen, h.baseGen, tee, nil
}

// recorderSource captures records as they are read.
type recorderSource struct {
	src  Source
	into *[][]byte
}

func (r recorderSource) ReadRecord() ([]byte, error) {
	rec, err := r.src.ReadRecord()
	if err == nil {
		*r.into = append(*r.into, rec)
	}
	return rec, err
}
