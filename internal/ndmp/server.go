package ndmp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Sink is the durable record consumer a Host writes to — structurally
// the same contract both dump engines emit (dumpfmt.Sink and
// physical.Sink): WriteRecord returns dumpfmt.ErrEndOfMedia when the
// volume is full, and NextVolume mounts the next cartridge.
type Sink interface {
	WriteRecord(rec []byte) error
	NextVolume() error
}

// SinkFactory opens the durable sink for one stream of a session. The
// host calls it on the first Hello naming that stream; re-Hellos of
// the current stream (reconnects) rebind without reopening.
type SinkFactory func(hello Hello) (Sink, error)

// HostStats counts protocol events on the tape-host side.
type HostStats struct {
	Streams    int   // sinks opened
	Records    int64 // records durably written
	Duplicates int   // replayed frames already on media
	Gaps       int   // sequence jumps (loss detected)
	BadFrames  int   // undecodable frames received
	Heartbeats int   // probes answered
	NextVols   int   // volume switches served
	Syncs      int   // checkpoint replications served
	Stales     int   // failed-over Hellos answered with AckStale
}

// Host is the tape-host side of a session: it owns the sink, tracks
// the durable high-water mark, and answers frames. It is driven
// entirely by HandleFrame, so the same code serves a simulated link
// (as a transport.Handler) and a TCP listener (via Serve).
type Host struct {
	// Replicate, when set, records a stream checkpoint in the
	// replicated catalog: called on MsgSync with the stream identity
	// and the durable high-water mark, it must return only once the
	// checkpoint is quorum-replicated (e.g. an
	// AppendSessionCheckpoint through a replica.Cluster-backed
	// catalog). When nil, MsgSync degrades to host-local durability:
	// the host acks its own mark as replicated.
	Replicate func(session uint64, stream int, acked uint64) error
	// Progress, when set, reads the replicated checkpoint for a
	// stream from the catalog. It is what lets a standby host answer
	// a failed-over client's Hello with AckStale plus the checkpoint
	// instead of silently restarting the stream from zero. When nil,
	// a mismatched Hello opens a fresh sink (v1 behavior).
	Progress func(session uint64, stream int) (uint64, bool)

	mu      sync.Mutex
	factory SinkFactory

	session uint64
	stream  int
	sink    Sink
	acked   uint64 // cumulative: records 1..acked are durable
	repl    uint64 // cumulative: records 1..repl are checkpoint-replicated
	eom     bool   // current volume full; awaiting MsgNextVol
	stats   HostStats
}

// NewHost creates a host that opens sinks through factory. Set the
// Replicate and Progress hooks before serving to tie the host into a
// replicated catalog.
func NewHost(factory SinkFactory) *Host {
	return &Host{factory: factory, stream: -1}
}

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// RegisterMetrics installs pull collectors for the host's protocol
// counters. The closures lock the host, so collection is safe while
// the host is serving.
func (h *Host) RegisterMetrics(r *obs.Registry) {
	snap := func(read func(HostStats) float64) func() float64 {
		return func() float64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return read(h.stats)
		}
	}
	r.RegisterFunc("ndmp_host_streams_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Streams) }))
	r.RegisterFunc("ndmp_host_records_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Records) }))
	r.RegisterFunc("ndmp_host_duplicates_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Duplicates) }))
	r.RegisterFunc("ndmp_host_gaps_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Gaps) }))
	r.RegisterFunc("ndmp_host_bad_frames_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.BadFrames) }))
	r.RegisterFunc("ndmp_host_heartbeats_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Heartbeats) }))
	r.RegisterFunc("ndmp_host_next_vols_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.NextVols) }))
	r.RegisterFunc("ndmp_host_syncs_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Syncs) }))
	r.RegisterFunc("ndmp_host_stales_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Stales) }))
	r.RegisterFunc("ndmp_host_replication_lag_records", obs.KindGauge, nil, func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(h.acked - h.repl)
	})
}

// Acked returns the durable high-water mark of the current stream.
func (h *Host) Acked() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acked
}

// HandleFrame consumes one raw frame and returns the frames to send
// back. It implements transport.Handler, which is how a simulated
// tape host stays on the client's virtual clock.
func (h *Host) HandleFrame(raw []byte) [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := transport.Decode(raw)
	if err != nil {
		// A frame mangled in flight: treat it as lost, but tell the
		// client where we are so it can replay without waiting for a
		// window-full stall.
		h.stats.BadFrames++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	switch f.Type {
	case MsgHello:
		return h.handleHello(f)
	case MsgData:
		return h.handleData(f)
	case MsgHeartbeat:
		h.stats.Heartbeats++
		return h.ackFrames(MsgAck, ack{status: h.status(), acked: h.acked})
	case MsgNextVol:
		return h.handleNextVol()
	case MsgSync:
		return h.handleSync()
	case MsgClose:
		return h.ackFrames(MsgCloseAck, ack{status: h.status(), acked: h.acked})
	default:
		// Unknown type: ignore (forward compatibility); say nothing.
		return nil
	}
}

// status folds the EOM latch into an ack status.
func (h *Host) status() byte {
	if h.eom {
		return AckEOM
	}
	return AckOK
}

func (h *Host) ackFrames(typ byte, a ack) [][]byte {
	if a.repl == 0 {
		a.repl = h.repl
	}
	return [][]byte{transport.Encode(&transport.Frame{
		Type:    typ,
		Seq:     a.acked,
		Payload: encodeAck(a),
	})}
}

// handleSync replicates a stream checkpoint: once the Replicate hook
// returns, records 1..acked are recorded in the replicated catalog
// and a standby host can answer for them. Without a replication
// layer the host's own durable mark is the best promise available.
func (h *Host) handleSync() [][]byte {
	if h.sink == nil {
		return h.ackFrames(MsgSyncAck, ack{status: AckErr, msg: "sync before hello"})
	}
	if h.repl < h.acked {
		if h.Replicate != nil {
			if err := h.Replicate(h.session, h.stream, h.acked); err != nil {
				// Replication unavailable is not a stream error: report
				// the old mark; the client keeps the window and retries.
				return h.ackFrames(MsgSyncAck, ack{status: h.status(), acked: h.acked})
			}
		}
		h.repl = h.acked
		h.stats.Syncs++
	}
	return h.ackFrames(MsgSyncAck, ack{status: h.status(), acked: h.acked, repl: h.repl})
}

func (h *Host) handleHello(f *transport.Frame) [][]byte {
	hello, err := decodeHello(f.Payload)
	if err != nil {
		h.stats.BadFrames++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	if hello.Version != Version {
		return h.ackFrames(MsgHelloAck, ack{status: AckErr,
			msg: fmt.Sprintf("version %d not supported", hello.Version)})
	}
	if h.sink == nil || hello.Session != h.session || hello.Stream != h.stream {
		// This host holds no media for the stream. If the replicated
		// catalog says the stream already checkpointed progress, the
		// client is failing over from another host (or from this
		// host's previous life) mid-stream: fresh media cannot be
		// appended to mid-stream, so answer AckStale with the
		// replicated checkpoint and let the engine resume on a fresh
		// stream. Only a stream with no replicated history is
		// genuinely new.
		if h.Progress != nil {
			if rep, ok := h.Progress(hello.Session, hello.Stream); ok && rep > 0 {
				h.stats.Stales++
				return h.ackFrames(MsgHelloAck, ack{status: AckStale, repl: rep,
					msg: fmt.Sprintf("stream %d/%d was checkpointed elsewhere", hello.Session, hello.Stream)})
			}
		}
		sink, err := h.factory(hello)
		if err != nil {
			return h.ackFrames(MsgHelloAck, ack{status: AckErr, msg: err.Error()})
		}
		h.session = hello.Session
		h.stream = hello.Stream
		h.sink = sink
		h.acked = 0
		h.repl = 0
		h.eom = false
		h.stats.Streams++
	}
	return h.ackFrames(MsgHelloAck, ack{status: h.status(), acked: h.acked})
}

func (h *Host) handleData(f *transport.Frame) [][]byte {
	if h.sink == nil {
		return h.ackFrames(MsgAck, ack{status: AckErr, msg: "data before hello"})
	}
	switch {
	case f.Seq <= h.acked:
		// Idempotent replay: already durable, re-ack so the client
		// can slide its window.
		h.stats.Duplicates++
		return h.ackFrames(MsgAck, ack{status: h.status(), acked: h.acked})
	case f.Seq > h.acked+1:
		// Loss: nack with the high-water mark; client replays.
		h.stats.Gaps++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	if h.eom {
		// Volume still full; remind the client.
		return h.ackFrames(MsgAck, ack{status: AckEOM, acked: h.acked})
	}
	err := h.sink.WriteRecord(f.Payload)
	switch {
	case err == nil:
		h.acked = f.Seq
		h.stats.Records++
		if f.Flags&FlagAckNow != 0 {
			return h.ackFrames(MsgAck, ack{status: AckOK, acked: h.acked})
		}
		return nil
	case errors.Is(err, dumpfmt.ErrEndOfMedia):
		// The record did not fit. It is NOT durable: latch EOM and
		// report the high-water mark so the client re-sends it after
		// the volume switch.
		h.eom = true
		return h.ackFrames(MsgAck, ack{status: AckEOM, acked: h.acked})
	default:
		return h.ackFrames(MsgAck, ack{status: AckErr, acked: h.acked, msg: err.Error()})
	}
}

func (h *Host) handleNextVol() [][]byte {
	if h.sink == nil {
		return h.ackFrames(MsgVolAck, ack{status: AckErr, msg: "next-vol before hello"})
	}
	if !h.eom {
		// Duplicate request (our VolAck was lost): the switch already
		// happened; confirm idempotently.
		return h.ackFrames(MsgVolAck, ack{status: AckOK, acked: h.acked})
	}
	if err := h.sink.NextVolume(); err != nil {
		return h.ackFrames(MsgVolAck, ack{status: AckErr, acked: h.acked, msg: err.Error()})
	}
	h.eom = false
	h.stats.NextVols++
	return h.ackFrames(MsgVolAck, ack{status: AckOK, acked: h.acked})
}

// Serve pumps frames from a real connection through the host until
// the peer closes or idleTimeout passes with no traffic. It returns
// nil on a clean MsgClose, io.EOF-ish errors from the conn otherwise.
// Used by backupctl serve; simulated links attach HandleFrame
// directly instead.
func Serve(conn transport.Conn, host *Host, idleTimeout time.Duration) error {
	if idleTimeout <= 0 {
		idleTimeout = 30 * time.Second
	}
	for {
		raw, err := conn.Recv(idleTimeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return fmt.Errorf("ndmp: serve: idle for %v: %w", idleTimeout, ErrPeerDead)
			}
			return err
		}
		var closing bool
		if f, derr := transport.Decode(raw); derr == nil && f.Type == MsgClose {
			closing = true
		}
		for _, resp := range host.HandleFrame(raw) {
			if err := conn.Send(resp); err != nil {
				return err
			}
		}
		if closing {
			return nil
		}
	}
}
