package ndmp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Sink is the durable record consumer a Host writes to — structurally
// the same contract both dump engines emit (dumpfmt.Sink and
// physical.Sink): WriteRecord returns dumpfmt.ErrEndOfMedia when the
// volume is full, and NextVolume mounts the next cartridge.
type Sink interface {
	WriteRecord(rec []byte) error
	NextVolume() error
}

// SinkFactory opens the durable sink for one stream of a session. The
// host calls it on the first Hello naming that stream; re-Hellos of
// the current stream (reconnects) rebind without reopening.
type SinkFactory func(hello Hello) (Sink, error)

// HostStats counts protocol events on the tape-host side.
type HostStats struct {
	Streams    int   // sinks opened
	Records    int64 // records durably written
	Duplicates int   // replayed frames already on media
	Gaps       int   // sequence jumps (loss detected)
	BadFrames  int   // undecodable frames received
	Heartbeats int   // probes answered
	NextVols   int   // volume switches served
}

// Host is the tape-host side of a session: it owns the sink, tracks
// the durable high-water mark, and answers frames. It is driven
// entirely by HandleFrame, so the same code serves a simulated link
// (as a transport.Handler) and a TCP listener (via Serve).
type Host struct {
	mu      sync.Mutex
	factory SinkFactory

	session uint64
	stream  int
	sink    Sink
	acked   uint64 // cumulative: records 1..acked are durable
	eom     bool   // current volume full; awaiting MsgNextVol
	stats   HostStats
}

// NewHost creates a host that opens sinks through factory.
func NewHost(factory SinkFactory) *Host {
	return &Host{factory: factory, stream: -1}
}

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// RegisterMetrics installs pull collectors for the host's protocol
// counters. The closures lock the host, so collection is safe while
// the host is serving.
func (h *Host) RegisterMetrics(r *obs.Registry) {
	snap := func(read func(HostStats) float64) func() float64 {
		return func() float64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return read(h.stats)
		}
	}
	r.RegisterFunc("ndmp_host_streams_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Streams) }))
	r.RegisterFunc("ndmp_host_records_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Records) }))
	r.RegisterFunc("ndmp_host_duplicates_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Duplicates) }))
	r.RegisterFunc("ndmp_host_gaps_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Gaps) }))
	r.RegisterFunc("ndmp_host_bad_frames_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.BadFrames) }))
	r.RegisterFunc("ndmp_host_heartbeats_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Heartbeats) }))
	r.RegisterFunc("ndmp_host_next_vols_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.NextVols) }))
}

// Acked returns the durable high-water mark of the current stream.
func (h *Host) Acked() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.acked
}

// HandleFrame consumes one raw frame and returns the frames to send
// back. It implements transport.Handler, which is how a simulated
// tape host stays on the client's virtual clock.
func (h *Host) HandleFrame(raw []byte) [][]byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	f, err := transport.Decode(raw)
	if err != nil {
		// A frame mangled in flight: treat it as lost, but tell the
		// client where we are so it can replay without waiting for a
		// window-full stall.
		h.stats.BadFrames++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	switch f.Type {
	case MsgHello:
		return h.handleHello(f)
	case MsgData:
		return h.handleData(f)
	case MsgHeartbeat:
		h.stats.Heartbeats++
		return h.ackFrames(MsgAck, ack{status: h.status(), acked: h.acked})
	case MsgNextVol:
		return h.handleNextVol()
	case MsgClose:
		return h.ackFrames(MsgCloseAck, ack{status: h.status(), acked: h.acked})
	default:
		// Unknown type: ignore (forward compatibility); say nothing.
		return nil
	}
}

// status folds the EOM latch into an ack status.
func (h *Host) status() byte {
	if h.eom {
		return AckEOM
	}
	return AckOK
}

func (h *Host) ackFrames(typ byte, a ack) [][]byte {
	return [][]byte{transport.Encode(&transport.Frame{
		Type:    typ,
		Seq:     a.acked,
		Payload: encodeAck(a),
	})}
}

func (h *Host) handleHello(f *transport.Frame) [][]byte {
	hello, err := decodeHello(f.Payload)
	if err != nil {
		h.stats.BadFrames++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	if hello.Version != Version {
		return h.ackFrames(MsgHelloAck, ack{status: AckErr,
			msg: fmt.Sprintf("version %d not supported", hello.Version)})
	}
	if h.sink == nil || hello.Session != h.session || hello.Stream != h.stream {
		// A genuinely new stream: open its sink and reset the stream
		// state. A re-Hello of the current stream (reconnect) skips
		// this and reports the durable high-water mark unchanged.
		sink, err := h.factory(hello)
		if err != nil {
			return h.ackFrames(MsgHelloAck, ack{status: AckErr, msg: err.Error()})
		}
		h.session = hello.Session
		h.stream = hello.Stream
		h.sink = sink
		h.acked = 0
		h.eom = false
		h.stats.Streams++
	}
	return h.ackFrames(MsgHelloAck, ack{status: h.status(), acked: h.acked})
}

func (h *Host) handleData(f *transport.Frame) [][]byte {
	if h.sink == nil {
		return h.ackFrames(MsgAck, ack{status: AckErr, msg: "data before hello"})
	}
	switch {
	case f.Seq <= h.acked:
		// Idempotent replay: already durable, re-ack so the client
		// can slide its window.
		h.stats.Duplicates++
		return h.ackFrames(MsgAck, ack{status: h.status(), acked: h.acked})
	case f.Seq > h.acked+1:
		// Loss: nack with the high-water mark; client replays.
		h.stats.Gaps++
		return h.ackFrames(MsgAck, ack{status: AckGap, acked: h.acked})
	}
	if h.eom {
		// Volume still full; remind the client.
		return h.ackFrames(MsgAck, ack{status: AckEOM, acked: h.acked})
	}
	err := h.sink.WriteRecord(f.Payload)
	switch {
	case err == nil:
		h.acked = f.Seq
		h.stats.Records++
		if f.Flags&FlagAckNow != 0 {
			return h.ackFrames(MsgAck, ack{status: AckOK, acked: h.acked})
		}
		return nil
	case errors.Is(err, dumpfmt.ErrEndOfMedia):
		// The record did not fit. It is NOT durable: latch EOM and
		// report the high-water mark so the client re-sends it after
		// the volume switch.
		h.eom = true
		return h.ackFrames(MsgAck, ack{status: AckEOM, acked: h.acked})
	default:
		return h.ackFrames(MsgAck, ack{status: AckErr, acked: h.acked, msg: err.Error()})
	}
}

func (h *Host) handleNextVol() [][]byte {
	if h.sink == nil {
		return h.ackFrames(MsgVolAck, ack{status: AckErr, msg: "next-vol before hello"})
	}
	if !h.eom {
		// Duplicate request (our VolAck was lost): the switch already
		// happened; confirm idempotently.
		return h.ackFrames(MsgVolAck, ack{status: AckOK, acked: h.acked})
	}
	if err := h.sink.NextVolume(); err != nil {
		return h.ackFrames(MsgVolAck, ack{status: AckErr, acked: h.acked, msg: err.Error()})
	}
	h.eom = false
	h.stats.NextVols++
	return h.ackFrames(MsgVolAck, ack{status: AckOK, acked: h.acked})
}

// Serve pumps frames from a real connection through the host until
// the peer closes or idleTimeout passes with no traffic. It returns
// nil on a clean MsgClose, io.EOF-ish errors from the conn otherwise.
// Used by backupctl serve; simulated links attach HandleFrame
// directly instead.
func Serve(conn transport.Conn, host *Host, idleTimeout time.Duration) error {
	if idleTimeout <= 0 {
		idleTimeout = 30 * time.Second
	}
	for {
		raw, err := conn.Recv(idleTimeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return fmt.Errorf("ndmp: serve: idle for %v: %w", idleTimeout, ErrPeerDead)
			}
			return err
		}
		var closing bool
		if f, derr := transport.Decode(raw); derr == nil && f.Type == MsgClose {
			closing = true
		}
		for _, resp := range host.HandleFrame(raw) {
			if err := conn.Send(resp); err != nil {
				return err
			}
		}
		if closing {
			return nil
		}
	}
}
