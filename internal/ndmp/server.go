package ndmp

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Sink is the durable record consumer a Host writes to — structurally
// the same contract both dump engines emit (dumpfmt.Sink and
// physical.Sink): WriteRecord returns dumpfmt.ErrEndOfMedia when the
// volume is full, and NextVolume mounts the next cartridge. A Sink
// that also implements io.Closer is closed when its stream is evicted
// from the registry (clean session close, explicit eviction, or host
// shutdown), which is what finalizes server-side stream files.
type Sink interface {
	WriteRecord(rec []byte) error
	NextVolume() error
}

// SinkFactory opens the durable sink for one stream of a session. The
// host calls it on the first Hello naming that stream; re-Hellos of
// a registered stream (reconnects) rebind without reopening.
type SinkFactory func(hello Hello) (Sink, error)

// Admission is a Gate's verdict on a new stream.
type Admission int

const (
	// AdmitGranted admits the stream onto a drive immediately.
	AdmitGranted Admission = iota
	// AdmitWait queues the stream: the host withholds the HelloAck and
	// the client's re-sent Hellos (its heartbeat-interval retries) poll
	// the queue until a slot frees or the client's DeadAfter expires —
	// admission waiting without a new wire message.
	AdmitWait
	// AdmitReject refuses the stream (queue full, tenant over quota):
	// the host answers AckErr, which is terminal for the client.
	AdmitReject
)

// Gate is the admission/rate-control hook a multi-tenant host
// consults — sched.DrivePool implements it. All methods must be safe
// for concurrent use; the host calls them with no locks of its own
// held that the Gate could observe.
//
// Admit is called on every Hello for an unregistered stream and must
// be idempotent per (tenant, session, stream): a waiting client
// re-Hellos every heartbeat interval, and each retry polls Admit
// again; two connections racing the same Hello must consume one
// grant, not two. A grant stays held until Release frees it — the
// host releases each admitted stream exactly once, at eviction (or
// when its sink fails to open). Charge is called with the byte size
// of every durably written record and with n=0 on heartbeats (a pure
// refill poll); returning false tells the host to withhold window
// credit — the ack keeps reporting the old mark — so the client's
// sliding window, not the wire format, enforces the tenant's byte
// rate.
type Gate interface {
	Admit(tenant string, session uint64, stream int) (Admission, string)
	Release(tenant string, session uint64, stream int)
	Charge(tenant string, session uint64, stream int, n int) bool
}

// HostStats counts protocol events on the tape-host side, aggregated
// across every session in the registry.
type HostStats struct {
	Streams    int   // sinks opened
	Records    int64 // records durably written
	Duplicates int   // replayed frames already on media
	Gaps       int   // sequence jumps (loss detected)
	BadFrames  int   // undecodable frames received
	Heartbeats int   // probes answered
	NextVols   int   // volume switches served
	Syncs      int   // checkpoint replications served
	Stales     int   // failed-over Hellos answered with AckStale
	Sessions   int   // sessions closed cleanly
	Waits      int   // Hellos left unanswered by admission control
	Rejects    int   // Hellos refused by admission control
	Throttled  int   // acks withheld by the rate limiter
	Evictions  int   // streams evicted from the registry
}

// streamKey identifies one stream of one session in the registry.
type streamKey struct {
	session uint64
	stream  int
}

// stream is the per-(session, stream) server state: exactly what the
// pre-registry Host kept once, now one entry per client. The mutex
// serializes the data path (normally a single connection goroutine;
// after a reconnect race, possibly a zombie too); acked/repl/bytes
// are atomics so metric collectors read them without taking it.
type stream struct {
	mu    sync.Mutex
	hello Hello
	sink  Sink
	acked atomic.Uint64 // cumulative: records 1..acked are durable
	repl  atomic.Uint64 // cumulative: records 1..repl are checkpoint-replicated
	bytes atomic.Int64  // payload bytes durably written
	// released is the high-water mark the host has granted window
	// credit for: acks report it instead of acked while the Gate is
	// throttling the tenant. released <= acked always; correctness
	// paths (gap, EOM, volume switch, sync) snap it back to acked.
	released uint64
	eom      bool // current volume full; awaiting MsgNextVol
}

func (st *stream) status() byte {
	if st.eom {
		return AckEOM
	}
	return AckOK
}

// StreamEnd describes one stream at the moment its session closed
// cleanly: the Hello that opened it and the durable high-water mark.
type StreamEnd struct {
	Hello Hello
	Acked uint64
	Bytes int64
}

// Host is the tape-host side of the session layer: a registry of
// per-(session, stream) state, so N clients coexist on one host. Each
// connection gets its own Conn binding (NewConn) and routes frames to
// the stream its Hello named; Host.HandleFrame remains as a
// single-connection convenience that binds a default Conn — which is
// what simulated links attach.
type Host struct {
	// Replicate, when set, records a stream checkpoint in the
	// replicated catalog: called on MsgSync with the stream identity
	// and the durable high-water mark, it must return only once the
	// checkpoint is quorum-replicated (e.g. an
	// AppendSessionCheckpoint through a replica.Cluster-backed
	// catalog). When nil, MsgSync degrades to host-local durability:
	// the host acks its own mark as replicated.
	Replicate func(session uint64, stream int, acked uint64) error
	// Progress, when set, reads the replicated checkpoint for a
	// stream from the catalog. It is what lets a standby host answer
	// a failed-over client's Hello with AckStale plus the checkpoint
	// instead of silently restarting the stream from zero. When nil,
	// a mismatched Hello opens a fresh sink (v1 behavior).
	Progress func(session uint64, stream int) (uint64, bool)
	// Gate, when set, is the drive-pool scheduler: every new stream
	// passes admission, every durable byte is charged against its
	// tenant's rate. When nil every stream is admitted and unthrottled.
	Gate Gate
	// OnSessionClose, when set, is called after a clean MsgClose
	// evicts a session's streams (sinks already closed), with the
	// session's streams in stream order. It runs on the connection's
	// goroutine before the CloseAck is sent, so by the time the client
	// sees the ack the callback's work (e.g. cataloging the received
	// dump) is done.
	OnSessionClose func(session uint64, streams []StreamEnd)

	mu      sync.Mutex
	factory SinkFactory
	streams map[streamKey]*stream
	def     *Conn
	stats   HostStats

	reg        *obs.Registry
	tenantSeen map[string]bool
	tenantDone map[string]int64 // bytes of evicted streams, by tenant
}

// NewHost creates a host that opens sinks through factory. Set the
// Replicate/Progress hooks and the Gate before serving to tie the
// host into a replicated catalog and a drive-pool scheduler.
func NewHost(factory SinkFactory) *Host {
	return &Host{
		factory:    factory,
		streams:    make(map[streamKey]*stream),
		tenantSeen: make(map[string]bool),
		tenantDone: make(map[string]int64),
	}
}

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() HostStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.stats
}

// bump applies one stats mutation under the host lock. Callers may
// hold a stream's mutex (lock order: stream.mu -> h.mu).
func (h *Host) bump(f func(*HostStats)) {
	h.mu.Lock()
	f(&h.stats)
	h.mu.Unlock()
}

// ActiveStreams returns the number of registered streams.
func (h *Host) ActiveStreams() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.streams)
}

// StreamAcked returns the durable high-water mark of one registered
// stream.
func (h *Host) StreamAcked(session uint64, stream int) (uint64, bool) {
	h.mu.Lock()
	st, ok := h.streams[streamKey{session, stream}]
	h.mu.Unlock()
	if !ok {
		return 0, false
	}
	return st.acked.Load(), true
}

// TenantBytes returns the payload bytes durably written for tenant,
// summed over live and evicted streams.
func (h *Host) TenantBytes(tenant string) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tenantBytesLocked(tenant)
}

func (h *Host) tenantBytesLocked(tenant string) int64 {
	total := h.tenantDone[tenant]
	for _, st := range h.streams {
		if st.hello.Tenant == tenant {
			total += st.bytes.Load()
		}
	}
	return total
}

// RegisterMetrics installs pull collectors for the host's protocol
// counters, plus per-tenant byte/stream gauges registered lazily as
// tenants appear. The closures lock the host, so collection is safe
// while the host is serving.
func (h *Host) RegisterMetrics(r *obs.Registry) {
	h.mu.Lock()
	h.reg = r
	for t := range h.tenantSeen {
		h.registerTenantLocked(t)
	}
	h.mu.Unlock()
	snap := func(read func(HostStats) float64) func() float64 {
		return func() float64 {
			h.mu.Lock()
			defer h.mu.Unlock()
			return read(h.stats)
		}
	}
	r.RegisterFunc("ndmp_host_streams_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Streams) }))
	r.RegisterFunc("ndmp_host_records_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Records) }))
	r.RegisterFunc("ndmp_host_duplicates_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Duplicates) }))
	r.RegisterFunc("ndmp_host_gaps_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Gaps) }))
	r.RegisterFunc("ndmp_host_bad_frames_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.BadFrames) }))
	r.RegisterFunc("ndmp_host_heartbeats_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Heartbeats) }))
	r.RegisterFunc("ndmp_host_next_vols_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.NextVols) }))
	r.RegisterFunc("ndmp_host_syncs_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Syncs) }))
	r.RegisterFunc("ndmp_host_stales_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Stales) }))
	r.RegisterFunc("ndmp_host_sessions_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Sessions) }))
	r.RegisterFunc("ndmp_host_waits_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Waits) }))
	r.RegisterFunc("ndmp_host_rejects_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Rejects) }))
	r.RegisterFunc("ndmp_host_throttled_total", obs.KindCounter, nil, snap(func(s HostStats) float64 { return float64(s.Throttled) }))
	r.RegisterFunc("ndmp_host_active_streams", obs.KindGauge, nil, func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(len(h.streams))
	})
	r.RegisterFunc("ndmp_host_replication_lag_records", obs.KindGauge, nil, func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		var lag uint64
		for _, st := range h.streams {
			lag += st.acked.Load() - st.repl.Load()
		}
		return float64(lag)
	})
}

// registerTenantLocked installs the per-tenant collectors once a
// tenant first appears. Callers hold h.mu and have set h.reg.
func (h *Host) registerTenantLocked(tenant string) {
	if h.reg == nil {
		return
	}
	l := obs.Labels{"tenant": tenant}
	t := tenant
	h.reg.RegisterFunc("ndmp_host_tenant_acked_bytes", obs.KindCounter, l, func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		return float64(h.tenantBytesLocked(t))
	})
	h.reg.RegisterFunc("ndmp_host_tenant_streams", obs.KindGauge, l, func() float64 {
		h.mu.Lock()
		defer h.mu.Unlock()
		n := 0
		for _, st := range h.streams {
			if st.hello.Tenant == t {
				n++
			}
		}
		return float64(n)
	})
}

// Conn is one connection's binding into the host registry: frames
// route to the stream the connection's Hello named. Each accepted
// connection gets its own Conn; a Conn is used by one goroutine.
type Conn struct {
	h     *Host
	cur   *stream
	last  Hello
	bound bool
}

// NewConn returns a fresh connection binding.
func (h *Host) NewConn() *Conn { return &Conn{h: h} }

// Bound returns the Hello this connection most recently bound to; it
// stays readable after a clean close retires the stream.
func (c *Conn) Bound() (Hello, bool) { return c.last, c.bound }

// bind points the connection at a stream.
func (c *Conn) bind(st *stream) {
	c.cur = st
	c.last = st.hello
	c.bound = true
}

// HandleFrame consumes one raw frame and returns the frames to send
// back. It implements transport.Handler, which is how a simulated
// tape host stays on the client's virtual clock.
func (c *Conn) HandleFrame(raw []byte) [][]byte {
	f, err := transport.Decode(raw)
	if err != nil {
		return c.BadFrame()
	}
	return c.Handle(f)
}

// HandleFrame is the single-connection convenience used by simulated
// links: it routes through a host-owned default Conn, preserving the
// pre-registry behavior of one client driving the host directly.
func (h *Host) HandleFrame(raw []byte) [][]byte {
	h.mu.Lock()
	if h.def == nil {
		h.def = h.NewConn()
	}
	c := h.def
	h.mu.Unlock()
	return c.HandleFrame(raw)
}

// BadFrame records an undecodable frame and answers with the bound
// stream's high-water mark so the client replays without waiting for
// a window-full stall.
func (c *Conn) BadFrame() [][]byte {
	c.h.bump(func(s *HostStats) { s.BadFrames++ })
	var mark uint64
	if c.cur != nil {
		mark = c.cur.acked.Load()
	}
	return c.respond(MsgAck, ack{status: AckGap, acked: mark})
}

// Handle consumes one decoded frame — the decode-once entry point
// Serve uses so every frame is parsed exactly one time.
func (c *Conn) Handle(f *transport.Frame) [][]byte {
	switch f.Type {
	case MsgHello:
		return c.handleHello(f)
	case MsgData:
		return c.handleData(f)
	case MsgHeartbeat:
		return c.handleHeartbeat()
	case MsgNextVol:
		return c.handleNextVol()
	case MsgSync:
		return c.handleSync()
	case MsgClose:
		return c.handleClose()
	default:
		// Unknown type: ignore (forward compatibility); say nothing.
		return nil
	}
}

// respond encodes one ack-bearing response frame, defaulting its repl
// field to the bound stream's replicated mark.
func (c *Conn) respond(typ byte, a ack) [][]byte {
	if a.repl == 0 && c.cur != nil {
		a.repl = c.cur.repl.Load()
	}
	return [][]byte{transport.Encode(&transport.Frame{
		Type:    typ,
		Seq:     a.acked,
		Payload: encodeAck(a),
	})}
}

func (c *Conn) handleHello(f *transport.Frame) [][]byte {
	h := c.h
	hello, err := decodeHello(f.Payload)
	if err != nil {
		return c.BadFrame()
	}
	if hello.Version < MinVersion || hello.Version > Version {
		return c.respond(MsgHelloAck, ack{status: AckErr,
			msg: fmt.Sprintf("version %d not supported (host speaks %d-%d)", hello.Version, MinVersion, Version)})
	}
	key := streamKey{hello.Session, hello.Stream}
	h.mu.Lock()
	st, ok := h.streams[key]
	h.mu.Unlock()
	if ok {
		// A re-Hello of a registered stream: a reconnect (or a second
		// connection after a half-dead one). Rebind; the sink, marks
		// and EOM latch carry over — that is what makes reconnect
		// resume instead of restart.
		c.bind(st)
		st.mu.Lock()
		defer st.mu.Unlock()
		return c.respond(MsgHelloAck, ack{status: st.status(), acked: st.acked.Load()})
	}
	// This host holds no media for the stream. If the replicated
	// catalog says the stream already checkpointed progress, the
	// client is failing over from another host (or from this host's
	// previous life) mid-stream: fresh media cannot be appended to
	// mid-stream, so answer AckStale with the replicated checkpoint
	// and let the engine resume on a fresh stream. Only a stream with
	// no replicated history is genuinely new.
	if h.Progress != nil {
		if rep, ok := h.Progress(hello.Session, hello.Stream); ok && rep > 0 {
			h.bump(func(s *HostStats) { s.Stales++ })
			return c.respond(MsgHelloAck, ack{status: AckStale, repl: rep,
				msg: fmt.Sprintf("stream %d/%d was checkpointed elsewhere", hello.Session, hello.Stream)})
		}
	}
	if h.Gate != nil {
		adm, msg := h.Gate.Admit(hello.Tenant, hello.Session, hello.Stream)
		switch adm {
		case AdmitWait:
			// Withhold the HelloAck: the client's request loop re-sends
			// the Hello every heartbeat interval, polling the queue.
			h.bump(func(s *HostStats) { s.Waits++ })
			return nil
		case AdmitReject:
			h.bump(func(s *HostStats) { s.Rejects++ })
			if msg == "" {
				msg = "admission rejected"
			}
			return c.respond(MsgHelloAck, ack{status: AckErr, msg: msg})
		}
	}
	h.mu.Lock()
	// Re-check under the lock: another connection's Hello for the same
	// key may have registered the stream while we consulted the Gate.
	if st, ok = h.streams[key]; ok {
		// Admit is idempotent per key, so the racing Hello consumed no
		// extra grant: just rebind to the stream the winner registered.
		h.mu.Unlock()
		c.bind(st)
		st.mu.Lock()
		defer st.mu.Unlock()
		return c.respond(MsgHelloAck, ack{status: st.status(), acked: st.acked.Load()})
	}
	sink, err := h.factory(hello)
	if err != nil {
		h.mu.Unlock()
		if h.Gate != nil {
			h.Gate.Release(hello.Tenant, hello.Session, hello.Stream)
		}
		return c.respond(MsgHelloAck, ack{status: AckErr, msg: err.Error()})
	}
	st = &stream{hello: hello, sink: sink}
	h.streams[key] = st
	h.stats.Streams++
	if !h.tenantSeen[hello.Tenant] {
		h.tenantSeen[hello.Tenant] = true
		h.registerTenantLocked(hello.Tenant)
	}
	h.mu.Unlock()
	c.bind(st)
	return c.respond(MsgHelloAck, ack{status: AckOK, acked: 0})
}

func (c *Conn) handleHeartbeat() [][]byte {
	c.h.bump(func(s *HostStats) { s.Heartbeats++ })
	st := c.cur
	if st == nil {
		return c.respond(MsgAck, ack{status: AckOK})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	// A heartbeat is the rate limiter's refill poll: if the tenant's
	// bucket has recovered, release the withheld credit.
	if st.released < st.acked.Load() && c.charge(st, 0) {
		st.released = st.acked.Load()
	}
	mark := st.released
	if st.eom {
		mark = st.acked.Load() // EOM recovery needs the true mark
	}
	return c.respond(MsgAck, ack{status: st.status(), acked: mark})
}

// charge asks the Gate whether the tenant may be granted credit for n
// more durable bytes. Callers hold st.mu.
func (c *Conn) charge(st *stream, n int) bool {
	g := c.h.Gate
	if g == nil {
		return true
	}
	return g.Charge(st.hello.Tenant, st.hello.Session, st.hello.Stream, n)
}

func (c *Conn) handleData(f *transport.Frame) [][]byte {
	st := c.cur
	if st == nil {
		return c.respond(MsgAck, ack{status: AckErr, msg: "data before hello"})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	acked := st.acked.Load()
	switch {
	case f.Seq <= acked:
		// Idempotent replay: already durable, re-ack so the client
		// can slide its window — but report only the released mark, or
		// a throttled client's replays would defeat the limiter.
		c.h.bump(func(s *HostStats) { s.Duplicates++ })
		mark := st.released
		if st.eom {
			mark = acked
		}
		return c.respond(MsgAck, ack{status: st.status(), acked: mark})
	case f.Seq > acked+1:
		// Loss: nack with the high-water mark; client replays. A real
		// gap is a correctness recovery, so it reports (and releases)
		// the true mark.
		c.h.bump(func(s *HostStats) { s.Gaps++ })
		st.released = acked
		return c.respond(MsgAck, ack{status: AckGap, acked: acked})
	}
	if st.eom {
		// Volume still full; remind the client.
		return c.respond(MsgAck, ack{status: AckEOM, acked: acked})
	}
	err := st.sink.WriteRecord(f.Payload)
	switch {
	case err == nil:
		st.acked.Store(f.Seq)
		st.bytes.Add(int64(len(f.Payload)))
		c.h.bump(func(s *HostStats) { s.Records++ })
		if c.charge(st, len(f.Payload)) {
			st.released = f.Seq
		}
		if f.Flags&FlagAckNow != 0 {
			if st.released < f.Seq {
				// Over the tenant's byte rate: withhold the ack. The
				// client stalls on its full window and its heartbeat
				// probes poll for the released mark — backpressure
				// through the existing window flags, no wire change.
				c.h.bump(func(s *HostStats) { s.Throttled++ })
				return nil
			}
			return c.respond(MsgAck, ack{status: AckOK, acked: st.released})
		}
		return nil
	case errors.Is(err, dumpfmt.ErrEndOfMedia):
		// The record did not fit. It is NOT durable: latch EOM and
		// report the high-water mark so the client re-sends it after
		// the volume switch.
		st.eom = true
		st.released = acked
		return c.respond(MsgAck, ack{status: AckEOM, acked: acked})
	default:
		return c.respond(MsgAck, ack{status: AckErr, acked: acked, msg: err.Error()})
	}
}

func (c *Conn) handleNextVol() [][]byte {
	st := c.cur
	if st == nil {
		return c.respond(MsgVolAck, ack{status: AckErr, msg: "next-vol before hello"})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.eom {
		// Duplicate request (our VolAck was lost): the switch already
		// happened; confirm idempotently.
		return c.respond(MsgVolAck, ack{status: AckOK, acked: st.acked.Load()})
	}
	if err := st.sink.NextVolume(); err != nil {
		return c.respond(MsgVolAck, ack{status: AckErr, acked: st.acked.Load(), msg: err.Error()})
	}
	st.eom = false
	st.released = st.acked.Load()
	c.h.bump(func(s *HostStats) { s.NextVols++ })
	return c.respond(MsgVolAck, ack{status: AckOK, acked: st.acked.Load()})
}

// handleSync replicates a stream checkpoint: once the Replicate hook
// returns, records 1..acked are recorded in the replicated catalog
// and a standby host can answer for them. Without a replication
// layer the host's own durable mark is the best promise available.
func (c *Conn) handleSync() [][]byte {
	st := c.cur
	if st == nil {
		return c.respond(MsgSyncAck, ack{status: AckErr, msg: "sync before hello"})
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	acked := st.acked.Load()
	if st.repl.Load() < acked {
		if c.h.Replicate != nil {
			if err := c.h.Replicate(st.hello.Session, st.hello.Stream, acked); err != nil {
				// Replication unavailable is not a stream error: report
				// the old mark; the client keeps the window and retries.
				return c.respond(MsgSyncAck, ack{status: st.status(), acked: acked})
			}
		}
		st.repl.Store(acked)
		c.h.bump(func(s *HostStats) { s.Syncs++ })
	}
	st.released = acked // a checkpoint drain must not be throttled
	return c.respond(MsgSyncAck, ack{status: st.status(), acked: acked, repl: st.repl.Load()})
}

// handleClose ends the bound stream's whole session: every stream of
// the session (checkpoint resumes add streams) is evicted, its sink
// finalized, its drive slot released, and the OnSessionClose hook
// runs — all before the CloseAck is answered, so a client that saw
// the ack knows the server has fully retired the session.
func (c *Conn) handleClose() [][]byte {
	st := c.cur
	if st == nil {
		return c.respond(MsgCloseAck, ack{status: AckOK})
	}
	session := st.hello.Session
	a := ack{status: AckOK, acked: st.acked.Load(), repl: st.repl.Load()}
	if st.eom {
		a.status = AckEOM
	}
	ends := c.h.evictSession(session)
	c.h.bump(func(s *HostStats) { s.Sessions++ })
	if c.h.OnSessionClose != nil {
		c.h.OnSessionClose(session, ends)
	}
	c.cur = nil
	return [][]byte{transport.Encode(&transport.Frame{
		Type: MsgCloseAck, Seq: a.acked, Payload: encodeAck(a),
	})}
}

// evictSession removes every stream of a session from the registry,
// closes their sinks and releases their grants, returning what was
// evicted in stream order.
func (h *Host) evictSession(session uint64) []StreamEnd {
	h.mu.Lock()
	var evicted []*stream
	for k, st := range h.streams {
		if k.session == session {
			evicted = append(evicted, st)
			delete(h.streams, k)
			h.stats.Evictions++
			h.tenantDone[st.hello.Tenant] += st.bytes.Load()
		}
	}
	h.mu.Unlock()
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].hello.Stream < evicted[j].hello.Stream })
	ends := make([]StreamEnd, 0, len(evicted))
	for _, st := range evicted {
		h.finalize(st)
		ends = append(ends, StreamEnd{Hello: st.hello, Acked: st.acked.Load(), Bytes: st.bytes.Load()})
	}
	return ends
}

// finalize closes an evicted stream's sink (the displaced-sink fix:
// eviction is the only way a registered sink leaves the registry, and
// it always finalizes) and releases its drive grant.
func (h *Host) finalize(st *stream) {
	st.mu.Lock()
	if cl, ok := st.sink.(io.Closer); ok {
		cl.Close()
	}
	st.mu.Unlock()
	if h.Gate != nil {
		h.Gate.Release(st.hello.Tenant, st.hello.Session, st.hello.Stream)
	}
}

// Evict removes one stream from the registry, closing its sink and
// releasing its grant. It is the operator path for abandoning a
// stream whose client will never return; a client that does come back
// is answered like a failed-over one (via Progress, or a fresh sink).
func (h *Host) Evict(session uint64, stream int) bool {
	key := streamKey{session, stream}
	h.mu.Lock()
	st, ok := h.streams[key]
	if ok {
		delete(h.streams, key)
		h.stats.Evictions++
		h.tenantDone[st.hello.Tenant] += st.bytes.Load()
	}
	h.mu.Unlock()
	if !ok {
		return false
	}
	h.finalize(st)
	return true
}

// Close evicts every registered stream, finalizing all sinks — host
// shutdown.
func (h *Host) Close() error {
	h.mu.Lock()
	var all []*stream
	for k, st := range h.streams {
		all = append(all, st)
		delete(h.streams, k)
		h.stats.Evictions++
		h.tenantDone[st.hello.Tenant] += st.bytes.Load()
	}
	h.mu.Unlock()
	for _, st := range all {
		h.finalize(st)
	}
	return nil
}

// Serve pumps frames from a real connection through the host until
// the peer closes or idleTimeout passes with no traffic. It returns
// nil on a clean MsgClose, io.EOF-ish errors from the conn otherwise.
// Each call gets its own registry binding, so one listener can run
// many Serve goroutines concurrently — one per accepted connection.
// Frames are decoded exactly once. Used by backupctl serve; simulated
// links attach a Conn's HandleFrame directly instead.
func Serve(conn transport.Conn, host *Host, idleTimeout time.Duration) error {
	return ServeConn(conn, host.NewConn(), idleTimeout)
}

// ServeConn is Serve with a caller-built registry binding, so the
// caller can inspect hc.Bound() afterwards (e.g. to label a span with
// the tenant and session the connection turned out to carry).
func ServeConn(conn transport.Conn, hc *Conn, idleTimeout time.Duration) error {
	if idleTimeout <= 0 {
		idleTimeout = 30 * time.Second
	}
	for {
		raw, err := conn.Recv(idleTimeout)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				return fmt.Errorf("ndmp: serve: idle for %v: %w", idleTimeout, ErrPeerDead)
			}
			return err
		}
		var resps [][]byte
		var closing bool
		if f, derr := transport.Decode(raw); derr != nil {
			resps = hc.BadFrame()
		} else {
			closing = f.Type == MsgClose
			resps = hc.Handle(f)
		}
		for _, resp := range resps {
			if err := conn.Send(resp); err != nil {
				return err
			}
		}
		if closing {
			return nil
		}
	}
}
