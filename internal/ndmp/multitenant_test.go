package ndmp

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// closeSink is a memSink that records finalization, so tests can
// prove eviction closes displaced sinks instead of leaking them.
type closeSink struct {
	memSink
	closed int
}

func (c *closeSink) Close() error { c.closed++; return nil }

// connHarness wires one client link to its own registry binding on a
// shared host — the multi-client shape of harness().
func connHarness(host *Host, l *transport.Link) Dialer {
	l.B().Attach(host.NewConn().HandleFrame)
	return func() (transport.Conn, error) {
		if l.Down() {
			l.Heal()
		}
		return l.A(), nil
	}
}

// TestTransportHostConcurrentSessions interleaves two tenants' streams
// through one host over separate connections: the registry must keep
// their sinks, ack marks and EOM latches apart, and both must land
// byte-identical. On the pre-registry host the second Hello silently
// stole the first client's sink and reset its high-water mark.
func TestTransportHostConcurrentSessions(t *testing.T) {
	sinks := make(map[string]*closeSink)
	host := NewHost(func(h Hello) (Sink, error) {
		s := &closeSink{}
		sinks[fmt.Sprintf("%s/%d", h.Tenant, h.Session)] = s
		return s, nil
	})
	lA := transport.NewLink(transport.DefaultParams())
	lB := transport.NewLink(transport.DefaultParams())
	sA, err := Dial(connHarness(host, lA), Config{Kind: KindLogical, Session: 0xA, Tenant: "acme", Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	sB, err := Dial(connHarness(host, lB), Config{Kind: KindLogical, Session: 0xB, Tenant: "buyn", Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := host.ActiveStreams(); got != 2 {
		t.Fatalf("active streams = %d, want 2", got)
	}
	recsA, recsB := testRecords(40), testRecords(40)
	for i := range recsB {
		recsB[i] = append([]byte("B|"), recsB[i]...)
	}
	// Interleave record by record: every frame alternates sessions, so
	// any cross-session state bleed corrupts at least one stream.
	for i := range recsA {
		if err := sA.WriteRecord(recsA[i]); err != nil {
			t.Fatalf("A record %d: %v", i, err)
		}
		if err := sB.WriteRecord(recsB[i]); err != nil {
			t.Fatalf("B record %d: %v", i, err)
		}
	}
	if err := sA.Close(); err != nil {
		t.Fatalf("close A: %v", err)
	}
	if err := sB.Close(); err != nil {
		t.Fatalf("close B: %v", err)
	}
	assertIdentical(t, sinks["acme/10"].recs, recsA)
	assertIdentical(t, sinks["buyn/11"].recs, recsB)
	if got := host.ActiveStreams(); got != 0 {
		t.Fatalf("after closes active streams = %d, want 0", got)
	}
	hs := host.Stats()
	if hs.Sessions != 2 || hs.Records != 80 || hs.Streams != 2 {
		t.Fatalf("host stats %+v", hs)
	}
	// Clean close finalizes each session's sinks (the displaced-sink
	// leak: sinks used to leave the host without ever being closed).
	for k, s := range sinks {
		if s.closed != 1 {
			t.Fatalf("sink %s closed %d times, want 1", k, s.closed)
		}
	}
	if host.TenantBytes("acme") == 0 || host.TenantBytes("buyn") == 0 {
		t.Fatal("per-tenant byte accounting missing")
	}
}

// TestTransportHostEvictFinalizesSink proves explicit eviction — the
// registry's replacement for silently dropping a displaced stream —
// closes the sink exactly once and frees the slot.
func TestTransportHostEvictFinalizesSink(t *testing.T) {
	var sink closeSink
	host := NewHost(func(Hello) (Sink, error) { return &sink, nil })
	l := transport.NewLink(transport.DefaultParams())
	s, err := Dial(connHarness(host, l), Config{Kind: KindLogical, Session: 7, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	pushAll(t, s, testRecords(5))
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if !host.Evict(7, 0) {
		t.Fatal("evict of a registered stream returned false")
	}
	if sink.closed != 1 {
		t.Fatalf("evicted sink closed %d times, want 1", sink.closed)
	}
	if host.Evict(7, 0) {
		t.Fatal("double eviction returned true")
	}
	if got := host.ActiveStreams(); got != 0 {
		t.Fatalf("active streams = %d, want 0", got)
	}
	// Host.Close on a fresh registry entry also finalizes.
	s2, err := Dial(connHarness(host, transport.NewLink(transport.DefaultParams())),
		Config{Kind: KindLogical, Session: 8, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	_ = s2
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.closed != 2 {
		t.Fatalf("sink closed %d times after host close, want 2", sink.closed)
	}
}

// TestTransportHelloVersionNegotiation: a v2 Hello (no tenant suffix)
// is served as the default tenant; versions outside [MinVersion,
// Version] are refused with AckErr.
func TestTransportHelloVersionNegotiation(t *testing.T) {
	v2 := Hello{Version: 2, Kind: KindLogical, Session: 3, Stream: 0, Level: 1, FSID: "home0"}
	got, err := decodeHello(encodeHello(v2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "" || got.FSID != "home0" || got.Version != 2 {
		t.Fatalf("v2 hello decoded as %+v", got)
	}
	v3 := Hello{Version: Version, Kind: KindImage, Session: 9, Stream: 2, Level: -1, FSID: "fs", Tenant: "acme"}
	got, err = decodeHello(encodeHello(v3))
	if err != nil {
		t.Fatal(err)
	}
	if got != v3 {
		t.Fatalf("v3 hello round-trip: %+v", got)
	}

	var opened int
	host := NewHost(func(Hello) (Sink, error) { opened++; return &memSink{}, nil })
	sendHello := func(h Hello) ack {
		t.Helper()
		resps := host.HandleFrame(transport.Encode(&transport.Frame{
			Type: MsgHello, Payload: encodeHello(h)}))
		if len(resps) != 1 {
			t.Fatalf("hello got %d responses, want 1", len(resps))
		}
		f, err := transport.Decode(resps[0])
		if err != nil || f.Type != MsgHelloAck {
			t.Fatalf("hello response type %v err %v", f, err)
		}
		a, err := decodeAck(f.Payload)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if a := sendHello(v2); a.status != AckOK {
		t.Fatalf("v2 hello refused: %+v", a)
	}
	if opened != 1 {
		t.Fatalf("v2 hello opened %d sinks, want 1", opened)
	}
	if a := sendHello(Hello{Version: 1, Session: 4}); a.status != AckErr {
		t.Fatalf("v1 hello served: %+v", a)
	}
	if a := sendHello(Hello{Version: Version + 1, Session: 5}); a.status != AckErr {
		t.Fatalf("future hello served: %+v", a)
	}
	if opened != 1 {
		t.Fatalf("refused hellos opened sinks (%d)", opened)
	}
}

// TestTransportReplicateStallResetsOnProgress drives Sync against a
// host whose replication quorum advances the checkpoint one record
// per round trip — slow, but never stuck. The stall detector must
// reset on every round of progress; pre-fix it accumulated across
// rounds and surfaced a spurious SessionLostError once the sum
// crossed DeadAfter.
func TestTransportReplicateStallResetsOnProgress(t *testing.T) {
	const (
		heartbeat = 50 * time.Millisecond
		deadAfter = 4 * heartbeat // trips after 4 stalled rounds
		records   = 10            // needs 10 rounds of partial progress
	)
	env := sim.NewEnv()
	l := transport.NewLink(transport.DefaultParams())
	var acked, repl uint64
	reply := func(typ byte, a ack) [][]byte {
		return [][]byte{transport.Encode(&transport.Frame{Type: typ, Seq: a.acked, Payload: encodeAck(a)})}
	}
	l.B().Attach(func(raw []byte) [][]byte {
		f, err := transport.Decode(raw)
		if err != nil {
			return nil
		}
		switch f.Type {
		case MsgHello:
			return reply(MsgHelloAck, ack{status: AckOK, acked: acked, repl: repl})
		case MsgData:
			if f.Seq == acked+1 {
				acked = f.Seq
			}
			if f.Flags&FlagAckNow != 0 {
				return reply(MsgAck, ack{status: AckOK, acked: acked, repl: repl})
			}
			return nil
		case MsgHeartbeat:
			return reply(MsgAck, ack{status: AckOK, acked: acked, repl: repl})
		case MsgSync:
			if repl < acked {
				repl++ // one record of replication progress per round
			}
			return reply(MsgSyncAck, ack{status: AckOK, acked: acked, repl: repl})
		case MsgClose:
			return reply(MsgCloseAck, ack{status: AckOK, acked: acked, repl: repl})
		}
		return nil
	})
	var syncErr error
	env.Spawn("mover", func(p *sim.Proc) {
		l.A().Bind(p)
		s, err := Dial(func() (transport.Conn, error) { return l.A(), nil },
			Config{Kind: KindLogical, Session: 6, Window: records * 2,
				HeartbeatEvery: heartbeat, DeadAfter: deadAfter, Proc: p})
		if err != nil {
			syncErr = err
			return
		}
		for _, rec := range testRecords(records) {
			if err := s.WriteRecord(rec); err != nil {
				syncErr = err
				return
			}
		}
		syncErr = s.Sync()
	})
	env.Run()
	if syncErr != nil {
		t.Fatalf("sync against a slow-but-advancing quorum: %v", syncErr)
	}
}

// TestTransportReconnectAggressiveBackoffStillDials cuts the link
// under a redial policy whose very first backoff exceeds DeadAfter.
// The session must still make one immediate dial attempt — pre-fix
// the cap broke out before ever dialing, so a healable blip was
// reported as a lost session without a single redial.
func TestTransportReconnectAggressiveBackoffStillDials(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	sink := &memSink{}
	host, dial, opened := harness(l, sink)
	s, err := Dial(dial, Config{
		Kind: KindLogical, Session: 0xD1A1, Window: 4,
		HeartbeatEvery: 20 * time.Millisecond,
		DeadAfter:      100 * time.Millisecond,
		// Delay(1) = 1s > DeadAfter: the backoff cap refuses every
		// *scheduled* attempt; only the immediate first try can run.
		Redial: storage.RetryPolicy{MaxRetries: 6, Initial: time.Second, Multiplier: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(20)
	for i, rec := range recs[:10] {
		if err := s.WriteRecord(rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	l.Cut() // hard cut; the dialer heals it on the next dial
	for i, rec := range recs[10:] {
		if err := s.WriteRecord(rec); err != nil {
			t.Fatalf("record %d after cut: %v", 10+i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertIdentical(t, sink.recs, recs)
	if *opened != 1 {
		t.Fatalf("sink opened %d times, want 1 (resume, not restart)", *opened)
	}
	if s.Stats().Reconnects == 0 {
		t.Fatal("no reconnect recorded despite the cut")
	}
	_ = host
}

// TestTransportDataBeforeHello: a connection that skips the handshake
// gets AckErr, not a crash or a silent bind.
func TestTransportDataBeforeHello(t *testing.T) {
	host := NewHost(func(Hello) (Sink, error) { return &memSink{}, nil })
	resps := host.NewConn().HandleFrame(transport.Encode(&transport.Frame{
		Type: MsgData, Seq: 1, Payload: []byte("x")}))
	if len(resps) != 1 {
		t.Fatalf("%d responses, want 1", len(resps))
	}
	f, err := transport.Decode(resps[0])
	if err != nil {
		t.Fatal(err)
	}
	a, err := decodeAck(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.status != AckErr {
		t.Fatalf("data before hello answered %+v", a)
	}
}

// gateFunc adapts closures to the Gate interface for host tests.
type gateFunc struct {
	admit  func(tenant string, session uint64, stream int) (Admission, string)
	charge func(tenant string, session uint64, stream int, n int) bool
	rel    func(tenant string, session uint64, stream int)
}

func (g gateFunc) Admit(t string, s uint64, st int) (Admission, string) {
	if g.admit == nil {
		return AdmitGranted, ""
	}
	return g.admit(t, s, st)
}
func (g gateFunc) Release(t string, s uint64, st int) {
	if g.rel != nil {
		g.rel(t, s, st)
	}
}
func (g gateFunc) Charge(t string, s uint64, st int, n int) bool {
	if g.charge == nil {
		return true
	}
	return g.charge(t, s, st, n)
}

// TestTransportGateWaitAdmitsLater: while the gate answers Wait the
// Hello goes unanswered and the client's own retries poll admission;
// once the gate grants, the same Dial completes. The client never
// sees a protocol error — waiting is silence, not refusal.
func TestTransportGateWaitAdmitsLater(t *testing.T) {
	polls := 0
	host := NewHost(func(Hello) (Sink, error) { return &memSink{}, nil })
	host.Gate = gateFunc{admit: func(string, uint64, int) (Admission, string) {
		polls++
		if polls < 3 {
			return AdmitWait, ""
		}
		return AdmitGranted, ""
	}}
	env := sim.NewEnv()
	l := transport.NewLink(transport.DefaultParams())
	l.B().Attach(host.NewConn().HandleFrame)
	var dialErr error
	var waited sim.Time
	env.Spawn("mover", func(p *sim.Proc) {
		l.A().Bind(p)
		start := p.Now()
		s, err := Dial(func() (transport.Conn, error) { return l.A(), nil },
			Config{Kind: KindLogical, Session: 11, Window: 4,
				HeartbeatEvery: 50 * time.Millisecond, DeadAfter: time.Second, Proc: p})
		waited = p.Now() - start
		if err != nil {
			dialErr = err
			return
		}
		dialErr = s.Close()
	})
	env.Run()
	if dialErr != nil {
		t.Fatalf("gated dial: %v", dialErr)
	}
	if polls < 3 {
		t.Fatalf("gate polled %d times, want >= 3", polls)
	}
	// Two Wait rounds at one Hello retry per heartbeat interval.
	if waited < sim.Time(100*time.Millisecond) {
		t.Fatalf("admitted after %v, expected at least two retry intervals", time.Duration(waited))
	}
	if hs := host.Stats(); hs.Waits < 2 {
		t.Fatalf("host stats %+v, want >= 2 waits", hs)
	}
}

// TestTransportGateRejectIsTerminal: a Reject becomes AckErr, which
// the client surfaces as a RemoteError from Dial.
func TestTransportGateRejectIsTerminal(t *testing.T) {
	host := NewHost(func(Hello) (Sink, error) { return &memSink{}, nil })
	host.Gate = gateFunc{admit: func(string, uint64, int) (Admission, string) {
		return AdmitReject, "drive pool busy"
	}}
	l := transport.NewLink(transport.DefaultParams())
	l.B().Attach(host.NewConn().HandleFrame)
	_, err := Dial(func() (transport.Conn, error) { return l.A(), nil },
		Config{Kind: KindLogical, Session: 12, Window: 4})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("rejected dial returned %v, want RemoteError", err)
	}
}

// TestTransportGateThrottleWithholdsCredit: with a gate that denies
// charges, acks stop advancing past the already-released mark, so the
// client stalls on its window; when the gate relents the stream
// drains. Correctness is untouched — every byte still lands once.
func TestTransportGateThrottleWithholdsCredit(t *testing.T) {
	sink := &memSink{}
	host := NewHost(func(Hello) (Sink, error) { return sink, nil })
	var deny atomic.Bool
	host.Gate = gateFunc{charge: func(_ string, _ uint64, _ int, n int) bool {
		return !deny.Load()
	}}
	env := sim.NewEnv()
	l := transport.NewLink(transport.DefaultParams())
	l.B().Attach(host.NewConn().HandleFrame)
	recs := testRecords(24)
	var pushErr error
	env.Spawn("unthrottle", func(p *sim.Proc) {
		// The mover blocks on its stalled window while throttled; this
		// proc is the "bucket refill" that lets it drain again.
		p.Sleep(500 * time.Millisecond)
		deny.Store(false)
	})
	env.Spawn("mover", func(p *sim.Proc) {
		l.A().Bind(p)
		s, err := Dial(func() (transport.Conn, error) { return l.A(), nil },
			Config{Kind: KindLogical, Session: 13, Window: 4,
				HeartbeatEvery: 20 * time.Millisecond, DeadAfter: 10 * time.Second, Proc: p})
		if err != nil {
			pushErr = err
			return
		}
		for i, rec := range recs {
			if i == 8 {
				deny.Store(true) // tenant over its byte rate mid-stream
			}
			if err := s.WriteRecord(rec); err != nil {
				pushErr = fmt.Errorf("record %d: %w", i, err)
				return
			}
		}
		pushErr = s.Close()
	})
	env.Run()
	if pushErr != nil {
		t.Fatal(pushErr)
	}
	assertIdentical(t, sink.recs, recs)
	if hs := host.Stats(); hs.Throttled == 0 {
		t.Fatalf("host stats %+v, want throttled > 0", hs)
	}
}
