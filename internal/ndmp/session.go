package ndmp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dumpfmt"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Dialer opens a fresh connection to the tape host. On a simulated
// link it returns the same endpoint (the wire persists, the
// conversation restarts); over TCP it dials anew.
type Dialer func() (transport.Conn, error)

// Config tunes a Session. Zero values take the documented defaults.
type Config struct {
	// Kind labels the stream (KindLogical or KindImage).
	Kind byte
	// Session is a client-chosen id, constant across reconnects.
	Session uint64
	// Stream is the volume-sequence index within the session.
	Stream int
	// FSID names the dumped filesystem in the Hello, so the tape host
	// can catalog the pushed stream.
	FSID string
	// Tenant names the client's namespace on a multi-tenant tape
	// host: catalogs, stream files and scheduler shares are kept per
	// tenant. Empty means the host's default tenant (also what a v2
	// peer, whose Hello has no tenant field, is served as).
	Tenant string
	// Level is the incremental level carried in the Hello (-1 for
	// image streams).
	Level int32
	// Window bounds unacknowledged records in flight (default 16).
	// WriteRecord blocks — charging the simulated clock — once the
	// window is full: this is the backpressure that keeps a fast
	// dump from burying a slow tape host.
	Window int
	// HeartbeatEvery is the silence interval after which the client
	// probes the peer (default 250ms).
	HeartbeatEvery time.Duration
	// DeadAfter is the total silence after which the peer is declared
	// dead with ErrPeerDead (default 2s). Measured on the same clock
	// the connection runs on — virtual for simulated links.
	DeadAfter time.Duration
	// Redial bounds reconnect attempts after a recoverable connection
	// failure, with exponential backoff charged to the simulated
	// clock. The zero value takes DefaultRedialPolicy; a negative
	// MaxRetries disables reconnecting entirely.
	Redial storage.RetryPolicy
	// Ctx, when set, is polled between waits so cancellation
	// interrupts retry and reconnect loops promptly.
	Ctx context.Context
	// Proc, when set, charges redial backoff to the virtual clock.
	// Falls back to the proc carried in Ctx.
	Proc *sim.Proc
}

// DefaultRedialPolicy allows six reconnect attempts with 10ms
// exponential backoff — generous next to the sub-second partitions
// the chaos scenarios inject, small next to a dump's runtime.
func DefaultRedialPolicy() storage.RetryPolicy {
	return storage.RetryPolicy{MaxRetries: 6, Initial: 10 * time.Millisecond, Multiplier: 2}
}

// SessionStats counts client-side protocol events.
type SessionStats struct {
	Records        int64 // records accepted into the stream
	Replayed       int   // record retransmissions (gap, EOM or reconnect)
	Reconnects     int   // successful re-dials
	HeartbeatsSent int
	Timeouts       int // receive deadlines that expired
	BadFrames      int // undecodable frames received
	FramesSent     int // frames put on the wire (data, handshake, probes)
	WindowStalls   int // WriteRecord calls that blocked on a full window
}

// pending is one unacknowledged record in the send window.
type pending struct {
	seq  uint64
	data []byte
}

// Session is the data-mover side of a remote backup stream. It
// implements the engines' sink contract (WriteRecord/NextVolume), so
// a logical dump and a physical image dump thread through it
// unchanged; Close drains the window and must succeed before the
// dump may be reported durable.
//
// Sequence numbers start at 1; acked is cumulative. The window holds
// every record the host has not yet acknowledged, which makes replay
// after a gap, an end-of-media retry, or a reconnect the same
// operation: retransmit window entries above the high-water mark.
type Session struct {
	cfg  Config
	dial Dialer
	conn transport.Conn

	window      []pending
	acked       uint64 // host's durable high-water mark
	repl        uint64 // replicated checkpoint high-water mark
	nextSeq     uint64 // next sequence to assign
	sentThrough uint64 // highest seq transmitted on the current conn
	maxSent     uint64 // highest seq ever transmitted (replay stats)
	eom         bool   // host reported end of media
	silence     time.Duration
	closed      bool
	stats       SessionStats
}

// Dial opens a session: connect, handshake, learn the host's durable
// high-water mark. Recoverable failures are retried per cfg.Redial.
func Dial(dial Dialer, cfg Config) (*Session, error) {
	if cfg.Session == 0 {
		// Id 0 is reserved as "unset": two clients defaulting to it
		// would silently merge their streams in the host's catalog.
		return nil, errors.New("ndmp: session id 0 is reserved; pick a random nonzero id")
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 250 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * time.Second
	}
	if cfg.Redial.MaxRetries == 0 && cfg.Redial.Initial == 0 {
		cfg.Redial = DefaultRedialPolicy()
	}
	s := &Session{cfg: cfg, dial: dial, nextSeq: 1}
	if err := s.connect(); err != nil {
		if isTerminal(err) {
			return nil, err
		}
		if err = s.reconnect(err); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() SessionStats { return s.stats }

// RegisterMetrics installs pull collectors for the session's protocol
// counters, labeled by session id. A Session is single-goroutine;
// collect from the same goroutine or after the session closes.
func (s *Session) RegisterMetrics(r *obs.Registry) {
	l := obs.Labels{"session": fmt.Sprintf("%d", s.cfg.Session)}
	if s.cfg.Tenant != "" {
		l["tenant"] = s.cfg.Tenant
	}
	counters := []struct {
		name string
		fn   func() float64
	}{
		{"ndmp_records_total", func() float64 { return float64(s.stats.Records) }},
		{"ndmp_replayed_total", func() float64 { return float64(s.stats.Replayed) }},
		{"ndmp_reconnects_total", func() float64 { return float64(s.stats.Reconnects) }},
		{"ndmp_heartbeats_sent_total", func() float64 { return float64(s.stats.HeartbeatsSent) }},
		{"ndmp_timeouts_total", func() float64 { return float64(s.stats.Timeouts) }},
		{"ndmp_bad_frames_total", func() float64 { return float64(s.stats.BadFrames) }},
		{"ndmp_frames_sent_total", func() float64 { return float64(s.stats.FramesSent) }},
		{"ndmp_window_stalls_total", func() float64 { return float64(s.stats.WindowStalls) }},
	}
	for _, c := range counters {
		r.RegisterFunc(c.name, obs.KindCounter, l, c.fn)
	}
	r.RegisterFunc("ndmp_acked_records", obs.KindGauge, l, func() float64 {
		return float64(s.acked)
	})
	r.RegisterFunc("ndmp_replicated_records", obs.KindGauge, l, func() float64 {
		return float64(s.repl)
	})
	r.RegisterFunc("ndmp_replication_lag_records", obs.KindGauge, l, func() float64 {
		return float64(s.acked - s.repl)
	})
}

// Acked returns the host's durable high-water mark as last heard.
func (s *Session) Acked() uint64 { return s.acked }

// Replicated returns the replicated checkpoint high-water mark: the
// sequence through which this stream's progress is recorded in the
// replicated catalog and would survive losing the tape host.
func (s *Session) Replicated() uint64 { return s.repl }

func (s *Session) ctxErr() error {
	if s.cfg.Ctx != nil {
		return s.cfg.Ctx.Err()
	}
	return nil
}

func (s *Session) proc() *sim.Proc {
	if s.cfg.Proc != nil {
		return s.cfg.Proc
	}
	if s.cfg.Ctx != nil {
		return sim.ProcFrom(s.cfg.Ctx)
	}
	return nil
}

// isTerminal reports errors that reconnect-and-replay cannot fix:
// cancellation, a declared-dead peer, an exhausted redial budget, or
// a host-side failure relayed over the wire.
func isTerminal(err error) bool {
	var re *RemoteError
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ErrPeerDead) ||
		errors.Is(err, ErrSessionLost) ||
		errors.As(err, &re)
}

// slideTo advances the high-water mark, dropping acknowledged window
// entries.
func (s *Session) slideTo(acked uint64) {
	if acked <= s.acked {
		return
	}
	i := 0
	for i < len(s.window) && s.window[i].seq <= acked {
		i++
	}
	s.window = s.window[i:]
	s.acked = acked
	if s.sentThrough < acked {
		s.sentThrough = acked
	}
}

// connect dials and handshakes. On success the host's high-water
// mark has been folded in and unacknowledged records are marked for
// retransmission — the resume handshake in one round trip.
func (s *Session) connect() error {
	if s.conn != nil {
		s.conn.Close()
	}
	conn, err := s.dial()
	if err != nil {
		return err
	}
	s.conn = conn
	hello := transport.Encode(&transport.Frame{Type: MsgHello, Flags: FlagAckNow,
		Payload: encodeHello(Hello{Version: Version, Kind: s.cfg.Kind, Session: s.cfg.Session,
			Stream: s.cfg.Stream, Level: s.cfg.Level, FSID: s.cfg.FSID, Tenant: s.cfg.Tenant})})
	a, err := s.request(hello, MsgHelloAck)
	if err != nil {
		return err
	}
	if a.status == AckErr {
		return &RemoteError{Op: "hello", Msg: a.msg}
	}
	if a.status == AckStale {
		// A standby (or amnesiac) host: it has no media for this
		// stream, but the replicated catalog vouches for records
		// 1..repl. Terminal for this session — the engine resumes
		// from the checkpoint on a fresh stream.
		return &StaleStreamError{Session: s.cfg.Session, Stream: s.cfg.Stream, Repl: a.repl}
	}
	if a.acked < s.acked {
		// The host lost stream state without a replication layer to
		// vouch for it: same failure shape as a failover, minus the
		// checkpoint guarantee beyond what we last saw replicated.
		return &StaleStreamError{Session: s.cfg.Session, Stream: s.cfg.Stream, Repl: s.repl}
	}
	s.slideTo(a.acked)
	if a.repl > s.repl {
		s.repl = a.repl
	}
	s.eom = a.status == AckEOM
	s.sentThrough = s.acked
	s.silence = 0
	return nil
}

// reconnect runs the exponential-backoff redial loop after cause.
// Backoff is charged to the simulated clock when one is attached.
//
// Total backoff is capped at DeadAfter: a peer that has been silent
// that long is already declared dead by the heartbeat detector, so
// sleeping past it would just delay the ErrSessionLost the engine
// needs to start its checkpoint resume. Exponential backoff doubles
// every attempt — without the cap, a generous MaxRetries spins the
// redial loop multiples of DeadAfter past dead-peer detection.
func (s *Session) reconnect(cause error) error {
	var slept time.Duration
	attempts := 0
	for attempt := 1; attempt <= s.cfg.Redial.MaxRetries; attempt++ {
		if err := s.ctxErr(); err != nil {
			return err
		}
		delay := s.cfg.Redial.Delay(attempt)
		if slept+delay > s.cfg.DeadAfter {
			if attempts > 0 {
				cause = fmt.Errorf("redial backoff %v would exceed dead-peer window %v: %w",
					slept+delay, s.cfg.DeadAfter, cause)
				break
			}
			// An aggressive policy whose very first backoff overshoots
			// the window must not skip dialing altogether: a transient
			// blip (link already healed) would be reported as a lost
			// session without a single attempt. Dial once, immediately.
			delay = 0
		}
		slept += delay
		if delay > 0 {
			if p := s.proc(); p != nil {
				p.Sleep(delay)
			}
		}
		attempts++
		err := s.connect()
		if err == nil {
			s.stats.Reconnects++
			return nil
		}
		if isTerminal(err) {
			return err
		}
		cause = err
	}
	return &SessionLostError{Cause: cause, Reconnects: s.stats.Reconnects}
}

// request sends req and waits for a response frame of the wanted
// type, resending req on every receive timeout (the resend doubles
// as a heartbeat; all our requests are idempotent on the host).
// Other acks that arrive meanwhile still slide the window.
func (s *Session) request(req []byte, want byte) (ack, error) {
	s.stats.FramesSent++
	if err := s.conn.Send(req); err != nil {
		return ack{}, err
	}
	var silence time.Duration
	for {
		if err := s.ctxErr(); err != nil {
			return ack{}, err
		}
		raw, err := s.conn.Recv(s.cfg.HeartbeatEvery)
		if err != nil {
			if !errors.Is(err, transport.ErrTimeout) {
				return ack{}, err
			}
			s.stats.Timeouts++
			silence += s.cfg.HeartbeatEvery
			if silence >= s.cfg.DeadAfter {
				return ack{}, fmt.Errorf("no answer for %v: %w", silence, ErrPeerDead)
			}
			s.stats.FramesSent++
			if err := s.conn.Send(req); err != nil {
				return ack{}, err
			}
			continue
		}
		silence = 0
		f, derr := transport.Decode(raw)
		if derr != nil {
			s.stats.BadFrames++
			continue
		}
		if f.Type == want {
			a, aerr := decodeAck(f.Payload)
			if aerr != nil {
				s.stats.BadFrames++
				continue
			}
			return a, nil
		}
		if err := s.handleFrame(f); err != nil {
			return ack{}, err
		}
	}
}

// transmit sends every window entry above sentThrough. Entries at or
// past half occupancy request an immediate ack, which keeps the ack
// stream sparse on a healthy link yet bounds how far the host's
// high-water mark can lag.
func (s *Session) transmit() error {
	if s.eom {
		return nil // no point pumping a full volume
	}
	for i := range s.window {
		p := &s.window[i]
		if p.seq <= s.sentThrough {
			continue
		}
		var flags byte
		if (p.seq-s.acked)*2 >= uint64(s.cfg.Window) {
			flags = FlagAckNow
		}
		raw := transport.Encode(&transport.Frame{Type: MsgData, Flags: flags, Seq: p.seq, Payload: p.data})
		s.stats.FramesSent++
		if err := s.conn.Send(raw); err != nil {
			return err
		}
		if p.seq <= s.maxSent {
			s.stats.Replayed++
		} else {
			s.maxSent = p.seq
		}
		s.sentThrough = p.seq
	}
	return nil
}

// probe sends a heartbeat; the host answers with its current status,
// which doubles as an ack solicitation.
func (s *Session) probe() error {
	s.stats.HeartbeatsSent++
	s.stats.FramesSent++
	return s.conn.Send(transport.Encode(&transport.Frame{Type: MsgHeartbeat, Flags: FlagAckNow}))
}

// recvOnce waits one heartbeat interval for a frame and processes
// it. Accumulated silence past DeadAfter surfaces ErrPeerDead.
func (s *Session) recvOnce() error {
	raw, err := s.conn.Recv(s.cfg.HeartbeatEvery)
	if err != nil {
		if !errors.Is(err, transport.ErrTimeout) {
			return err
		}
		s.stats.Timeouts++
		s.silence += s.cfg.HeartbeatEvery
		if s.silence >= s.cfg.DeadAfter {
			return fmt.Errorf("no traffic for %v: %w", s.silence, ErrPeerDead)
		}
		// A full heartbeat interval with nothing back is evidence the
		// in-flight tail may have been lost: a dropped data frame leaves
		// no gap for the host to notice (it never saw the sequence), so
		// its heartbeat replies would re-ack the old high-water mark
		// forever. Go-back-N: mark the unacked tail unsent so the next
		// transmit replays it (the host counts duplicates and drops them).
		s.sentThrough = s.acked
		return s.probe()
	}
	s.silence = 0
	f, derr := transport.Decode(raw)
	if derr != nil {
		// A frame mangled on the way back: ask for a status resend.
		s.stats.BadFrames++
		return s.probe()
	}
	return s.handleFrame(f)
}

// handleFrame folds one received ack into the window state.
func (s *Session) handleFrame(f *transport.Frame) error {
	if f.Type != MsgAck {
		return nil // stale handshake/volume/close acks carry nothing new
	}
	a, err := decodeAck(f.Payload)
	if err != nil {
		s.stats.BadFrames++
		return nil
	}
	switch a.status {
	case AckErr:
		return &RemoteError{Op: "data", Msg: a.msg}
	case AckGap:
		// Frames lost in flight: replay everything unacknowledged.
		s.slideTo(a.acked)
		s.sentThrough = s.acked
	case AckEOM:
		s.slideTo(a.acked)
		s.eom = true
	default:
		s.slideTo(a.acked)
	}
	return nil
}

// advance transmits the backlog and processes acks until cond holds,
// reconnecting (with replay) on recoverable connection failures.
func (s *Session) advance(cond func() bool) error {
	for {
		if err := s.ctxErr(); err != nil {
			return err
		}
		err := s.transmit()
		if err == nil {
			if cond() {
				return nil
			}
			err = s.recvOnce()
		}
		if err != nil {
			if isTerminal(err) {
				return err
			}
			if err = s.reconnect(err); err != nil {
				return err
			}
		}
	}
}

// WriteRecord implements the sink contract over the wire: append the
// record to the send window, transmit, and block only when the
// window is full. ErrEndOfMedia is returned for exactly the record
// that did not fit — it is withdrawn from the window so the engine's
// resubmission after NextVolume is not a duplicate.
func (s *Session) WriteRecord(rec []byte) error {
	if s.closed {
		return errors.New("ndmp: write on closed session")
	}
	if err := s.ctxErr(); err != nil {
		return err
	}
	if s.eom {
		return dumpfmt.ErrEndOfMedia
	}
	seq := s.nextSeq
	s.nextSeq++
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.window = append(s.window, pending{seq: seq, data: cp})
	s.stats.Records++
	if len(s.window) >= s.cfg.Window {
		s.stats.WindowStalls++
	}
	if err := s.advance(func() bool { return s.eom || len(s.window) < s.cfg.Window }); err != nil {
		return err
	}
	if s.eom && s.acked < seq && len(s.window) > 0 && s.window[len(s.window)-1].seq == seq {
		// The volume filled at (or before) our record and ours is the
		// youngest unacknowledged one: withdraw it and report EOM, so
		// the engine retries this exact record on the next volume.
		// Older unacknowledged records stay in the window and replay
		// there first, preserving stream order.
		s.window = s.window[:len(s.window)-1]
		s.nextSeq = seq
		s.stats.Records--
		return dumpfmt.ErrEndOfMedia
	}
	return nil
}

// NextVolume asks the host to mount the next cartridge, then marks
// the unacknowledged backlog for replay onto it. Idempotent on the
// host, so lost requests and lost confirmations are both retried
// safely; a reconnect that lands after the switch already happened
// simply returns.
func (s *Session) NextVolume() error {
	if s.closed {
		return errors.New("ndmp: next-volume on closed session")
	}
	req := transport.Encode(&transport.Frame{Type: MsgNextVol, Flags: FlagAckNow})
	for {
		if err := s.ctxErr(); err != nil {
			return err
		}
		a, err := s.request(req, MsgVolAck)
		if err != nil {
			if isTerminal(err) {
				return err
			}
			if err = s.reconnect(err); err != nil {
				return err
			}
			if !s.eom {
				return nil // handshake says the switch already happened
			}
			continue
		}
		if a.status == AckErr {
			return &RemoteError{Op: "next-volume", Msg: a.msg}
		}
		s.slideTo(a.acked)
		s.eom = false
		s.sentThrough = s.acked
		return nil
	}
}

// Sync drains the send window, blocking until every record accepted
// so far is acknowledged durable AND the checkpoint is replicated. It
// implements dumpfmt.Syncer: the dump engines call it after emitting
// a checkpoint marker, which is what makes a checkpoint over the wire
// mean the same thing it means on a local drive — everything up to
// the marker is on tape — plus one promise a local drive never made:
// the progress mark survives losing the tape host itself, because the
// MsgSync round trip records it in the replicated catalog before Sync
// returns. End of media can surface mid-drain (provisionally accepted
// tail records did not fit); the volume switch that a local drive
// would have demanded one write earlier is driven here.
func (s *Session) Sync() error {
	if s.closed {
		return errors.New("ndmp: sync on closed session")
	}
	_ = s.probe() // solicit the tail acks; failures recover in advance
	for {
		if err := s.advance(func() bool { return len(s.window) == 0 || s.eom }); err != nil {
			return err
		}
		if len(s.window) == 0 {
			break
		}
		if err := s.NextVolume(); err != nil {
			return err
		}
	}
	return s.replicate()
}

// replicate runs the MsgSync round trip until the host reports the
// replicated mark has caught up with everything we drained. A
// replication quorum that stays unavailable past the dead-peer window
// surfaces as a lost session: the engine's checkpoint-resume loop
// redials, by which time the quorum may have recovered.
func (s *Session) replicate() error {
	var stalled time.Duration
	for s.repl < s.acked {
		if err := s.ctxErr(); err != nil {
			return err
		}
		if stalled >= s.cfg.DeadAfter {
			return &SessionLostError{
				Cause:      fmt.Errorf("checkpoint replication stalled at %d/%d for %v", s.repl, s.acked, stalled),
				Reconnects: s.stats.Reconnects,
			}
		}
		req := transport.Encode(&transport.Frame{Type: MsgSync, Flags: FlagAckNow, Seq: s.acked})
		a, err := s.request(req, MsgSyncAck)
		if err != nil {
			if isTerminal(err) {
				return err
			}
			if err = s.reconnect(err); err != nil {
				return err
			}
			continue
		}
		if a.status == AckErr {
			return &RemoteError{Op: "sync", Msg: a.msg}
		}
		s.slideTo(a.acked)
		if a.repl > s.repl {
			s.repl = a.repl
			// Partial progress: the quorum is slow, not gone. Only a
			// quorum that advances nothing for a full DeadAfter window
			// is declared lost.
			stalled = 0
		}
		if a.repl < s.acked {
			// Replication quorum unavailable right now: let the clock
			// advance (the wait is charged like a heartbeat) and retry
			// rather than spin.
			stalled += s.cfg.HeartbeatEvery
			if p := s.proc(); p != nil {
				p.Sleep(s.cfg.HeartbeatEvery)
			}
		}
	}
	return nil
}

// Close drains the send window — every record must be acknowledged
// durable before the dump may be reported complete — then announces
// a clean end of stream (best effort: once the data is durable, a
// lost goodbye costs nothing).
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	err := s.Sync()
	if err == nil {
		req := transport.Encode(&transport.Frame{Type: MsgClose, Flags: FlagAckNow})
		if _, cerr := s.request(req, MsgCloseAck); cerr != nil {
			var re *RemoteError
			if errors.As(cerr, &re) {
				err = cerr
			}
		}
	}
	s.closed = true
	if s.conn != nil {
		s.conn.Close()
	}
	return err
}
