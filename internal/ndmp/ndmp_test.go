package ndmp

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dumpfmt"
	"repro/internal/sim"
	"repro/internal/transport"
)

// memSink is a tape-host sink with an optional per-volume record
// capacity, recording everything durably written in order.
type memSink struct {
	cap  int // records per volume; 0 = unlimited
	cur  int
	recs [][]byte
	vols int
}

func (m *memSink) WriteRecord(rec []byte) error {
	if m.cap > 0 && m.cur >= m.cap {
		return dumpfmt.ErrEndOfMedia
	}
	m.cur++
	m.recs = append(m.recs, append([]byte(nil), rec...))
	return nil
}

func (m *memSink) NextVolume() error { m.cur = 0; m.vols++; return nil }

// harness wires a host to a simulated link's B side and returns a
// dialer for the A side that heals hard cuts on redial (the network
// comes back when the client retries).
func harness(l *transport.Link, sink Sink) (*Host, Dialer, *int) {
	opened := 0
	host := NewHost(func(Hello) (Sink, error) { opened++; return sink, nil })
	l.B().Attach(host.HandleFrame)
	dials := 0
	dial := func() (transport.Conn, error) {
		dials++
		if l.Down() {
			l.Heal()
		}
		return l.A(), nil
	}
	_ = dials
	return host, dial, &opened
}

func testRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("record-%04d|%s", i, bytes.Repeat([]byte{byte(i)}, 32)))
	}
	return recs
}

// pushAll drives records through the session the way both dump
// engines do: resubmit the exact record after ErrEndOfMedia.
func pushAll(t *testing.T, s *Session, recs [][]byte) {
	t.Helper()
	for i, rec := range recs {
		err := s.WriteRecord(rec)
		for errors.Is(err, dumpfmt.ErrEndOfMedia) {
			if verr := s.NextVolume(); verr != nil {
				t.Fatalf("record %d: next volume: %v", i, verr)
			}
			err = s.WriteRecord(rec)
		}
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
}

func assertIdentical(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("host has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d differs on the host", i)
		}
	}
}

func TestTransportSessionCleanStream(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	sink := &memSink{}
	host, dial, opened := harness(l, sink)
	s, err := Dial(dial, Config{Kind: KindLogical, Session: 0x5EED, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(50)
	pushAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertIdentical(t, sink.recs, recs)
	if *opened != 1 {
		t.Fatalf("sink opened %d times, want 1", *opened)
	}
	if hs := host.Stats(); hs.Records != 50 || hs.Gaps != 0 {
		t.Fatalf("host stats: %+v", hs)
	}
	if err := s.WriteRecord([]byte("x")); err == nil {
		t.Fatal("write after close must fail")
	}
}

func TestTransportSessionEndOfMediaAcrossVolumes(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	sink := &memSink{cap: 5}
	host, dial, _ := harness(l, sink)
	s, err := Dial(dial, Config{Kind: KindImage, Session: 1, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(23)
	pushAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertIdentical(t, sink.recs, recs)
	// 23 records at 5/volume: at least 4 volume switches served.
	if sink.vols < 4 {
		t.Fatalf("volume switches = %d, want >= 4", sink.vols)
	}
	if hs := host.Stats(); hs.NextVols < 4 {
		t.Fatalf("host served %d next-vols: %+v", hs.NextVols, hs)
	}
}

func TestTransportSessionReconnectAfterCuts(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	// Three hard partitions at fixed cumulative frame counts; the
	// triggering frame is lost in flight each time.
	l.Arm(transport.FaultConfig{Seed: 7, CutAfterFrames: []int{20, 55, 90}})
	sink := &memSink{}
	host, dial, opened := harness(l, sink)
	s, err := Dial(dial, Config{Kind: KindLogical, Session: 2, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(60)
	pushAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	assertIdentical(t, sink.recs, recs)
	st := s.Stats()
	if st.Reconnects < 3 {
		t.Fatalf("reconnects = %d, want >= 3 (stats %+v, link %+v)", st.Reconnects, st, l.Stats())
	}
	if st.Replayed == 0 {
		t.Fatal("cuts lost in-flight records but nothing was replayed")
	}
	if *opened != 1 {
		t.Fatalf("reconnect reopened the sink (%d opens): resume must not restart the stream", *opened)
	}
	if hs := host.Stats(); hs.Records != 60 {
		t.Fatalf("host stats: %+v", hs)
	}
}

func TestTransportSessionSurvivesLossyLink(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	l.Arm(transport.FaultConfig{
		Seed: 11, Drop: 0.15, Duplicate: 0.1, Corrupt: 0.08, Reorder: 0.15,
		CorruptAtFrames: []int{9},
		CutAfterFrames:  []int{70, 200},
		MaxFaults:       80,
	})
	sink := &memSink{cap: 7}
	host, dial, _ := harness(l, sink)
	s, err := Dial(dial, Config{Kind: KindImage, Session: 3, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(120)
	pushAll(t, s, recs)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The whole point: a lossy, reordering, corrupting, partitioning
	// wire and the tape still holds exactly the stream, in order.
	assertIdentical(t, sink.recs, recs)
	ls, hs, ss := l.Stats(), host.Stats(), s.Stats()
	if ls.Dropped == 0 || ls.Corrupted == 0 || ls.Cuts != 2 {
		t.Fatalf("faults never fired: %+v", ls)
	}
	if hs.Gaps == 0 && hs.Duplicates == 0 && hs.BadFrames == 0 {
		t.Fatalf("host never saw damage: %+v", hs)
	}
	if ss.Replayed == 0 || ss.Reconnects < 2 {
		t.Fatalf("client stats: %+v", ss)
	}
}

func TestTransportSessionStreamSwitchReopensSink(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	var sinks []*memSink
	host := NewHost(func(h Hello) (Sink, error) {
		if h.Kind != KindLogical {
			return nil, fmt.Errorf("unexpected kind %d", h.Kind)
		}
		m := &memSink{}
		sinks = append(sinks, m)
		return m, nil
	})
	l.B().Attach(host.HandleFrame)
	dial := func() (transport.Conn, error) { return l.A(), nil }
	recs := testRecords(10)
	for stream := 0; stream < 2; stream++ {
		s, err := Dial(dial, Config{Kind: KindLogical, Session: 9, Stream: stream})
		if err != nil {
			t.Fatal(err)
		}
		pushAll(t, s, recs)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(sinks) != 2 {
		t.Fatalf("factory opened %d sinks, want 2 (one per stream)", len(sinks))
	}
	for i, m := range sinks {
		if len(m.recs) != 10 {
			t.Fatalf("stream %d holds %d records", i, len(m.recs))
		}
	}
	if host.Stats().Streams != 2 {
		t.Fatalf("host stats: %+v", host.Stats())
	}
}

func TestTransportSessionRemoteErrorIsTerminal(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	host := NewHost(func(Hello) (Sink, error) { return nil, errors.New("stacker jammed") })
	l.B().Attach(host.HandleFrame)
	dial := func() (transport.Conn, error) { return l.A(), nil }
	_, err := Dial(dial, Config{Session: 4})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
}

// TestTransportSessionDeadPeerDeadline is the acceptance test for
// heartbeat loss: a one-way partition silently eats every host
// response, and the client must surface ErrPeerDead within the
// configured DeadAfter on the simulated clock.
func TestTransportSessionDeadPeerDeadline(t *testing.T) {
	const (
		heartbeat = 100 * time.Millisecond
		deadAfter = 800 * time.Millisecond
	)
	env := sim.NewEnv()
	l := transport.NewLink(transport.DefaultParams())
	sink := &memSink{}
	_, dial, _ := harness(l, sink)
	var sessErr error
	var detected time.Duration
	env.Spawn("mover", func(p *sim.Proc) {
		l.A().Bind(p)
		s, err := Dial(dial, Config{
			Session:        5,
			Window:         4,
			HeartbeatEvery: heartbeat,
			DeadAfter:      deadAfter,
			Proc:           p,
		})
		if err != nil {
			sessErr = err
			return
		}
		recs := testRecords(12)
		if err := s.WriteRecord(recs[0]); err != nil {
			sessErr = err
			return
		}
		// The host process hangs: its responses stop arriving.
		l.PartitionOneWay(false)
		start := p.Now()
		for _, rec := range recs[1:] {
			if err := s.WriteRecord(rec); err != nil {
				sessErr = err
				break
			}
		}
		detected = time.Duration(p.Now() - start)
	})
	env.Run()
	if !errors.Is(sessErr, ErrPeerDead) {
		t.Fatalf("want ErrPeerDead, got %v", sessErr)
	}
	if detected < deadAfter || detected > deadAfter+2*heartbeat {
		t.Fatalf("dead peer surfaced after %v, want within [%v, %v]", detected, deadAfter, deadAfter+2*heartbeat)
	}
}

func TestTransportProtoRoundTrip(t *testing.T) {
	h := Hello{Version: Version, Kind: KindImage, Session: 0xC0FFEE, Stream: 3, Level: -1, FSID: "home0"}
	got, err := decodeHello(encodeHello(h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v / %v", got, err)
	}
	a := ack{status: AckErr, acked: 42, msg: "stacker empty"}
	ga, err := decodeAck(encodeAck(a))
	if err != nil || ga != a {
		t.Fatalf("ack round trip: %+v / %v", ga, err)
	}
	if _, err := decodeHello([]byte{1}); err == nil {
		t.Fatal("short hello must fail")
	}
	if _, err := decodeAck(nil); err == nil {
		t.Fatal("short ack must fail")
	}
}

// TestTransportSessionSyncDrainsWindow: Sync blocks until every
// provisionally accepted record is acknowledged durable — the engines
// call it at checkpoint markers — including when the tail records need
// a volume switch to land.
func TestTransportSessionSyncDrainsWindow(t *testing.T) {
	l := transport.NewLink(transport.DefaultParams())
	sink := &memSink{cap: 5}
	host, dial, _ := harness(l, sink)
	s, err := Dial(dial, Config{Kind: KindLogical, Session: 9, Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords(7) // provisional tail spills onto volume 2
	pushAll(t, s, recs)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := s.Acked(); got != uint64(len(recs)) {
		t.Fatalf("after sync acked = %d, want %d", got, len(recs))
	}
	assertIdentical(t, sink.recs, recs)
	if hs := host.Stats(); hs.Records != int64(len(recs)) {
		t.Fatalf("host records = %d, want %d", hs.Records, len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
