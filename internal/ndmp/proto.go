// Package ndmp is the remote backup session layer, modelled on the
// Network Data Management Protocol split that the paper's tape
// architecture assumes: a data mover (the dump engine, client side)
// pushes a stream to a tape host (server side) that owns the drives.
//
// One Session carries either stream format — logical dumpfmt records
// or physical image extents — because both engines speak the same
// Sink contract (WriteRecord/NextVolume). The session adds what a
// lossy wire demands and a local drive never did: cumulative
// acknowledgments of durably written records, a bounded sliding send
// window for backpressure, heartbeat-based dead-peer detection, and
// exponential-backoff reconnect that replays every unacknowledged
// record idempotently, so a partition mid-dump costs retransmission,
// never a corrupt or truncated tape.
package ndmp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/transport"
)

// Protocol version spoken by both ends. Version 2 added the
// replication high-water mark to every ack, the MsgSync/MsgSyncAck
// checkpoint-replication round trip, and the AckStale status a
// standby tape host answers when a failed-over client greets it
// mid-stream. Version 3 added the tenant name to the Hello, so a
// multi-tenant tape host can namespace catalogs and enforce
// per-tenant scheduling; hosts negotiate down — a v2 Hello is served
// with an empty tenant.
const Version = 3

// MinVersion is the oldest Hello a host still serves. Everything a v2
// client can say decodes identically under v3 (the tenant field is an
// optional suffix), so the host answers v2 Hellos rather than forcing
// a flag-day upgrade of every data mover.
const MinVersion = 2

// Message types carried in transport.Frame.Type.
const (
	// MsgHello opens (or re-opens) a session: payload names the
	// stream so the tape host can bind or create the right sink.
	MsgHello = 0x01
	// MsgHelloAck answers a Hello with the host's durable high-water
	// mark, which is what makes reconnect resume instead of restart.
	MsgHelloAck = 0x02
	// MsgData carries one record; Frame.Seq orders it.
	MsgData = 0x03
	// MsgAck reports the host's cumulative acknowledged sequence.
	MsgAck = 0x04
	// MsgHeartbeat probes a silent peer; the host answers with MsgAck.
	MsgHeartbeat = 0x05
	// MsgNextVol asks the host to mount the next volume after EOM.
	MsgNextVol = 0x06
	// MsgVolAck answers MsgNextVol (distinct from MsgAck so a stale
	// data ack cannot be mistaken for a completed volume switch).
	MsgVolAck = 0x07
	// MsgClose announces a clean end of stream.
	MsgClose = 0x08
	// MsgCloseAck confirms the host saw the close.
	MsgCloseAck = 0x09
	// MsgSync asks the host to replicate a checkpoint: record the
	// current durable high-water mark in the replicated catalog so a
	// standby host can take over from it. Frame.Seq carries the
	// client's acked mark as a cross-check.
	MsgSync = 0x0A
	// MsgSyncAck answers MsgSync once the checkpoint is replicated;
	// its repl field is the new replicated high-water mark.
	MsgSyncAck = 0x0B
)

// Frame flags.
const (
	// FlagAckNow asks the host to acknowledge immediately rather than
	// batching; clients set it on the last frame of a burst.
	FlagAckNow = 0x01
)

// Ack status codes (first payload byte of MsgHelloAck/MsgAck/MsgVolAck).
const (
	// AckOK: everything up to the carried sequence is durable.
	AckOK = 0x00
	// AckEOM: the current volume is full; the record after the carried
	// sequence did not fit and the client must request MsgNextVol.
	AckEOM = 0x01
	// AckGap: the host saw a sequence jump (frames lost in flight);
	// the client must replay from the carried sequence + 1.
	AckGap = 0x02
	// AckErr: a non-media host-side failure; payload carries a message
	// and the session is not recoverable by retransmission.
	AckErr = 0x03
	// AckStale: the host holds none of this stream's media but the
	// replicated catalog says the stream has checkpointed progress —
	// the client has failed over to a standby (or to a restarted
	// primary). Appending mid-stream is impossible on fresh media; the
	// client must surface StaleStreamError so the engine resumes from
	// the replicated checkpoint on a fresh stream. The ack's repl
	// field carries that checkpoint.
	AckStale = 0x04
)

// Stream kinds named in MsgHello, so the tape host can label media.
const (
	// KindLogical is a dumpfmt record stream (inode-ordered dump).
	KindLogical = 0x01
	// KindImage is a physical block-image extent stream.
	KindImage = 0x02
)

// Hello is the session-open payload. FSID and Level describe what is
// being dumped, so the tape host can record the pushed stream in its
// own backup catalog, not just land the bytes. Tenant (v3) names the
// client's namespace: the host keys catalogs, scheduling shares and
// rate limits by it. A v2 Hello decodes with Tenant "".
type Hello struct {
	Version byte
	Kind    byte   // KindLogical or KindImage
	Session uint64 // client-chosen id, constant across reconnects
	Stream  int    // stream index within the session (volume sequence)
	Level   int32  // incremental level (logical); -1 for image streams
	FSID    string // filesystem the stream dumps ("" = unnamed)
	Tenant  string // namespace on the host ("" = default tenant)
}

// helloFixed is the fixed-width prefix of an encoded Hello: version,
// kind, session, stream, level, and the FSID length. A v3 Hello
// appends a length-prefixed tenant name after the FSID.
const helloFixed = 22

// encodeHello marshals h. The tenant suffix is emitted only for v3+
// hellos, so a client negotiated down to v2 stays bit-compatible.
func encodeHello(h Hello) []byte {
	n := helloFixed + len(h.FSID)
	if h.Version >= 3 {
		n += 4 + len(h.Tenant)
	}
	buf := make([]byte, n)
	buf[0] = h.Version
	buf[1] = h.Kind
	binary.LittleEndian.PutUint64(buf[2:], h.Session)
	binary.LittleEndian.PutUint32(buf[10:], uint32(h.Stream))
	binary.LittleEndian.PutUint32(buf[14:], uint32(h.Level))
	binary.LittleEndian.PutUint32(buf[18:], uint32(len(h.FSID)))
	copy(buf[helloFixed:], h.FSID)
	if h.Version >= 3 {
		off := helloFixed + len(h.FSID)
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(h.Tenant)))
		copy(buf[off+4:], h.Tenant)
	}
	return buf
}

// decodeHello unmarshals a Hello payload of any supported version.
func decodeHello(p []byte) (Hello, error) {
	if len(p) < helloFixed {
		return Hello{}, fmt.Errorf("%w: hello payload %d bytes", transport.ErrBadFrame, len(p))
	}
	n := int(binary.LittleEndian.Uint32(p[18:]))
	if n < 0 || helloFixed+n > len(p) {
		return Hello{}, fmt.Errorf("%w: hello fsid length %d", transport.ErrBadFrame, n)
	}
	h := Hello{
		Version: p[0],
		Kind:    p[1],
		Session: binary.LittleEndian.Uint64(p[2:]),
		Stream:  int(binary.LittleEndian.Uint32(p[10:])),
		Level:   int32(binary.LittleEndian.Uint32(p[14:])),
		FSID:    string(p[helloFixed : helloFixed+n]),
	}
	if h.Version >= 3 {
		off := helloFixed + n
		if len(p) < off+4 {
			return Hello{}, fmt.Errorf("%w: v3 hello missing tenant length", transport.ErrBadFrame)
		}
		tn := int(binary.LittleEndian.Uint32(p[off:]))
		if tn < 0 || off+4+tn > len(p) {
			return Hello{}, fmt.Errorf("%w: hello tenant length %d", transport.ErrBadFrame, tn)
		}
		h.Tenant = string(p[off+4 : off+4+tn])
	}
	return h, nil
}

// ack is the payload of MsgHelloAck, MsgAck, MsgVolAck and MsgSyncAck:
// a status byte, the cumulative acknowledged sequence, the replicated
// checkpoint high-water mark (v2 — records 1..repl are recorded in the
// replicated catalog, so they survive the loss of this tape host), and
// (for AckErr) a human-readable reason.
type ack struct {
	status byte
	acked  uint64
	repl   uint64
	msg    string
}

func encodeAck(a ack) []byte {
	buf := make([]byte, 17+len(a.msg))
	buf[0] = a.status
	binary.LittleEndian.PutUint64(buf[1:], a.acked)
	binary.LittleEndian.PutUint64(buf[9:], a.repl)
	copy(buf[17:], a.msg)
	return buf
}

func decodeAck(p []byte) (ack, error) {
	if len(p) < 17 {
		return ack{}, fmt.Errorf("%w: ack payload %d bytes", transport.ErrBadFrame, len(p))
	}
	return ack{
		status: p[0],
		acked:  binary.LittleEndian.Uint64(p[1:]),
		repl:   binary.LittleEndian.Uint64(p[9:]),
		msg:    string(p[17:]),
	}, nil
}

// RemoteError is a host-side failure relayed over the wire (an AckErr
// status). It is terminal: retransmission cannot fix a broken stacker
// or a sink that refused a record for non-media reasons.
type RemoteError struct {
	Op  string // what the client was doing
	Msg string // the host's reason
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("ndmp: remote error during %s: %s", e.Op, e.Msg)
}

// Typed session failures.
var (
	// ErrPeerDead reports heartbeat loss: the peer sent nothing for
	// the configured DeadAfter window despite probes. Detection is
	// charged to the (possibly simulated) clock.
	ErrPeerDead = errors.New("ndmp: peer dead (heartbeat loss)")
	// ErrSessionLost reports that the redial budget was exhausted
	// without re-establishing the session; the dump engine should
	// fall back to checkpoint Resume on a fresh session.
	ErrSessionLost = errors.New("ndmp: session lost")
)

// SessionLostError carries the cause of a lost session and how many
// reconnects succeeded before the budget ran out. errors.Is matches
// ErrSessionLost.
type SessionLostError struct {
	Cause      error
	Reconnects int
}

func (e *SessionLostError) Error() string {
	return fmt.Sprintf("ndmp: session lost after %d reconnects: %v", e.Reconnects, e.Cause)
}
func (e *SessionLostError) Unwrap() error { return e.Cause }
func (e *SessionLostError) Is(target error) bool {
	return target == ErrSessionLost
}

// StaleStreamError reports that the host answering this stream's
// Hello is not the host that was writing it: a failover (or a host
// restart) put the client in front of fresh media. Records 1..Repl
// are safe — their checkpoint is in the replicated catalog — but the
// stream cannot be appended to; the engine must resume from the
// checkpoint on a fresh stream. errors.Is matches ErrSessionLost, so
// every existing resume-from-checkpoint loop handles a failover
// without modification.
type StaleStreamError struct {
	Session uint64
	Stream  int
	Repl    uint64 // replicated checkpoint sequence for the lost stream
}

func (e *StaleStreamError) Error() string {
	return fmt.Sprintf("ndmp: stale stream %d/%d after failover (replicated checkpoint %d): %v",
		e.Session, e.Stream, e.Repl, ErrSessionLost)
}
func (e *StaleStreamError) Is(target error) bool { return target == ErrSessionLost }
