// Package nvram simulates the filer's non-volatile RAM. Following the
// paper (§2.2), NVRAM is used "only to store recent NFS operations" —
// a log of requests not yet committed by a consistency point — never as
// a disk cache. The filesystem appends serialized operations here;
// when the log passes its high-water mark the filesystem takes a
// consistency point and resets the log; and after a crash the
// surviving entries are replayed against the last consistency point.
//
// Logical restore writes pay the NVRAM logging cost on every operation;
// image restore bypasses this package entirely. That asymmetry is one
// of the paper's stated reasons physical restore is faster, and is the
// subject of ablation A1 in DESIGN.md.
package nvram

import (
	"context"
	"errors"
	"time"

	"repro/internal/sim"
)

// ErrFull is returned by Append when an entry does not fit even after
// the caller has had a chance to take a consistency point.
var ErrFull = errors.New("nvram: log full")

// Params describes the NVRAM hardware.
type Params struct {
	// Size is the log capacity in bytes (the F630 had 32 MB).
	Size int
	// PerOp is the latency of committing one log entry to NVRAM.
	PerOp time.Duration
	// PerByte is the additional cost per logged byte.
	PerByte time.Duration
}

// DefaultParams models the F630's 32 MB NVRAM.
func DefaultParams() Params {
	return Params{
		Size:    32 << 20,
		PerOp:   30 * time.Microsecond,
		PerByte: 90 * time.Nanosecond, // ~11 MB/s NVRAM commit bandwidth
	}
}

// Log is a bounded non-volatile operation log. Entries survive Crash
// (a simulated power loss) but not Reset (a consistency point).
type Log struct {
	params  Params
	station *sim.Station
	entries [][]byte
	used    int
	appends int64
}

// New creates a log. env may be nil for untimed use.
func New(env *sim.Env, p Params) *Log {
	l := &Log{params: p}
	if env != nil {
		l.station = sim.NewStation(env, "nvram", 0)
	}
	return l
}

// Append logs one serialized operation. The caller should take a
// consistency point when NeedCP reports true; Append itself only fails
// when a single entry cannot fit at all.
func (l *Log) Append(ctx context.Context, op []byte) error {
	if l.params.Size > 0 && l.used+len(op) > l.params.Size {
		return ErrFull
	}
	cp := make([]byte, len(op))
	copy(cp, op)
	l.entries = append(l.entries, cp)
	l.used += len(op)
	l.appends++
	if p := sim.ProcFrom(ctx); p != nil {
		l.station.Sync(p, l.params.PerOp+time.Duration(len(op))*l.params.PerByte)
	}
	return nil
}

// NeedCP reports whether the log has passed its high-water mark (half
// full, mirroring WAFL's split-log scheme) and the filesystem should
// take a consistency point.
func (l *Log) NeedCP() bool {
	return l.params.Size > 0 && l.used >= l.params.Size/2
}

// Reset discards all entries; called when a consistency point commits.
func (l *Log) Reset() {
	l.entries = nil
	l.used = 0
}

// Entries returns the logged operations in append order. After a crash
// the filesystem replays these against the last consistency point.
func (l *Log) Entries() [][]byte {
	out := make([][]byte, len(l.entries))
	for i, e := range l.entries {
		out[i] = make([]byte, len(e))
		copy(out[i], e)
	}
	return out
}

// Used returns the bytes currently logged.
func (l *Log) Used() int { return l.used }

// Appends returns the total number of entries ever appended.
func (l *Log) Appends() int64 { return l.appends }

// Station exposes the NVRAM timing station (nil when untimed).
func (l *Log) Station() *sim.Station { return l.station }
