package nvram

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestAppendAndEntries(t *testing.T) {
	ctx := context.Background()
	l := New(nil, Params{Size: 1024})
	ops := [][]byte{[]byte("create /a"), []byte("write /a 100"), []byte("remove /b")}
	for _, op := range ops {
		if err := l.Append(ctx, op); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Entries()
	if len(got) != len(ops) {
		t.Fatalf("entries = %d, want %d", len(got), len(ops))
	}
	for i := range ops {
		if !bytes.Equal(got[i], ops[i]) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
	if l.Appends() != 3 {
		t.Fatalf("Appends = %d, want 3", l.Appends())
	}
}

func TestEntriesAreIsolated(t *testing.T) {
	ctx := context.Background()
	l := New(nil, Params{Size: 1024})
	op := []byte("abc")
	l.Append(ctx, op)
	op[0] = 'z' // caller mutates after append
	e := l.Entries()
	if e[0][0] != 'a' {
		t.Fatal("log aliased caller buffer")
	}
	e[0][0] = 'q' // reader mutates returned copy
	if l.Entries()[0][0] != 'a' {
		t.Fatal("log aliased returned entries")
	}
}

func TestHighWaterMark(t *testing.T) {
	ctx := context.Background()
	l := New(nil, Params{Size: 100})
	if l.NeedCP() {
		t.Fatal("empty log wants CP")
	}
	l.Append(ctx, make([]byte, 49))
	if l.NeedCP() {
		t.Fatal("49/100 wants CP")
	}
	l.Append(ctx, make([]byte, 1))
	if !l.NeedCP() {
		t.Fatal("50/100 does not want CP")
	}
	l.Reset()
	if l.NeedCP() || l.Used() != 0 || len(l.Entries()) != 0 {
		t.Fatal("reset did not clear log")
	}
}

func TestFull(t *testing.T) {
	ctx := context.Background()
	l := New(nil, Params{Size: 100})
	if err := l.Append(ctx, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ctx, []byte{1}); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
}

func TestUnlimitedSize(t *testing.T) {
	ctx := context.Background()
	l := New(nil, Params{Size: 0})
	for i := 0; i < 100; i++ {
		if err := l.Append(ctx, make([]byte, 1<<10)); err != nil {
			t.Fatal(err)
		}
	}
	if l.NeedCP() {
		t.Fatal("unlimited log reported NeedCP")
	}
}

func TestTimingCharged(t *testing.T) {
	env := sim.NewEnv()
	p := Params{Size: 1 << 20, PerOp: time.Millisecond, PerByte: time.Microsecond}
	l := New(env, p)
	env.Spawn("w", func(pr *sim.Proc) {
		ctx := sim.WithProc(context.Background(), pr)
		l.Append(ctx, make([]byte, 100))
	})
	env.Run()
	want := time.Millisecond + 100*time.Microsecond
	if env.Now() != want {
		t.Fatalf("append took %v, want %v", env.Now(), want)
	}
}

func TestUntimedContextNoCharge(t *testing.T) {
	env := sim.NewEnv()
	l := New(env, DefaultParams())
	// Append without a proc in the context: bytes logged, no time.
	if err := l.Append(context.Background(), []byte("op")); err != nil {
		t.Fatal(err)
	}
	if l.Station().Busy() != 0 {
		t.Fatal("untimed append charged station time")
	}
}
