package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Fault-classification errors. A transient fault clears on its own
// after a bounded number of retries (firmware recovery, vibration, a
// marginal read); a latent sector error is persistent and can only be
// served by redundancy above the device.
var (
	ErrTransient    = errors.New("storage: transient read fault")
	ErrLatentSector = errors.New("storage: latent sector error")
	ErrWriteFault   = errors.New("storage: media write fault")
)

// IsTransient reports whether err is a transient fault worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// FaultProfile configures seeded probabilistic fault injection on a
// FaultDevice. All probabilities are per-operation in [0,1]; the zero
// value injects nothing.
type FaultProfile struct {
	// Seed initialises the device's private rand.Rand; the same seed
	// and the same operation sequence reproduce the same faults.
	Seed int64
	// ReadFault is the per-block probability that a read injects a
	// fault (classified transient or persistent by Transient below).
	ReadFault float64
	// RunFault is the per-ReadRun probability of one additional fault
	// at a uniformly chosen offset inside the run, modelling errors
	// that correlate with long sequential transfers.
	RunFault float64
	// WriteFault is the per-block probability that a write fails.
	WriteFault float64
	// Transient is the fraction of injected read faults that are
	// transient; the rest become sticky latent sector errors.
	Transient float64
	// HealAfter is how many failed attempts a transient fault survives
	// before the block reads cleanly again. 0 means 1.
	HealAfter int
	// MaxFaults caps the total number of injected faults; 0 = no cap.
	MaxFaults int
	// SkipReads exempts the first N block reads from injection, so a
	// scenario can fill a device cleanly and fault only the backup.
	SkipReads int
}

// FaultStats counts faults injected by an armed profile.
type FaultStats struct {
	Transient  int // transient read faults injected
	Persistent int // latent sector errors injected
	Write      int // write faults injected
}

func (s FaultStats) total() int { return s.Transient + s.Persistent + s.Write }

// Arm enables probabilistic fault injection according to p. The
// deterministic Fail/FailRead API keeps working alongside; Disarm
// stops new injections but leaves already-injected latent sector
// errors in place (a bad sector does not heal by switching the
// injector off).
func (d *FaultDevice) Arm(p FaultProfile) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.prof = &p
	d.rng = rand.New(rand.NewSource(p.Seed))
	if d.transient == nil {
		d.transient = make(map[int]int)
	}
}

// Disarm stops probabilistic injection. Latent sector errors already
// injected (and any deterministic FailRead entries) remain.
func (d *FaultDevice) Disarm() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.prof = nil
}

// ClearFaults forgets all injected and deterministic per-block faults
// and any whole-device failure, as if the device were replaced.
func (d *FaultDevice) ClearFaults() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
	d.failReads = make(map[int]error)
	d.transient = make(map[int]int)
}

// FaultStats returns how many faults the armed profile has injected.
func (d *FaultDevice) FaultStats() FaultStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// readFault decides whether the read of block bno faults, applying
// transient-heal bookkeeping and, when force is set, injecting
// unconditionally (used for run-correlated faults). Callers hold d.mu.
func (d *FaultDevice) readFault(bno int, force bool) error {
	if rem, ok := d.transient[bno]; ok {
		if rem > 0 {
			d.transient[bno] = rem - 1
			return fmt.Errorf("%w: block %d", ErrTransient, bno)
		}
		delete(d.transient, bno) // healed
	}
	p := d.prof
	if p == nil {
		return nil
	}
	seq := d.totalReads
	d.totalReads++
	if seq < p.SkipReads {
		return nil
	}
	if p.MaxFaults > 0 && d.stats.total() >= p.MaxFaults {
		return nil
	}
	if !force && (p.ReadFault <= 0 || d.rng.Float64() >= p.ReadFault) {
		return nil
	}
	if d.rng.Float64() < p.Transient {
		heal := p.HealAfter
		if heal <= 0 {
			heal = 1
		}
		// This failure is the first of heal; the rest are owed.
		d.transient[bno] = heal - 1
		d.stats.Transient++
		return fmt.Errorf("%w: block %d", ErrTransient, bno)
	}
	err := fmt.Errorf("%w: block %d", ErrLatentSector, bno)
	d.failReads[bno] = err // sticky until ClearFaults
	d.stats.Persistent++
	return err
}

// runFaultIndex draws the offset of a run-correlated fault for a run
// of n blocks, or -1. Callers hold d.mu.
func (d *FaultDevice) runFaultIndex(n int) int {
	p := d.prof
	if p == nil || p.RunFault <= 0 || n <= 0 {
		return -1
	}
	if p.MaxFaults > 0 && d.stats.total() >= p.MaxFaults {
		return -1
	}
	if d.rng.Float64() >= p.RunFault {
		return -1
	}
	return d.rng.Intn(n)
}

// writeFault decides whether the write of block bno faults. Callers
// hold d.mu.
func (d *FaultDevice) writeFault(bno int) error {
	p := d.prof
	if p == nil || p.WriteFault <= 0 {
		return nil
	}
	if p.MaxFaults > 0 && d.stats.total() >= p.MaxFaults {
		return nil
	}
	if d.rng.Float64() >= p.WriteFault {
		return nil
	}
	d.stats.Write++
	return fmt.Errorf("%w: block %d", ErrWriteFault, bno)
}

// RetryPolicy bounds recovery of transient faults: up to MaxRetries
// re-reads, sleeping Initial*Multiplier^(attempt-1) of simulated time
// before each.
type RetryPolicy struct {
	MaxRetries int
	Initial    time.Duration
	Multiplier float64
}

// DefaultRetryPolicy matches a disk firmware's bounded retry loop:
// four attempts with 2 ms exponential backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, Initial: 2 * time.Millisecond, Multiplier: 2}
}

// Delay returns the backoff before retry attempt (1-based).
func (p RetryPolicy) Delay(attempt int) time.Duration {
	d := p.Initial
	if d <= 0 {
		d = time.Millisecond
	}
	m := p.Multiplier
	if m < 1 {
		m = 1
	}
	for i := 1; i < attempt; i++ {
		d = time.Duration(float64(d) * m)
	}
	return d
}

// Charge sleeps the simulated process carried in ctx for the
// attempt's backoff. Retry latency is charged to the virtual clock,
// never to wall time; untimed contexts pay nothing.
func (p RetryPolicy) Charge(ctx context.Context, attempt int) {
	if proc := sim.ProcFrom(ctx); proc != nil {
		proc.Sleep(p.Delay(attempt))
	}
}
