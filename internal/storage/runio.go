package storage

import (
	"context"
	"fmt"

	"repro/internal/sim"
)

// RunDevice is implemented by devices with a native bulk path for
// contiguous multi-block runs. The run calls are semantically
// equivalent to n consecutive ReadBlock/WriteBlock calls but let an
// implementation amortize locking, bounds checks and (for timed
// devices) seek accounting over the whole run.
//
// Buffer ownership: buf belongs to the caller. Implementations must
// not retain it past the call, and ReadRun must fill every byte of
// buf[:n*BlockSize] (never-written blocks read as zeros).
type RunDevice interface {
	Device
	// ReadRun fills buf (n*BlockSize long) with blocks [bno, bno+n).
	ReadRun(ctx context.Context, bno, n int, buf []byte) error
	// WriteRun stores buf (n*BlockSize long) at blocks [bno, bno+n).
	WriteRun(ctx context.Context, bno, n int, buf []byte) error
}

// checkRun validates a run request against a device of total blocks.
func checkRun(bno, n, total int, buf []byte) error {
	if n < 0 || bno < 0 || bno+n > total {
		return fmt.Errorf("%w: run %d+%d of %d", ErrOutOfRange, bno, n, total)
	}
	if len(buf) != n*BlockSize {
		return fmt.Errorf("%w: %d for %d blocks", ErrBadLength, len(buf), n)
	}
	return nil
}

// ReadRun reads n consecutive blocks starting at bno from d into buf,
// taking the device's native bulk path when it has one and falling
// back to per-block reads otherwise. This is the generic entry point
// the dump engines use, so any Device works and fast ones are fast.
func ReadRun(ctx context.Context, d Device, bno, n int, buf []byte) error {
	if rd, ok := d.(RunDevice); ok {
		return rd.ReadRun(ctx, bno, n, buf)
	}
	if err := checkRun(bno, n, d.NumBlocks(), buf); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := d.ReadBlock(ctx, bno+i, buf[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRun writes n consecutive blocks starting at bno to d from buf,
// taking the native bulk path when available, per-block otherwise.
func WriteRun(ctx context.Context, d Device, bno, n int, buf []byte) error {
	if rd, ok := d.(RunDevice); ok {
		return rd.WriteRun(ctx, bno, n, buf)
	}
	if err := checkRun(bno, n, d.NumBlocks(), buf); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := d.WriteBlock(ctx, bno+i, buf[i*BlockSize:(i+1)*BlockSize]); err != nil {
			return err
		}
	}
	return nil
}

// AsyncRunDevice is implemented by devices whose bulk read path can
// decouple data delivery from timing: ReadRunAsync fills buf before
// returning (the bytes are immediately usable) but only *reserves*
// the device service time, handing back the virtual completion time
// instead of blocking until it. A pipelined reader issues several
// runs back to back and waits on each completion as it needs the
// data, which keeps the spindle queue full across the reader's own
// think time — the read-ahead batching the parallel dump pipeline
// is built on. Untimed contexts return 0 (already complete).
type AsyncRunDevice interface {
	RunDevice
	ReadRunAsync(ctx context.Context, bno, n int, buf []byte) (sim.Time, error)
}

// ReadRunAsync issues a read of n blocks at bno on d's asynchronous
// bulk path when it has one, falling back to a synchronous ReadRun
// (returning 0: data ready, time fully charged) otherwise.
func ReadRunAsync(ctx context.Context, d Device, bno, n int, buf []byte) (sim.Time, error) {
	if ad, ok := d.(AsyncRunDevice); ok {
		return ad.ReadRunAsync(ctx, bno, n, buf)
	}
	return 0, ReadRun(ctx, d, bno, n, buf)
}

// runShim adds the per-block fallback as methods, for callers that
// want to hold a RunDevice value regardless of the underlying type.
type runShim struct{ Device }

func (s runShim) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	return ReadRun(ctx, s.Device, bno, n, buf)
}

func (s runShim) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	return WriteRun(ctx, s.Device, bno, n, buf)
}

// WithRuns returns d itself when it already implements RunDevice, or
// wraps it in a per-block fallback shim otherwise.
func WithRuns(d Device) RunDevice {
	if rd, ok := d.(RunDevice); ok {
		return rd
	}
	return runShim{d}
}
