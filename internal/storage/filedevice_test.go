package storage

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFileDeviceRoundTrip(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "vol.img")
	d, err := CreateFileDevice(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 16 {
		t.Fatalf("NumBlocks = %d", d.NumBlocks())
	}
	data := bytes.Repeat([]byte{0x5A}, BlockSize)
	if err := d.WriteBlock(ctx, 7, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: contents persist.
	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NumBlocks() != 16 {
		t.Fatalf("reopened NumBlocks = %d", d2.NumBlocks())
	}
	buf := make([]byte, BlockSize)
	if err := d2.ReadBlock(ctx, 7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost across reopen")
	}
	// Unwritten blocks read as zeros (sparse file).
	if err := d2.ReadBlock(ctx, 3, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten block non-zero")
		}
	}
}

func TestFileDeviceBounds(t *testing.T) {
	ctx := context.Background()
	d, err := CreateFileDevice(filepath.Join(t.TempDir(), "v"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(ctx, 4, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
	if err := d.WriteBlock(ctx, 0, buf[:100]); !errors.Is(err, ErrBadLength) {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

func TestOpenFileDeviceRejectsUnaligned(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ragged")
	if err := os.WriteFile(path, make([]byte, BlockSize+17), 0644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDevice(path); err == nil {
		t.Fatal("unaligned file accepted")
	}
}

func TestOpenFileDeviceMissing(t *testing.T) {
	if _, err := OpenFileDevice(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file accepted")
	}
}
