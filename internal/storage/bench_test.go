package storage

import (
	"context"
	"testing"
)

// BenchmarkMemRunRead measures MemDevice's lock-once bulk read path,
// the floor every higher layer's run I/O builds on.
func BenchmarkMemRunRead(b *testing.B) {
	const nblocks = 4096
	const run = 512
	d := NewMemDevice(nblocks)
	ctx := context.Background()
	buf := make([]byte, run*BlockSize)
	for bno := 0; bno+run <= nblocks; bno += run {
		if err := d.WriteRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(run * BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+run > nblocks {
			bno = 0
		}
		if err := d.ReadRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
		bno += run
	}
}

// BenchmarkMemRunReadFallback measures the same read through the
// per-block fallback shim, for comparison against the native run path.
func BenchmarkMemRunReadFallback(b *testing.B) {
	const nblocks = 4096
	const run = 512
	d := NewMemDevice(nblocks)
	ctx := context.Background()
	buf := make([]byte, run*BlockSize)
	for bno := 0; bno+run <= nblocks; bno += run {
		if err := d.WriteRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
	}
	var plain Device = struct{ Device }{d} // hide the RunDevice methods
	b.SetBytes(run * BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+run > nblocks {
			bno = 0
		}
		if err := ReadRun(ctx, plain, bno, run, buf); err != nil {
			b.Fatal(err)
		}
		bno += run
	}
}
