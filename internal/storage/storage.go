// Package storage defines the block-device abstraction shared by the
// simulated disks (internal/vdev), the RAID layer (internal/raid) and
// the filesystem (internal/wafl), plus simple in-memory and
// fault-injecting implementations used throughout the tests.
package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// BlockSize is the unit of all device I/O, matching WAFL's 4 KB blocks.
const BlockSize = 4096

// Errors returned by devices.
var (
	ErrOutOfRange = errors.New("storage: block number out of range")
	ErrBadLength  = errors.New("storage: buffer length != block size")
	ErrFailed     = errors.New("storage: device failed")
)

// Device is a fixed-geometry array of 4 KB blocks. Implementations may
// charge virtual time for each access via the sim process carried in
// ctx; without one, access is untimed.
type Device interface {
	// NumBlocks returns the device capacity in blocks.
	NumBlocks() int
	// ReadBlock fills buf (which must be BlockSize long) with block bno.
	ReadBlock(ctx context.Context, bno int, buf []byte) error
	// WriteBlock stores data (which must be BlockSize long) at block bno.
	WriteBlock(ctx context.Context, bno int, data []byte) error
}

// zeroBlock is the shared image of a never-written block: reads of
// unbacked blocks copy from it instead of clearing byte by byte.
var zeroBlock [BlockSize]byte

// MemDevice is an untimed in-memory Device. It is safe for concurrent
// use and is the workhorse of functional tests. It implements
// RunDevice with a lock-once bulk path.
type MemDevice struct {
	mu     sync.Mutex
	blocks [][]byte
}

// NewMemDevice creates an in-memory device of n blocks, all zero.
func NewMemDevice(n int) *MemDevice {
	return &MemDevice{blocks: make([][]byte, n)}
}

// NumBlocks implements Device.
func (d *MemDevice) NumBlocks() int { return len(d.blocks) }

// ReadBlock implements Device. Never-written blocks read as zeros.
func (d *MemDevice) ReadBlock(_ context.Context, bno int, buf []byte) error {
	if err := checkArgs(bno, len(d.blocks), buf); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if b := d.blocks[bno]; b != nil {
		copy(buf, b)
	} else {
		copy(buf, zeroBlock[:])
	}
	return nil
}

// ReadRun implements RunDevice: one lock acquisition for the whole
// run, copying block slices (or the shared zero block) into buf.
func (d *MemDevice) ReadRun(_ context.Context, bno, n int, buf []byte) error {
	if err := checkRun(bno, n, len(d.blocks), buf); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < n; i++ {
		dst := buf[i*BlockSize : (i+1)*BlockSize]
		if b := d.blocks[bno+i]; b != nil {
			copy(dst, b)
		} else {
			copy(dst, zeroBlock[:])
		}
	}
	return nil
}

// WriteRun implements RunDevice: one lock acquisition for the run,
// backing all previously-unwritten blocks with a single arena
// allocation instead of one make per block.
func (d *MemDevice) WriteRun(_ context.Context, bno, n int, buf []byte) error {
	if err := checkRun(bno, n, len(d.blocks), buf); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	missing := 0
	for i := 0; i < n; i++ {
		if d.blocks[bno+i] == nil {
			missing++
		}
	}
	var arena []byte
	if missing > 0 {
		arena = make([]byte, missing*BlockSize)
	}
	for i := 0; i < n; i++ {
		if d.blocks[bno+i] == nil {
			d.blocks[bno+i] = arena[:BlockSize:BlockSize]
			arena = arena[BlockSize:]
		}
		copy(d.blocks[bno+i], buf[i*BlockSize:(i+1)*BlockSize])
	}
	return nil
}

// Clone returns an independent copy of the device's current contents,
// useful for inspecting a volume without perturbing it (mounting a
// filesystem read-write mutates the volume).
func (d *MemDevice) Clone() *MemDevice {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := NewMemDevice(len(d.blocks))
	for i, b := range d.blocks {
		if b != nil {
			cp := make([]byte, BlockSize)
			copy(cp, b)
			out.blocks[i] = cp
		}
	}
	return out
}

// WriteBlock implements Device.
func (d *MemDevice) WriteBlock(_ context.Context, bno int, data []byte) error {
	if err := checkArgs(bno, len(d.blocks), data); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.blocks[bno] == nil {
		d.blocks[bno] = make([]byte, BlockSize)
	}
	copy(d.blocks[bno], data)
	return nil
}

func checkArgs(bno, n int, buf []byte) error {
	if bno < 0 || bno >= n {
		return fmt.Errorf("%w: %d of %d", ErrOutOfRange, bno, n)
	}
	if len(buf) != BlockSize {
		return fmt.Errorf("%w: %d", ErrBadLength, len(buf))
	}
	return nil
}

// FaultDevice wraps a Device and injects failures, for RAID degraded
// mode and backup-robustness tests.
type FaultDevice struct {
	Inner Device

	mu        sync.Mutex
	failed    bool
	failReads map[int]error // per-block read errors
	reads     int
	writes    int

	// Probabilistic injection state (see faults.go); prof == nil when
	// only the deterministic Fail/FailRead API is in play.
	prof       *FaultProfile
	rng        *rand.Rand
	transient  map[int]int // block -> failed attempts still owed before heal
	totalReads int         // block reads observed, for FaultProfile.SkipReads
	stats      FaultStats
}

// NewFaultDevice wraps inner with fault injection initially disabled.
func NewFaultDevice(inner Device) *FaultDevice {
	return &FaultDevice{Inner: inner, failReads: make(map[int]error)}
}

// Fail makes every subsequent access return ErrFailed, simulating a
// whole-device loss.
func (d *FaultDevice) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Heal clears a whole-device failure.
func (d *FaultDevice) Heal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
}

// FailRead makes reads of block bno return err (a latent sector error).
func (d *FaultDevice) FailRead(bno int, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failReads[bno] = err
}

// Counts returns the number of reads and writes that reached the
// wrapped device.
func (d *FaultDevice) Counts() (reads, writes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}

// NumBlocks implements Device.
func (d *FaultDevice) NumBlocks() int { return d.Inner.NumBlocks() }

// ReadBlock implements Device.
func (d *FaultDevice) ReadBlock(ctx context.Context, bno int, buf []byte) error {
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrFailed
	}
	if err, ok := d.failReads[bno]; ok {
		d.mu.Unlock()
		return err
	}
	if err := d.readFault(bno, false); err != nil {
		d.mu.Unlock()
		return err
	}
	d.reads++
	d.mu.Unlock()
	return d.Inner.ReadBlock(ctx, bno, buf)
}

// WriteBlock implements Device.
func (d *FaultDevice) WriteBlock(ctx context.Context, bno int, data []byte) error {
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrFailed
	}
	if err := d.writeFault(bno); err != nil {
		d.mu.Unlock()
		return err
	}
	d.writes++
	d.mu.Unlock()
	return d.Inner.WriteBlock(ctx, bno, data)
}

// ReadRun implements RunDevice, preserving per-block fault semantics:
// a latent sector error inside the run surfaces after the blocks in
// front of it have been read, exactly as the per-block loop would.
func (d *FaultDevice) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	if err := checkRun(bno, n, d.Inner.NumBlocks(), buf); err != nil {
		return err
	}
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrFailed
	}
	bad, badErr := -1, error(nil)
	runAt := d.runFaultIndex(n)
	for i := 0; i < n; i++ {
		if err, ok := d.failReads[bno+i]; ok {
			bad, badErr = i, err
			break
		}
		if err := d.readFault(bno+i, i == runAt); err != nil {
			bad, badErr = i, err
			break
		}
	}
	good := n
	if bad >= 0 {
		good = bad
	}
	d.reads += good
	d.mu.Unlock()
	if good > 0 {
		if err := ReadRun(ctx, d.Inner, bno, good, buf[:good*BlockSize]); err != nil {
			return err
		}
	}
	return badErr
}

// WriteRun implements RunDevice. A probabilistic write fault inside
// the run fails the whole run before any block is written; the
// write-behind layers above make a partial stripe indistinguishable
// from none anyway.
func (d *FaultDevice) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	d.mu.Lock()
	if d.failed {
		d.mu.Unlock()
		return ErrFailed
	}
	for i := 0; i < n; i++ {
		if err := d.writeFault(bno + i); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	d.writes += n
	d.mu.Unlock()
	return WriteRun(ctx, d.Inner, bno, n, buf)
}
