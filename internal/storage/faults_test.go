package storage

import (
	"context"
	"testing"
	"time"

	"repro/internal/sim"
)

// readAll reads every block of d once, returning the per-block errors.
func readAll(t *testing.T, d *FaultDevice) []error {
	t.Helper()
	buf := make([]byte, BlockSize)
	errs := make([]error, d.NumBlocks())
	for i := range errs {
		errs[i] = d.ReadBlock(context.Background(), i, buf)
	}
	return errs
}

func TestFaultProfileDeterministic(t *testing.T) {
	mk := func() []error {
		d := NewFaultDevice(NewMemDevice(256))
		d.Arm(FaultProfile{Seed: 42, ReadFault: 0.1, Transient: 0.5})
		return readAll(t, d)
	}
	a, b := mk(), mk()
	faults := 0
	for i := range a {
		if (a[i] == nil) != (b[i] == nil) {
			t.Fatalf("block %d: runs diverge (%v vs %v)", i, a[i], b[i])
		}
		if a[i] != nil {
			faults++
			if !IsTransient(a[i]) && !IsTransient(b[i]) {
				// persistent faults must agree too
				if a[i].Error() != b[i].Error() {
					t.Fatalf("block %d: %v vs %v", i, a[i], b[i])
				}
			}
		}
	}
	if faults == 0 {
		t.Fatal("profile injected no faults in 256 reads at p=0.1")
	}
}

func TestTransientHealsAfterN(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(8))
	d.Arm(FaultProfile{Seed: 1, ReadFault: 1, Transient: 1, HealAfter: 3, MaxFaults: 1})
	buf := make([]byte, BlockSize)
	var errs []error
	for i := 0; i < 5; i++ {
		errs = append(errs, d.ReadBlock(context.Background(), 0, buf))
	}
	for i := 0; i < 3; i++ {
		if !IsTransient(errs[i]) {
			t.Fatalf("attempt %d: want transient fault, got %v", i, errs[i])
		}
	}
	for i := 3; i < 5; i++ {
		if errs[i] != nil {
			t.Fatalf("attempt %d: want healed read, got %v", i, errs[i])
		}
	}
	st := d.FaultStats()
	if st.Transient != 1 || st.Persistent != 0 {
		t.Fatalf("stats = %+v, want 1 transient", st)
	}
}

func TestLatentSectorIsSticky(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(8))
	d.Arm(FaultProfile{Seed: 7, ReadFault: 1, Transient: 0, MaxFaults: 1})
	buf := make([]byte, BlockSize)
	first := d.ReadBlock(context.Background(), 3, buf)
	if first == nil || IsTransient(first) {
		t.Fatalf("want latent sector error, got %v", first)
	}
	// MaxFaults reached: other blocks read fine, block 3 stays bad.
	if err := d.ReadBlock(context.Background(), 4, buf); err != nil {
		t.Fatalf("block 4: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := d.ReadBlock(context.Background(), 3, buf); err == nil {
			t.Fatal("latent sector error healed on its own")
		}
	}
	d.Disarm()
	if err := d.ReadBlock(context.Background(), 3, buf); err == nil {
		t.Fatal("latent sector error vanished on Disarm")
	}
	d.ClearFaults()
	if err := d.ReadBlock(context.Background(), 3, buf); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}
}

func TestSkipReadsAndMaxFaults(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(64))
	d.Arm(FaultProfile{Seed: 3, ReadFault: 1, Transient: 0, SkipReads: 10, MaxFaults: 2})
	errs := readAll(t, d)
	for i := 0; i < 10; i++ {
		if errs[i] != nil {
			t.Fatalf("block %d inside SkipReads faulted: %v", i, errs[i])
		}
	}
	faults := 0
	for _, err := range errs[10:] {
		if err != nil {
			faults++
		}
	}
	if faults != 2 {
		t.Fatalf("injected %d faults, want MaxFaults=2", faults)
	}
}

func TestRunFaultInsideRun(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(64))
	d.Arm(FaultProfile{Seed: 5, RunFault: 1, Transient: 1, HealAfter: 1, MaxFaults: 3})
	buf := make([]byte, 32*BlockSize)
	err := d.ReadRun(context.Background(), 0, 32, buf)
	if !IsTransient(err) {
		t.Fatalf("want transient fault from run read, got %v", err)
	}
	// Each retry may draw a fresh run fault, but MaxFaults bounds the
	// total and every fault is transient, so retries converge.
	ok := false
	for i := 0; i < 10 && !ok; i++ {
		ok = d.ReadRun(context.Background(), 0, 32, buf) == nil
	}
	if !ok {
		t.Fatal("run read never succeeded despite bounded transient faults")
	}
}

func TestDeterministicAPIUnchanged(t *testing.T) {
	d := NewFaultDevice(NewMemDevice(8))
	d.Arm(FaultProfile{Seed: 1}) // armed but zero probabilities
	d.FailRead(2, ErrLatentSector)
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(context.Background(), 2, buf); err != ErrLatentSector {
		t.Fatalf("FailRead: got %v", err)
	}
	d.Fail()
	if err := d.ReadBlock(context.Background(), 0, buf); err != ErrFailed {
		t.Fatalf("Fail: got %v", err)
	}
	d.Heal()
	if err := d.ReadBlock(context.Background(), 0, buf); err != nil {
		t.Fatalf("Heal: got %v", err)
	}
}

func TestRetryPolicyDelayAndCharge(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, Initial: 2 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	env := sim.NewEnv()
	var elapsed time.Duration
	env.Spawn("retry", func(proc *sim.Proc) {
		ctx := sim.WithProc(context.Background(), proc)
		start := proc.Now()
		p.Charge(ctx, 1)
		p.Charge(ctx, 2)
		elapsed = proc.Now() - start
	})
	env.Run()
	if elapsed != 6*time.Millisecond {
		t.Fatalf("charged %v of simulated time, want 6ms", elapsed)
	}
	// Untimed context: Charge must be a no-op, not a wall-clock sleep.
	p.Charge(context.Background(), 3)
}
