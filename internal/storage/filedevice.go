package storage

import (
	"context"
	"fmt"
	"os"
)

// FileDevice is a Device backed by a host file, giving the CLI
// (cmd/backupctl) persistent volumes. The file holds raw 4 KB blocks
// at their natural offsets.
type FileDevice struct {
	f      *os.File
	blocks int
}

// CreateFileDevice creates (or truncates) path as an n-block volume.
func CreateFileDevice(path string, n int) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(n) * BlockSize); err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, blocks: n}, nil
}

// OpenFileDevice opens an existing volume file.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%BlockSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s is not block-aligned (%d bytes)", path, st.Size())
	}
	return &FileDevice{f: f, blocks: int(st.Size() / BlockSize)}, nil
}

// NumBlocks implements Device.
func (d *FileDevice) NumBlocks() int { return d.blocks }

// ReadBlock implements Device.
func (d *FileDevice) ReadBlock(_ context.Context, bno int, buf []byte) error {
	if err := checkArgs(bno, d.blocks, buf); err != nil {
		return err
	}
	_, err := d.f.ReadAt(buf, int64(bno)*BlockSize)
	return err
}

// WriteBlock implements Device.
func (d *FileDevice) WriteBlock(_ context.Context, bno int, data []byte) error {
	if err := checkArgs(bno, d.blocks, data); err != nil {
		return err
	}
	_, err := d.f.WriteAt(data, int64(bno)*BlockSize)
	return err
}

// ReadRun implements RunDevice with a single positional read for the
// whole run — the CLI's persistent volumes move bulk data in one
// syscall per run instead of one per 4 KB block.
func (d *FileDevice) ReadRun(_ context.Context, bno, n int, buf []byte) error {
	if err := checkRun(bno, n, d.blocks, buf); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	_, err := d.f.ReadAt(buf, int64(bno)*BlockSize)
	return err
}

// WriteRun implements RunDevice with a single positional write.
func (d *FileDevice) WriteRun(_ context.Context, bno, n int, buf []byte) error {
	if err := checkRun(bno, n, d.blocks, buf); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	_, err := d.f.WriteAt(buf, int64(bno)*BlockSize)
	return err
}

// Close flushes and closes the backing file.
func (d *FileDevice) Close() error {
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}
