package storage

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"testing/quick"
)

func TestMemDeviceReadWrite(t *testing.T) {
	ctx := context.Background()
	d := NewMemDevice(8)
	if d.NumBlocks() != 8 {
		t.Fatalf("NumBlocks = %d, want 8", d.NumBlocks())
	}
	data := make([]byte, BlockSize)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := d.WriteBlock(ctx, 3, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(ctx, 3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("read back different data")
	}
}

func TestMemDeviceZeroFill(t *testing.T) {
	ctx := context.Background()
	d := NewMemDevice(2)
	buf := make([]byte, BlockSize)
	buf[0] = 0xFF // ensure ReadBlock overwrites stale contents
	if err := d.ReadBlock(ctx, 1, buf); err != nil {
		t.Fatal(err)
	}
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten block byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemDeviceBounds(t *testing.T) {
	ctx := context.Background()
	d := NewMemDevice(4)
	buf := make([]byte, BlockSize)
	for _, bno := range []int{-1, 4, 1000} {
		if err := d.ReadBlock(ctx, bno, buf); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("ReadBlock(%d) err = %v, want ErrOutOfRange", bno, err)
		}
		if err := d.WriteBlock(ctx, bno, buf); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("WriteBlock(%d) err = %v, want ErrOutOfRange", bno, err)
		}
	}
}

func TestMemDeviceBadLength(t *testing.T) {
	ctx := context.Background()
	d := NewMemDevice(4)
	for _, n := range []int{0, 1, BlockSize - 1, BlockSize + 1} {
		buf := make([]byte, n)
		if err := d.ReadBlock(ctx, 0, buf); !errors.Is(err, ErrBadLength) {
			t.Errorf("ReadBlock with %d-byte buf err = %v, want ErrBadLength", n, err)
		}
		if err := d.WriteBlock(ctx, 0, buf); !errors.Is(err, ErrBadLength) {
			t.Errorf("WriteBlock with %d-byte buf err = %v, want ErrBadLength", n, err)
		}
	}
}

func TestMemDeviceWriteIsCopied(t *testing.T) {
	// The device must not alias the caller's buffer.
	ctx := context.Background()
	d := NewMemDevice(1)
	data := make([]byte, BlockSize)
	data[0] = 1
	if err := d.WriteBlock(ctx, 0, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // mutate after write
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 {
		t.Fatalf("device aliased caller buffer: got %d, want 1", buf[0])
	}
}

func TestMemDeviceRoundTripProperty(t *testing.T) {
	ctx := context.Background()
	d := NewMemDevice(64)
	f := func(bno uint8, fill byte) bool {
		b := int(bno) % 64
		data := bytes.Repeat([]byte{fill}, BlockSize)
		if err := d.WriteBlock(ctx, b, data); err != nil {
			return false
		}
		buf := make([]byte, BlockSize)
		if err := d.ReadBlock(ctx, b, buf); err != nil {
			return false
		}
		return bytes.Equal(buf, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDeviceWholeFailure(t *testing.T) {
	ctx := context.Background()
	d := NewFaultDevice(NewMemDevice(4))
	buf := make([]byte, BlockSize)
	if err := d.WriteBlock(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	if err := d.ReadBlock(ctx, 0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("read after Fail err = %v, want ErrFailed", err)
	}
	if err := d.WriteBlock(ctx, 0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("write after Fail err = %v, want ErrFailed", err)
	}
	d.Heal()
	if err := d.ReadBlock(ctx, 0, buf); err != nil {
		t.Fatalf("read after Heal err = %v", err)
	}
}

func TestFaultDeviceLatentSectorError(t *testing.T) {
	ctx := context.Background()
	d := NewFaultDevice(NewMemDevice(4))
	sentinel := errors.New("media error")
	d.FailRead(2, sentinel)
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(ctx, 2, buf); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if err := d.ReadBlock(ctx, 1, buf); err != nil {
		t.Fatalf("healthy block err = %v", err)
	}
	// Writes to the bad block still work (remapping semantics).
	if err := d.WriteBlock(ctx, 2, buf); err != nil {
		t.Fatalf("write to bad-read block err = %v", err)
	}
}

func TestFaultDeviceCounts(t *testing.T) {
	ctx := context.Background()
	d := NewFaultDevice(NewMemDevice(4))
	buf := make([]byte, BlockSize)
	for i := 0; i < 3; i++ {
		if err := d.WriteBlock(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := d.ReadBlock(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	r, w := d.Counts()
	if r != 2 || w != 3 {
		t.Fatalf("counts = (%d, %d), want (2, 3)", r, w)
	}
}
