package bufpool

import "testing"

func TestClassRoundTrip(t *testing.T) {
	for _, n := range []int{1, 1024, 1025, 4096, 60<<10 + 8, 2 << 20} {
		p := Get(n)
		if len(*p) != n {
			t.Fatalf("Get(%d): len %d", n, len(*p))
		}
		if c := cap(*p); c&(c-1) != 0 {
			t.Fatalf("Get(%d): cap %d not a power of two", n, c)
		}
		Put(p)
	}
}

func TestReuse(t *testing.T) {
	p := Get(4096)
	(*p)[0] = 0xAB
	Put(p)
	q := Get(100)
	// Not guaranteed to be the same buffer (pools may drop), but if it
	// is, the length must have been re-sliced.
	if len(*q) != 100 {
		t.Fatalf("len %d", len(*q))
	}
	Put(q)
}

func TestOversizeAndDisabled(t *testing.T) {
	p := Get(8 << 20) // above maxClass: plain allocation
	if len(*p) != 8<<20 {
		t.Fatal("oversize len")
	}
	Put(p) // dropped, must not panic

	SetEnabled(false)
	defer SetEnabled(true)
	if Enabled() {
		t.Fatal("expected disabled")
	}
	q := Get(4096)
	if len(*q) != 4096 {
		t.Fatal("disabled Get len")
	}
	Put(q)
}

func TestPutForeignBuffer(t *testing.T) {
	b := make([]byte, 1000) // non-power-of-two cap
	Put(&b)                 // dropped
	Put(nil)                // no-op
}
