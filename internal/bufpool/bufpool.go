// Package bufpool is a sync.Pool-backed arena for the block and
// record buffers of the backup data path. The RAID layer's de-striping
// scratch, dumpfmt's blocked tape records and physical's image stream
// records all recycle through it, so the steady-state dump/restore
// record path (header + payload + CRC) runs allocation-free.
//
// Ownership rule: a buffer obtained from Get belongs to the caller
// until Put; after Put it must not be touched. Layers that hand a
// pooled buffer to a Sink rely on the sink contract that records are
// consumed (copied or written out) before WriteRecord returns — see
// DESIGN.md "Data path".
//
// Pooling can be disabled (SetEnabled(false)), which makes Get
// allocate fresh and Put drop; the aliasing property tests compare
// dump streams produced both ways byte for byte.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// minClass is the smallest pooled size (1 KB, one dumpfmt unit);
// maxClass the largest (4 MB, covers the 2 MB image-dump run buffer).
const (
	minShift = 10
	maxShift = 22
	nClasses = maxShift - minShift + 1
)

var pools [nClasses]sync.Pool

var disabled atomic.Bool

// SetEnabled turns pooling on or off globally. Off means Get always
// allocates and Put discards — for tests that prove pooled and
// unpooled runs produce identical streams.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether pooling is active.
func Enabled() bool { return !disabled.Load() }

// class returns the pool index whose buffers hold n bytes, or -1 when
// n is too large to pool.
func class(n int) int {
	if n <= 1<<minShift {
		return 0
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c > maxShift {
		return -1
	}
	return c - minShift
}

// Get returns a pointer to a zero-or-stale-content slice of length n.
// The pointer (not just the slice) should be passed back to Put so
// recycling does not re-box the slice header.
func Get(n int) *[]byte {
	if c := class(n); c >= 0 && Enabled() {
		if p, _ := pools[c].Get().(*[]byte); p != nil {
			*p = (*p)[:n]
			return p
		}
		b := make([]byte, n, 1<<(c+minShift))
		return &b
	}
	b := make([]byte, n)
	return &b
}

// Put recycles a buffer obtained from Get. Buffers whose capacity is
// not an exact pool class (or when pooling is disabled) are dropped.
func Put(p *[]byte) {
	if p == nil || !Enabled() {
		return
	}
	c := cap(*p)
	if c < 1<<minShift || c > 1<<maxShift || c&(c-1) != 0 {
		return
	}
	*p = (*p)[:c]
	pools[bits.Len(uint(c))-1-minShift].Put(p)
}
