package replica

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/catalog"
)

// Node is one replica: a durable copy of the catalog journal behind
// the wire protocol. A node is passive — it answers requests and
// never initiates them. The primary role is a property of the current
// view, not of the node: the same node object serves appends as a
// primary in one view and accepts Installs as a lagging backup in the
// next.
type Node struct {
	Name string

	mu      sync.Mutex
	store   catalog.Store
	buf     []byte // cached journal contents (mirror of store)
	alive   bool
	seq     uint64 // highest append sequence applied
	maxView uint64 // highest view number seen; stale-view appends are refused
}

// OpenNode opens a replica over its durable store. Like catalog.Open
// it truncates a torn tail — a node that crashed mid-frame rejoins
// with a clean frame-boundary journal and catches up from there.
func OpenNode(name string, store catalog.Store) (*Node, error) {
	n := &Node{Name: name, store: store, alive: true}
	if err := n.load(); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *Node) load() error {
	buf, err := n.store.ReadAll()
	if err != nil {
		return err
	}
	valid, _ := catalog.ScanFrames(buf, nil)
	if valid < int64(len(buf)) {
		if err := n.store.Truncate(valid); err != nil {
			return err
		}
		buf = buf[:valid]
	}
	n.buf = append([]byte(nil), buf...)
	return nil
}

// Kill marks the node dead: it stops answering and stops being pinged
// for. Its durable store keeps whatever was framed before the kill.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
}

// Restart revives a killed node from its durable store, truncating
// any torn tail. In-memory state (applied sequence) is lost, exactly
// as a process restart would lose it; idempotency of appends rests on
// offsets, which are durable, not on the sequence cache.
func (n *Node) Restart() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.seq = 0
	n.alive = true
	return n.load()
}

// Alive reports whether the node is up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// Size returns the node's journal length in bytes.
func (n *Node) Size() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return int64(len(n.buf))
}

// Seq returns the highest applied append sequence.
func (n *Node) Seq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// Journal returns a copy of the node's journal bytes (test/inspection
// hook for the convergence assertions).
func (n *Node) Journal() []byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]byte(nil), n.buf...)
}

// Corrupt flips one byte of the node's durable journal in place — a
// chaos hook modelling media corruption between crash and restart.
func (n *Node) Corrupt(off int64, xor byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if off < 0 || off >= int64(len(n.buf)) {
		return fmt.Errorf("replica: corrupt offset %d of %d", off, len(n.buf))
	}
	n.buf[off] ^= xor
	// Rewrite the store to match (simulates the flipped sector).
	if err := n.store.Truncate(0); err != nil {
		return err
	}
	return n.store.Append(n.buf)
}

// Handle dispatches one decoded wire message and returns the reply.
// A dead node returns no reply (the Net layer turns that into a
// delivery failure).
func (n *Node) Handle(m Message) (Message, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return nil, fmt.Errorf("replica: node %s is down", n.Name)
	}
	switch v := m.(type) {
	case Append:
		return n.handleAppend(v), nil
	case Status:
		return n.handleStatus(v), nil
	case Catchup:
		return n.handleCatchup(v), nil
	case Install:
		return n.handleInstall(v), nil
	case Truncate:
		return n.handleTruncate(v), nil
	}
	return nil, fmt.Errorf("%w: node %s: unexpected %T", ErrBadMessage, n.Name, m)
}

// handleAppend applies one offset-addressed framed record. The offset
// makes replay idempotent and exposes divergence:
//
//   - off == size: the expected case — durably frame the record.
//   - off+len <= size and bytes match: a duplicate delivery (retry
//     after a partial quorum); ack without rewriting.
//   - off < size and bytes differ: this node carries a stale
//     unacknowledged tail from a previous view (it was a primary that
//     framed a record no quorum acked). Refuse; the current primary
//     responds by Installing its own suffix, which truncates the tail.
//   - off > size: the node lags; refuse with the size so catch-up can
//     close the gap first.
func (n *Node) handleAppend(m Append) Message {
	if m.View < n.maxView {
		return AppendAck{View: n.maxView, Seq: m.Seq, Size: int64(len(n.buf)), OK: false,
			Msg: fmt.Sprintf("stale view %d < %d", m.View, n.maxView)}
	}
	n.maxView = m.View
	size := int64(len(n.buf))
	switch {
	case m.Off == size:
		if !wholeFrames(m.Frame) {
			return AppendAck{View: m.View, Seq: m.Seq, Size: size, OK: false, Msg: "append is not whole frames"}
		}
		if err := n.store.Append(m.Frame); err != nil {
			return AppendAck{View: m.View, Seq: m.Seq, Size: size, OK: false, Msg: err.Error()}
		}
		n.buf = append(n.buf, m.Frame...)
		if m.Seq > n.seq {
			n.seq = m.Seq
		}
		return AppendAck{View: m.View, Seq: m.Seq, Size: int64(len(n.buf)), OK: true}
	case m.Off+int64(len(m.Frame)) <= size && bytes.Equal(n.buf[m.Off:m.Off+int64(len(m.Frame))], m.Frame):
		if m.Seq > n.seq {
			n.seq = m.Seq
		}
		return AppendAck{View: m.View, Seq: m.Seq, Size: size, OK: true}
	case m.Off < size:
		return AppendAck{View: m.View, Seq: m.Seq, Size: m.Off, OK: false, Msg: "diverged tail"}
	default:
		return AppendAck{View: m.View, Seq: m.Seq, Size: size, OK: false, Msg: "lagging"}
	}
}

func (n *Node) handleStatus(m Status) Message {
	prefix := int64(len(n.buf))
	if m.Prefix >= 0 && m.Prefix < prefix {
		prefix = m.Prefix
	}
	return StatusAck{
		Size: int64(len(n.buf)),
		CRC:  crc32.ChecksumIEEE(n.buf[:prefix]),
		Seq:  n.seq,
	}
}

// handleCatchup serves journal bytes past the requester's verified
// prefix. A CRC mismatch over the shared prefix means the journals
// diverged below the requester's high-water mark, so the response
// restarts from zero — correctness over bandwidth.
func (n *Node) handleCatchup(m Catchup) Message {
	size := int64(len(n.buf))
	if m.Have < 0 {
		return CatchupResp{OK: false, Total: size}
	}
	if m.Have > size {
		return CatchupResp{OK: false, Total: size}
	}
	if crc32.ChecksumIEEE(n.buf[:m.Have]) == m.CRC {
		return CatchupResp{OK: true, From: m.Have, Total: size,
			Data: append([]byte(nil), n.buf[m.Have:]...)}
	}
	return CatchupResp{OK: true, From: 0, Total: size,
		Data: append([]byte(nil), n.buf...)}
}

// handleInstall truncates to From and appends the caught-up bytes —
// the one operation allowed to discard data, and only ever an
// unacknowledged tail (the installed bytes come from the view's
// primary, which holds every acknowledged record).
func (n *Node) handleInstall(m Install) Message {
	if m.View < n.maxView {
		return InstallAck{Size: int64(len(n.buf)), OK: false,
			Msg: fmt.Sprintf("stale view %d < %d", m.View, n.maxView)}
	}
	n.maxView = m.View
	if m.From < 0 || m.From > int64(len(n.buf)) {
		return InstallAck{Size: int64(len(n.buf)), OK: false,
			Msg: fmt.Sprintf("install from %d of %d", m.From, len(n.buf))}
	}
	if !wholeFrames(m.Data) {
		return InstallAck{Size: int64(len(n.buf)), OK: false, Msg: "install data is not whole frames"}
	}
	if err := n.store.Truncate(m.From); err != nil {
		return InstallAck{Size: int64(len(n.buf)), OK: false, Msg: err.Error()}
	}
	n.buf = n.buf[:m.From]
	if len(m.Data) > 0 {
		if err := n.store.Append(m.Data); err != nil {
			return InstallAck{Size: int64(len(n.buf)), OK: false, Msg: err.Error()}
		}
		n.buf = append(n.buf, m.Data...)
	}
	if m.Seq > n.seq {
		n.seq = m.Seq
	}
	return InstallAck{Size: int64(len(n.buf)), OK: true}
}

func (n *Node) handleTruncate(m Truncate) Message {
	if m.View < n.maxView {
		return TruncateAck{Size: int64(len(n.buf)), OK: false,
			Msg: fmt.Sprintf("stale view %d < %d", m.View, n.maxView)}
	}
	n.maxView = m.View
	if m.N < 0 || m.N > int64(len(n.buf)) {
		return TruncateAck{Size: int64(len(n.buf)), OK: false,
			Msg: fmt.Sprintf("truncate %d of %d", m.N, len(n.buf))}
	}
	if err := n.store.Truncate(m.N); err != nil {
		return TruncateAck{Size: int64(len(n.buf)), OK: false, Msg: err.Error()}
	}
	n.buf = n.buf[:m.N]
	return TruncateAck{Size: int64(len(n.buf)), OK: true}
}

// wholeFrames reports whether p consists entirely of intact journal
// frames — the validity gate for bytes arriving over the wire.
func wholeFrames(p []byte) bool {
	valid, err := catalog.ScanFrames(p, nil)
	return err == nil && valid == int64(len(p))
}
