package replica

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
)

func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(Config{Members: []string{"n0", "n1", "n2"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func appendSet(t *testing.T, cat *catalog.Catalog, date int64) {
	t.Helper()
	if _, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "vol0", Snap: fmt.Sprintf("s%d", date),
		Date: date, Bytes: 1 << 20, Units: 4,
		Media: []catalog.MediaRef{{Volume: "t0", Start: 0}},
	}); err != nil {
		t.Fatalf("AppendDumpSet: %v", err)
	}
}

func assertConverged(t *testing.T, c *Cluster) {
	t.Helper()
	ref := c.Node("n0").Journal()
	for _, name := range []string{"n1", "n2"} {
		if got := c.Node(name).Journal(); !bytes.Equal(got, ref) {
			t.Fatalf("node %s journal diverged: %d vs %d bytes", name, len(got), len(ref))
		}
	}
}

// TestReplicatedCatalog opens a Catalog directly over the Cluster and
// checks that every append lands byte-identically on all replicas and
// that a fresh handle replays the same state.
func TestReplicatedCatalog(t *testing.T) {
	c := newTestCluster(t)
	cat, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("Open over cluster: %v", err)
	}
	for i := int64(1); i <= 5; i++ {
		appendSet(t, cat, 100*i)
	}
	if err := cat.AppendSessionCheckpoint(catalog.SessionCheckpoint{Session: 7, Stream: 0, Seq: 42, Time: 600}); err != nil {
		t.Fatalf("AppendSessionCheckpoint: %v", err)
	}
	assertConverged(t, c)
	if c.AckedSize() != c.Node("n0").Size() {
		t.Fatalf("acked size %d != primary size %d", c.AckedSize(), c.Node("n0").Size())
	}

	cat2, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(cat2.Sets()) != 5 {
		t.Fatalf("replay: %d sets, want 5", len(cat2.Sets()))
	}
	if seq, ok := cat2.SessionProgress(7, 0); !ok || seq != 42 {
		t.Fatalf("SessionProgress = %d,%v want 42,true", seq, ok)
	}
}

// TestFailoverKeepsAckedRecords kills the primary and checks the
// acknowledged history survives the promotion and keeps growing.
func TestFailoverKeepsAckedRecords(t *testing.T) {
	c := newTestCluster(t)
	cat, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendSet(t, cat, 100)
	appendSet(t, cat, 200)
	acked := c.AckedSize()

	c.Kill("n0")
	appendSet(t, cat, 300) // must stall, fail over, then succeed

	view := c.View()
	if view.Primary == "n0" {
		t.Fatalf("primary still n0 after kill")
	}
	if c.Service().Changes() == 0 {
		t.Fatalf("no view change recorded")
	}
	if c.AckedSize() <= acked {
		t.Fatalf("acked size did not grow past %d", acked)
	}

	// The dead node restarts, catches up, and converges.
	if err := c.Restart("n0"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	appendSet(t, cat, 400)
	assertConverged(t, c)

	cat2, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(cat2.Sets()) != 4 {
		t.Fatalf("after failover: %d sets, want 4", len(cat2.Sets()))
	}
}

// TestPartitionedPrimaryFailover isolates (rather than kills) the
// primary: its in-memory state survives, but it stops pinging, gets
// declared dead, and on rejoin converges to the new primary's journal.
func TestPartitionedPrimaryFailover(t *testing.T) {
	c := newTestCluster(t)
	cat, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendSet(t, cat, 100)
	c.Isolate("n0")
	appendSet(t, cat, 200)
	if v := c.View(); v.Primary == "n0" {
		t.Fatalf("primary still n0 while partitioned")
	}
	c.Rejoin("n0")
	appendSet(t, cat, 300)
	assertConverged(t, c)
}

// TestStrandedTailTruncated manufactures the nightmare window: the
// primary durably frames a record, crashes before any backup sees it,
// and the client never acknowledges. The record must NOT be in the
// acknowledged history, and when the old primary rejoins, its
// stranded tail must be truncated so all journals converge.
func TestStrandedTailTruncated(t *testing.T) {
	c := newTestCluster(t)
	cat, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	appendSet(t, cat, 100)
	ackedBefore := c.AckedSize()

	boom := errors.New("primary crashed mid-append")
	c.TestHookAfterPrimary = func(seq uint64) error {
		c.Kill("n0")
		return boom
	}
	_, err = cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Image, FSID: "vol0", Snap: "doomed", Date: 150,
		Media: []catalog.MediaRef{{Volume: "t1"}},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("append error = %v, want the injected crash", err)
	}
	c.TestHookAfterPrimary = nil

	if c.AckedSize() != ackedBefore {
		t.Fatalf("unacknowledged append moved the durability frontier")
	}
	if c.Node("n0").Size() <= ackedBefore {
		t.Fatalf("test setup: no stranded tail on the dead primary")
	}

	// The catalog handle is poisoned by the failed append (the caller
	// must reopen, same as after any journal write error) — but the
	// cluster itself recovers: fail over, keep appending.
	cat2, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	appendSet(t, cat2, 200)
	if len(cat2.Sets()) != 2 {
		t.Fatalf("%d sets, want 2 (the doomed one must be absent)", len(cat2.Sets()))
	}
	for _, s := range cat2.Sets() {
		if s.Snap == "doomed" {
			t.Fatalf("unacknowledged dump set resurfaced")
		}
	}

	// Old primary returns: its stranded tail is truncated on catch-up.
	if err := c.Restart("n0"); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	appendSet(t, cat2, 300)
	assertConverged(t, c)
}

// TestPromotionPrefersLargestJournal checks the zero-loss linchpin
// directly: when the primary dies, the view service must promote the
// live backup with the most journal bytes, because a smaller backup
// may be missing acknowledged records.
func TestPromotionPrefersLargestJournal(t *testing.T) {
	start := time.Unix(0, 0)
	vs := NewViewService([]string{"a", "b", "c"}, 3*time.Second, start)
	now := start.Add(time.Second)
	vs.Ping("a", 100, now)
	vs.Ping("b", 60, now)
	vs.Ping("c", 90, now)
	// a dies; b pings with less data than c.
	now = now.Add(10 * time.Second)
	vs.Ping("b", 60, now)
	vs.Ping("c", 90, now)
	v := vs.Tick(now)
	if v.Primary != "c" {
		t.Fatalf("promoted %q, want c (largest journal)", v.Primary)
	}
	if v.Num != 2 {
		t.Fatalf("view num = %d, want 2", v.Num)
	}
	// No live backup at all: the view must not regress.
	now = now.Add(10 * time.Second)
	vs.Ping("c", 90, now)
	if v := vs.Tick(now); v.Primary != "c" || v.Num != 2 {
		t.Fatalf("view churned without cause: %+v", v)
	}
}

// TestConcurrentAppends drives the cluster from many goroutines —
// the -race stage's main subject. Every append must get a distinct
// offset and all replicas must converge byte-identically.
func TestConcurrentAppends(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{Members: []string{"n0", "n1", "n2"}, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	const workers, per = 8, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One catalog handle per writer: the handle is a
			// single-writer replay cache, the cluster underneath is the
			// concurrency-safe layer every handle shares.
			cat, err := catalog.Open(c)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < per; i++ {
				err := cat.AppendMediaEvent(catalog.MediaEvent{
					Kind: catalog.MediaActivate, Volume: fmt.Sprintf("t%d-%d", w, i),
					Pool: "main", Time: int64(w*1000 + i),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}
	assertConverged(t, c)

	cat2, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := len(cat2.MediaEvents()); got != workers*per {
		t.Fatalf("replayed %d media events, want %d", got, workers*per)
	}
	if v, ok := reg.Value("replica_appends_total", nil); !ok || v < workers*per {
		t.Fatalf("replica_appends_total = %v,%v", v, ok)
	}
}

// TestTornNodeJournalEveryOffset is the PR 4 every-byte-offset torn
// journal property extended to the replica log: for EVERY possible
// truncation point of one node's durable journal (a crash can tear at
// any byte), restarting the node must recover the longest valid frame
// prefix, and catch-up must then restore the exact acknowledged
// journal. A flipped byte anywhere must likewise end in convergence.
func TestTornNodeJournalEveryOffset(t *testing.T) {
	stores := map[string]catalog.Store{
		"n0": &catalog.MemStore{}, "n1": &catalog.MemStore{}, "n2": &catalog.MemStore{},
	}
	c, err := New(Config{Members: []string{"n0", "n1", "n2"}, Stores: stores})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	cat, err := catalog.Open(c)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := int64(1); i <= 3; i++ {
		appendSet(t, cat, 100*i)
	}
	full := c.Node("n2").Journal()
	if len(full) == 0 {
		t.Fatalf("empty journal")
	}

	victim := stores["n2"].(*catalog.MemStore)
	for off := 0; off <= len(full); off++ {
		c.Kill("n2")
		victim.Buf = append(victim.Buf[:0], full[:off]...)
		if err := c.Restart("n2"); err != nil {
			t.Fatalf("off %d: restart: %v", off, err)
		}
		if got := c.Node("n2").Journal(); !bytes.Equal(got, full) {
			t.Fatalf("off %d: catch-up got %d bytes, want %d", off, len(got), len(full))
		}
	}
	for off := 0; off < len(full); off++ {
		c.Kill("n2")
		victim.Buf = append(victim.Buf[:0], full...)
		victim.Buf[off] ^= 0x5a
		if err := c.Restart("n2"); err != nil {
			t.Fatalf("flip %d: restart: %v", off, err)
		}
		if got := c.Node("n2").Journal(); !bytes.Equal(got, full) {
			t.Fatalf("flip %d: catch-up got %d bytes, want %d", off, len(got), len(full))
		}
	}
}
