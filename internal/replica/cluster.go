package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// ErrNoQuorum reports that an operation could not reach a majority of
// replicas within the attempt budget. The operation was NOT
// acknowledged; it may still be present on a minority of nodes as an
// unacknowledged tail, which the next successful view will truncate.
var ErrNoQuorum = errors.New("replica: no quorum")

// Config parameterizes a Cluster.
type Config struct {
	// Members are the replica node names in canonical order;
	// members[0] is the initial primary. Minimum three for the
	// single-failure fault model.
	Members []string
	// Stores maps member name to its durable journal store. Missing
	// entries get a fresh in-memory store.
	Stores map[string]catalog.Store
	// DeadAfter is how long (virtual time) a node may miss pings
	// before the view service declares it dead. Default 3s.
	DeadAfter time.Duration
	// PingEvery is the virtual heartbeat interval. Default 500ms.
	PingEvery time.Duration
	// MaxAttempts bounds how many view-refresh retries an operation
	// makes before returning ErrNoQuorum. Default 32.
	MaxAttempts int
	// OnStall, when set, is called each time an operation cannot reach
	// quorum under the current view, before the retry. The chaos
	// harness uses it to advance the virtual clock, heal partitions or
	// restart nodes. It runs with the operation lock held: it may call
	// Advance/Heartbeat/Kill/Restart/Isolate/Rejoin but must not call
	// Append/Truncate/ReadAll. When nil, the cluster self-advances the
	// clock by PingEvery per retry so failover detection progresses.
	OnStall func(attempt int)
	// Ctx carries the tracer for per-append replication spans; Registry
	// receives the replication metrics. Both optional.
	Ctx      context.Context
	Registry *obs.Registry
}

// Cluster is the client-side handle that makes a replica group look
// like one durable journal store: it implements catalog.Store, so
// `catalog.Open(cluster)` yields a catalog whose every append is
// quorum-replicated before it is acknowledged. That is the whole
// durability upgrade — dumpfmt checkpoints and dump-set commits
// written through this store mean "survives the loss of any single
// node", not "made it to one host's disk".
//
// The cluster coordinates writes under the current view: the record
// must land on the view's primary plus enough backups for a majority.
// Requiring the primary keeps it a superset of all acknowledged
// history, which is what lets catch-up treat the primary's journal as
// the truth and truncate divergent (always unacknowledged) tails on
// other nodes.
type Cluster struct {
	// opMu serializes whole operations (Append/Truncate/ReadAll), so
	// concurrent appends from multiple goroutines are safe and each
	// gets a distinct offset.
	opMu sync.Mutex
	// mu guards the fast-changing fields below; metric closures take
	// only mu, never opMu.
	mu    sync.Mutex
	size  int64 // acknowledged journal length
	seq   uint64
	clock time.Time

	cfg   Config
	net   *Net
	vs    *ViewService
	nodes []*Node
	ctx   context.Context

	appends        *obs.Counter
	quorumFailures *obs.Counter
	catchups       *obs.Counter
	stalls         *obs.Counter

	// TestHookAfterPrimary, when set, runs after the primary has
	// durably framed an append but before any backup sees it — the
	// exact window where a primary crash strands an unacknowledged
	// record. Returning an error aborts the append (the client never
	// acknowledges), which is how the chaos suite manufactures
	// stranded tails deterministically.
	TestHookAfterPrimary func(seq uint64) error
}

// New builds a cluster, opening (and tail-truncating) every node.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Members) < 3 {
		return nil, fmt.Errorf("replica: need >= 3 members, have %d", len(cfg.Members))
	}
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 3 * time.Second
	}
	if cfg.PingEvery == 0 {
		cfg.PingEvery = 500 * time.Millisecond
	}
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 32
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Unix(0, 0)
	c := &Cluster{cfg: cfg, ctx: ctx, clock: start}
	for _, name := range cfg.Members {
		store := cfg.Stores[name]
		if store == nil {
			store = &catalog.MemStore{}
		}
		n, err := OpenNode(name, store)
		if err != nil {
			return nil, fmt.Errorf("replica: open node %s: %w", name, err)
		}
		c.nodes = append(c.nodes, n)
	}
	c.net = NewNet(c.nodes...)
	c.vs = NewViewService(cfg.Members, cfg.DeadAfter, start)
	if r := cfg.Registry; r != nil {
		c.registerMetrics(r)
	}
	return c, nil
}

func (c *Cluster) registerMetrics(r *obs.Registry) {
	c.appends = r.Counter("replica_appends_total", nil)
	c.quorumFailures = r.Counter("replica_quorum_failures_total", nil)
	c.catchups = r.Counter("replica_catchups_total", nil)
	c.stalls = r.Counter("replica_stalls_total", nil)
	r.RegisterFunc("replica_view_changes_total", obs.KindCounter, nil, func() float64 {
		return float64(c.vs.Changes())
	})
	r.RegisterFunc("replica_journal_bytes", obs.KindGauge, nil, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.size)
	})
	for _, n := range c.nodes {
		node := n
		r.RegisterFunc("replica_lag_bytes", obs.KindGauge, obs.Labels{"node": node.Name}, func() float64 {
			c.mu.Lock()
			acked := c.size
			c.mu.Unlock()
			lag := acked - node.Size()
			if lag < 0 {
				lag = 0 // an unacknowledged tail is not (negative) lag
			}
			return float64(lag)
		})
	}
}

// quorum is the majority of the fixed member set.
func (c *Cluster) quorum() int { return len(c.cfg.Members)/2 + 1 }

// Now returns the cluster's virtual clock.
func (c *Cluster) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clock
}

// Advance moves the virtual clock forward.
func (c *Cluster) Advance(d time.Duration) {
	c.mu.Lock()
	c.clock = c.clock.Add(d)
	c.mu.Unlock()
}

// Heartbeat pings the view service on behalf of every node that is
// alive and reachable, then ticks the failure detector. A partitioned
// node does not ping — a partition severs its view-service path too,
// which is what lets a partitioned primary be declared dead.
func (c *Cluster) Heartbeat() View {
	now := c.Now()
	for _, n := range c.nodes {
		if n.Alive() && !c.net.Isolated(n.Name) {
			c.vs.Ping(n.Name, n.Size(), now)
		}
	}
	return c.vs.Tick(now)
}

// View returns the current view without advancing anything.
func (c *Cluster) View() View { return c.vs.View() }

// Service exposes the view service (the ndmp failover path watches it
// to learn which tape host is active).
func (c *Cluster) Service() *ViewService { return c.vs }

// Node returns a member by name (chaos/test access).
func (c *Cluster) Node(name string) *Node { return c.net.Node(name) }

// Kill crashes a node.
func (c *Cluster) Kill(name string) {
	if n := c.net.Node(name); n != nil {
		n.Kill()
	}
}

// Restart revives a crashed node from its durable store and brings it
// back up to date from the current primary (best effort — if the
// primary is unreachable the node rejoins lagging and catches up on
// the next append that touches it).
func (c *Cluster) Restart(name string) error {
	n := c.net.Node(name)
	if n == nil {
		return fmt.Errorf("replica: no node %q", name)
	}
	if err := n.Restart(); err != nil {
		return err
	}
	view := c.Heartbeat()
	if view.Primary != name {
		_ = c.catchUp(view, name)
	}
	return nil
}

// Isolate partitions a node off the network.
func (c *Cluster) Isolate(name string) { c.net.Isolate(name) }

// Rejoin heals a node's partition and catches it up (best effort).
func (c *Cluster) Rejoin(name string) {
	c.net.Rejoin(name)
	view := c.Heartbeat()
	if view.Primary != name {
		_ = c.catchUp(view, name)
	}
}

func (c *Cluster) stall(attempt int) {
	c.stalls.Inc()
	if c.cfg.OnStall != nil {
		c.cfg.OnStall(attempt)
	} else {
		c.Advance(c.cfg.PingEvery)
	}
	c.Heartbeat()
}

// nextSeq under mu; offsets come from c.size under opMu.
func (c *Cluster) nextSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// ReadAll implements catalog.Store: it reads the full journal from
// the current primary. By the primary-superset invariant this is all
// acknowledged history (possibly plus a tail the primary framed
// without quorum, which is safe to surface: it becomes acknowledged
// retroactively once read and re-replicated by later appends, and the
// catalog's own recovery handles its framing).
func (c *Cluster) ReadAll() ([]byte, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		view := c.Heartbeat()
		reply, err := c.net.RPC(view.Primary, Catchup{Have: 0, CRC: 0})
		if err != nil {
			c.stall(attempt)
			continue
		}
		resp, ok := reply.(CatchupResp)
		if !ok || !resp.OK {
			c.stall(attempt)
			continue
		}
		c.mu.Lock()
		c.size = resp.Total
		c.mu.Unlock()
		return resp.Data, nil
	}
	return nil, fmt.Errorf("%w: read after %d attempts", ErrNoQuorum, c.cfg.MaxAttempts)
}

// Append implements catalog.Store: one call replicates one (or more)
// CRC-framed catalog records and returns only once a majority of
// nodes, including the view's primary, has durably framed the bytes.
// A view change mid-append is handled by re-checking where the record
// landed: offsets make the retry idempotent, so a record is never
// duplicated and never half-applied.
func (c *Cluster) Append(p []byte) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	_, span := obs.Start(c.ctx, "replica.append")
	defer span.End()

	seq := c.nextSeq()
	c.mu.Lock()
	off := c.size
	c.mu.Unlock()

	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		view := c.Heartbeat()
		ok, err := c.tryAppend(view, seq, off, p)
		if err != nil {
			return err
		}
		if ok {
			c.mu.Lock()
			c.size = off + int64(len(p))
			c.mu.Unlock()
			c.appends.Inc()
			return nil
		}
		c.quorumFailures.Inc()
		c.stall(attempt)
	}
	return fmt.Errorf("%w: append seq %d after %d attempts", ErrNoQuorum, seq, c.cfg.MaxAttempts)
}

// tryAppend makes one pass at replicating the record under one view.
// It returns (false, nil) for retryable failures — the caller
// refreshes the view and tries again.
func (c *Cluster) tryAppend(view View, seq uint64, off int64, p []byte) (bool, error) {
	msg := Append{View: view.Num, Seq: seq, Off: off, Frame: p}

	// The primary first: its durable copy is mandatory.
	reply, err := c.net.RPC(view.Primary, msg)
	if err != nil {
		return false, nil // primary unreachable; stall -> view change
	}
	ack, ok := reply.(AppendAck)
	if !ok {
		return false, fmt.Errorf("%w: append reply %T", ErrBadMessage, reply)
	}
	if !ack.OK {
		// A new primary may lag acknowledged history only when every
		// node that held it is down — then there is no quorum to be
		// had and we stall until one returns. Stale view: refresh.
		return false, nil
	}

	if hook := c.TestHookAfterPrimary; hook != nil {
		if err := hook(seq); err != nil {
			return false, err
		}
	}

	count := 1
	for _, b := range view.Backups {
		if c.appendToBackup(view, b, msg) {
			count++
		}
	}
	return count >= c.quorum(), nil
}

// appendToBackup lands the record on one backup, catching the backup
// up first when it lags or carries a divergent unacknowledged tail.
func (c *Cluster) appendToBackup(view View, name string, msg Append) bool {
	for try := 0; try < 2; try++ {
		reply, err := c.net.RPC(name, msg)
		if err != nil {
			return false
		}
		ack, ok := reply.(AppendAck)
		if !ok {
			return false
		}
		if ack.OK {
			return true
		}
		// Lagging or diverged: close the gap from the primary, then
		// retry the append once.
		if err := c.catchUp(view, name); err != nil {
			return false
		}
	}
	return false
}

// catchUp brings node name's journal in line with the view primary's:
// verify the shared prefix by CRC, fetch the suffix (or everything,
// after divergence), and Install it — truncating any unacknowledged
// tail the node carried.
func (c *Cluster) catchUp(view View, name string) error {
	c.catchups.Inc()
	_, span := obs.Start(c.ctx, "replica.catchup")
	defer span.End()
	for try := 0; try < 4; try++ {
		stReply, err := c.net.RPC(name, Status{Prefix: -1})
		if err != nil {
			return err
		}
		st, ok := stReply.(StatusAck)
		if !ok {
			return fmt.Errorf("%w: status reply %T", ErrBadMessage, stReply)
		}
		cuReply, err := c.net.RPC(view.Primary, Catchup{Have: st.Size, CRC: st.CRC})
		if err != nil {
			return err
		}
		cu, ok := cuReply.(CatchupResp)
		if !ok {
			return fmt.Errorf("%w: catchup reply %T", ErrBadMessage, cuReply)
		}
		if !cu.OK {
			// The node's journal is longer than the primary's: its tail
			// past cu.Total is unacknowledged. Verify the primary-sized
			// prefix instead on the next pass.
			pstReply, err := c.net.RPC(name, Status{Prefix: cu.Total})
			if err != nil {
				return err
			}
			pst, ok := pstReply.(StatusAck)
			if !ok {
				return fmt.Errorf("%w: status reply %T", ErrBadMessage, pstReply)
			}
			cuReply, err = c.net.RPC(view.Primary, Catchup{Have: cu.Total, CRC: pst.CRC})
			if err != nil {
				return err
			}
			cu, ok = cuReply.(CatchupResp)
			if !ok || !cu.OK {
				return fmt.Errorf("%w: catchup reply %T", ErrBadMessage, cuReply)
			}
		}
		prStReply, err := c.net.RPC(view.Primary, Status{Prefix: -1})
		if err != nil {
			return err
		}
		prSt, _ := prStReply.(StatusAck)
		inReply, err := c.net.RPC(name, Install{View: view.Num, From: cu.From, Seq: prSt.Seq, Data: cu.Data})
		if err != nil {
			return err
		}
		in, ok := inReply.(InstallAck)
		if !ok {
			return fmt.Errorf("%w: install reply %T", ErrBadMessage, inReply)
		}
		if in.OK && in.Size == cu.Total {
			return nil
		}
	}
	return fmt.Errorf("replica: catch-up of %s did not converge", name)
}

// Truncate implements catalog.Store: a replicated journal truncation
// (the catalog uses it to repair a torn tail found at Open).
func (c *Cluster) Truncate(n int64) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		view := c.Heartbeat()
		msg := Truncate{View: view.Num, N: n}
		reply, err := c.net.RPC(view.Primary, msg)
		if err != nil {
			c.stall(attempt)
			continue
		}
		ack, ok := reply.(TruncateAck)
		if !ok || !ack.OK {
			c.stall(attempt)
			continue
		}
		count := 1
		for _, b := range view.Backups {
			if reply, err := c.net.RPC(b, msg); err == nil {
				if ack, ok := reply.(TruncateAck); ok && ack.OK {
					count++
				}
			}
		}
		if count >= c.quorum() {
			c.mu.Lock()
			c.size = n
			c.mu.Unlock()
			return nil
		}
		c.stall(attempt)
	}
	return fmt.Errorf("%w: truncate after %d attempts", ErrNoQuorum, c.cfg.MaxAttempts)
}

// AckedSize returns the acknowledged journal length — the durability
// frontier the zero-loss guarantee is stated over.
func (c *Cluster) AckedSize() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}
