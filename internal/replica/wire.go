// Package replica is the primary/backup replication layer for the
// catalog journal — the 6.824 view-service shape run on the virtual
// clock. Three simulated nodes each hold a durable copy of the
// CRC-framed journal; a client-side Cluster handle implements
// catalog.Store, so a Catalog opened over it acknowledges
// AppendDumpSet / AppendFileIndex / Expire / AppendMediaEvent /
// AppendSessionCheckpoint only after a quorum of nodes has durably
// framed the record. A view service tracks node liveness through
// pings, promotes the most-up-to-date live backup when the primary
// dies, and a catch-up protocol replays the CRC-framed journal into
// rejoining nodes, truncating any unacknowledged tail they carried
// into the crash.
//
// The durability contract mirrors logical recovery systems: an
// operation is durable only once its log record is replicated and
// acknowledged. The chaos suite (internal/chaos/replica.go) proves the
// operational consequence — no acknowledged dump set is ever lost to a
// primary killed or partitioned mid-append or mid-dump.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire message kinds. Every exchange between the Cluster handle and a
// node is one encoded request frame and one encoded reply frame, so
// the protocol is fuzzable end to end (FuzzDecodeWire) and a simulated
// partition is simply an undelivered frame.
const (
	// MsgAppend replicates one framed journal record at an offset.
	MsgAppend byte = 0x01
	// MsgAppendAck answers an append with the node's journal size.
	MsgAppendAck byte = 0x02
	// MsgStatus asks a node for its journal size, prefix CRC and the
	// highest applied append sequence.
	MsgStatus byte = 0x03
	// MsgStatusAck answers MsgStatus.
	MsgStatusAck byte = 0x04
	// MsgCatchup asks the primary for journal bytes past a verified
	// prefix (the catch-up read half).
	MsgCatchup byte = 0x05
	// MsgCatchupResp carries the journal suffix (or the full journal
	// when the requester's prefix failed verification).
	MsgCatchupResp byte = 0x06
	// MsgInstall writes caught-up journal bytes into a lagging node,
	// truncating its unacknowledged tail first (the write half).
	MsgInstall byte = 0x07
	// MsgInstallAck answers MsgInstall.
	MsgInstallAck byte = 0x08
	// MsgTruncate replicates a journal truncation (torn-tail repair).
	MsgTruncate byte = 0x09
	// MsgTruncateAck answers MsgTruncate.
	MsgTruncateAck byte = 0x0A
)

// wireVersion is the replica wire protocol version.
const wireVersion = 1

// MaxWire bounds one wire message; catch-up responses carry whole
// journals, so the bound is generous but still refuses wild lengths.
const MaxWire = 64 << 20

// ErrBadMessage reports an undecodable replica wire message.
var ErrBadMessage = errors.New("replica: bad wire message")

// Message is any replica wire payload.
type Message interface{ kind() byte }

// View is one configuration of the group: a numbered primary
// assignment. Backups lists the remaining members in canonical order;
// promotion on primary death picks the most-up-to-date live backup.
type View struct {
	Num     uint64
	Primary string
	Backups []string
}

// Append replicates one CRC-framed journal record. Off is the byte
// offset the frame must land at — offsets make replay idempotent: a
// node that already holds bytes past Off acks the duplicate without
// rewriting, and a node whose journal is shorter reports lag so the
// caller can run catch-up first.
type Append struct {
	View  uint64
	Seq   uint64
	Off   int64
	Frame []byte
}

// AppendAck answers Append. Size is the node's journal length after
// the handler ran (its lag report when OK is false).
type AppendAck struct {
	View uint64
	Seq  uint64
	Size int64
	OK   bool
	Msg  string
}

// Status asks for a node's replication state. Prefix, when >= 0,
// selects the byte length the CRC is computed over (min'd with the
// journal size); -1 means the whole journal.
type Status struct {
	Prefix int64
}

// StatusAck reports a node's journal size, the CRC32 over the
// requested prefix, and the highest applied append sequence.
type StatusAck struct {
	Size int64
	CRC  uint32
	Seq  uint64
}

// Catchup asks the primary for journal bytes past the requester's
// verified prefix: Have bytes with CRC over them. If the primary's own
// first Have bytes carry the same CRC it returns only the suffix;
// otherwise the journals diverged and it returns everything from 0.
type Catchup struct {
	Have int64
	CRC  uint32
}

// CatchupResp carries the catch-up data. When OK is false the
// requester's Have exceeds the primary's journal (an unacknowledged
// tail survived a crash); Total reports the primary's size so the
// requester can retry with a shorter verified prefix.
type CatchupResp struct {
	From  int64
	Total int64
	OK    bool
	Data  []byte
}

// Install writes catch-up data into a lagging node: truncate to From,
// then append Data (which must scan as whole CRC frames). Seq is the
// primary's applied sequence as of the data's end.
type Install struct {
	View uint64
	From int64
	Seq  uint64
	Data []byte
}

// InstallAck answers Install with the node's resulting journal size.
type InstallAck struct {
	Size int64
	OK   bool
	Msg  string
}

// Truncate replicates a journal truncation to length N.
type Truncate struct {
	View uint64
	N    int64
}

// TruncateAck answers Truncate with the node's resulting size.
type TruncateAck struct {
	Size int64
	OK   bool
	Msg  string
}

func (Append) kind() byte      { return MsgAppend }
func (AppendAck) kind() byte   { return MsgAppendAck }
func (Status) kind() byte      { return MsgStatus }
func (StatusAck) kind() byte   { return MsgStatusAck }
func (Catchup) kind() byte     { return MsgCatchup }
func (CatchupResp) kind() byte { return MsgCatchupResp }
func (Install) kind() byte     { return MsgInstall }
func (InstallAck) kind() byte  { return MsgInstallAck }
func (Truncate) kind() byte    { return MsgTruncate }
func (TruncateAck) kind() byte { return MsgTruncateAck }

// --- encoding: [kind u8][version u8] then fixed LE fields and
// length-prefixed byte strings, mirroring the catalog's journal
// payload style. Decoding is defensive throughout: wire bytes are
// untrusted input (see FuzzDecodeWire).

type wenc struct{ b []byte }

func (e *wenc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *wenc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *wenc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *wenc) i64(v int64)  { e.u64(uint64(v)) }
func (e *wenc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *wenc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}
func (e *wenc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

type wdec struct {
	b   []byte
	off int
	err error
}

func (d *wdec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated at %d", ErrBadMessage, d.off)
	}
}
func (d *wdec) u8() uint8 {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}
func (d *wdec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}
func (d *wdec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}
func (d *wdec) i64() int64 { return int64(d.u64()) }
func (d *wdec) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		// Only 0 and 1 are legal: the encoding must stay canonical
		// (encode∘decode is the identity on valid frames).
		d.fail()
		return false
	}
}
func (d *wdec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > MaxWire || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	p := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return p
}
func (d *wdec) str() string {
	n := int(d.u32())
	if d.err != nil || n < 0 || n > MaxWire || d.off+n > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
func (d *wdec) done() error {
	if d.err == nil && d.off != len(d.b) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, len(d.b)-d.off)
	}
	return d.err
}

// Encode marshals m into one wire frame.
func Encode(m Message) []byte {
	e := &wenc{}
	e.u8(m.kind())
	e.u8(wireVersion)
	switch v := m.(type) {
	case Append:
		e.u64(v.View)
		e.u64(v.Seq)
		e.i64(v.Off)
		e.bytes(v.Frame)
	case AppendAck:
		e.u64(v.View)
		e.u64(v.Seq)
		e.i64(v.Size)
		e.bool(v.OK)
		e.str(v.Msg)
	case Status:
		e.i64(v.Prefix)
	case StatusAck:
		e.i64(v.Size)
		e.u32(v.CRC)
		e.u64(v.Seq)
	case Catchup:
		e.i64(v.Have)
		e.u32(v.CRC)
	case CatchupResp:
		e.i64(v.From)
		e.i64(v.Total)
		e.bool(v.OK)
		e.bytes(v.Data)
	case Install:
		e.u64(v.View)
		e.i64(v.From)
		e.u64(v.Seq)
		e.bytes(v.Data)
	case InstallAck:
		e.i64(v.Size)
		e.bool(v.OK)
		e.str(v.Msg)
	case Truncate:
		e.u64(v.View)
		e.i64(v.N)
	case TruncateAck:
		e.i64(v.Size)
		e.bool(v.OK)
		e.str(v.Msg)
	default:
		panic(fmt.Sprintf("replica: encode of unknown message %T", m))
	}
	return e.b
}

// Decode parses one wire frame. It is the untrusted-input boundary of
// the replication layer: arbitrary bytes must produce a message or an
// error, never a panic or an oversized allocation.
func Decode(raw []byte) (Message, error) {
	d := &wdec{b: raw}
	kind := d.u8()
	ver := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadMessage, ver)
	}
	switch kind {
	case MsgAppend:
		var m Append
		m.View = d.u64()
		m.Seq = d.u64()
		m.Off = d.i64()
		m.Frame = d.bytes()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgAppendAck:
		var m AppendAck
		m.View = d.u64()
		m.Seq = d.u64()
		m.Size = d.i64()
		m.OK = d.bool()
		m.Msg = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgStatus:
		var m Status
		m.Prefix = d.i64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgStatusAck:
		var m StatusAck
		m.Size = d.i64()
		m.CRC = d.u32()
		m.Seq = d.u64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgCatchup:
		var m Catchup
		m.Have = d.i64()
		m.CRC = d.u32()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgCatchupResp:
		var m CatchupResp
		m.From = d.i64()
		m.Total = d.i64()
		m.OK = d.bool()
		m.Data = d.bytes()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgInstall:
		var m Install
		m.View = d.u64()
		m.From = d.i64()
		m.Seq = d.u64()
		m.Data = d.bytes()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgInstallAck:
		var m InstallAck
		m.Size = d.i64()
		m.OK = d.bool()
		m.Msg = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgTruncate:
		var m Truncate
		m.View = d.u64()
		m.N = d.i64()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	case MsgTruncateAck:
		var m TruncateAck
		m.Size = d.i64()
		m.OK = d.bool()
		m.Msg = d.str()
		if err := d.done(); err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("%w: unknown kind %d", ErrBadMessage, kind)
}
