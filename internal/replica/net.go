package replica

import (
	"fmt"
	"sync"
)

// Net is the simulated fabric between the Cluster handle and the
// replica nodes. Every call is one request frame and one reply frame
// through Encode/Decode — so the fuzzed wire format is the format the
// system actually runs on — and a partitioned or dead endpoint is a
// delivery failure, never a mangled message (corruption is the
// journal CRC layer's problem; the chaos suite injects it there).
type Net struct {
	mu       sync.Mutex
	nodes    map[string]*Node
	isolated map[string]bool
}

// NewNet builds a fabric over the given nodes.
func NewNet(nodes ...*Node) *Net {
	n := &Net{nodes: make(map[string]*Node, len(nodes)), isolated: make(map[string]bool)}
	for _, nd := range nodes {
		n.nodes[nd.Name] = nd
	}
	return n
}

// Node returns the registered node by name.
func (n *Net) Node(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.nodes[name]
}

// Isolate partitions a node: requests to it fail until Rejoin. The
// node stays alive — unlike Kill it keeps its in-memory state, which
// is exactly the difference between a network partition and a crash.
func (n *Net) Isolate(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.isolated[name] = true
}

// Rejoin heals a node's partition.
func (n *Net) Rejoin(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.isolated, name)
}

// Isolated reports whether a node is partitioned off.
func (n *Net) Isolated(name string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.isolated[name]
}

// RPC delivers one message to a node and returns its decoded reply.
// Both directions round-trip through the wire encoding.
func (n *Net) RPC(to string, m Message) (Message, error) {
	n.mu.Lock()
	node, ok := n.nodes[to]
	cut := n.isolated[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("replica: no node %q", to)
	}
	if cut {
		return nil, fmt.Errorf("replica: node %s unreachable", to)
	}
	req, err := Decode(Encode(m))
	if err != nil {
		return nil, fmt.Errorf("replica: request to %s: %w", to, err)
	}
	reply, err := node.Handle(req)
	if err != nil {
		return nil, err
	}
	return Decode(Encode(reply))
}
