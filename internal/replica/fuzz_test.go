package replica

import (
	"bytes"
	"testing"
)

// FuzzDecodeWire throws arbitrary bytes at the replica wire decoder —
// the untrusted-input boundary of the replication layer (every
// view-change-era append, catch-up and install frame crosses it). The
// invariants: never panic, never allocate past MaxWire, and the
// encoding is canonical — any decodable input re-encodes to exactly
// the bytes that produced it, so two nodes can compare journals and
// messages byte-for-byte.
func FuzzDecodeWire(f *testing.F) {
	seed := []Message{
		Append{View: 3, Seq: 9, Off: 1024, Frame: []byte("framed-record")},
		AppendAck{View: 3, Seq: 9, Size: 2048, OK: true},
		AppendAck{View: 4, Seq: 9, Size: 128, OK: false, Msg: "lagging"},
		Status{Prefix: -1},
		StatusAck{Size: 4096, CRC: 0xDEADBEEF, Seq: 17},
		Catchup{Have: 512, CRC: 0x01020304},
		CatchupResp{From: 512, Total: 700, OK: true, Data: []byte("suffix")},
		Install{View: 5, From: 0, Seq: 20, Data: []byte("whole-journal")},
		InstallAck{Size: 700, OK: true},
		Truncate{View: 5, N: 96},
		TruncateAck{Size: 96, OK: false, Msg: "short"},
	}
	for _, m := range seed {
		f.Add(Encode(m))
	}
	f.Add([]byte{})
	f.Add([]byte{MsgAppend})
	f.Add([]byte{MsgAppend, 1, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x7f, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // rejecting garbage is the job
		}
		re := Encode(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, re)
		}
		// And the re-encoded frame must round-trip to the same message.
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(Encode(m2), re) {
			t.Fatalf("second round trip drifted")
		}
	})
}
