package replica

import (
	"sync"
	"time"
)

// ViewService is the simulated view server: the one component every
// node and client can always reach (in a real deployment it is the
// small replicated coordination service; here it runs in-process on
// the virtual clock). Nodes ping it periodically; when the primary
// misses pings for DeadAfter of virtual time, the service publishes a
// new view promoting a backup.
//
// The promotion rule is the zero-loss linchpin: pings carry each
// node's journal size, and the service promotes the live backup with
// the LARGEST journal. Journals are prefix-ordered (appends are
// offset-addressed and framed), so the largest live journal contains
// every record any quorum acknowledged — a smaller live backup may be
// missing an acked record that only the biggest one durably framed.
type ViewService struct {
	mu        sync.Mutex
	deadAfter time.Duration
	members   []string
	view      View
	changes   uint64
	last      map[string]time.Time
	size      map[string]int64
}

// NewViewService builds the service over a fixed member set. The
// initial view names members[0] primary; every member is considered
// live as of start.
func NewViewService(members []string, deadAfter time.Duration, start time.Time) *ViewService {
	vs := &ViewService{
		deadAfter: deadAfter,
		members:   append([]string(nil), members...),
		last:      make(map[string]time.Time, len(members)),
		size:      make(map[string]int64, len(members)),
	}
	for _, m := range members {
		vs.last[m] = start
	}
	vs.view = View{Num: 1, Primary: members[0], Backups: append([]string(nil), members[1:]...)}
	return vs
}

// Ping records a liveness report from node name holding a journal of
// size bytes, and returns the current view. A node that was declared
// dead becomes a promotion candidate again on its next ping.
func (vs *ViewService) Ping(name string, size int64, now time.Time) View {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if _, ok := vs.last[name]; ok {
		vs.last[name] = now
		vs.size[name] = size
	}
	return vs.viewLocked()
}

// Tick advances the failure detector to now: if the primary has
// missed pings for longer than DeadAfter and a live backup exists, a
// new view promotes the live backup with the largest journal.
func (vs *ViewService) Tick(now time.Time) View {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if now.Sub(vs.last[vs.view.Primary]) <= vs.deadAfter {
		return vs.viewLocked()
	}
	// Primary is dead. Promote the most-up-to-date live backup;
	// member order breaks size ties deterministically.
	var cand string
	var candSize int64 = -1
	for _, b := range vs.view.Backups {
		if now.Sub(vs.last[b]) > vs.deadAfter {
			continue
		}
		if vs.size[b] > candSize {
			cand, candSize = b, vs.size[b]
		}
	}
	if cand == "" {
		return vs.viewLocked() // no live backup: the group stalls, it never regresses
	}
	backups := make([]string, 0, len(vs.members)-1)
	for _, m := range vs.members {
		if m != cand {
			backups = append(backups, m)
		}
	}
	vs.view = View{Num: vs.view.Num + 1, Primary: cand, Backups: backups}
	vs.changes++
	return vs.viewLocked()
}

// View returns the current view.
func (vs *ViewService) View() View {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.viewLocked()
}

// Changes returns how many view changes (failovers) have occurred.
func (vs *ViewService) Changes() uint64 {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	return vs.changes
}

func (vs *ViewService) viewLocked() View {
	v := vs.view
	v.Backups = append([]string(nil), v.Backups...)
	return v
}
