package sim

import (
	"testing"
	"time"
)

// TestCondHandoff checks the producer/consumer shape the pipeline
// package builds on: a consumer parks on a Cond, a producer wakes it,
// and the wakeup lands at the producer's virtual time.
func TestCondHandoff(t *testing.T) {
	env := NewEnv()
	c := NewCond(env)
	var ready bool
	var wokeAt Time
	env.Spawn("consumer", func(p *Proc) {
		for !ready {
			c.Wait(p)
		}
		wokeAt = p.Now()
	})
	env.Spawn("producer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		ready = true
		c.Broadcast()
	})
	env.Run()
	if wokeAt != 5*time.Millisecond {
		t.Fatalf("consumer woke at %v, want 5ms", wokeAt)
	}
}

// TestCondSignalOrder checks Signal wakes waiters FIFO, one at a time.
func TestCondSignalOrder(t *testing.T) {
	env := NewEnv()
	c := NewCond(env)
	var order []string
	tokens := 0
	for _, name := range []string{"a", "b", "c"} {
		name := name
		env.Spawn(name, func(p *Proc) {
			for tokens == 0 {
				c.Wait(p)
			}
			tokens--
			order = append(order, name)
		})
	}
	env.Spawn("feeder", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(time.Millisecond)
			tokens++
			c.Signal()
		}
	})
	env.Run()
	if got := len(order); got != 3 {
		t.Fatalf("woke %d waiters, want 3", got)
	}
	for i, name := range []string{"a", "b", "c"} {
		if order[i] != name {
			t.Fatalf("wake order %v, want [a b c]", order)
		}
	}
}

// TestCondDeadlockPanics checks that a Wait nobody will ever Signal
// turns into the simulator's stuck-process panic rather than a hang.
func TestCondDeadlockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected Env.Run to panic on a parked process with no events")
		}
	}()
	env := NewEnv()
	c := NewCond(env)
	env.Spawn("stuck", func(p *Proc) {
		c.Wait(p)
	})
	env.Run()
}
