package sim

// Cond is a condition variable for simulated processes. It is the one
// blocking primitive in the simulator that is not time-based: a process
// that Waits is parked indefinitely, off the event queue, until another
// process Signals or Broadcasts. Pipeline stages use it to block on
// bounded queues (full on Put, empty on Get) without spinning virtual
// time.
//
// The usual lost-wakeup hazard of condition variables does not exist
// here: execution is cooperative, so between a caller's predicate check
// and its Wait no other process can run, and a wakeup therefore cannot
// slip into that window. Callers still re-check their predicate in a
// loop after Wait returns, because Broadcast wakes every waiter and an
// earlier-scheduled one may have consumed the state change.
//
// If every live process ends up parked in Waits with no Signal coming,
// the event queue empties while processes remain live and Env.Run
// panics — turning a pipeline deadlock into a loud failure instead of
// a hang.
type Cond struct {
	env     *Env
	waiters []*Proc
}

// NewCond creates a condition variable on env.
func NewCond(env *Env) *Cond {
	return &Cond{env: env}
}

// Wait parks p until a subsequent Signal or Broadcast. It must be
// called by the currently running process, and p must be that process.
func (c *Cond) Wait(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.env.yield <- struct{}{}
	<-p.resume
}

// Signal wakes the longest-parked waiter, scheduling it at the current
// virtual time. No-op when nothing is parked. May be called from a
// running process or from outside the simulation before Run.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.env.schedule(c.env.now, p)
}

// Broadcast wakes every parked waiter, scheduling them at the current
// virtual time in the order they parked.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.env.schedule(c.env.now, p)
	}
	c.waiters = c.waiters[:0]
}
