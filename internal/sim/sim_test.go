package sim

import (
	"context"
	"testing"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatalf("new env clock = %v, want 0", e.Now())
	}
	e.Run() // no processes: returns immediately
	if e.Now() != 0 {
		t.Fatalf("clock moved with no processes: %v", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv()
	var woke Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	e.Run()
	if woke != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", woke)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("final clock %v, want 5s", e.Now())
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn("p", func(p *Proc) {
		p.Sleep(-time.Second)
		ran = true
	})
	e.Run()
	if !ran || e.Now() != 0 {
		t.Fatalf("ran=%v now=%v, want true, 0", ran, e.Now())
	}
}

func TestWaitUntilPastResumesNow(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		p.Sleep(time.Second)
		p.WaitUntil(0) // in the past
		if p.Now() != time.Second {
			t.Errorf("resumed at %v, want 1s", p.Now())
		}
	})
	e.Run()
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var order []string
		for _, spec := range []struct {
			name string
			d    time.Duration
		}{{"a", 3 * time.Second}, {"b", time.Second}, {"c", 2 * time.Second}} {
			spec := spec
			e.Spawn(spec.name, func(p *Proc) {
				p.Sleep(spec.d)
				order = append(order, spec.name)
			})
		}
		e.Run()
		return order
	}
	want := []string{"b", "c", "a"}
	for i := 0; i < 20; i++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("run %d: got %v, want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("run %d: got %v, want %v", i, got, want)
			}
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Processes scheduled for the same instant run in spawn order.
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Sleep(time.Second)
			order = append(order, i)
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, v, i, order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := NewEnv()
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(2 * time.Second)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(3 * time.Second)
			childTime = c.Now()
		})
		p.Sleep(time.Second)
	})
	e.Run()
	if childTime != 5*time.Second {
		t.Fatalf("child finished at %v, want 5s", childTime)
	}
}

func TestYieldRoundRobin(t *testing.T) {
	e := NewEnv()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
		p.Yield()
		trace = append(trace, "b2")
	})
	e.Run()
	want := []string{"a1", "b1", "a2", "b2"}
	for i := range want {
		if i >= len(trace) || trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestStationSyncSerializes(t *testing.T) {
	e := NewEnv()
	s := NewStation(e, "disk", 0)
	var aDone, bDone Time
	e.Spawn("a", func(p *Proc) {
		s.Sync(p, 2*time.Second)
		aDone = p.Now()
	})
	e.Spawn("b", func(p *Proc) {
		s.Sync(p, 2*time.Second)
		bDone = p.Now()
	})
	e.Run()
	if aDone != 2*time.Second {
		t.Fatalf("a done at %v, want 2s", aDone)
	}
	if bDone != 4*time.Second {
		t.Fatalf("b done at %v, want 4s (FIFO behind a)", bDone)
	}
	if s.Busy() != 4*time.Second {
		t.Fatalf("busy = %v, want 4s", s.Busy())
	}
}

func TestStationAsyncOverlaps(t *testing.T) {
	// With a deep write-behind, Async returns immediately and the
	// caller overlaps its own work with the device.
	e := NewEnv()
	s := NewStation(e, "tape", 10*time.Second)
	var submitted, drained Time
	e.Spawn("writer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			s.Async(p, time.Second)
		}
		submitted = p.Now()
		s.Drain(p)
		drained = p.Now()
	})
	e.Run()
	if submitted != 0 {
		t.Fatalf("submissions blocked until %v, want 0 (all fit in lag)", submitted)
	}
	if drained != 5*time.Second {
		t.Fatalf("drained at %v, want 5s", drained)
	}
}

func TestStationAsyncBackpressure(t *testing.T) {
	// With lag=1s and 1s services, the writer stays at most one
	// service ahead of the device.
	e := NewEnv()
	s := NewStation(e, "tape", time.Second)
	var times []Time
	e.Spawn("writer", func(p *Proc) {
		for i := 0; i < 4; i++ {
			s.Async(p, time.Second)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []Time{0, time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("submit %d at %v, want %v (all: %v)", i, times[i], want[i], times)
		}
	}
}

func TestStationNilProcNoop(t *testing.T) {
	e := NewEnv()
	s := NewStation(e, "x", 0)
	s.Sync(nil, time.Second)
	s.Async(nil, time.Second)
	s.Drain(nil)
	if s.Busy() != 0 {
		t.Fatalf("nil-proc calls accumulated busy time %v", s.Busy())
	}
}

func TestStationUtilizationAccounting(t *testing.T) {
	e := NewEnv()
	s := NewStation(e, "cpu", 0)
	e.Spawn("p", func(p *Proc) {
		s.Sync(p, time.Second)
		p.Sleep(3 * time.Second) // idle
	})
	e.Run()
	util := float64(s.Busy()) / float64(e.Now())
	if util < 0.24 || util > 0.26 {
		t.Fatalf("utilization = %.3f, want 0.25", util)
	}
}

func TestTimeFor(t *testing.T) {
	cases := []struct {
		bytes int
		rate  float64
		want  time.Duration
	}{
		{1 << 20, 1 << 20, time.Second},
		{4096, 4096 * 2, 500 * time.Millisecond},
		{0, 100, 0},
		{100, 0, 0},
		{-5, 100, 0},
	}
	for _, c := range cases {
		if got := TimeFor(c.bytes, c.rate); got != c.want {
			t.Errorf("TimeFor(%d, %g) = %v, want %v", c.bytes, c.rate, got, c.want)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	e := NewEnv()
	e.Spawn("p", func(p *Proc) {
		ctx := WithProc(context.Background(), p)
		if got := ProcFrom(ctx); got != p {
			t.Errorf("ProcFrom returned %v, want the spawned proc", got)
		}
	})
	e.Run()
	if ProcFrom(context.Background()) != nil {
		t.Fatal("ProcFrom(empty ctx) != nil")
	}
}

func TestManyProcessesSharedStation(t *testing.T) {
	// n processes each do k units of exclusive service: total elapsed
	// must be exactly n*k regardless of interleaving.
	e := NewEnv()
	s := NewStation(e, "cpu", 0)
	const n, k = 8, 5
	for i := 0; i < n; i++ {
		e.Spawn("w", func(p *Proc) {
			for j := 0; j < k; j++ {
				s.Sync(p, time.Millisecond)
			}
		})
	}
	e.Run()
	if want := n * k * time.Millisecond; e.Now() != want {
		t.Fatalf("elapsed %v, want %v", e.Now(), want)
	}
}

func TestDrainWithConcurrentLoad(t *testing.T) {
	// Drain must keep waiting if new work lands while it sleeps.
	e := NewEnv()
	s := NewStation(e, "tape", time.Hour)
	var drainedAt Time
	e.Spawn("drainer", func(p *Proc) {
		s.Async(p, 2*time.Second)
		s.Drain(p)
		drainedAt = p.Now()
	})
	e.Spawn("late", func(p *Proc) {
		p.Sleep(time.Second)
		s.Async(p, 4*time.Second)
	})
	e.Run()
	if drainedAt != 6*time.Second {
		t.Fatalf("drained at %v, want 6s (2s + late 4s)", drainedAt)
	}
}

func TestStationScheduleDoesNotBlock(t *testing.T) {
	e := NewEnv()
	s := NewStation(e, "disk", 0)
	var dones []Time
	e.Spawn("scheduler", func(p *Proc) {
		// Reserve three units without waiting; completions stack FIFO.
		for i := 0; i < 3; i++ {
			dones = append(dones, s.Schedule(p, time.Second))
		}
		if p.Now() != 0 {
			t.Errorf("Schedule blocked the caller until %v", p.Now())
		}
		p.WaitUntil(dones[2])
	})
	e.Run()
	want := []Time{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if dones[i] != want[i] {
			t.Fatalf("dones = %v, want %v", dones, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final clock %v", e.Now())
	}
}

func TestScheduleNilProc(t *testing.T) {
	e := NewEnv()
	s := NewStation(e, "x", 0)
	if got := s.Schedule(nil, time.Second); got != 0 {
		t.Fatalf("nil-proc Schedule returned %v", got)
	}
	if s.Busy() != 0 {
		t.Fatal("nil-proc Schedule accrued busy time")
	}
}

func TestSpawnAfterRunContinues(t *testing.T) {
	// Env.Run can be called repeatedly: later spawns pick up where the
	// clock left off — how the benchmark harness sequences phases.
	e := NewEnv()
	e.Spawn("first", func(p *Proc) { p.Sleep(time.Second) })
	e.Run()
	var second Time
	e.Spawn("second", func(p *Proc) {
		p.Sleep(time.Second)
		second = p.Now()
	})
	e.Run()
	if second != 2*time.Second {
		t.Fatalf("second phase ended at %v, want 2s", second)
	}
}
