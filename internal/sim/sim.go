// Package sim provides a small deterministic discrete-event simulator.
//
// The simulator drives every timing model in this repository: disks,
// RAID arrays, tape drives, NVRAM and the filer CPU all charge their
// service times to a shared virtual clock, so a multi-hour backup run
// from the paper executes in milliseconds of wall time while still
// moving real bytes.
//
// The model is cooperative: processes are goroutines, but exactly one
// process (or the scheduler) runs at any instant, and the only blocking
// primitive is sleeping until a virtual time. This keeps runs fully
// deterministic: identical inputs produce identical event orderings and
// identical clock readings.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured as a duration since the
// start of the simulation.
type Time = time.Duration

// event is a scheduled wake-up for a process.
type event struct {
	at  Time
	seq int64 // tie-breaker for determinism
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock plus the set of
// processes scheduled on it. The zero value is not usable; create
// environments with NewEnv.
type Env struct {
	now    Time
	seq    int64
	events eventHeap
	yield  chan struct{} // handed back by a proc when it blocks or exits
	live   int           // procs spawned and not yet finished
}

// NewEnv returns a fresh simulation environment with the clock at zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

func (e *Env) schedule(at Time, p *Proc) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, p: p})
}

// Proc is a simulated process. All blocking must go through Sleep or
// WaitUntil; blocking on ordinary Go primitives from inside a process
// deadlocks the simulation.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Spawn registers fn as a new process. It may be called before Run or
// from inside a running process; the new process first runs at the
// current virtual time, after the spawner next blocks.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		e.live--
		e.yield <- struct{}{}
	}()
	e.schedule(e.now, p)
	return p
}

// Run drives the simulation until no scheduled events remain. It must
// be called from outside any process. It panics if a process is still
// live when the event queue empties (which indicates a process blocked
// forever — a bug in the caller).
func (e *Env) Run() {
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.p.done {
			continue
		}
		if ev.at > e.now {
			e.now = ev.at
		}
		ev.p.resume <- struct{}{}
		<-e.yield
	}
	if e.live != 0 {
		panic(fmt.Sprintf("sim: %d process(es) still live with empty event queue", e.live))
	}
}

// Sleep blocks the process for d of virtual time. Negative durations
// are treated as zero.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.WaitUntil(p.env.now + d)
}

// WaitUntil blocks the process until virtual time t. If t is in the
// past the process yields and resumes at the current time.
func (p *Proc) WaitUntil(t Time) {
	if t < p.env.now {
		t = p.env.now
	}
	p.env.schedule(t, p)
	p.env.yield <- struct{}{}
	<-p.resume
}

// Yield lets other runnable processes scheduled for the current instant
// run before the caller continues.
func (p *Proc) Yield() { p.WaitUntil(p.env.now) }
