package sim

import (
	"time"
)

// Station models a serially reused device — a disk arm, a tape
// transport, a CPU — as a pipelined FIFO server. Callers reserve
// service time on it; the station tracks when it will next be free and
// how much total busy time it has accumulated, which is what the
// benchmark harness reads to compute per-stage utilization (Tables 3–5
// of the paper).
//
// Two usage modes exist:
//
//   - Sync: the caller blocks until its service completes (a demand
//     read from a disk).
//   - Async: the caller blocks only until the device's backlog drops
//     to the configured write-behind depth (a buffered tape write, a
//     read-ahead). This is how a single-threaded dump engine still
//     overlaps disk, CPU and tape work, reproducing the pipeline
//     behaviour of the paper's in-kernel dump.
//
// All methods tolerate a nil *Proc and become no-ops, so the same
// device code runs untimed in functional tests.
type Station struct {
	env       *Env
	name      string
	busyUntil Time
	busy      time.Duration // total service time ever reserved
	lag       time.Duration // permitted write-behind depth, as time
}

// NewStation creates a station on env. lag is the write-behind depth
// expressed as service time the device may owe before Async blocks;
// zero makes Async equivalent to admission-at-completion.
func NewStation(env *Env, name string, lag time.Duration) *Station {
	return &Station{env: env, name: name, lag: lag}
}

// Name returns the station's name.
func (s *Station) Name() string { return s.name }

// Busy returns the total service time reserved on the station since
// creation. Utilization over an interval is the delta of Busy divided
// by the delta of Env.Now.
func (s *Station) Busy() time.Duration { return s.busy }

// reserve appends svc to the station's schedule and returns the
// completion time of this reservation.
func (s *Station) reserve(svc time.Duration) Time {
	start := s.env.now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + svc
	s.busy += svc
	return s.busyUntil
}

// Sync reserves svc of service time and blocks p until it completes.
func (s *Station) Sync(p *Proc, svc time.Duration) {
	if p == nil || s == nil || svc <= 0 {
		return
	}
	done := s.reserve(svc)
	p.WaitUntil(done)
}

// Async reserves svc of service time and blocks p only until the
// station's outstanding backlog is within its write-behind depth.
func (s *Station) Async(p *Proc, svc time.Duration) {
	if p == nil || s == nil || svc <= 0 {
		return
	}
	done := s.reserve(svc)
	if wait := done - s.lag; wait > p.env.now {
		p.WaitUntil(wait)
	}
}

// Schedule reserves svc of service time and returns its completion
// time without blocking the caller at all. Callers coordinating
// several stations (a striped read across RAID members) reserve on
// each and then WaitUntil the latest completion.
func (s *Station) Schedule(p *Proc, svc time.Duration) Time {
	if p == nil || s == nil || svc <= 0 {
		return 0
	}
	return s.reserve(svc)
}

// Drain blocks p until all reserved work on the station has completed.
func (s *Station) Drain(p *Proc) {
	if p == nil || s == nil {
		return
	}
	for s.busyUntil > p.env.now {
		p.WaitUntil(s.busyUntil)
	}
}

// TimeFor converts a byte count and a rate in bytes/second into a
// service duration. A non-positive rate yields zero (infinitely fast).
func TimeFor(bytes int, bytesPerSec float64) time.Duration {
	if bytesPerSec <= 0 || bytes <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
}
