package sim

import "context"

// procKey is the context key under which the current simulated process
// travels through filesystem and device call chains.
type procKey struct{}

// WithProc returns a context carrying p. Device layers retrieve it with
// ProcFrom and charge their service times against it; a context without
// a process makes all timing a no-op.
func WithProc(ctx context.Context, p *Proc) context.Context {
	return context.WithValue(ctx, procKey{}, p)
}

// ProcFrom extracts the simulated process from ctx, or nil if the call
// chain is running untimed.
func ProcFrom(ctx context.Context) *Proc {
	p, _ := ctx.Value(procKey{}).(*Proc)
	return p
}
