package dumpfmt

import (
	"io"
	"testing"
)

// TestCheckpointDurableAndSkipped checks that Checkpoint flushes the
// partial record immediately (durability) and that readers both see
// the marker via NextHeader and skip it transparently inside segment
// runs.
func TestCheckpointDurableAndSkipped(t *testing.T) {
	sink := newMemSink(0)
	w, err := NewWriter(sink, "lbl", 1000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	seg := make([]byte, TPBSize)
	for i := range seg {
		seg[i] = 0xAB
	}
	if err := w.WriteHeader(&Header{Type: TSInode, Inumber: 7, Count: 2, Addrs: []byte{1, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	flushedBefore := len(sink.volumes[0])
	if err := w.Checkpoint(7); err != nil {
		t.Fatal(err)
	}
	if len(sink.volumes[0]) <= flushedBefore {
		t.Fatal("Checkpoint did not flush the pending partial record")
	}
	if err := w.WriteSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(sink.source())
	var types []int32
	sawCheckpoint := false
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, h.Type)
		if h.Type == TSCheckpoint {
			sawCheckpoint = true
			if h.Inumber != 7 {
				t.Fatalf("checkpoint inumber = %d, want 7", h.Inumber)
			}
		}
		if h.Type == TSInode {
			// ReadSegments must deliver both data segments, hopping
			// over the checkpoint marker between them.
			segs, err := r.ReadSegments(2)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range segs {
				if s[0] != 0xAB {
					t.Fatal("segment bytes corrupted around checkpoint")
				}
			}
			// The checkpoint between the segments was consumed by
			// ReadSegments; it will not reappear from NextHeader.
		}
		if h.Type == TSEnd {
			break
		}
	}
	if sawCheckpoint {
		// The marker sat between the two segments of inode 7, so
		// ReadSegments should have swallowed it.
		t.Fatal("checkpoint leaked out of ReadSegments as a top-level header")
	}
	if r.Skipped() != 0 {
		t.Fatalf("resync skipped %d units", r.Skipped())
	}
	_ = types
}
