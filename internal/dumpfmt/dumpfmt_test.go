package dumpfmt

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{
		Type: TSInode, Date: 1111, DDate: 222, Volume: 3, Tapea: 44,
		Inumber: 55, Level: 2, Label: "home-level2",
		Dinode: DumpInode{Mode: 0100644, Nlink: 2, UID: 7, GID: 8,
			Size: 123456, Atime: 9, Mtime: 10, XMode: 0xBEEF},
		Count: 4, Addrs: []byte{1, 0, 1, 1},
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != TPBSize {
		t.Fatalf("record length %d", len(buf))
	}
	got, err := UnmarshalHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != h.Type || got.Date != h.Date || got.DDate != h.DDate ||
		got.Volume != h.Volume || got.Tapea != h.Tapea || got.Inumber != h.Inumber ||
		got.Level != h.Level || got.Label != h.Label || got.Dinode != h.Dinode {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, h)
	}
	if !bytes.Equal(got.Addrs, h.Addrs) {
		t.Fatal("addrs mismatch")
	}
}

func TestHeaderChecksumDetectsCorruption(t *testing.T) {
	h := &Header{Type: TSInode, Inumber: 9}
	buf, _ := h.Marshal()
	for _, off := range []int{0, 33, 500, TPBSize - 1} {
		bad := make([]byte, TPBSize)
		copy(bad, buf)
		bad[off] ^= 0x10
		if _, err := UnmarshalHeader(bad); err == nil {
			t.Errorf("corruption at %d not detected", off)
		}
	}
}

func TestHeaderChecksumPropertyAnyFieldSet(t *testing.T) {
	f := func(typ uint8, date, ddate int64, ino uint32, size uint64, nAddr uint8) bool {
		h := &Header{
			Type:    int32(typ%6) + 1,
			Date:    date,
			DDate:   ddate,
			Inumber: ino,
			Dinode:  DumpInode{Size: size},
		}
		h.Addrs = make([]byte, int(nAddr)%MaxSegsPerHeader)
		for i := range h.Addrs {
			h.Addrs[i] = byte(i % 2)
		}
		h.Count = int32(len(h.Addrs))
		buf, err := h.Marshal()
		if err != nil {
			return false
		}
		out, err := UnmarshalHeader(buf)
		return err == nil && out.Inumber == ino && out.Date == date && out.Dinode.Size == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderValidation(t *testing.T) {
	if _, err := (&Header{Type: TSInode, Count: 1}).Marshal(); err == nil {
		t.Error("count/addrs mismatch accepted")
	}
	tooMany := &Header{Type: TSInode, Count: MaxSegsPerHeader + 1, Addrs: make([]byte, MaxSegsPerHeader+1)}
	if _, err := tooMany.Marshal(); err == nil {
		t.Error("oversized addr map accepted")
	}
	long := &Header{Type: TSInode, Label: string(make([]byte, 100))}
	if _, err := long.Marshal(); err == nil {
		t.Error("oversized label accepted")
	}
	if _, err := UnmarshalHeader(make([]byte, 10)); !errors.Is(err, ErrShortRecord) {
		t.Error("short record accepted")
	}
	if _, err := UnmarshalHeader(make([]byte, TPBSize)); !errors.Is(err, ErrBadMagic) {
		t.Error("zero record accepted")
	}
}

func TestInoMap(t *testing.T) {
	m := NewInoMap(100)
	for _, i := range []uint32{0, 2, 63, 64, 99} {
		m.Set(i)
	}
	for _, i := range []uint32{0, 2, 63, 64, 99} {
		if !m.Has(i) {
			t.Errorf("Has(%d) = false", i)
		}
	}
	for _, i := range []uint32{1, 3, 65, 98, 1000} {
		if m.Has(i) {
			t.Errorf("Has(%d) = true", i)
		}
	}
	if m.Count() != 5 {
		t.Fatalf("Count = %d, want 5", m.Count())
	}
	// Growth past the initial size.
	m.Set(5000)
	if !m.Has(5000) {
		t.Fatal("grown map lost bit")
	}
	// Round trip through bytes.
	m2 := InoMapFromBytes(m.Bytes())
	if !m2.Has(99) || !m2.Has(5000) || m2.Has(98) || m2.Count() != 6 {
		t.Fatal("byte round trip broke map")
	}
}

// memSink is an in-memory Sink with per-volume capacity.
type memSink struct {
	volumes  [][][]byte
	capacity int64
	used     int64
	noMore   bool
}

func newMemSink(capacity int64) *memSink {
	return &memSink{volumes: [][][]byte{{}}, capacity: capacity}
}

func (s *memSink) WriteRecord(data []byte) error {
	if s.capacity > 0 && s.used+int64(len(data)) > s.capacity {
		return ErrEndOfMedia
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	cur := len(s.volumes) - 1
	s.volumes[cur] = append(s.volumes[cur], cp)
	s.used += int64(len(data))
	return nil
}

func (s *memSink) NextVolume() error {
	if s.noMore {
		return errors.New("no more volumes")
	}
	s.volumes = append(s.volumes, nil)
	s.used = 0
	return nil
}

// memSource replays all volumes of a memSink in order.
type memSource struct {
	recs [][]byte
	pos  int
}

func (s *memSink) source() *memSource {
	var src memSource
	for _, vol := range s.volumes {
		src.recs = append(src.recs, vol...)
	}
	return &src
}

func (s *memSource) ReadRecord() ([]byte, error) {
	if s.pos >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

func TestStreamRoundTrip(t *testing.T) {
	sink := newMemSink(0)
	w, err := NewWriter(sink, "vol0", 1000, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One file with a hole: segments 0 and 2 present, 1 absent.
	h := &Header{Type: TSInode, Inumber: 7,
		Dinode: DumpInode{Mode: 0100644, Size: 3 * TPBSize},
		Count:  3, Addrs: []byte{1, 0, 1}}
	if err := w.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	segA := bytes.Repeat([]byte{0xA}, TPBSize)
	segC := bytes.Repeat([]byte{0xC}, TPBSize)
	w.WriteSegment(segA)
	w.WriteSegment(segC)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(sink.source())
	first, err := r.NextHeader()
	if err != nil || first.Type != TSTape {
		t.Fatalf("first header: %+v, %v", first, err)
	}
	if first.Label != "vol0" || first.Date != 1000 {
		t.Fatalf("volume header fields: %+v", first)
	}
	ino, err := r.NextHeader()
	if err != nil || ino.Type != TSInode || ino.Inumber != 7 {
		t.Fatalf("inode header: %+v, %v", ino, err)
	}
	present := 0
	for _, a := range ino.Addrs {
		if a == 1 {
			present++
		}
	}
	segs, err := r.ReadSegments(present)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(segs[0], segA) || !bytes.Equal(segs[1], segC) {
		t.Fatal("segment contents mismatch")
	}
	end, err := r.NextHeader()
	if err != nil || end.Type != TSEnd {
		t.Fatalf("end header: %+v, %v", end, err)
	}
}

func TestMultiVolumeSpanning(t *testing.T) {
	// Small per-volume capacity: the stream must span several volumes
	// and the reader must see every record back-to-back.
	sink := newMemSink(30 * TPBSize)
	w, err := NewWriter(sink, "span", 5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	const files = 20
	for i := 0; i < files; i++ {
		h := &Header{Type: TSInode, Inumber: uint32(100 + i),
			Dinode: DumpInode{Mode: 0100644, Size: 2 * TPBSize},
			Count:  2, Addrs: []byte{1, 1}}
		if err := w.WriteHeader(h); err != nil {
			t.Fatal(err)
		}
		w.WriteSegment(bytes.Repeat([]byte{byte(i)}, TPBSize))
		w.WriteSegment(bytes.Repeat([]byte{byte(i + 100)}, TPBSize))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(sink.volumes) < 2 {
		t.Fatalf("dump fit in %d volume(s); wanted spanning", len(sink.volumes))
	}

	r := NewReader(sink.source())
	seen := 0
	conts := 0
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch h.Type {
		case TSTape:
			conts++
		case TSInode:
			segs, err := r.ReadSegments(2)
			if err != nil {
				t.Fatal(err)
			}
			if segs[0][0] != byte(seen) || segs[1][0] != byte(seen+100) {
				t.Fatalf("file %d data mismatch", seen)
			}
			seen++
		case TSEnd:
		}
		if h.Type == TSEnd {
			break
		}
	}
	if seen != files {
		t.Fatalf("recovered %d files, want %d", seen, files)
	}
	// Continuation headers mid-data are skipped by ReadSegments; at
	// minimum the initial volume header must have been seen.
	if conts < 1 {
		t.Fatalf("saw %d TS_TAPE headers, want >= 1", conts)
	}
}

func TestVolumeChangeFailureSurfaces(t *testing.T) {
	sink := newMemSink(15 * TPBSize)
	sink.noMore = true
	w, err := NewWriter(sink, "x", 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var werr error
	for i := 0; i < 100 && werr == nil; i++ {
		werr = w.WriteSegment(bytes.Repeat([]byte{1}, TPBSize))
	}
	if werr == nil {
		werr = w.Close()
	}
	if werr == nil {
		t.Fatal("running out of volumes did not error")
	}
}

func TestReaderResyncSkipsCorruptUnits(t *testing.T) {
	sink := newMemSink(0)
	w, _ := NewWriter(sink, "r", 9, 0, 0)
	for i := 0; i < 5; i++ {
		h := &Header{Type: TSInode, Inumber: uint32(i + 10),
			Dinode: DumpInode{Mode: 0100644, Size: TPBSize},
			Count:  1, Addrs: []byte{1}}
		w.WriteHeader(h)
		w.WriteSegment(bytes.Repeat([]byte{byte(i)}, TPBSize))
	}
	w.Close()

	// Corrupt the record containing file 2's header (record 0 holds
	// units 0..9: TS_TAPE, then (hdr,data) pairs for files 0..3...).
	// Instead of computing offsets, flip bytes in one mid-stream unit.
	src := sink.source()
	// unit 5 = header of file 2 (1 TS_TAPE + 2 per file).
	rec0 := src.recs[0]
	for i := 0; i < TPBSize; i++ {
		rec0[5*TPBSize+i] ^= 0xFF
	}

	r := NewReader(src)
	var got []uint32
	for {
		h, err := r.NextHeader()
		if err == io.EOF {
			t.Fatal("unexpected EOF before TS_END")
		}
		if err != nil {
			t.Fatal(err)
		}
		if h.Type == TSEnd {
			break
		}
		if h.Type == TSInode {
			got = append(got, h.Inumber)
			r.ReadSegments(1)
		}
	}
	// File 12's header was destroyed; the others must survive.
	want := map[uint32]bool{10: true, 11: true, 13: true, 14: true}
	for _, g := range got {
		delete(want, g)
	}
	if len(want) != 0 {
		t.Fatalf("resync lost files %v (got %v)", want, got)
	}
	if r.Skipped() == 0 {
		t.Fatal("reader reports no skipped units")
	}
}
