package dumpfmt

import (
	"reflect"
	"testing"
)

// FuzzUnmarshalHeader feeds arbitrary 1 KB records to the header
// decoder. It must never panic, and any record it accepts must
// re-marshal to an equivalent header — restore trusts decoded headers
// to size reads, so an unvalidated field is an out-of-bounds read.
func FuzzUnmarshalHeader(f *testing.F) {
	// Seeds: real marshaled headers of every stream record type.
	seeds := []*Header{
		{Type: TSTape, Date: 100, Volume: 1, Label: "fuzz-corpus"},
		{Type: TSBits, Date: 100, Count: 4, Addrs: []byte{1, 1, 1, 1}},
		{Type: TSInode, Date: 100, Inumber: 7, Count: 3, Addrs: []byte{1, 0, 1},
			Dinode: DumpInode{Mode: 0100644, Nlink: 1, Size: 2100}},
		{Type: TSAddr, Date: 100, Inumber: 7, Count: int32(MaxSegsPerHeader),
			Addrs: make([]byte, MaxSegsPerHeader)},
		{Type: TSEnd, Date: 100},
		{Type: TSCheckpoint, Date: 100, Inumber: 42},
	}
	for _, h := range seeds {
		rec, err := h.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(rec)
		// And a corrupted twin, to steer the fuzzer at near-valid input.
		bad := append([]byte(nil), rec...)
		bad[offCount] ^= 0x80
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := UnmarshalHeader(data)
		if err != nil {
			return
		}
		if h.Count < 0 || int(h.Count) > MaxSegsPerHeader || len(h.Addrs) != int(h.Count) {
			t.Fatalf("accepted header with bad addr count: count=%d len(addrs)=%d", h.Count, len(h.Addrs))
		}
		if h.Type < TSTape || h.Type > TSCheckpoint {
			t.Fatalf("accepted header with unknown type %d", h.Type)
		}
		rec, err := h.Marshal()
		if err != nil {
			t.Fatalf("accepted header does not re-marshal: %v", err)
		}
		h2, err := UnmarshalHeader(rec)
		if err != nil {
			t.Fatalf("re-marshaled header does not decode: %v", err)
		}
		if !reflect.DeepEqual(h, h2) {
			t.Fatalf("marshal round trip changed header:\n%+v\n%+v", h, h2)
		}
	})
}
