package dumpfmt

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/bufpool"
)

// ErrEndOfMedia is returned by a Sink when the current tape volume is
// full; the Writer responds by requesting the next volume and writing
// a continuation TS_TAPE header, which is how dumps span cartridges.
var ErrEndOfMedia = errors.New("dumpfmt: end of media")

// Sink is where the Writer sends blocked tape records (NTRec 1 KB
// units each). Implementations wrap a tape drive.
type Sink interface {
	// WriteRecord writes one blocked record, returning ErrEndOfMedia
	// when the volume is full.
	WriteRecord(data []byte) error
	// NextVolume mounts the next volume. Called after ErrEndOfMedia.
	NextVolume() error
}

// Syncer is optionally implemented by sinks whose WriteRecord accepts
// records provisionally (a network session with a send window, a deep
// write-behind buffer). Sync returns once every record accepted so far
// is durable on media. The dump engines call it after emitting a
// checkpoint marker, before recording the checkpoint as reached — the
// checkpoint contract promises everything up to the marker is on tape,
// and a provisional accept alone cannot promise that.
//
// When the sink is an ndmp session against a tape host backed by the
// replicated catalog, Sync promises more: the checkpoint's high-water
// mark is recorded in the replicated journal, quorum-acknowledged, so
// the resume point survives the loss of the tape host itself. A
// checkpoint a dump engine considers reached is then exactly the point
// a standby host can answer for after failover — "durable" means
// replicated, not just host-acked.
type Syncer interface {
	Sync() error
}

// Source is where the Reader pulls blocked records from, io.EOF at the
// end of the dump. Implementations handle cartridge cycling.
type Source interface {
	ReadRecord() ([]byte, error)
}

// Writer emits a dump stream: headers and 1 KB segments, blocked into
// NTRec-unit tape records. Headers are marshalled and segments copied
// directly into the pending record buffer (pooled via bufpool), so
// the steady-state record path performs no allocation.
type Writer struct {
	sink   Sink
	label  string
	date   int64
	ddate  int64
	level  int32
	volume int32
	tapea  int64

	rec     *[]byte // pooled backing for buf
	buf     []byte  // pending blocked record
	units   int
	written int64 // total bytes handed to the sink
}

// NewWriter starts a dump stream and writes the initial TS_TAPE
// volume header.
func NewWriter(sink Sink, label string, date, ddate int64, level int32) (*Writer, error) {
	rec := bufpool.Get(NTRec * TPBSize)
	w := &Writer{
		sink:   sink,
		label:  label,
		date:   date,
		ddate:  ddate,
		level:  level,
		volume: 1,
		rec:    rec,
		buf:    (*rec)[:0],
	}
	if err := w.WriteHeader(&Header{Type: TSTape}); err != nil {
		return nil, err
	}
	return w, nil
}

// Written returns the total bytes emitted to the sink so far.
func (w *Writer) Written() int64 { return w.written }

// Tapea returns the current logical record position.
func (w *Writer) Tapea() int64 { return w.tapea }

// zeroUnit pads short segments without a per-unit scratch allocation.
var zeroUnit [TPBSize]byte

// WriteHeader stamps the stream-wide fields into h and emits it,
// marshalling straight into the pending record buffer.
func (w *Writer) WriteHeader(h *Header) error {
	h.Date = w.date
	h.DDate = w.ddate
	h.Level = w.level
	h.Volume = w.volume
	h.Label = w.label
	h.Tapea = w.tapea
	off := len(w.buf)
	w.buf = w.buf[:off+TPBSize]
	if err := h.MarshalInto(w.buf[off : off+TPBSize]); err != nil {
		w.buf = w.buf[:off]
		return err
	}
	return w.unitDone()
}

// WriteSegment emits one data segment (at most 1 KB; shorter segments
// are zero-padded, matching the fixed-unit tape format). The segment
// is copied into the pending record buffer, so the caller may reuse
// seg immediately.
func (w *Writer) WriteSegment(seg []byte) error {
	if len(seg) > TPBSize {
		return fmt.Errorf("dumpfmt: segment of %d bytes", len(seg))
	}
	w.buf = append(w.buf, seg...)
	w.buf = append(w.buf, zeroUnit[len(seg):]...)
	return w.unitDone()
}

// unitDone accounts for one finished 1 KB unit and flushes a full
// blocked record.
func (w *Writer) unitDone() error {
	w.units++
	w.tapea++
	if w.units == NTRec {
		return w.flush()
	}
	return nil
}

// flush writes the pending blocked record, handling end-of-media by
// switching volumes and emitting a continuation header first.
func (w *Writer) flush() error {
	if w.units == 0 {
		return nil
	}
	rec := w.buf
	for {
		err := w.sink.WriteRecord(rec)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrEndOfMedia) {
			return err
		}
		// Switch volumes until one takes the continuation header: a
		// fresh cartridge can itself be bad from its very first record,
		// in which case it is abandoned like the full one before it.
		for {
			if err := w.sink.NextVolume(); err != nil {
				return fmt.Errorf("dumpfmt: volume change: %w", err)
			}
			w.volume++
			cont := &Header{Type: TSTape, Date: w.date, DDate: w.ddate,
				Level: w.level, Volume: w.volume, Label: w.label, Tapea: w.tapea}
			contBuf, err := cont.Marshal()
			if err != nil {
				return err
			}
			// The continuation header goes out as its own (short) record.
			cerr := w.sink.WriteRecord(contBuf)
			if cerr == nil {
				w.written += TPBSize
				break
			}
			if !errors.Is(cerr, ErrEndOfMedia) {
				return fmt.Errorf("dumpfmt: writing continuation header: %w", cerr)
			}
		}
	}
	w.written += int64(len(rec))
	w.buf = w.buf[:0]
	w.units = 0
	return nil
}

// Checkpoint emits a TS_CHECKPOINT record declaring that every file
// up to and including inode ino is complete in the stream, then
// flushes the pending partial record so the marker — and everything
// before it — is durably on media. A dump that later aborts can
// restart from the last checkpoint instead of from scratch.
func (w *Writer) Checkpoint(ino uint32) error {
	if err := w.WriteHeader(&Header{Type: TSCheckpoint, Inumber: ino}); err != nil {
		return err
	}
	return w.flush()
}

// Close writes the TS_END record, flushes the final partial record
// and recycles the Writer's record buffer. The Writer must not be
// used after Close.
func (w *Writer) Close() error {
	if err := w.WriteHeader(&Header{Type: TSEnd}); err != nil {
		return err
	}
	if err := w.flush(); err != nil {
		return err
	}
	bufpool.Put(w.rec)
	w.rec, w.buf = nil, nil
	return nil
}

// Reader consumes a dump stream, un-blocking tape records into 1 KB
// units and decoding headers with resynchronization: a corrupt unit
// where a header was expected is skipped, so damage to one file's
// records does not take down the rest of the restore — the resilience
// property the paper credits logical backup with.
type Reader struct {
	src     Source
	pending [][]byte
	skipped int // corrupt units skipped during resync
}

// NewReader wraps a source of blocked records.
func NewReader(src Source) *Reader { return &Reader{src: src} }

// Skipped returns how many units were discarded during resync.
func (r *Reader) Skipped() int { return r.skipped }

// readUnit returns the next 1 KB unit.
func (r *Reader) readUnit() ([]byte, error) {
	for len(r.pending) == 0 {
		rec, err := r.src.ReadRecord()
		if err != nil {
			return nil, err
		}
		if len(rec)%TPBSize != 0 {
			// A torn record: salvage the whole units.
			rec = rec[:len(rec)/TPBSize*TPBSize]
		}
		for off := 0; off < len(rec); off += TPBSize {
			r.pending = append(r.pending, rec[off:off+TPBSize])
		}
	}
	u := r.pending[0]
	r.pending = r.pending[1:]
	return u, nil
}

// NextHeader returns the next valid header, skipping corrupt units and
// transparently passing volume-continuation TS_TAPE headers through to
// the caller (they carry no payload).
func (r *Reader) NextHeader() (*Header, error) {
	for {
		unit, err := r.readUnit()
		if err != nil {
			return nil, err
		}
		h, err := UnmarshalHeader(unit)
		if err != nil {
			r.skipped++
			continue
		}
		return h, nil
	}
}

// ReadSegments reads n data segments following a header. A volume
// change can interpose a TS_TAPE continuation header in the middle of
// a file's data; such units are recognized (magic, checksum and type
// all match) and skipped, as BSD restore does. Corrupt or missing
// trailing segments surface as an error after salvage.
func (r *Reader) ReadSegments(n int) ([][]byte, error) {
	segs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		unit, err := r.readUnit()
		if err != nil {
			if err == io.EOF {
				return segs, io.ErrUnexpectedEOF
			}
			return segs, err
		}
		if h, err := UnmarshalHeader(unit); err == nil && (h.Type == TSTape || h.Type == TSCheckpoint) {
			i-- // continuation or checkpoint marker, not data
			continue
		}
		segs = append(segs, unit)
	}
	return segs, nil
}
