// Package dumpfmt implements the archival on-tape stream format used
// by logical dump — a faithful structural reproduction of the BSD dump
// format the paper describes (§3):
//
//   - the stream is a sequence of 1 KB header records interleaved with
//     1 KB data segments;
//   - record types TS_TAPE (volume label), TS_CLRI (map of free
//     inodes), TS_BITS (map of inodes in use / to be dumped), TS_INODE
//     (a file or directory, with its metadata), TS_ADDR (continuation
//     of a large file) and TS_END;
//   - every header carries the dump date, the incremental base date,
//     the inode number, a magic number and a checksum chosen so the
//     32-bit words of the header sum to a known constant;
//   - file data headers carry a hole map: one byte per following 1 KB
//     segment, zero meaning the segment is a hole and is not stored.
//
// The format is deliberately self-contained and filesystem-independent
// ("a canonical representation which can be understood without knowing
// very much if anything about the file system structure"), which is
// what gives logical backup its portability and single-file restore,
// and what costs it the metadata interpretation the paper measures.
package dumpfmt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Record geometry.
const (
	// TPBSize is the dump record unit (TP_BSIZE in BSD dump).
	TPBSize = 1024
	// NTRec is how many 1 KB units are blocked into one tape record.
	NTRec = 10
	// Magic identifies a dump header (NFS_MAGIC in BSD dump).
	Magic = 60012
	// ChecksumConst is the value header words must sum to (CHECKSUM).
	ChecksumConst = 84446
	// MaxSegsPerHeader is the most data segments one header's hole map
	// can describe (TP_NINDIR in spirit).
	MaxSegsPerHeader = 512
)

// Record types.
const (
	TSTape       = 1 // volume label
	TSInode      = 2 // file or directory header
	TSBits       = 3 // bitmap of inodes dumped
	TSAddr       = 4 // continuation of a file
	TSEnd        = 5 // end of dump
	TSClri       = 6 // bitmap of inodes free at dump time
	TSCheckpoint = 7 // restart marker: everything up to Inumber is on tape
)

// Errors.
var (
	ErrBadMagic    = errors.New("dumpfmt: bad magic")
	ErrBadChecksum = errors.New("dumpfmt: bad checksum")
	ErrShortRecord = errors.New("dumpfmt: short record")
)

// DumpInode is the subset of file metadata carried in a TS_INODE
// header — enough to recreate the file on any filesystem.
type DumpInode struct {
	Mode  uint32
	Nlink uint32
	UID   uint32
	GID   uint32
	Size  uint64
	Atime int64
	Mtime int64
	XMode uint32 // vendor extension: DOS bits / NT ACL id (paper §3)
}

// Header is one 1 KB dump record header.
type Header struct {
	Type    int32
	Date    int64 // time of this dump
	DDate   int64 // time of the base dump (0 for level 0)
	Volume  int32 // tape volume number, starting at 1
	Tapea   int64 // logical record number within the dump
	Inumber uint32
	Level   int32
	Label   string // dump label (max 64 bytes)
	Dinode  DumpInode
	Count   int32  // segments described by Addrs
	Addrs   []byte // hole map: Count bytes, 1 = data segment follows
}

// Fixed byte offsets within the 1 KB header.
const (
	offType     = 0
	offDate     = 4
	offDDate    = 12
	offVolume   = 20
	offTapea    = 24
	offInumber  = 32
	offLevel    = 36
	offMagic    = 40
	offChecksum = 44
	offMode     = 48
	offNlink    = 52
	offUID      = 56
	offGID      = 60
	offSize     = 64
	offAtime    = 72
	offMtime    = 80
	offXMode    = 88
	offCount    = 92
	offLabel    = 96 // 64 bytes
	offAddrs    = 160
	maxAddrs    = TPBSize - offAddrs // 864; we cap at MaxSegsPerHeader
)

// Marshal encodes h into a fresh 1 KB record with a valid checksum.
func (h *Header) Marshal() ([]byte, error) {
	buf := make([]byte, TPBSize)
	if err := h.MarshalInto(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MarshalInto encodes h into buf (which must be TPBSize long),
// overwriting every byte — the allocation-free path the stream Writer
// uses to marshal headers directly into its blocked record buffer.
func (h *Header) MarshalInto(buf []byte) error {
	if len(buf) != TPBSize {
		return fmt.Errorf("%w: %d byte buffer", ErrShortRecord, len(buf))
	}
	if len(h.Addrs) > MaxSegsPerHeader {
		return fmt.Errorf("dumpfmt: %d addrs exceeds max %d", len(h.Addrs), MaxSegsPerHeader)
	}
	if int(h.Count) != len(h.Addrs) {
		return fmt.Errorf("dumpfmt: count %d != len(addrs) %d", h.Count, len(h.Addrs))
	}
	if len(h.Label) > 64 {
		return fmt.Errorf("dumpfmt: label %q too long", h.Label)
	}
	clear(buf)
	le := binary.LittleEndian
	le.PutUint32(buf[offType:], uint32(h.Type))
	le.PutUint64(buf[offDate:], uint64(h.Date))
	le.PutUint64(buf[offDDate:], uint64(h.DDate))
	le.PutUint32(buf[offVolume:], uint32(h.Volume))
	le.PutUint64(buf[offTapea:], uint64(h.Tapea))
	le.PutUint32(buf[offInumber:], h.Inumber)
	le.PutUint32(buf[offLevel:], uint32(h.Level))
	le.PutUint32(buf[offMagic:], Magic)
	le.PutUint32(buf[offMode:], h.Dinode.Mode)
	le.PutUint32(buf[offNlink:], h.Dinode.Nlink)
	le.PutUint32(buf[offUID:], h.Dinode.UID)
	le.PutUint32(buf[offGID:], h.Dinode.GID)
	le.PutUint64(buf[offSize:], h.Dinode.Size)
	le.PutUint64(buf[offAtime:], uint64(h.Dinode.Atime))
	le.PutUint64(buf[offMtime:], uint64(h.Dinode.Mtime))
	le.PutUint32(buf[offXMode:], h.Dinode.XMode)
	le.PutUint32(buf[offCount:], uint32(h.Count))
	copy(buf[offLabel:offLabel+64], h.Label)
	copy(buf[offAddrs:], h.Addrs)

	// Set the checksum so that the sum of all 32-bit words equals
	// ChecksumConst, exactly like BSD dump.
	le.PutUint32(buf[offChecksum:], 0)
	var sum int32
	for i := 0; i < TPBSize; i += 4 {
		sum += int32(le.Uint32(buf[i:]))
	}
	le.PutUint32(buf[offChecksum:], uint32(ChecksumConst-sum))
	return nil
}

// UnmarshalHeader decodes and validates a 1 KB record header.
func UnmarshalHeader(buf []byte) (*Header, error) {
	if len(buf) != TPBSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrShortRecord, len(buf))
	}
	le := binary.LittleEndian
	if le.Uint32(buf[offMagic:]) != Magic {
		return nil, ErrBadMagic
	}
	var sum int32
	for i := 0; i < TPBSize; i += 4 {
		sum += int32(le.Uint32(buf[i:]))
	}
	if sum != ChecksumConst {
		return nil, ErrBadChecksum
	}
	h := &Header{
		Type:    int32(le.Uint32(buf[offType:])),
		Date:    int64(le.Uint64(buf[offDate:])),
		DDate:   int64(le.Uint64(buf[offDDate:])),
		Volume:  int32(le.Uint32(buf[offVolume:])),
		Tapea:   int64(le.Uint64(buf[offTapea:])),
		Inumber: le.Uint32(buf[offInumber:]),
		Level:   int32(le.Uint32(buf[offLevel:])),
		Count:   int32(le.Uint32(buf[offCount:])),
	}
	h.Dinode = DumpInode{
		Mode:  le.Uint32(buf[offMode:]),
		Nlink: le.Uint32(buf[offNlink:]),
		UID:   le.Uint32(buf[offUID:]),
		GID:   le.Uint32(buf[offGID:]),
		Size:  le.Uint64(buf[offSize:]),
		Atime: int64(le.Uint64(buf[offAtime:])),
		Mtime: int64(le.Uint64(buf[offMtime:])),
		XMode: le.Uint32(buf[offXMode:]),
	}
	label := buf[offLabel : offLabel+64]
	n := 0
	for n < len(label) && label[n] != 0 {
		n++
	}
	h.Label = string(label[:n])
	if h.Count < 0 || int(h.Count) > MaxSegsPerHeader {
		return nil, fmt.Errorf("dumpfmt: bad addr count %d", h.Count)
	}
	h.Addrs = make([]byte, h.Count)
	copy(h.Addrs, buf[offAddrs:offAddrs+int(h.Count)])
	if h.Type < TSTape || h.Type > TSCheckpoint {
		return nil, fmt.Errorf("dumpfmt: unknown record type %d", h.Type)
	}
	return h, nil
}

// InoMap is the bitmap of inode numbers carried by TS_BITS and TS_CLRI
// records.
type InoMap struct {
	bits []byte
}

// NewInoMap creates a map able to hold inodes [0, n).
func NewInoMap(n uint32) *InoMap {
	return &InoMap{bits: make([]byte, (n+7)/8)}
}

// Set marks ino present.
func (m *InoMap) Set(ino uint32) {
	for int(ino/8) >= len(m.bits) {
		m.bits = append(m.bits, 0)
	}
	m.bits[ino/8] |= 1 << (ino % 8)
}

// Has reports whether ino is present.
func (m *InoMap) Has(ino uint32) bool {
	if int(ino/8) >= len(m.bits) {
		return false
	}
	return m.bits[ino/8]&(1<<(ino%8)) != 0
}

// Max returns one past the largest representable inode.
func (m *InoMap) Max() uint32 { return uint32(len(m.bits) * 8) }

// Bytes returns the raw bitmap for embedding in the stream.
func (m *InoMap) Bytes() []byte { return m.bits }

// InoMapFromBytes wraps raw bitmap bytes read from a stream.
func InoMapFromBytes(b []byte) *InoMap {
	cp := make([]byte, len(b))
	copy(cp, b)
	return &InoMap{bits: cp}
}

// Count returns the number of set inodes.
func (m *InoMap) Count() int {
	n := 0
	for _, b := range m.bits {
		for b != 0 {
			n += int(b & 1)
			b >>= 1
		}
	}
	return n
}
