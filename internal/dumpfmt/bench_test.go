package dumpfmt

import "testing"

// nullSink discards records, isolating the Writer's own record path.
type nullSink struct{}

func (nullSink) WriteRecord(data []byte) error { return nil }
func (nullSink) NextVolume() error             { return nil }

// BenchmarkRecordWrite measures the logical dump record path: one
// TS_INODE header plus four 1 KB data segments per iteration — the
// steady-state shape of Phase IV writing one 4 KB file block.
func BenchmarkRecordWrite(b *testing.B) {
	w, err := NewWriter(nullSink{}, "bench", 1, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	seg := make([]byte, TPBSize)
	for i := range seg {
		seg[i] = byte(i)
	}
	addrs := []byte{1, 1, 1, 1}
	b.SetBytes(5 * TPBSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := Header{Type: TSInode, Inumber: 42, Count: 4, Addrs: addrs,
			Dinode: DumpInode{Mode: 0100644, Size: 4096}}
		if err := w.WriteHeader(&h); err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 4; s++ {
			if err := w.WriteSegment(seg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
