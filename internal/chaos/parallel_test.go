package chaos

import "testing"

// TestChaosParallelShardFault: one drive of a 4-drive parallel dump
// latches offline mid-stream (persistent tape fault). For both engines
// and every seed: the three sibling shards complete, the faulted shard
// resumes from its per-shard checkpoint on a replacement drive, and
// the restored tree is byte-identical to the source.
func TestChaosParallelShardFault(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		resumed := 0
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep, err := RunParallel(ctx, ParallelScenario{
				Seed:   seed,
				Engine: engine,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", engine, seed, err)
			}
			if rep.Siblings != 3 {
				t.Fatalf("%s seed %d: %d sibling shards completed, want 3", engine, seed, rep.Siblings)
			}
			if !rep.Identical {
				t.Fatalf("%s seed %d: restored tree differs at %v", engine, seed, rep.DiffPaths)
			}
			if rep.Resumed {
				resumed++
				if rep.Skipped == 0 {
					t.Errorf("%s seed %d: resume had a checkpoint but skipped nothing", engine, seed)
				}
			}
		}
		if resumed == 0 {
			t.Errorf("%s: no seed exercised checkpoint resume; lower OfflineAfterRecords", engine)
		}
	}
}

// TestChaosParallelFaultIsTerminalPerShard: a transient-capable drive
// config must not mask the isolation contract — with a persistent
// offline latch the faulted shard's error survives retries while the
// sibling drives never see it.
func TestChaosParallelFaultIsTerminalPerShard(t *testing.T) {
	rep, err := RunParallel(ctx, ParallelScenario{
		Seed:                3,
		Engine:              Physical,
		Drives:              4,
		OfflineAfterRecords: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulted != 3%4 {
		t.Fatalf("faulted drive %d, want seed-derived %d", rep.Faulted, 3%4)
	}
	if !rep.Identical || rep.Siblings != 3 {
		t.Fatalf("isolation contract violated: siblings=%d identical=%v diffs=%v",
			rep.Siblings, rep.Identical, rep.DiffPaths)
	}
}
