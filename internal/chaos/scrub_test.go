package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/sched"
	"repro/internal/scrub"
	"repro/internal/workload"
)

// scrubRig is the catalog rig plus the integrity layer: a stream
// mirror fed by the scheduler and a scrubber wired into the schedule.
type scrubRig struct {
	f      *core.Filer
	cat    *catalog.Catalog
	pool   *media.Pool
	s      *sched.Scheduler
	mirror *scrub.Store
	scr    *scrub.Scrubber
}

func newScrubRig(t *testing.T, engine catalog.Engine, withMirror bool) *scrubRig {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Name = "vol0"
	cfg.Simulate = true
	cfg.BlocksPerDisk = 512
	cfg.CartridgesPerDrive = 8
	f, err := core.NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Generate(ctx, f.FS, workload.Spec{
		Seed: 99, Files: 20, DirFanout: 4, MeanFileSize: 6 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.Open(&catalog.MemStore{})
	if err != nil {
		t.Fatal(err)
	}
	pool := media.NewPool("main", cat)
	if err := pool.Adopt(f.Tapes[0], 0); err != nil {
		t.Fatal(err)
	}
	f.AttachCatalog(cat)

	scfg := scrub.Config{Catalog: cat, Pool: pool, Env: f.Env}
	var mirror *scrub.Store
	if withMirror {
		mirror = scrub.NewStore()
		scfg.Replicas = []scrub.Replica{mirror}
	}
	scr, err := scrub.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.New(sched.Config{
		Filer: f, Catalog: cat, Pool: pool, Engine: engine,
		Policy: sched.BSDLadder{Ladder: []int{3, 5}},
		Mirror: mirror, Scrub: scr,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &scrubRig{f: f, cat: cat, pool: pool, s: s, mirror: mirror, scr: scr}
}

func (r *scrubRig) digest(t *testing.T) map[string]workload.Entry {
	t.Helper()
	d, err := workload.TreeDigest(ctx, r.f.FS.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// rot injects one fault at the first record of a catalogued set:
// a latched read error (detected by the drive) or a silent bit flip
// (detected only by the stream's own checksums).
func (r *scrubRig) rot(t *testing.T, setID uint64, latent bool) string {
	t.Helper()
	ds, ok := r.cat.Set(setID)
	if !ok {
		t.Fatalf("rot: set %d not in catalog", setID)
	}
	ref := ds.Media[0]
	v, ok := r.pool.Volume(ref.Volume)
	if !ok || v.Cart == nil {
		t.Fatalf("rot: volume %q not mountable", ref.Volume)
	}
	if latent {
		if !v.Cart.InjectLatentFault(int(ref.Start)) {
			t.Fatalf("rot: latent inject at %d failed", ref.Start)
		}
	} else if !v.Cart.CorruptRecordAt(int(ref.Start)) {
		t.Fatalf("rot: corrupt at %d failed", ref.Start)
	}
	return ref.Volume
}

// TestChaosScrubBitRotRepair: latent read faults and silent bit flips
// land on catalogued media between scheduled runs. The nightly scrub
// must detect every fault and repair it in place from the stream
// mirror — no set degraded, no media quarantined — and the final
// catalog-planned restore must be byte-identical. A corrupted record
// must never reach a restore undetected.
func TestChaosScrubBitRotRepair(t *testing.T) {
	for seed := int64(1); seed <= int64(seedCount()); seed++ {
		for _, engine := range []catalog.Engine{catalog.Logical, catalog.Image} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, engine), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := newScrubRig(t, engine, true)

				var last map[string]workload.Entry
				for run := 0; run < 3; run++ {
					if run > 0 {
						if _, err := r.f.FS.WriteFile(ctx, "/data/report.txt",
							[]byte(fmt.Sprintf("revision %d", run)), 0644); err != nil {
							t.Fatal(err)
						}
						// Rot a random already-catalogued set before the
						// next scheduled cycle.
						live := r.cat.Live()
						victim := live[rng.Intn(len(live))]
						r.rot(t, victim.ID, rng.Intn(2) == 0)
					}
					last = r.digest(t)
					res, err := r.s.RunOne(ctx)
					if err != nil {
						t.Fatalf("run %d: %v", run, err)
					}
					if res.Scrub == nil {
						t.Fatalf("run %d: no scheduled scrub report", run)
					}
					if run > 0 && len(res.Scrub.Repaired) == 0 {
						t.Fatalf("run %d: injected fault not repaired: %+v", run, res.Scrub)
					}
					if len(res.Scrub.Findings) != 0 || len(res.Scrub.Damaged) != 0 ||
						len(res.Scrub.Quarantined) != 0 {
						t.Fatalf("run %d: mirror-backed rot degraded the archive: %+v", run, res.Scrub)
					}
					if res.Scrub.BytesScanned == 0 {
						t.Fatalf("run %d: scrub scanned nothing", run)
					}
				}
				if ids := r.cat.DamagedSets(); len(ids) != 0 {
					t.Fatalf("damaged sets after repairs: %v", ids)
				}

				// The repaired media restores the newest state exactly.
				plan, err := r.cat.Plan(catalog.PlanOptions{Engine: engine, FSID: "vol0"})
				if err != nil {
					t.Fatal(err)
				}
				if len(plan.Steps) != 3 {
					t.Fatalf("plan has %d steps: %s", len(plan.Steps), plan)
				}
				opts := sched.RecoverOptions{}
				if engine == catalog.Logical {
					opts.Wipe = true
				}
				if _, err := sched.Recover(ctx, r.f, r.pool, plan, opts); err != nil {
					t.Fatalf("recover from repaired media: %v", err)
				}
				if diffs := workload.DiffDigests(last, r.digest(t)); len(diffs) > 0 {
					t.Fatalf("restored tree differs after bit-rot repairs: %v", diffs)
				}
			})
		}
	}
}

// TestChaosScrubDegradeRouteAround: the same rot with no mirror to
// repair from. The scrub must mark the set damaged and quarantine its
// media BEFORE any restore touches it, the planner must route the
// restore around the damaged set (an older intact generation), and the
// rerouted restore must be byte-identical to the state that chain
// dumped. The full chain stays reachable only through the explicit
// salvage escape hatch.
func TestChaosScrubDegradeRouteAround(t *testing.T) {
	for seed := int64(1); seed <= int64(seedCount()); seed++ {
		for _, engine := range []catalog.Engine{catalog.Logical, catalog.Image} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, engine), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := newScrubRig(t, engine, false)

				// Full, then two chained incrementals.
				var states []map[string]workload.Entry
				for run := 0; run < 3; run++ {
					if run > 0 {
						if _, err := r.f.FS.WriteFile(ctx, "/data/report.txt",
							[]byte(fmt.Sprintf("revision %d", run)), 0644); err != nil {
							t.Fatal(err)
						}
					}
					states = append(states, r.digest(t))
					if _, err := r.s.RunN(ctx, 1); err != nil {
						t.Fatalf("run %d: %v", run, err)
					}
				}

				// Rot the middle incremental: every later set chains
				// through it.
				vol := r.rot(t, 2, rng.Intn(2) == 0)
				rep, err := r.scr.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Damaged) != 1 || rep.Damaged[0] != 2 {
					t.Fatalf("scrub did not degrade set 2: %+v", rep)
				}
				if len(rep.Quarantined) == 0 {
					t.Fatalf("no media quarantined: %+v", rep)
				}
				v, _ := r.pool.Volume(vol)
				if v.State != media.Quarantined {
					t.Fatalf("volume %q state %s, want quarantined", vol, v.State)
				}
				if got, err := r.pool.Reclaim(1 << 50); err != nil || len(got) != 0 {
					t.Fatalf("Reclaim touched quarantined media: %v %v", got, err)
				}

				// Route around: the only undamaged chain is the bare full.
				plan, err := r.cat.Plan(catalog.PlanOptions{Engine: engine, FSID: "vol0"})
				if err != nil {
					t.Fatalf("plan did not route around damage: %v", err)
				}
				if len(plan.Steps) != 1 || plan.Steps[0].ID != 1 {
					t.Fatalf("rerouted plan = %s, want the level-0 set alone", plan)
				}
				opts := sched.RecoverOptions{}
				if engine == catalog.Logical {
					opts.Wipe = true
				}
				if _, err := sched.Recover(ctx, r.f, r.pool, plan, opts); err != nil {
					t.Fatalf("rerouted recover: %v", err)
				}
				if diffs := workload.DiffDigests(states[0], r.digest(t)); len(diffs) > 0 {
					t.Fatalf("rerouted restore differs from the full's state: %v", diffs)
				}

				// Rot the full as well: now every chain passes through
				// damage, and the scrub must degrade it too.
				r.rot(t, 1, rng.Intn(2) == 0)
				rep2, err := r.scr.Run(ctx)
				if err != nil {
					t.Fatal(err)
				}
				if len(rep2.Damaged) != 1 || rep2.Damaged[0] != 1 {
					t.Fatalf("scrub did not degrade set 1: %+v", rep2)
				}
				// With no undamaged chain left the planner refuses with
				// the typed error naming every blocked chain...
				_, err = r.cat.Plan(catalog.PlanOptions{Engine: engine, FSID: "vol0"})
				var up *catalog.UnplannableError
				if !errors.As(err, &up) {
					t.Fatalf("plan through damage: want *UnplannableError, got %v", err)
				}
				if len(up.Blocked) == 0 {
					t.Fatalf("UnplannableError names no blocked chains: %v", up)
				}
				// ...and the salvage escape hatch still yields the chain.
				p2, err := r.cat.Plan(catalog.PlanOptions{
					Engine: engine, FSID: "vol0", IncludeDamaged: true,
				})
				if err != nil {
					t.Fatalf("IncludeDamaged plan: %v", err)
				}
				if len(p2.Steps) != 3 {
					t.Fatalf("salvage plan = %s, want the 3-step chain", p2)
				}
			})
		}
	}
}
