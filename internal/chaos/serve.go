package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ndmp"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/transport"
)

// ServeScenario is a multi-tenant service chaos run: several tenants
// push concurrently through one session-registry host on a drive-pool
// scheduler, and one victim tenant's link is hard-cut mid-dump. The
// victim must redial and replay to a byte-identical stream; every
// other tenant must complete untouched — no reconnects, no replays,
// no cross-session state bleed — which is exactly the isolation the
// per-(session, stream) registry exists to provide.
type ServeScenario struct {
	Seed    int64
	Tenants int // concurrent pushing tenants (min 3)
	Drives  int // drive-pool slots (default Tenants-1: one tenant queues)
	Records int // records per tenant (default 48)
	CutAt   int // cut the victim's link after this many records (default Records/2)
}

// ServeChaosReport is the outcome of a ServeScenario.
type ServeChaosReport struct {
	Victim     string
	Reconnects int // victim session redials
	Replayed   int // victim record retransmissions
	Identical  bool
	Diffs      []string // per-tenant stream mismatches
	Host       ndmp.HostStats
	Pool       sched.DrivePoolStats
}

// chaosSink accumulates one stream's records in memory for the
// byte-identical comparison against what its tenant wrote.
type chaosSink struct {
	recs [][]byte
}

func (s *chaosSink) WriteRecord(rec []byte) error {
	s.recs = append(s.recs, append([]byte(nil), rec...))
	return nil
}
func (s *chaosSink) NextVolume() error { return nil }

// RunServe executes one multi-tenant cut scenario on a virtual clock.
func RunServe(s ServeScenario) (*ServeChaosReport, error) {
	if s.Tenants < 3 {
		s.Tenants = 3
	}
	if s.Drives <= 0 {
		s.Drives = s.Tenants - 1
	}
	if s.Records <= 0 {
		s.Records = 48
	}
	if s.CutAt <= 0 || s.CutAt >= s.Records {
		s.CutAt = s.Records / 2
	}
	rep := &ServeChaosReport{Victim: "tenant00"}
	env := sim.NewEnv()
	pool := sched.NewDrivePool(sched.DrivePoolConfig{
		Drives: s.Drives, MaxQueue: s.Tenants, Now: env.Now,
		StaleAfter: 5 * time.Second,
	})
	sinks := make(map[string]*chaosSink)
	host := ndmp.NewHost(func(h ndmp.Hello) (ndmp.Sink, error) {
		sk := &chaosSink{}
		sinks[h.Tenant] = sk
		return sk, nil
	})
	host.Gate = pool
	defer host.Close()

	rng := rand.New(rand.NewSource(s.Seed))
	wrote := make(map[string][][]byte)
	for i := 0; i < s.Tenants; i++ {
		recs := make([][]byte, s.Records)
		for r := range recs {
			rec := make([]byte, 512+rng.Intn(1536))
			rng.Read(rec)
			recs[r] = rec
		}
		wrote[fmt.Sprintf("tenant%02d", i)] = recs
	}

	errs := make([]error, s.Tenants)
	stats := make([]ndmp.SessionStats, s.Tenants)
	for i := 0; i < s.Tenants; i++ {
		i := i
		tenant := fmt.Sprintf("tenant%02d", i)
		l := transport.NewLink(transport.DefaultParams())
		l.B().Attach(host.NewConn().HandleFrame)
		env.Spawn(tenant, func(p *sim.Proc) {
			l.A().Bind(p)
			// The dialer heals the victim's cut: the operator plugged the
			// cable back in by the time the session redials.
			dial := func() (transport.Conn, error) {
				if l.Down() {
					l.Heal()
				}
				return l.A(), nil
			}
			sess, err := ndmp.Dial(dial, ndmp.Config{
				Kind: ndmp.KindLogical, Session: uint64(i + 1), Tenant: tenant,
				Window: 8, Proc: p,
				HeartbeatEvery: 50 * time.Millisecond,
				DeadAfter:      30 * time.Second, // covers the queue wait
			})
			if err != nil {
				errs[i] = err
				return
			}
			for r, rec := range wrote[tenant] {
				if i == 0 && r == s.CutAt {
					// The victim's cable is pulled with its window in
					// flight; everyone else's links stay clean.
					l.Cut()
				}
				if err := sess.WriteRecord(rec); err != nil {
					errs[i] = err
					return
				}
			}
			if err := sess.Close(); err != nil {
				errs[i] = err
				return
			}
			stats[i] = sess.Stats()
		})
	}
	env.Run()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("chaos serve: tenant%02d: %w", i, err)
		}
	}

	rep.Reconnects = stats[0].Reconnects
	rep.Replayed = stats[0].Replayed
	for i := 1; i < s.Tenants; i++ {
		if stats[i].Reconnects != 0 {
			rep.Diffs = append(rep.Diffs,
				fmt.Sprintf("tenant%02d reconnected %d times without a fault on its link",
					i, stats[i].Reconnects))
		}
	}
	for tenant, recs := range wrote {
		sk := sinks[tenant]
		if sk == nil {
			rep.Diffs = append(rep.Diffs, tenant+": no sink opened")
			continue
		}
		if len(sk.recs) != len(recs) {
			rep.Diffs = append(rep.Diffs, fmt.Sprintf("%s: %d records landed, wrote %d",
				tenant, len(sk.recs), len(recs)))
			continue
		}
		for r := range recs {
			if !bytes.Equal(sk.recs[r], recs[r]) {
				rep.Diffs = append(rep.Diffs, fmt.Sprintf("%s: record %d differs", tenant, r))
				break
			}
		}
	}
	rep.Identical = len(rep.Diffs) == 0
	rep.Host = host.Stats()
	rep.Pool = pool.Stats()
	return rep, nil
}
