package chaos

import (
	"testing"

	"repro/internal/transport"
)

func runNetScenario(t *testing.T, s NetScenario) *NetReport {
	t.Helper()
	rep, err := RunNet(ctx, s)
	if err != nil {
		t.Fatalf("%s seed %d: %v", s.Engine, s.Seed, err)
	}
	if !rep.Identical {
		t.Fatalf("%s seed %d: restored tree differs: %v", s.Engine, s.Seed, rep.DiffPaths)
	}
	return rep
}

// TestChaosNetPartitionedDumps is the acceptance scenario for the
// remote session layer: a full logical dump and a full image dump,
// each through a link that is hard-partitioned three times and has a
// frame corrupted in flight. Every fault is absorbed inside the
// session by reconnect-and-replay — the engines never even notice, so
// no checkpoint resume is needed and the restored volume must be
// byte-identical.
func TestChaosNetPartitionedDumps(t *testing.T) {
	cases := []struct {
		engine   Engine
		cuts     []int // frame indexes; logical streams ~45 records, image ~8
		corrupt  []int
		capacity int64
	}{
		{Logical, []int{15, 40, 70}, []int{23}, 128 << 10},
		{Physical, []int{6, 12, 20}, []int{9}, 256 << 10},
	}
	for _, c := range cases {
		rep := runNetScenario(t, NetScenario{
			Seed:   11,
			Engine: c.engine,
			Net: transport.FaultConfig{
				CutAfterFrames:  c.cuts,
				CorruptAtFrames: c.corrupt,
			},
			TapeCapacity: c.capacity,
			Cartridges:   10,
			Files:        30,
		})
		if rep.Partitions < len(c.cuts) {
			t.Errorf("%s: %d partitions injected, want at least %d",
				c.engine, rep.Partitions, len(c.cuts))
		}
		if rep.Net.Corrupted < 1 {
			t.Errorf("%s: no frame was corrupted", c.engine)
		}
		if rep.Reconnects < len(c.cuts) {
			t.Errorf("%s: %d reconnects, want at least %d (one per cut)",
				c.engine, rep.Reconnects, len(c.cuts))
		}
		if rep.Replayed == 0 {
			t.Errorf("%s: cuts and corruption caused no record replay", c.engine)
		}
		if rep.Resumes != 0 {
			t.Errorf("%s: recoverable link faults forced %d engine resumes; the session should have absorbed them",
				c.engine, rep.Resumes)
		}
		if rep.Host.NextVols < 1 {
			t.Errorf("%s: tape capacity never forced a volume switch over the wire", c.engine)
		}
	}
}

// TestChaosNetDeadPeerResume black-holes the host's responses
// mid-dump: the client's frames still arrive but no ack ever returns.
// The session must declare the peer dead within its deadline and the
// engine must fall back to PR 2's checkpoint Resume on a fresh
// stream; the streams concatenate to a byte-identical restore. The
// one-way partition is detected at the next checkpoint Sync, which is
// exactly why checkpoints drain the window — a checkpoint the host
// never acknowledged must not be resumed from.
func TestChaosNetDeadPeerResume(t *testing.T) {
	cases := []struct {
		engine     Engine
		partitions []int // cumulative accepted records
	}{
		{Logical, []int{18}},
		{Physical, []int{5}},
	}
	for _, c := range cases {
		rep := runNetScenario(t, NetScenario{
			Seed:                  12,
			Engine:                c.engine,
			PartitionAfterRecords: c.partitions,
			Files:                 30,
		})
		if rep.Partitions < len(c.partitions) {
			t.Errorf("%s: partition was never injected", c.engine)
		}
		if rep.Resumes < 1 {
			t.Errorf("%s: dead peer never forced a checkpoint resume", c.engine)
		}
	}
}

// TestChaosNetLossyLink sweeps seeds over a probabilistically hostile
// link — drops, duplicates, corruption, reordering — with no scheduled
// faults. The session's windowed replay must deliver exactly-once,
// in-order records regardless, for both engines.
func TestChaosNetLossyLink(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		injected := 0
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep := runNetScenario(t, NetScenario{
				Seed:   seed,
				Engine: engine,
				Net: transport.FaultConfig{
					Drop: 0.10, Duplicate: 0.05, Corrupt: 0.05, Reorder: 0.10,
					MaxFaults: 60,
				},
				Files: 24,
			})
			injected += rep.Net.Dropped + rep.Net.Duplicated + rep.Net.Corrupted + rep.Net.Reordered
		}
		if injected == 0 {
			t.Errorf("%s: fault profile injected nothing across all seeds", engine)
		}
	}
}
