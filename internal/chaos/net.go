package chaos

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/logical"
	"repro/internal/ndmp"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/transport"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// NetScenario is one seeded network-fault chaos run: the dump engine
// on a clean filesystem drives its stream through an ndmp session to
// a remote tape host across a hostile link. There are no storage or
// media faults — every difference after restore is the network layer
// failing to deliver exactly-once, in-order records, so the invariant
// is strict: the restored tree must be byte-identical.
//
// Faults come at two severities. Link faults (drops, duplicates,
// corrupt frames, reorders, hard cuts from Net.CutAfterFrames) are
// recoverable: the session replays its window after a gap nack or a
// reconnect and the dump never notices. One-way partitions
// (PartitionAfterRecords) black-hole the host's acks while the
// client's frames still arrive; the session declares the peer dead
// within its deadline and the engine falls back to PR 2's checkpoint
// Resume machinery on a fresh stream — the two fault-tolerance layers
// composed, which is the point of the scenario.
type NetScenario struct {
	Seed   int64
	Engine Engine

	// Net arms the link. CutAfterFrames entries are two-way partitions
	// healed by the session's redial; CorruptAtFrames mangle frames in
	// flight and are absorbed by replay.
	Net transport.FaultConfig
	// PartitionAfterRecords lists cumulative accepted-record counts;
	// when the dump passes one, the host→client direction is
	// black-holed until the next attempt heals it. Each entry forces
	// one dead-peer detection and one engine-level resume.
	PartitionAfterRecords []int
	// Window is the session send window (0 = ndmp default).
	Window int

	TapeCapacity int64 // per cartridge on the remote host, 0 = unlimited
	Cartridges   int   // per stream drive, min 1

	Files           int
	MeanFileSize    int
	CheckpointEvery int // files (logical) or blocks (physical)
	MaxResumes      int
}

// NetReport is the outcome of a network chaos scenario.
type NetReport struct {
	Engine Engine
	Seed   int64

	Resumes    int // engine-level checkpoint resumes (streams - 1)
	Reconnects int // session redials that succeeded
	Replayed   int // record retransmissions (gap, EOM or reconnect)
	Partitions int // hard cuts plus injected one-way partitions
	Net        transport.FaultStats
	Host       ndmp.HostStats

	DiffPaths []string
	Identical bool

	// Metrics is the run's final registry snapshot: the host's totals
	// across all streams, plus the last stream's session counters
	// (each re-dial re-registers its collectors under the session id).
	Metrics []obs.Point
}

// netSink adapts a session to the engines' sink contract while
// injecting the scheduled one-way partitions: after the k-th accepted
// record the host's responses stop arriving, and the next sound the
// client hears is its own dead-peer deadline.
type netSink struct {
	sess     *ndmp.Session
	link     *transport.Link
	written  *int
	schedule *[]int
	injected *int
}

func (n *netSink) WriteRecord(rec []byte) error {
	if err := n.sess.WriteRecord(rec); err != nil {
		return err
	}
	*n.written++
	if s := *n.schedule; len(s) > 0 && *n.written >= s[0] {
		n.link.PartitionOneWay(false)
		*n.schedule = s[1:]
		*n.injected++
	}
	return nil
}

func (n *netSink) NextVolume() error { return n.sess.NextVolume() }

// Sync forwards the engines' checkpoint drain to the session, which
// is what makes a checkpoint mean "acknowledged durable" over the
// wire. Without it a resume could trust a checkpoint the host never
// received and silently lose the records in between.
func (n *netSink) Sync() error { return n.sess.Sync() }

// RunNet executes one network scenario. An error means the scenario
// could not be evaluated; callers check Report.Identical for the
// invariant.
func RunNet(ctx context.Context, s NetScenario) (*NetReport, error) {
	if s.Files <= 0 {
		s.Files = 24
	}
	if s.MeanFileSize <= 0 {
		s.MeanFileSize = 12 << 10
	}
	if s.Cartridges < 1 {
		s.Cartridges = 1
	}
	if s.CheckpointEvery <= 0 {
		if s.Engine == Physical {
			s.CheckpointEvery = 32
		} else {
			s.CheckpointEvery = 2
		}
	}
	if s.MaxResumes <= 0 {
		s.MaxResumes = 4
	}
	rep := &NetReport{Engine: s.Engine, Seed: s.Seed}
	reg := obs.NewRegistry()
	defer func() { rep.Metrics = reg.Snapshot() }()

	// Clean source filesystem: the network is the only chaos here.
	const blocks = 8192
	dev := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{CacheBlocks: 32})
	if err != nil {
		return nil, err
	}
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: s.Seed, Files: s.Files, DirFanout: 5, MeanFileSize: s.MeanFileSize,
		Symlinks: s.Files / 10, Hardlinks: s.Files / 15,
	}); err != nil {
		return nil, err
	}
	if err := fs.CreateSnapshot(ctx, "chaos"); err != nil {
		return nil, err
	}
	view, err := fs.SnapshotView("chaos")
	if err != nil {
		return nil, err
	}
	want, err := workload.TreeDigest(ctx, view, "/")
	if err != nil {
		return nil, err
	}

	// Remote tape host: one drive per stream, so a resumed dump's
	// fresh stream lands on fresh media exactly like the offline
	// scenarios' replacement drives.
	fc := s.Net
	if fc.Seed == 0 {
		fc.Seed = s.Seed
	}
	link := transport.NewLink(transport.DefaultParams())
	link.Arm(fc)
	type streamTape struct {
		drive *tape.Drive
		sink  *countingSink
		label string
	}
	var tapes []*streamTape
	host := ndmp.NewHost(func(h ndmp.Hello) (ndmp.Sink, error) {
		p := tape.DefaultParams()
		p.Capacity = s.TapeCapacity
		d := tape.NewDrive(nil, fmt.Sprintf("rt%d", h.Stream), p)
		for i := 0; i < s.Cartridges; i++ {
			d.AddCartridges(tape.NewCartridge(fmt.Sprintf("rt%d-%d", h.Stream, i)))
		}
		if err := d.Load(nil); err != nil {
			return nil, err
		}
		st := &streamTape{drive: d, label: fmt.Sprintf("rt%d-0", h.Stream)}
		st.sink = &countingSink{DriveSink: &logical.DriveSink{Drive: d}}
		tapes = append(tapes, st)
		return st.sink, nil
	})
	host.RegisterMetrics(reg)
	link.B().Attach(host.HandleFrame)
	dial := func() (transport.Conn, error) {
		if link.Down() {
			link.Heal()
		}
		return link.A(), nil
	}

	written := 0
	schedule := append([]int(nil), s.PartitionAfterRecords...)
	kind := byte(ndmp.KindLogical)
	var lgOpts logical.DumpOptions
	var phOpts physical.DumpOptions
	if s.Engine == Logical {
		lgOpts = logical.DumpOptions{View: view, Label: "chaos", ReadAhead: 8, CheckpointEvery: s.CheckpointEvery}
	} else {
		kind = ndmp.KindImage
		phOpts = physical.DumpOptions{FS: fs, Vol: dev, SnapName: "chaos", CheckpointEvery: s.CheckpointEvery}
	}

	var vols []int
	for attempt := 0; ; attempt++ {
		if attempt > s.MaxResumes {
			return nil, fmt.Errorf("chaos: %s dump did not converge after %d resumes", s.Engine, s.MaxResumes)
		}
		// A one-way partition from the previous attempt is an operator
		// problem solved before the retry; redials heal hard cuts
		// themselves.
		link.Heal()
		sess, err := ndmp.Dial(dial, ndmp.Config{
			Kind: kind, Session: uint64(s.Seed) + 1, Stream: attempt,
			Window: s.Window, Ctx: ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: dial stream %d: %w", attempt, err)
		}
		sess.RegisterMetrics(reg)
		sink := &netSink{sess: sess, link: link, written: &written, schedule: &schedule, injected: &rep.Partitions}

		var lgCkpt *logical.Checkpoint
		var phCkpt *physical.Checkpoint
		if s.Engine == Logical {
			lgOpts.Sink = sink
			var stats *logical.DumpStats
			stats, err = logical.Dump(ctx, lgOpts)
			if stats != nil {
				lgCkpt = stats.Checkpoint
			}
		} else {
			phOpts.Sink = sink
			var stats *physical.DumpStats
			stats, err = physical.Dump(ctx, phOpts)
			if stats != nil {
				phCkpt = stats.Checkpoint
			}
		}
		if err == nil {
			err = sess.Close()
		}
		st := sess.Stats()
		rep.Reconnects += st.Reconnects
		rep.Replayed += st.Replayed
		if err == nil {
			rep.Resumes = attempt
			vols = append(vols, tapes[len(tapes)-1].sink.vols+1)
			break
		}
		if !errors.Is(err, ndmp.ErrPeerDead) && !errors.Is(err, ndmp.ErrSessionLost) {
			return nil, fmt.Errorf("chaos: unrecoverable %s dump fault: %w", s.Engine, err)
		}
		vols = append(vols, tapes[len(tapes)-1].sink.vols+1)
		if lgCkpt == nil && phCkpt == nil {
			// Dead before the first acknowledged checkpoint: restart
			// clean, discarding the partial streams.
			tapes = tapes[:0]
			vols = vols[:0]
			lgOpts.Resume, phOpts.Resume = nil, nil
			continue
		}
		lgOpts.Resume, phOpts.Resume = lgCkpt, phCkpt
	}
	rep.Net = link.Stats()
	rep.Partitions += rep.Net.Cuts
	rep.Host = host.Stats()

	// Restore the streams in order from the per-stream drives: every
	// stream but the last tore when its session died and is applied in
	// salvage mode, exactly like the offline-drive scenarios.
	rewind := func(i int) *logical.DriveSource {
		d := tapes[i].drive
		for d.Loaded().Label != tapes[i].label {
			if err := d.Load(nil); err != nil {
				break
			}
		}
		d.Rewind(nil)
		return logical.NewDriveSource(d, nil, vols[i])
	}
	var got map[string]workload.Entry
	if s.Engine == Logical {
		dst, err := wafl.Mkfs(ctx, storage.NewMemDevice(blocks), nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		for i := range tapes {
			if _, err := logical.Restore(ctx, logical.RestoreOptions{
				FS: dst, Source: rewind(i), KernelIntegrated: true,
				Salvage: i < len(tapes)-1,
			}); err != nil {
				return nil, fmt.Errorf("chaos: restoring stream %d/%d: %w", i+1, len(tapes), err)
			}
		}
		got, err = workload.TreeDigest(ctx, dst.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
	} else {
		target := storage.NewMemDevice(dev.NumBlocks())
		for i := range tapes {
			if _, err := physical.Restore(ctx, physical.RestoreOptions{
				Vol: target, Source: rewind(i), Salvage: i < len(tapes)-1,
			}); err != nil {
				return nil, fmt.Errorf("chaos: restoring image stream %d/%d: %w", i+1, len(tapes), err)
			}
		}
		dst, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		got, err = workload.TreeDigest(ctx, dst.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
	}

	for p, e := range want {
		if g, ok := got[p]; !ok || g != e {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	rep.Identical = len(rep.DiffPaths) == 0
	return rep, nil
}
