package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/dumpfmt"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// ParallelScenario drives one drive of an N-drive parallel dump
// offline mid-stream with a persistent fault. The property under test
// is the parallel pipeline's isolation contract: sibling shards run to
// completion, the faulted shard comes back with a per-shard resume
// checkpoint, a single-shard Dump resumes only that slice onto a
// replacement drive, and the salvaged torn stream plus the
// continuation plus the sibling streams restore byte-identically.
type ParallelScenario struct {
	Seed   int64
	Engine Engine
	// Drives is the parallel fan-out width (default 4). The faulted
	// drive index is seed-derived.
	Drives int
	// OfflineAfterRecords arms the persistent fault: the chosen drive
	// latches offline after that many tape records. Defaults are
	// engine-specific (10 logical, 5 physical — image streams pack far
	// more data per record) so the fault usually lands after the first
	// durable checkpoint.
	OfflineAfterRecords int

	Files           int
	MeanFileSize    int
	CheckpointEvery int // files (logical) or blocks (physical)
}

// ParallelReport is the outcome of a ParallelScenario.
type ParallelReport struct {
	Engine  Engine
	Seed    int64
	Faulted int // drive index that went offline

	// Siblings counts shards that completed despite the fault
	// (invariant: Drives-1).
	Siblings int
	// Resumed is true when the torn shard carried a durable checkpoint
	// with real progress (at least one file or block on media), so the
	// continuation dump skipped work instead of redumping the shard.
	Resumed bool
	// Skipped is what the resume skipped: files (logical) or blocks
	// (physical).
	Skipped int

	Identical bool
	DiffPaths []string
}

// RunParallel executes one parallel-shard-fault scenario. An error
// means the scenario could not be evaluated; callers check
// Report.Identical and Report.Siblings for the invariant.
func RunParallel(ctx context.Context, s ParallelScenario) (*ParallelReport, error) {
	if s.Drives <= 1 {
		s.Drives = 4
	}
	if s.OfflineAfterRecords <= 0 {
		if s.Engine == Physical {
			s.OfflineAfterRecords = 4
		} else {
			s.OfflineAfterRecords = 10
		}
	}
	if s.Files <= 0 {
		s.Files = 48
	}
	if s.MeanFileSize <= 0 {
		s.MeanFileSize = 12 << 10
	}
	if s.CheckpointEvery <= 0 {
		if s.Engine == Physical {
			s.CheckpointEvery = 16
		} else {
			s.CheckpointEvery = 2
		}
	}
	rep := &ParallelReport{Engine: s.Engine, Seed: s.Seed, Faulted: int(s.Seed) % s.Drives}

	// Source filesystem: clean storage — the faults in this scenario
	// live on the tape side only.
	const blocks = 16384
	dev := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: s.Seed, Files: s.Files, DirFanout: 5, MeanFileSize: s.MeanFileSize,
		Symlinks: s.Files / 10, Hardlinks: s.Files / 15,
	}); err != nil {
		return nil, err
	}
	if err := fs.CreateSnapshot(ctx, "par"); err != nil {
		return nil, err
	}
	view, err := fs.SnapshotView("par")
	if err != nil {
		return nil, err
	}
	want, err := workload.TreeDigest(ctx, view, "/")
	if err != nil {
		return nil, err
	}

	drives := make([]*tape.Drive, s.Drives)
	for k := range drives {
		drives[k] = tape.NewDrive(nil, fmt.Sprintf("t%d", k), tape.DefaultParams())
		drives[k].AddCartridges(tape.NewCartridge(fmt.Sprintf("c%d", k)))
		if err := drives[k].Load(nil); err != nil {
			return nil, err
		}
	}
	drives[rep.Faulted].InjectFaults(tape.FaultConfig{OfflineAfterRecords: s.OfflineAfterRecords})

	cont := tape.NewDrive(nil, "cont", tape.DefaultParams())
	cont.AddCartridges(tape.NewCartridge("cc"))
	if err := cont.Load(nil); err != nil {
		return nil, err
	}

	var restored *wafl.View
	if s.Engine == Logical {
		restored, err = runParallelLogical(ctx, s, rep, view, drives, cont)
	} else {
		restored, err = runParallelPhysical(ctx, s, rep, fs, dev, drives, cont)
	}
	if err != nil {
		return nil, err
	}
	got, err := workload.TreeDigest(ctx, restored, "/")
	if err != nil {
		return nil, err
	}
	for p, e := range want {
		if g, ok := got[p]; !ok || g != e {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	sort.Strings(rep.DiffPaths)
	rep.Identical = len(rep.DiffPaths) == 0
	return rep, nil
}

// checkShards verifies the isolation contract on the failed dump's
// per-shard outcomes and returns the torn shard's checkpoint identity
// check result.
func checkShards(rep *ParallelReport, nShards int, shardErr func(k int) error, shardBytes func(k int) int64) error {
	for k := 0; k < nShards; k++ {
		if k == rep.Faulted {
			if shardErr(k) == nil {
				return fmt.Errorf("chaos: faulted shard %d reported success", k)
			}
			if !errors.Is(shardErr(k), tape.ErrOffline) {
				return fmt.Errorf("chaos: faulted shard %d failed with %v, want offline", k, shardErr(k))
			}
			continue
		}
		if err := shardErr(k); err != nil {
			return fmt.Errorf("chaos: sibling shard %d failed too: %w", k, err)
		}
		if shardBytes(k) == 0 {
			return fmt.Errorf("chaos: sibling shard %d wrote nothing", k)
		}
		rep.Siblings++
	}
	return nil
}

func runParallelLogical(ctx context.Context, s ParallelScenario, rep *ParallelReport, view *wafl.View, drives []*tape.Drive, cont *tape.Drive) (*wafl.View, error) {
	sinks := make([]dumpfmt.Sink, len(drives))
	for k := range sinks {
		sinks[k] = &logical.DriveSink{Drive: drives[k]}
	}
	stats, err := logical.Dump(ctx, logical.DumpOptions{
		View: view, Label: "chaos-par", ReadAhead: 8, Readers: 2,
		Sinks: sinks, CheckpointEvery: s.CheckpointEvery,
	})
	if err == nil {
		return nil, fmt.Errorf("chaos: fault never fired (stream too short for OfflineAfterRecords=%d)", s.OfflineAfterRecords)
	}
	if !errors.Is(err, tape.ErrOffline) {
		return nil, fmt.Errorf("chaos: parallel dump failed outside the armed fault: %w", err)
	}
	if err := checkShards(rep, len(drives),
		func(k int) error { return stats.ShardResults[k].Err },
		func(k int) int64 { return stats.ShardResults[k].BytesWritten }); err != nil {
		return nil, err
	}

	// Operator swaps in the replacement drive; the continuation dump
	// resumes only the torn shard's slice of the file list.
	drives[rep.Faulted].SetOffline(false)
	drives[rep.Faulted].Flush(nil)
	ckpt := stats.ShardResults[rep.Faulted].Checkpoint
	// A checkpoint with LastIno 0 means the fault landed before the
	// first Phase IV file was durably synced: the torn stream may tear
	// inside the directory section (which salvage cannot parse) and
	// the continuation redumps the whole shard, so the partial stream
	// is discarded rather than salvaged.
	rep.Resumed = ckpt != nil && ckpt.LastIno > 0
	stats2, err := logical.Dump(ctx, logical.DumpOptions{
		View: view, Label: "chaos-par", ReadAhead: 8,
		Sink: &logical.DriveSink{Drive: cont}, Shard: rep.Faulted, Shards: len(drives),
		Resume: ckpt, CheckpointEvery: s.CheckpointEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: resuming torn shard: %w", err)
	}
	rep.Skipped = stats2.FilesSkipped
	cont.Flush(nil)

	// Restore: the complete sibling streams, the torn stream in
	// salvage mode (only useful if the resume skipped past its files),
	// then the continuation.
	dst, err := wafl.Mkfs(ctx, storage.NewMemDevice(16384), nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	apply := func(d *tape.Drive, salvage bool) error {
		d.Rewind(nil)
		_, err := logical.Restore(ctx, logical.RestoreOptions{
			FS: dst, Source: logical.NewDriveSource(d, nil, 1),
			KernelIntegrated: true, Salvage: salvage,
		})
		return err
	}
	for k, d := range drives {
		if k == rep.Faulted {
			if !rep.Resumed {
				continue // nothing durable before the fault; the continuation has it all
			}
			if err := apply(d, true); err != nil {
				return nil, fmt.Errorf("chaos: salvaging torn stream: %w", err)
			}
			continue
		}
		if err := apply(d, false); err != nil {
			return nil, fmt.Errorf("chaos: restoring sibling stream %d: %w", k, err)
		}
	}
	if err := apply(cont, false); err != nil {
		return nil, fmt.Errorf("chaos: restoring continuation stream: %w", err)
	}
	return dst.ActiveView(), nil
}

func runParallelPhysical(ctx context.Context, s ParallelScenario, rep *ParallelReport, fs *wafl.FS, dev storage.Device, drives []*tape.Drive, cont *tape.Drive) (*wafl.View, error) {
	sinks := make([]physical.Sink, len(drives))
	for k := range sinks {
		sinks[k] = &logical.DriveSink{Drive: drives[k]}
	}
	stats, err := physical.Dump(ctx, physical.DumpOptions{
		FS: fs, Vol: dev, SnapName: "par", Sinks: sinks,
		Readers: 2, ReadAhead: 2, CheckpointEvery: s.CheckpointEvery,
	})
	if err == nil {
		return nil, fmt.Errorf("chaos: fault never fired (stream too short for OfflineAfterRecords=%d)", s.OfflineAfterRecords)
	}
	if !errors.Is(err, tape.ErrOffline) {
		return nil, fmt.Errorf("chaos: parallel image dump failed outside the armed fault: %w", err)
	}
	if err := checkShards(rep, len(drives),
		func(k int) error { return stats.ShardResults[k].Err },
		func(k int) int64 { return stats.ShardResults[k].BytesWritten }); err != nil {
		return nil, err
	}

	drives[rep.Faulted].SetOffline(false)
	drives[rep.Faulted].Flush(nil)
	ckpt := stats.ShardResults[rep.Faulted].Checkpoint
	// BlocksDone 0 = nothing durable before the fault; the torn stream
	// is superseded entirely by the continuation and is discarded.
	rep.Resumed = ckpt != nil && ckpt.BlocksDone > 0
	stats2, err := physical.Dump(ctx, physical.DumpOptions{
		FS: fs, Vol: dev, SnapName: "par",
		Sink: &logical.DriveSink{Drive: cont}, Shard: rep.Faulted, Shards: len(drives),
		Resume: ckpt, CheckpointEvery: s.CheckpointEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: resuming torn image shard: %w", err)
	}
	rep.Skipped = stats2.BlocksSkipped
	cont.Flush(nil)

	// Restore: all first-pass streams in one salvage-tolerant parallel
	// call (the torn stream's tail is dropped), then the continuation.
	target := storage.NewMemDevice(dev.NumBlocks())
	srcs := make([]physical.Source, 0, len(drives))
	for k, d := range drives {
		if k == rep.Faulted && !rep.Resumed {
			continue // partial stream superseded entirely by the continuation
		}
		d.Rewind(nil)
		srcs = append(srcs, logical.NewDriveSource(d, nil, 1))
	}
	if _, err := physical.Restore(ctx, physical.RestoreOptions{
		Vol: target, Sources: srcs, Salvage: true,
	}); err != nil {
		return nil, fmt.Errorf("chaos: restoring faulted image set: %w", err)
	}
	cont.Rewind(nil)
	if _, err := physical.Restore(ctx, physical.RestoreOptions{
		Vol: target, Source: logical.NewDriveSource(cont, nil, 1),
	}); err != nil {
		return nil, fmt.Errorf("chaos: restoring image continuation: %w", err)
	}
	dst, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	return dst.ActiveView(), nil
}
