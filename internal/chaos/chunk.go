package chaos

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/chunk"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// ChunkScenario crashes a dedup-encoded dump mid-stream: the chunk
// media dies partway through day two's full, the catalog journal is
// torn mid-frame, and the rig recovers and redumps. The invariants:
//
//   - recovery leaves refcounts consistent — every chunk a surviving
//     manifest names is still indexed;
//   - the sweep after recovery erases only zero-ref chunks (the
//     crashed dump's orphans), never one a live manifest references;
//   - the redump completes (cheaply, via hits against the survivors)
//     and every set restores byte-identical through the chunk layer.
type ChunkScenario struct {
	Seed    int64
	Engine  Engine
	Reverse bool // day-two dumps in reverse (RevDedup) mode

	Files        int
	MeanFileSize int
	// FailAfter is the media append the crash lands on, counted from
	// the start of the day-two dump; 0 derives one from Seed.
	FailAfter int
}

// ChunkReport is the outcome of a ChunkScenario.
type ChunkReport struct {
	Engine         Engine
	Seed           int64
	TornBytes      int64 // catalog journal bytes lost to the torn tail
	OrphansSwept   int   // zero-ref chunks the post-recovery sweep erased
	RedumpHits     int64 // dedup hits the redump scored against survivors
	RedumpRewrites int64 // reverse-mode rewrites of surviving chunks
	Identical      bool  // every surviving set restored byte-identical
	StoredBytes    int64 // live chunk bytes after redump + sweep
	LogicalBytes   int64 // raw stream bytes across both sets
	ManifestsLive  int
}

// RunChunkCrash executes one scenario. An error means the scenario
// could not be evaluated; invariant violations also surface as errors
// (they are hard failures, not report fields — except Identical, which
// callers assert).
func RunChunkCrash(ctx context.Context, s ChunkScenario) (*ChunkReport, error) {
	if s.Files <= 0 {
		s.Files = 24
	}
	if s.MeanFileSize <= 0 {
		s.MeanFileSize = 12 << 10
	}
	rep := &ChunkReport{Engine: s.Engine, Seed: s.Seed}

	const blocks = 8192
	dev := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	paths, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: s.Seed, Files: s.Files, DirFanout: 5, MeanFileSize: s.MeanFileSize,
	})
	if err != nil {
		return nil, err
	}
	if err := fs.CreateSnapshot(ctx, "day1"); err != nil {
		return nil, err
	}

	store := &catalog.MemStore{}
	cat, err := catalog.Open(store)
	if err != nil {
		return nil, err
	}
	media := chunk.NewMemMedia("m0")

	// Day one: a clean full, manifest journaled with the set.
	m1, _, err := dedupDump(ctx, s, fs, dev, "day1", cat, media, false)
	if err != nil {
		return nil, fmt.Errorf("chaos: day-one dump: %w", err)
	}
	id1, err := recordChunkSet(cat, "day1", 100, m1)
	if err != nil {
		return nil, err
	}
	rep.LogicalBytes += m1.RawBytes

	// Mutate a handful of files, snapshot day two.
	rng := rand.New(rand.NewSource(s.Seed*31 + 7))
	for i := 0; i < 1+len(paths)/8; i++ {
		p := paths[rng.Intn(len(paths))]
		buf := make([]byte, 4<<10)
		rng.Read(buf)
		if _, err := fs.WriteFile(ctx, p, buf, 0644); err != nil {
			return nil, err
		}
	}
	if err := fs.CreateSnapshot(ctx, "day2"); err != nil {
		return nil, err
	}

	// Day two, take one: the media dies mid-dump. The writer is
	// abandoned — no Close, no manifest — exactly a crash.
	media.FailAfter = s.FailAfter
	if media.FailAfter <= 0 {
		media.FailAfter = 3 + int(rng.Int63n(20))
	}
	if _, _, err := dedupDump(ctx, s, fs, dev, "day2", cat, media, s.Reverse); err == nil {
		return nil, fmt.Errorf("chaos: injected media failure never surfaced")
	}
	media.FailAfter = 0

	// The crash also tears the catalog journal mid-frame: half of a
	// would-be record follows the last durable frame.
	store.Buf = append(store.Buf, []byte("CAT1\xee\x00\x00\x00half-a-frame")...)

	// Recovery: reopen the journal.
	cat2, err := catalog.Open(store)
	if err != nil {
		return nil, fmt.Errorf("chaos: catalog recovery: %w", err)
	}
	rep.TornBytes = cat2.TornBytes

	// Invariant: every chunk the surviving manifest names is indexed.
	m1r, ok := cat2.Manifest(id1)
	if !ok {
		return nil, fmt.Errorf("chaos: day-one manifest lost in recovery")
	}
	refs := cat2.ChunkRefcounts()
	for _, r := range m1r.Refs {
		if refs[r.Hash] < 1 {
			return nil, fmt.Errorf("chaos: recovered refcounts inconsistent: live ref %s counts %d", r.Hash, refs[r.Hash])
		}
	}

	// Day two, take two: redump on the recovered catalog. Survivors of
	// the crashed attempt are committed index entries with intact media
	// bytes, so the redump dedups against them.
	m2, ws, err := dedupDump(ctx, s, fs, dev, "day2", cat2, media, s.Reverse)
	if err != nil {
		return nil, fmt.Errorf("chaos: redump after recovery: %w", err)
	}
	rep.RedumpHits = ws.Hits
	rep.RedumpRewrites = ws.Rewrites
	if _, err := recordChunkSet(cat2, "day2", 200, m2); err != nil {
		return nil, err
	}
	rep.LogicalBytes += m2.RawBytes

	// Sweep the crashed attempt's orphans. Invariant: no victim is
	// referenced by a live manifest.
	live := make(map[chunk.Hash]bool)
	for _, r := range m1r.Refs {
		live[r.Hash] = true
	}
	for _, r := range m2.Refs {
		live[r.Hash] = true
	}
	swept, err := cat2.SweepChunks(func(e chunk.Entry) error { return media.Erase(e.Loc) })
	if err != nil {
		return nil, fmt.Errorf("chaos: sweep: %w", err)
	}
	for _, v := range swept {
		if live[v.Hash] {
			return nil, fmt.Errorf("chaos: sweep erased referenced chunk %s", v.Hash)
		}
	}
	rep.OrphansSwept = len(swept)
	_, rep.StoredBytes, _ = cat2.ChunkStats()
	rep.ManifestsLive = 2

	// Both sets must restore byte-identical through the chunk layer.
	rep.Identical = true
	for _, day := range []struct {
		snap string
		id   uint64
		m    chunk.Manifest
	}{{"day1", id1, m1r}, {"day2", 0, m2}} {
		want, err := snapDigest(ctx, fs, day.snap)
		if err != nil {
			return nil, err
		}
		got, err := dedupRestore(ctx, s, cat2, media, day.m, blocks)
		if err != nil {
			return nil, fmt.Errorf("chaos: restoring %s: %w", day.snap, err)
		}
		if diffs := workload.DiffDigests(want, got); len(diffs) > 0 {
			rep.Identical = false
		}
	}
	return rep, nil
}

// dedupDump runs one engine dump of snap through a fresh chunk.Writer
// into (index, media), returning the manifest and writer stats.
func dedupDump(ctx context.Context, s ChunkScenario, fs *wafl.FS, dev storage.Device, snap string, index chunk.Index, media chunk.Media, reverse bool) (chunk.Manifest, chunk.WriterStats, error) {
	w, err := chunk.NewWriter(chunk.WriterOptions{
		Index: index, Media: media, Reverse: reverse,
		Ctx: ctx, Engine: s.Engine.String(),
	})
	if err != nil {
		return chunk.Manifest{}, chunk.WriterStats{}, err
	}
	if s.Engine == Logical {
		view, err := fs.SnapshotView(snap)
		if err != nil {
			return chunk.Manifest{}, chunk.WriterStats{}, err
		}
		_, err = logical.Dump(ctx, logical.DumpOptions{
			View: view, Label: "chaos", ReadAhead: 8, CheckpointEvery: 4,
			Sink: w,
		})
		if err != nil {
			return chunk.Manifest{}, w.Stats(), err
		}
	} else {
		_, err = physical.Dump(ctx, physical.DumpOptions{
			FS: fs, Vol: dev, SnapName: snap, CheckpointEvery: 16, Sink: w,
		})
		if err != nil {
			return chunk.Manifest{}, w.Stats(), err
		}
	}
	m, err := w.Close()
	return m, w.Stats(), err
}

// dedupRestore restores a manifest through the chunk layer and digests
// the resulting tree.
func dedupRestore(ctx context.Context, s ChunkScenario, index chunk.Lookup, media chunk.Media, m chunk.Manifest, blocks int) (map[string]workload.Entry, error) {
	src := chunk.NewReader(index, media, m)
	if s.Engine == Logical {
		dst, err := wafl.Mkfs(ctx, storage.NewMemDevice(blocks), nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := logical.Restore(ctx, logical.RestoreOptions{
			FS: dst, Source: src, KernelIntegrated: true,
		}); err != nil {
			return nil, err
		}
		return workload.TreeDigest(ctx, dst.ActiveView(), "/")
	}
	target := storage.NewMemDevice(blocks)
	if _, err := physical.Restore(ctx, physical.RestoreOptions{Vol: target, Source: src}); err != nil {
		return nil, err
	}
	dst, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	return workload.TreeDigest(ctx, dst.ActiveView(), "/")
}

// recordChunkSet journals a dedup-encoded dump set and its manifest.
func recordChunkSet(cat *catalog.Catalog, snap string, date int64, m chunk.Manifest) (uint64, error) {
	id, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "chaos", Snap: snap,
		Date: date, Bytes: m.RawBytes, Media: []catalog.MediaRef{{Volume: "m0"}},
	})
	if err != nil {
		return 0, err
	}
	return id, cat.AppendManifest(id, m)
}

// snapDigest digests a snapshot's tree.
func snapDigest(ctx context.Context, fs *wafl.FS, snap string) (map[string]workload.Entry, error) {
	v, err := fs.SnapshotView(snap)
	if err != nil {
		return nil, err
	}
	return workload.TreeDigest(ctx, v, "/")
}
