package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/media"
	"repro/internal/sched"
	"repro/internal/workload"
)

// catalogRig is a filer with scheduled, catalogued dumps — the sched
// acceptance rig, rebuilt here so the chaos suite can crash its
// journal between runs.
type catalogRig struct {
	f     *core.Filer
	cat   *catalog.Catalog
	store *catalog.MemStore
	pool  *media.Pool
	s     *sched.Scheduler
}

func newCatalogRig(t *testing.T, engine catalog.Engine) *catalogRig {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Name = "vol0"
	cfg.Simulate = true
	cfg.BlocksPerDisk = 512
	cfg.CartridgesPerDrive = 8
	f, err := core.NewFiler(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workload.Generate(ctx, f.FS, workload.Spec{
		Seed: 99, Files: 20, DirFanout: 4, MeanFileSize: 6 << 10,
	}); err != nil {
		t.Fatal(err)
	}
	store := &catalog.MemStore{}
	cat, err := catalog.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	pool := media.NewPool("main", cat)
	if err := pool.Adopt(f.Tapes[0], 0); err != nil {
		t.Fatal(err)
	}
	f.AttachCatalog(cat)
	s, err := sched.New(sched.Config{
		Filer: f, Catalog: cat, Pool: pool, Engine: engine,
		Policy: sched.BSDLadder{Ladder: []int{3, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &catalogRig{f: f, cat: cat, store: store, pool: pool, s: s}
}

func (r *catalogRig) digest(t *testing.T) map[string]workload.Entry {
	t.Helper()
	d, err := workload.TreeDigest(ctx, r.f.FS.ActiveView(), "/")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// crashMidAppend returns the journal as a crash would leave it: every
// acknowledged record intact, plus a torn prefix of one more record
// whose append never returned.
func crashMidAppend(t *testing.T, buf []byte, rng *rand.Rand) []byte {
	t.Helper()
	base := append([]byte(nil), buf...)
	scratch := &catalog.MemStore{Buf: append([]byte(nil), base...)}
	cat, err := catalog.Open(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "vol0", Level: 9,
		Date: 1 << 40, Media: []catalog.MediaRef{{Volume: "never-written"}},
	}); err != nil {
		t.Fatal(err)
	}
	torn := scratch.Buf[len(base):]
	cut := 1 + rng.Intn(len(torn)-1)
	return append(base, torn[:cut]...)
}

// TestChaosCatalogCrashRecovery crashes the backup catalog mid-append
// after a scheduled full + two incrementals, reopens it, and demands
// that (a) no acknowledged dump set is lost, (b) the recovered catalog
// still plans and executes a byte-identical restore of the dumped
// state, and (c) the journal accepts appends again after recovery.
func TestChaosCatalogCrashRecovery(t *testing.T) {
	for seed := int64(1); seed <= int64(seedCount()); seed++ {
		for _, engine := range []catalog.Engine{catalog.Logical, catalog.Image} {
			t.Run(fmt.Sprintf("seed%d-%s", seed, engine), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				r := newCatalogRig(t, engine)

				var states []map[string]workload.Entry
				for run := 0; run < 3; run++ {
					if run > 0 {
						if _, err := r.f.FS.WriteFile(ctx, "/data/report.txt",
							[]byte(fmt.Sprintf("revision %d", run)), 0644); err != nil {
							t.Fatal(err)
						}
					}
					states = append(states, r.digest(t))
					if _, err := r.s.RunN(ctx, 1); err != nil {
						t.Fatalf("run %d: %v", run, err)
					}
				}
				wantSets := r.cat.Sets()

				// Crash mid-append at a seeded offset and recover.
				torn := crashMidAppend(t, r.store.Buf, rng)
				recStore := &catalog.MemStore{Buf: torn}
				rec, err := catalog.Open(recStore)
				if err != nil {
					t.Fatalf("recovery open: %v", err)
				}
				if rec.TornBytes == 0 {
					t.Fatal("recovery did not report the torn tail")
				}
				got := rec.Sets()
				if len(got) != len(wantSets) {
					t.Fatalf("recovered %d sets, want %d", len(got), len(wantSets))
				}
				for i := range got {
					if got[i].ID != wantSets[i].ID || !bytes.Equal([]byte(got[i].FSID), []byte(wantSets[i].FSID)) {
						t.Fatalf("recovered set %d: %+v != %+v", i, got[i], wantSets[i])
					}
				}

				// The recovered catalog plans and the plan restores the
				// dumped state byte-identically (media pool unchanged —
				// the crash took out the catalog, not the tapes).
				plan, err := rec.Plan(catalog.PlanOptions{Engine: engine, FSID: "vol0"})
				if err != nil {
					t.Fatalf("plan from recovered catalog: %v", err)
				}
				if len(plan.Steps) != 3 {
					t.Fatalf("recovered plan has %d steps: %s", len(plan.Steps), plan)
				}
				opts := sched.RecoverOptions{}
				if engine == catalog.Logical {
					opts.Wipe = true
				}
				if _, err := sched.Recover(ctx, r.f, r.pool, plan, opts); err != nil {
					t.Fatalf("recover from recovered catalog: %v", err)
				}
				if diffs := workload.DiffDigests(states[2], r.digest(t)); len(diffs) > 0 {
					t.Fatalf("restored tree differs after catalog crash: %v", diffs)
				}

				// The journal keeps working: the torn record's ID is
				// reused, as if the interrupted append never happened.
				id, err := rec.AppendDumpSet(catalog.DumpSet{
					Engine: engine, FSID: "vol0", Level: 1,
					Date: wantSets[len(wantSets)-1].Date + 1,
					Media: []catalog.MediaRef{{Volume: "t9"}},
				})
				if err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				if want := wantSets[len(wantSets)-1].ID + 1; id != want {
					t.Fatalf("post-recovery ID %d, want %d", id, want)
				}
			})
		}
	}
}
