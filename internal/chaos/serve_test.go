package chaos

import (
	"testing"
)

// TestChaosServeTenantCutMidDump is the multi-tenant isolation
// property: with several tenants pushing concurrently through one
// host on a drive-pool scheduler, hard-cutting one tenant's link
// mid-dump must cost that tenant a redial-and-replay and cost every
// other tenant nothing. All streams must land byte-identical.
func TestChaosServeTenantCutMidDump(t *testing.T) {
	for seed := 0; seed < seedCount(); seed++ {
		rep, err := RunServe(ServeScenario{Seed: int64(seed * 71), Tenants: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Identical {
			t.Fatalf("seed %d: streams differ: %v", seed, rep.Diffs)
		}
		if rep.Reconnects == 0 {
			t.Fatalf("seed %d: the victim's cut never forced a reconnect", seed)
		}
		if rep.Host.Sessions != 4 {
			t.Fatalf("seed %d: %d sessions closed cleanly, want 4", seed, rep.Host.Sessions)
		}
		// Three drives under four tenants: the scheduler must have made
		// someone wait, and everyone must eventually have been granted.
		if rep.Pool.Waited == 0 || rep.Pool.Granted != 4 {
			t.Fatalf("seed %d: pool stats %+v", seed, rep.Pool)
		}
		t.Logf("seed %d: victim reconnects=%d replayed=%d, host dups=%d, pool=%+v",
			seed, rep.Reconnects, rep.Replayed, rep.Host.Duplicates, rep.Pool)
	}
}
