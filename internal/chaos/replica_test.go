package chaos

import "testing"

// TestChaosReplicatedJournal: the replicated catalog journal under a
// seeded gauntlet of primary kills, partitions, backup crashes and
// stranded-tail injections. The zero-loss invariant: no acknowledged
// append is ever missing from the final replay, and every node's
// journal converges byte-for-byte once the faults heal.
func TestChaosReplicatedJournal(t *testing.T) {
	faults, stranded := 0, 0
	for seed := int64(1); seed <= int64(seedCount()); seed++ {
		rep, err := RunReplica(ctx, ReplicaScenario{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Lost != 0 {
			t.Fatalf("seed %d: %d acknowledged dump sets lost (acked=%d kills=%d partitions=%d views=%d)",
				seed, rep.Lost, rep.Acked, rep.Kills, rep.Partitions, rep.ViewChanges)
		}
		if !rep.Converged {
			t.Fatalf("seed %d: node journals did not converge after healing", seed)
		}
		if rep.Acked == 0 {
			t.Fatalf("seed %d: no append ever acknowledged", seed)
		}
		faults += rep.Kills + rep.Partitions
		if rep.StrandedCut {
			stranded++
		}
		t.Logf("seed %d: acked=%d rejected=%d kills=%d partitions=%d views=%d stranded=%v",
			seed, rep.Acked, rep.Rejected, rep.Kills, rep.Partitions, rep.ViewChanges, rep.StrandedCut)
	}
	if faults == 0 {
		t.Errorf("no faults injected across all seeds; the sweep proved nothing")
	}
	if stranded == 0 {
		t.Errorf("no stranded-tail window exercised across all seeds")
	}
}

// TestChaosTapeHostFailover: mid-dump the active tape host's machine
// dies whole — link severed, co-located catalog replica killed. The
// view service must promote a standby, the session must redirect to
// the standby host, the engine must resume from the replicated
// checkpoint, and the restored tree must be byte-identical — for both
// engines.
func TestChaosTapeHostFailover(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		resumed := 0
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep, err := RunReplicaFailover(ctx, ReplicaFailoverScenario{
				Seed: seed, Engine: engine,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", engine, seed, err)
			}
			if !rep.Identical {
				t.Fatalf("%s seed %d: restored tree differs after failover: %v",
					engine, seed, rep.DiffPaths)
			}
			if rep.ViewChanges == 0 {
				t.Fatalf("%s seed %d: host died but the view never changed", engine, seed)
			}
			if rep.CatalogSets == 0 {
				t.Fatalf("%s seed %d: dump set missing from replicated catalog", engine, seed)
			}
			resumed += rep.Resumes
			t.Logf("%s seed %d: resumes=%d views=%d staleHellos=%d sets=%d",
				engine, seed, rep.Resumes, rep.ViewChanges, rep.StaleHellos, rep.CatalogSets)
		}
		if resumed == 0 {
			t.Errorf("%s: failover never forced a checkpoint resume across all seeds", engine)
		}
	}
}
