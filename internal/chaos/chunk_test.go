package chaos

import (
	"fmt"
	"testing"
)

// TestChunkCrashMidDump: crash mid-dedup-dump across seeds, both
// engines, forward and reverse mode. After recovery the refcounts are
// consistent, the redump completes via hits against the crash's
// survivors, the sweep erases only zero-ref orphans, and every set
// restores byte-identical. The invariant checks themselves live in
// RunChunkCrash — a violation is an error, not just a report field.
func TestChunkCrashMidDump(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		for _, reverse := range []bool{false, true} {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/reverse=%v/seed=%d", engine, reverse, seed)
				t.Run(name, func(t *testing.T) {
					rep, err := RunChunkCrash(ctx, ChunkScenario{
						Seed: seed, Engine: engine, Reverse: reverse,
					})
					if err != nil {
						t.Fatal(err)
					}
					if !rep.Identical {
						t.Fatal("restore after crash+recovery not byte-identical")
					}
					if rep.TornBytes == 0 {
						t.Fatal("torn journal tail not observed")
					}
					// Forward mode references survivors (hits); reverse mode
					// rewrites them to current media instead.
					if rep.RedumpHits+rep.RedumpRewrites == 0 {
						t.Fatal("redump never engaged the crash's surviving chunks")
					}
					if reverse && rep.RedumpRewrites == 0 {
						t.Fatal("reverse redump performed no rewrites")
					}
				})
			}
		}
	}
}
