package chaos

import (
	"context"
	"os"
	"strconv"
	"testing"

	"repro/internal/storage"
	"repro/internal/tape"
)

var ctx = context.Background()

// seedCount returns how many seeds each property sweeps: 3 by default,
// more when CHAOS_SEEDS is set (make chaos sets 8).
func seedCount() int {
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 3
}

// invariant asserts the chaos property on a completed report.
func invariant(t *testing.T, rep *Report) {
	t.Helper()
	if rep.Identical {
		return
	}
	if len(rep.Damaged) == 0 {
		t.Fatalf("restored tree differs at %v with an empty damage report", rep.DiffPaths)
	}
	if !rep.Explained {
		t.Fatalf("damage report does not explain the differences: damaged=%v diffs=%v",
			rep.Damaged, rep.DiffPaths)
	}
}

// TestChaosLogicalDamageReport: latent sector errors under file data,
// no redundancy beneath — the logical dump must hole-map them and the
// damage report must name exactly the differing inodes.
func TestChaosLogicalDamageReport(t *testing.T) {
	for seed := int64(1); seed <= int64(seedCount()); seed++ {
		rep, err := Run(ctx, Scenario{
			Seed:            seed,
			Engine:          Logical,
			DataBlockFaults: 3,
			Tape:            tape.FaultConfig{WriteFault: 0.02, Transient: 1.0},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		invariant(t, rep)
		if rep.Identical && seed == 1 {
			t.Logf("seed %d: all planted faults fell on holes or duplicate picks", seed)
		}
	}
}

// TestChaosRaidAbsorbsDiskFaults: the same pipeline on a RAID-4 volume
// with a flaky member — transient faults retried, latent sector errors
// reconstructed from parity. Both engines must return a byte-identical
// tree with an empty damage report.
func TestChaosRaidAbsorbsDiskFaults(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		recovered := 0
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep, err := Run(ctx, Scenario{
				Seed:   seed,
				Engine: engine,
				Raid:   true,
				Profile: storage.FaultProfile{
					ReadFault: 0.15, RunFault: 0.5, Transient: 0.5, HealAfter: 2,
				},
				Tape: tape.FaultConfig{WriteFault: 0.01, Transient: 1.0},
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", engine, seed, err)
			}
			if !rep.Identical {
				t.Fatalf("%s seed %d: raid failed to absorb disk faults: diffs=%v damaged=%v",
					engine, seed, rep.DiffPaths, rep.Damaged)
			}
			recovered += rep.RaidRetries + rep.Reconstructs
		}
		if recovered == 0 {
			t.Errorf("%s: fault profile injected nothing across all seeds", engine)
		}
	}
}

// TestChaosOfflineResume: the drive drops offline mid-dump; the run
// must resume from the checkpoint on a replacement drive and the
// concatenated streams must restore correctly — for both engines.
func TestChaosOfflineResume(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		// Image records are 60 KB, logical records 10 KB: pick offline
		// thresholds that land mid-dump for each stream shape.
		offline := 12
		if engine == Physical {
			offline = 4
		}
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep, err := Run(ctx, Scenario{
				Seed:   seed,
				Engine: engine,
				Tape:   tape.FaultConfig{OfflineAfterRecords: offline},
				Files:  30,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", engine, seed, err)
			}
			invariant(t, rep)
			if rep.Resumes == 0 {
				t.Errorf("%s seed %d: offline fault never forced a resume", engine, seed)
			}
		}
	}
}

// TestChaosKitchenSink: everything at once — flaky raid member, flat
// tape media errors with occasional cartridge loss, and an offline
// event — across both engines.
func TestChaosKitchenSink(t *testing.T) {
	for _, engine := range []Engine{Logical, Physical} {
		for seed := int64(1); seed <= int64(seedCount()); seed++ {
			rep, err := Run(ctx, Scenario{
				Seed:   seed,
				Engine: engine,
				Raid:   true,
				Profile: storage.FaultProfile{
					ReadFault: 0.01, Transient: 0.5, HealAfter: 1,
				},
				Tape: tape.FaultConfig{
					WriteFault: 0.02, Transient: 0.8, OfflineAfterRecords: 25,
				},
				Cartridges: 4,
				Files:      30,
			})
			if err != nil {
				t.Fatalf("%s seed %d: %v", engine, seed, err)
			}
			if !rep.Identical {
				t.Fatalf("%s seed %d: diffs=%v damaged=%v", engine, seed, rep.DiffPaths, rep.Damaged)
			}
		}
	}
}
