package chaos

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/ndmp"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/transport"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// ReplicaScenario is one seeded chaos run against the replicated
// catalog journal itself: a stream of catalog appends with the
// primary killed or partitioned mid-append, backups crashed and
// rejoined, and stranded unacknowledged tails manufactured in the
// exact window between the primary's durable frame and the first
// backup copy. The invariant is the replication layer's whole reason
// to exist: an acknowledged append is NEVER lost, an unacknowledged
// one never splits the group — after the dust settles all journals
// are byte-identical and replay to the acknowledged history.
type ReplicaScenario struct {
	Seed    int64
	Appends int // catalog records to push through the gauntlet (default 40)
}

// ReplicaReport is the outcome of a replicated-journal chaos run.
type ReplicaReport struct {
	Seed        int64
	Acked       int // appends acknowledged by the quorum
	Lost        int // acked appends missing at the end — MUST be 0
	Rejected    int // appends that failed (crash injection, no quorum)
	ViewChanges uint64
	Kills       int
	Partitions  int
	StrandedCut bool // a stranded unacked tail was manufactured and truncated
	Converged   bool // all journals byte-identical at the end
	Metrics     []obs.Point
}

// RunReplica executes one replicated-journal chaos scenario.
func RunReplica(ctx context.Context, s ReplicaScenario) (*ReplicaReport, error) {
	if s.Appends <= 0 {
		s.Appends = 40
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rep := &ReplicaReport{Seed: s.Seed}
	reg := obs.NewRegistry()
	defer func() { rep.Metrics = reg.Snapshot() }()

	members := []string{"r0", "r1", "r2"}
	cluster, err := replica.New(replica.Config{Members: members, Ctx: ctx, Registry: reg})
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(cluster)
	if err != nil {
		return nil, err
	}

	// down tracks the single injected failure (the fault model the
	// quorum is sized for: one node down at a time, then healed).
	type downNode struct {
		name        string
		partitioned bool
		healAfter   int
	}
	var down *downNode
	heal := func() error {
		if down == nil {
			return nil
		}
		if down.partitioned {
			cluster.Rejoin(down.name)
		} else if err := cluster.Restart(down.name); err != nil {
			return fmt.Errorf("chaos: restart %s: %v", down.name, err)
		}
		down = nil
		return nil
	}

	acked := make(map[string]bool) // snap label -> acknowledged
	for i := 0; i < s.Appends; i++ {
		if down != nil {
			down.healAfter--
			if down.healAfter <= 0 {
				if err := heal(); err != nil {
					return nil, err
				}
			}
		}

		// Inject at most one concurrent fault, seeded.
		if down == nil {
			switch roll := rng.Intn(10); {
			case roll == 0:
				// Kill the primary in the stranded-tail window: the record
				// is durably framed on the primary, no backup has it, the
				// client never acknowledges. The append must fail, the
				// record must stay unacknowledged, and the tail must be
				// truncated when the node rejoins.
				boom := errors.New("chaos: primary crashed mid-append")
				victim := cluster.View().Primary
				cluster.TestHookAfterPrimary = func(seq uint64) error {
					cluster.Kill(victim)
					return boom
				}
				label := fmt.Sprintf("stranded-%d", i)
				_, err := cat.AppendDumpSet(catalog.DumpSet{
					Engine: catalog.Logical, FSID: "vol0", Snap: label,
					Date: int64(1000 + i), Media: []catalog.MediaRef{{Volume: "t0"}},
				})
				cluster.TestHookAfterPrimary = nil
				if !errors.Is(err, boom) {
					return nil, fmt.Errorf("chaos: stranded append returned %v, want injected crash", err)
				}
				rep.Rejected++
				rep.Kills++
				rep.StrandedCut = true
				down = &downNode{name: victim, healAfter: 1 + rng.Intn(4)}
				// The failed append desyncs the catalog handle; reopen over
				// the cluster, exactly as a recovering client would.
				if cat, err = catalog.Open(cluster); err != nil {
					return nil, fmt.Errorf("chaos: reopen after stranded append: %w", err)
				}
				continue
			case roll == 1:
				victim := cluster.View().Primary
				cluster.Kill(victim)
				rep.Kills++
				down = &downNode{name: victim, healAfter: 1 + rng.Intn(4)}
			case roll == 2:
				victim := cluster.View().Primary
				cluster.Isolate(victim)
				rep.Partitions++
				down = &downNode{name: victim, partitioned: true, healAfter: 1 + rng.Intn(4)}
			case roll == 3:
				view := cluster.View()
				victim := view.Backups[rng.Intn(len(view.Backups))]
				if rng.Intn(2) == 0 {
					cluster.Kill(victim)
					rep.Kills++
					down = &downNode{name: victim, healAfter: 1 + rng.Intn(4)}
				} else {
					cluster.Isolate(victim)
					rep.Partitions++
					down = &downNode{name: victim, partitioned: true, healAfter: 1 + rng.Intn(4)}
				}
			}
		}

		label := fmt.Sprintf("s%d", i)
		_, err := cat.AppendDumpSet(catalog.DumpSet{
			Engine: catalog.Logical, FSID: "vol0", Snap: label,
			Date: int64(1000 + i), Bytes: int64(rng.Intn(1 << 20)),
			Media: []catalog.MediaRef{{Volume: fmt.Sprintf("t%d", i)}},
		})
		if err != nil {
			rep.Rejected++
			if cat, err = catalog.Open(cluster); err != nil {
				return nil, fmt.Errorf("chaos: reopen after failed append: %w", err)
			}
			continue
		}
		rep.Acked++
		acked[label] = true
	}

	// Heal everything and force one last replicated append so every
	// node converges.
	if err := heal(); err != nil {
		return nil, err
	}
	if _, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "vol0", Snap: "final",
		Date: 9999, Media: []catalog.MediaRef{{Volume: "tf"}},
	}); err != nil {
		return nil, fmt.Errorf("chaos: final append: %w", err)
	}

	// Invariant 1: all journals byte-identical.
	ref := cluster.Node(members[0]).Journal()
	rep.Converged = true
	for _, m := range members[1:] {
		if !bytes.Equal(cluster.Node(m).Journal(), ref) {
			rep.Converged = false
		}
	}

	// Invariant 2: a fresh replay holds every acknowledged set (and
	// no stranded one).
	final, err := catalog.Open(cluster)
	if err != nil {
		return nil, fmt.Errorf("chaos: final replay: %w", err)
	}
	if final.TornBytes != 0 {
		return nil, fmt.Errorf("chaos: replicated journal replayed with %d torn bytes", final.TornBytes)
	}
	present := make(map[string]bool)
	for _, ds := range final.Sets() {
		present[ds.Snap] = true
	}
	for label := range acked {
		if !present[label] {
			rep.Lost++
		}
	}
	rep.ViewChanges = cluster.Service().Changes()
	return rep, nil
}

// ReplicaFailoverScenario is the end-to-end failover chaos run: a
// dump streams over ndmp to the active tape host while the catalog
// journal replicates across three nodes; mid-dump the active host's
// machine dies — its link severed for good, its co-located replica
// killed. The view service promotes a standby, the client's reconnect
// loop redials toward the host the new view advertises, the standby
// answers the stale stream with the checkpoint the replicated catalog
// vouches for, and the engine resumes from exactly that
// replicated-acknowledged checkpoint. The restored tree must be
// byte-identical for both engines.
type ReplicaFailoverScenario struct {
	Seed   int64
	Engine Engine

	// FailAfterRecords kills the active tape host after this many
	// accepted records (0 = a third of the way through, at least 1).
	FailAfterRecords int

	Files           int
	MeanFileSize    int
	CheckpointEvery int
	MaxResumes      int
}

// ReplicaFailoverReport is the outcome of a failover chaos run.
type ReplicaFailoverReport struct {
	Engine Engine
	Seed   int64

	Resumes     int
	ViewChanges uint64
	StaleHellos int  // standby Hellos answered from the replicated catalog
	CatalogSets int  // dump sets committed through the replicated catalog
	Identical   bool // restored tree matches byte for byte
	DiffPaths   []string
	Metrics     []obs.Point
}

// hostTape is one stream's drive on whichever tape host served it.
type hostTape struct {
	drive *tape.Drive
	sink  *countingSink
	label string
}

// RunReplicaFailover executes one tape-host failover scenario.
func RunReplicaFailover(ctx context.Context, s ReplicaFailoverScenario) (*ReplicaFailoverReport, error) {
	if s.Files <= 0 {
		s.Files = 24
	}
	if s.MeanFileSize <= 0 {
		s.MeanFileSize = 12 << 10
	}
	if s.CheckpointEvery <= 0 {
		if s.Engine == Physical {
			s.CheckpointEvery = 32
		} else {
			s.CheckpointEvery = 2
		}
	}
	if s.MaxResumes <= 0 {
		s.MaxResumes = 4
	}
	rep := &ReplicaFailoverReport{Engine: s.Engine, Seed: s.Seed}
	reg := obs.NewRegistry()
	defer func() { rep.Metrics = reg.Snapshot() }()

	// Source filesystem.
	const blocks = 8192
	dev := storage.NewMemDevice(blocks)
	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{CacheBlocks: 32})
	if err != nil {
		return nil, err
	}
	if _, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: s.Seed, Files: s.Files, DirFanout: 5, MeanFileSize: s.MeanFileSize,
		Symlinks: s.Files / 10, Hardlinks: s.Files / 15,
	}); err != nil {
		return nil, err
	}
	if err := fs.CreateSnapshot(ctx, "chaos"); err != nil {
		return nil, err
	}
	view, err := fs.SnapshotView("chaos")
	if err != nil {
		return nil, err
	}
	want, err := workload.TreeDigest(ctx, view, "/")
	if err != nil {
		return nil, err
	}

	// Replicated catalog: node r0 is co-located with tape host A, so
	// the machine death that severs host A's link also kills r0.
	cluster, err := replica.New(replica.Config{
		Members: []string{"r0", "r1", "r2"}, Ctx: ctx, Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	cat, err := catalog.Open(cluster)
	if err != nil {
		return nil, err
	}

	// Two tape hosts behind two links. Streams land on per-stream
	// drives; both hosts append into the shared tapes list, which
	// stays stream-ordered because the harness is single-threaded.
	var tapes []*hostTape
	newHost := func(hostName string) *ndmp.Host {
		h := ndmp.NewHost(func(hello ndmp.Hello) (ndmp.Sink, error) {
			p := tape.DefaultParams()
			d := tape.NewDrive(nil, fmt.Sprintf("%s-rt%d", hostName, hello.Stream), p)
			d.AddCartridges(tape.NewCartridge(fmt.Sprintf("%s-rt%d-0", hostName, hello.Stream)))
			if err := d.Load(nil); err != nil {
				return nil, err
			}
			ht := &hostTape{drive: d, label: fmt.Sprintf("%s-rt%d-0", hostName, hello.Stream)}
			ht.sink = &countingSink{DriveSink: &logical.DriveSink{Drive: d}}
			tapes = append(tapes, ht)
			return ht.sink, nil
		})
		h.Replicate = func(session uint64, stream int, acked uint64) error {
			return cat.AppendSessionCheckpoint(catalog.SessionCheckpoint{
				Session: session, Stream: int32(stream), Seq: acked,
				Time: cluster.Now().Unix(),
			})
		}
		h.Progress = func(session uint64, stream int) (uint64, bool) {
			return cat.SessionProgress(session, stream)
		}
		h.RegisterMetrics(reg)
		return h
	}
	hostA := newHost("a")
	hostB := newHost("b")
	linkA := transport.NewLink(transport.DefaultParams())
	linkB := transport.NewLink(transport.DefaultParams())
	linkA.B().Attach(hostA.HandleFrame)
	linkB.B().Attach(hostB.HandleFrame)

	// The dial closure is the failover redirect: it asks the view
	// service which replica is primary and dials the tape host
	// co-located with it. Each dial advances the virtual clock, so a
	// redial loop doubles as the failure detector's time source.
	dial := func() (transport.Conn, error) {
		cluster.Advance(time.Second)
		v := cluster.Heartbeat()
		link := linkB
		if v.Primary == "r0" {
			link = linkA
		}
		if link.Down() {
			link.Heal() // no-op if severed: a dead machine stays dead
		}
		if link.Severed() {
			return nil, fmt.Errorf("chaos: tape host for %s is gone", v.Primary)
		}
		return link.A(), nil
	}

	// Image records carry ~60 KB extents, logical records ~10 KB of
	// dump stream: pick a default fail point that lands mid-dump for
	// each record shape.
	failAfter := s.FailAfterRecords
	if failAfter <= 0 {
		if s.Engine == Physical {
			failAfter = 4
		} else {
			failAfter = s.Files/3 + 1
		}
	}
	written := 0
	failed := false
	failover := func() {
		// The active machine dies whole: tape host link severed
		// permanently, co-located catalog replica killed.
		linkA.Sever()
		cluster.Kill("r0")
		failed = true
	}

	kind := byte(ndmp.KindLogical)
	var lgOpts logical.DumpOptions
	var phOpts physical.DumpOptions
	if s.Engine == Logical {
		lgOpts = logical.DumpOptions{View: view, Label: "chaos", ReadAhead: 8, CheckpointEvery: s.CheckpointEvery}
	} else {
		kind = ndmp.KindImage
		phOpts = physical.DumpOptions{FS: fs, Vol: dev, SnapName: "chaos", CheckpointEvery: s.CheckpointEvery}
	}

	for attempt := 0; ; attempt++ {
		if attempt > s.MaxResumes {
			return nil, fmt.Errorf("chaos: %s dump did not converge after %d resumes", s.Engine, s.MaxResumes)
		}
		sess, err := ndmp.Dial(dial, ndmp.Config{
			Kind: kind, Session: uint64(s.Seed) + 1, Stream: attempt, Ctx: ctx,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: dial stream %d: %w", attempt, err)
		}
		sess.RegisterMetrics(reg)
		sink := &failoverSink{sess: sess, written: &written, failAfter: failAfter, failed: &failed, failover: failover}

		var lgCkpt *logical.Checkpoint
		var phCkpt *physical.Checkpoint
		if s.Engine == Logical {
			lgOpts.Sink = sink
			var stats *logical.DumpStats
			stats, err = logical.Dump(ctx, lgOpts)
			if stats != nil {
				lgCkpt = stats.Checkpoint
			}
		} else {
			phOpts.Sink = sink
			var stats *physical.DumpStats
			stats, err = physical.Dump(ctx, phOpts)
			if stats != nil {
				phCkpt = stats.Checkpoint
			}
		}
		if err == nil {
			err = sess.Close()
		}
		if err == nil {
			rep.Resumes = attempt
			break
		}
		if !errors.Is(err, ndmp.ErrPeerDead) && !errors.Is(err, ndmp.ErrSessionLost) {
			return nil, fmt.Errorf("chaos: unrecoverable %s dump fault: %w", s.Engine, err)
		}
		if lgCkpt == nil && phCkpt == nil {
			// Dead before the first replicated checkpoint: restart
			// clean, discarding the partial streams (including any sink
			// a failed re-Hello opened on the standby).
			tapes = tapes[:0]
			lgOpts.Resume, phOpts.Resume = nil, nil
			continue
		}
		lgOpts.Resume, phOpts.Resume = lgCkpt, phCkpt
	}

	// Commit the completed dump to the replicated catalog — the
	// acknowledgment the zero-loss guarantee is stated over.
	media := make([]catalog.MediaRef, 0, len(tapes))
	for _, t := range tapes {
		media = append(media, catalog.MediaRef{Volume: t.label})
	}
	if _, err := cat.AppendDumpSet(catalog.DumpSet{
		Engine: catalog.Logical, FSID: "chaosvol", Snap: "chaos",
		Date: cluster.Now().Unix(), Media: media,
	}); err != nil {
		return nil, fmt.Errorf("chaos: committing dump set: %w", err)
	}

	// Restore the streams in order; every stream but the last tore
	// when its host died and is applied in salvage mode. Volume counts
	// come from each tape's own sink — an attempt can bind more than
	// one tape when a reconnect lands on the standby, so counting per
	// attempt would misalign.
	rewind := func(i int) *logical.DriveSource {
		d := tapes[i].drive
		for d.Loaded().Label != tapes[i].label {
			if err := d.Load(nil); err != nil {
				break
			}
		}
		d.Rewind(nil)
		return logical.NewDriveSource(d, nil, tapes[i].sink.vols+1)
	}
	var got map[string]workload.Entry
	if s.Engine == Logical {
		dst, err := wafl.Mkfs(ctx, storage.NewMemDevice(blocks), nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		for i := range tapes {
			if _, err := logical.Restore(ctx, logical.RestoreOptions{
				FS: dst, Source: rewind(i), KernelIntegrated: true,
				Salvage: i < len(tapes)-1,
			}); err != nil {
				return nil, fmt.Errorf("chaos: restoring stream %d/%d: %w", i+1, len(tapes), err)
			}
		}
		got, err = workload.TreeDigest(ctx, dst.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
	} else {
		target := storage.NewMemDevice(dev.NumBlocks())
		for i := range tapes {
			if _, err := physical.Restore(ctx, physical.RestoreOptions{
				Vol: target, Source: rewind(i), Salvage: i < len(tapes)-1,
			}); err != nil {
				return nil, fmt.Errorf("chaos: restoring image stream %d/%d: %w", i+1, len(tapes), err)
			}
		}
		dst, err := wafl.Mount(ctx, target, nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		got, err = workload.TreeDigest(ctx, dst.ActiveView(), "/")
		if err != nil {
			return nil, err
		}
	}

	for p, e := range want {
		if g, ok := got[p]; !ok || g != e {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	rep.Identical = len(rep.DiffPaths) == 0
	rep.ViewChanges = cluster.Service().Changes()
	rep.StaleHellos = hostB.Stats().Stales + hostA.Stats().Stales

	// The committed dump set must replay out of the replicated
	// catalog — from the surviving nodes only.
	finalCat, err := catalog.Open(cluster)
	if err != nil {
		return nil, fmt.Errorf("chaos: catalog replay after failover: %w", err)
	}
	rep.CatalogSets = len(finalCat.Sets())
	if rep.CatalogSets == 0 {
		return nil, errors.New("chaos: committed dump set lost from replicated catalog")
	}
	return rep, nil
}

// failoverSink wraps the session sink to kill the active tape-host
// machine after a fixed number of accepted records.
type failoverSink struct {
	sess      *ndmp.Session
	written   *int
	failAfter int
	failed    *bool
	failover  func()
}

func (f *failoverSink) WriteRecord(rec []byte) error {
	if err := f.sess.WriteRecord(rec); err != nil {
		return err
	}
	*f.written++
	if !*f.failed && *f.written >= f.failAfter {
		f.failover()
	}
	return nil
}

func (f *failoverSink) NextVolume() error { return f.sess.NextVolume() }
func (f *failoverSink) Sync() error       { return f.sess.Sync() }
