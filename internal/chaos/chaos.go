// Package chaos runs whole-pipeline fault scenarios: a filesystem is
// built on faulty storage, dumped to a faulty tape library with either
// backup engine, restored from whatever survived, and the result
// compared against the source tree. The invariant under test is the
// paper's operational claim made precise:
//
//	every dump/restore cycle under seeded faults either reproduces
//	the source tree byte-identically, or the dump's damage report
//	names exactly the inodes that differ.
//
// Faults come from three layers, all seeded and reproducible: latent
// sector errors planted under file data blocks (flat topology) or a
// probabilistic fault profile on one RAID member (raid topology, where
// degraded-mode reconstruction must hide them), plus media write
// errors and drive-offline events on the tape library. Offline events
// abort the dump; the runner resumes from the returned checkpoint on a
// fresh drive and restores the concatenated streams.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/logical"
	"repro/internal/obs"
	"repro/internal/physical"
	"repro/internal/raid"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/vdev"
	"repro/internal/wafl"
	"repro/internal/workload"
)

// Engine selects the backup strategy under test.
type Engine int

const (
	Logical Engine = iota
	Physical
)

func (e Engine) String() string {
	if e == Physical {
		return "physical"
	}
	return "logical"
}

// Scenario is one seeded chaos run.
type Scenario struct {
	Seed   int64
	Engine Engine
	// Raid mounts the filesystem on a 4+1 RAID-4 volume and arms
	// Profile on one data member: every injected fault must be absorbed
	// by retry or parity reconstruction, so the tree must come back
	// byte-identical. Without Raid the filesystem sits directly on a
	// FaultDevice and DataBlockFaults latent sector errors are planted
	// under randomly chosen file data blocks — the logical engine must
	// hole-map exactly those and report them.
	Raid            bool
	Profile         storage.FaultProfile
	DataBlockFaults int

	// Tape is armed on the first drive; resumed dumps get the same
	// config minus the offline event (the replacement drive works).
	Tape         tape.FaultConfig
	TapeCapacity int64 // per cartridge, 0 = unlimited
	Cartridges   int   // per drive, min 1

	Files           int
	MeanFileSize    int
	CheckpointEvery int // files (logical) or blocks (physical)
	MaxResumes      int
}

// Report is the outcome of a scenario.
type Report struct {
	Engine  Engine
	Seed    int64
	Resumes int // checkpoint-resumed dump invocations

	TapeRetries  int // transient media errors absorbed by the sink
	TapeSwaps    int // cartridges abandoned to persistent media errors
	RaidRetries  int
	Reconstructs int

	Damaged   []logical.DamagedBlock // logical damage report, aggregated
	DiffPaths []string               // source paths that differ after restore

	// Identical: the restored tree matches byte for byte. Explained:
	// the differing paths are exactly the files the damage report
	// names. The chaos invariant is Identical || Explained.
	Identical bool
	Explained bool

	// Metrics is the run's final registry snapshot: every storage and
	// tape counter the scenario touched, for post-mortem inspection.
	Metrics []obs.Point
}

// countingSink wraps a DriveSink to count cartridges consumed, so the
// restore side knows how many volumes to read back.
type countingSink struct {
	*logical.DriveSink
	vols int
}

func (c *countingSink) NextVolume() error {
	err := c.DriveSink.NextVolume()
	if err == nil {
		c.vols++
	}
	return err
}

// Run executes one scenario and evaluates the chaos invariant. An
// error means the scenario could not be evaluated (unrecoverable dump
// failure, resume divergence) — not that the invariant failed; callers
// check Report.Identical/Explained for that.
func Run(ctx context.Context, s Scenario) (*Report, error) {
	if s.Files <= 0 {
		s.Files = 24
	}
	if s.MeanFileSize <= 0 {
		s.MeanFileSize = 12 << 10
	}
	if s.Cartridges < 1 {
		s.Cartridges = 1
	}
	if s.CheckpointEvery <= 0 {
		if s.Engine == Physical {
			s.CheckpointEvery = 32
		} else {
			s.CheckpointEvery = 2
		}
	}
	if s.MaxResumes <= 0 {
		s.MaxResumes = 4
	}
	rep := &Report{Engine: s.Engine, Seed: s.Seed}
	reg := obs.NewRegistry()
	ctx = obs.WithMetrics(ctx, reg)
	defer func() { rep.Metrics = reg.Snapshot() }()

	// Build the source filesystem on the chosen topology.
	const blocks = 8192
	var (
		dev    storage.Device
		flatFD *storage.FaultDevice
		vol    *raid.Volume
	)
	if s.Raid {
		var members []raid.Disk
		var disks []*vdev.Disk
		for i := 0; i < 4; i++ {
			d := vdev.New(nil, fmt.Sprintf("d%d", i), blocks/4, vdev.DefaultParams())
			members = append(members, d)
			disks = append(disks, d)
		}
		parity := vdev.New(nil, "p", blocks/4, vdev.DefaultParams())
		g, err := raid.NewGroup(members, parity)
		if err != nil {
			return nil, err
		}
		vol, err = raid.NewVolume("chaos", g)
		if err != nil {
			return nil, err
		}
		dev = vol
		vol.RegisterMetrics(reg)
		defer func() {
			rep.RaidRetries = int(reg.Sum("raid_retries_total"))
			rep.Reconstructs = int(reg.Sum("raid_reconstructs_total"))
		}()
		prof := s.Profile
		if prof.Seed == 0 {
			prof.Seed = s.Seed
		}
		prof.WriteFault = 0 // the dump is read-only; keep the source intact
		disks[int(s.Seed)%4].InjectFaults(prof)
	} else {
		flatFD = storage.NewFaultDevice(storage.NewMemDevice(blocks))
		dev = flatFD
	}

	fs, err := wafl.Mkfs(ctx, dev, nil, wafl.Options{CacheBlocks: 32})
	if err != nil {
		return nil, err
	}
	paths, err := workload.Generate(ctx, fs, workload.Spec{
		Seed: s.Seed, Files: s.Files, DirFanout: 5, MeanFileSize: s.MeanFileSize,
		Symlinks: s.Files / 10, Hardlinks: s.Files / 15,
	})
	if err != nil {
		return nil, err
	}
	if err := fs.CreateSnapshot(ctx, "chaos"); err != nil {
		return nil, err
	}
	// Remount cold so dump reads hit the (faulty) devices, not the
	// write-back cache.
	fs, err = wafl.Mount(ctx, dev, nil, wafl.Options{CacheBlocks: 32})
	if err != nil {
		return nil, err
	}
	view, err := fs.SnapshotView("chaos")
	if err != nil {
		return nil, err
	}

	// Digest the source tree before any flat-topology faults are
	// planted — the reference must come from clean reads. (Raid-member
	// faults may already be armed; the volume hides them by design.)
	want, err := workload.TreeDigest(ctx, view, "/")
	if err != nil {
		return nil, fmt.Errorf("chaos: source tree unreadable: %w", err)
	}

	// Flat topology: plant latent sector errors under random file data
	// blocks, after the fill so the source itself stays readable.
	if flatFD != nil && s.DataBlockFaults > 0 {
		rng := rand.New(rand.NewSource(s.Seed*7919 + 1))
		for i := 0; i < s.DataBlockFaults; i++ {
			p := paths[rng.Intn(len(paths))]
			ino, err := view.Namei(ctx, p)
			if err != nil {
				return nil, err
			}
			inode, err := view.GetInode(ctx, ino)
			if err != nil {
				return nil, err
			}
			nfbn := int((inode.Size + wafl.BlockSize - 1) / wafl.BlockSize)
			if nfbn == 0 {
				continue
			}
			pbn, err := view.BlockAt(ctx, ino, uint32(rng.Intn(nfbn)))
			if err != nil {
				return nil, err
			}
			if pbn != 0 {
				flatFD.FailRead(int(pbn), storage.ErrLatentSector)
			}
		}
	}

	// Remount once more so the dump's reads are cold and actually hit
	// the planted faults rather than the digest pass's warm cache.
	fs, err = wafl.Mount(ctx, dev, nil, wafl.Options{CacheBlocks: 32})
	if err != nil {
		return nil, err
	}
	view, err = fs.SnapshotView("chaos")
	if err != nil {
		return nil, err
	}

	restored, err := dumpRestoreCycle(ctx, s, rep, fs, dev, view)
	if err != nil {
		return nil, err
	}
	got, err := workload.TreeDigest(ctx, restored, "/")
	if err != nil {
		return nil, err
	}
	return evaluate(ctx, rep, view, want, got)
}

// dumpRestoreCycle runs the engine's dump (resuming on offline faults)
// and restores the concatenated streams, returning the restored view.
func dumpRestoreCycle(ctx context.Context, s Scenario, rep *Report, fs *wafl.FS, dev storage.Device, view *wafl.View) (*wafl.View, error) {
	tapeCfg := s.Tape
	if tapeCfg.Seed == 0 {
		tapeCfg.Seed = s.Seed
	}
	newDrive := func(attempt int) *tape.Drive {
		p := tape.DefaultParams()
		p.Capacity = s.TapeCapacity
		d := tape.NewDrive(nil, fmt.Sprintf("t%d", attempt), p)
		for i := 0; i < s.Cartridges; i++ {
			d.AddCartridges(tape.NewCartridge(fmt.Sprintf("t%d-%d", attempt, i)))
		}
		d.Load(nil)
		cfg := tapeCfg
		if attempt > 0 {
			cfg.OfflineAfterRecords = 0 // the replacement drive works
		}
		d.InjectFaults(cfg)
		d.RegisterMetrics(obs.MetricsFrom(ctx))
		return d
	}

	var drives []*tape.Drive
	var vols []int
	var firstLabels []string
	var lgOpts logical.DumpOptions
	var phOpts physical.DumpOptions
	if s.Engine == Logical {
		lgOpts = logical.DumpOptions{View: view, Label: "chaos", ReadAhead: 8, CheckpointEvery: s.CheckpointEvery}
	} else {
		phOpts = physical.DumpOptions{FS: fs, Vol: dev, SnapName: "chaos", CheckpointEvery: s.CheckpointEvery}
	}
	for attempt := 0; ; attempt++ {
		if attempt > s.MaxResumes {
			return nil, fmt.Errorf("chaos: %s dump did not converge after %d resumes", s.Engine, s.MaxResumes)
		}
		drive := newDrive(attempt)
		sink := &countingSink{DriveSink: &logical.DriveSink{Drive: drive}}
		drives = append(drives, drive)
		firstLabels = append(firstLabels, fmt.Sprintf("t%d-0", attempt))

		var err error
		var lgCkpt *logical.Checkpoint
		var phCkpt *physical.Checkpoint
		if s.Engine == Logical {
			lgOpts.Sink = sink
			var stats *logical.DumpStats
			stats, err = logical.Dump(ctx, lgOpts)
			if stats != nil {
				lgCkpt = stats.Checkpoint
				if err == nil {
					rep.Damaged = append(rep.Damaged, stats.Damaged...)
				} else if lgCkpt != nil {
					// Keep damage only for files the checkpoint covers;
					// everything after it is re-dumped by the resume.
					for _, d := range stats.Damaged {
						if d.Ino <= lgCkpt.LastIno {
							rep.Damaged = append(rep.Damaged, d)
						}
					}
				}
			}
		} else {
			phOpts.Sink = sink
			var stats *physical.DumpStats
			stats, err = physical.Dump(ctx, phOpts)
			if stats != nil {
				phCkpt = stats.Checkpoint
			}
		}
		retries, swaps := sink.MediaStats()
		rep.TapeRetries += retries
		rep.TapeSwaps += swaps
		vols = append(vols, sink.vols+1)
		if err == nil {
			rep.Resumes = attempt
			break
		}
		if !errors.Is(err, tape.ErrOffline) {
			return nil, fmt.Errorf("chaos: unrecoverable %s dump fault: %w", s.Engine, err)
		}
		drive.SetOffline(false)
		drive.Flush(nil)
		if lgCkpt == nil && phCkpt == nil {
			// Offline before the first checkpoint: nothing to resume
			// from; restart clean, discarding the partial streams.
			drives = drives[:0]
			vols = vols[:0]
			firstLabels = firstLabels[:0]
			rep.Damaged = rep.Damaged[:0]
			lgOpts.Resume, phOpts.Resume = nil, nil
			continue
		}
		lgOpts.Resume, phOpts.Resume = lgCkpt, phCkpt
	}

	// Restore the streams in order: every stream but the last is torn
	// (its drive died) and is applied in salvage mode.
	rewind := func(i int) *logical.DriveSource {
		d := drives[i]
		// An offline latch that fired on the dump's final record leaves
		// the drive down; the operator brings it back before reading.
		d.SetOffline(false)
		for d.Loaded().Label != firstLabels[i] {
			if err := d.Load(nil); err != nil {
				break
			}
		}
		d.Rewind(nil)
		return logical.NewDriveSource(d, nil, vols[i])
	}
	if s.Engine == Logical {
		dst, err := wafl.Mkfs(ctx, storage.NewMemDevice(8192), nil, wafl.Options{})
		if err != nil {
			return nil, err
		}
		for i := range drives {
			_, err := logical.Restore(ctx, logical.RestoreOptions{
				FS: dst, Source: rewind(i), KernelIntegrated: true,
				Salvage: i < len(drives)-1,
			})
			if err != nil {
				return nil, fmt.Errorf("chaos: restoring stream %d/%d: %w", i+1, len(drives), err)
			}
		}
		return dst.ActiveView(), nil
	}
	target := storage.NewMemDevice(dev.NumBlocks())
	for i := range drives {
		_, err := physical.Restore(ctx, physical.RestoreOptions{
			Vol: target, Source: rewind(i), Salvage: i < len(drives)-1,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: restoring image stream %d/%d: %w", i+1, len(drives), err)
		}
	}
	dst, err := wafl.Mount(ctx, target, nil, wafl.Options{})
	if err != nil {
		return nil, err
	}
	return dst.ActiveView(), nil
}

// evaluate compares the trees and checks that any differences are
// exactly the inodes the damage report names.
func evaluate(ctx context.Context, rep *Report, src *wafl.View, want, got map[string]workload.Entry) (*Report, error) {
	for p, e := range want {
		if g, ok := got[p]; !ok || g != e {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	for p := range got {
		if _, ok := want[p]; !ok {
			rep.DiffPaths = append(rep.DiffPaths, p)
		}
	}
	sort.Strings(rep.DiffPaths)
	rep.Identical = len(rep.DiffPaths) == 0

	damagedInos := make(map[wafl.Inum]bool)
	for _, d := range rep.Damaged {
		damagedInos[d.Ino] = true
	}
	diffInos := make(map[wafl.Inum]bool)
	explained := true
	for _, p := range rep.DiffPaths {
		ino, err := src.Namei(ctx, p)
		if err != nil {
			explained = false // a path the source never had
			continue
		}
		diffInos[ino] = true
		if !damagedInos[ino] {
			explained = false
		}
	}
	for ino := range damagedInos {
		if !diffInos[ino] {
			explained = false // reported damage with no visible effect
		}
	}
	rep.Explained = explained
	return rep, nil
}
