package vdev

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

// TestTransientRetryRecovers checks that a transient fault is absorbed
// by the drive's retry loop and its backoff lands on the simulated
// clock, while a latent sector error still surfaces.
func TestTransientRetryRecovers(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "d0", 128, DefaultParams())
	fd := d.InjectFaults(storage.FaultProfile{
		Seed: 9, ReadFault: 1, Transient: 1, HealAfter: 2, MaxFaults: 1,
	})

	buf := make([]byte, storage.BlockSize)
	var clean, faulted time.Duration
	var err error
	env.Spawn("reader", func(p *sim.Proc) {
		ctx := sim.WithProc(context.Background(), p)
		// First read trips the single transient fault (2 failed
		// attempts) and must recover via retries.
		start := p.Now()
		err = d.ReadBlock(ctx, 0, buf)
		faulted = p.Now() - start
		start = p.Now()
		if e := d.ReadBlock(ctx, 1, buf); e != nil {
			t.Errorf("clean read: %v", e)
		}
		clean = p.Now() - start
	})
	env.Run()

	if err != nil {
		t.Fatalf("transient fault not recovered: %v", err)
	}
	if d.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", d.Retries())
	}
	// Two backoffs (2ms + 4ms) must have been charged to virtual time.
	if faulted < clean+6*time.Millisecond {
		t.Fatalf("faulted read took %v, clean %v: backoff not charged", faulted, clean)
	}
	if st := fd.FaultStats(); st.Transient != 1 {
		t.Fatalf("stats = %+v, want 1 transient", st)
	}
}

func TestPersistentFaultSurfaces(t *testing.T) {
	d := New(nil, "d0", 128, DefaultParams())
	fd := d.InjectFaults(storage.FaultProfile{Seed: 1})
	fd.FailRead(5, storage.ErrLatentSector)

	buf := make([]byte, 8*storage.BlockSize)
	err := d.ReadRun(context.Background(), 0, 8, buf)
	if !errors.Is(err, storage.ErrLatentSector) {
		t.Fatalf("want latent sector error, got %v", err)
	}
	if _, err := d.ReadRunAsync(context.Background(), 4, 4, buf[:4*storage.BlockSize]); !errors.Is(err, storage.ErrLatentSector) {
		t.Fatalf("async: want latent sector error, got %v", err)
	}
	// Untouched blocks still read, and data written before injection
	// survives the interposition.
	if err := d.ReadBlock(context.Background(), 0, buf[:storage.BlockSize]); err != nil {
		t.Fatalf("clean block: %v", err)
	}
}

// TestInjectFaultsPreservesData arms faults on a disk that already has
// data and checks reads still return it once faults are cleared.
func TestInjectFaultsPreservesData(t *testing.T) {
	d := New(nil, "d0", 16, DefaultParams())
	want := make([]byte, storage.BlockSize)
	for i := range want {
		want[i] = byte(i)
	}
	if err := d.WriteBlock(context.Background(), 3, want); err != nil {
		t.Fatal(err)
	}
	fd := d.InjectFaults(storage.FaultProfile{Seed: 2, ReadFault: 1, Transient: 0})
	buf := make([]byte, storage.BlockSize)
	if err := d.ReadBlock(context.Background(), 3, buf); err == nil {
		t.Fatal("armed device did not fault")
	}
	fd.Disarm()
	fd.ClearFaults()
	if err := d.ReadBlock(context.Background(), 3, buf); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, buf[i], want[i])
		}
	}
}

// TestRetryLoopHonorsCancel: a canceled context interrupts the retry
// backoff loop instead of sleeping out the remaining budget.
func TestRetryLoopHonorsCancel(t *testing.T) {
	d := New(nil, "d0", 128, DefaultParams())
	// A transient fault that never heals within the retry budget, so
	// without the cancellation check the loop would run all attempts.
	d.InjectFaults(storage.FaultProfile{
		Seed: 3, ReadFault: 1, Transient: 1, HealAfter: 100, MaxFaults: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]byte, storage.BlockSize)
	if err := d.ReadBlock(ctx, 0, buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("read returned %v, want context.Canceled", err)
	}
	if d.Retries() != 0 {
		t.Fatalf("retries = %d, want 0: canceled before first backoff", d.Retries())
	}
}
