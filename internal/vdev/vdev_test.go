package vdev

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
)

func TestUntimedRoundTrip(t *testing.T) {
	ctx := context.Background()
	d := New(nil, "d0", 16, DefaultParams())
	data := bytes.Repeat([]byte{0xAB}, storage.BlockSize)
	if err := d.WriteBlock(ctx, 5, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, storage.BlockSize)
	if err := d.ReadBlock(ctx, 5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("data mismatch")
	}
}

func TestSequentialVsRandomReads(t *testing.T) {
	// 64 sequential reads must be much cheaper than 64 random ones.
	p := DefaultParams()
	readRun := func(blocks []int) sim.Time {
		env := sim.NewEnv()
		d := New(env, "d0", 256, p)
		env.Spawn("reader", func(pr *sim.Proc) {
			ctx := sim.WithProc(context.Background(), pr)
			buf := make([]byte, storage.BlockSize)
			for _, b := range blocks {
				if err := d.ReadBlock(ctx, b, buf); err != nil {
					t.Error(err)
					return
				}
			}
		})
		env.Run()
		return env.Now()
	}

	seq := make([]int, 64)
	rnd := make([]int, 64)
	for i := range seq {
		seq[i] = i
		rnd[i] = (i * 97) % 256 // scattered
	}
	tSeq, tRnd := readRun(seq), readRun(rnd)
	if tRnd < 5*tSeq {
		t.Fatalf("random run %v not >> sequential run %v", tRnd, tSeq)
	}
	// Sequential: one initial seek + 64 transfers.
	wantSeq := p.SeekTime + p.RotLatency + 64*(p.PerOp+sim.TimeFor(storage.BlockSize, p.TransferRate))
	if tSeq != wantSeq {
		t.Fatalf("sequential time %v, want %v", tSeq, wantSeq)
	}
}

func TestSeekCounting(t *testing.T) {
	env := sim.NewEnv()
	d := New(env, "d0", 64, DefaultParams())
	env.Spawn("r", func(pr *sim.Proc) {
		ctx := sim.WithProc(context.Background(), pr)
		buf := make([]byte, storage.BlockSize)
		// Seeks at 0 (initial) and 3 (backward); the 2→10 hop is a
		// short forward skip, charged as media time, not a seek.
		for _, b := range []int{0, 1, 2, 10, 11, 3} {
			d.ReadBlock(ctx, b, buf)
		}
	})
	env.Run()
	_, _, seeks := d.Stats()
	if seeks != 2 {
		t.Fatalf("seeks = %d, want 2", seeks)
	}
}

func TestShortForwardSkipCheaperThanSeek(t *testing.T) {
	p := DefaultParams()
	run := func(blocks []int) sim.Time {
		env := sim.NewEnv()
		d := New(env, "d0", 4096, p)
		env.Spawn("r", func(pr *sim.Proc) {
			ctx := sim.WithProc(context.Background(), pr)
			buf := make([]byte, storage.BlockSize)
			for _, b := range blocks {
				d.ReadBlock(ctx, b, buf)
			}
		})
		env.Run()
		return env.Now()
	}
	// Hop over 4-block holes vs jump backward each time.
	hops := []int{0, 5, 10, 15, 20, 25}
	jumps := []int{0, 2000, 5, 2005, 10, 2010}
	if th, tj := run(hops), run(jumps); th >= tj {
		t.Fatalf("forward hops (%v) not cheaper than long jumps (%v)", th, tj)
	}
}

func TestWriteBehindOverlapsCaller(t *testing.T) {
	// With write-behind enabled, a burst of writes within the cache
	// depth should not block the writer for the full media time.
	p := DefaultParams()
	p.WriteBehind = time.Second
	env := sim.NewEnv()
	d := New(env, "d0", 64, p)
	var submitted sim.Time
	env.Spawn("w", func(pr *sim.Proc) {
		ctx := sim.WithProc(context.Background(), pr)
		data := make([]byte, storage.BlockSize)
		for i := 0; i < 16; i++ {
			d.WriteBlock(ctx, i, data)
		}
		submitted = pr.Now()
		d.Flush(ctx)
	})
	env.Run()
	if submitted >= env.Now() {
		t.Fatalf("writer blocked until drain: submitted %v, drained %v", submitted, env.Now())
	}
	if env.Now() == 0 {
		t.Fatal("flush charged no time")
	}
}

func TestPrefetchChargesDiskNotCaller(t *testing.T) {
	p := DefaultParams()
	p.WriteBehind = 10 * time.Second
	env := sim.NewEnv()
	d := New(env, "d0", 64, p)
	var after sim.Time
	env.Spawn("r", func(pr *sim.Proc) {
		ctx := sim.WithProc(context.Background(), pr)
		for i := 0; i < 8; i++ {
			d.Prefetch(ctx, i)
		}
		after = pr.Now()
	})
	env.Run()
	if after != 0 {
		t.Fatalf("prefetch blocked caller until %v, want 0", after)
	}
	if d.Station().Busy() == 0 {
		t.Fatal("prefetch charged no disk time")
	}
}

func TestPrefetchOutOfRangeIgnored(t *testing.T) {
	d := New(nil, "d0", 8, DefaultParams())
	d.Prefetch(context.Background(), -1)
	d.Prefetch(context.Background(), 8)
	r, _, _ := d.Stats()
	if r != 0 {
		t.Fatalf("out-of-range prefetch counted: %d reads", r)
	}
}

func TestPrefetchMaintainsSequentialState(t *testing.T) {
	// A demand read immediately after prefetching the same position
	// must not pay a second seek for the next block.
	env := sim.NewEnv()
	d := New(env, "d0", 64, DefaultParams())
	env.Spawn("r", func(pr *sim.Proc) {
		ctx := sim.WithProc(context.Background(), pr)
		buf := make([]byte, storage.BlockSize)
		d.Prefetch(ctx, 10) // seek 1
		d.ReadBlock(ctx, 11, buf)
		d.ReadBlock(ctx, 12, buf)
	})
	env.Run()
	_, _, seeks := d.Stats()
	if seeks != 1 {
		t.Fatalf("seeks = %d, want 1", seeks)
	}
}
