package vdev

import (
	"context"
	"testing"

	"repro/internal/storage"
)

// BenchmarkDiskRunRead measures a single simulated disk's bulk read
// path (untimed), the layer below RAID striping.
func BenchmarkDiskRunRead(b *testing.B) {
	const nblocks = 8192
	const run = 512
	d := New(nil, "bench", nblocks, DefaultParams())
	ctx := context.Background()
	buf := make([]byte, run*storage.BlockSize)
	for i := range buf {
		buf[i] = byte(i)
	}
	for bno := 0; bno+run <= nblocks; bno += run {
		if err := d.WriteRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(run * storage.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	bno := 0
	for i := 0; i < b.N; i++ {
		if bno+run > nblocks {
			bno = 0
		}
		if err := d.ReadRun(ctx, bno, run, buf); err != nil {
			b.Fatal(err)
		}
		bno += run
	}
}
