// Package vdev implements a simulated disk drive: a real in-memory
// block store combined with a seek/rotation/transfer timing model
// charged against the discrete-event clock in internal/sim.
//
// The timing model is the load-bearing part of the reproduction: the
// paper attributes logical dump's poor scaling to "the essentially
// random order of the reads necessary to access files in their
// entirety" on a mature (fragmented) filesystem, while physical dump
// reads blocks in ascending order and streams. A disk here charges a
// full seek plus rotational latency whenever an access is not
// sequential with the previous one, so exactly that contrast emerges
// from the block layout the filesystem actually produces.
package vdev

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/storage"
)

// Params describes a disk's performance envelope. The defaults model a
// late-1990s 9 GB Fibre Channel drive of the kind attached to the F630
// in the paper (scaled-capacity, same rates).
type Params struct {
	// SeekTime is the average time to move the arm for a
	// non-sequential access.
	SeekTime time.Duration
	// RotLatency is the average rotational delay (half a revolution)
	// added to every non-sequential access.
	RotLatency time.Duration
	// TransferRate is the media rate in bytes per second once the
	// head is on track.
	TransferRate float64
	// PerOp is fixed controller/command overhead per operation.
	PerOp time.Duration
	// WriteBehind is how much service time the drive's write cache
	// may owe before writes block the caller.
	WriteBehind time.Duration
}

// DefaultParams returns the drive model used by the benchmark harness:
// 8 ms seek, 4 ms rotational latency, 10 MB/s media rate.
func DefaultParams() Params {
	return Params{
		SeekTime:     8 * time.Millisecond,
		RotLatency:   4 * time.Millisecond,
		TransferRate: 10 << 20,
		PerOp:        100 * time.Microsecond,
		WriteBehind:  60 * time.Millisecond,
	}
}

// nHeads is how many concurrent access positions a drive tracks —
// modelling command-queue reordering: a drive serving several
// interleaved sequential streams keeps each stream sequential instead
// of seeking on every switch. Four matches a modest tagged-queue
// depth.
const nHeads = 4

// headSet tracks recent access positions for sequentiality detection.
type headSet struct {
	pos  [nHeads]int
	next int // round-robin replacement cursor
}

func newHeadSet() headSet {
	var h headSet
	for i := range h.pos {
		// Far-away sentinels so first accesses count as seeks rather
		// than short forward skips.
		h.pos[i] = -1 << 30
	}
	return h
}

// Disk is a simulated disk drive. It stores real data (reads return
// what was written) and charges service time per access when the
// context carries a sim process.
type Disk struct {
	name    string
	store   storage.RunDevice
	params  Params
	station *sim.Station

	readHeads  headSet
	writeHeads headSet

	// retry bounds the drive's own recovery of transient read faults
	// when the store is a fault-injecting device; the backoff is
	// charged to the simulated clock.
	retry  storage.RetryPolicy
	faults *storage.FaultDevice

	// Counters for the benchmark harness. Atomic so harness goroutines
	// can sample them while concurrent sim procs drive the disk.
	readBlocks  atomic.Int64
	writeBlocks atomic.Int64
	seeks       atomic.Int64
	retries     atomic.Int64
}

// New creates a disk of n blocks. env may be nil for untimed use.
func New(env *sim.Env, name string, n int, p Params) *Disk {
	d := &Disk{
		name:       name,
		store:      storage.NewMemDevice(n),
		params:     p,
		readHeads:  newHeadSet(),
		writeHeads: newHeadSet(),
		retry:      storage.DefaultRetryPolicy(),
	}
	if env != nil {
		d.station = sim.NewStation(env, name, p.WriteBehind)
	}
	return d
}

// NumBlocks implements storage.Device.
func (d *Disk) NumBlocks() int { return d.store.NumBlocks() }

// Name returns the disk's name, used as its metric label.
func (d *Disk) Name() string { return d.name }

// RegisterMetrics installs pull collectors over the drive's counters:
// reads, writes, seeks, retry-absorbed ("healed") faults, the injected
// fault counts, and accumulated busy time. Re-registration is
// idempotent, so rebuilding a volume on the same registry is safe.
func (d *Disk) RegisterMetrics(r *obs.Registry) {
	l := obs.Labels{"disk": d.name}
	r.RegisterFunc("vdev_read_blocks_total", obs.KindCounter, l, func() float64 {
		return float64(d.readBlocks.Load())
	})
	r.RegisterFunc("vdev_write_blocks_total", obs.KindCounter, l, func() float64 {
		return float64(d.writeBlocks.Load())
	})
	r.RegisterFunc("vdev_seeks_total", obs.KindCounter, l, func() float64 {
		return float64(d.seeks.Load())
	})
	r.RegisterFunc("vdev_retries_total", obs.KindCounter, l, func() float64 {
		return float64(d.retries.Load())
	})
	// Fault injection may be armed after registration; the closures
	// read d.faults at collection time.
	r.RegisterFunc("vdev_faults_injected_total", obs.KindCounter, l, func() float64 {
		if d.faults == nil {
			return 0
		}
		s := d.faults.FaultStats()
		return float64(s.Transient + s.Persistent + s.Write)
	})
	r.RegisterFunc("vdev_busy_seconds", obs.KindGauge, l, func() float64 {
		if d.station == nil {
			return 0
		}
		return d.station.Busy().Seconds()
	})
}

// Station returns the disk's sim station (nil when untimed), exposed
// for utilization accounting.
func (d *Disk) Station() *sim.Station { return d.station }

// Stats returns cumulative blocks read, blocks written, and seeks.
func (d *Disk) Stats() (reads, writes, seeks int64) {
	return d.readBlocks.Load(), d.writeBlocks.Load(), d.seeks.Load()
}

// InjectFaults interposes a fault-injecting layer between the drive's
// timing model and its block store and arms it with p. Calling it
// again re-arms the same layer. The returned FaultDevice exposes the
// deterministic Fail/FailRead API and injection stats.
func (d *Disk) InjectFaults(p storage.FaultProfile) *storage.FaultDevice {
	if d.faults == nil {
		d.faults = storage.NewFaultDevice(d.store)
		d.store = d.faults
	}
	d.faults.Arm(p)
	return d.faults
}

// Faults returns the drive's fault layer, or nil if InjectFaults was
// never called.
func (d *Disk) Faults() *storage.FaultDevice { return d.faults }

// SetRetryPolicy replaces the drive's transient-fault retry policy.
func (d *Disk) SetRetryPolicy(p storage.RetryPolicy) { d.retry = p }

// Retries returns how many transient-fault retries the drive has
// performed.
func (d *Disk) Retries() int64 { return d.retries.Load() }

// runCost computes the cost of an n-block run starting at bno against
// a head set, and reports whether it counted as a seek. The best head
// is used: exact continuation costs nothing extra; a short forward
// skip costs the media time of the skipped blocks (the head just
// waits for them to pass under it) when cheaper than repositioning;
// otherwise a full seek plus rotational latency is charged and the
// round-robin victim head is repositioned. Short skips matter for
// image dump, whose ascending scan hops over small free holes.
func (d *Disk) runCost(hs *headSet, bno, n int) (time.Duration, bool) {
	per := d.params.PerOp + sim.TimeFor(storage.BlockSize, d.params.TransferRate)
	t := time.Duration(n) * per
	seek := d.params.SeekTime + d.params.RotLatency
	best := seek
	slot := -1
	for i, h := range hs.pos {
		delta := bno - h - 1
		if delta == 0 {
			best, slot = 0, i
			break
		}
		if delta > 0 {
			if skip := time.Duration(delta) * sim.TimeFor(storage.BlockSize, d.params.TransferRate); skip < best {
				best, slot = skip, i
			}
		}
	}
	seeked := false
	if slot < 0 {
		slot = hs.next
		hs.next = (hs.next + 1) % nHeads
		seeked = true
		d.seeks.Add(1)
	}
	hs.pos[slot] = bno + n - 1
	return t + best, seeked
}

// ReadBlock implements storage.Device. Demand reads are synchronous:
// the caller waits for the data.
func (d *Disk) ReadBlock(ctx context.Context, bno int, buf []byte) error {
	if err := d.store.ReadBlock(ctx, bno, buf); err != nil {
		if err = d.retryRead(ctx, err, bno, 1, buf); err != nil {
			return err
		}
	}
	d.readBlocks.Add(1)
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.readHeads, bno, 1)
		d.station.Sync(p, svc)
	}
	return nil
}

// Prefetch charges the cost of reading bno without blocking the caller
// beyond the drive's write-behind depth. The filesystem's read-ahead
// uses this to warm its cache; the data itself is fetched by the
// caller when needed (the store is memory-backed, so only timing
// matters here).
func (d *Disk) Prefetch(ctx context.Context, bno int) {
	if bno < 0 || bno >= d.store.NumBlocks() {
		return
	}
	d.readBlocks.Add(1)
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.readHeads, bno, 1)
		d.station.Async(p, svc)
	}
}

// ReadRun reads n consecutive blocks starting at bno into buf (which
// must be n*BlockSize long), charging at most one seek for the whole
// run. Streaming readers (image dump) use this so that several
// concurrent streams interleaving on one disk amortize their seeks
// over large runs instead of paying one per block.
func (d *Disk) ReadRun(ctx context.Context, bno, n int, buf []byte) error {
	if err := d.store.ReadRun(ctx, bno, n, buf); err != nil {
		if err = d.retryRead(ctx, err, bno, n, buf); err != nil {
			return err
		}
	}
	d.readBlocks.Add(int64(n))
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.readHeads, bno, n)
		d.station.Sync(p, svc)
	}
	return nil
}

// ReadRunAsync is ReadRun without the wait: it copies the data,
// reserves the service time on the disk and returns the virtual time
// the run completes. The RAID layer uses it to overlap the member
// disks of a striped read.
func (d *Disk) ReadRunAsync(ctx context.Context, bno, n int, buf []byte) (sim.Time, error) {
	if err := d.store.ReadRun(ctx, bno, n, buf); err != nil {
		if err = d.retryRead(ctx, err, bno, n, buf); err != nil {
			return 0, err
		}
	}
	d.readBlocks.Add(int64(n))
	var done sim.Time
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.readHeads, bno, n)
		done = d.station.Schedule(p, svc)
	}
	return done, nil
}

// WriteRun writes n consecutive blocks starting at bno from buf,
// charging at most one seek, buffered like WriteBlock.
func (d *Disk) WriteRun(ctx context.Context, bno, n int, buf []byte) error {
	if err := d.store.WriteRun(ctx, bno, n, buf); err != nil {
		return err
	}
	d.writeBlocks.Add(int64(n))
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.writeHeads, bno, n)
		d.station.Async(p, svc)
	}
	return nil
}

// WriteBlock implements storage.Device. Writes go through the drive's
// write-behind cache: the caller blocks only when the cache is full.
func (d *Disk) WriteBlock(ctx context.Context, bno int, data []byte) error {
	if err := d.store.WriteBlock(ctx, bno, data); err != nil {
		return err
	}
	d.writeBlocks.Add(1)
	if p := sim.ProcFrom(ctx); p != nil {
		svc, _ := d.runCost(&d.writeHeads, bno, 1)
		d.station.Async(p, svc)
	}
	return nil
}

// retryRead recovers a failed store read by re-reading the whole run
// up to MaxRetries times while the error stays transient, sleeping
// the policy's backoff on the simulated clock before each attempt.
// The first error err is what the initial read returned; the final
// (possibly persistent) error is returned when retries are exhausted.
func (d *Disk) retryRead(ctx context.Context, err error, bno, n int, buf []byte) error {
	for attempt := 1; storage.IsTransient(err) && attempt <= d.retry.MaxRetries; attempt++ {
		// A canceled dump must not sleep out the rest of the backoff
		// budget; surface the cancellation between attempts.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		d.retries.Add(1)
		d.retry.Charge(ctx, attempt)
		if n == 1 {
			err = d.store.ReadBlock(ctx, bno, buf)
		} else {
			err = d.store.ReadRun(ctx, bno, n, buf)
		}
	}
	return err
}

// Flush blocks until all buffered writes have reached media.
func (d *Disk) Flush(ctx context.Context) {
	if p := sim.ProcFrom(ctx); p != nil {
		d.station.Drain(p)
	}
}
