package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipeConn builds a NetConn over one end of a net.Pipe and hands the
// test the other end to play server with.
func pipeConn(t *testing.T) (*NetConn, net.Conn) {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return NewNetConn(client), server
}

func TestNetConnRoundTrip(t *testing.T) {
	nc, server := pipeConn(t)
	want := Encode(&Frame{Type: 7, Seq: 42, Payload: []byte("hello tape host")})
	go server.Write(want)
	raw, err := nc.Recv(time.Second)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("frame mangled: got %x want %x", raw, want)
	}
	if _, err := Decode(raw); err != nil {
		t.Fatalf("Decode: %v", err)
	}
}

func TestNetConnCleanTimeoutIsRetryable(t *testing.T) {
	nc, _ := pipeConn(t)
	_, err := nc.Recv(50 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("idle Recv = %v, want ErrTimeout", err)
	}
	if errors.Is(err, ErrBadFrame) {
		t.Fatalf("clean timeout must not poison the stream: %v", err)
	}
}

// TestNetConnMidHeaderTimeoutDesyncs is the regression test for the
// deadline-mid-frame bug: a server that dribbles half a header and
// then stalls used to surface ErrTimeout, which the session layer
// treats as "poll again" — but the half-read header has desynced the
// byte stream, so the next Recv would misparse payload bytes as a
// header. It must surface ErrBadFrame (re-dial) instead.
func TestNetConnMidHeaderTimeoutDesyncs(t *testing.T) {
	nc, server := pipeConn(t)
	frame := Encode(&Frame{Type: 1, Seq: 1, Payload: []byte("abc")})
	go server.Write(frame[:HeaderSize/2]) // half a header, then stall
	_, err := nc.Recv(100 * time.Millisecond)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("mid-header timeout = %v, want ErrBadFrame", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("mid-header timeout must not look retryable: %v", err)
	}
}

func TestNetConnMidPayloadTimeoutDesyncs(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the payload deadline (~1s)")
	}
	nc, server := pipeConn(t)
	frame := Encode(&Frame{Type: 1, Seq: 1, Payload: bytes.Repeat([]byte{0xAB}, 256)})
	go server.Write(frame[:HeaderSize+10]) // header commits, payload stalls
	_, err := nc.Recv(100 * time.Millisecond)
	if !errors.Is(err, ErrBadFrame) {
		t.Fatalf("mid-payload timeout = %v, want ErrBadFrame", err)
	}
}

// TestNetConnSlowLargePayload exercises the second deadline bug: one
// deadline across the whole frame made a large payload on a slow link
// time out even though bytes kept arriving. The payload now gets its
// own deadline once the header commits, so delivery that takes far
// longer than the Recv (header) timeout still succeeds.
func TestNetConnSlowLargePayload(t *testing.T) {
	nc, server := pipeConn(t)
	want := Encode(&Frame{Type: 2, Seq: 9, Payload: bytes.Repeat([]byte{0x5A}, 4096)})
	go func() {
		server.Write(want[:HeaderSize])
		rest := want[HeaderSize:]
		for len(rest) > 0 {
			time.Sleep(60 * time.Millisecond) // total ~0.3s > Recv timeout
			n := 1024
			if n > len(rest) {
				n = len(rest)
			}
			server.Write(rest[:n])
			rest = rest[n:]
		}
	}()
	raw, err := nc.Recv(100 * time.Millisecond)
	if err != nil {
		t.Fatalf("slow large payload: %v", err)
	}
	if !bytes.Equal(raw, want) {
		t.Fatalf("frame mangled over slow link")
	}
}

func TestNetConnRecvFraming(t *testing.T) {
	oversize := make([]byte, HeaderSize)
	copy(oversize, frameMagic[:])
	binary.LittleEndian.PutUint32(oversize[14:], MaxPayload+1)

	cases := []struct {
		name string
		wire []byte
		want error
	}{
		{"bad magic", bytes.Repeat([]byte{'X'}, HeaderSize), ErrBadFrame},
		{"oversize payload", oversize, ErrBadFrame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nc, server := pipeConn(t)
			go server.Write(tc.wire)
			_, err := nc.Recv(time.Second)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Recv(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

type fakeTimeoutErr struct{}

func (fakeTimeoutErr) Error() string   { return "fake timeout" }
func (fakeTimeoutErr) Timeout() bool   { return true }
func (fakeTimeoutErr) Temporary() bool { return true }

func TestMapNetErrFolding(t *testing.T) {
	cases := []struct {
		name string
		in   error
		want error
	}{
		{"deadline exceeded", os.ErrDeadlineExceeded, ErrTimeout},
		{"wrapped deadline", &net.OpError{Op: "read", Err: os.ErrDeadlineExceeded}, ErrTimeout},
		{"net.Error timeout", fakeTimeoutErr{}, ErrTimeout},
		{"EOF passes through", io.EOF, io.EOF},
		{"other error passes through", io.ErrUnexpectedEOF, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		if got := mapNetErr(tc.in); !errors.Is(got, tc.want) {
			t.Errorf("mapNetErr(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}
