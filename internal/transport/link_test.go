package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func mustRecv(t *testing.T, e *Endpoint) []byte {
	t.Helper()
	raw, err := e.Recv(time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return raw
}

func TestTransportLinkDelivery(t *testing.T) {
	l := NewLink(DefaultParams())
	raw := Encode(&Frame{Type: 1, Seq: 7, Payload: []byte("hello")})
	if err := l.A().Send(raw); err != nil {
		t.Fatal(err)
	}
	got := mustRecv(t, l.B())
	f, err := Decode(got)
	if err != nil || f.Seq != 7 {
		t.Fatalf("B got %v / %v", f, err)
	}
	// Empty pipe: untimed Recv times out immediately.
	if _, err := l.B().Recv(time.Second); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
}

func TestTransportLinkHandlerEcho(t *testing.T) {
	l := NewLink(DefaultParams())
	l.B().Attach(func(raw []byte) [][]byte {
		f, err := Decode(raw)
		if err != nil {
			return nil
		}
		return [][]byte{Encode(&Frame{Type: f.Type + 1, Seq: f.Seq})}
	})
	for i := uint64(1); i <= 3; i++ {
		if err := l.A().Send(Encode(&Frame{Type: 10, Seq: i})); err != nil {
			t.Fatal(err)
		}
		f, err := Decode(mustRecv(t, l.A()))
		if err != nil || f.Type != 11 || f.Seq != i {
			t.Fatalf("echo %d: %v / %v", i, f, err)
		}
	}
}

func TestTransportLinkScheduledCutAndHeal(t *testing.T) {
	l := NewLink(DefaultParams())
	l.Arm(FaultConfig{Seed: 1, CutAfterFrames: []int{2, 4}})
	ok := func() error { return l.A().Send(Encode(&Frame{Type: 1, Seq: 1})) }
	if err := ok(); err != nil { // frame 1
		t.Fatal(err)
	}
	if err := ok(); err != nil { // frame 2: triggers the cut, lost silently
		t.Fatal(err)
	}
	if err := ok(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("post-cut send: %v", err)
	}
	if !l.Down() || l.Stats().Cuts != 1 {
		t.Fatalf("link not down after scheduled cut: %+v", l.Stats())
	}
	l.Heal()
	if err := ok(); err != nil { // frame 3 (counter kept across heal)
		t.Fatal(err)
	}
	if err := ok(); err != nil { // frame 4: second scheduled cut
		t.Fatal(err)
	}
	if err := ok(); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("second cut not armed: %v", err)
	}
	// Only frames 1 and 3 ever arrived... and frame 1 was flushed by the
	// first cut; frame 3 by the second. In-flight loss is the point.
	if _, err := l.B().Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("in-flight frames should be lost on cut: %v", err)
	}
}

func TestTransportLinkDeterministicCorrupt(t *testing.T) {
	l := NewLink(DefaultParams())
	l.Arm(FaultConfig{Seed: 3, CorruptAtFrames: []int{2}})
	l.A().Send(Encode(&Frame{Type: 1, Seq: 1}))
	l.A().Send(Encode(&Frame{Type: 1, Seq: 2}))
	if _, err := Decode(mustRecv(t, l.B())); err != nil {
		t.Fatalf("frame 1 should be clean: %v", err)
	}
	if _, err := Decode(mustRecv(t, l.B())); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("frame 2 should be corrupted: %v", err)
	}
	if l.Stats().Corrupted != 1 {
		t.Fatalf("stats: %+v", l.Stats())
	}
}

func TestTransportLinkOneWayPartition(t *testing.T) {
	l := NewLink(DefaultParams())
	l.PartitionOneWay(false) // B -> A black hole
	l.B().Attach(nil)
	if err := l.A().Send(Encode(&Frame{Type: 1, Seq: 1})); err != nil {
		t.Fatal(err)
	}
	if raw := mustRecv(t, l.B()); raw == nil {
		t.Fatal("A->B should still deliver")
	}
	if err := l.B().Send(Encode(&Frame{Type: 2, Seq: 1})); err != nil {
		t.Fatalf("black-holed send must appear to succeed: %v", err)
	}
	if _, err := l.A().Recv(0); !errors.Is(err, ErrTimeout) {
		t.Fatalf("B->A should be partitioned: %v", err)
	}
}

func TestTransportLinkSeededFaultsReproduce(t *testing.T) {
	run := func() (FaultStats, int) {
		l := NewLink(DefaultParams())
		l.Arm(FaultConfig{Seed: 42, Drop: 0.2, Duplicate: 0.1, Corrupt: 0.1, Reorder: 0.2})
		for i := 0; i < 200; i++ {
			l.A().Send(Encode(&Frame{Type: 1, Seq: uint64(i)}))
		}
		got := 0
		for {
			if _, err := l.B().Recv(0); err != nil {
				break
			}
			got++
		}
		return l.Stats(), got
	}
	s1, n1 := run()
	s2, n2 := run()
	if s1 != s2 || n1 != n2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, n1, s2, n2)
	}
	if s1.Dropped == 0 || s1.Duplicated == 0 || s1.Corrupted == 0 || s1.Reordered == 0 {
		t.Fatalf("faults never fired: %+v", s1)
	}
	if n1 != 200-s1.Dropped+s1.Duplicated {
		t.Fatalf("arithmetic: sent 200, dropped %d, duplicated %d, got %d", s1.Dropped, s1.Duplicated, n1)
	}
}

func TestTransportLinkVirtualClock(t *testing.T) {
	env := sim.NewEnv()
	l := NewLink(Params{Latency: time.Millisecond})
	l.Arm(FaultConfig{Seed: 9, Stall: 1.0, StallFor: 50 * time.Millisecond})
	var elapsed, idleWait time.Duration
	var recvErr error
	env.Spawn("client", func(p *sim.Proc) {
		l.A().Bind(p)
		l.B().Attach(func(raw []byte) [][]byte { return [][]byte{raw} }) // echo, also stalled
		start := p.Now()
		if err := l.A().Send(Encode(&Frame{Type: 1, Seq: 1})); err != nil {
			recvErr = err
			return
		}
		if _, err := l.A().Recv(time.Second); err != nil {
			recvErr = err
			return
		}
		elapsed = p.Now() - start
		// An empty pipe charges exactly the deadline.
		t0 := p.Now()
		_, err := l.A().Recv(200 * time.Millisecond)
		if !errors.Is(err, ErrTimeout) {
			recvErr = fmt.Errorf("want timeout, got %v", err)
			return
		}
		idleWait = p.Now() - t0
	})
	env.Run()
	if recvErr != nil {
		t.Fatal(recvErr)
	}
	// Two stalled hops: >= 100 ms of virtual time, well under the 1 s deadline.
	if elapsed < 100*time.Millisecond || elapsed > time.Second {
		t.Fatalf("stalls not charged to the virtual clock: %v", elapsed)
	}
	if idleWait != 200*time.Millisecond {
		t.Fatalf("idle Recv charged %v, want the 200ms deadline", idleWait)
	}
}
