package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// NetConn adapts a real net.Conn (backupctl's serve/push path) to the
// Conn interface. Frames travel verbatim; the receiver re-reads the
// frame preamble to learn the payload length, so the wire format is
// identical to the simulated link's.
type NetConn struct {
	c net.Conn
}

// NewNetConn wraps c.
func NewNetConn(c net.Conn) *NetConn { return &NetConn{c: c} }

// Send implements Conn.
func (n *NetConn) Send(raw []byte) error {
	_, err := n.c.Write(raw)
	return err
}

// Recv implements Conn: it reads exactly one frame, honoring timeout
// as a wall-clock read deadline (0 or negative polls). A frame whose
// preamble is unparseable poisons the byte stream, so it surfaces as
// ErrBadFrame and the caller should re-dial.
func (n *NetConn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = time.Millisecond
	}
	if err := n.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	hdr := make([]byte, HeaderSize)
	if _, err := io.ReadFull(n.c, hdr); err != nil {
		return nil, mapNetErr(err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic on the wire", ErrBadFrame)
	}
	plen := binary.LittleEndian.Uint32(hdr[14:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, plen)
	}
	raw := make([]byte, HeaderSize+int(plen))
	copy(raw, hdr)
	if _, err := io.ReadFull(n.c, raw[HeaderSize:]); err != nil {
		return nil, mapNetErr(err)
	}
	return raw, nil
}

// Close implements Conn.
func (n *NetConn) Close() error { return n.c.Close() }

// mapNetErr folds wall-clock deadline errors into ErrTimeout so the
// session layer sees one timeout type on both transports.
func mapNetErr(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded) {
		return ErrTimeout
	}
	return err
}
