package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"
)

// NetConn adapts a real net.Conn (backupctl's serve/push path) to the
// Conn interface. Frames travel verbatim; the receiver re-reads the
// frame preamble to learn the payload length, so the wire format is
// identical to the simulated link's.
type NetConn struct {
	c net.Conn
}

// NewNetConn wraps c.
func NewNetConn(c net.Conn) *NetConn { return &NetConn{c: c} }

// Send implements Conn.
func (n *NetConn) Send(raw []byte) error {
	_, err := n.c.Write(raw)
	return err
}

// Recv implements Conn: it reads exactly one frame, honoring timeout
// as a wall-clock read deadline on the header (0 or negative polls).
// Once the header commits, the payload gets its own deadline scaled to
// its length, so a large frame trickling over a slow link is not
// penalized by a short polling timeout.
//
// Timeouts are only retryable (ErrTimeout) when they expire on a frame
// boundary — zero header bytes read. A deadline that expires mid-frame
// leaves the TCP stream desynchronized: the unread remainder would be
// misparsed as a fresh header on the next call. Those surface as
// ErrBadFrame, which tells the session layer to re-dial rather than
// poll the poisoned stream again.
func (n *NetConn) Recv(timeout time.Duration) ([]byte, error) {
	if timeout <= 0 {
		timeout = time.Millisecond
	}
	if err := n.c.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	hdr := make([]byte, HeaderSize)
	if nr, err := io.ReadFull(n.c, hdr); err != nil {
		if nr > 0 && isTimeout(err) {
			return nil, fmt.Errorf("%w: deadline expired %d bytes into a %d-byte header (stream desynced)",
				ErrBadFrame, nr, HeaderSize)
		}
		return nil, mapNetErr(err)
	}
	if [4]byte(hdr[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic on the wire", ErrBadFrame)
	}
	plen := binary.LittleEndian.Uint32(hdr[14:])
	if plen > MaxPayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrBadFrame, plen)
	}
	if err := n.c.SetReadDeadline(time.Now().Add(payloadTimeout(int(plen)))); err != nil {
		return nil, err
	}
	raw := make([]byte, HeaderSize+int(plen))
	copy(raw, hdr)
	if nr, err := io.ReadFull(n.c, raw[HeaderSize:]); err != nil {
		if isTimeout(err) {
			return nil, fmt.Errorf("%w: deadline expired %d bytes into a %d-byte payload (stream desynced)",
				ErrBadFrame, nr, plen)
		}
		return nil, mapNetErr(err)
	}
	return raw, nil
}

// payloadTimeout budgets the payload read once the header has
// committed: a generous base plus time for the bytes at a worst-case
// trickle (64 KB/s), so the 1 MB ceiling still gets ~17 s.
func payloadTimeout(plen int) time.Duration {
	return time.Second + time.Duration(plen)*time.Second/(64<<10)
}

// Close implements Conn.
func (n *NetConn) Close() error { return n.c.Close() }

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded)
}

// mapNetErr folds wall-clock deadline errors into ErrTimeout so the
// session layer sees one timeout type on both transports.
func mapNetErr(err error) error {
	if isTimeout(err) {
		return ErrTimeout
	}
	return err
}
