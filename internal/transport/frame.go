// Package transport is the wire layer of the remote backup path: a
// framed, CRC-checked, sequence-numbered message format plus the two
// connections it travels over — a deterministic simulated link with
// seeded fault injection (drop, duplicate, corrupt, reorder, stall,
// one-way partition, scheduled cuts), and a thin adapter over a real
// net.Conn for backupctl's serve/push commands.
//
// The framing is deliberately self-describing and self-checking: a
// receiver that picks up a frame mangled in flight detects it from the
// CRC alone and can ask the peer for a status resend, which is what
// lets the session layer in internal/ndmp treat a corrupted frame the
// same way it treats a lost one — at most one retransmit, never a
// corrupted record on tape.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frame layout, little-endian:
//
//	[0:4)   magic "NDMF"
//	[4]     type
//	[5]     flags
//	[6:14)  seq
//	[14:18) payload length
//	[18:22) CRC32 (IEEE) over bytes [4:18) and the payload
//	[22:)   payload
const (
	// HeaderSize is the fixed frame preamble length.
	HeaderSize = 22
	// MaxPayload bounds a frame's payload; anything larger is a
	// malformed frame, not a transfer to attempt.
	MaxPayload = 1 << 20
)

var frameMagic = [4]byte{'N', 'D', 'M', 'F'}

// ErrBadFrame classifies undecodable frames: bad magic, impossible
// length, or CRC mismatch. Receivers treat such frames as lost.
var ErrBadFrame = errors.New("transport: bad frame")

// Frame is one protocol message. Type and Flags are defined by the
// session layer; Seq numbers data frames for cumulative acknowledgment
// and idempotent replay.
type Frame struct {
	Type    byte
	Flags   byte
	Seq     uint64
	Payload []byte
}

// Encode marshals f into a fresh wire buffer.
func Encode(f *Frame) []byte {
	buf := make([]byte, HeaderSize+len(f.Payload))
	copy(buf, frameMagic[:])
	buf[4] = f.Type
	buf[5] = f.Flags
	binary.LittleEndian.PutUint64(buf[6:], f.Seq)
	binary.LittleEndian.PutUint32(buf[14:], uint32(len(f.Payload)))
	copy(buf[HeaderSize:], f.Payload)
	crc := crc32.NewIEEE()
	crc.Write(buf[4:18])
	crc.Write(buf[HeaderSize:])
	binary.LittleEndian.PutUint32(buf[18:], crc.Sum32())
	return buf
}

// Decode parses and verifies a wire buffer. The returned frame's
// payload aliases raw.
func Decode(raw []byte) (*Frame, error) {
	if len(raw) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadFrame, len(raw))
	}
	if [4]byte(raw[:4]) != frameMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	n := binary.LittleEndian.Uint32(raw[14:])
	if n > MaxPayload || int(n) != len(raw)-HeaderSize {
		return nil, fmt.Errorf("%w: length %d in a %d-byte frame", ErrBadFrame, n, len(raw))
	}
	crc := crc32.NewIEEE()
	crc.Write(raw[4:18])
	crc.Write(raw[HeaderSize:])
	if crc.Sum32() != binary.LittleEndian.Uint32(raw[18:]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrBadFrame)
	}
	return &Frame{
		Type:    raw[4],
		Flags:   raw[5],
		Seq:     binary.LittleEndian.Uint64(raw[6:]),
		Payload: raw[HeaderSize:],
	}, nil
}
